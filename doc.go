// Package slacksim is a Go reproduction of "Exploiting Simulation Slack to
// Improve Parallel Simulation Speed" (Chen, Annavaram, Dubois — ICPP 2009):
// a parallel CMP-on-CMP microarchitecture simulator in which each target
// core runs in its own host thread and the synchronisation between threads
// is relaxed by a configurable simulation slack.
//
// The library lives under internal/:
//
//	internal/core         the slack engine (schemes, manager, drivers)
//	internal/cpu          out-of-order and in-order target core models
//	internal/cache        L1/MESI-directory/NUCA-L2 hierarchy
//	internal/interconnect crossbar and occupancy contention models
//	internal/isa,asm      the SSA target ISA and its assembler
//	internal/loader,mem   program loading and shared functional memory
//	internal/sysemu       the emulated OS and Pthread-style workload API
//	internal/workloads    the seven parallel benchmarks
//	internal/harness      the paper's evaluation sweeps
//	internal/trace        per-goroutine trace rings, Chrome + ASCII export
//	internal/metrics      atomic metrics registry (near-zero when disabled)
//
// Executables: cmd/slacksim (single runs; -trace/-metrics/-timeline attach
// the observability subsystem, see docs/observability.md), cmd/slackbench
// (the paper's tables and figures, plus -breakdown for the per-scheme
// sync-overhead split), cmd/ssasm (assembler tool). Runnable walkthroughs
// live in examples/. The benchmarks regenerating each table and figure are
// in bench_test.go; run them with
//
//	go test -bench=. -benchtime=1x .
package slacksim
