// Nbody runs the barnes workload (the paper's Barnes analogue: cell-
// aggregated n-body with per-cell lock contention) standalone, comparing a
// conservative and an optimistic scheme on the same input and verifying
// both against the Go reference — a realistic "science workload on the
// simulator" scenario.
//
//	go run ./examples/nbody [-scale 2]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"slacksim/internal/asm"
	"slacksim/internal/cache"
	"slacksim/internal/core"
	"slacksim/internal/cpu"
	"slacksim/internal/workloads"
)

func main() {
	scale := flag.Int("scale", 1, "input scale (bodies = 128*scale)")
	cores := flag.Int("cores", 4, "target cores")
	flag.Parse()

	w, err := workloads.Get("barnes")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := asm.Assemble(w.Source(*scale), asm.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("barnes: %s on %d cores\n\n", w.InputDesc(*scale), *cores)
	for _, s := range []core.Scheme{core.SchemeS9x, core.SchemeSU} {
		m, err := core.NewMachine(prog, core.Config{
			NumCores: *cores,
			CPU:      cpu.DefaultConfig(),
			Cache:    cache.DefaultConfig(*cores),
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := w.Init(m.Image(), *scale); err != nil {
			log.Fatal(err)
		}
		res, err := m.RunParallel(s)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "PASS"
		if err := w.Verify(m.Image(), res.Output, *scale); err != nil {
			verdict = "FAIL: " + err.Error()
		}
		var locks int64
		for _, st := range res.CoreStats {
			locks += st.Syscalls
		}
		fmt.Printf("%-4v %8d cycles  %8d instrs  wall %-12v  %5d syscalls  verify %s\n",
			s, res.EndTime, res.Committed, res.Wall.Round(time.Microsecond), locks, verdict)
	}
	fmt.Println("\nBoth schemes produce physically valid trajectories; the optimistic")
	fmt.Println("scheme's per-cell lock grants happen in a distorted order, which")
	fmt.Println("reorders floating-point accumulation — within tolerance (§3.2.3).")
}
