// Sweep explores the speed/accuracy trade-off the paper's conclusion
// promises: "computer architects are allowed to balance the need for
// simulation efficiency and accuracy". It sweeps the bounded-slack window
// from 0 (cycle-by-cycle) past the 10-cycle critical latency up to
// effectively unbounded, and reports simulated-time error and host wall
// time at each point — an ablation of the design's one tuning knob.
//
//	go run ./examples/sweep [-workload fft]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"slacksim/internal/asm"
	"slacksim/internal/cache"
	"slacksim/internal/core"
	"slacksim/internal/cpu"
	"slacksim/internal/stats"
	"slacksim/internal/workloads"
)

func main() {
	name := flag.String("workload", "ocean", "workload to sweep")
	cores := flag.Int("cores", 4, "target cores")
	flag.Parse()

	w, err := workloads.Get(*name)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := asm.Assemble(w.Source(1), asm.Options{})
	if err != nil {
		log.Fatal(err)
	}

	mk := func() *core.Machine {
		m, err := core.NewMachine(prog, core.Config{
			NumCores: *cores,
			CPU:      cpu.DefaultConfig(),
			Cache:    cache.DefaultConfig(*cores),
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := w.Init(m.Image(), 1); err != nil {
			log.Fatal(err)
		}
		return m
	}

	ref, err := mk().RunSerial()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %d cores; serial reference: %d cycles (critical latency = %d)\n\n",
		*name, *cores, ref.EndTime, cache.DefaultConfig(*cores).CriticalLatency())

	var t stats.Table
	t.AddRow("slack", "exec cycles", "error", "wall", "speedup", "warps")
	for _, window := range []int64{0, 1, 2, 5, 9, 20, 50, 100, 500, 2000, math.MaxInt32, -1} {
		s := core.Scheme{Kind: core.Bounded, Window: window}
		label := s.String()
		switch window {
		case math.MaxInt32:
			s, label = core.SchemeSU, "SU"
		case -1:
			s, label = core.SchemeA1000, "A1000 (adaptive)"
		}
		m := mk()
		res, err := m.RunParallel(s)
		if err != nil {
			log.Fatal(err)
		}
		if err := w.Verify(m.Image(), res.Output, 1); err != nil {
			log.Fatalf("%s: workload verification failed: %v", label, err)
		}
		t.AddRow(label,
			fmt.Sprint(res.EndTime),
			fmt.Sprintf("%.2f%%", 100*stats.RelErr(float64(res.EndTime), float64(ref.EndTime))),
			fmt.Sprint(res.Wall.Round(time.Millisecond)),
			fmt.Sprintf("%.2f", ref.Wall.Seconds()/res.Wall.Seconds()),
			fmt.Sprint(res.TimeWarps),
		)
	}
	fmt.Print(t.String())
	fmt.Println("\nBelow the critical latency the error is (near) zero; beyond it the")
	fmt.Println("simulation gets cheaper to synchronise but the distortions grow —")
	fmt.Println("the trade-off Figure 8 and Table 3 quantify.")
}
