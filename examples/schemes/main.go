// Schemes visualises how the slack simulation schemes pace core threads —
// a live rendition of the paper's Figure 2. It runs the same 4-core
// workload under cycle-by-cycle, quantum, bounded-slack, and unbounded
// simulation, sampling every core's local time as the manager updates the
// windows, then draws simulated-time progress against manager updates.
//
//	go run ./examples/schemes
package main

import (
	"fmt"
	"log"
	"strings"

	"slacksim/internal/asm"
	"slacksim/internal/cache"
	"slacksim/internal/core"
	"slacksim/internal/cpu"
)

// prog gives each core a different amount of work per barrier phase, so the
// schemes' different tolerance for load imbalance is visible, as in the
// paper's P1..P4 timelines.
const prog = `
.equ SYS_EXIT, 0
.equ SYS_TCREATE, 1
.equ SYS_TEXIT, 2
.equ SYS_TJOIN, 3
.equ SYS_BARRIER_INIT, 7
.equ SYS_BARRIER, 8
.equ SYS_NUM_CORES, 20

main:
    syscall SYS_NUM_CORES
    mv   r16, rv
    la   a0, bar
    mv   a1, r16
    syscall SYS_BARRIER_INIT
    li   r17, 1
spawn:
    bge  r17, r16, spawned
    la   a0, worker
    mv   a1, r17
    syscall SYS_TCREATE
    addi r17, r17, 1
    j    spawn
spawned:
    li   a0, 0
    call phase_work
    li   r17, 1
join:
    bge  r17, r16, joined
    mv   a0, r17
    syscall SYS_TJOIN
    addi r17, r17, 1
    j    join
joined:
    li   a0, 0
    syscall SYS_EXIT

# phase_work(id): 4 barrier phases; thread i spins (i+1)*300 ALU iterations
# per phase, so higher-numbered threads always arrive later.
phase_work:
    addi r20, a0, 1
    li   r21, 300
    mul  r20, r20, r21      # iterations per phase
    li   r22, 0             # phase
pw_phase:
    li   r8, 4
    bge  r22, r8, pw_done
    mv   r9, r20
pw_spin:
    addi r9, r9, -1
    bnez r9, pw_spin
    la   a0, bar
    syscall SYS_BARRIER
    addi r22, r22, 1
    j    pw_phase
pw_done:
    ret

worker:
    call phase_work
    syscall SYS_TEXIT

.data
.align 8
bar: .dword 0
`

type sample struct {
	global int64
	locals []int64
}

func runScheme(s core.Scheme) ([]sample, *core.Result) {
	program, err := asm.Assemble(prog, asm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{
		NumCores: 4,
		CPU:      cpu.DefaultConfig(),
		Cache:    cache.DefaultConfig(4),
	}
	m, err := core.NewMachine(program, cfg)
	if err != nil {
		log.Fatal(err)
	}
	var samples []sample
	m.SetTrace(func(global int64, locals []int64) {
		if len(samples) < 100000 {
			samples = append(samples, sample{global, append([]int64(nil), locals...)})
		}
	})
	res, err := m.RunParallel(s)
	if err != nil {
		log.Fatal(err)
	}
	return samples, res
}

func main() {
	fmt.Println("Slack scheme timelines (cf. paper Figure 2): each row is one")
	fmt.Println("target core; each column is a manager pacing update (host")
	fmt.Println("\"simulation time\"); the glyph encodes the core's simulated")
	fmt.Println("cycle count at that instant, 0-9 scaled to the run's end time.")
	fmt.Println()

	for _, s := range []core.Scheme{core.SchemeCC, core.SchemeQ10, core.SchemeS9, core.SchemeS100, core.SchemeSU} {
		samples, res := runScheme(s)
		fmt.Printf("%s  (end %d cycles, wall %v, %d pacing updates)\n",
			s, res.EndTime, res.Wall.Round(1000), len(samples))
		render(samples, res.EndTime)
		fmt.Println()
	}
}

// render draws up to 72 evenly spaced samples as per-core digit strips.
func render(samples []sample, end int64) {
	if len(samples) == 0 || end == 0 {
		fmt.Println("  (no samples)")
		return
	}
	const width = 72
	step := len(samples) / width
	if step == 0 {
		step = 1
	}
	cores := len(samples[0].locals)
	for c := 0; c < cores; c++ {
		var b strings.Builder
		fmt.Fprintf(&b, "  P%d ", c+1)
		for i := 0; i < len(samples); i += step {
			v := samples[i].locals[c]
			g := int(v * 9 / end)
			if g > 9 {
				g = 9
			}
			if g < 0 {
				g = 0
			}
			b.WriteByte(byte('0' + g))
		}
		fmt.Println(b.String())
	}
}
