// Violations demonstrates the simulated-time distortions of the paper's
// §3.2 (Figures 3-7). Two target cores hammer the same data: core 0
// repeatedly stores an incrementing value to a shared word while core 1
// polls it (a Figure 7 conflicting Load/Store pair), and both contend for
// a lock (the Figure 4 shared-resource conflict, with the lock playing the
// bus). Under conservative schemes the observation pattern is identical to
// cycle-by-cycle simulation; under bounded and unbounded slack the
// interleaving — and therefore the values the workload reads — drifts,
// while the workload still executes correctly (§3.2.3).
//
//	go run ./examples/violations
package main

import (
	"fmt"
	"log"

	"slacksim/internal/asm"
	"slacksim/internal/cache"
	"slacksim/internal/core"
	"slacksim/internal/cpu"
)

// prog: core 0 performs 200 rounds of {lock; shared++; unlock}, core 1
// performs 200 rounds of {lock; sample = shared; unlock; record sample}.
// Core 1 records each sampled value into a trace array; how far the
// producer ran ahead of each observation depends on the slack scheme.
const prog = `
.equ SYS_EXIT, 0
.equ SYS_TCREATE, 1
.equ SYS_TEXIT, 2
.equ SYS_TJOIN, 3
.equ SYS_LOCK_INIT, 4
.equ SYS_LOCK, 5
.equ SYS_UNLOCK, 6
.equ ROUNDS, 200

main:
    la   a0, lk
    syscall SYS_LOCK_INIT
    la   a0, consumer
    li   a1, 1
    syscall SYS_TCREATE
    # producer: 200 locked increments
    li   r20, 0
p_loop:
    li   r8, ROUNDS
    bge  r20, r8, p_done
    la   a0, lk
    syscall SYS_LOCK
    la   r9, shared
    ld   r10, 0(r9)
    addi r10, r10, 1
    sd   r10, 0(r9)
    la   a0, lk
    syscall SYS_UNLOCK
    addi r20, r20, 1
    j    p_loop
p_done:
    li   a0, 1
    syscall SYS_TJOIN
    li   a0, 0
    syscall SYS_EXIT

consumer:
    li   r20, 0
c_loop:
    li   r8, ROUNDS
    bge  r20, r8, c_done
    la   a0, lk
    syscall SYS_LOCK
    la   r9, shared
    ld   r21, 0(r9)
    la   a0, lk
    syscall SYS_UNLOCK
    # trace[i] = sampled value
    la   r9, trace
    slli r10, r20, 3
    add  r9, r9, r10
    sd   r21, 0(r9)
    addi r20, r20, 1
    j    c_loop
c_done:
    syscall SYS_TEXIT

.data
.align 8
lk:     .dword 0
shared: .dword 0
trace:  .space ROUNDS*8
`

const rounds = 200

func run(s core.Scheme, serial bool) (*core.Result, []int64) {
	program, err := asm.Assemble(prog, asm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	m, err := core.NewMachine(program, core.Config{
		NumCores: 2,
		CPU:      cpu.DefaultConfig(),
		Cache:    cache.DefaultConfig(2),
	})
	if err != nil {
		log.Fatal(err)
	}
	var res *core.Result
	if serial {
		res, err = m.RunSerial()
	} else {
		res, err = m.RunParallel(s)
	}
	if err != nil {
		log.Fatal(err)
	}
	addr, err := m.Image().Symbol("trace")
	if err != nil {
		log.Fatal(err)
	}
	trace := make([]int64, rounds)
	for i := range trace {
		v, _ := m.Image().Mem.LoadWord(addr + uint64(i)*8)
		trace[i] = int64(v)
	}
	return res, trace
}

func main() {
	fmt.Println("Producer/consumer conflicting accesses under slack (paper §3.2):")
	fmt.Println("the consumer's sampled values depend on the simulated-time")
	fmt.Println("interleaving of the two threads' lock acquisitions.")
	fmt.Println()

	refRes, ref := run(core.Scheme{}, true)

	fmt.Printf("%-6s  %-10s  %-7s  %-9s  %-9s  %-9s  %-11s  %s\n",
		"scheme", "exec time", "Δexec%", "warps", "cohwarps", "diverges", "final value", "first 12 samples")
	for _, s := range []core.Scheme{core.SchemeCC, core.SchemeQ10, core.SchemeS9x, core.SchemeS9, core.SchemeS100, core.SchemeSU} {
		res, trace := run(s, false)
		div := 0
		for i := range trace {
			if trace[i] != ref[i] {
				div++
			}
		}
		derr := 100 * float64(res.EndTime-refRes.EndTime) / float64(refRes.EndTime)
		fmt.Printf("%-6v  %-10d  %+-7.2f  %-9d  %-9d  %-9d  %-11d  %v\n",
			s, res.EndTime, derr, res.TimeWarps, res.CoherenceWarps, div, trace[rounds-1], trace[:12])
	}
	fmt.Println()
	fmt.Println("\"Δexec%\" is the execution-time error against the serial reference —")
	fmt.Println("the paper's Table 3 accuracy metric for this microbenchmark.")
	fmt.Println("\"warps\" counts synchronisation operations (§3.2.3) and \"cohwarps\"")
	fmt.Println("directory requests (the L2 directory's OrderViolations counter, §3.2.2)")
	fmt.Println("processed out of timestamp order — both zero under conservative")
	fmt.Println("schemes; \"diverges\"")
	fmt.Println("counts samples that differ from the serial cycle-by-cycle reference.")
	fmt.Println("Every run still executes the workload correctly — the distortion is")
	fmt.Println("temporal, exactly as §3.2.3 argues.")
}
