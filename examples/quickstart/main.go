// Quickstart: assemble a small parallel program, simulate it on an 8-core
// target CMP with the bounded-slack scheme, and print the results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"runtime"

	"slacksim/internal/asm"
	"slacksim/internal/core"
)

// prog spawns one worker per spare core; every thread atomically adds its
// (id+1) squared into an accumulator under a lock, and the main thread
// prints the total.
const prog = `
.equ SYS_EXIT, 0
.equ SYS_TCREATE, 1
.equ SYS_TEXIT, 2
.equ SYS_TJOIN, 3
.equ SYS_LOCK_INIT, 4
.equ SYS_LOCK, 5
.equ SYS_UNLOCK, 6
.equ SYS_PRINT_INT, 12
.equ SYS_NUM_CORES, 20

main:
    syscall SYS_NUM_CORES
    mv   r16, rv
    la   a0, lock
    syscall SYS_LOCK_INIT
    li   r17, 1
spawn:
    bge  r17, r16, spawned
    la   a0, worker
    mv   a1, r17
    syscall SYS_TCREATE
    addi r17, r17, 1
    j    spawn
spawned:
    li   a0, 0
    call add_square
    li   r17, 1
join:
    bge  r17, r16, joined
    mv   a0, r17
    syscall SYS_TJOIN
    addi r17, r17, 1
    j    join
joined:
    la   r8, total
    ld   a0, 0(r8)
    syscall SYS_PRINT_INT
    li   a0, 0
    syscall SYS_EXIT

# add_square(id): total += (id+1)^2, under the lock
add_square:
    addi r9, a0, 1
    mul  r9, r9, r9
    la   a0, lock
    syscall SYS_LOCK
    la   r8, total
    ld   r10, 0(r8)
    add  r10, r10, r9
    sd   r10, 0(r8)
    la   a0, lock
    syscall SYS_UNLOCK
    ret

worker:
    call add_square
    syscall SYS_TEXIT

.data
.align 8
lock:  .dword 0
total: .dword 0
`

func main() {
	program, err := asm.Assemble(prog, asm.Options{})
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultConfig() // the paper's 8-core OoO target
	m, err := core.NewMachine(program, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Simulate under bounded slack with a 9-cycle window (S9), the paper's
	// recommended operating point: one cycle below the 10-cycle critical
	// latency of an L2 access.
	runtime.GOMAXPROCS(runtime.NumCPU())
	res, err := m.RunParallel(core.SchemeS9)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload printed: %q (expected: sum of squares 1..8 = 204)\n", res.Output)
	fmt.Printf("simulated execution time: %d cycles\n", res.EndTime)
	fmt.Printf("instructions committed:   %d\n", res.Committed)
	fmt.Printf("host wall time:           %v\n", res.Wall)
	fmt.Printf("timing distortions seen:  %d (bounded slack keeps these near zero)\n", res.TimeWarps)
}
