package isa

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: OpADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpADDI, Rd: 31, Rs1: 30, Imm: -1},
		{Op: OpLI, Rd: 5, Imm: 1 << 30},
		{Op: OpLD, Rd: 7, Rs1: 2, Imm: 8192},
		{Op: OpSD, Rs1: 2, Rs2: 9, Imm: -16},
		{Op: OpBEQ, Rs1: 4, Rs2: 5, Imm: -800},
		{Op: OpJAL, Rd: 1, Imm: 4096},
		{Op: OpFADD, Rd: 12, Rs1: 13, Rs2: 14},
		{Op: OpSYSCALL, Rd: RegRV, Imm: 12},
	}
	for _, in := range cases {
		got := Decode(in.Encode())
		if got != in {
			t.Errorf("round trip %v -> %v", in, got)
		}
	}
}

// TestEncodeDecodeQuick property-tests the codec over random register/
// immediate fields for every opcode.
func TestEncodeDecodeQuick(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8, imm int32) bool {
		in := Inst{
			Op:  Op(op%uint8(opMax-1)) + 1, // valid ops only
			Rd:  rd % NumIntRegs,
			Rs1: rs1 % NumIntRegs,
			Rs2: rs2 % NumIntRegs,
			Imm: imm,
		}
		return Decode(in.Encode()) == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if in := Decode(0); in.Op != OpInvalid {
		t.Errorf("zero word decoded to %v", in)
	}
	// Opcode out of range.
	bad := Inst{Op: Op(200), Rd: 1}.Encode()
	if in := Decode(bad); in.Op != OpInvalid {
		t.Errorf("bad opcode decoded to %v", in)
	}
	// Register out of range.
	bad = Inst{Op: OpADD, Rd: 77}.Encode()
	if in := Decode(bad); in.Op != OpInvalid {
		t.Errorf("bad register decoded to %v", in)
	}
}

func TestClassification(t *testing.T) {
	checks := []struct {
		in                        Inst
		branch, jump, load, store bool
		amo, mem, sys             bool
	}{
		{in: Inst{Op: OpBEQ}, branch: true, mem: false},
		{in: Inst{Op: OpJAL}, jump: true},
		{in: Inst{Op: OpJALR}, jump: true},
		{in: Inst{Op: OpLD}, load: true, mem: true},
		{in: Inst{Op: OpFLD}, load: true, mem: true},
		{in: Inst{Op: OpSW}, store: true, mem: true},
		{in: Inst{Op: OpFSD}, store: true, mem: true},
		{in: Inst{Op: OpAMOADD}, amo: true, mem: true},
		{in: Inst{Op: OpCAS}, amo: true, mem: true},
		{in: Inst{Op: OpSYSCALL}, sys: true},
		{in: Inst{Op: OpADD}},
	}
	for _, c := range checks {
		if c.in.IsBranch() != c.branch || c.in.IsJump() != c.jump ||
			c.in.IsLoad() != c.load || c.in.IsStore() != c.store ||
			c.in.IsAMO() != c.amo || c.in.IsMem() != c.mem || c.in.IsSyscall() != c.sys {
			t.Errorf("%v: classification mismatch", c.in.Op)
		}
	}
}

func TestDests(t *testing.T) {
	if d := (Inst{Op: OpADD, Rd: 5}).IntDst(); d != 5 {
		t.Errorf("add rd = %d", d)
	}
	if d := (Inst{Op: OpADD, Rd: RegZero}).IntDst(); d != -1 {
		t.Errorf("write to r0 must be discarded, got dst %d", d)
	}
	if d := (Inst{Op: OpSD, Rs2: 5}).IntDst(); d != -1 {
		t.Errorf("store has int dst %d", d)
	}
	if d := (Inst{Op: OpFADD, Rd: 7}).FPDst(); d != 7 {
		t.Errorf("fadd fd = %d", d)
	}
	if d := (Inst{Op: OpFLD, Rd: 0}).FPDst(); d != 0 {
		t.Errorf("fld f0 dst = %d (f0 is a real register)", d)
	}
	if d := (Inst{Op: OpSYSCALL, Rd: RegRV}).IntDst(); d != RegRV {
		t.Errorf("syscall dst = %d, want rv", d)
	}
}

func TestSources(t *testing.T) {
	srcs := (Inst{Op: OpADD, Rs1: 1, Rs2: 2}).IntSrcs(nil)
	if len(srcs) != 2 || srcs[0] != 1 || srcs[1] != 2 {
		t.Errorf("add srcs = %v", srcs)
	}
	// r0 sources are omitted.
	srcs = (Inst{Op: OpADD, Rs1: 0, Rs2: 2}).IntSrcs(nil)
	if len(srcs) != 1 || srcs[0] != 2 {
		t.Errorf("add with r0 srcs = %v", srcs)
	}
	// CAS also reads rd.
	srcs = (Inst{Op: OpCAS, Rd: 3, Rs1: 1, Rs2: 2}).IntSrcs(nil)
	if len(srcs) != 3 {
		t.Errorf("cas srcs = %v", srcs)
	}
	// FP store reads the fp register as an fp source and the base as int.
	fsrcs := (Inst{Op: OpFSD, Rs1: 1, Rs2: 9}).FPSrcs(nil)
	if len(fsrcs) != 1 || fsrcs[0] != 9 {
		t.Errorf("fsd fp srcs = %v", fsrcs)
	}
}

func TestMemBytes(t *testing.T) {
	for op, want := range map[Op]int{
		OpLD: 8, OpSD: 8, OpFLD: 8, OpFSD: 8, OpAMOADD: 8, OpCAS: 8,
		OpLW: 4, OpLWU: 4, OpSW: 4,
		OpLB: 1, OpLBU: 1, OpSB: 1,
		OpADD: 0,
	} {
		if got := (Inst{Op: op}).MemBytes(); got != want {
			t.Errorf("%v width = %d, want %d", op, got, want)
		}
	}
}

func TestRegisterNames(t *testing.T) {
	for name, want := range map[string]int{
		"r0": 0, "r31": 31, "zero": RegZero, "ra": RegRA, "sp": RegSP,
		"rv": RegRV, "a0": RegA0, "a3": RegA3,
	} {
		got, ok := IntRegByName(name)
		if !ok || got != want {
			t.Errorf("IntRegByName(%q) = %d,%v", name, got, ok)
		}
	}
	if _, ok := IntRegByName("r32"); ok {
		t.Error("r32 accepted")
	}
	if r, ok := FPRegByName("f31"); !ok || r != 31 {
		t.Errorf("f31 = %d,%v", r, ok)
	}
	for _, bad := range []string{"f32", "fx", "g1", "f"} {
		if _, ok := FPRegByName(bad); ok {
			t.Errorf("%q accepted as fp reg", bad)
		}
	}
}

func TestOpByNameCoversAll(t *testing.T) {
	for op := Op(1); op < opMax; op++ {
		got, ok := OpByName(op.String())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v,%v", op.String(), got, ok)
		}
	}
}

func TestDisassembleSmoke(t *testing.T) {
	for op := Op(1); op < opMax; op++ {
		in := Inst{Op: op, Rd: 1, Rs1: 2, Rs2: 3, Imm: 16}
		s := in.Disassemble(0x1000)
		if s == "" {
			t.Errorf("%v: empty disassembly", op)
		}
	}
}
