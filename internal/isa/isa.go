// Package isa defines the SSA (SlackSim Architecture) instruction set: a
// small 64-bit RISC ISA used as the target instruction set of the simulator,
// playing the role SimpleScalar's PISA plays in the paper.
//
// Instructions are a fixed 8 bytes:
//
//	byte 0    opcode
//	byte 1    rd  (destination register index, int or fp by opcode)
//	byte 2    rs1 (source register 1)
//	byte 3    rs2 (source register 2)
//	bytes 4-7 imm (signed 32-bit little-endian immediate)
//
// There are 32 integer registers (r0 hardwired to zero) holding 64-bit
// values and 32 floating-point registers holding float64 values.
package isa

import (
	"encoding/binary"
	"fmt"
)

// InstBytes is the fixed encoded size of every instruction.
const InstBytes = 8

// NumIntRegs and NumFPRegs are the architectural register file sizes.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
)

// ABI register assignments.
const (
	RegZero = 0 // always reads as zero
	RegRA   = 1 // return address (link register)
	RegSP   = 2 // stack pointer
	RegRV   = 3 // return value / syscall result
	RegA0   = 4 // first argument / syscall argument 0
	RegA1   = 5
	RegA2   = 6
	RegA3   = 7
)

// Op identifies an operation.
type Op uint8

// Opcodes. The zero value is OpInvalid so that uninitialised memory does not
// decode to a valid instruction.
const (
	OpInvalid Op = iota

	// Integer register-register arithmetic.
	OpADD
	OpSUB
	OpMUL
	OpDIV
	OpREM
	OpAND
	OpOR
	OpXOR
	OpSLL
	OpSRL
	OpSRA
	OpSLT
	OpSLTU

	// Integer register-immediate arithmetic.
	OpADDI
	OpANDI
	OpORI
	OpXORI
	OpSLLI
	OpSRLI
	OpSRAI
	OpSLTI
	OpLI // rd = imm (sign-extended)

	// Memory.
	OpLD  // rd = mem64[rs1+imm]
	OpLW  // rd = sign-extend(mem32[rs1+imm])
	OpLWU // rd = zero-extend(mem32[rs1+imm])
	OpLB  // rd = sign-extend(mem8[rs1+imm])
	OpLBU // rd = zero-extend(mem8[rs1+imm])
	OpSD  // mem64[rs1+imm] = rs2
	OpSW  // mem32[rs1+imm] = rs2
	OpSB  // mem8[rs1+imm] = rs2
	OpFLD // fd = mem64[rs1+imm] as float64
	OpFSD // mem64[rs1+imm] = fs2 bits

	// Atomics (read-modify-write on a 64-bit word).
	OpAMOADD  // rd = mem64[rs1]; mem64[rs1] += rs2
	OpAMOSWAP // rd = mem64[rs1]; mem64[rs1] = rs2
	OpCAS     // t = mem64[rs1]; if t == rs2 { mem64[rs1] = rd }; rd = t

	// Control flow. Branch/jump immediates are byte offsets from the
	// address of the branch instruction itself.
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU
	OpJAL  // rd = pc+8; pc += imm
	OpJALR // rd = pc+8; pc = (rs1 + imm)

	// Floating point.
	OpFADD
	OpFSUB
	OpFMUL
	OpFDIV
	OpFMIN
	OpFMAX
	OpFSQRT  // fd = sqrt(fs1)
	OpFABS   // fd = |fs1|
	OpFNEG   // fd = -fs1
	OpFMOV   // fd = fs1
	OpFCVTDW // fd = float64(rs1)   (int -> double)
	OpFCVTWD // rd = int64(fs1)     (double -> int, truncating)
	OpFMVXD  // rd = raw bits of fs1
	OpFMVDX  // fd = float64 from raw bits of rs1
	OpFEQ    // rd = fs1 == fs2
	OpFLT    // rd = fs1 < fs2
	OpFLE    // rd = fs1 <= fs2

	// System.
	OpSYSCALL // system call, number in imm; args in a0..a3, result in rv
	OpNOP

	opMax // sentinel
)

// Fmt describes an instruction's assembly/operand format.
type Fmt uint8

const (
	FmtNone   Fmt = iota // op
	FmtR                 // op rd, rs1, rs2         (int x int -> int)
	FmtI                 // op rd, rs1, imm
	FmtLI                // op rd, imm
	FmtLoad              // op rd, imm(rs1)         (int load)
	FmtStore             // op rs2, imm(rs1)        (int store)
	FmtFLoad             // op fd, imm(rs1)         (fp load)
	FmtFStore            // op fs2, imm(rs1)        (fp store)
	FmtAMO               // op rd, rs1, rs2         (atomic; rd also source for CAS)
	FmtB                 // op rs1, rs2, imm        (branch)
	FmtJ                 // op rd, imm              (jal)
	FmtJR                // op rd, rs1, imm         (jalr)
	FmtFR                // op fd, fs1, fs2
	FmtF2                // op fd, fs1
	FmtFCmp              // op rd, fs1, fs2         (fp compare -> int)
	FmtFCvtIF            // op fd, rs1              (int -> fp)
	FmtFCvtFI            // op rd, fs1              (fp -> int)
	FmtSys               // op imm
)

type opInfo struct {
	name string
	fmt  Fmt
}

var opTable = [opMax]opInfo{
	OpInvalid: {"invalid", FmtNone},

	OpADD:  {"add", FmtR},
	OpSUB:  {"sub", FmtR},
	OpMUL:  {"mul", FmtR},
	OpDIV:  {"div", FmtR},
	OpREM:  {"rem", FmtR},
	OpAND:  {"and", FmtR},
	OpOR:   {"or", FmtR},
	OpXOR:  {"xor", FmtR},
	OpSLL:  {"sll", FmtR},
	OpSRL:  {"srl", FmtR},
	OpSRA:  {"sra", FmtR},
	OpSLT:  {"slt", FmtR},
	OpSLTU: {"sltu", FmtR},

	OpADDI: {"addi", FmtI},
	OpANDI: {"andi", FmtI},
	OpORI:  {"ori", FmtI},
	OpXORI: {"xori", FmtI},
	OpSLLI: {"slli", FmtI},
	OpSRLI: {"srli", FmtI},
	OpSRAI: {"srai", FmtI},
	OpSLTI: {"slti", FmtI},
	OpLI:   {"li", FmtLI},

	OpLD:  {"ld", FmtLoad},
	OpLW:  {"lw", FmtLoad},
	OpLWU: {"lwu", FmtLoad},
	OpLB:  {"lb", FmtLoad},
	OpLBU: {"lbu", FmtLoad},
	OpSD:  {"sd", FmtStore},
	OpSW:  {"sw", FmtStore},
	OpSB:  {"sb", FmtStore},
	OpFLD: {"fld", FmtFLoad},
	OpFSD: {"fsd", FmtFStore},

	OpAMOADD:  {"amoadd", FmtAMO},
	OpAMOSWAP: {"amoswap", FmtAMO},
	OpCAS:     {"cas", FmtAMO},

	OpBEQ:  {"beq", FmtB},
	OpBNE:  {"bne", FmtB},
	OpBLT:  {"blt", FmtB},
	OpBGE:  {"bge", FmtB},
	OpBLTU: {"bltu", FmtB},
	OpBGEU: {"bgeu", FmtB},
	OpJAL:  {"jal", FmtJ},
	OpJALR: {"jalr", FmtJR},

	OpFADD:   {"fadd", FmtFR},
	OpFSUB:   {"fsub", FmtFR},
	OpFMUL:   {"fmul", FmtFR},
	OpFDIV:   {"fdiv", FmtFR},
	OpFMIN:   {"fmin", FmtFR},
	OpFMAX:   {"fmax", FmtFR},
	OpFSQRT:  {"fsqrt", FmtF2},
	OpFABS:   {"fabs", FmtF2},
	OpFNEG:   {"fneg", FmtF2},
	OpFMOV:   {"fmov", FmtF2},
	OpFCVTDW: {"fcvt.d.w", FmtFCvtIF},
	OpFCVTWD: {"fcvt.w.d", FmtFCvtFI},
	OpFMVXD:  {"fmv.x.d", FmtFCvtFI},
	OpFMVDX:  {"fmv.d.x", FmtFCvtIF},
	OpFEQ:    {"feq", FmtFCmp},
	OpFLT:    {"flt", FmtFCmp},
	OpFLE:    {"fle", FmtFCmp},

	OpSYSCALL: {"syscall", FmtSys},
	OpNOP:     {"nop", FmtNone},
}

// String returns the mnemonic for op.
func (op Op) String() string {
	if op >= opMax {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opTable[op].name
}

// Format returns the operand format of op.
func (op Op) Format() Fmt {
	if op >= opMax {
		return FmtNone
	}
	return opTable[op].fmt
}

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return op > OpInvalid && op < opMax }

// NumOps returns the number of defined opcodes plus one (the exclusive
// upper bound for iterating `for op := Op(1); op < Op(NumOps()); op++`).
func NumOps() int { return int(opMax) }

// OpByName returns the opcode with the given mnemonic.
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

var opsByName = func() map[string]Op {
	m := make(map[string]Op, int(opMax))
	for op := Op(1); op < opMax; op++ {
		m[opTable[op].name] = op
	}
	return m
}()

// Inst is a decoded instruction.
type Inst struct {
	Op  Op
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int32
}

// Encode packs the instruction into its 8-byte representation.
func (in Inst) Encode() uint64 {
	var b [InstBytes]byte
	b[0] = byte(in.Op)
	b[1] = in.Rd
	b[2] = in.Rs1
	b[3] = in.Rs2
	binary.LittleEndian.PutUint32(b[4:], uint32(in.Imm))
	return binary.LittleEndian.Uint64(b[:])
}

// Decode unpacks an instruction from its 8-byte representation.
func Decode(word uint64) Inst {
	var b [InstBytes]byte
	binary.LittleEndian.PutUint64(b[:], word)
	in := Inst{
		Op:  Op(b[0]),
		Rd:  b[1],
		Rs1: b[2],
		Rs2: b[3],
		Imm: int32(binary.LittleEndian.Uint32(b[4:])),
	}
	if !in.Op.Valid() || in.Rd >= NumIntRegs || in.Rs1 >= NumIntRegs || in.Rs2 >= NumIntRegs {
		return Inst{Op: OpInvalid}
	}
	return in
}

// Classification helpers used by the timing models.

// IsBranch reports whether the instruction is a conditional branch.
func (in Inst) IsBranch() bool {
	switch in.Op {
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		return true
	}
	return false
}

// IsJump reports whether the instruction is an unconditional jump.
func (in Inst) IsJump() bool { return in.Op == OpJAL || in.Op == OpJALR }

// IsCTI reports whether the instruction may redirect control flow.
func (in Inst) IsCTI() bool { return in.IsBranch() || in.IsJump() }

// IsLoad reports whether the instruction reads data memory.
func (in Inst) IsLoad() bool {
	switch in.Op {
	case OpLD, OpLW, OpLWU, OpLB, OpLBU, OpFLD:
		return true
	}
	return false
}

// IsStore reports whether the instruction writes data memory.
func (in Inst) IsStore() bool {
	switch in.Op {
	case OpSD, OpSW, OpSB, OpFSD:
		return true
	}
	return false
}

// IsAMO reports whether the instruction is an atomic read-modify-write.
func (in Inst) IsAMO() bool {
	switch in.Op {
	case OpAMOADD, OpAMOSWAP, OpCAS:
		return true
	}
	return false
}

// IsMem reports whether the instruction accesses data memory at all.
func (in Inst) IsMem() bool { return in.IsLoad() || in.IsStore() || in.IsAMO() }

// IsSyscall reports whether the instruction is a system call.
func (in Inst) IsSyscall() bool { return in.Op == OpSYSCALL }

// IntDst returns the integer destination register, or -1 if none.
func (in Inst) IntDst() int {
	switch in.Op.Format() {
	case FmtR, FmtI, FmtLI, FmtLoad, FmtAMO, FmtJ, FmtJR, FmtFCmp, FmtFCvtFI, FmtSys:
		if in.Rd != RegZero {
			return int(in.Rd)
		}
	}
	return -1
}

// FPDst returns the floating-point destination register, or -1 if none.
func (in Inst) FPDst() int {
	switch in.Op.Format() {
	case FmtFLoad, FmtFR, FmtF2, FmtFCvtIF:
		return int(in.Rd)
	}
	return -1
}

// IntSrcs appends the integer source registers of in to dst and returns it.
// r0 is never reported (it has no dependences).
func (in Inst) IntSrcs(dst []int) []int {
	add := func(r uint8) {
		if r != RegZero {
			dst = append(dst, int(r))
		}
	}
	switch in.Op.Format() {
	case FmtR:
		add(in.Rs1)
		add(in.Rs2)
	case FmtI, FmtLoad, FmtFLoad, FmtJR, FmtFCvtIF:
		add(in.Rs1)
	case FmtStore:
		add(in.Rs1)
		add(in.Rs2)
	case FmtFStore:
		add(in.Rs1)
	case FmtAMO:
		add(in.Rs1)
		add(in.Rs2)
		if in.Op == OpCAS {
			add(in.Rd) // CAS also reads rd as the swap value
		}
	case FmtB:
		add(in.Rs1)
		add(in.Rs2)
	case FmtSys:
		// Syscalls read a0..a3; modelled as serialising instead.
	}
	return dst
}

// FPSrcs appends the floating-point source registers of in to dst.
func (in Inst) FPSrcs(dst []int) []int {
	switch in.Op.Format() {
	case FmtFR:
		dst = append(dst, int(in.Rs1), int(in.Rs2))
	case FmtF2, FmtFCvtFI:
		dst = append(dst, int(in.Rs1))
	case FmtFStore:
		dst = append(dst, int(in.Rs2))
	case FmtFCmp:
		dst = append(dst, int(in.Rs1), int(in.Rs2))
	}
	return dst
}

// MemBytes returns the access width in bytes of a memory instruction (0 for
// non-memory instructions).
func (in Inst) MemBytes() int {
	switch in.Op {
	case OpLD, OpSD, OpFLD, OpFSD, OpAMOADD, OpAMOSWAP, OpCAS:
		return 8
	case OpLW, OpLWU, OpSW:
		return 4
	case OpLB, OpLBU, OpSB:
		return 1
	}
	return 0
}

// IntRegName returns the assembly name of integer register r.
func IntRegName(r int) string {
	if r < 0 || r >= NumIntRegs {
		return fmt.Sprintf("r?%d", r)
	}
	return intRegNames[r]
}

// FPRegName returns the assembly name of floating-point register r.
func FPRegName(r int) string {
	if r < 0 || r >= NumFPRegs {
		return fmt.Sprintf("f?%d", r)
	}
	return fmt.Sprintf("f%d", r)
}

var intRegNames = func() [NumIntRegs]string {
	var names [NumIntRegs]string
	for i := range names {
		names[i] = fmt.Sprintf("r%d", i)
	}
	return names
}()

// IntRegByName resolves an integer register name ("r7" or an ABI alias).
func IntRegByName(name string) (int, bool) {
	r, ok := intRegAliases[name]
	return r, ok
}

// FPRegByName resolves a floating-point register name ("f12").
func FPRegByName(name string) (int, bool) {
	if len(name) < 2 || name[0] != 'f' {
		return 0, false
	}
	n := 0
	for _, c := range name[1:] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	if n >= NumFPRegs {
		return 0, false
	}
	return n, true
}

var intRegAliases = func() map[string]int {
	m := make(map[string]int, NumIntRegs+8)
	for i := 0; i < NumIntRegs; i++ {
		m[fmt.Sprintf("r%d", i)] = i
	}
	m["zero"] = RegZero
	m["ra"] = RegRA
	m["sp"] = RegSP
	m["rv"] = RegRV
	m["a0"] = RegA0
	m["a1"] = RegA1
	m["a2"] = RegA2
	m["a3"] = RegA3
	return m
}()

// Disassemble renders in as assembly text. pc is the address of the
// instruction, used to render branch targets as absolute addresses.
func (in Inst) Disassemble(pc uint64) string {
	switch in.Op.Format() {
	case FmtNone:
		return in.Op.String()
	case FmtR:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, IntRegName(int(in.Rd)), IntRegName(int(in.Rs1)), IntRegName(int(in.Rs2)))
	case FmtI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, IntRegName(int(in.Rd)), IntRegName(int(in.Rs1)), in.Imm)
	case FmtLI:
		return fmt.Sprintf("%s %s, %d", in.Op, IntRegName(int(in.Rd)), in.Imm)
	case FmtLoad:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, IntRegName(int(in.Rd)), in.Imm, IntRegName(int(in.Rs1)))
	case FmtStore:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, IntRegName(int(in.Rs2)), in.Imm, IntRegName(int(in.Rs1)))
	case FmtFLoad:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, FPRegName(int(in.Rd)), in.Imm, IntRegName(int(in.Rs1)))
	case FmtFStore:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, FPRegName(int(in.Rs2)), in.Imm, IntRegName(int(in.Rs1)))
	case FmtAMO:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, IntRegName(int(in.Rd)), IntRegName(int(in.Rs1)), IntRegName(int(in.Rs2)))
	case FmtB:
		return fmt.Sprintf("%s %s, %s, 0x%x", in.Op, IntRegName(int(in.Rs1)), IntRegName(int(in.Rs2)), pc+uint64(int64(in.Imm)))
	case FmtJ:
		return fmt.Sprintf("%s %s, 0x%x", in.Op, IntRegName(int(in.Rd)), pc+uint64(int64(in.Imm)))
	case FmtJR:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, IntRegName(int(in.Rd)), IntRegName(int(in.Rs1)), in.Imm)
	case FmtFR:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, FPRegName(int(in.Rd)), FPRegName(int(in.Rs1)), FPRegName(int(in.Rs2)))
	case FmtF2:
		return fmt.Sprintf("%s %s, %s", in.Op, FPRegName(int(in.Rd)), FPRegName(int(in.Rs1)))
	case FmtFCmp:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, IntRegName(int(in.Rd)), FPRegName(int(in.Rs1)), FPRegName(int(in.Rs2)))
	case FmtFCvtIF:
		return fmt.Sprintf("%s %s, %s", in.Op, FPRegName(int(in.Rd)), IntRegName(int(in.Rs1)))
	case FmtFCvtFI:
		return fmt.Sprintf("%s %s, %s", in.Op, IntRegName(int(in.Rd)), FPRegName(int(in.Rs1)))
	case FmtSys:
		return fmt.Sprintf("%s %d", in.Op, in.Imm)
	}
	return in.Op.String()
}
