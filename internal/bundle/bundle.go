// Package bundle writes and validates post-mortem crash bundles: a
// self-contained directory of forensics artifacts (merged trace, metrics
// snapshot, stall report, recovery state, config) plus a MANIFEST.json
// that names, sizes, and checksums every file. The manifest makes a
// bundle shippable — a consumer can verify integrity before trusting the
// contents, and CI can assert a bundle is complete without knowing what
// the failing run looked like.
package bundle

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// ManifestName is the fixed manifest filename inside a bundle directory.
const ManifestName = "MANIFEST.json"

// Schema identifies the manifest layout; bump on incompatible change.
const Schema = "slacksim-bundle/1"

// File is one artifact to include in a bundle.
type File struct {
	Name string
	Data []byte
}

// Meta describes the run that produced the bundle.
type Meta struct {
	// Reason is the failure that triggered the bundle ("stall: ...",
	// "sim error: ...", "worker 1 abandoned").
	Reason string `json:"reason"`
	// Session is the run's wire session id (empty for local drivers).
	Session string `json:"session,omitempty"`
	// Driver names the execution driver ("serial", "parallel", "sharded",
	// "fused", "remote").
	Driver string `json:"driver"`
	// Scheme is the synchronization scheme's display string.
	Scheme string `json:"scheme"`
}

// FileEntry is one artifact's manifest record.
type FileEntry struct {
	Name   string `json:"name"`
	Size   int64  `json:"size"`
	SHA256 string `json:"sha256"`
}

// Manifest is the MANIFEST.json layout.
type Manifest struct {
	SchemaV   string      `json:"schema"`
	Reason    string      `json:"reason"`
	Session   string      `json:"session,omitempty"`
	Driver    string      `json:"driver"`
	Scheme    string      `json:"scheme"`
	CreatedNS int64       `json:"created_ns"`
	Files     []FileEntry `json:"files"`
}

// Write creates dir (and parents), writes every file into it, and
// finishes with the manifest. It returns the directory written. Files
// with nil Data are skipped, so callers can pass optional artifacts
// unconditionally.
func Write(dir string, meta Meta, files []File) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	man := Manifest{
		SchemaV:   Schema,
		Reason:    meta.Reason,
		Session:   meta.Session,
		Driver:    meta.Driver,
		Scheme:    meta.Scheme,
		CreatedNS: time.Now().UnixNano(),
	}
	for _, f := range files {
		if f.Data == nil {
			continue
		}
		if err := os.WriteFile(filepath.Join(dir, f.Name), f.Data, 0o644); err != nil {
			return "", err
		}
		sum := sha256.Sum256(f.Data)
		man.Files = append(man.Files, FileEntry{
			Name:   f.Name,
			Size:   int64(len(f.Data)),
			SHA256: hex.EncodeToString(sum[:]),
		})
	}
	enc, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), append(enc, '\n'), 0o644); err != nil {
		return "", err
	}
	return dir, nil
}

// Validate reads dir's manifest and re-hashes every listed file,
// returning the manifest on success and a descriptive error on any
// missing file, size mismatch, or checksum mismatch.
func Validate(dir string) (*Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("%s: %w", ManifestName, err)
	}
	if man.SchemaV != Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", ManifestName, man.SchemaV, Schema)
	}
	for _, fe := range man.Files {
		data, err := os.ReadFile(filepath.Join(dir, fe.Name))
		if err != nil {
			return nil, fmt.Errorf("bundle file %s: %w", fe.Name, err)
		}
		if int64(len(data)) != fe.Size {
			return nil, fmt.Errorf("bundle file %s: size %d, manifest says %d", fe.Name, len(data), fe.Size)
		}
		sum := sha256.Sum256(data)
		if got := hex.EncodeToString(sum[:]); got != fe.SHA256 {
			return nil, fmt.Errorf("bundle file %s: sha256 mismatch", fe.Name)
		}
	}
	return &man, nil
}
