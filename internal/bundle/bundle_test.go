package bundle

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTestBundle(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "bundle-remote-123")
	meta := Meta{
		Reason:  "core: watchdog: simulated time stalled for 10s",
		Session: "slacksim-1-2",
		Driver:  "remote",
		Scheme:  "S9",
	}
	files := []File{
		{Name: "stall.json", Data: []byte(`{"global": 42}` + "\n")},
		{Name: "trace.json", Data: []byte("[]\n")},
		{Name: "skipped.bin", Data: nil}, // optional artifact, absent
	}
	got, err := Write(dir, meta, files)
	if err != nil {
		t.Fatal(err)
	}
	if got != dir {
		t.Fatalf("Write returned %q, want %q", got, dir)
	}
	return dir
}

func TestWriteAndValidate(t *testing.T) {
	dir := writeTestBundle(t)
	man, err := Validate(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.SchemaV != Schema || man.Driver != "remote" || man.Scheme != "S9" {
		t.Errorf("manifest = %+v", man)
	}
	if !strings.Contains(man.Reason, "stalled") {
		t.Errorf("manifest reason = %q", man.Reason)
	}
	if len(man.Files) != 2 {
		t.Fatalf("manifest lists %d files, want 2 (nil-data entries skipped)", len(man.Files))
	}
	for _, fe := range man.Files {
		if fe.SHA256 == "" || fe.Size == 0 {
			t.Errorf("incomplete entry %+v", fe)
		}
	}
	if man.CreatedNS == 0 {
		t.Error("manifest missing creation timestamp")
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	dir := writeTestBundle(t)
	if err := os.WriteFile(filepath.Join(dir, "stall.json"), []byte(`{"global": 43}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(dir); err == nil || !strings.Contains(err.Error(), "sha256") {
		t.Errorf("corrupted file not detected: %v", err)
	}
}

func TestValidateDetectsMissingFile(t *testing.T) {
	dir := writeTestBundle(t)
	if err := os.Remove(filepath.Join(dir, "trace.json")); err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(dir); err == nil {
		t.Error("missing file not detected")
	}
}

func TestValidateDetectsSizeMismatch(t *testing.T) {
	dir := writeTestBundle(t)
	// Same-length corruption is caught by the hash; different length by
	// the cheaper size check.
	if err := os.WriteFile(filepath.Join(dir, "trace.json"), []byte("[1, 2]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(dir); err == nil || !strings.Contains(err.Error(), "size") {
		t.Errorf("size mismatch not detected: %v", err)
	}
}

func TestValidateRejectsUnknownSchema(t *testing.T) {
	dir := writeTestBundle(t)
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	mangled := strings.Replace(string(raw), Schema, "slacksim-bundle/99", 1)
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(dir); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("schema mismatch not detected: %v", err)
	}
}

func TestValidateMissingManifest(t *testing.T) {
	if _, err := Validate(t.TempDir()); err == nil {
		t.Error("missing manifest not detected")
	}
}
