package asm

import (
	"math/rand"
	"testing"

	"slacksim/internal/isa"
)

// TestDisassembleReassembleRoundTrip: for every opcode, a randomly
// populated instruction must survive disassemble -> assemble with an
// identical encoding (branch targets render as absolute addresses, so each
// instruction is placed at the same pc it was disassembled at).
func TestDisassembleReassembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const pc = 0x1000
	for op := isa.Op(1); op < isa.Op(isa.NumOps()); op++ {
		if op == isa.OpInvalid {
			continue
		}
		for trial := 0; trial < 50; trial++ {
			in := isa.Inst{
				Op:  op,
				Rd:  uint8(rng.Intn(isa.NumIntRegs)),
				Rs1: uint8(rng.Intn(isa.NumIntRegs)),
				Rs2: uint8(rng.Intn(isa.NumIntRegs)),
			}
			// Keep immediates well-formed for the format: branch targets
			// must land on instruction boundaries and stay positive.
			switch op.Format() {
			case isa.FmtB, isa.FmtJ:
				in.Imm = int32(rng.Intn(1<<16)) * isa.InstBytes
			case isa.FmtSys:
				in.Imm = int32(rng.Intn(1 << 10))
				in.Rd = isa.RegRV // the assembler pins syscall rd
				in.Rs1, in.Rs2 = 0, 0
			case isa.FmtNone:
				in.Rd, in.Rs1, in.Rs2 = 0, 0, 0
			case isa.FmtLI:
				in.Imm = rng.Int31()
				if rng.Intn(2) == 0 {
					in.Imm = -in.Imm
				}
			default:
				in.Imm = int32(rng.Intn(1<<20)) - 1<<19
			}
			// Normalise unused fields the way the assembler emits them.
			switch op.Format() {
			case isa.FmtR, isa.FmtAMO, isa.FmtFR, isa.FmtFCmp:
				in.Imm = 0
			case isa.FmtF2, isa.FmtFCvtIF, isa.FmtFCvtFI:
				in.Imm, in.Rs2 = 0, 0
			case isa.FmtLI, isa.FmtJ:
				in.Rs1, in.Rs2 = 0, 0
			case isa.FmtLoad, isa.FmtFLoad, isa.FmtI, isa.FmtJR:
				in.Rs2 = 0
			case isa.FmtStore, isa.FmtFStore, isa.FmtB:
				in.Rd = 0
			}

			text := in.Disassemble(pc)
			prog, err := Assemble("main:\n    "+text+"\n", Options{TextBase: pc})
			if err != nil {
				t.Fatalf("%v: reassembling %q: %v", op, text, err)
			}
			if len(prog.Text) != 1 {
				t.Fatalf("%v: %q assembled to %d instructions", op, text, len(prog.Text))
			}
			if got := prog.Text[0]; got != in {
				t.Fatalf("%v: round trip %+v -> %q -> %+v", op, in, text, got)
			}
		}
	}
}
