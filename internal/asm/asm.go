// Package asm implements a two-pass assembler for the SSA instruction set
// (see package isa). It supports labels, symbolic constants, the directives
// .text .data .align .space .word .dword .double .asciiz .equ .global, and a
// set of pseudo-instructions (la, j, jr, mv, ret, call, beqz, bnez, bgt,
// ble). Assembly sources are the vehicle for the simulator's workloads, the
// way SPLASH-2 binaries compiled to PISA are for SimpleScalar in the paper.
package asm

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"slacksim/internal/isa"
)

// Options configures program layout.
type Options struct {
	// TextBase is the address of the first instruction. Defaults to 0x1000.
	TextBase uint64
	// DataBase is the address of the data section. If zero, it is placed at
	// the first 4 KiB boundary after the text section.
	DataBase uint64
}

// Program is the output of the assembler: an executable image plus symbols.
type Program struct {
	TextBase uint64
	Text     []isa.Inst
	DataBase uint64
	Data     []byte
	Symbols  map[string]uint64
	Entry    uint64 // address of "main" if defined, else TextBase
}

// TextBytes returns the encoded text section.
func (p *Program) TextBytes() []byte {
	out := make([]byte, len(p.Text)*isa.InstBytes)
	for i, in := range p.Text {
		binary.LittleEndian.PutUint64(out[i*isa.InstBytes:], in.Encode())
	}
	return out
}

// TextEnd returns the first address past the text section.
func (p *Program) TextEnd() uint64 { return p.TextBase + uint64(len(p.Text))*isa.InstBytes }

// DataEnd returns the first address past the data section.
func (p *Program) DataEnd() uint64 { return p.DataBase + uint64(len(p.Data)) }

// Assemble assembles src into a Program.
func Assemble(src string, opts Options) (*Program, error) {
	if opts.TextBase == 0 {
		opts.TextBase = 0x1000
	}
	a := &assembler{
		opts:    opts,
		symbols: make(map[string]uint64),
		consts:  make(map[string]int64),
	}
	if err := a.pass(src, 1); err != nil {
		return nil, err
	}
	// Fix the data base now that the text size is known.
	a.dataBase = opts.DataBase
	if a.dataBase == 0 {
		a.dataBase = (opts.TextBase + a.textSize + 0xFFF) &^ 0xFFF
	}
	// Re-resolve data labels: during pass 1 they were stored as offsets.
	for name, off := range a.dataLabels {
		a.symbols[name] = a.dataBase + off
	}
	if err := a.pass(src, 2); err != nil {
		return nil, err
	}
	p := &Program{
		TextBase: opts.TextBase,
		Text:     a.text,
		DataBase: a.dataBase,
		Data:     a.data,
		Symbols:  a.symbols,
		Entry:    opts.TextBase,
	}
	if e, ok := a.symbols["main"]; ok {
		p.Entry = e
	}
	return p, nil
}

// MustAssemble is Assemble but panics on error; for tests and built-in
// workload sources which are compile-time constants.
func MustAssemble(src string, opts Options) *Program {
	p, err := Assemble(src, opts)
	if err != nil {
		panic(err)
	}
	return p
}

type assembler struct {
	opts     Options
	textSize uint64
	dataBase uint64

	symbols    map[string]uint64 // fully-resolved addresses (pass 2 reads these)
	dataLabels map[string]uint64 // data-label -> section offset (pass 1)
	consts     map[string]int64  // .equ constants

	// Pass-2 outputs.
	text []isa.Inst
	data []byte
}

type section int

const (
	secText section = iota
	secData
)

func (a *assembler) pass(src string, n int) error {
	sec := secText
	var textOff, dataOff uint64
	if n == 1 {
		a.dataLabels = make(map[string]uint64)
	}
	emit := func(in isa.Inst) {
		if n == 2 {
			a.text = append(a.text, in)
		}
		textOff += isa.InstBytes
	}
	emitData := func(b []byte) {
		if n == 2 {
			a.data = append(a.data, b...)
		}
		dataOff += uint64(len(b))
	}

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		errf := func(format string, args ...any) error {
			return fmt.Errorf("asm: line %d: %s: %q", ln+1, fmt.Sprintf(format, args...), strings.TrimSpace(raw))
		}

		// Labels (possibly several on one line).
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			head := strings.TrimSpace(line[:i])
			if !isIdent(head) {
				break
			}
			if n == 1 {
				if _, dup := a.symbols[head]; dup {
					return errf("duplicate label %q", head)
				}
				if _, dup := a.dataLabels[head]; dup {
					return errf("duplicate label %q", head)
				}
				if sec == secText {
					a.symbols[head] = a.opts.TextBase + textOff
				} else {
					a.dataLabels[head] = dataOff
				}
			}
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}

		fields := splitOperands(line)
		mnem := strings.ToLower(fields[0])
		args := fields[1:]

		if strings.HasPrefix(mnem, ".") {
			if err := a.directive(mnem, args, n, &sec, emitData, &dataOff); err != nil {
				return errf("%v", err)
			}
			continue
		}
		if sec != secText {
			return errf("instruction outside .text")
		}
		pc := a.opts.TextBase + textOff
		insts, err := a.instruction(mnem, args, pc, n)
		if err != nil {
			return errf("%v", err)
		}
		for _, in := range insts {
			emit(in)
		}
	}
	if n == 1 {
		a.textSize = textOff
	}
	return nil
}

func (a *assembler) directive(mnem string, args []string, pass int, sec *section, emitData func([]byte), dataOff *uint64) error {
	switch mnem {
	case ".text":
		*sec = secText
	case ".data":
		*sec = secData
	case ".global", ".globl":
		// Accepted for compatibility; entry is the "main" label.
	case ".equ":
		if len(args) != 2 {
			return fmt.Errorf(".equ needs name, value")
		}
		if pass == 1 {
			v, err := a.evalConst(args[1])
			if err != nil {
				return err
			}
			a.consts[args[0]] = v
		}
	case ".align":
		if *sec != secData {
			return fmt.Errorf(".align only supported in .data")
		}
		if len(args) != 1 {
			return fmt.Errorf(".align needs a byte count")
		}
		v, err := a.evalConst(args[0])
		if err != nil {
			return err
		}
		if v <= 0 || v&(v-1) != 0 {
			return fmt.Errorf(".align argument must be a power of two")
		}
		pad := (uint64(v) - *dataOff%uint64(v)) % uint64(v)
		emitData(make([]byte, pad))
	case ".space":
		if *sec != secData {
			return fmt.Errorf(".space only supported in .data")
		}
		v, err := a.evalConst(argJoin(args))
		if err != nil {
			return err
		}
		if v < 0 {
			return fmt.Errorf(".space size must be non-negative")
		}
		emitData(make([]byte, v))
	case ".word":
		for _, s := range args {
			v, err := a.eval(s, pass)
			if err != nil {
				return err
			}
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], uint32(v))
			emitData(b[:])
		}
	case ".dword":
		for _, s := range args {
			v, err := a.eval(s, pass)
			if err != nil {
				return err
			}
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(v))
			emitData(b[:])
		}
	case ".double":
		for _, s := range args {
			f, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return fmt.Errorf("bad float %q", s)
			}
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
			emitData(b[:])
		}
	case ".asciiz":
		s, err := strconv.Unquote(argJoin(args))
		if err != nil {
			return fmt.Errorf("bad string: %v", err)
		}
		emitData(append([]byte(s), 0))
	default:
		return fmt.Errorf("unknown directive %s", mnem)
	}
	return nil
}

// instruction assembles one mnemonic (real or pseudo) into instructions.
// During pass 1 immediates referencing labels evaluate to 0; only the count
// matters.
func (a *assembler) instruction(mnem string, args []string, pc uint64, pass int) ([]isa.Inst, error) {
	one := func(in isa.Inst, err error) ([]isa.Inst, error) {
		if err != nil {
			return nil, err
		}
		return []isa.Inst{in}, nil
	}

	// Pseudo-instructions first.
	switch mnem {
	case "la", "li":
		// la rd, symbol / li rd, imm — same encoding, LI with 32-bit value.
		if len(args) != 2 {
			return nil, fmt.Errorf("%s needs rd, value", mnem)
		}
		rd, ok := isa.IntRegByName(args[0])
		if !ok {
			return nil, fmt.Errorf("bad register %q", args[0])
		}
		v, err := a.eval(args[1], pass)
		if err != nil {
			return nil, err
		}
		if v < math.MinInt32 || v > math.MaxUint32 {
			return nil, fmt.Errorf("immediate %d out of 32-bit range", v)
		}
		return []isa.Inst{{Op: isa.OpLI, Rd: uint8(rd), Imm: int32(uint32(v))}}, nil
	case "j":
		return one(a.encJ(isa.OpJAL, []string{"zero", argOr(args, 0)}, pc, pass))
	case "jr":
		if len(args) != 1 {
			return nil, fmt.Errorf("jr needs a register")
		}
		return one(a.encJR(isa.OpJALR, []string{"zero", args[0], "0"}, pass))
	case "ret":
		return one(a.encJR(isa.OpJALR, []string{"zero", "ra", "0"}, pass))
	case "call":
		return one(a.encJ(isa.OpJAL, []string{"ra", argOr(args, 0)}, pc, pass))
	case "mv":
		if len(args) != 2 {
			return nil, fmt.Errorf("mv needs rd, rs")
		}
		return one(a.encI(isa.OpADDI, []string{args[0], args[1], "0"}, pass))
	case "not":
		if len(args) != 2 {
			return nil, fmt.Errorf("not needs rd, rs")
		}
		return one(a.encI(isa.OpXORI, []string{args[0], args[1], "-1"}, pass))
	case "neg":
		if len(args) != 2 {
			return nil, fmt.Errorf("neg needs rd, rs")
		}
		return one(a.encR(isa.OpSUB, []string{args[0], "zero", args[1]}, pass))
	case "beqz":
		if len(args) != 2 {
			return nil, fmt.Errorf("beqz needs rs, label")
		}
		return one(a.encB(isa.OpBEQ, []string{args[0], "zero", args[1]}, pc, pass))
	case "bnez":
		if len(args) != 2 {
			return nil, fmt.Errorf("bnez needs rs, label")
		}
		return one(a.encB(isa.OpBNE, []string{args[0], "zero", args[1]}, pc, pass))
	case "bgt":
		if len(args) != 3 {
			return nil, fmt.Errorf("bgt needs rs1, rs2, label")
		}
		return one(a.encB(isa.OpBLT, []string{args[1], args[0], args[2]}, pc, pass))
	case "ble":
		if len(args) != 3 {
			return nil, fmt.Errorf("ble needs rs1, rs2, label")
		}
		return one(a.encB(isa.OpBGE, []string{args[1], args[0], args[2]}, pc, pass))
	}

	op, ok := isa.OpByName(mnem)
	if !ok {
		return nil, fmt.Errorf("unknown mnemonic %q", mnem)
	}
	switch op.Format() {
	case isa.FmtNone:
		return []isa.Inst{{Op: op}}, nil
	case isa.FmtR:
		return one(a.encR(op, args, pass))
	case isa.FmtI:
		return one(a.encI(op, args, pass))
	case isa.FmtLI:
		if len(args) != 2 {
			return nil, fmt.Errorf("li needs rd, imm")
		}
		return a.instruction("li", args, pc, pass)
	case isa.FmtLoad, isa.FmtFLoad:
		return one(a.encMem(op, args, pass, op.Format() == isa.FmtFLoad, true))
	case isa.FmtStore, isa.FmtFStore:
		return one(a.encMem(op, args, pass, op.Format() == isa.FmtFStore, false))
	case isa.FmtAMO:
		return one(a.encR(op, args, pass))
	case isa.FmtB:
		return one(a.encB(op, args, pc, pass))
	case isa.FmtJ:
		return one(a.encJ(op, args, pc, pass))
	case isa.FmtJR:
		return one(a.encJR(op, args, pass))
	case isa.FmtFR:
		return one(a.encFR(op, args))
	case isa.FmtF2:
		return one(a.encF2(op, args))
	case isa.FmtFCmp:
		return one(a.encFCmp(op, args))
	case isa.FmtFCvtIF:
		return one(a.encCvt(op, args, true))
	case isa.FmtFCvtFI:
		return one(a.encCvt(op, args, false))
	case isa.FmtSys:
		if len(args) != 1 {
			return nil, fmt.Errorf("syscall needs a number")
		}
		v, err := a.eval(args[0], pass)
		if err != nil {
			return nil, err
		}
		// Syscalls implicitly write their result to rv (r3).
		return []isa.Inst{{Op: op, Rd: isa.RegRV, Imm: int32(v)}}, nil
	}
	return nil, fmt.Errorf("unhandled format for %s", mnem)
}

func (a *assembler) intReg(s string) (uint8, error) {
	r, ok := isa.IntRegByName(s)
	if !ok {
		return 0, fmt.Errorf("bad integer register %q", s)
	}
	return uint8(r), nil
}

func (a *assembler) fpReg(s string) (uint8, error) {
	r, ok := isa.FPRegByName(s)
	if !ok {
		return 0, fmt.Errorf("bad fp register %q", s)
	}
	return uint8(r), nil
}

func (a *assembler) encR(op isa.Op, args []string, pass int) (isa.Inst, error) {
	if len(args) != 3 {
		return isa.Inst{}, fmt.Errorf("%s needs rd, rs1, rs2", op)
	}
	rd, err := a.intReg(args[0])
	if err != nil {
		return isa.Inst{}, err
	}
	rs1, err := a.intReg(args[1])
	if err != nil {
		return isa.Inst{}, err
	}
	rs2, err := a.intReg(args[2])
	if err != nil {
		return isa.Inst{}, err
	}
	return isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}, nil
}

func (a *assembler) encI(op isa.Op, args []string, pass int) (isa.Inst, error) {
	if len(args) != 3 {
		return isa.Inst{}, fmt.Errorf("%s needs rd, rs1, imm", op)
	}
	rd, err := a.intReg(args[0])
	if err != nil {
		return isa.Inst{}, err
	}
	rs1, err := a.intReg(args[1])
	if err != nil {
		return isa.Inst{}, err
	}
	v, err := a.eval(args[2], pass)
	if err != nil {
		return isa.Inst{}, err
	}
	if v < math.MinInt32 || v > math.MaxInt32 {
		return isa.Inst{}, fmt.Errorf("immediate %d out of range", v)
	}
	return isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: int32(v)}, nil
}

// encMem handles "op reg, imm(rs1)" loads and stores, integer and fp.
func (a *assembler) encMem(op isa.Op, args []string, pass int, fp, load bool) (isa.Inst, error) {
	if len(args) != 2 {
		return isa.Inst{}, fmt.Errorf("%s needs reg, offset(base)", op)
	}
	var reg uint8
	var err error
	if fp {
		reg, err = a.fpReg(args[0])
	} else {
		reg, err = a.intReg(args[0])
	}
	if err != nil {
		return isa.Inst{}, err
	}
	imm, base, err := a.memOperand(args[1], pass)
	if err != nil {
		return isa.Inst{}, err
	}
	in := isa.Inst{Op: op, Rs1: base, Imm: imm}
	if load {
		in.Rd = reg
	} else {
		in.Rs2 = reg
	}
	return in, nil
}

// memOperand parses "offset(base)".
func (a *assembler) memOperand(s string, pass int) (int32, uint8, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q (want offset(base))", s)
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		offStr = "0"
	}
	base, err := a.intReg(strings.TrimSpace(s[open+1 : len(s)-1]))
	if err != nil {
		return 0, 0, err
	}
	v, err := a.eval(offStr, pass)
	if err != nil {
		return 0, 0, err
	}
	if v < math.MinInt32 || v > math.MaxInt32 {
		return 0, 0, fmt.Errorf("offset %d out of range", v)
	}
	return int32(v), base, nil
}

func (a *assembler) encB(op isa.Op, args []string, pc uint64, pass int) (isa.Inst, error) {
	if len(args) != 3 {
		return isa.Inst{}, fmt.Errorf("%s needs rs1, rs2, target", op)
	}
	rs1, err := a.intReg(args[0])
	if err != nil {
		return isa.Inst{}, err
	}
	rs2, err := a.intReg(args[1])
	if err != nil {
		return isa.Inst{}, err
	}
	off, err := a.branchOffset(args[2], pc, pass)
	if err != nil {
		return isa.Inst{}, err
	}
	return isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: off}, nil
}

func (a *assembler) encJ(op isa.Op, args []string, pc uint64, pass int) (isa.Inst, error) {
	if len(args) != 2 {
		return isa.Inst{}, fmt.Errorf("%s needs rd, target", op)
	}
	rd, err := a.intReg(args[0])
	if err != nil {
		return isa.Inst{}, err
	}
	off, err := a.branchOffset(args[1], pc, pass)
	if err != nil {
		return isa.Inst{}, err
	}
	return isa.Inst{Op: op, Rd: rd, Imm: off}, nil
}

func (a *assembler) encJR(op isa.Op, args []string, pass int) (isa.Inst, error) {
	if len(args) != 3 {
		return isa.Inst{}, fmt.Errorf("%s needs rd, rs1, imm", op)
	}
	return a.encI(op, args, pass)
}

func (a *assembler) encFR(op isa.Op, args []string) (isa.Inst, error) {
	if len(args) != 3 {
		return isa.Inst{}, fmt.Errorf("%s needs fd, fs1, fs2", op)
	}
	fd, err := a.fpReg(args[0])
	if err != nil {
		return isa.Inst{}, err
	}
	fs1, err := a.fpReg(args[1])
	if err != nil {
		return isa.Inst{}, err
	}
	fs2, err := a.fpReg(args[2])
	if err != nil {
		return isa.Inst{}, err
	}
	return isa.Inst{Op: op, Rd: fd, Rs1: fs1, Rs2: fs2}, nil
}

func (a *assembler) encF2(op isa.Op, args []string) (isa.Inst, error) {
	if len(args) != 2 {
		return isa.Inst{}, fmt.Errorf("%s needs fd, fs1", op)
	}
	fd, err := a.fpReg(args[0])
	if err != nil {
		return isa.Inst{}, err
	}
	fs1, err := a.fpReg(args[1])
	if err != nil {
		return isa.Inst{}, err
	}
	return isa.Inst{Op: op, Rd: fd, Rs1: fs1}, nil
}

func (a *assembler) encFCmp(op isa.Op, args []string) (isa.Inst, error) {
	if len(args) != 3 {
		return isa.Inst{}, fmt.Errorf("%s needs rd, fs1, fs2", op)
	}
	rd, err := a.intReg(args[0])
	if err != nil {
		return isa.Inst{}, err
	}
	fs1, err := a.fpReg(args[1])
	if err != nil {
		return isa.Inst{}, err
	}
	fs2, err := a.fpReg(args[2])
	if err != nil {
		return isa.Inst{}, err
	}
	return isa.Inst{Op: op, Rd: rd, Rs1: fs1, Rs2: fs2}, nil
}

func (a *assembler) encCvt(op isa.Op, args []string, toFP bool) (isa.Inst, error) {
	if len(args) != 2 {
		return isa.Inst{}, fmt.Errorf("%s needs dst, src", op)
	}
	if toFP {
		fd, err := a.fpReg(args[0])
		if err != nil {
			return isa.Inst{}, err
		}
		rs, err := a.intReg(args[1])
		if err != nil {
			return isa.Inst{}, err
		}
		return isa.Inst{Op: op, Rd: fd, Rs1: rs}, nil
	}
	rd, err := a.intReg(args[0])
	if err != nil {
		return isa.Inst{}, err
	}
	fs, err := a.fpReg(args[1])
	if err != nil {
		return isa.Inst{}, err
	}
	return isa.Inst{Op: op, Rd: rd, Rs1: fs}, nil
}

func (a *assembler) branchOffset(target string, pc uint64, pass int) (int32, error) {
	v, err := a.eval(target, pass)
	if err != nil {
		return 0, err
	}
	if pass == 1 {
		return 0, nil
	}
	off := v - int64(pc)
	if off < math.MinInt32 || off > math.MaxInt32 {
		return 0, fmt.Errorf("branch target %#x out of range from %#x", v, pc)
	}
	return int32(off), nil
}

// eval evaluates an expression with +, -, *, /, and << over numbers, .equ
// constants, and labels (usual precedence; no parentheses). During pass 1,
// unresolved labels evaluate to 0 (only instruction counts matter then).
func (a *assembler) eval(expr string, pass int) (int64, error) {
	return a.evalExpr(expr, pass == 1)
}

// evalConst evaluates an expression that may only use numbers and constants.
func (a *assembler) evalConst(expr string) (int64, error) {
	return a.evalExpr(expr, false)
}

func (a *assembler) evalExpr(expr string, lenient bool) (int64, error) {
	p := &exprParser{src: expr, a: a, lenient: lenient}
	v, err := p.additive()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.i != len(p.src) {
		return 0, fmt.Errorf("trailing junk in expression %q", expr)
	}
	return v, nil
}

type exprParser struct {
	src     string
	i       int
	a       *assembler
	lenient bool
}

func (p *exprParser) skipSpace() {
	for p.i < len(p.src) && (p.src[p.i] == ' ' || p.src[p.i] == '\t') {
		p.i++
	}
}

func (p *exprParser) additive() (int64, error) {
	v, err := p.multiplicative()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if p.i >= len(p.src) {
			return v, nil
		}
		switch {
		case p.src[p.i] == '+':
			p.i++
			r, err := p.multiplicative()
			if err != nil {
				return 0, err
			}
			v += r
		case p.src[p.i] == '-':
			p.i++
			r, err := p.multiplicative()
			if err != nil {
				return 0, err
			}
			v -= r
		case strings.HasPrefix(p.src[p.i:], "<<"):
			p.i += 2
			r, err := p.multiplicative()
			if err != nil {
				return 0, err
			}
			v <<= uint64(r) & 63
		default:
			return v, nil
		}
	}
}

func (p *exprParser) multiplicative() (int64, error) {
	v, err := p.atom()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if p.i >= len(p.src) {
			return v, nil
		}
		switch p.src[p.i] {
		case '*':
			p.i++
			r, err := p.atom()
			if err != nil {
				return 0, err
			}
			v *= r
		case '/':
			p.i++
			r, err := p.atom()
			if err != nil {
				return 0, err
			}
			if r == 0 {
				return 0, fmt.Errorf("division by zero in expression")
			}
			v /= r
		case '%':
			p.i++
			r, err := p.atom()
			if err != nil {
				return 0, err
			}
			if r == 0 {
				return 0, fmt.Errorf("modulo by zero in expression")
			}
			v %= r
		default:
			return v, nil
		}
	}
}

func (p *exprParser) atom() (int64, error) {
	p.skipSpace()
	if p.i >= len(p.src) {
		return 0, fmt.Errorf("empty expression")
	}
	if p.src[p.i] == '-' {
		p.i++
		v, err := p.atom()
		return -v, err
	}
	if p.src[p.i] == '\'' {
		// Character literal.
		j := strings.IndexByte(p.src[p.i+1:], '\'')
		if j < 0 {
			return 0, fmt.Errorf("unterminated character literal")
		}
		lit := p.src[p.i : p.i+j+2]
		p.i += j + 2
		return p.a.term(lit, p.lenient)
	}
	j := p.i
	for j < len(p.src) && isTermChar(p.src[j]) {
		j++
	}
	if j == p.i {
		return 0, fmt.Errorf("bad expression at %q", p.src[p.i:])
	}
	tok := p.src[p.i:j]
	p.i = j
	return p.a.term(tok, p.lenient)
}

func isTermChar(c byte) bool {
	switch {
	case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		return true
	case c == '_', c == '.', c == 'x', c == 'X':
		return true
	}
	return false
}

func (a *assembler) term(s string, lenient bool) (int64, error) {
	if len(s) >= 3 && s[0] == '\'' {
		r, err := strconv.Unquote(s)
		if err == nil && len(r) == 1 {
			return int64(r[0]), nil
		}
	}
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		return v, nil
	}
	if v, ok := a.consts[s]; ok {
		return v, nil
	}
	if v, ok := a.symbols[s]; ok {
		return int64(v), nil
	}
	if _, ok := a.dataLabels[s]; ok {
		// Known data label, address not final yet (pass 1).
		return 0, nil
	}
	if lenient && isIdent(s) {
		return 0, nil
	}
	return 0, fmt.Errorf("undefined symbol %q", s)
}

func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inStr = !inStr
		case '#', ';':
			if !inStr {
				return line[:i]
			}
		case '/':
			if !inStr && i+1 < len(line) && line[i+1] == '/' {
				return line[:i]
			}
		}
	}
	return line
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c == '_' || c == '.':
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// splitOperands splits "op a, b, 8(r1)" into ["op", "a", "b", "8(r1)"].
// Strings (for .asciiz) are kept intact.
func splitOperands(line string) []string {
	var fields []string
	// First field: mnemonic, ends at first whitespace.
	i := 0
	for i < len(line) && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	fields = append(fields, line[:i])
	rest := strings.TrimSpace(line[i:])
	if rest == "" {
		return fields
	}
	var cur strings.Builder
	inStr := false
	depth := 0
	for i := 0; i < len(rest); i++ {
		c := rest[i]
		switch {
		case c == '"':
			inStr = !inStr
			cur.WriteByte(c)
		case c == '(' && !inStr:
			depth++
			cur.WriteByte(c)
		case c == ')' && !inStr:
			depth--
			cur.WriteByte(c)
		case c == ',' && !inStr && depth == 0:
			fields = append(fields, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if s := strings.TrimSpace(cur.String()); s != "" {
		fields = append(fields, s)
	}
	return fields
}

func argJoin(args []string) string { return strings.Join(args, ", ") }

func argOr(args []string, i int) string {
	if i < len(args) {
		return args[i]
	}
	return ""
}
