package asm

import (
	"strings"
	"testing"

	"slacksim/internal/isa"
)

func assemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src, Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func TestBasicProgram(t *testing.T) {
	p := assemble(t, `
main:
    li   r8, 42
    addi r8, r8, -2
    syscall 0
`)
	if len(p.Text) != 3 {
		t.Fatalf("got %d instructions", len(p.Text))
	}
	if p.Text[0].Op != isa.OpLI || p.Text[0].Imm != 42 {
		t.Errorf("li = %v", p.Text[0])
	}
	if p.Text[1].Op != isa.OpADDI || p.Text[1].Imm != -2 {
		t.Errorf("addi = %v", p.Text[1])
	}
	if p.Text[2].Op != isa.OpSYSCALL || p.Text[2].Rd != isa.RegRV {
		t.Errorf("syscall = %v", p.Text[2])
	}
	if p.Entry != p.TextBase {
		t.Errorf("entry %#x != text base %#x", p.Entry, p.TextBase)
	}
}

func TestBranchTargets(t *testing.T) {
	p := assemble(t, `
main:
    li  r8, 3
loop:
    addi r8, r8, -1
    bne r8, zero, loop
    j   done
    nop
done:
    syscall 0
`)
	// bne at index 2 targets loop at index 1: offset -8.
	if p.Text[2].Imm != -8 {
		t.Errorf("bne offset = %d, want -8", p.Text[2].Imm)
	}
	// j (jal zero) at index 3 targets done at index 5: offset +16.
	if p.Text[3].Op != isa.OpJAL || p.Text[3].Rd != isa.RegZero || p.Text[3].Imm != 16 {
		t.Errorf("j = %v", p.Text[3])
	}
}

func TestDataDirectivesAndSymbols(t *testing.T) {
	p := assemble(t, `
.equ SIZE, 4
main:
    la r8, arr
    ld r9, SIZE*8-8(r8)
.data
.align 8
arr:  .dword 1, 2, 3, 0x10
vals: .word 7, -1
f:    .double 1.5
s:    .asciiz "hi"
buf:  .space SIZE*2
end:
`)
	arr := p.Symbols["arr"]
	if arr != p.DataBase {
		t.Errorf("arr at %#x, want data base %#x", arr, p.DataBase)
	}
	if p.Text[0].Imm != int32(arr) {
		t.Errorf("la imm = %#x, want %#x", p.Text[0].Imm, arr)
	}
	if p.Text[1].Imm != 24 {
		t.Errorf("ld offset = %d, want 24", p.Text[1].Imm)
	}
	// 4 dwords + 2 words + 1 double + "hi\0" + 8 space = 32+8+8+3+8 = 59.
	if got := p.Symbols["end"] - arr; got != 59 {
		t.Errorf("data layout size = %d, want 59", got)
	}
	// Check stored dword values.
	if p.Data[0] != 1 || p.Data[24] != 0x10 {
		t.Errorf("dword bytes = % x", p.Data[:32])
	}
	if string(p.Data[48:50]) != "hi" || p.Data[50] != 0 {
		t.Errorf("asciiz bytes = % x", p.Data[48:51])
	}
}

func TestPseudoInstructions(t *testing.T) {
	p := assemble(t, `
main:
    mv   r8, r9
    not  r10, r11
    neg  r12, r13
    beqz r8, main
    bnez r8, main
    bgt  r8, r9, main
    ble  r8, r9, main
    jr   r15
    ret
    call main
`)
	want := []isa.Op{isa.OpADDI, isa.OpXORI, isa.OpSUB, isa.OpBEQ, isa.OpBNE,
		isa.OpBLT, isa.OpBGE, isa.OpJALR, isa.OpJALR, isa.OpJAL}
	for i, op := range want {
		if p.Text[i].Op != op {
			t.Errorf("pseudo %d: got %v, want %v", i, p.Text[i].Op, op)
		}
	}
	// bgt swaps operands: blt r9, r8.
	if p.Text[5].Rs1 != 9 || p.Text[5].Rs2 != 8 {
		t.Errorf("bgt operands = %v", p.Text[5])
	}
	// ret = jalr zero, ra, 0.
	if p.Text[8].Rd != isa.RegZero || p.Text[8].Rs1 != isa.RegRA {
		t.Errorf("ret = %v", p.Text[8])
	}
}

func TestMemOperands(t *testing.T) {
	p := assemble(t, `
main:
    ld  r8, 16(sp)
    sd  r9, -8(sp)
    fld f1, 0(r8)
    fsd f2, 24(r8)
    lw  r10, (r11)
`)
	if p.Text[0].Rs1 != isa.RegSP || p.Text[0].Imm != 16 || p.Text[0].Rd != 8 {
		t.Errorf("ld = %v", p.Text[0])
	}
	if p.Text[1].Rs2 != 9 || p.Text[1].Imm != -8 {
		t.Errorf("sd = %v", p.Text[1])
	}
	if p.Text[3].Rs2 != 2 || p.Text[3].Imm != 24 {
		t.Errorf("fsd = %v", p.Text[3])
	}
	if p.Text[4].Imm != 0 {
		t.Errorf("empty offset = %v", p.Text[4])
	}
}

func TestExpressions(t *testing.T) {
	p := assemble(t, `
.equ A, 10
.equ B, A*4+2
.equ C, 1<<6
main:
    li r8, B
    li r9, C-A
    li r10, 100/7
    li r11, 100%7
    li r12, 'x'
`)
	for i, want := range []int32{42, 54, 14, 2, 'x'} {
		if p.Text[i].Imm != want {
			t.Errorf("expr %d = %d, want %d", i, p.Text[i].Imm, want)
		}
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		"undefined symbol":   "main:\n j nowhere\n",
		"bad register":       "main:\n add r8, r99, r1\n",
		"duplicate label":    "a:\n nop\na:\n nop\n",
		"unknown mnemonic":   "main:\n frobnicate r1\n",
		"bad operand count":  "main:\n add r1, r2\n",
		"bad directive":      ".bogus 12\n",
		"instr in data":      ".data\n add r1, r2, r3\n",
		"div by zero":        ".equ X, 1/0\n",
		"bad memory operand": "main:\n ld r1, r2\n",
	}
	for name, src := range cases {
		if _, err := Assemble(src, Options{}); err == nil {
			t.Errorf("%s: expected error for %q", name, src)
		}
	}
}

func TestErrorsIncludeLineNumbers(t *testing.T) {
	_, err := Assemble("main:\n nop\n bad r1\n", Options{})
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %v does not carry the line number", err)
	}
}

func TestComments(t *testing.T) {
	p := assemble(t, `
# full line
main:            ; trailing
    nop          # trailing too
    li r8, 1     // c++ style
.data
s: .asciiz "a#b;c"   # comment after string
`)
	if len(p.Text) != 2 {
		t.Fatalf("got %d instructions", len(p.Text))
	}
	if string(p.Data[:5]) != "a#b;c" {
		t.Errorf("string with comment chars = %q", p.Data[:5])
	}
}

func TestEntryDefaultsToMain(t *testing.T) {
	p := assemble(t, `
helper:
    ret
main:
    nop
`)
	if p.Entry != p.Symbols["main"] {
		t.Errorf("entry %#x != main %#x", p.Entry, p.Symbols["main"])
	}
}

func TestCustomBases(t *testing.T) {
	p, err := Assemble("main:\n nop\n.data\nx: .dword 1\n", Options{TextBase: 0x10000, DataBase: 0x40000})
	if err != nil {
		t.Fatal(err)
	}
	if p.TextBase != 0x10000 || p.Symbols["main"] != 0x10000 {
		t.Errorf("text base %#x main %#x", p.TextBase, p.Symbols["main"])
	}
	if p.Symbols["x"] != 0x40000 {
		t.Errorf("x at %#x", p.Symbols["x"])
	}
}

func TestTextBytesRoundTrip(t *testing.T) {
	p := assemble(t, "main:\n add r1, r2, r3\n li r4, -7\n")
	b := p.TextBytes()
	if len(b) != 16 {
		t.Fatalf("text bytes = %d", len(b))
	}
	in := isa.Decode(uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56)
	if in.Op != isa.OpADD {
		t.Errorf("first decoded = %v", in)
	}
}

func TestAllWorkloadOpsDisassemble(t *testing.T) {
	// Every opcode must survive an assemble -> disassemble -> reference
	// check for at least one operand form.
	p := assemble(t, `
main:
    add r1, r2, r3
    fadd f1, f2, f3
    fsqrt f4, f5
    fcvt.d.w f6, r7
    fcvt.w.d r8, f9
    fmv.x.d r10, f11
    fmv.d.x f12, r13
    feq r14, f15, f16
    amoadd r17, r18, r19
    cas r20, r21, r22
`)
	for _, in := range p.Text {
		if in.Disassemble(0) == "" {
			t.Errorf("%v: no disassembly", in.Op)
		}
	}
}
