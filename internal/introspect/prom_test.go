package introspect

import (
	"strings"
	"testing"

	"slacksim/internal/metrics"
)

// TestWritePrometheusGolden pins the exact exposition-format rendering of
// a small registry: family ordering, _total suffixing, sanitisation, and
// cumulative histogram buckets.
func TestWritePrometheusGolden(t *testing.T) {
	r := metrics.NewRegistry()
	r.Counter("engine.events.processed").Add(42)
	r.Gauge("event.c0.inq.depth").Set(3)
	h := r.Histogram("engine.mem.lat_cycles")
	h.Observe(0) // bucket 0: v <= 0
	h.Observe(1) // bucket 1: le 1
	h.Observe(2) // bucket 2: le 3
	h.Observe(3) // bucket 2: le 3
	h.Observe(9) // bucket 4: le 15

	var sb strings.Builder
	WritePrometheus(&sb, r.Snapshot())
	got := sb.String()
	want := `# HELP slacksim_engine_events_processed_total Counter engine.events.processed.
# TYPE slacksim_engine_events_processed_total counter
slacksim_engine_events_processed_total 42
# HELP slacksim_event_c0_inq_depth Gauge event.c0.inq.depth.
# TYPE slacksim_event_c0_inq_depth gauge
slacksim_event_c0_inq_depth 3
# HELP slacksim_engine_mem_lat_cycles Histogram engine.mem.lat_cycles.
# TYPE slacksim_engine_mem_lat_cycles histogram
slacksim_engine_mem_lat_cycles_bucket{le="0"} 1
slacksim_engine_mem_lat_cycles_bucket{le="1"} 2
slacksim_engine_mem_lat_cycles_bucket{le="3"} 4
slacksim_engine_mem_lat_cycles_bucket{le="7"} 4
slacksim_engine_mem_lat_cycles_bucket{le="15"} 5
slacksim_engine_mem_lat_cycles_bucket{le="+Inf"} 5
slacksim_engine_mem_lat_cycles_sum 15
slacksim_engine_mem_lat_cycles_count 5
`
	if got != want {
		t.Errorf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusValidity checks structural invariants over a larger
// snapshot: every sample line's family has exactly one HELP/TYPE pair, no
// family is emitted twice, and names use only the Prometheus charset.
func TestWritePrometheusValidity(t *testing.T) {
	r := metrics.NewRegistry()
	r.Counter("trace.dropped.core 0").Add(1) // space must sanitise
	r.Counter("engine.c0.mem.lat").Add(2)
	r.Gauge("engine.c0.straggler.held").Set(7)
	r.Histogram("cpu.c1.issue_width").Observe(4)

	var sb strings.Builder
	WritePrometheus(&sb, r.Snapshot())

	typeSeen := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fam := strings.Fields(line)[2]
			typeSeen[fam]++
			if typeSeen[fam] > 1 {
				t.Errorf("family %s declared twice", fam)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line[:strings.IndexAny(line, "{ ")]
		if !strings.HasPrefix(name, "slacksim_") {
			t.Errorf("unprefixed sample %q", line)
		}
		for _, r := range name {
			ok := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
				r >= '0' && r <= '9' || r == '_' || r == ':'
			if !ok {
				t.Errorf("invalid rune %q in metric name %q", r, name)
			}
		}
	}
	if len(typeSeen) != 4 {
		t.Errorf("got %d families, want 4", len(typeSeen))
	}
}

// TestSanitizeCollision: two registry names that collapse to one family
// must emit only the first — duplicate families are a protocol violation.
func TestSanitizeCollision(t *testing.T) {
	r := metrics.NewRegistry()
	r.Counter("a.b").Add(1)
	r.Counter("a_b").Add(2)
	var sb strings.Builder
	WritePrometheus(&sb, r.Snapshot())
	if n := strings.Count(sb.String(), "# TYPE slacksim_a_b_total counter"); n != 1 {
		t.Errorf("family slacksim_a_b_total declared %d times, want 1:\n%s", n, sb.String())
	}
}
