package introspect

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"slacksim/internal/metrics"
)

func newTestServer(t *testing.T) *Server {
	t.Helper()
	s, err := New("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// TestServerDetached: every endpoint answers 200 with a "not attached"
// payload before any machine installs its sources.
func TestServerDetached(t *testing.T) {
	s := newTestServer(t)
	base := "http://" + s.Addr()

	code, body, hdr := get(t, base+"/metrics")
	if code != 200 || !strings.Contains(body, "no machine attached") {
		t.Errorf("/metrics detached: code %d body %q", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}

	code, body, _ = get(t, base+"/slack")
	if code != 200 {
		t.Errorf("/slack detached: code %d", code)
	}
	var snap SlackSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/slack detached: bad JSON %q: %v", body, err)
	}
	if snap.Attached {
		t.Error("/slack detached reports attached=true")
	}

	if code, body, _ = get(t, base+"/stallz"); code != 200 || !strings.Contains(body, "no machine attached") {
		t.Errorf("/stallz detached: code %d body %q", code, body)
	}
	if code, _, _ = get(t, base+"/debug/pprof/goroutine?debug=1"); code != 200 {
		t.Errorf("pprof: code %d", code)
	}
	if code, _, _ = get(t, base+"/nope"); code != 404 {
		t.Errorf("unknown path: code %d, want 404", code)
	}
}

// TestServerAttached exercises the swappable sources end to end.
func TestServerAttached(t *testing.T) {
	s := newTestServer(t)
	base := "http://" + s.Addr()

	r := metrics.NewRegistry()
	r.Counter("engine.events.processed").Add(7)
	s.SetMetrics(r.Snapshot)
	s.SetSlack(func() SlackSnapshot {
		return SlackSnapshot{Attached: true, Scheme: "S9*", Global: 123,
			Cores: []SlackCore{{ID: 0, Local: 125, MaxLocal: 132}}}
	})
	s.SetStall(func(format string) ([]byte, error) {
		if format == "json" {
			return []byte(`{"scheme":"S9*"}`), nil
		}
		return []byte("engine snapshot: scheme=S9*"), nil
	})

	_, body, _ := get(t, base+"/metrics")
	if !strings.Contains(body, "slacksim_engine_events_processed_total 7") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	_, body, _ = get(t, base+"/slack")
	var snap SlackSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Attached || snap.Scheme != "S9*" || len(snap.Cores) != 1 || snap.Cores[0].MaxLocal != 132 {
		t.Errorf("/slack = %+v", snap)
	}
	_, body, hdr := get(t, base+"/stallz?format=json")
	if hdr.Get("Content-Type") != "application/json" || !strings.Contains(body, `"S9*"`) {
		t.Errorf("/stallz?format=json: ct %q body %q", hdr.Get("Content-Type"), body)
	}
	_, body, _ = get(t, base+"/stallz")
	if !strings.HasPrefix(body, "engine snapshot") {
		t.Errorf("/stallz text: %q", body)
	}

	// Detach again (a sweep between runs).
	s.SetSlack(nil)
	_, body, _ = get(t, base+"/slack")
	if err := json.Unmarshal([]byte(body), &snap); err != nil || snap.Attached {
		t.Errorf("detached /slack = %q err %v", body, err)
	}
}

// TestServerSSE streams /slack, reads at least two frames, and verifies
// that closing the server terminates the stream and leaks no goroutines.
func TestServerSSE(t *testing.T) {
	before := runtime.NumGoroutine()
	s := newTestServer(t)

	var n int64
	s.SetSlack(func() SlackSnapshot {
		n++
		return SlackSnapshot{Attached: true, Global: n}
	})

	resp, err := http.Get(fmt.Sprintf("http://%s/slack?stream=1&interval_ms=10", s.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var frames []SlackSnapshot
	for sc.Scan() && len(frames) < 3 {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var snap SlackSnapshot
		if err := json.Unmarshal([]byte(line[len("data: "):]), &snap); err != nil {
			t.Fatalf("bad SSE frame %q: %v", line, err)
		}
		frames = append(frames, snap)
	}
	if len(frames) < 2 {
		t.Fatalf("got %d SSE frames, want >= 2", len(frames))
	}
	if frames[1].Global <= frames[0].Global {
		t.Errorf("frames not advancing: %+v", frames)
	}

	// Close the server mid-stream: the handler goroutine must exit.
	s.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err == nil {
		// EOF is fine too — the stream just has to end.
		_ = err
	}
	resp.Body.Close()
	if after := settle(before); after > before {
		t.Errorf("goroutines leaked: %d -> %d", before, after)
	}
}

// settle waits for transient goroutines (HTTP keep-alives, the closed
// server's Serve loop) to exit.
func settle(before int) int {
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}
