package introspect

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"slacksim/internal/metrics"
)

// This file renders a metrics.Snapshot in the Prometheus text exposition
// format (version 0.0.4): every family gets HELP/TYPE headers, counters
// carry the conventional _total suffix, and the engine's power-of-two
// histograms become cumulative le-bucketed Prometheus histograms. Names
// are prefixed "slacksim_" and sanitised to the Prometheus charset; if two
// registry names collapse to the same family after sanitisation, only the
// first (in sorted registry order) is emitted — duplicate families are a
// protocol violation scrapers reject outright.

// namePrefix namespaces every exported family.
const namePrefix = "slacksim_"

// sanitizeName maps a registry name ("engine.c3.mem.lat_cycles") to a
// Prometheus metric name: [a-zA-Z0-9_:] only, with every other rune
// replaced by '_', and a leading digit guarded by an underscore.
func sanitizeName(name string) string {
	var b strings.Builder
	b.Grow(len(namePrefix) + len(name))
	b.WriteString(namePrefix)
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP line's text per the exposition format: only
// backslash and newline are special.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders the snapshot to w. Output is deterministic:
// counters, then gauges, then histograms, each sorted by registry name.
func WritePrometheus(w io.Writer, s metrics.Snapshot) {
	seen := make(map[string]bool)
	emit := func(family string) bool {
		if seen[family] {
			return false
		}
		seen[family] = true
		return true
	}

	for _, name := range sortedKeys(s.Counters) {
		fam := sanitizeName(name) + "_total"
		if !emit(fam) {
			continue
		}
		fmt.Fprintf(w, "# HELP %s Counter %s.\n", fam, escapeHelp(name))
		fmt.Fprintf(w, "# TYPE %s counter\n", fam)
		fmt.Fprintf(w, "%s %d\n", fam, s.Counters[name])
	}

	for _, name := range sortedKeys(s.Gauges) {
		fam := sanitizeName(name)
		if !emit(fam) {
			continue
		}
		fmt.Fprintf(w, "# HELP %s Gauge %s.\n", fam, escapeHelp(name))
		fmt.Fprintf(w, "# TYPE %s gauge\n", fam)
		fmt.Fprintf(w, "%s %d\n", fam, s.Gauges[name])
	}

	for _, name := range sortedKeys(s.Histograms) {
		fam := sanitizeName(name)
		if !emit(fam) {
			continue
		}
		h := s.Histograms[name]
		fmt.Fprintf(w, "# HELP %s Histogram %s.\n", fam, escapeHelp(name))
		fmt.Fprintf(w, "# TYPE %s histogram\n", fam)
		writeHistBuckets(w, fam, h)
		fmt.Fprintf(w, "%s_sum %d\n", fam, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", fam, h.Count)
	}
}

// writeHistBuckets renders the power-of-two buckets as cumulative le
// buckets. Registry bucket 0 holds v <= 0 (le="0"); bucket i holds
// integer values in [2^(i-1), 2^i), i.e. v <= 2^i - 1 cumulatively.
// Trailing empty buckets are elided — the +Inf bucket always closes the
// family with the total count, so the cumulative series stays valid.
func writeHistBuckets(w io.Writer, fam string, h metrics.HistSnapshot) {
	last := -1
	for i, n := range h.Buckets {
		if n != 0 {
			last = i
		}
	}
	cum := int64(0)
	for i := 0; i <= last; i++ {
		cum += h.Buckets[i]
		var le string
		switch {
		case i == 0:
			le = "0"
		case i >= 63:
			// The last bucket also absorbs values past 2^62; its finite
			// upper bound is the int64 maximum.
			le = fmt.Sprintf("%d", int64(math.MaxInt64))
		default:
			le = fmt.Sprintf("%d", (int64(1)<<uint(i))-1)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", fam, le, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", fam, h.Count)
}
