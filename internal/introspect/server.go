// Package introspect is the engine's live introspection server: an opt-in
// HTTP endpoint that exposes a running simulation's metrics registry in
// Prometheus text exposition format (/metrics), a live per-core slack view
// as a JSON snapshot or a Server-Sent Events stream (/slack), an on-demand
// forensic engine snapshot on a healthy run (/stallz, reusing the stall
// watchdog's StallReport rendering), and the standard net/http/pprof
// handlers (/debug/pprof/). The paper's whole argument is about where
// parallel-simulation time goes — slack between per-core local times and
// the global time, and the latency of requests through the shared memory
// hierarchy — and this server makes those quantities observable while the
// run is still going, instead of post mortem.
//
// The server is deliberately decoupled from the engine: it holds swappable
// source callbacks (SetMetrics/SetSlack/SetStall) that
// core.Machine.EnableIntrospection installs, so the server can be started
// before any machine exists, survive across the many machines of a bench
// sweep, and always answer its endpoints (with a "not attached" payload
// when no run is live — keeping health checks and scrapers simple).
package introspect

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"slacksim/internal/metrics"
)

// SlackSnapshot is one live observation of the engine's pacing state — the
// payload of /slack and of each SSE frame.
type SlackSnapshot struct {
	// Attached is false until a machine installs its sources (the server
	// may be up before, between, or after runs).
	Attached bool `json:"attached"`
	// Scheme is the running scheme's name ("CC", "S9*", ...).
	Scheme string `json:"scheme,omitempty"`
	// Global is the published global simulated time and Root the min-tree
	// root (the next global-time candidate); Root is -1 while every live
	// core is blocked in the kernel.
	Global int64 `json:"global"`
	Root   int64 `json:"root"`
	// GQDepth mirrors the manager's global event-queue depth.
	GQDepth int64 `json:"gq_depth"`
	// Done marks a finished run (the sweep may start another).
	Done  bool        `json:"done"`
	Cores []SlackCore `json:"cores"`
	// Remote lists the distributed backend's worker supervision state
	// (empty for in-process runs): watch a reconnect or a degradation
	// happen live.
	Remote []RemoteWorker `json:"remote,omitempty"`
}

// RemoteWorker is one remote worker's supervision state inside a
// SlackSnapshot.
type RemoteWorker struct {
	ID int `json:"id"`
	// State is the supervisor verdict: healthy, suspect, reconnecting,
	// or abandoned (shards migrated into the parent).
	State  string `json:"state"`
	Shards []int  `json:"shards"`
	// Mark is the worker's last acknowledged gate.
	Mark int64 `json:"mark"`
	// Reconnects counts successful session resumes; Epoch is the
	// connection incarnation (0 = original).
	Reconnects int64 `json:"reconnects,omitempty"`
	Epoch      int64 `json:"epoch,omitempty"`
}

// SlackCore is one core's slice of a SlackSnapshot.
type SlackCore struct {
	ID int `json:"id"`
	// Local/MaxLocal are the core's clock and window edge (the paper's
	// Local(i) and MaxLocal(i)); MaxLocal is -1 for an unbounded window.
	Local    int64 `json:"local"`
	MaxLocal int64 `json:"max_local"`
	Blocked  bool  `json:"blocked,omitempty"`
	Parked   bool  `json:"parked,omitempty"`
	Frozen   bool  `json:"frozen,omitempty"`
	// InQ/OutQ are current ring depths; the high-waters are the maximum
	// occupancies observed so far (0 until introspection attaches them).
	InQ           int   `json:"inq"`
	OutQ          int   `json:"outq"`
	InQHighWater  int64 `json:"inq_high_water,omitempty"`
	OutQHighWater int64 `json:"outq_high_water,omitempty"`
	// Memory-event latency attribution: observation count and power-of-two
	// upper bounds on the p50/p99 request→reply latency in simulated
	// cycles.
	MemLatCount int64 `json:"mem_lat_count,omitempty"`
	MemLatP50   int64 `json:"mem_lat_p50,omitempty"`
	MemLatP99   int64 `json:"mem_lat_p99,omitempty"`
	// Straggler attribution: manager rounds this core's local time held
	// the min-tree root, and the EWMA of its held fraction.
	StragglerHeld int64   `json:"straggler_held,omitempty"`
	StragglerEWMA float64 `json:"straggler_ewma,omitempty"`
}

// Server is the introspection HTTP server. Zero value is not usable; use
// New. All source setters may be called at any time, including while
// requests are in flight (a bench sweep re-attaches every run).
type Server struct {
	ln  net.Listener
	srv *http.Server

	mu        sync.RWMutex
	metricsFn func() metrics.Snapshot
	slackFn   func() SlackSnapshot
	stallFn   func(format string) ([]byte, error)

	closed    chan struct{}
	closeOnce sync.Once
}

// New listens on addr (e.g. ":8344", "127.0.0.1:0") and starts serving in
// a background goroutine. Close shuts it down.
func New(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("introspect: %w", err)
	}
	s := &Server{ln: ln, closed: make(chan struct{})}
	s.srv = &http.Server{Handler: s.Handler()}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the server's bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and terminates every in-flight SSE stream.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closed)
		err = s.srv.Close()
	})
	return err
}

// SetMetrics installs the /metrics source (nil to detach).
func (s *Server) SetMetrics(fn func() metrics.Snapshot) {
	s.mu.Lock()
	s.metricsFn = fn
	s.mu.Unlock()
}

// SetSlack installs the /slack source (nil to detach).
func (s *Server) SetSlack(fn func() SlackSnapshot) {
	s.mu.Lock()
	s.slackFn = fn
	s.mu.Unlock()
}

// SetStall installs the /stallz source (nil to detach). format is "text"
// or "json".
func (s *Server) SetStall(fn func(format string) ([]byte, error)) {
	s.mu.Lock()
	s.stallFn = fn
	s.mu.Unlock()
}

// Handler returns the server's routing table — exported so tests (and
// embedders with their own listener) can drive it without a socket.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/slack", s.handleSlack)
	mux.HandleFunc("/stallz", s.handleStall)
	// The pprof handlers register themselves on http.DefaultServeMux at
	// import; wire them onto this private mux explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `slacksim introspection server

  /metrics                     Prometheus text exposition of the run's registry
  /slack                       live per-core slack view (JSON)
  /slack?stream=1              same, as a Server-Sent Events stream
  /stallz?format=text|json     on-demand forensic engine snapshot
  /debug/pprof/                Go runtime profiles
`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	fn := s.metricsFn
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if fn == nil {
		fmt.Fprintln(w, "# no machine attached")
		return
	}
	WritePrometheus(w, fn())
}

func (s *Server) handleSlack(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	fn := s.slackFn
	s.mu.RUnlock()
	snap := func() SlackSnapshot {
		if fn == nil {
			return SlackSnapshot{}
		}
		return fn()
	}
	if r.URL.Query().Get("stream") == "1" || r.Header.Get("Accept") == "text/event-stream" {
		s.streamSlack(w, r, snap)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(snap()) //nolint:errcheck // client gone
}

// streamSlack serves /slack as Server-Sent Events: one JSON snapshot per
// interval until the client disconnects or the server closes.
func (s *Server) streamSlack(w http.ResponseWriter, r *http.Request, snap func() SlackSnapshot) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	interval := 200 * time.Millisecond
	if v := r.URL.Query().Get("interval_ms"); v != "" {
		if ms, err := strconv.Atoi(v); err == nil && ms >= 10 {
			interval = time.Duration(ms) * time.Millisecond
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	send := func() bool {
		buf, err := json.Marshal(snap())
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", buf); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if !send() {
		return
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.closed:
			return
		case <-tick.C:
			if !send() {
				return
			}
		}
	}
}

func (s *Server) handleStall(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	fn := s.stallFn
	s.mu.RUnlock()
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "text"
	}
	if fn == nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "no machine attached")
		return
	}
	buf, err := fn(format)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if format == "json" {
		w.Header().Set("Content-Type", "application/json")
	} else {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	w.Write(buf) //nolint:errcheck // client gone
	if len(buf) > 0 && buf[len(buf)-1] != '\n' {
		w.Write([]byte("\n")) //nolint:errcheck
	}
}
