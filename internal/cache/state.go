package cache

import (
	"encoding/binary"
	"fmt"

	"slacksim/internal/interconnect"
)

// Shard-state serialization for the distributed backend's checkpoint
// frames (internal/remote FCheckpoint): everything an L2System mutates
// while processing requests, in a compact varint layout. Geometry is NOT
// part of the payload — both sides build their instance from the same
// cache.Config carried in the handshake Hello, so the state restore only
// has to refill the mutable fields (lines, resource occupancy clocks,
// stats, the LRU clock). Restoring a snapshot into a fresh instance built
// from the identical config reproduces the system bit-exactly: every
// subsequent Access sees the same line, resource, and clock state it
// would have seen on the original instance.

// stateVersion guards the layout; a mismatch means parent and worker
// binaries disagree and the restore must fail loudly, not misparse.
const stateVersion = 1

// line flag bits in the serialized layout.
const (
	sfValid = 1 << iota
	sfDirty
	sfOwner // an owner field follows
)

func appendResource(dst []byte, r *interconnect.Resource) []byte {
	free, uses, waits := r.State()
	dst = binary.AppendVarint(dst, free)
	dst = binary.AppendVarint(dst, uses)
	dst = binary.AppendVarint(dst, waits)
	return dst
}

// AppendState serializes the system's mutable state onto dst.
func (s *L2System) AppendState(dst []byte) []byte {
	dst = append(dst, stateVersion)
	dst = binary.AppendVarint(dst, s.clock)

	// Stats, in struct order.
	st := &s.Stats
	for _, v := range []int64{st.Accesses, st.Hits, st.Misses, st.DRAMReads,
		st.DRAMWrites, st.InvsSent, st.Downgrades, st.L2Evictions,
		st.L1Writebacks, st.OrderViolations} {
		dst = binary.AppendVarint(dst, v)
	}

	// Resources in a fixed order: bank servers, crossbar ports, the snoop
	// bus (when the protocol has one), DRAM channels.
	for _, r := range s.bankRes {
		dst = appendResource(dst, r)
	}
	for _, r := range s.xbar.Ports() {
		dst = appendResource(dst, r)
	}
	if s.bus != nil {
		dst = appendResource(dst, s.bus)
	}
	for _, r := range s.dram {
		dst = appendResource(dst, r)
	}

	// Lines: banks × sets × ways in index order. Invalid lines cost one
	// flag byte; valid ones carry tag, presence, owner, lru, lastTS.
	for b := range s.banks {
		for _, set := range s.banks[b] {
			for w := range set {
				l := &set[w]
				if !l.valid {
					dst = append(dst, 0)
					continue
				}
				flags := byte(sfValid)
				if l.dirty {
					flags |= sfDirty
				}
				if l.owner >= 0 {
					flags |= sfOwner
				}
				dst = append(dst, flags)
				dst = binary.AppendUvarint(dst, l.tag)
				dst = binary.AppendUvarint(dst, l.presence)
				if l.owner >= 0 {
					dst = append(dst, byte(l.owner))
				}
				dst = binary.AppendVarint(dst, l.lru)
				dst = binary.AppendVarint(dst, l.lastTS)
			}
		}
	}

	// Pending back-invalidations. The worker checkpoints only at gate
	// boundaries, where the queue has been drained after every Access, so
	// this is normally zero — but the codec carries it so a checkpoint is
	// valid at any between-events instant.
	dst = binary.AppendUvarint(dst, uint64(len(s.pendingBackInvs)))
	for _, inv := range s.pendingBackInvs {
		dst = binary.AppendVarint(dst, int64(inv.Core))
		dst = binary.AppendUvarint(dst, inv.Addr)
		if inv.Downgrade {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = binary.AppendVarint(dst, inv.Time)
	}
	return dst
}

// stateReader walks a payload with bounds checking (mirrors the remote
// package's batchReader; duplicated to keep the import direction
// cache ← remote, not both ways).
type stateReader struct {
	b   []byte
	off int
}

func (r *stateReader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("cache: truncated state varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *stateReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("cache: truncated state uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *stateReader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, fmt.Errorf("cache: truncated state at offset %d", r.off)
	}
	c := r.b[r.off]
	r.off++
	return c, nil
}

func (r *stateReader) restoreResource(res *interconnect.Resource) error {
	free, err := r.varint()
	if err != nil {
		return err
	}
	uses, err := r.varint()
	if err != nil {
		return err
	}
	waits, err := r.varint()
	if err != nil {
		return err
	}
	res.SetState(free, uses, waits)
	return nil
}

// RestoreState overwrites the system's mutable state from a payload
// produced by AppendState on an instance built from the identical
// configuration. Errors (truncation, version or geometry mismatch) leave
// the system partially written — callers must treat a failed restore as
// fatal for the instance.
func (s *L2System) RestoreState(payload []byte) error {
	r := &stateReader{b: payload}
	v, err := r.byte()
	if err != nil {
		return err
	}
	if v != stateVersion {
		return fmt.Errorf("cache: state version %d, want %d", v, stateVersion)
	}
	if s.clock, err = r.varint(); err != nil {
		return err
	}

	st := &s.Stats
	for _, p := range []*int64{&st.Accesses, &st.Hits, &st.Misses, &st.DRAMReads,
		&st.DRAMWrites, &st.InvsSent, &st.Downgrades, &st.L2Evictions,
		&st.L1Writebacks, &st.OrderViolations} {
		if *p, err = r.varint(); err != nil {
			return err
		}
	}

	for _, res := range s.bankRes {
		if err := r.restoreResource(res); err != nil {
			return err
		}
	}
	for _, res := range s.xbar.Ports() {
		if err := r.restoreResource(res); err != nil {
			return err
		}
	}
	if s.bus != nil {
		if err := r.restoreResource(s.bus); err != nil {
			return err
		}
	}
	for _, res := range s.dram {
		if err := r.restoreResource(res); err != nil {
			return err
		}
	}

	for b := range s.banks {
		for _, set := range s.banks[b] {
			for w := range set {
				l := &set[w]
				flags, err := r.byte()
				if err != nil {
					return err
				}
				if flags&sfValid == 0 {
					*l = l2Line{owner: -1}
					continue
				}
				l.valid = true
				l.dirty = flags&sfDirty != 0
				if l.tag, err = r.uvarint(); err != nil {
					return err
				}
				if l.presence, err = r.uvarint(); err != nil {
					return err
				}
				l.owner = -1
				if flags&sfOwner != 0 {
					o, err := r.byte()
					if err != nil {
						return err
					}
					l.owner = int8(o)
				}
				if l.lru, err = r.varint(); err != nil {
					return err
				}
				if l.lastTS, err = r.varint(); err != nil {
					return err
				}
			}
		}
	}

	n, err := r.uvarint()
	if err != nil {
		return err
	}
	if n > uint64(len(payload)) {
		return fmt.Errorf("cache: state claims %d pending invalidations in %d bytes", n, len(payload))
	}
	s.pendingBackInvs = s.pendingBackInvs[:0]
	for i := uint64(0); i < n; i++ {
		var inv InvMsg
		c, err := r.varint()
		if err != nil {
			return err
		}
		inv.Core = int(c)
		if inv.Addr, err = r.uvarint(); err != nil {
			return err
		}
		d, err := r.byte()
		if err != nil {
			return err
		}
		inv.Downgrade = d != 0
		if inv.Time, err = r.varint(); err != nil {
			return err
		}
		s.pendingBackInvs = append(s.pendingBackInvs, inv)
	}
	if r.off != len(payload) {
		return fmt.Errorf("cache: %d trailing bytes after state", len(payload)-r.off)
	}
	return nil
}
