package cache

import "slacksim/internal/metrics"

// PublishL2Stats registers the shared-hierarchy miss/evict/coherence
// counters in r under cache.l2.*. The engine calls it when a run finishes
// with metrics enabled; on a nil registry it is a no-op.
func PublishL2Stats(r *metrics.Registry, st L2Stats) {
	PublishL2StatsPrefix(r, "", st)
}

// PublishL2StatsPrefix is PublishL2Stats with a name prefix — remote
// workers publish each shard's hierarchy under "shard<i>." so the
// federated parent view keeps the shards distinguishable.
func PublishL2StatsPrefix(r *metrics.Registry, prefix string, st L2Stats) {
	if r == nil {
		return
	}
	set := func(name string, v int64) { r.Gauge(prefix + "cache.l2." + name).Set(v) }
	set("accesses", st.Accesses)
	set("hits", st.Hits)
	set("misses", st.Misses)
	set("dram_reads", st.DRAMReads)
	set("dram_writes", st.DRAMWrites)
	set("invs_sent", st.InvsSent)
	set("downgrades", st.Downgrades)
	set("evictions", st.L2Evictions)
	set("l1_writebacks", st.L1Writebacks)
	set("order_violations", st.OrderViolations)
}
