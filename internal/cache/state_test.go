package cache

import (
	"bytes"
	"math/rand"
	"testing"
)

// driveRandom applies n deterministic pseudo-random requests and returns
// the concatenated observable outcomes (fill times, grants, invalidation
// lists) so two instances can be compared access for access.
func driveRandom(s *L2System, rng *rand.Rand, n int) []int64 {
	var obs []int64
	t := s.clock * 3 // arbitrary but deterministic advancing clock base
	for i := 0; i < n; i++ {
		core := rng.Intn(s.cfg.NumCores)
		addr := uint64(rng.Intn(1<<14)) << 6
		kind := ReqKind(rng.Intn(3))
		t += int64(rng.Intn(7))
		if rng.Intn(16) == 0 {
			s.RetireVictim(core, addr, rng.Intn(2) == 0, t)
		}
		fill, invs := s.Access(core, addr, kind, t)
		obs = append(obs, fill.Time, int64(fill.Grant))
		for _, inv := range invs {
			obs = append(obs, int64(inv.Core), int64(inv.Addr), inv.Time)
		}
		for _, inv := range s.DrainBackInvs() {
			obs = append(obs, int64(inv.Core), int64(inv.Addr), inv.Time)
		}
	}
	return obs
}

// TestStateRoundTrip proves the checkpoint/restore invariant the
// distributed recovery path depends on: snapshotting a warmed-up system,
// restoring into a fresh instance of the same config, and driving both
// with identical further traffic yields identical observable behavior and
// identical final state bytes.
func TestStateRoundTrip(t *testing.T) {
	for _, proto := range []Protocol{Directory, SnoopBus} {
		cfg := DefaultConfig(4)
		cfg.Protocol = proto
		cfg.DRAMChannels = 2
		orig := MustL2System(cfg)

		driveRandom(orig, rand.New(rand.NewSource(11)), 4000)
		snap := orig.AppendState(nil)

		clone := MustL2System(cfg)
		if err := clone.RestoreState(snap); err != nil {
			t.Fatalf("proto %v: restore: %v", proto, err)
		}
		if got := clone.AppendState(nil); !bytes.Equal(got, snap) {
			t.Fatalf("proto %v: re-snapshot differs after restore", proto)
		}
		if clone.Stats != orig.Stats {
			t.Fatalf("proto %v: stats differ: %+v vs %+v", proto, clone.Stats, orig.Stats)
		}

		a := driveRandom(orig, rand.New(rand.NewSource(23)), 2000)
		b := driveRandom(clone, rand.New(rand.NewSource(23)), 2000)
		if len(a) != len(b) {
			t.Fatalf("proto %v: divergent observation count %d vs %d", proto, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("proto %v: divergence at observation %d: %d vs %d", proto, i, a[i], b[i])
			}
		}
		if !bytes.Equal(orig.AppendState(nil), clone.AppendState(nil)) {
			t.Fatalf("proto %v: final state bytes differ", proto)
		}
	}
}

// TestStateRestoreFresh pins the initial-checkpoint convention: an empty
// payload is not a valid state, and a fresh snapshot restores cleanly.
func TestStateRestoreFresh(t *testing.T) {
	cfg := DefaultConfig(2)
	s := MustL2System(cfg)
	snap := s.AppendState(nil)
	clone := MustL2System(cfg)
	if err := clone.RestoreState(snap); err != nil {
		t.Fatalf("fresh restore: %v", err)
	}
	if err := clone.RestoreState(nil); err == nil {
		t.Fatal("empty payload restored without error")
	}
}

// TestStateRestoreRejectsCorruption truncates and mutates a snapshot at
// every byte: restore must error or succeed, never panic, and trailing
// garbage must be rejected.
func TestStateRestoreRejectsCorruption(t *testing.T) {
	cfg := DefaultConfig(2)
	s := MustL2System(cfg)
	driveRandom(s, rand.New(rand.NewSource(5)), 500)
	snap := s.AppendState(nil)

	for cut := 0; cut < len(snap); cut += 7 {
		clone := MustL2System(cfg)
		if err := clone.RestoreState(snap[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d restored without error", cut, len(snap))
		}
	}
	clone := MustL2System(cfg)
	if err := clone.RestoreState(append(append([]byte{}, snap...), 0x01)); err == nil {
		t.Fatal("trailing byte restored without error")
	}
	bad := append([]byte{}, snap...)
	bad[0] = 99 // version byte
	if err := MustL2System(cfg).RestoreState(bad); err == nil {
		t.Fatal("bad version restored without error")
	}
}
