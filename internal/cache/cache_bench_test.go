package cache

import "testing"

func BenchmarkL1ProbeHit(b *testing.B) {
	l1 := MustL1(DefaultConfig(8))
	l1.Reserve(0x1000)
	l1.Fill(0x1000, Exclusive)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l1.Probe(0x1000, i&1 == 0)
	}
}

func BenchmarkL2AccessHit(b *testing.B) {
	s := MustL2System(DefaultConfig(8))
	s.Access(0, 0x4000, GetS, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Access(i&7, 0x4000, GetS, int64(i))
		s.DrainBackInvs()
	}
}
