package cache

import (
	"testing"
	"testing/quick"
)

func cfg2() Config { return DefaultConfig(2) }

func TestDefaultConfigCriticalLatency(t *testing.T) {
	c := DefaultConfig(8)
	if got := c.CriticalLatency(); got != 10 {
		t.Fatalf("critical latency = %d, want 10 (the paper's quantum)", got)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig(8)
	bad.LineSize = 48
	if err := bad.validate(); err == nil {
		t.Error("non-power-of-two line size accepted")
	}
	bad = DefaultConfig(8)
	bad.NumCores = 65
	if err := bad.validate(); err == nil {
		t.Error("65 cores accepted (presence bits are uint64)")
	}
	bad = DefaultConfig(8)
	bad.L1Size = 1000
	if err := bad.validate(); err == nil {
		t.Error("odd L1 size accepted")
	}
}

func TestL1ReadWriteHits(t *testing.T) {
	l1 := MustL1(cfg2())
	const a = 0x1000
	if got := l1.Probe(a, false); got != MissShared {
		t.Fatalf("cold read probe = %v", got)
	}
	l1.Reserve(a)
	if got := l1.Probe(a, false); got != Blocked {
		t.Fatalf("pending probe = %v", got)
	}
	l1.Fill(a, Shared)
	if got := l1.Probe(a, false); got != Hit {
		t.Fatalf("read after S fill = %v", got)
	}
	if got := l1.Probe(a, true); got != NeedUpgrade {
		t.Fatalf("write to S line = %v", got)
	}
	l1.UpgradeDone(a)
	if got := l1.Probe(a, true); got != Hit {
		t.Fatalf("write after upgrade = %v", got)
	}
	if st := l1.StateOf(a); st != Modified {
		t.Fatalf("state = %v, want M", st)
	}
}

func TestL1SilentEtoM(t *testing.T) {
	l1 := MustL1(cfg2())
	l1.Reserve(0x40)
	l1.Fill(0x40, Exclusive)
	if got := l1.Probe(0x40, true); got != Hit {
		t.Fatalf("write to E line = %v", got)
	}
	if st := l1.StateOf(0x40); st != Modified {
		t.Fatalf("state after silent upgrade = %v", st)
	}
}

func TestL1WriteMiss(t *testing.T) {
	l1 := MustL1(cfg2())
	if got := l1.Probe(0x80, true); got != MissExcl {
		t.Fatalf("cold write probe = %v", got)
	}
}

func TestL1EvictionVictims(t *testing.T) {
	c := cfg2()
	l1 := MustL1(c)
	sets := l1.NumSets()
	stride := uint64(sets * c.LineSize) // same set, different tags
	// Fill all 4 ways of set 0.
	for w := 0; w < c.L1Ways; w++ {
		addr := uint64(w) * stride
		va, _, valid := l1.Reserve(addr)
		if valid {
			t.Fatalf("way %d eviction of %#x with invalid ways free", w, va)
		}
		st := Shared
		if w == 0 {
			st = Modified
		}
		l1.Fill(addr, st)
	}
	// Touch ways 1..3 so way 0 (Modified) is LRU.
	for w := 1; w < c.L1Ways; w++ {
		l1.Probe(uint64(w)*stride, false)
	}
	va, dirty, valid := l1.Reserve(uint64(c.L1Ways) * stride)
	if !valid || va != 0 || !dirty {
		t.Fatalf("victim = %#x dirty=%v valid=%v, want dirty line 0", va, dirty, valid)
	}
	if l1.Stats.Evictions != 1 || l1.Stats.Writebacks != 1 {
		t.Errorf("stats = %+v", l1.Stats)
	}
}

func TestL1InvalidateAndDowngrade(t *testing.T) {
	l1 := MustL1(cfg2())
	l1.Reserve(0x100)
	l1.Fill(0x100, Modified)
	if dirty := l1.Downgrade(0x100); !dirty {
		t.Error("downgrading M line must report dirty")
	}
	if st := l1.StateOf(0x100); st != Shared {
		t.Errorf("state after downgrade = %v", st)
	}
	if dirty := l1.Invalidate(0x100); dirty {
		t.Error("invalidating S line reported dirty")
	}
	if st := l1.StateOf(0x100); st != Invalid {
		t.Errorf("state after invalidate = %v", st)
	}
	// Invalidation of an absent line is a no-op.
	if l1.Invalidate(0x9990040) {
		t.Error("absent line invalidation reported dirty")
	}
}

func TestL1InvWhilePending(t *testing.T) {
	l1 := MustL1(cfg2())
	l1.Reserve(0x200)
	l1.Invalidate(0x200) // races the outstanding fill
	l1.Fill(0x200, Modified)
	if st := l1.StateOf(0x200); st != Invalid {
		t.Fatalf("fill after racing inv installed %v, want Invalid", st)
	}
}

func TestL2GetSExclusiveGrant(t *testing.T) {
	s := MustL2System(cfg2())
	fill, invs := s.Access(0, 0x1000, GetS, 100)
	if fill.Grant != Exclusive {
		t.Fatalf("sole reader granted %v, want E", fill.Grant)
	}
	if len(invs) != 0 {
		t.Fatalf("unexpected invs %v", invs)
	}
	if fill.Time < 100+s.Config().CriticalLatency() {
		t.Fatalf("fill %d violates the critical-latency floor", fill.Time)
	}
	// Second reader: downgrade the E owner, grant S.
	fill2, invs2 := s.Access(1, 0x1000, GetS, 200)
	if fill2.Grant != Shared {
		t.Fatalf("second reader granted %v", fill2.Grant)
	}
	if len(invs2) != 1 || !invs2[0].Downgrade || invs2[0].Core != 0 {
		t.Fatalf("expected a downgrade to core 0, got %v", invs2)
	}
	if invs2[0].Time < 200+s.Config().CriticalLatency() {
		t.Fatalf("inv time %d under the critical-latency floor", invs2[0].Time)
	}
}

func TestL2GetMInvalidatesSharers(t *testing.T) {
	s := MustL2System(DefaultConfig(4))
	for c := 0; c < 3; c++ {
		s.Access(c, 0x2000, GetS, int64(10*c))
	}
	fill, invs := s.Access(3, 0x2000, GetM, 100)
	if fill.Grant != Modified {
		t.Fatalf("writer granted %v", fill.Grant)
	}
	if len(invs) != 3 {
		t.Fatalf("expected 3 invalidations, got %v", invs)
	}
	for _, inv := range invs {
		if inv.Downgrade {
			t.Errorf("GetM produced a downgrade: %v", inv)
		}
	}
	// A later GetS must downgrade the new owner.
	_, invs2 := s.Access(0, 0x2000, GetS, 200)
	if len(invs2) != 1 || invs2[0].Core != 3 || !invs2[0].Downgrade {
		t.Fatalf("post-GetM read: %v", invs2)
	}
}

func TestL2UpgradePath(t *testing.T) {
	s := MustL2System(cfg2())
	s.Access(0, 0x3000, GetS, 10)
	s.Access(1, 0x3000, GetS, 20)
	fill, invs := s.Access(0, 0x3000, Upgrade, 30)
	if fill.Grant != Modified {
		t.Fatalf("upgrade granted %v", fill.Grant)
	}
	if len(invs) != 1 || invs[0].Core != 1 {
		t.Fatalf("upgrade invs = %v", invs)
	}
}

func TestL2MissHitLatency(t *testing.T) {
	s := MustL2System(cfg2())
	fill, _ := s.Access(0, 0x4000, GetS, 0)
	miss := fill.Time
	// Re-access from the other core far later: L2 hit, no DRAM.
	fill2, _ := s.Access(1, 0x4000, GetS, 100000)
	hit := fill2.Time - 100000
	if hit >= miss {
		t.Fatalf("hit latency %d not below miss latency %d", hit, miss)
	}
	if s.Stats.Misses != 1 || s.Stats.Hits != 1 || s.Stats.DRAMReads != 1 {
		t.Errorf("stats = %+v", s.Stats)
	}
}

func TestL2RetireVictim(t *testing.T) {
	s := MustL2System(cfg2())
	s.Access(0, 0x5000, GetM, 10)
	s.RetireVictim(0, 0x5000, true, 50)
	if s.Stats.L1Writebacks != 1 {
		t.Errorf("writebacks = %d", s.Stats.L1Writebacks)
	}
	// After the writeback, another core's GetS needs no downgrade.
	_, invs := s.Access(1, 0x5000, GetS, 100)
	if len(invs) != 0 {
		t.Fatalf("victim-retired line still produced %v", invs)
	}
}

func TestL2BackInvalidations(t *testing.T) {
	c := cfg2()
	s := MustL2System(c)
	// Walk enough distinct lines mapping to one L2 set to force eviction:
	// same bank (same line index mod banks), same set.
	setsPerBank := c.L2Size / (c.L2Banks * c.LineSize * c.L2Ways)
	stride := uint64(c.LineSize * c.L2Banks * setsPerBank)
	for i := 0; i <= c.L2Ways; i++ {
		s.Access(0, uint64(i)*stride, GetS, int64(i*100))
		s.DrainBackInvs()
	}
	if s.Stats.L2Evictions == 0 {
		t.Fatal("no L2 eviction after overfilling a set")
	}
	// The evicted line had core 0 as a sharer: one more pass to capture
	// the back-invalidation explicitly.
	s2 := MustL2System(c)
	for i := 0; i <= c.L2Ways; i++ {
		s2.Access(0, uint64(i)*stride, GetS, int64(i*100))
	}
	invs := s2.DrainBackInvs()
	if len(invs) == 0 {
		t.Fatal("inclusive eviction produced no back-invalidations")
	}
}

// TestL2FillFloorQuick: every fill and invalidation must respect the
// critical-latency floor relative to its request — the property the
// conservative schemes' exactness proof rests on.
func TestL2FillFloorQuick(t *testing.T) {
	s := MustL2System(DefaultConfig(4))
	crit := s.Config().CriticalLatency()
	now := int64(0)
	f := func(core uint8, line uint16, dt uint8, write bool) bool {
		now += int64(dt)
		kind := GetS
		if write {
			kind = GetM
		}
		addr := uint64(line) * uint64(s.Config().LineSize)
		fill, invs := s.Access(int(core%4), addr, kind, now)
		s.DrainBackInvs()
		if fill.Time < now+crit {
			return false
		}
		for _, inv := range invs {
			if inv.Time < now+crit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestBankInterleaving(t *testing.T) {
	s := MustL2System(DefaultConfig(8))
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		seen[s.BankOf(uint64(i)*64)] = true
	}
	if len(seen) != 8 {
		t.Fatalf("8 consecutive lines hit %d banks, want 8", len(seen))
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M", Pending: "P"} {
		if st.String() != want {
			t.Errorf("%v != %s", st, want)
		}
	}
}
