package cache

// Outcome classifies an L1 probe.
type Outcome uint8

const (
	// Hit: access can complete locally.
	Hit Outcome = iota
	// MissShared: line absent; a GetS request must be sent.
	MissShared
	// MissExcl: line absent and the access is a write; send GetM.
	MissExcl
	// NeedUpgrade: line present Shared but the access is a write; send an
	// Upgrade request.
	NeedUpgrade
	// Blocked: the line has an outstanding fill (Pending); the access must
	// wait for the fill (merged through the core's MSHRs).
	Blocked
)

// L1Stats counts L1 events.
type L1Stats struct {
	Hits        int64
	Misses      int64
	Upgrades    int64
	Evictions   int64
	Writebacks  int64 // dirty evictions
	InvsApplied int64
	Downgrades  int64
}

type l1Line struct {
	tag   uint64
	state State
	lru   int64
	// invWhilePending records an invalidation that raced an outstanding
	// fill (possible under optimistic slack schemes): the fill then
	// installs the line as Invalid.
	invWhilePending bool
}

// L1 is one core's private L1 cache (timing + MESI state, no data). It is
// owned by its core's simulation thread; the directory reaches it only via
// InQ events that the core thread itself applies.
type L1 struct {
	cfg       Config
	sets      [][]l1Line
	setMask   uint64
	lineShift uint
	clock     int64 // LRU tick
	Stats     L1Stats
}

// NewL1 builds an L1 from cfg. A geometry error is returned, not panicked,
// so a bad configuration fails at machine construction.
func NewL1(cfg Config) (*L1, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	numSets := cfg.L1Size / (cfg.LineSize * cfg.L1Ways)
	sets := make([][]l1Line, numSets)
	for i := range sets {
		sets[i] = make([]l1Line, cfg.L1Ways)
	}
	shift := uint(0)
	for 1<<shift < cfg.LineSize {
		shift++
	}
	return &L1{cfg: cfg, sets: sets, setMask: uint64(numSets - 1), lineShift: shift}, nil
}

// MustL1 is NewL1 for configurations known to be valid (tests, examples);
// it panics on a geometry error.
func MustL1(cfg Config) *L1 {
	l1, err := NewL1(cfg)
	if err != nil {
		panic(err)
	}
	return l1
}

func (c *L1) locate(addr uint64) (set []l1Line, tag uint64) {
	idx := (addr >> c.lineShift) & c.setMask
	return c.sets[idx], addr >> c.lineShift
}

// Probe classifies an access without modifying tag state (except LRU on
// hits). write=true for stores.
func (c *L1) Probe(addr uint64, write bool) Outcome {
	set, tag := c.locate(addr)
	c.clock++
	for i := range set {
		l := &set[i]
		if l.tag != tag || l.state == Invalid {
			continue
		}
		if l.state == Pending {
			return Blocked
		}
		if write {
			switch l.state {
			case Modified:
				l.lru = c.clock
				c.Stats.Hits++
				return Hit
			case Exclusive:
				l.state = Modified // silent E->M upgrade
				l.lru = c.clock
				c.Stats.Hits++
				return Hit
			case Shared:
				return NeedUpgrade
			}
		}
		l.lru = c.clock
		c.Stats.Hits++
		return Hit
	}
	if write {
		return MissExcl
	}
	return MissShared
}

// Reserve allocates a way for an incoming fill of addr's line, evicting the
// LRU victim. It returns the victim's line address and dirtiness so the
// miss request can carry the eviction notice to the directory. The way is
// left in Pending state until Fill.
func (c *L1) Reserve(addr uint64) (victimAddr uint64, victimDirty, victimValid bool) {
	set, tag := c.locate(addr)
	c.Stats.Misses++
	// Prefer an invalid way.
	victim := -1
	for i := range set {
		if set[i].state == Invalid {
			victim = i
			break
		}
	}
	if victim < 0 {
		best := int64(1<<62 - 1)
		for i := range set {
			if set[i].state == Pending {
				continue // never evict a line with an outstanding fill
			}
			if set[i].lru < best {
				best = set[i].lru
				victim = i
			}
		}
	}
	if victim < 0 {
		// All ways pending: cannot happen when MSHRs < associativity per
		// set is enforced by the core; fall back to way 0 defensively.
		victim = 0
	}
	l := &set[victim]
	if l.state != Invalid && l.state != Pending {
		victimValid = true
		victimAddr = (l.tag << c.lineShift)
		victimDirty = l.state == Modified
		c.Stats.Evictions++
		if victimDirty {
			c.Stats.Writebacks++
		}
	}
	c.clock++
	*l = l1Line{tag: tag, state: Pending, lru: c.clock}
	return victimAddr, victimDirty, victimValid
}

// Fill completes an outstanding miss, installing the line with the granted
// state. A racing invalidation observed while pending makes the line
// install as Invalid.
func (c *L1) Fill(addr uint64, st State) {
	set, tag := c.locate(addr)
	for i := range set {
		l := &set[i]
		if l.tag == tag && l.state == Pending {
			if l.invWhilePending {
				l.state = Invalid
				l.invWhilePending = false
			} else {
				l.state = st
			}
			return
		}
	}
	// Fill for a line we no longer track (way reused after a squash merge);
	// ignore — the next access will simply miss again.
}

// UpgradeDone completes an Upgrade request: the Shared line becomes
// Modified. If the line was invalidated while the upgrade was in flight
// (another core won the race), the state stays Invalid and the store will
// re-miss.
func (c *L1) UpgradeDone(addr uint64) {
	set, tag := c.locate(addr)
	for i := range set {
		l := &set[i]
		if l.tag == tag && l.state == Shared {
			l.state = Modified
			c.Stats.Upgrades++
			return
		}
	}
}

// Invalidate applies a directory invalidation. It returns whether the line
// was dirty (the writeback is timed by the directory side).
func (c *L1) Invalidate(addr uint64) (wasDirty bool) {
	set, tag := c.locate(addr)
	for i := range set {
		l := &set[i]
		if l.tag != tag {
			continue
		}
		switch l.state {
		case Pending:
			l.invWhilePending = true
			c.Stats.InvsApplied++
			return false
		case Invalid:
			return false
		default:
			wasDirty = l.state == Modified
			l.state = Invalid
			c.Stats.InvsApplied++
			return wasDirty
		}
	}
	return false
}

// Downgrade applies a directory M/E -> S demotion.
func (c *L1) Downgrade(addr uint64) (wasDirty bool) {
	set, tag := c.locate(addr)
	for i := range set {
		l := &set[i]
		if l.tag != tag {
			continue
		}
		switch l.state {
		case Modified:
			wasDirty = true
			fallthrough
		case Exclusive:
			l.state = Shared
			c.Stats.Downgrades++
		}
		return wasDirty
	}
	return false
}

// StateOf returns the MESI state of addr's line (for tests and debugging).
func (c *L1) StateOf(addr uint64) State {
	set, tag := c.locate(addr)
	for i := range set {
		if set[i].tag == tag && set[i].state != Invalid {
			return set[i].state
		}
	}
	return Invalid
}

// NumSets returns the number of sets (for tests).
func (c *L1) NumSets() int { return len(c.sets) }
