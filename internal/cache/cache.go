// Package cache models the target CMP's memory hierarchy: private L1
// instruction/data caches kept coherent with a directory-based MESI
// protocol, and a shared L2 organised as NUCA banks behind a crossbar
// (paper §2). Caches are timing-directories — they track tags, MESI state,
// presence bits and latencies but carry no data; functional values live in
// the shared mem.Memory, the same split Graphite and Sniper later adopted.
package cache

import "fmt"

// Protocol selects how L1 coherence requests reach the shared level
// (paper §2: "with either a snooping or a directory protocol"). Both use
// the same MESI state machines; they differ in interconnect timing.
type Protocol uint8

const (
	// Directory routes requests over the banked crossbar to a full-map
	// directory at the NUCA L2 (the default target).
	Directory Protocol = iota
	// SnoopBus serialises every coherence transaction on one shared bus:
	// each request arbitrates for the bus (a single occupancy resource)
	// before its bank access, and NUCA distance no longer applies. The
	// bus is the §3.2.1 shared-resource example.
	SnoopBus
)

// State is a MESI coherence state (plus Pending for in-flight fills).
type State uint8

const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
	// Pending marks a way reserved for an outstanding miss: the request has
	// been sent to the manager but the fill has not yet been applied.
	Pending
)

// String returns the one-letter MESI name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	case Pending:
		return "P"
	}
	return "?"
}

// Config describes the target memory hierarchy. The zero value is not
// usable; call DefaultConfig for the paper's target.
type Config struct {
	LineSize int // bytes per cache line (power of two)

	L1Size int // per-core L1 data (and instruction) capacity in bytes
	L1Ways int

	L2Size  int // total shared L2 capacity in bytes
	L2Ways  int
	L2Banks int

	L1HitLat int64 // L1 load-to-use latency
	ReqNet   int64 // minimum one-way core->bank latency
	NetHop   int64 // extra latency per unit of NUCA distance
	PortOcc  int64 // bank input-port occupancy per message
	BankLat  int64 // L2 bank access latency
	BankOcc  int64 // L2 bank occupancy per access
	RespNet  int64 // minimum one-way bank->core latency
	InvLat   int64 // request-to-invalidation-visible latency at a peer L1
	DirtyLat int64 // extra latency when data must come from a peer's M line
	DRAMLat  int64 // DRAM access latency on L2 miss
	DRAMOcc  int64 // DRAM channel occupancy per access
	// DRAMChannels is the number of independent memory controllers; banks
	// map to channels by bank index modulo channels. Defaults to 1. The
	// sharded manager (core.Config.ManagerShards) requires channels ==
	// shards so each shard owns its channels outright.
	DRAMChannels int
	NumCores     int
	// Protocol selects Directory (default) or SnoopBus coherence timing.
	Protocol Protocol
	// BusOcc is the shared bus occupancy per transaction (SnoopBus only).
	BusOcc int64
}

// DefaultConfig returns the paper's target hierarchy: 16 KB 4-way L1s,
// 256 KB 8-way shared L2 in 8 NUCA banks, 64 B lines, and an unloaded L2
// access latency of 10 cycles — the critical latency used to size the
// quantum/lookahead/slack (§4.2: "we choose a 10-cycle quantum because the
// critical latency ... is 10, the latency of an L2 cache access").
func DefaultConfig(numCores int) Config {
	return Config{
		LineSize:     64,
		L1Size:       16 << 10,
		L1Ways:       4,
		L2Size:       256 << 10,
		L2Ways:       8,
		L2Banks:      8,
		L1HitLat:     2,
		ReqNet:       2,
		NetHop:       1,
		PortOcc:      1,
		BankLat:      6,
		BankOcc:      2,
		RespNet:      2,
		InvLat:       10,
		DirtyLat:     10,
		DRAMLat:      80,
		DRAMOcc:      8,
		DRAMChannels: 1,
		NumCores:     numCores,
		Protocol:     Directory,
		BusOcc:       4,
	}
}

// CriticalLatency returns the unloaded L2 access latency — the minimum
// number of cycles before an event at one core can affect another, used to
// parameterise the conservative schemes.
func (c Config) CriticalLatency() int64 { return c.ReqNet + c.BankLat + c.RespNet }

// LineAddr masks addr down to its cache-line address.
func (c Config) LineAddr(addr uint64) uint64 { return addr &^ uint64(c.LineSize-1) }

// Validate checks the configuration's geometry: power-of-two line size and
// set counts, divisible capacities, representable core counts, and channel/
// bank compatibility. core.NewMachine calls this so a bad hierarchy fails
// at machine construction instead of at the first cache access.
func (c Config) Validate() error { return c.validate() }

func (c Config) validate() error {
	pow2 := func(v int) bool { return v > 0 && v&(v-1) == 0 }
	if !pow2(c.LineSize) {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineSize)
	}
	if c.L1Size%(c.LineSize*c.L1Ways) != 0 {
		return fmt.Errorf("cache: L1 %dB not divisible into %d ways of %dB lines", c.L1Size, c.L1Ways, c.LineSize)
	}
	if c.L2Banks < 1 || c.L2Size%(c.L2Banks*c.LineSize*c.L2Ways) != 0 {
		return fmt.Errorf("cache: L2 %dB not divisible into %d banks x %d ways of %dB lines", c.L2Size, c.L2Banks, c.L2Ways, c.LineSize)
	}
	if !pow2(c.L1Size/(c.LineSize*c.L1Ways)) || !pow2(c.L2Size/(c.L2Banks*c.LineSize*c.L2Ways)) {
		return fmt.Errorf("cache: set counts must be powers of two")
	}
	if c.NumCores < 1 || c.NumCores > 64 {
		return fmt.Errorf("cache: NumCores %d outside 1..64 (presence bits are a uint64)", c.NumCores)
	}
	if c.DRAMChannels < 0 || (c.DRAMChannels > 0 && c.L2Banks%c.DRAMChannels != 0) {
		return fmt.Errorf("cache: %d DRAM channels must divide %d banks", c.DRAMChannels, c.L2Banks)
	}
	return nil
}
