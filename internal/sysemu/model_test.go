package sysemu

import (
	"math/rand"
	"testing"
)

// TestLockModelEquivalence drives random lock/unlock traffic from several
// cores against a simple reference model and checks mutual exclusion,
// FIFO handoff, and grant accounting.
func TestLockModelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const cores = 6
	const addr = 512

	k, grants := newTestKernel(cores)

	owner := -1
	var queue []int
	holds := make([]bool, cores)   // model: core holds the lock
	waiting := make([]bool, cores) // model: core queued

	now := int64(0)
	for step := 0; step < 20000; step++ {
		now++
		c := rng.Intn(cores)
		if holds[c] {
			// Sometimes release.
			if rng.Intn(3) == 0 {
				before := len(*grants)
				call(k, c, now, SysUnlock, addr)
				holds[c] = false
				if len(queue) > 0 {
					next := queue[0]
					queue = queue[1:]
					waiting[next] = false
					holds[next] = true
					owner = next
					if len(*grants) != before+1 {
						t.Fatalf("step %d: unlock with waiters produced %d grants", step, len(*grants)-before)
					}
					g := (*grants)[len(*grants)-1]
					if g.core != next || g.t != now {
						t.Fatalf("step %d: grant %+v, want core %d at %d", step, g, next, now)
					}
				} else {
					owner = -1
					if len(*grants) != before {
						t.Fatalf("step %d: unlock with no waiters granted", step)
					}
				}
			}
			continue
		}
		if waiting[c] {
			continue // a queued core cannot issue anything else
		}
		// Acquire attempt.
		res := call(k, c, now, SysLock, addr)
		if owner == -1 {
			if res.Block || res.Ret != 1 {
				t.Fatalf("step %d: free lock blocked core %d: %+v", step, c, res)
			}
			owner = c
			holds[c] = true
		} else {
			if !res.Block {
				t.Fatalf("step %d: held lock granted to core %d", step, c)
			}
			waiting[c] = true
			queue = append(queue, c)
		}
		// Invariant: exactly one holder when owner set.
		n := 0
		for _, h := range holds {
			if h {
				n++
			}
		}
		if (owner >= 0 && n != 1) || (owner < 0 && n != 0) {
			t.Fatalf("step %d: mutual exclusion broken (owner %d, holders %d)", step, owner, n)
		}
	}
}

// TestSemaModelEquivalence drives random wait/signal traffic and checks the
// counting-semaphore invariant: grants + banked count == signals, and no
// waiter is granted while the count is positive.
func TestSemaModelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const cores = 5
	const addr = 1024

	k, grants := newTestKernel(cores)
	call(k, 0, 0, SysSemaInit, addr, 2)

	count := int64(2)
	var queue []int
	busy := make([]bool, cores) // waiting in the kernel

	now := int64(0)
	immediate := 0
	for step := 0; step < 20000; step++ {
		now++
		c := rng.Intn(cores)
		if rng.Intn(2) == 0 {
			// signal (any core may signal)
			before := len(*grants)
			call(k, c, now, SysSemaSignal, addr)
			if len(queue) > 0 {
				next := queue[0]
				queue = queue[1:]
				busy[next] = false
				if len(*grants) != before+1 || (*grants)[len(*grants)-1].core != next {
					t.Fatalf("step %d: signal did not grant head waiter", step)
				}
			} else {
				count++
				if len(*grants) != before {
					t.Fatalf("step %d: signal with no waiters granted", step)
				}
			}
			continue
		}
		if busy[c] {
			continue
		}
		res := call(k, c, now, SysSemaWait, addr)
		if count > 0 {
			if res.Block {
				t.Fatalf("step %d: positive semaphore blocked", step)
			}
			count--
			immediate++
		} else {
			if !res.Block {
				t.Fatalf("step %d: zero semaphore did not block", step)
			}
			busy[c] = true
			queue = append(queue, c)
		}
	}
	if immediate == 0 || len(*grants) == 0 {
		t.Fatal("test exercised no interesting paths")
	}
}
