package sysemu

import (
	"fmt"
	"math"
	"testing"
)

type grant struct {
	core int
	t    int64
	ret  int64
}

func newTestKernel(cores int) (*Kernel, *[]grant) {
	img := &Image{
		HeapStart: 0x10000,
		HeapLimit: 0x20000,
		StackTop:  func(core int) uint64 { return 0x100000 },
		LoadByte:  func(addr uint64) (byte, bool) { return 0, false },
	}
	k := NewKernel(img, cores, cores)
	grants := &[]grant{}
	k.Notify = func(core int, t int64, ret int64) {
		*grants = append(*grants, grant{core, t, ret})
	}
	return k, grants
}

func call(k *Kernel, core int, t int64, num int64, args ...int64) Result {
	var a [4]int64
	copy(a[:], args)
	return k.Syscall(core, t, num, a)
}

func TestLockHandoff(t *testing.T) {
	k, grants := newTestKernel(4)
	if r := call(k, 0, 10, SysLock, 100); r.Block || r.Ret != 1 {
		t.Fatalf("free lock: %+v", r)
	}
	if r := call(k, 1, 20, SysLock, 100); !r.Block {
		t.Fatalf("held lock not blocking: %+v", r)
	}
	if r := call(k, 2, 30, SysLock, 100); !r.Block {
		t.Fatalf("second waiter not blocking: %+v", r)
	}
	call(k, 0, 40, SysUnlock, 100)
	if len(*grants) != 1 || (*grants)[0] != (grant{1, 40, 1}) {
		t.Fatalf("grants after unlock: %v", *grants)
	}
	// Core 1 now owns it; its unlock hands off to core 2.
	call(k, 1, 50, SysUnlock, 100)
	if len(*grants) != 2 || (*grants)[1] != (grant{2, 50, 1}) {
		t.Fatalf("second handoff: %v", *grants)
	}
	call(k, 2, 60, SysUnlock, 100)
	// Lock free again.
	if r := call(k, 3, 70, SysLock, 100); r.Block {
		t.Fatalf("released lock still blocking: %+v", r)
	}
}

func TestUnlockByNonOwnerCounted(t *testing.T) {
	k, _ := newTestKernel(2)
	call(k, 0, 1, SysLock, 8)
	call(k, 1, 2, SysUnlock, 8)
	if k.LockMismatch != 1 {
		t.Fatalf("mismatch count = %d", k.LockMismatch)
	}
}

func TestBarrierRelease(t *testing.T) {
	k, grants := newTestKernel(4)
	call(k, 0, 1, SysBarrierInit, 200, 3)
	if r := call(k, 0, 10, SysBarrier, 200); !r.Block {
		t.Fatal("first arrival not blocked")
	}
	if r := call(k, 1, 20, SysBarrier, 200); !r.Block {
		t.Fatal("second arrival not blocked")
	}
	r := call(k, 2, 30, SysBarrier, 200)
	if r.Block || r.Ret != 1 {
		t.Fatalf("last arrival: %+v", r)
	}
	if len(*grants) != 2 {
		t.Fatalf("grants = %v", *grants)
	}
	for _, g := range *grants {
		if g.t != 30 || g.ret != 1 {
			t.Fatalf("grant %v not stamped with the release time", g)
		}
	}
	// The barrier must be reusable for the next episode.
	*grants = (*grants)[:0]
	call(k, 2, 40, SysBarrier, 200)
	call(k, 0, 50, SysBarrier, 200)
	r = call(k, 1, 60, SysBarrier, 200)
	if r.Block {
		t.Fatal("second episode did not release")
	}
	if len(*grants) != 2 {
		t.Fatalf("second episode grants = %v", *grants)
	}
}

func TestBarrierDefaultsToAllCores(t *testing.T) {
	k, _ := newTestKernel(2)
	// No init: participant count defaults to all cores (2).
	if r := call(k, 0, 10, SysBarrier, 300); !r.Block {
		t.Fatal("first arrival not blocked")
	}
	if r := call(k, 1, 20, SysBarrier, 300); r.Block {
		t.Fatal("second of two arrivals blocked")
	}
}

func TestSemaphore(t *testing.T) {
	k, grants := newTestKernel(2)
	call(k, 0, 1, SysSemaInit, 400, 1)
	if r := call(k, 0, 10, SysSemaWait, 400); r.Block {
		t.Fatal("positive semaphore blocked")
	}
	if r := call(k, 1, 20, SysSemaWait, 400); !r.Block {
		t.Fatal("zero semaphore not blocking")
	}
	call(k, 0, 30, SysSemaSignal, 400)
	if len(*grants) != 1 || (*grants)[0] != (grant{1, 30, 1}) {
		t.Fatalf("signal handoff: %v", *grants)
	}
	// Signal with no waiter increments the count.
	call(k, 0, 40, SysSemaSignal, 400)
	if r := call(k, 0, 50, SysSemaWait, 400); r.Block {
		t.Fatal("banked signal not consumed")
	}
}

func TestThreadLifecycle(t *testing.T) {
	k, grants := newTestKernel(3)
	r := call(k, 0, 10, SysThreadCreate, 0x2000, 7)
	if r.Ret != 1 || len(r.Effects) != 1 || r.Effects[0].Kind != EffectStartCore {
		t.Fatalf("create: %+v", r)
	}
	if r.Effects[0].PC != 0x2000 || r.Effects[0].Arg != 7 || r.Effects[0].Core != 1 {
		t.Fatalf("start effect: %+v", r.Effects[0])
	}
	r = call(k, 0, 20, SysThreadCreate, 0x2000, 8)
	if r.Ret != 2 {
		t.Fatalf("second create on core %d", r.Ret)
	}
	r = call(k, 0, 30, SysThreadCreate, 0x2000, 9)
	if r.Ret != -1 {
		t.Fatalf("create with no free core returned %d", r.Ret)
	}
	// Join before exit blocks; exit grants it.
	if r := call(k, 0, 40, SysThreadJoin, 1); !r.Block {
		t.Fatal("join of running thread not blocked")
	}
	r = call(k, 1, 50, SysThreadExit)
	if len(r.Effects) != 1 || r.Effects[0].Kind != EffectStopCore {
		t.Fatalf("exit effects: %+v", r.Effects)
	}
	if len(*grants) != 1 || (*grants)[0] != (grant{0, 50, 0}) {
		t.Fatalf("join grant: %v", *grants)
	}
	// Join after exit completes immediately.
	if r := call(k, 0, 60, SysThreadJoin, 1); r.Block || r.Ret != 0 {
		t.Fatalf("late join: %+v", r)
	}
	if r := call(k, 0, 70, SysThreadJoin, 99); r.Ret != -1 {
		t.Fatalf("bad tid join: %+v", r)
	}
}

func TestExitAndEffects(t *testing.T) {
	k, _ := newTestKernel(1)
	r := call(k, 0, 10, SysExit, 3)
	if len(r.Effects) != 1 || r.Effects[0].Kind != EffectEndSim || r.Effects[0].Code != 3 {
		t.Fatalf("exit: %+v", r)
	}
	exited, code := k.Exited()
	if !exited || code != 3 {
		t.Fatalf("Exited() = %v, %d", exited, code)
	}
	if r := call(k, 0, 20, SysStatsReset); len(r.Effects) != 1 || r.Effects[0].Kind != EffectResetStats {
		t.Fatalf("stats reset: %+v", r)
	}
}

func TestSbrk(t *testing.T) {
	k, _ := newTestKernel(1)
	r := call(k, 0, 1, SysSbrk, 100)
	if r.Ret != 0x10000 {
		t.Fatalf("first sbrk = %#x", r.Ret)
	}
	r = call(k, 0, 2, SysSbrk, 8)
	if r.Ret != 0x10000+104 { // 100 rounded up to 104
		t.Fatalf("second sbrk = %#x", r.Ret)
	}
	r = call(k, 0, 3, SysSbrk, 1<<30)
	if r.Ret != -1 {
		t.Fatalf("oversized sbrk = %d", r.Ret)
	}
}

func TestInfoSyscalls(t *testing.T) {
	k, _ := newTestKernel(4)
	if r := call(k, 2, 123, SysClock); r.Ret != 123 {
		t.Errorf("clock = %d", r.Ret)
	}
	if r := call(k, 2, 1, SysCoreID); r.Ret != 2 {
		t.Errorf("core id = %d", r.Ret)
	}
	if r := call(k, 0, 1, SysNumCores); r.Ret != 4 {
		t.Errorf("num cores = %d", r.Ret)
	}
	if r := call(k, 0, 1, SysNumThreads); r.Ret != 4 {
		t.Errorf("num threads = %d", r.Ret)
	}
	if r := call(k, 0, 1, 999); r.Ret != -1 {
		t.Errorf("unknown syscall = %d", r.Ret)
	}
}

func TestPrintOutput(t *testing.T) {
	k, _ := newTestKernel(1)
	call(k, 0, 1, SysPrintInt, -42)
	call(k, 0, 2, SysPrintChar, ' ')
	call(k, 0, 3, SysPrintFloat, int64(floatBits(1.5)))
	if got := k.Output(); got != "-42 1.5" {
		t.Fatalf("output = %q", got)
	}
}

func TestPrintStr(t *testing.T) {
	img := &Image{
		HeapStart: 0x1000, HeapLimit: 0x2000,
		StackTop: func(int) uint64 { return 0 },
		LoadByte: func(addr uint64) (byte, bool) {
			s := "hello\x00junk"
			if addr < uint64(len(s)) {
				return s[addr], true
			}
			return 0, false
		},
	}
	k := NewKernel(img, 1, 1)
	call(k, 0, 1, SysPrintStr, 0)
	if got := k.Output(); got != "hello" {
		t.Fatalf("output = %q", got)
	}
}

func TestTimeWarpDetection(t *testing.T) {
	k, _ := newTestKernel(2)
	call(k, 0, 100, SysLock, 64)
	call(k, 0, 110, SysUnlock, 64)
	if k.TimeWarps != 0 {
		t.Fatalf("in-order ops warped: %d", k.TimeWarps)
	}
	call(k, 1, 90, SysLock, 64) // older timestamp arriving later
	if k.TimeWarps != 1 {
		t.Fatalf("out-of-order op not counted: %d", k.TimeWarps)
	}
}

func TestSyscallNames(t *testing.T) {
	for n := int64(0); n <= SysNumThreads; n++ {
		if SyscallName(n) == fmt.Sprintf("sys(%d)", n) {
			t.Errorf("syscall %d unnamed", n)
		}
	}
	if SyscallName(999) != "sys(999)" {
		t.Error("unknown syscall name")
	}
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
