// Package sysemu emulates the user-level "operating system" of the simulated
// machine, mirroring the paper's approach of handling system functions and
// the Pthread-style workload API (Table 1: lock/unlock, barrier,
// semaphores) outside the simulator proper.
//
// All kernel operations are plain state transitions invoked by whatever
// agent plays the simulation-manager role (the manager goroutine of the
// parallel engine, or the serial reference engine). Blocking primitives
// never block the host: a blocked thread is queued inside the kernel and
// its grant is delivered later through the Notify callback, timestamped
// with the releasing action's simulated time. (See DESIGN.md: sleeping
// rather than spinning synchronisation is a deliberate substitution — in a
// fast simulator, spin-retry loops advance a blocked core's simulated
// clock at host speed, which inverts the cost regime the paper's
// spin-based SPLASH-2 binaries ran under.)
package sysemu

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"slacksim/internal/loader"
)

// System call numbers (the imm field of the SYSCALL instruction).
const (
	SysExit         = 0  // a0 = exit code; ends the whole simulation
	SysThreadCreate = 1  // a0 = start pc, a1 = argument; rv = tid or -1
	SysThreadExit   = 2  // terminates the calling thread's core
	SysThreadJoin   = 3  // a0 = tid; blocks (retries) until that thread exits
	SysLockInit     = 4  // a0 = lock address
	SysLock         = 5  // a0 = lock address; blocks until acquired
	SysUnlock       = 6  // a0 = lock address
	SysBarrierInit  = 7  // a0 = barrier address, a1 = participant count
	SysBarrier      = 8  // a0 = barrier address; blocks until all arrive
	SysSemaInit     = 9  // a0 = semaphore address, a1 = initial value
	SysSemaWait     = 10 // a0 = semaphore address; blocks until positive
	SysSemaSignal   = 11 // a0 = semaphore address
	SysPrintInt     = 12 // a0 = value
	SysPrintChar    = 13 // a0 = character
	SysPrintStr     = 14 // a0 = address of NUL-terminated string
	SysPrintFloat   = 15 // a0 = raw float64 bits
	SysSbrk         = 16 // a0 = bytes; rv = old break (8-aligned)
	SysClock        = 17 // rv = current local cycle of the calling core
	SysStatsReset   = 18 // marks the start of the measured region of interest
	SysCoreID       = 19 // rv = calling core's id
	SysNumCores     = 20 // rv = number of target cores
	SysNumThreads   = 21 // rv = number of workload threads the harness asked for
)

// SyscallName returns a human-readable name for a syscall number.
func SyscallName(num int64) string {
	names := map[int64]string{
		SysExit: "exit", SysThreadCreate: "thread_create", SysThreadExit: "thread_exit",
		SysThreadJoin: "thread_join", SysLockInit: "lock_init", SysLock: "lock",
		SysUnlock: "unlock", SysBarrierInit: "barrier_init", SysBarrier: "barrier",
		SysSemaInit: "sema_init", SysSemaWait: "sema_wait", SysSemaSignal: "sema_signal",
		SysPrintInt: "print_int", SysPrintChar: "print_char", SysPrintStr: "print_str",
		SysPrintFloat: "print_float", SysSbrk: "sbrk", SysClock: "clock",
		SysStatsReset: "stats_reset", SysCoreID: "core_id", SysNumCores: "num_cores",
		SysNumThreads: "num_threads",
	}
	if n, ok := names[num]; ok {
		return n
	}
	return fmt.Sprintf("sys(%d)", num)
}

// EffectKind enumerates engine-visible side effects of a system call.
type EffectKind int

const (
	// EffectStartCore asks the engine to activate a core: set its pc to
	// Effect.PC, a0 to Effect.Arg, sp to the core's stack top, and begin
	// fetching.
	EffectStartCore EffectKind = iota
	// EffectStopCore asks the engine to halt the calling core.
	EffectStopCore
	// EffectEndSim asks the engine to end the whole simulation.
	EffectEndSim
	// EffectResetStats asks the engine to mark the start of the region of
	// interest on every core.
	EffectResetStats
)

// Effect is a side effect the engine must apply; the kernel cannot touch
// core-private state (that state is owned by the core's simulation thread).
type Effect struct {
	Kind EffectKind
	Core int
	PC   uint64
	Arg  int64
	Code int64
}

// Result is the outcome of a system call.
type Result struct {
	Ret   int64
	Retry bool // core must re-issue the call (currently unused; see Block)
	// Block means the call did not complete and no reply should be sent
	// now: the kernel has queued the caller and will deliver the grant via
	// the Notify callback when another thread's action releases it (an
	// unlock, the last barrier arrival, a semaphore signal, a thread
	// exit). Blocked threads therefore sleep and resume at the releasing
	// action's simulated time — the granting timestamps are pure functions
	// of simulated time, which keeps conservative schemes deterministic
	// and keeps blocking waits independent of host scheduling speed.
	Block   bool
	Effects []Effect
}

// Kernel holds all emulated OS state. Methods are not safe for concurrent
// use; in the parallel engine every call is made from the manager thread
// (system calls travel through the event queues), which also makes
// conservative schemes deterministic.
type Kernel struct {
	// Notify delivers a deferred grant for a previously blocked call:
	// core's syscall completes with return value ret; t is the simulated
	// time of the action that granted it (the engine adds its syscall
	// latency). Must be set before the first blocking call.
	Notify func(core int, t int64, ret int64)

	img      *Image
	numCores int

	brk      uint64
	brkLimit uint64

	locks    map[uint64]*lockState
	barriers map[uint64]*barrierState
	semas    map[uint64]*semaState
	joiners  map[int][]int // exiting-thread id -> cores blocked in join

	coreBusy   []bool // core is running a workload thread
	coreExited []bool // thread on this core has exited
	numThreads int    // requested workload thread count (SysNumThreads)

	out strings.Builder
	mu  sync.Mutex // protects out (examples may read it concurrently)

	exited   bool
	exitCode int64

	// Violation bookkeeping (paper §3.2): lastOpTime records, per
	// synchronisation object, the timestamp of the last processed
	// operation. An operation arriving with an older timestamp was
	// processed out of simulated-time order — the timing distortion slack
	// introduces.
	lastOpTime   map[uint64]int64
	TimeWarps    int64 // ops processed with a timestamp older than a prior op on the same object
	LockMismatch int64 // unlock by a non-owner (should be 0 for correct workloads)

	Calls int64 // total syscalls processed

	// Trace, when non-nil, receives one line per processed syscall and
	// deferred grant (diagnostics and the violation examples).
	Trace func(s string)
}

// Image is the subset of the loaded image the kernel needs.
type Image struct {
	HeapStart uint64
	HeapLimit uint64
	StackTop  func(core int) uint64
	LoadByte  func(addr uint64) (byte, bool)
}

type lockState struct {
	owner   int // core id, or -1
	waiters []int
}

type barrierState struct {
	n       int64
	count   int64
	waiters []int
}

type semaState struct {
	value   int64
	waiters []int
}

// NewKernel creates a kernel for a machine with numCores target cores.
func NewKernel(img *Image, numCores, numThreads int) *Kernel {
	k := &Kernel{
		img:        img,
		numCores:   numCores,
		brk:        img.HeapStart,
		brkLimit:   img.HeapLimit,
		locks:      make(map[uint64]*lockState),
		barriers:   make(map[uint64]*barrierState),
		semas:      make(map[uint64]*semaState),
		joiners:    make(map[int][]int),
		coreBusy:   make([]bool, numCores),
		coreExited: make([]bool, numCores),
		numThreads: numThreads,
		lastOpTime: make(map[uint64]int64),
	}
	k.coreBusy[0] = true // core 0 runs the initial thread
	return k
}

// KernelImage adapts a loader.Image for the kernel.
func KernelImage(im *loader.Image) *Image {
	return &Image{
		HeapStart: im.HeapStart,
		HeapLimit: im.HeapLimit,
		StackTop:  im.StackTop,
		LoadByte:  im.Mem.Load8,
	}
}

// Forensics is a structured snapshot of the kernel's scheduling state:
// which cores run workload threads, who holds every lock, and who is
// queued on each synchronisation object. The engine's stall watchdog
// attaches it to StallReports so a deadlocked run names the held-lock
// owner instead of just hanging. Like every Kernel method it must be
// invoked by the goroutine that owns the kernel (the simulation manager,
// or any goroutine once the run has ended).
type Forensics struct {
	Threads  []ThreadInfo  `json:"threads"`
	Locks    []LockInfo    `json:"locks,omitempty"`
	Barriers []BarrierInfo `json:"barriers,omitempty"`
	Semas    []SemaInfo    `json:"semaphores,omitempty"`
	// TimeWarps and LockMismatch mirror the kernel's violation counters.
	TimeWarps    int64 `json:"time_warps"`
	LockMismatch int64 `json:"lock_mismatch"`
}

// ThreadInfo is one core's kernel-side thread state.
type ThreadInfo struct {
	Core   int  `json:"core"`
	Busy   bool `json:"busy"`   // running a workload thread
	Exited bool `json:"exited"` // thread on this core has exited
}

// LockInfo is one emulated lock's state. Owner is -1 when free.
type LockInfo struct {
	Addr    uint64 `json:"addr"`
	Owner   int    `json:"owner"`
	Waiters []int  `json:"waiters,omitempty"`
}

// BarrierInfo is one emulated barrier's state.
type BarrierInfo struct {
	Addr    uint64 `json:"addr"`
	N       int64  `json:"n"`
	Count   int64  `json:"count"`
	Waiters []int  `json:"waiters,omitempty"`
}

// SemaInfo is one emulated semaphore's state.
type SemaInfo struct {
	Addr    uint64 `json:"addr"`
	Value   int64  `json:"value"`
	Waiters []int  `json:"waiters,omitempty"`
}

// Forensics captures the kernel's current scheduling state. Object lists
// are sorted by address so reports are deterministic.
func (k *Kernel) Forensics() Forensics {
	f := Forensics{
		TimeWarps:    k.TimeWarps,
		LockMismatch: k.LockMismatch,
	}
	for i := 0; i < k.numCores; i++ {
		f.Threads = append(f.Threads, ThreadInfo{Core: i, Busy: k.coreBusy[i], Exited: k.coreExited[i]})
	}
	for _, addr := range sortedKeys(k.locks) {
		l := k.locks[addr]
		f.Locks = append(f.Locks, LockInfo{Addr: addr, Owner: l.owner, Waiters: append([]int(nil), l.waiters...)})
	}
	for _, addr := range sortedKeys(k.barriers) {
		b := k.barriers[addr]
		f.Barriers = append(f.Barriers, BarrierInfo{Addr: addr, N: b.n, Count: b.count, Waiters: append([]int(nil), b.waiters...)})
	}
	for _, addr := range sortedKeys(k.semas) {
		s := k.semas[addr]
		f.Semas = append(f.Semas, SemaInfo{Addr: addr, Value: s.value, Waiters: append([]int(nil), s.waiters...)})
	}
	return f
}

// Deadlocked reports a certain deadlock: at least one workload thread is
// live, and every live thread is queued on a kernel synchronisation object
// (lock, barrier, semaphore, or join). Releases happen only through system
// calls of running threads, so once this holds — and the engine has
// verified no grant is still in flight through the event queues — no
// future action can unblock anyone. A thread whose grant was already
// issued has been removed from its waiter list, so an in-flight wake-up
// never reads as deadlock. Like every Kernel method, manager-owned.
func (k *Kernel) Deadlocked() bool {
	if k.exited {
		return false
	}
	blocked := make(map[int]bool)
	for _, l := range k.locks {
		for _, c := range l.waiters {
			blocked[c] = true
		}
	}
	for _, b := range k.barriers {
		for _, c := range b.waiters {
			blocked[c] = true
		}
	}
	for _, s := range k.semas {
		for _, c := range s.waiters {
			blocked[c] = true
		}
	}
	for _, js := range k.joiners {
		for _, c := range js {
			blocked[c] = true
		}
	}
	live := 0
	for i := 0; i < k.numCores; i++ {
		if !k.coreBusy[i] || k.coreExited[i] {
			continue
		}
		live++
		if !blocked[i] {
			return false
		}
	}
	return live > 0
}

func sortedKeys[V any](m map[uint64]V) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Exited reports whether SysExit has been called, and with what code.
func (k *Kernel) Exited() (bool, int64) { return k.exited, k.exitCode }

// Output returns everything the workload has printed so far.
func (k *Kernel) Output() string {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.out.String()
}

func (k *Kernel) trackOrder(addr uint64, t int64) {
	if last, ok := k.lastOpTime[addr]; ok && t < last {
		k.TimeWarps++
	} else {
		k.lastOpTime[addr] = t
	}
}

// Syscall executes system call num made by core at simulated time t with
// arguments args (a0..a3).
func (k *Kernel) Syscall(core int, t int64, num int64, args [4]int64) Result {
	k.Calls++
	if k.Trace != nil {
		k.Trace(fmt.Sprintf("t=%d core=%d %s(%d,%d)", t, core, SyscallName(num), args[0], args[1]))
	}
	switch num {
	case SysExit:
		k.exited = true
		k.exitCode = args[0]
		return Result{Effects: []Effect{{Kind: EffectEndSim, Code: args[0]}}}

	case SysThreadCreate:
		target := -1
		for c := 0; c < k.numCores; c++ {
			if !k.coreBusy[c] {
				target = c
				break
			}
		}
		if target < 0 {
			return Result{Ret: -1}
		}
		k.coreBusy[target] = true
		k.coreExited[target] = false
		return Result{
			Ret: int64(target),
			Effects: []Effect{{
				Kind: EffectStartCore,
				Core: target,
				PC:   uint64(args[0]),
				Arg:  args[1],
			}},
		}

	case SysThreadExit:
		k.coreExited[core] = true
		for _, waiter := range k.joiners[core] {
			k.Notify(waiter, t, 0)
		}
		delete(k.joiners, core)
		return Result{Effects: []Effect{{Kind: EffectStopCore, Core: core}}}

	case SysThreadJoin:
		tid := int(args[0])
		if tid < 0 || tid >= k.numCores {
			return Result{Ret: -1}
		}
		if k.coreExited[tid] {
			return Result{Ret: 0}
		}
		k.joiners[tid] = append(k.joiners[tid], core)
		return Result{Block: true}

	case SysLockInit:
		k.locks[uint64(args[0])] = &lockState{owner: -1}
		return Result{}

	case SysLock:
		addr := uint64(args[0])
		k.trackOrder(addr, t)
		l := k.lock(addr)
		if l.owner == -1 {
			l.owner = core
			return Result{Ret: 1}
		}
		l.waiters = append(l.waiters, core)
		return Result{Block: true}

	case SysUnlock:
		addr := uint64(args[0])
		k.trackOrder(addr, t)
		l := k.lock(addr)
		if l.owner != core {
			k.LockMismatch++
		}
		if len(l.waiters) > 0 {
			// Hand the lock to the oldest waiter; it resumes at the
			// unlock's simulated time.
			next := l.waiters[0]
			l.waiters = l.waiters[1:]
			l.owner = next
			k.Notify(next, t, 1)
		} else {
			l.owner = -1
		}
		return Result{}

	case SysBarrierInit:
		k.barriers[uint64(args[0])] = newBarrier(args[1], k.numCores)
		return Result{}

	case SysBarrier:
		addr := uint64(args[0])
		k.trackOrder(addr, t)
		b, ok := k.barriers[addr]
		if !ok {
			b = newBarrier(int64(k.numCores), k.numCores)
			k.barriers[addr] = b
		}
		b.count++
		if k.Trace != nil {
			k.Trace(fmt.Sprintf("  barrier arrive core=%d t=%d count=%d/%d", core, t, b.count, b.n))
		}
		if b.count >= b.n {
			// Last arrival releases everyone at its own timestamp.
			for _, waiter := range b.waiters {
				k.Notify(waiter, t, 1)
			}
			b.waiters = b.waiters[:0]
			b.count = 0
			return Result{Ret: 1}
		}
		b.waiters = append(b.waiters, core)
		return Result{Block: true}

	case SysSemaInit:
		k.semas[uint64(args[0])] = &semaState{value: args[1]}
		return Result{}

	case SysSemaWait:
		addr := uint64(args[0])
		k.trackOrder(addr, t)
		s := k.sema(addr)
		if s.value > 0 {
			s.value--
			return Result{Ret: 1}
		}
		s.waiters = append(s.waiters, core)
		return Result{Block: true}

	case SysSemaSignal:
		addr := uint64(args[0])
		k.trackOrder(addr, t)
		s := k.sema(addr)
		if len(s.waiters) > 0 {
			next := s.waiters[0]
			s.waiters = s.waiters[1:]
			k.Notify(next, t, 1)
		} else {
			s.value++
		}
		return Result{}

	case SysPrintInt:
		k.printf("%d", args[0])
		return Result{}

	case SysPrintChar:
		k.printf("%c", rune(args[0]))
		return Result{}

	case SysPrintStr:
		var sb strings.Builder
		for a := uint64(args[0]); ; a++ {
			c, ok := k.img.LoadByte(a)
			if !ok || c == 0 || sb.Len() > 1<<16 {
				break
			}
			sb.WriteByte(c)
		}
		k.printf("%s", sb.String())
		return Result{}

	case SysPrintFloat:
		k.printf("%g", math.Float64frombits(uint64(args[0])))
		return Result{}

	case SysSbrk:
		n := (uint64(args[0]) + 7) &^ 7
		if k.brk+n > k.brkLimit {
			return Result{Ret: -1}
		}
		old := k.brk
		k.brk += n
		return Result{Ret: int64(old)}

	case SysClock:
		return Result{Ret: t}

	case SysStatsReset:
		return Result{Effects: []Effect{{Kind: EffectResetStats}}}

	case SysCoreID:
		return Result{Ret: int64(core)}

	case SysNumCores:
		return Result{Ret: int64(k.numCores)}

	case SysNumThreads:
		return Result{Ret: int64(k.numThreads)}
	}
	// Unknown syscalls are ignored (returning -1) rather than fatal: a
	// misbehaving wrong-path or corrupted workload should not kill the host.
	return Result{Ret: -1}
}

func (k *Kernel) lock(addr uint64) *lockState {
	l, ok := k.locks[addr]
	if !ok {
		l = &lockState{owner: -1}
		k.locks[addr] = l
	}
	return l
}

func newBarrier(n int64, cores int) *barrierState {
	return &barrierState{n: n}
}

func (k *Kernel) sema(addr uint64) *semaState {
	s, ok := k.semas[addr]
	if !ok {
		s = &semaState{}
		k.semas[addr] = s
	}
	return s
}

func (k *Kernel) printf(format string, args ...any) {
	k.mu.Lock()
	fmt.Fprintf(&k.out, format, args...)
	k.mu.Unlock()
}
