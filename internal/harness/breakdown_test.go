package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"slacksim/internal/core"
)

// TestRunOneObservability checks the harness plumbing for Options.Metrics
// and Options.TraceDir: the registry rides on the Run, the breakdown line
// reaches the log, and a valid Chrome trace lands in the directory (with
// the scheme's "*" sanitised out of the file name).
func TestRunOneObservability(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRunner(Options{
		Workloads:   []string{"ocean"},
		TargetCores: 4,
		Verify:      true,
		Metrics:     true,
		TraceDir:    dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	r.Log = &log

	run, err := r.RunOne("ocean", core.SchemeS9x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if run.Result.Metrics == nil {
		t.Error("Run is missing its metrics registry")
	}
	if run.Result.Metrics.Counter("engine.events.processed").Value() == 0 {
		t.Error("registry holds no engine counters")
	}
	if !strings.Contains(log.String(), "sync: simulate") {
		t.Errorf("log missing the breakdown line:\n%s", log.String())
	}

	// The driver is part of the file name so sweep columns sharing a
	// host-core count never overwrite each other's traces.
	path := filepath.Join(dir, "ocean_S9x_parallel_h2.json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(raw, &evs); err != nil {
		t.Fatalf("trace %s is not valid JSON: %v", path, err)
	}
	if len(evs) == 0 {
		t.Error("trace holds no events")
	}

	tbl := SyncOverhead([]*Run{run})
	for _, want := range []string{"Scheme", "Simulate", "Wait", "Manager", "S9*"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("breakdown table missing %q:\n%s", want, tbl)
		}
	}
}

// TestSyncOverheadSweep exercises the slackbench -breakdown entry point.
func TestSyncOverheadSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	r, err := NewRunner(Options{
		Workloads:   []string{"ocean"},
		Schemes:     []core.Scheme{core.SchemeCC, core.SchemeS9},
		HostCores:   []int{2},
		TargetCores: 4,
		Verify:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := r.SyncOverheadSweep("ocean", 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tbl)
	for _, s := range []string{"CC", "S9"} {
		if !strings.Contains(tbl, s) {
			t.Errorf("breakdown table missing scheme %s:\n%s", s, tbl)
		}
	}
	if r.Options().Metrics {
		t.Error("SyncOverheadSweep must restore Options.Metrics")
	}
}

// TestSyncOverheadEmpty returns nothing for runs without breakdown data.
func TestSyncOverheadEmpty(t *testing.T) {
	if got := SyncOverhead([]*Run{{Result: &core.Result{}}}); got != "" {
		t.Errorf("want empty table, got:\n%s", got)
	}
}
