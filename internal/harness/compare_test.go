package harness

import (
	"strings"
	"testing"
)

// fixtureReport builds a small but fully-populated report.
func fixtureReport() *Report {
	return &Report{
		Table2: []Table2Row{
			{Benchmark: "fft", KIPS: 100},
			{Benchmark: "lu", KIPS: 200},
		},
		Figure8: &Figure8Data{
			Workloads: []string{"fft"},
			Speedup: map[string]map[string]map[int]float64{
				"fft": {"S9*": {2: 1.8, 4: 3.2}},
			},
		},
		Figure9: &Figure9Data{
			Workloads: []string{"fft"},
			KIPS: map[string]map[string]map[int]float64{
				"fft": {"S9*": {4: 400}},
			},
			HMeanKIPS: map[string]map[int]float64{
				"S9*": {4: 350},
			},
		},
		Table3: []Table3Row{
			{Benchmark: "fft", Err: map[string]float64{"S9": 0.5, "S100": -1.2}},
		},
	}
}

func TestCompareNoRegression(t *testing.T) {
	oldR, newR := fixtureReport(), fixtureReport()
	// Small wobble below the 10% threshold must pass.
	newR.Table2[0].KIPS = 95                    // -5%
	newR.Table2[1].KIPS = 230                   // improvement
	newR.Figure8.Speedup["fft"]["S9*"][4] = 3.0 // -6.25%
	c := CompareReports(oldR, newR, 0)
	if c.Regressions != 0 {
		t.Fatalf("Regressions = %d, want 0\n%+v", c.Regressions, c.Cells)
	}
	if len(c.Cells) == 0 {
		t.Fatal("no cells compared")
	}
}

func TestCompareDetectsKIPSRegression(t *testing.T) {
	oldR, newR := fixtureReport(), fixtureReport()
	newR.Table2[0].KIPS = 85 // -15%: past the 10% threshold
	c := CompareReports(oldR, newR, 0)
	if c.Regressions == 0 {
		t.Fatal("15%% KIPS drop not flagged")
	}
	found := false
	for _, cell := range c.Cells {
		if cell.Section == "table2" && cell.Name == "fft KIPS" {
			found = true
			if !cell.Regressed {
				t.Errorf("fft KIPS cell not marked regressed: %+v", cell)
			}
		}
	}
	if !found {
		t.Fatal("fft KIPS cell missing from comparison")
	}
	var sb strings.Builder
	c.Print(&sb)
	if !strings.Contains(sb.String(), "REGRESSED") {
		t.Errorf("Print output lacks REGRESSED marker:\n%s", sb.String())
	}
}

func TestCompareDetectsSpeedupAndHMeanRegression(t *testing.T) {
	oldR, newR := fixtureReport(), fixtureReport()
	newR.Figure8.Speedup["fft"]["S9*"][2] = 1.0 // -44%
	newR.Figure9.HMeanKIPS["S9*"][4] = 300      // -14%
	c := CompareReports(oldR, newR, 0)
	if c.Regressions != 2 {
		t.Fatalf("Regressions = %d, want 2\n%+v", c.Regressions, c.Cells)
	}
}

func TestCompareTable3ErrorGrowth(t *testing.T) {
	oldR, newR := fixtureReport(), fixtureReport()
	// |err| grows 0.5 -> 0.7: +0.2 absolute, past a 0.1 threshold.
	newR.Table3[0].Err = map[string]float64{"S9": 0.7, "S100": -1.2}
	c := CompareReports(oldR, newR, 0.1)
	if c.Regressions != 1 {
		t.Fatalf("Regressions = %d, want 1\n%+v", c.Regressions, c.Cells)
	}
	// Sign flips without magnitude growth are fine.
	newR.Table3[0].Err = map[string]float64{"S9": -0.5, "S100": 1.2}
	if c := CompareReports(oldR, newR, 0.1); c.Regressions != 0 {
		t.Fatalf("sign flip flagged as regression: %+v", c.Cells)
	}
}

func TestCompareThresholdOverride(t *testing.T) {
	oldR, newR := fixtureReport(), fixtureReport()
	newR.Table2[0].KIPS = 85 // -15%
	if c := CompareReports(oldR, newR, 0.20); c.Regressions != 0 {
		t.Fatalf("-15%% flagged under a 20%% threshold: %+v", c.Cells)
	}
}

func TestCompareSkipsDriverMismatch(t *testing.T) {
	oldR, newR := fixtureReport(), fixtureReport()
	oldR.Figure9.KIPS["fft"]["S9*"][1] = 120
	oldR.Figure9.HMeanKIPS["S9*"][1] = 120
	newR.Figure9.KIPS["fft"]["S9*"][1] = 60 // would be a -50% regression...
	newR.Figure9.HMeanKIPS["S9*"][1] = 60
	oldR.Host.Drivers = map[int]string{1: "parallel", 4: "parallel"}
	newR.Host.Drivers = map[int]string{1: "fused", 4: "parallel"} // ...but the driver changed
	c := CompareReports(oldR, newR, 0)
	if c.Regressions != 0 {
		t.Fatalf("driver swap at h1 flagged as regression: %+v", c.Cells)
	}
	for _, cell := range c.Cells {
		if strings.Contains(cell.Name, "h1") {
			t.Fatalf("h1 cell compared across a driver swap: %+v", cell)
		}
	}
	// Table 2 (defined at 1 host core) and Figure 8 (normalized by the
	// 1-host-core baseline) must be skipped wholesale.
	for _, cell := range c.Cells {
		if cell.Section == "table2" || cell.Section == "figure8" {
			t.Fatalf("%s cell compared across a baseline driver swap: %+v", cell.Section, cell)
		}
	}
	if len(c.Skipped) == 0 {
		t.Fatal("driver mismatch left no skip note")
	}
	var sb strings.Builder
	c.Print(&sb)
	if !strings.Contains(sb.String(), "drivers differ") {
		t.Errorf("Print output lacks driver-mismatch note:\n%s", sb.String())
	}
	// The h4 columns agree on the driver and must still be compared.
	found := false
	for _, cell := range c.Cells {
		if cell.Section == "figure9" && strings.Contains(cell.Name, "h4") {
			found = true
		}
	}
	if !found {
		t.Fatal("matching h4 figure9 cells were not compared")
	}
}

// TestCompareMissingDriverMetadata pins the backward-compatibility rule:
// a report written before Host.Drivers existed carries no driver names,
// and its columns must compare as before — the mismatch gate only fires
// when BOTH reports recorded a driver and the names disagree.
func TestCompareMissingDriverMetadata(t *testing.T) {
	oldR, newR := fixtureReport(), fixtureReport()
	// Old report predates the metadata; new one records it.
	newR.Host.Drivers = map[int]string{1: "fused", 4: "parallel"}
	newR.Table2[0].KIPS = 85               // -15%: a real regression...
	newR.Figure9.HMeanKIPS["S9*"][4] = 300 // -14%: ...and another
	c := CompareReports(oldR, newR, 0)
	// fft KIPS, the table2 harmonic mean it drags down, and the figure9
	// harmonic mean: all three must be flagged, none gated.
	if c.Regressions != 3 {
		t.Fatalf("Regressions = %d, want 3 (missing metadata must not gate)\n%+v",
			c.Regressions, c.Cells)
	}
	if len(c.Skipped) != 0 {
		t.Fatalf("missing driver metadata produced skips: %v", c.Skipped)
	}

	// Same with the reports swapped: only the old side has metadata.
	oldR, newR = fixtureReport(), fixtureReport()
	oldR.Host.Drivers = map[int]string{1: "parallel", 4: "parallel"}
	newR.Table2[0].KIPS = 85
	if c := CompareReports(oldR, newR, 0); c.Regressions != 2 || len(c.Skipped) != 0 {
		t.Fatalf("one-sided metadata gated the comparison: regressions=%d skipped=%v",
			c.Regressions, c.Skipped)
	}
}

// TestCompareSkipNoteNamesColumn: when the driver gate does fire, the
// skip note (and its Print rendering) must name the host-core column and
// both drivers, so a CI log reads as "h4 measured by a different engine"
// rather than a bare section name.
func TestCompareSkipNoteNamesColumn(t *testing.T) {
	oldR, newR := fixtureReport(), fixtureReport()
	oldR.Host.Drivers = map[int]string{1: "parallel", 4: "parallel"}
	newR.Host.Drivers = map[int]string{1: "parallel", 4: "sharded"}
	c := CompareReports(oldR, newR, 0)
	if len(c.Skipped) == 0 {
		t.Fatal("h4 driver swap left no skip note")
	}
	var found bool
	for _, s := range c.Skipped {
		if strings.Contains(s, "h4") {
			found = true
			if !strings.Contains(s, "parallel") || !strings.Contains(s, "sharded") {
				t.Errorf("skip note %q does not name both drivers", s)
			}
		}
		if strings.Contains(s, "h1") {
			t.Errorf("matching h1 column skipped: %q", s)
		}
	}
	if !found {
		t.Fatalf("no skip note names the h4 column: %v", c.Skipped)
	}
	var sb strings.Builder
	c.Print(&sb)
	out := sb.String()
	if !strings.Contains(out, "h4") || !strings.Contains(out, "drivers differ") {
		t.Errorf("Print output does not name the skipped column:\n%s", out)
	}
}

func TestCompareSkipsMissingSections(t *testing.T) {
	oldR, newR := fixtureReport(), fixtureReport()
	newR.Figure8 = nil
	newR.Table3 = nil
	c := CompareReports(oldR, newR, 0)
	if c.Regressions != 0 {
		t.Fatalf("missing sections flagged: %+v", c.Cells)
	}
	if len(c.Skipped) != 2 {
		t.Fatalf("Skipped = %v, want [figure8 table3]", c.Skipped)
	}
}
