package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"slacksim/internal/stats"
)

// This file turns the repo's BENCH_*.json trajectory into an enforced
// regression gate: CompareReports diffs two harness.Report files cell by
// cell — Table 2 baseline KIPS (and their harmonic mean), Figure 8
// speedups, Figure 9 harmonic-mean and per-workload KIPS, Table 3 error
// magnitudes — and flags every cell that moved the wrong way by more than
// a configurable threshold. slackbench -compare wires it to the command
// line and exits nonzero on regressions, so a perf or accuracy slide
// fails CI instead of silently replacing the previous numbers.

// DefaultCompareThreshold is the relative regression tolerance: a
// throughput/speedup cell regresses when it drops more than this fraction
// below the old value; a Table 3 cell regresses when its error magnitude
// grows by more than this fraction (absolute, in error units).
const DefaultCompareThreshold = 0.10

// CompareCell is one compared quantity.
type CompareCell struct {
	// Section names the report table ("table2", "figure8", "figure9",
	// "table3") and Name the cell within it ("fft KIPS", "lu S9* h4", ...).
	Section string  `json:"section"`
	Name    string  `json:"name"`
	Old     float64 `json:"old"`
	New     float64 `json:"new"`
	// Delta is the relative change (new−old)/old for higher-is-better
	// cells, and the absolute change |new|−|old| for Table 3 errors.
	Delta float64 `json:"delta"`
	// Regressed marks a cell past the threshold in the bad direction.
	Regressed bool `json:"regressed"`
}

// Comparison is the full diff of two reports.
type Comparison struct {
	Threshold   float64       `json:"threshold"`
	Cells       []CompareCell `json:"cells"`
	Regressions int           `json:"regressions"`
	// Skipped counts sections present in only one report (nothing to
	// compare — a report grown by a new experiment is not a regression).
	Skipped []string `json:"skipped,omitempty"`
}

// LoadReport reads a harness.Report JSON file (slackbench -json output).
func LoadReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	var r Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("harness: parsing %s: %w", path, err)
	}
	return &r, nil
}

// CompareReports diffs old against new with the given regression
// threshold (<= 0 selects DefaultCompareThreshold). Cells present in only
// one report are skipped, not failed: the gate protects numbers both
// reports measured.
func CompareReports(oldR, newR *Report, threshold float64) *Comparison {
	if threshold <= 0 {
		threshold = DefaultCompareThreshold
	}
	c := &Comparison{Threshold: threshold}

	// driverMismatch reports whether the two reports measured the given
	// host-core column with different execution engines (Report.Host
	// metadata, recorded since the fused driver landed). A fused column is
	// a different experiment from a parallel one — diffing them would read
	// a driver change as a perf change — so mismatched columns are skipped,
	// not compared. Reports predating the metadata compare as before.
	driverMismatch := func(hc int) bool {
		o, n := oldR.Host.Drivers[hc], newR.Host.Drivers[hc]
		return o != "" && n != "" && o != n
	}
	noteMismatch := func(section string, hc int) {
		note := fmt.Sprintf("%s h%d (driver %s vs %s)", section, hc,
			oldR.Host.Drivers[hc], newR.Host.Drivers[hc])
		for _, s := range c.Skipped {
			if s == note {
				return
			}
		}
		c.Skipped = append(c.Skipped, note)
	}

	// higher compares a higher-is-better cell (KIPS, speedup).
	higher := func(section, name string, oldV, newV float64) {
		if oldV <= 0 {
			return // nothing meaningful to anchor a relative change on
		}
		cell := CompareCell{
			Section: section, Name: name,
			Old: oldV, New: newV,
			Delta: (newV - oldV) / oldV,
		}
		if newV < oldV*(1-threshold) {
			cell.Regressed = true
			c.Regressions++
		}
		c.Cells = append(c.Cells, cell)
	}

	switch {
	case oldR.Table2 != nil && newR.Table2 != nil && driverMismatch(1):
		// Table 2 is defined at 1 host core; a driver swap there makes
		// every baseline cell incomparable.
		noteMismatch("table2", 1)
	case oldR.Table2 != nil && newR.Table2 != nil:
		newRows := make(map[string]Table2Row, len(newR.Table2))
		for _, row := range newR.Table2 {
			newRows[row.Benchmark] = row
		}
		var oldKIPS, newKIPS []float64
		for _, o := range oldR.Table2 {
			n, ok := newRows[o.Benchmark]
			if !ok {
				continue
			}
			higher("table2", o.Benchmark+" KIPS", o.KIPS, n.KIPS)
			oldKIPS = append(oldKIPS, o.KIPS)
			newKIPS = append(newKIPS, n.KIPS)
		}
		if len(oldKIPS) > 1 {
			higher("table2", "harmonic-mean KIPS",
				stats.HarmonicMean(oldKIPS), stats.HarmonicMean(newKIPS))
		}
	case oldR.Table2 != nil || newR.Table2 != nil:
		c.Skipped = append(c.Skipped, "table2")
	}

	switch {
	case oldR.Figure8 != nil && newR.Figure8 != nil:
		for _, wl := range oldR.Figure8.Workloads {
			for scheme, byHost := range oldR.Figure8.Speedup[wl] {
				for hc, oldV := range byHost {
					newV, ok := newR.Figure8.Speedup[wl][scheme][hc]
					if !ok {
						continue
					}
					// A speedup cell divides by the 1-host-core baseline, so
					// it is polluted by a driver swap at either end.
					if driverMismatch(hc) || driverMismatch(1) {
						if driverMismatch(hc) {
							noteMismatch("figure8", hc)
						} else {
							noteMismatch("figure8", 1)
						}
						continue
					}
					higher("figure8", fmt.Sprintf("%s %s h%d speedup", wl, scheme, hc), oldV, newV)
				}
			}
		}
	case oldR.Figure8 != nil || newR.Figure8 != nil:
		c.Skipped = append(c.Skipped, "figure8")
	}

	switch {
	case oldR.Figure9 != nil && newR.Figure9 != nil:
		for scheme, byHost := range oldR.Figure9.HMeanKIPS {
			for hc, oldV := range byHost {
				newV, ok := newR.Figure9.HMeanKIPS[scheme][hc]
				if !ok {
					continue
				}
				if driverMismatch(hc) {
					noteMismatch("figure9", hc)
					continue
				}
				higher("figure9", fmt.Sprintf("%s h%d hmean KIPS", scheme, hc), oldV, newV)
			}
		}
		for _, wl := range oldR.Figure9.Workloads {
			for scheme, byHost := range oldR.Figure9.KIPS[wl] {
				for hc, oldV := range byHost {
					newV, ok := newR.Figure9.KIPS[wl][scheme][hc]
					if !ok {
						continue
					}
					if driverMismatch(hc) {
						noteMismatch("figure9", hc)
						continue
					}
					higher("figure9", fmt.Sprintf("%s %s h%d KIPS", wl, scheme, hc), oldV, newV)
				}
			}
		}
	case oldR.Figure9 != nil || newR.Figure9 != nil:
		c.Skipped = append(c.Skipped, "figure9")
	}

	switch {
	case oldR.Remote != nil && newR.Remote != nil:
		for scheme, byWorkers := range oldR.Remote.HMeanKIPS {
			for nw, oldV := range byWorkers {
				newV, ok := newR.Remote.HMeanKIPS[scheme][nw]
				if !ok {
					continue
				}
				higher("remote", fmt.Sprintf("%s w%d hmean KIPS", scheme, nw), oldV, newV)
			}
		}
		for _, wl := range oldR.Remote.Workloads {
			for scheme, byWorkers := range oldR.Remote.KIPS[wl] {
				for nw, oldV := range byWorkers {
					newV, ok := newR.Remote.KIPS[wl][scheme][nw]
					if !ok {
						continue
					}
					higher("remote", fmt.Sprintf("%s %s w%d KIPS", wl, scheme, nw), oldV, newV)
				}
			}
		}
	case oldR.Remote != nil || newR.Remote != nil:
		c.Skipped = append(c.Skipped, "remote")
	}

	switch {
	case oldR.Table3 != nil && newR.Table3 != nil:
		newRows := make(map[string]Table3Row, len(newR.Table3))
		for _, row := range newR.Table3 {
			newRows[row.Benchmark] = row
		}
		for _, o := range oldR.Table3 {
			n, ok := newRows[o.Benchmark]
			if !ok {
				continue
			}
			for scheme, oldV := range o.Err {
				newV, ok := n.Err[scheme]
				if !ok {
					continue
				}
				// Accuracy cell: lower |error| is better; the regression
				// test is absolute growth in error units, because a tiny
				// error doubling (0.01% → 0.02%) is noise, not a slide.
				cell := CompareCell{
					Section: "table3",
					Name:    fmt.Sprintf("%s %s error", o.Benchmark, scheme),
					Old:     oldV, New: newV,
					Delta: math.Abs(newV) - math.Abs(oldV),
				}
				if cell.Delta > threshold {
					cell.Regressed = true
					c.Regressions++
				}
				c.Cells = append(c.Cells, cell)
			}
		}
	case oldR.Table3 != nil || newR.Table3 != nil:
		c.Skipped = append(c.Skipped, "table3")
	}

	return c
}

// Print renders the comparison as a table of per-cell deltas, regressions
// marked, followed by a one-line verdict.
func (c *Comparison) Print(out io.Writer) {
	var t stats.Table
	t.AddRow("Section", "Cell", "Old", "New", "Delta", "")
	for _, cell := range c.Cells {
		mark := ""
		if cell.Regressed {
			mark = "REGRESSED"
		}
		delta := fmt.Sprintf("%+.1f%%", cell.Delta*100)
		if cell.Section == "table3" {
			delta = fmt.Sprintf("%+.2fpp", cell.Delta*100)
		}
		t.AddRow(cell.Section, cell.Name,
			fmt.Sprintf("%.2f", cell.Old), fmt.Sprintf("%.2f", cell.New), delta, mark)
	}
	fmt.Fprint(out, t.String())
	for _, s := range c.Skipped {
		if strings.Contains(s, "driver") {
			fmt.Fprintf(out, "skipped %s: drivers differ, columns not comparable\n", s)
		} else {
			fmt.Fprintf(out, "skipped %s: present in only one report\n", s)
		}
	}
	if c.Regressions > 0 {
		fmt.Fprintf(out, "%d regression(s) past the %.0f%% threshold over %d compared cells\n",
			c.Regressions, c.Threshold*100, len(c.Cells))
	} else {
		fmt.Fprintf(out, "no regressions past the %.0f%% threshold over %d compared cells\n",
			c.Threshold*100, len(c.Cells))
	}
}
