package harness

import (
	"bytes"
	"strings"
	"testing"

	"slacksim/internal/core"
)

func TestTable2Small(t *testing.T) {
	r, err := NewRunner(Options{
		Workloads:   []string{"ocean"},
		TargetCores: 4,
		Verify:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Table2(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ocean") || !strings.Contains(out, "KIPS") {
		t.Fatalf("unexpected table: %s", out)
	}
	t.Logf("\n%s", out)
}

func TestDriverSelection(t *testing.T) {
	auto := Options{}
	auto.fillDefaults()
	for hc, want := range map[int]string{0: "serial", 1: "fused", 2: "parallel", 8: "parallel"} {
		if got := auto.DriverFor(hc); got != want {
			t.Errorf("auto DriverFor(%d) = %q, want %q", hc, got, want)
		}
	}
	forced := Options{Driver: "parallel"}
	forced.fillDefaults()
	if got := forced.DriverFor(1); got != "parallel" {
		t.Errorf("forced DriverFor(1) = %q, want parallel", got)
	}
	if got := forced.DriverFor(0); got != "serial" {
		t.Errorf("forced DriverFor(0) = %q, want serial (reference engine)", got)
	}
	if _, err := NewRunner(Options{Driver: "warp"}); err == nil {
		t.Error("NewRunner accepted driver \"warp\"")
	}

	// A 1-host-core run under auto must execute (and record) the fused
	// driver end to end.
	r, err := NewRunner(Options{
		Workloads:   []string{"ocean"},
		HostCores:   []int{1},
		TargetCores: 4,
		Verify:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	run, err := r.RunOne("ocean", core.SchemeCC, 1)
	if err != nil {
		t.Fatal(err)
	}
	if run.Driver != "fused" {
		t.Errorf("Run.Driver = %q, want fused", run.Driver)
	}
	if names := r.DriverNames(); names[1] != "fused" || names[0] != "serial" {
		t.Errorf("DriverNames() = %v", names)
	}
}

func TestFigure8Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	r, err := NewRunner(Options{
		Workloads:   []string{"ocean"},
		Schemes:     []core.Scheme{core.SchemeCC, core.SchemeS9, core.SchemeSU},
		HostCores:   []int{2},
		TargetCores: 4,
		Verify:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	data, err := r.Figure8(&buf)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", buf.String())
	for _, s := range []string{"CC", "S9", "SU"} {
		if data.Speedup["ocean"][s][2] <= 0 {
			t.Fatalf("missing speedup for %s", s)
		}
	}
}

func TestTable3Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	r, err := NewRunner(Options{
		Workloads:   []string{"ocean"},
		HostCores:   []int{2},
		TargetCores: 4,
		Verify:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Table3(&buf); err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", buf.String())
}
