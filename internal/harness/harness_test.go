package harness

import (
	"bytes"
	"strings"
	"testing"

	"slacksim/internal/core"
)

func TestTable2Small(t *testing.T) {
	r, err := NewRunner(Options{
		Workloads:   []string{"ocean"},
		TargetCores: 4,
		Verify:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Table2(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ocean") || !strings.Contains(out, "KIPS") {
		t.Fatalf("unexpected table: %s", out)
	}
	t.Logf("\n%s", out)
}

func TestFigure8Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	r, err := NewRunner(Options{
		Workloads:   []string{"ocean"},
		Schemes:     []core.Scheme{core.SchemeCC, core.SchemeS9, core.SchemeSU},
		HostCores:   []int{2},
		TargetCores: 4,
		Verify:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	data, err := r.Figure8(&buf)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", buf.String())
	for _, s := range []string{"CC", "S9", "SU"} {
		if data.Speedup["ocean"][s][2] <= 0 {
			t.Fatalf("missing speedup for %s", s)
		}
	}
}

func TestTable3Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	r, err := NewRunner(Options{
		Workloads:   []string{"ocean"},
		HostCores:   []int{2},
		TargetCores: 4,
		Verify:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Table3(&buf); err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", buf.String())
}
