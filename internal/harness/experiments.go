package harness

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"slacksim/internal/core"
	"slacksim/internal/stats"
	"slacksim/internal/workloads"
)

// Table2Row is one benchmark's baseline measurement (paper Table 2).
type Table2Row struct {
	Benchmark string
	InputSet  string
	KIPS      float64
	ROIInstrs int64
	ROICycles int64
	// HostAllocs/AllocsPerK record the run's host heap allocations
	// (runtime.MemStats delta) — the zero-allocation hot loop's
	// regression indicator alongside KIPS.
	HostAllocs uint64  `json:",omitempty"`
	AllocsPerK float64 `json:",omitempty"`
}

// Table2Data measures the paper's Table 2: each benchmark's input set and
// the instruction throughput (KIPS) of the cycle-by-cycle simulation with
// all simulation threads on one host core.
func (r *Runner) Table2Data() ([]Table2Row, error) {
	var rows []Table2Row
	for _, name := range r.opts.Workloads {
		w, err := workloads.Get(name)
		if err != nil {
			return nil, err
		}
		run, err := r.Baseline(name)
		if err != nil {
			return nil, err
		}
		res := run.Result
		rows = append(rows, Table2Row{
			Benchmark:  name,
			InputSet:   w.InputDesc(r.opts.Scale),
			KIPS:       res.KIPS(),
			ROIInstrs:  res.Committed,
			ROICycles:  res.ROICycles(),
			HostAllocs: res.HostAllocs,
			AllocsPerK: res.AllocsPerKInstr(),
		})
	}
	return rows, nil
}

// PrintTable2 renders Table2Data rows as text.
func PrintTable2(out io.Writer, rows []Table2Row) {
	fmt.Fprintln(out, "Table 2: Benchmarks (baseline = cycle-by-cycle on 1 host core)")
	var t stats.Table
	t.AddRow("Benchmark", "Input Set", "KIPS", "ROI instrs", "ROI cycles", "allocs/kinstr")
	for _, row := range rows {
		t.AddRowf(row.Benchmark, row.InputSet, fmt.Sprintf("%.1f", row.KIPS), row.ROIInstrs, row.ROICycles,
			fmt.Sprintf("%.2f", row.AllocsPerK))
	}
	fmt.Fprint(out, t.String())
}

// Table2 measures and renders Table 2.
func (r *Runner) Table2(out io.Writer) error {
	rows, err := r.Table2Data()
	if err != nil {
		return err
	}
	PrintTable2(out, rows)
	return nil
}

// Figure8Data holds the full speedup sweep.
type Figure8Data struct {
	Workloads []string
	Schemes   []core.Scheme
	HostCores []int
	// Speedup[workload][scheme][host] = baseline wall / run wall.
	Speedup map[string]map[string]map[int]float64
	// Baseline wall time per workload.
	BaselineWall map[string]time.Duration
}

// Figure8 runs the full sweep of the paper's Figure 8: every benchmark
// under every scheme at every host-core count, reporting speedup over the
// 1-host-core cycle-by-cycle baseline.
func (r *Runner) Figure8(out io.Writer) (*Figure8Data, error) {
	data := &Figure8Data{
		Workloads:    r.opts.Workloads,
		Schemes:      r.opts.Schemes,
		HostCores:    r.opts.HostCores,
		Speedup:      make(map[string]map[string]map[int]float64),
		BaselineWall: make(map[string]time.Duration),
	}
	for _, name := range r.opts.Workloads {
		base, err := r.Baseline(name)
		if err != nil {
			return nil, err
		}
		data.BaselineWall[name] = base.Result.Wall
		data.Speedup[name] = make(map[string]map[int]float64)
		for _, s := range r.opts.Schemes {
			data.Speedup[name][s.String()] = make(map[int]float64)
			for _, hc := range r.opts.HostCores {
				run, err := r.RunOne(name, s, hc)
				if err != nil {
					return nil, err
				}
				data.Speedup[name][s.String()][hc] =
					base.Result.Wall.Seconds() / run.Result.Wall.Seconds()
			}
		}
	}
	data.Print(out)
	return data, nil
}

// Print renders the Figure 8 panels: one speedup table per benchmark
// (8a-8d) and the harmonic-mean panel (8e), followed by the derived
// §4.2.1 scheme-ordering claims.
func (d *Figure8Data) Print(out io.Writer) {
	for _, name := range d.Workloads {
		fmt.Fprintf(out, "\nFigure 8: simulation speedup of %s vs CC on 1 host core\n", name)
		d.printPanel(out, func(scheme string, hc int) (float64, bool) {
			v, ok := d.Speedup[name][scheme][hc]
			return v, ok
		})
	}
	fmt.Fprintf(out, "\nFigure 8(e): harmonic mean of benchmark speedups\n")
	d.printPanel(out, func(scheme string, hc int) (float64, bool) {
		var xs []float64
		for _, name := range d.Workloads {
			if v, ok := d.Speedup[name][scheme][hc]; ok {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return 0, false
		}
		return stats.HarmonicMean(xs), true
	})
	d.printClaims(out)
}

func (d *Figure8Data) printPanel(out io.Writer, get func(scheme string, hc int) (float64, bool)) {
	var t stats.Table
	header := []string{"Scheme"}
	for _, hc := range d.HostCores {
		header = append(header, fmt.Sprintf("%d host cores", hc))
	}
	t.AddRow(header...)
	for _, s := range d.Schemes {
		row := []string{s.String()}
		for _, hc := range d.HostCores {
			if v, ok := get(s.String(), hc); ok {
				row = append(row, fmt.Sprintf("%.2f", v))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	fmt.Fprint(out, t.String())
}

// printClaims derives the paper's §4.2.1 qualitative observations from the
// measured data so a reader can check each one directly.
func (d *Figure8Data) printClaims(out io.Writer) {
	hc := d.HostCores[len(d.HostCores)-1]
	hm := func(scheme string) float64 {
		var xs []float64
		for _, name := range d.Workloads {
			if v, ok := d.Speedup[name][scheme][hc]; ok {
				xs = append(xs, v)
			}
		}
		return stats.HarmonicMean(xs)
	}
	have := func(scheme string) bool {
		for _, s := range d.Schemes {
			if s.String() == scheme {
				return true
			}
		}
		return false
	}
	fmt.Fprintf(out, "\nDerived claims (§4.2.1) at %d host cores:\n", hc)
	if have("S9") && have("Q10") {
		fmt.Fprintf(out, "  S9 vs Q10 speedup ratio: %.2fx (paper: ~1.2x)\n", hm("S9")/hm("Q10"))
	}
	if have("SU") && have("S100") {
		fmt.Fprintf(out, "  SU vs S100:              %.2fx (paper: SU best everywhere)\n", hm("SU")/hm("S100"))
	}
	if have("S100") && have("S9") {
		fmt.Fprintf(out, "  S100 vs S9:              %.2fx (paper: S100 outperforms S9)\n", hm("S100")/hm("S9"))
	}
	if have("L10") && have("Q10") {
		fmt.Fprintf(out, "  L10 vs Q10:              %.2fx (paper: L10 slightly higher)\n", hm("L10")/hm("Q10"))
	}
	if have("S9*") && have("S9") {
		fmt.Fprintf(out, "  S9* vs S9:               %.2fx (paper: almost the same)\n", hm("S9*")/hm("S9"))
	}
	if have("CC") {
		fmt.Fprintf(out, "  CC at %d host cores:      %.2fx (paper: poor, up to 2.6)\n", hc, hm("CC"))
	}
}

// Figure9Data holds the host-core scaling sweep (paper Figures 9-10):
// absolute simulation speed in KIPS per scheme and host-core count, and
// the scale-up of each scheme relative to its own 1-host-core (or
// smallest-swept) point. Figure 8 answers "how much faster than the
// baseline"; Figure 9 answers "does adding host cores help".
type Figure9Data struct {
	Workloads []string
	Schemes   []core.Scheme
	HostCores []int
	// KIPS[workload][scheme][host] = simulation speed of that run.
	KIPS map[string]map[string]map[int]float64
	// HMeanKIPS[scheme][host] = harmonic mean across workloads.
	HMeanKIPS map[string]map[int]float64
	// ScaleUp[scheme][host] = HMeanKIPS[scheme][host] /
	// HMeanKIPS[scheme][smallest swept host-core count].
	ScaleUp map[string]map[int]float64
}

// Figure9 runs the host-core scaling sweep: every benchmark under every
// scheme at every host-core count, recording absolute KIPS and each
// scheme's scale-up over its own smallest-host-core point.
func (r *Runner) Figure9(out io.Writer) (*Figure9Data, error) {
	d := &Figure9Data{
		Workloads: r.opts.Workloads,
		Schemes:   r.opts.Schemes,
		HostCores: r.opts.HostCores,
		KIPS:      make(map[string]map[string]map[int]float64),
		HMeanKIPS: make(map[string]map[int]float64),
		ScaleUp:   make(map[string]map[int]float64),
	}
	for _, name := range r.opts.Workloads {
		d.KIPS[name] = make(map[string]map[int]float64)
		for _, s := range r.opts.Schemes {
			d.KIPS[name][s.String()] = make(map[int]float64)
			for _, hc := range r.opts.HostCores {
				run, err := r.RunOne(name, s, hc)
				if err != nil {
					return nil, err
				}
				d.KIPS[name][s.String()][hc] = run.Result.KIPS()
			}
		}
	}
	for _, s := range r.opts.Schemes {
		d.HMeanKIPS[s.String()] = make(map[int]float64)
		d.ScaleUp[s.String()] = make(map[int]float64)
		for _, hc := range r.opts.HostCores {
			var xs []float64
			for _, name := range r.opts.Workloads {
				if v, ok := d.KIPS[name][s.String()][hc]; ok && v > 0 {
					xs = append(xs, v)
				}
			}
			if len(xs) > 0 {
				d.HMeanKIPS[s.String()][hc] = stats.HarmonicMean(xs)
			}
		}
		base := d.HMeanKIPS[s.String()][r.opts.HostCores[0]]
		if base > 0 {
			for _, hc := range r.opts.HostCores {
				d.ScaleUp[s.String()][hc] = d.HMeanKIPS[s.String()][hc] / base
			}
		}
	}
	d.Print(out)
	return d, nil
}

// Print renders the Figure 9/10 tables: harmonic-mean KIPS and per-scheme
// scale-up by host-core count, then per-benchmark KIPS panels.
func (d *Figure9Data) Print(out io.Writer) {
	fmt.Fprintf(out, "\nFigure 9: simulation speed (harmonic-mean KIPS) by host cores\n")
	d.printPanel(out, "%.1f", func(scheme string, hc int) (float64, bool) {
		v, ok := d.HMeanKIPS[scheme][hc]
		return v, ok
	})
	fmt.Fprintf(out, "\nFigure 10: scale-up over each scheme's %d-host-core point\n", d.HostCores[0])
	d.printPanel(out, "%.2f", func(scheme string, hc int) (float64, bool) {
		v, ok := d.ScaleUp[scheme][hc]
		return v, ok
	})
	for _, name := range d.Workloads {
		fmt.Fprintf(out, "\nFigure 9 (%s): simulation speed in KIPS\n", name)
		d.printPanel(out, "%.1f", func(scheme string, hc int) (float64, bool) {
			v, ok := d.KIPS[name][scheme][hc]
			return v, ok
		})
	}
}

func (d *Figure9Data) printPanel(out io.Writer, format string, get func(scheme string, hc int) (float64, bool)) {
	var t stats.Table
	header := []string{"Scheme"}
	for _, hc := range d.HostCores {
		header = append(header, fmt.Sprintf("%d host cores", hc))
	}
	t.AddRow(header...)
	for _, s := range d.Schemes {
		row := []string{s.String()}
		for _, hc := range d.HostCores {
			if v, ok := get(s.String(), hc); ok {
				row = append(row, fmt.Sprintf(format, v))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	fmt.Fprint(out, t.String())
}

// Table3Row is one benchmark's slack-error measurements (paper Table 3):
// the relative execution-time error of each optimistic scheme versus the
// deterministic serial reference, as a fraction (0.01 = 1%).
type Table3Row struct {
	Benchmark string
	Err       map[string]float64
}

// table3Schemes are the optimistic schemes Table 3 compares.
var table3Schemes = []core.Scheme{core.SchemeS9, core.SchemeS100, core.SchemeSU}

// Table3Data measures the paper's Table 3: relative error in the simulated
// execution time of the optimistic schemes (S9, S100, SU) at the largest
// host-core count, versus the deterministic cycle-by-cycle reference.
func (r *Runner) Table3Data() ([]Table3Row, error) {
	hc := r.opts.HostCores[len(r.opts.HostCores)-1]
	var rows []Table3Row
	for _, name := range r.opts.Workloads {
		ref, err := r.SerialReference(name)
		if err != nil {
			return nil, err
		}
		row := Table3Row{Benchmark: name, Err: make(map[string]float64)}
		for _, s := range table3Schemes {
			run, err := r.RunOne(name, s, hc)
			if err != nil {
				return nil, err
			}
			row.Err[s.String()] = stats.RelErr(float64(run.Result.ROICycles()), float64(ref.Result.ROICycles()))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintTable3 renders Table3Data rows as text. hostCores is the host-core
// count the rows were measured at.
func PrintTable3(out io.Writer, rows []Table3Row, hostCores int) {
	fmt.Fprintf(out, "Table 3: relative error in execution time due to slack (%d host cores)\n", hostCores)
	var t stats.Table
	t.AddRow("Benchmark", "S9", "S100", "SU")
	for _, row := range rows {
		cells := []string{row.Benchmark}
		for _, s := range table3Schemes {
			cells = append(cells, fmt.Sprintf("%.2f%%", row.Err[s.String()]*100))
		}
		t.AddRow(cells...)
	}
	fmt.Fprint(out, t.String())
}

// Table3 measures and renders Table 3.
func (r *Runner) Table3(out io.Writer) error {
	rows, err := r.Table3Data()
	if err != nil {
		return err
	}
	PrintTable3(out, rows, r.opts.HostCores[len(r.opts.HostCores)-1])
	return nil
}

// HostInfo records the machine a report was measured on: scaling numbers
// are meaningless without knowing how many CPUs the host really had (a
// HostCores sweep past NumCPU is GOMAXPROCS oversubscription, not
// parallelism).
type HostInfo struct {
	NumCPU     int
	GOMAXPROCS int
	GOOS       string
	GOARCH     string
	// Drivers records which execution engine produced each host-core
	// column (0 = serial reference). A fused 1-host-core column and a
	// parallel one are different experiments; CompareReports refuses to
	// diff columns whose drivers disagree (see Runner.DriverNames).
	Drivers map[int]string `json:",omitempty"`
}

// CollectHostInfo snapshots the current host for a report header.
func CollectHostInfo() HostInfo {
	return HostInfo{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
	}
}

// Report aggregates the evaluation's numbers for machine consumption
// (slackbench -json). Sections not requested on the command line are nil.
type Report struct {
	TargetCores int
	HostCores   []int
	Scale       int
	Host        HostInfo
	Table2      []Table2Row  `json:",omitempty"`
	Figure8     *Figure8Data `json:",omitempty"`
	Figure9     *Figure9Data `json:",omitempty"`
	Table3      []Table3Row  `json:",omitempty"`
	Remote      *RemoteData  `json:",omitempty"`
}
