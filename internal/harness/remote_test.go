package harness

import (
	"strings"
	"testing"

	"slacksim/internal/core"
)

func TestRemoteSweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("workload sweep")
	}
	r, err := NewRunner(Options{
		Workloads:   []string{"ocean"},
		Schemes:     []core.Scheme{core.SchemeCC, core.SchemeS9x},
		TargetCores: 4,
		Verify:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	d, err := r.RemoteSweep(&out, 2, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"CC", "S9*"} {
		for _, nw := range []int{1, 2} {
			if d.KIPS["ocean"][s][nw] <= 0 {
				t.Errorf("%s w%d: no KIPS", s, nw)
			}
			w := d.Wire["ocean"][s][nw]
			if w == nil || w.Parent.BatchesSent == 0 || w.Workers.BytesSent == 0 {
				t.Errorf("%s w%d: wire stats missing or empty: %+v", s, nw, w)
			}
		}
		if d.HMeanKIPS[s][1] <= 0 {
			t.Errorf("%s: no harmonic mean", s)
		}
	}
	if !strings.Contains(out.String(), "Remote backend") || !strings.Contains(out.String(), "Wire traffic") {
		t.Errorf("sweep output missing sections:\n%s", out.String())
	}
}

func TestCompareRemoteSection(t *testing.T) {
	mk := func(kips float64) *Report {
		return &Report{Remote: &RemoteData{
			Workloads: []string{"fft"},
			Workers:   []int{1},
			KIPS:      map[string]map[string]map[int]float64{"fft": {"CC": {1: kips}}},
			HMeanKIPS: map[string]map[int]float64{"CC": {1: kips}},
		}}
	}
	c := CompareReports(mk(100), mk(50), 0.10)
	if c.Regressions == 0 {
		t.Error("halved remote KIPS not flagged")
	}
	c = CompareReports(mk(100), mk(99), 0.10)
	if c.Regressions != 0 {
		t.Errorf("noise flagged: %+v", c.Cells)
	}
	// Present in only one report: skipped, not failed.
	c = CompareReports(mk(100), &Report{}, 0.10)
	if c.Regressions != 0 || len(c.Skipped) == 0 {
		t.Errorf("one-sided remote section not skipped: %+v", c)
	}
}
