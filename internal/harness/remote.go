package harness

import (
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"slacksim/internal/cache"
	"slacksim/internal/core"
	"slacksim/internal/cpu"
	"slacksim/internal/metrics"
	"slacksim/internal/remote"
	"slacksim/internal/stats"
	"slacksim/internal/trace"
	"slacksim/internal/workloads"
)

// This file is the distributed backend's evaluation hook: a
// Figure-9-style sweep where the scaled dimension is the number of
// worker endpoints serving the memory-hierarchy shards, instead of
// GOMAXPROCS. Workers are served in-process over real loopback TCP
// connections, so every wire cost is real — framing, delta codec,
// kernel socket round trips — while the sweep stays runnable on any
// single host (the multi-process deployment is exercised by the
// slacksim/slackworker CLIs and CI's distributed-smoke job).

// RemoteData holds the worker-count sweep: simulation speed per
// workload, scheme, and worker count, plus the wire-traffic counters of
// each kept run.
type RemoteData struct {
	Workloads []string
	Schemes   []core.Scheme
	// Workers lists the swept worker-endpoint counts.
	Workers []int
	// Shards is the remote shard count every run used (workers share
	// shards round-robin when fewer than Shards).
	Shards int
	// KIPS[workload][scheme][workers] = simulation speed of that run.
	KIPS map[string]map[string]map[int]float64
	// HMeanKIPS[scheme][workers] = harmonic mean across workloads.
	HMeanKIPS map[string]map[int]float64
	// Wire[workload][scheme][workers] = the kept run's wire counters.
	Wire map[string]map[string]map[int]*core.RemoteWireStats
}

// remoteMachine mirrors Runner.machine with the distributed backend
// configured; the shard count pins DRAMChannels exactly as ManagerShards
// would, so remote and in-process sweeps at equal counts simulate the
// identical target.
func (r *Runner) remoteMachine(name string, shards int) (*core.Machine, *workloads.Workload, error) {
	w, err := workloads.Get(name)
	if err != nil {
		return nil, nil, err
	}
	cfg := core.Config{
		NumCores:     r.opts.TargetCores,
		NumThreads:   r.opts.TargetCores,
		Model:        r.opts.Model,
		CPU:          cpu.DefaultConfig(),
		Cache:        cache.DefaultConfig(r.opts.TargetCores),
		MaxCycles:    r.opts.MaxCycles,
		RemoteShards: shards,
	}
	m, err := core.NewMachine(r.progs[name], cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := w.Init(m.Image(), r.opts.Scale); err != nil {
		return nil, nil, err
	}
	return m, w, nil
}

// loopbackWorkers is a fleet of in-process worker sessions served over
// real loopback TCP. The listener stays open for the run so the parent's
// supervisor can redial a failed endpoint and resume its session — the
// same recovery path the multi-process deployment exercises.
type loopbackWorkers struct {
	ln         net.Listener
	transports []remote.Transport
	wg         sync.WaitGroup
	acceptWG   sync.WaitGroup
}

// dial opens one parent-side connection and pairs it with a fresh
// in-process worker session. Used both for the initial fleet and as the
// supervisor's Redial hook.
func (l *loopbackWorkers) dial(int) (remote.Transport, error) {
	c, err := net.Dial("tcp", l.ln.Addr().String())
	if err != nil {
		return nil, err
	}
	return c, nil
}

// accept serves every inbound connection until the listener closes.
func (l *loopbackWorkers) accept() {
	defer l.acceptWG.Done()
	for {
		s, err := l.ln.Accept()
		if err != nil {
			return
		}
		l.wg.Add(1)
		go func() {
			defer l.wg.Done()
			core.ServeRemoteShards(s)
		}()
	}
}

// close shuts the listener and waits for every session to drain.
func (l *loopbackWorkers) close() {
	l.ln.Close()
	l.acceptWG.Wait()
	for _, t := range l.transports {
		t.Close()
	}
	l.wg.Wait()
}

// startLoopbackWorkers pairs nw loopback TCP connections with in-process
// worker sessions; the fleet's listener keeps accepting so reconnects
// work for the whole run.
func startLoopbackWorkers(nw int) (*loopbackWorkers, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	l := &loopbackWorkers{ln: ln}
	l.acceptWG.Add(1)
	go l.accept()
	for i := 0; i < nw; i++ {
		c, err := l.dial(i)
		if err != nil {
			l.close()
			return nil, err
		}
		l.transports = append(l.transports, c)
	}
	return l, nil
}

// RunOneRemote executes workload name under scheme over the distributed
// backend with the given shard and worker-endpoint counts, keeping the
// best of Repeat wall times. The local observability options apply to
// the whole fleet: with Metrics the worker registries federate under
// "worker<i>." prefixes, with TraceDir the kept (or failed) run writes
// the merged cross-process timeline, and with BundleDir a failed run
// leaves a crash bundle.
func (r *Runner) RunOneRemote(name string, scheme core.Scheme, shards, workers int) (*core.Result, error) {
	var best *core.Result
	var bestMachine *core.Machine
	for rep := 0; rep < r.opts.Repeat; rep++ {
		if r.stop.Load() {
			return nil, ErrInterrupted
		}
		m, w, err := r.remoteMachine(name, shards)
		if err != nil {
			return nil, err
		}
		if r.opts.Metrics {
			m.EnableMetrics(metrics.NewRegistry())
		}
		if r.opts.Introspect != nil {
			if err := m.EnableIntrospection(r.opts.Introspect); err != nil {
				return nil, fmt.Errorf("harness: %s/%v remote: %w", name, scheme, err)
			}
		}
		traced := false
		if r.opts.TraceDir != "" {
			m.EnableTrace(trace.New())
			traced = true
		}
		if r.opts.BundleDir != "" {
			m.SetBundleDir(r.opts.BundleDir)
		}
		fleet, err := startLoopbackWorkers(workers)
		if err != nil {
			return nil, fmt.Errorf("harness: %s/%v remote: %w", name, scheme, err)
		}
		start := time.Now()
		r.current.Store(m)
		res, err := m.RunRemoteShardedOpts(scheme, &core.RemoteOptions{
			Transports: fleet.transports,
			Redial:     fleet.dial,
		})
		r.current.Store(nil)
		fleet.close()
		if r.stop.Load() {
			return nil, ErrInterrupted
		}
		if err != nil || (res != nil && res.Aborted) {
			if traced {
				if werr := r.writeTrace(m.WriteTraceChrome, m.FleetTraceDropped(),
					remoteTraceBase(name, scheme, workers, "_failed")); werr != nil {
					r.logf("           trace (failed run): %v\n", werr)
				}
			}
			r.logBundle(m)
			if err != nil {
				return nil, fmt.Errorf("harness: %s/%v w%d remote: %w", name, scheme, workers, err)
			}
			return nil, fmt.Errorf("harness: %s/%v w%d remote aborted at %d cycles", name, scheme, workers, res.EndTime)
		}
		res.Wall = time.Since(start)
		if r.opts.Verify {
			if err := w.Verify(m.Image(), res.Output, r.opts.Scale); err != nil {
				return nil, fmt.Errorf("harness: %s/%v w%d remote: %w", name, scheme, workers, err)
			}
		}
		if best == nil || res.Wall < best.Wall {
			best = res
			bestMachine = m
		}
	}
	if r.opts.TraceDir != "" && bestMachine != nil {
		if err := r.writeTrace(bestMachine.WriteTraceChrome, bestMachine.FleetTraceDropped(),
			remoteTraceBase(name, scheme, workers, "")); err != nil {
			return nil, err
		}
	}
	// A run can succeed bit-exact yet abandon a worker; the bundle the
	// machine wrote for it is worth surfacing even on the success path.
	if bestMachine != nil {
		r.logBundle(bestMachine)
	}
	return best, nil
}

// remoteTraceBase names a remote run's merged trace file: driver slot
// "remote" plus the worker count (the remote sweep's scaled dimension).
func remoteTraceBase(name string, scheme core.Scheme, workers int, suffix string) string {
	sname := strings.ReplaceAll(scheme.String(), "*", "x")
	return fmt.Sprintf("%s_%s_remote_w%d%s", name, sname, workers, suffix)
}

// RemoteSweep runs every workload under every scheme at every worker
// count, recording absolute KIPS, harmonic means, and wire traffic.
func (r *Runner) RemoteSweep(out io.Writer, shards int, workerCounts []int) (*RemoteData, error) {
	d := &RemoteData{
		Workloads: r.opts.Workloads,
		Schemes:   r.opts.Schemes,
		Workers:   workerCounts,
		Shards:    shards,
		KIPS:      make(map[string]map[string]map[int]float64),
		HMeanKIPS: make(map[string]map[int]float64),
		Wire:      make(map[string]map[string]map[int]*core.RemoteWireStats),
	}
	for _, name := range r.opts.Workloads {
		d.KIPS[name] = make(map[string]map[int]float64)
		d.Wire[name] = make(map[string]map[int]*core.RemoteWireStats)
		for _, s := range r.opts.Schemes {
			d.KIPS[name][s.String()] = make(map[int]float64)
			d.Wire[name][s.String()] = make(map[int]*core.RemoteWireStats)
			for _, nw := range workerCounts {
				res, err := r.RunOneRemote(name, s, shards, nw)
				if err != nil {
					return nil, err
				}
				d.KIPS[name][s.String()][nw] = res.KIPS()
				d.Wire[name][s.String()][nw] = res.Wire
				r.logf("remote %-8s %-5v w%d: %8.1f KIPS, %5.0f B/batch, %v wall\n",
					name, s, nw, res.KIPS(), res.Wire.Parent.BytesPerBatch(), res.Wall.Round(time.Millisecond))
			}
		}
	}
	for _, s := range r.opts.Schemes {
		d.HMeanKIPS[s.String()] = make(map[int]float64)
		for _, nw := range workerCounts {
			var xs []float64
			for _, name := range r.opts.Workloads {
				if v, ok := d.KIPS[name][s.String()][nw]; ok && v > 0 {
					xs = append(xs, v)
				}
			}
			if len(xs) > 0 {
				d.HMeanKIPS[s.String()][nw] = stats.HarmonicMean(xs)
			}
		}
	}
	d.Print(out)
	return d, nil
}

// Print renders the sweep: harmonic-mean KIPS by worker count per scheme,
// then a wire-traffic summary per scheme at the largest worker count.
func (d *RemoteData) Print(out io.Writer) {
	fmt.Fprintf(out, "\nRemote backend: simulation speed (harmonic-mean KIPS) by worker count (%d shards)\n", d.Shards)
	var t stats.Table
	header := []string{"Scheme"}
	for _, nw := range d.Workers {
		header = append(header, fmt.Sprintf("w%d", nw))
	}
	t.AddRow(header...)
	for _, s := range d.Schemes {
		row := []string{s.String()}
		for _, nw := range d.Workers {
			if v, ok := d.HMeanKIPS[s.String()][nw]; ok {
				row = append(row, fmt.Sprintf("%.1f", v))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	fmt.Fprint(out, t.String())

	if len(d.Workers) == 0 || len(d.Workloads) == 0 {
		return
	}
	nw := d.Workers[len(d.Workers)-1]
	fmt.Fprintf(out, "\nWire traffic at w%d (parent side, summed over workloads)\n", nw)
	var wt stats.Table
	wt.AddRow("Scheme", "MB sent", "MB recv", "B/batch", "enc us/kevent", "dec us/kevent")
	for _, s := range d.Schemes {
		var sum core.RemoteWireStats
		n := 0
		for _, name := range d.Workloads {
			if w := d.Wire[name][s.String()][nw]; w != nil {
				sum.Parent.Add(w.Parent)
				sum.Workers.Add(w.Workers)
				n++
			}
		}
		if n == 0 {
			continue
		}
		encPerK, decPerK := 0.0, 0.0
		if sum.Parent.EventsSent > 0 {
			encPerK = float64(sum.Parent.EncodeNS) / 1e3 / float64(sum.Parent.EventsSent) * 1e3
		}
		if sum.Parent.EventsRecv > 0 {
			decPerK = float64(sum.Parent.DecodeNS) / 1e3 / float64(sum.Parent.EventsRecv) * 1e3
		}
		wt.AddRow(s.String(),
			fmt.Sprintf("%.1f", float64(sum.Parent.BytesSent)/1e6),
			fmt.Sprintf("%.1f", float64(sum.Parent.BytesRecv)/1e6),
			fmt.Sprintf("%.0f", sum.Parent.BytesPerBatch()),
			fmt.Sprintf("%.1f", encPerK),
			fmt.Sprintf("%.1f", decPerK))
	}
	fmt.Fprint(out, wt.String())
}
