package harness

import (
	"fmt"
	"time"

	"slacksim/internal/core"
	"slacksim/internal/stats"
)

// This file turns the engine's observability results (Result.CoreBusy /
// CoreWait / ManagerBusy, filled when Options.Metrics is on) into the
// per-scheme sync-overhead breakdown: how much host time each scheme
// spends simulating versus waiting on the pacing protocol versus in the
// manager thread. This is the measurement behind the paper's §4.2
// discussion of why larger slack buys speed — smaller wait share.

// breakdown is one run's host-time split.
type breakdown struct {
	busy    time.Duration // sum of per-core goroutine host time
	wait    time.Duration // share of busy spent parked or frozen
	manager time.Duration // manager's productive host time
}

func breakdownOf(res *core.Result) breakdown {
	var bd breakdown
	for i := range res.CoreBusy {
		bd.busy += res.CoreBusy[i]
		bd.wait += res.CoreWait[i]
	}
	bd.manager = res.ManagerBusy
	return bd
}

// simPct is the share of core host time spent actually simulating.
func (bd breakdown) simPct() float64 {
	if bd.busy <= 0 {
		return 0
	}
	return 100 * float64(bd.busy-bd.wait) / float64(bd.busy)
}

// waitPct is the share of core host time spent blocked on the manager.
func (bd breakdown) waitPct() float64 {
	if bd.busy <= 0 {
		return 0
	}
	return 100 * float64(bd.wait) / float64(bd.busy)
}

// SyncOverhead renders the per-scheme sync-overhead breakdown table for
// a set of runs of one workload/host-core configuration. Runs without
// breakdown data (Options.Metrics off, or serial runs) are skipped.
func SyncOverhead(runs []*Run) string {
	var t stats.Table
	t.AddRow("Scheme", "Wall", "Simulate", "Wait", "Manager", "Events")
	rows := 0
	for _, run := range runs {
		res := run.Result
		if res == nil || res.CoreBusy == nil {
			continue
		}
		bd := breakdownOf(res)
		t.AddRow(
			run.Scheme.String(),
			res.Wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f%%", bd.simPct()),
			fmt.Sprintf("%.1f%%", bd.waitPct()),
			bd.manager.Round(time.Millisecond).String(),
			fmt.Sprint(res.EventsProcessed),
		)
		rows++
	}
	if rows == 0 {
		return ""
	}
	return t.String()
}

// SyncOverheadSweep runs every configured scheme for one workload and
// host-core count with metrics attached (regardless of Options.Metrics)
// and returns the rendered breakdown table. It is the harness entry
// point behind slackbench's -breakdown flag.
func (r *Runner) SyncOverheadSweep(workload string, hostCores int) (string, error) {
	saved := r.opts.Metrics
	r.opts.Metrics = true
	defer func() { r.opts.Metrics = saved }()
	var runs []*Run
	for _, s := range r.opts.Schemes {
		run, err := r.RunOne(workload, s, hostCores)
		if err != nil {
			return "", err
		}
		runs = append(runs, run)
	}
	header := fmt.Sprintf("Sync-overhead breakdown: %s, %d host cores\n", workload, hostCores)
	return header + SyncOverhead(runs), nil
}
