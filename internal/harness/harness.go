// Package harness runs the paper's evaluation (§4): it sweeps slack
// schemes and host-core counts over the benchmarks and regenerates Table 2
// (baseline KIPS), Figure 8 (speedups per benchmark and their harmonic
// mean), and Table 3 (relative execution-time error of the optimistic
// schemes), plus the derived §4.2.1 claims.
package harness

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"slacksim/internal/asm"
	"slacksim/internal/cache"
	"slacksim/internal/core"
	"slacksim/internal/cpu"
	"slacksim/internal/introspect"
	"slacksim/internal/metrics"
	"slacksim/internal/trace"
	"slacksim/internal/workloads"
)

// Options configures an evaluation sweep.
type Options struct {
	// Workloads to run; defaults to the paper's four (Table 2).
	Workloads []string
	// Scale multiplies the workload input sizes.
	Scale int
	// Schemes to compare; defaults to the paper's seven (§4.2).
	Schemes []core.Scheme
	// HostCores values to sweep (GOMAXPROCS); defaults to {2, 4, 8}.
	HostCores []int
	// TargetCores is the simulated CMP size; defaults to 8 (§4.1).
	TargetCores int
	// Driver selects the execution engine: "serial", "parallel",
	// "sharded", "fused", or "auto" (the default). Auto picks the fused
	// single-goroutine driver when a run's host-core budget is 1 — the
	// goroutine-per-core fabric is pure overhead there (ROADMAP item 5) —
	// and the parallel driver otherwise. hostCores == 0 (the serial
	// reference) always runs serial regardless of Driver.
	Driver string
	// Model selects the core timing model; defaults to the OoO target.
	Model core.CoreModel
	// Repeat runs each configuration this many times and keeps the best
	// wall time (defaults to 1).
	Repeat int
	// Verify checks workload results after every run.
	Verify bool
	// MaxCycles bounds each run.
	MaxCycles int64
	// Metrics attaches a metrics registry to every run; the registry
	// (with the run's sync-overhead breakdown) is kept on each Run and a
	// per-row breakdown is appended to the progress log.
	Metrics bool
	// TraceDir, when non-empty, writes a Chrome trace-event JSON per run
	// into this directory (created if missing), named
	// <workload>_<scheme>_<driver>_h<hostcores>.json — the driver is in
	// the name so sweep columns sharing a host-core count cannot
	// overwrite each other. A run that dies (SimError, stall abort) still
	// flushes its trace, suffixed _failed, so the forensic record is not
	// lost with the run.
	TraceDir string
	// Introspect, when non-nil, attaches every run to the live
	// introspection server (implies Metrics: the live views are built from
	// the registry).
	Introspect *introspect.Server
	// BundleDir, when non-empty, arms post-mortem crash bundles: a run
	// that fails (SimError, stall, abandoned workers) writes a
	// self-contained forensics directory under it (internal/bundle).
	BundleDir string
}

func (o *Options) fillDefaults() {
	if len(o.Workloads) == 0 {
		for _, w := range workloads.Paper() {
			o.Workloads = append(o.Workloads, w.Name)
		}
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if len(o.Schemes) == 0 {
		o.Schemes = []core.Scheme{
			core.SchemeCC, core.SchemeQ10, core.SchemeL10,
			core.SchemeS9, core.SchemeS9x, core.SchemeS100, core.SchemeSU,
		}
	}
	if len(o.HostCores) == 0 {
		// The paper sweeps host-core counts up to 8 (Figures 9-10), and the
		// 1-host-core point anchors every scaling table, so it is always
		// included. Running more simulation parallelism than the host has
		// physical CPUs hands scheduling to the OS's coarse timeslicer,
		// which drifts core clocks by milliseconds and destroys the
		// optimistic schemes' accuracy (see EXPERIMENTS.md), so the larger
		// points are clipped to the host.
		o.HostCores = []int{1}
		for _, hc := range []int{2, 4, 8} {
			if hc <= runtime.NumCPU() {
				o.HostCores = append(o.HostCores, hc)
			}
		}
	}
	if o.TargetCores == 0 {
		o.TargetCores = 8
	}
	if o.Repeat == 0 {
		o.Repeat = 1
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 10_000_000_000
	}
	if o.Introspect != nil {
		o.Metrics = true
	}
	if o.Driver == "" {
		o.Driver = "auto"
	}
}

// DriverFor resolves the driver name that will execute a run at the given
// host-core count under these options. hostCores == 0 is the serial
// reference engine; "auto" maps a 1-host-core budget to the fused driver
// and everything else to the parallel driver.
func (o *Options) DriverFor(hostCores int) string {
	if hostCores == 0 {
		return "serial"
	}
	switch o.Driver {
	case "", "auto":
		if hostCores == 1 {
			return "fused"
		}
		return "parallel"
	default:
		return o.Driver
	}
}

// DriverNames maps every swept host-core count (plus the serial reference
// at 0) to the driver that produces its column — the Report.Host metadata
// that keeps `slackbench -compare` from silently diffing fused numbers
// against parallel ones.
func (r *Runner) DriverNames() map[int]string {
	out := map[int]string{0: "serial"}
	for _, hc := range r.opts.HostCores {
		out[hc] = r.opts.DriverFor(hc)
	}
	return out
}

// Run is one simulation outcome.
type Run struct {
	Workload  string
	Scheme    core.Scheme
	HostCores int    // 0 = serial reference engine
	Driver    string // engine that produced the result (serial/parallel/sharded/fused)
	Result    *core.Result
}

// Runner executes simulations described by Options.
type Runner struct {
	opts  Options
	progs map[string]*asm.Program
	Log   io.Writer // optional progress log

	stop    atomic.Bool                  // Interrupt() called: start no more runs
	current atomic.Pointer[core.Machine] // the machine in flight, if any
}

// ErrInterrupted is returned by runs cut short by Interrupt.
var ErrInterrupted = errors.New("harness: interrupted")

// Interrupt stops the sweep from another goroutine (a signal handler):
// the in-flight run is interrupted and drains cleanly, and no further
// runs start — every pending experiment returns ErrInterrupted.
func (r *Runner) Interrupt() {
	r.stop.Store(true)
	if m := r.current.Load(); m != nil {
		m.Interrupt()
	}
}

// NewRunner pre-assembles the selected workloads.
func NewRunner(opts Options) (*Runner, error) {
	opts.fillDefaults()
	switch opts.Driver {
	case "auto", "serial", "parallel", "sharded", "fused":
	default:
		return nil, fmt.Errorf("harness: unknown driver %q (want serial, parallel, sharded, fused, or auto)", opts.Driver)
	}
	r := &Runner{opts: opts, progs: make(map[string]*asm.Program)}
	for _, name := range opts.Workloads {
		w, err := workloads.Get(name)
		if err != nil {
			return nil, err
		}
		prog, err := asm.Assemble(w.Source(opts.Scale), asm.Options{})
		if err != nil {
			return nil, fmt.Errorf("harness: assemble %s: %w", name, err)
		}
		r.progs[name] = prog
	}
	return r, nil
}

// Options returns the resolved options.
func (r *Runner) Options() Options { return r.opts }

func (r *Runner) logf(format string, args ...any) {
	if r.Log != nil {
		fmt.Fprintf(r.Log, format, args...)
	}
}

func (r *Runner) machine(name, driver string) (*core.Machine, *workloads.Workload, error) {
	w, err := workloads.Get(name)
	if err != nil {
		return nil, nil, err
	}
	cfg := core.Config{
		NumCores:   r.opts.TargetCores,
		NumThreads: r.opts.TargetCores,
		Model:      r.opts.Model,
		CPU:        cpu.DefaultConfig(),
		Cache:      cache.DefaultConfig(r.opts.TargetCores),
		MaxCycles:  r.opts.MaxCycles,
	}
	if driver == "sharded" {
		cfg.ManagerShards = 2
	}
	m, err := core.NewMachine(r.progs[name], cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := w.Init(m.Image(), r.opts.Scale); err != nil {
		return nil, nil, err
	}
	return m, w, nil
}

// RunOne executes workload name under scheme with the given host-core
// count (GOMAXPROCS). hostCores == 0 selects the serial reference engine.
// The best of Repeat wall times is kept. With Options.Metrics set, each
// run carries a metrics registry and the kept result's sync-overhead
// breakdown is appended to the progress log; with Options.TraceDir set,
// the kept run's Chrome trace is written there.
func (r *Runner) RunOne(name string, scheme core.Scheme, hostCores int) (*Run, error) {
	driver := r.opts.DriverFor(hostCores)
	var best *core.Result
	var bestTrace *trace.Collector
	for rep := 0; rep < r.opts.Repeat; rep++ {
		if r.stop.Load() {
			return nil, ErrInterrupted
		}
		m, w, err := r.machine(name, driver)
		if err != nil {
			return nil, err
		}
		if r.opts.Metrics {
			m.EnableMetrics(metrics.NewRegistry())
		}
		if r.opts.Introspect != nil {
			if err := m.EnableIntrospection(r.opts.Introspect); err != nil {
				return nil, fmt.Errorf("harness: %s/%v: %w", name, scheme, err)
			}
		}
		var tc *trace.Collector
		if r.opts.TraceDir != "" {
			tc = trace.New()
			m.EnableTrace(tc)
		}
		if r.opts.BundleDir != "" {
			m.SetBundleDir(r.opts.BundleDir)
		}
		var res *core.Result
		start := time.Now()
		r.current.Store(m)
		switch driver {
		case "serial":
			res, err = m.RunSerial()
		case "fused":
			// The fused driver is single-goroutine by construction, but
			// GOMAXPROCS still bounds the host budget it is measured under
			// (GC workers, the OS), same as the parallel drivers.
			prev := runtime.GOMAXPROCS(hostCores)
			res, err = m.RunFused(scheme)
			runtime.GOMAXPROCS(prev)
		default: // parallel; sharded is the parallel driver with ManagerShards > 1
			prev := runtime.GOMAXPROCS(hostCores)
			res, err = m.RunParallel(scheme)
			runtime.GOMAXPROCS(prev)
		}
		r.current.Store(nil)
		if r.stop.Load() {
			return nil, ErrInterrupted
		}
		if err != nil {
			// The trace holds the events leading up to the failure — flush
			// it before surfacing the error, or the forensic record dies
			// with the run.
			r.flushFailedTrace(tc, name, scheme, driver, hostCores)
			r.logBundle(m)
			return nil, fmt.Errorf("harness: %s/%v: %w", name, scheme, err)
		}
		res.Wall = time.Since(start)
		if res.Aborted {
			r.flushFailedTrace(tc, name, scheme, driver, hostCores)
			r.logBundle(m)
			return nil, fmt.Errorf("harness: %s/%v aborted at %d cycles", name, scheme, res.EndTime)
		}
		if r.opts.Verify {
			if err := w.Verify(m.Image(), res.Output, r.opts.Scale); err != nil {
				return nil, fmt.Errorf("harness: %s/%v: %w", name, scheme, err)
			}
		}
		if best == nil || res.Wall < best.Wall {
			best = res
			bestTrace = tc
		}
	}
	r.logf("  %-8s %-5v host=%d %-8s: %8d cycles  %8d instrs  wall %10v\n",
		name, scheme, hostCores, driver, best.ROICycles(), best.Committed, best.Wall.Round(time.Microsecond))
	if r.opts.Metrics && best.CoreBusy != nil {
		bd := breakdownOf(best)
		r.logf("           sync: simulate %5.1f%%  wait %5.1f%%  manager %8v  events %d\n",
			bd.simPct(), bd.waitPct(), best.ManagerBusy.Round(time.Microsecond), best.EventsProcessed)
	}
	if bestTrace != nil {
		if err := r.writeTrace(bestTrace.WriteChrome, bestTrace.TotalDropped(),
			traceBase(name, scheme, driver, hostCores, "")); err != nil {
			return nil, err
		}
	}
	return &Run{Workload: name, Scheme: scheme, HostCores: hostCores, Driver: driver, Result: best}, nil
}

// logBundle reports a crash-bundle directory the failed machine wrote.
func (r *Runner) logBundle(m *core.Machine) {
	if p := m.BundlePath(); p != "" {
		r.logf("           crash bundle: %s\n", p)
	}
}

// traceBase builds a run's trace file base name. The driver is part of
// the name: an "auto" sweep runs different drivers at different
// host-core columns, and two columns that happen to share a host-core
// count (or a re-run under another driver) must not overwrite each
// other's traces.
func traceBase(name string, scheme core.Scheme, driver string, hostCores int, suffix string) string {
	// "S9*" must survive as a file name.
	sname := strings.ReplaceAll(scheme.String(), "*", "x")
	return fmt.Sprintf("%s_%s_%s_h%d%s", name, sname, driver, hostCores, suffix)
}

// flushFailedTrace best-effort-writes a failed run's trace with a _failed
// suffix. The run is already dead; a trace-write error only gets logged.
func (r *Runner) flushFailedTrace(tc *trace.Collector, name string, scheme core.Scheme, driver string, hostCores int) {
	if tc == nil {
		return
	}
	if err := r.writeTrace(tc.WriteChrome, tc.TotalDropped(),
		traceBase(name, scheme, driver, hostCores, "_failed")); err != nil {
		r.logf("           trace (failed run): %v\n", err)
	}
}

// writeTrace dumps one run's trace into Options.TraceDir via write
// (Collector.WriteChrome for local drivers, Machine.WriteTraceChrome for
// a remote run's merged fleet timeline).
func (r *Runner) writeTrace(write func(io.Writer) error, dropped int64, base string) error {
	if err := os.MkdirAll(r.opts.TraceDir, 0o755); err != nil {
		return fmt.Errorf("harness: %w", err)
	}
	path := filepath.Join(r.opts.TraceDir, base+".json")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("harness: %w", err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		return fmt.Errorf("harness: writing %s: %w", path, err)
	}
	r.logf("           trace: %s\n", path)
	if dropped > 0 {
		r.logf("           trace: %d event(s) dropped (ring wrapped; raise trace ring size)\n", dropped)
	}
	return nil
}

// Baseline runs the paper's comparison baseline for the given workload:
// cycle-by-cycle simulation with every simulation thread on one host core
// (§4.2.1, Table 2).
func (r *Runner) Baseline(name string) (*Run, error) {
	return r.RunOne(name, core.SchemeCC, 1)
}

// SerialReference runs the deterministic serial engine (the accuracy
// reference for Table 3).
func (r *Runner) SerialReference(name string) (*Run, error) {
	return r.RunOne(name, core.SchemeCC, 0)
}
