// Package stats provides the small numeric and formatting helpers the
// experiment harness uses to reproduce the paper's tables and figures:
// means, relative errors, and fixed-width ASCII tables/series.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// HarmonicMean returns the harmonic mean of xs (the aggregation the paper
// uses for Figure 8e). Non-positive values are rejected with NaN.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var inv float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		inv += 1 / x
	}
	return float64(len(xs)) / inv
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (all must be positive).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Median returns the median of xs.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// RelErr returns |x-ref|/ref (the paper's Table 3 metric: relative error in
// execution time versus the cycle-by-cycle reference).
func RelErr(x, ref float64) float64 {
	if ref == 0 {
		return math.NaN()
	}
	return math.Abs(x-ref) / math.Abs(ref)
}

// Table renders rows as a fixed-width ASCII table. The first row is the
// header.
type Table struct {
	rows [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row, formatting each value with %v (floats as %.2f).
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	if len(t.rows) == 0 {
		return ""
	}
	cols := 0
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for ri, r := range t.rows {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", width[i], c)
			} else {
				fmt.Fprintf(&b, "  %*s", width[i], c)
			}
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i := 0; i < cols; i++ {
				if i == 0 {
					b.WriteString(strings.Repeat("-", width[i]))
				} else {
					b.WriteString("  " + strings.Repeat("-", width[i]))
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Series renders an ASCII bar chart of labelled values, used for the
// Figure 8 style speedup plots in terminal output.
func Series(title string, labels []string, values []float64, maxWidth int) string {
	if maxWidth <= 0 {
		maxWidth = 50
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	maxV := 0.0
	labW := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > labW {
			labW = len(labels[i])
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	for i, v := range values {
		n := int(v / maxV * float64(maxWidth))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "  %-*s %6.2f %s\n", labW, labels[i], v, strings.Repeat("#", n))
	}
	return b.String()
}
