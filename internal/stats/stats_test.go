package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestMeans(t *testing.T) {
	xs := []float64{1, 2, 4}
	if got := Mean(xs); !almost(got, 7.0/3) {
		t.Errorf("mean = %v", got)
	}
	if got := HarmonicMean(xs); !almost(got, 3/(1+0.5+0.25)) {
		t.Errorf("harmonic mean = %v", got)
	}
	if got := GeoMean(xs); !almost(got, 2) {
		t.Errorf("geo mean = %v", got)
	}
	if got := Median(xs); got != 2 {
		t.Errorf("median = %v", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
}

func TestMeansEdgeCases(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(HarmonicMean(nil)) ||
		!math.IsNaN(GeoMean(nil)) || !math.IsNaN(Median(nil)) {
		t.Error("empty inputs must give NaN")
	}
	if !math.IsNaN(HarmonicMean([]float64{1, 0})) {
		t.Error("harmonic mean of zero must be NaN")
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("geo mean of negatives must be NaN")
	}
}

// TestHarmonicMeanBounds: the harmonic mean lies between min and max and
// never exceeds the arithmetic mean (AM-HM inequality).
func TestHarmonicMeanBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		var xs []float64
		for _, r := range raw {
			xs = append(xs, float64(r%1000)+1)
		}
		if len(xs) == 0 {
			return true
		}
		hm, am := HarmonicMean(xs), Mean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		return hm >= lo-1e-9 && hm <= hi+1e-9 && hm <= am+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(110, 100); !almost(got, 0.1) {
		t.Errorf("rel err = %v", got)
	}
	if got := RelErr(90, 100); !almost(got, 0.1) {
		t.Errorf("rel err symmetric = %v", got)
	}
	if !math.IsNaN(RelErr(1, 0)) {
		t.Error("rel err vs zero must be NaN")
	}
}

func TestTable(t *testing.T) {
	var tb Table
	tb.AddRow("name", "value")
	tb.AddRowf("x", 1.5)
	tb.AddRowf("longer", 10)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, rule, 2 rows
		t.Fatalf("table lines: %q", out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[1], "---") {
		t.Errorf("header: %q / %q", lines[0], lines[1])
	}
	if !strings.Contains(out, "1.50") {
		t.Errorf("float formatting: %q", out)
	}
	var empty Table
	if empty.String() != "" {
		t.Error("empty table non-empty")
	}
}

func TestSeries(t *testing.T) {
	out := Series("title", []string{"a", "bb"}, []float64{1, 2}, 10)
	if !strings.Contains(out, "title") || !strings.Contains(out, "##########") {
		t.Errorf("series: %q", out)
	}
	if !strings.Contains(out, "#####\n") {
		t.Errorf("series scaling: %q", out)
	}
}
