package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export (the JSON array format of
// https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// one process per simulation run, one thread track per writer, counter
// tracks for the sampled quantities. The output loads in chrome://tracing
// and in Perfetto via its legacy JSON importer.

// chromeEvent is one trace-event object. Timestamps and durations are in
// microseconds, as the format requires.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   *int64         `json:"id,omitempty"` // flow-event correlation id
	BP   string         `json:"bp,omitempty"` // flow binding point
	S    string         `json:"s,omitempty"`  // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

func usec(ns int64) float64 { return float64(ns) / 1e3 }

// WriteChrome exports every writer's surviving records as a Chrome
// trace-event JSON array. It must not run concurrently with recording.
func (c *Collector) WriteChrome(w io.Writer) error {
	if c == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	var evs []chromeEvent
	for _, wr := range c.Writers() {
		evs = append(evs, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			PID:  0,
			TID:  int(wr.tid),
			Args: map[string]any{"name": wr.name},
		})
		// Order the track list by tid in trace viewers.
		evs = append(evs, chromeEvent{
			Name: "thread_sort_index",
			Ph:   "M",
			PID:  0,
			TID:  int(wr.tid),
			Args: map[string]any{"sort_index": int(wr.tid)},
		})
		for _, r := range wr.Records() {
			evs = append(evs, chromeeventFor(wr.name, wr.tid, 0, r))
		}
	}
	// Stable order: metadata first, then by timestamp. Viewers do not
	// require sorted input but diffs and golden tests do.
	sortChromeEvents(evs)
	enc, err := json.MarshalIndent(evs, "", " ")
	if err != nil {
		return err
	}
	if _, err := w.Write(enc); err != nil {
		return err
	}
	_, err = io.WriteString(w, "\n")
	return err
}

func chromeeventFor(name string, tid int32, pid int, r Rec) chromeEvent {
	switch {
	case r.Kind.counter():
		// Counter tracks are keyed by (pid, name), so fold the writer
		// name in to get one track per core.
		return chromeEvent{
			Name: fmt.Sprintf("%s %s", r.Kind, name),
			Ph:   "C",
			TS:   usec(r.TS),
			PID:  pid,
			TID:  int(tid),
			Args: map[string]any{"value": r.Arg},
		}
	case r.Kind.span():
		d := usec(r.Dur)
		return chromeEvent{
			Name: r.Kind.String(),
			Cat:  "engine",
			Ph:   "X",
			TS:   usec(r.TS),
			Dur:  &d,
			PID:  pid,
			TID:  int(tid),
			Args: map[string]any{"arg": r.Arg},
		}
	default:
		return chromeEvent{
			Name: r.Kind.String(),
			Cat:  "engine",
			Ph:   "i",
			TS:   usec(r.TS),
			PID:  pid,
			TID:  int(tid),
			Args: map[string]any{"arg": r.Arg},
		}
	}
}
