package trace

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// ASCII slack timeline: one row per writer that sampled slack (or lead),
// one column per host-time bucket, glyph density proportional to the
// bucket's mean value. A terminal-friendly rendering of the Shchur/Novotny
// time-horizon profile — where the dark bands are, synchronisation is
// cheap; where a row goes blank while others are dark, that core is the
// horizon holding everyone back.

// timelineGlyphs maps relative magnitude (low → high) to density.
const timelineGlyphs = " .:-=+*#%@"

// SlackTimeline renders the KSlack samples (falling back to KLead when a
// writer recorded no KSlack, e.g. under the Unbounded scheme) as a
// width-column ASCII heat strip per writer. Writers with no samples are
// omitted. It must not run concurrently with recording.
func (c *Collector) SlackTimeline(w io.Writer, width int) error {
	return c.timeline(w, width, KSlack, KLead)
}

func (c *Collector) timeline(w io.Writer, width int, kind, fallback Kind) error {
	if width < 8 {
		width = 8
	}
	type row struct {
		name    string
		recs    []Rec
		dropped int64
	}
	var rows []row
	var tMin, tMax, vMax int64
	tMin = -1
	for _, wr := range c.Writers() {
		recs := wr.Records()
		picked := filterKind(recs, kind)
		if len(picked) == 0 {
			picked = filterKind(recs, fallback)
		}
		if len(picked) == 0 {
			continue
		}
		for _, r := range picked {
			if tMin < 0 || r.TS < tMin {
				tMin = r.TS
			}
			if r.TS > tMax {
				tMax = r.TS
			}
			if r.Arg > vMax {
				vMax = r.Arg
			}
		}
		rows = append(rows, row{name: wr.name, recs: picked, dropped: wr.Dropped()})
	}
	if len(rows) == 0 {
		_, err := fmt.Fprintln(w, "slack timeline: no samples recorded")
		return err
	}
	span := tMax - tMin
	if span <= 0 {
		span = 1
	}
	if vMax <= 0 {
		vMax = 1
	}
	fmt.Fprintf(w, "slack timeline: %v span, peak %d cycles, log scale %q\n",
		time.Duration(span).Round(time.Microsecond), vMax, timelineGlyphs)
	nameW := 0
	for _, r := range rows {
		if len(r.name) > nameW {
			nameW = len(r.name)
		}
	}
	for _, r := range rows {
		sum := make([]int64, width)
		cnt := make([]int64, width)
		for _, rec := range r.recs {
			b := int((rec.TS - tMin) * int64(width-1) / span)
			sum[b] += rec.Arg
			cnt[b]++
		}
		var sb strings.Builder
		for b := 0; b < width; b++ {
			if cnt[b] == 0 {
				sb.WriteByte(' ')
				continue
			}
			mean := sum[b] / cnt[b]
			g := glyphIndex(mean, vMax)
			if g < 0 {
				g = 0
			}
			if g >= len(timelineGlyphs) {
				g = len(timelineGlyphs) - 1
			}
			sb.WriteByte(timelineGlyphs[g])
		}
		note := ""
		if r.dropped > 0 {
			note = fmt.Sprintf("  (ring wrapped, %d oldest records lost)", r.dropped)
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s|%s\n", nameW, r.name, sb.String(), note); err != nil {
			return err
		}
	}
	return nil
}

// glyphIndex maps a bucket mean to a glyph on a log2 scale. Slack spans
// orders of magnitude within one run (a window-bounded ~10 cycles most of
// the time, thousands across an idle fast-forward), so a linear scale
// would render the typical band as all-blank whenever one spike sets the
// peak; log keeps both visible.
func glyphIndex(mean, vMax int64) int {
	if mean <= 0 {
		return 0
	}
	den := math.Log2(float64(vMax) + 1)
	if den <= 0 {
		return len(timelineGlyphs) - 1
	}
	return int(math.Log2(float64(mean)+1) * float64(len(timelineGlyphs)-1) / den)
}

func filterKind(recs []Rec, k Kind) []Rec {
	var out []Rec
	for _, r := range recs {
		if r.Kind == k {
			out = append(out, r)
		}
	}
	return out
}
