package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// fakeClock returns a deterministic clock advancing step ns per call.
func fakeClock(step int64) func() int64 {
	var t int64
	return func() int64 {
		t += step
		return t
	}
}

func TestWriterBasics(t *testing.T) {
	c := NewWithCapacity(8)
	c.SetClock(fakeClock(1000))
	w := c.Writer("core 0", 0)
	w.Count(KSlack, 7)
	start := w.Begin()
	w.Span(KWait, start, 3)
	w.Instant(KBarrier, 42)
	recs := w.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[0].Kind != KSlack || recs[0].Arg != 7 {
		t.Errorf("counter record = %+v", recs[0])
	}
	if recs[1].Kind != KWait || recs[1].Dur != 1000 {
		t.Errorf("span record = %+v (want dur 1000)", recs[1])
	}
	if recs[2].Kind != KBarrier || recs[2].Arg != 42 {
		t.Errorf("instant record = %+v", recs[2])
	}
	if d := w.Dropped(); d != 0 {
		t.Errorf("Dropped = %d, want 0", d)
	}
}

func TestRingWrapAround(t *testing.T) {
	c := NewWithCapacity(8)
	c.SetClock(fakeClock(1))
	w := c.Writer("core 0", 0)
	for i := 0; i < 100; i++ {
		w.Count(KSlack, int64(i))
	}
	if got := w.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
	if got := w.Dropped(); got != 92 {
		t.Fatalf("Dropped = %d, want 92", got)
	}
	recs := w.Records()
	if len(recs) != 8 {
		t.Fatalf("got %d surviving records, want 8", len(recs))
	}
	// The survivors are the newest 8 samples, oldest-first.
	for i, r := range recs {
		if want := int64(92 + i); r.Arg != want {
			t.Errorf("record %d: Arg = %d, want %d", i, r.Arg, want)
		}
	}
}

func TestCapacityRounding(t *testing.T) {
	c := NewWithCapacity(5)
	w := c.Writer("x", 0)
	if len(w.recs) != 8 {
		t.Errorf("capacity 5 rounded to %d, want 8", len(w.recs))
	}
	c = NewWithCapacity(0)
	w = c.Writer("x", 0)
	if len(w.recs) != 2 {
		t.Errorf("capacity 0 rounded to %d, want 2", len(w.recs))
	}
}

// TestConcurrentWriters exercises many goroutines writing to their own
// rings (and registering them) in parallel; run under -race this verifies
// the single-producer discipline needs no locking across writers.
func TestConcurrentWriters(t *testing.T) {
	c := NewWithCapacity(1 << 10)
	const writers = 16
	const perWriter = 5000
	var wg sync.WaitGroup
	ws := make([]*Writer, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := c.Writer("w", int32(i))
			ws[i] = w
			for j := 0; j < perWriter; j++ {
				w.Count(KSlack, int64(j))
				if j%100 == 0 {
					s := w.Begin()
					w.Span(KWait, s, int64(j))
				}
			}
		}(i)
	}
	wg.Wait()
	for i, w := range ws {
		total := w.Dropped() + int64(w.Len())
		if want := int64(perWriter + perWriter/100); total != want {
			t.Errorf("writer %d: dropped+len = %d, want %d", i, total, want)
		}
	}
	if got := len(c.Writers()); got != writers {
		t.Errorf("registered %d writers, want %d", got, writers)
	}
}

func TestNilSafety(t *testing.T) {
	var w *Writer
	w.Count(KSlack, 1)
	w.Span(KWait, w.Begin(), 0)
	w.Instant(KBarrier, 0)
	if w.Len() != 0 || w.Dropped() != 0 || w.Records() != nil {
		t.Error("nil writer should observe as empty")
	}
	var c *Collector
	if c.Writer("x", 0) != nil {
		t.Error("nil collector should hand out nil writers")
	}
	if c.Now() != 0 {
		t.Error("nil collector Now should be 0")
	}
	var buf bytes.Buffer
	if err := c.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("nil collector export = %q, want []", buf.String())
	}
}

const chromeGolden = `[
 {
  "name": "thread_name",
  "ph": "M",
  "ts": 0,
  "pid": 0,
  "tid": 0,
  "args": {
   "name": "core 0"
  }
 },
 {
  "name": "thread_sort_index",
  "ph": "M",
  "ts": 0,
  "pid": 0,
  "tid": 0,
  "args": {
   "sort_index": 0
  }
 },
 {
  "name": "thread_name",
  "ph": "M",
  "ts": 0,
  "pid": 0,
  "tid": 8,
  "args": {
   "name": "manager"
  }
 },
 {
  "name": "thread_sort_index",
  "ph": "M",
  "ts": 0,
  "pid": 0,
  "tid": 8,
  "args": {
   "sort_index": 8
  }
 },
 {
  "name": "slack core 0",
  "ph": "C",
  "ts": 1,
  "pid": 0,
  "tid": 0,
  "args": {
   "value": 9
  }
 },
 {
  "name": "window_wait",
  "cat": "engine",
  "ph": "X",
  "ts": 2,
  "dur": 1,
  "pid": 0,
  "tid": 0,
  "args": {
   "arg": 5
  }
 },
 {
  "name": "global manager",
  "ph": "C",
  "ts": 4,
  "pid": 0,
  "tid": 8,
  "args": {
   "value": 100
  }
 },
 {
  "name": "barrier",
  "cat": "engine",
  "ph": "i",
  "ts": 5,
  "pid": 0,
  "tid": 8,
  "args": {
   "arg": 100
  }
 }
]
`

func TestWriteChromeGolden(t *testing.T) {
	c := NewWithCapacity(16)
	c.SetClock(fakeClock(1000)) // 1 µs per clock read
	core := c.Writer("core 0", 0)
	mgr := c.Writer("manager", 8)
	core.Count(KSlack, 9)      // ts 1µs
	start := core.Begin()      // ts 2µs
	core.Span(KWait, start, 5) // ends 3µs → dur 1µs
	mgr.Count(KGlobal, 100)    // ts 4µs
	mgr.Instant(KBarrier, 100) // ts 5µs

	var buf bytes.Buffer
	if err := c.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != chromeGolden {
		t.Errorf("chrome export mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), chromeGolden)
	}
	// And it must be valid JSON of the expected shape.
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(evs) != 8 {
		t.Errorf("got %d events, want 8", len(evs))
	}
}

func TestSlackTimeline(t *testing.T) {
	c := NewWithCapacity(64)
	c.SetClock(fakeClock(1000))
	c0 := c.Writer("core 0", 0)
	c1 := c.Writer("core 1", 1)
	mgr := c.Writer("manager", 8)
	for i := 0; i < 20; i++ {
		c0.Count(KSlack, 10) // constantly at max slack
		c1.Count(KSlack, int64(i)%3)
	}
	mgr.Count(KGlobal, 5) // no slack samples: omitted from the timeline

	var buf bytes.Buffer
	if err := c.SlackTimeline(&buf, 20); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 rows:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "peak 10 cycles") {
		t.Errorf("header missing peak: %q", lines[0])
	}
	if !strings.Contains(lines[1], "core 0") || !strings.Contains(lines[1], "@") {
		t.Errorf("core 0 row should be saturated: %q", lines[1])
	}
	if strings.Contains(lines[2], "@") {
		t.Errorf("core 1 row should be far from saturated: %q", lines[2])
	}
	if strings.Contains(out, "manager") {
		t.Errorf("manager row (no slack samples) should be omitted:\n%s", out)
	}
}

func TestSlackTimelineLeadFallback(t *testing.T) {
	c := NewWithCapacity(64)
	c.SetClock(fakeClock(1000))
	w := c.Writer("core 0", 0)
	for i := 0; i < 10; i++ {
		w.Count(KLead, 4) // Unbounded scheme: no KSlack, only KLead
	}
	var buf bytes.Buffer
	if err := c.SlackTimeline(&buf, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "core 0") {
		t.Errorf("lead fallback row missing:\n%s", buf.String())
	}
}

func TestSlackTimelineEmpty(t *testing.T) {
	c := New()
	var buf bytes.Buffer
	if err := c.SlackTimeline(&buf, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no samples") {
		t.Errorf("empty timeline = %q", buf.String())
	}
}

func BenchmarkDisabledWriterCount(b *testing.B) {
	var w *Writer
	for i := 0; i < b.N; i++ {
		w.Count(KSlack, int64(i))
	}
}

func BenchmarkEnabledWriterCount(b *testing.B) {
	c := New()
	w := c.Writer("bench", 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Count(KSlack, int64(i))
	}
}
