package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Cross-process trace correlation: each process (the parent driver and
// every remote worker) runs its own Collector whose clock starts at
// collector creation. Workers serialize their rings into ChunkWriter
// snapshots and ship them over the wire; the parent estimates each
// worker's clock offset from heartbeat-carried clock samples, rebases the
// worker records onto its own clock, and exports everything as one
// Chrome/Perfetto timeline with one pid per process, flow events linking
// each wire batch across the process boundary, and supervision incidents
// as instant events.

// ChunkWriter is the serializable snapshot of one Writer's ring: the
// surviving records oldest-first plus the wrap-around drop count. It is
// the unit the wire protocol's trace-chunk frames carry.
type ChunkWriter struct {
	Name    string
	TID     int32
	Dropped int64
	Recs    []Rec
}

// Chunk snapshots every registered writer. Like Records, it must not run
// concurrently with recording (workers call it between processing passes,
// at checkpoints, and at session end).
func (c *Collector) Chunk() []ChunkWriter {
	if c == nil {
		return nil
	}
	ws := c.Writers()
	out := make([]ChunkWriter, 0, len(ws))
	for _, w := range ws {
		out = append(out, ChunkWriter{
			Name:    w.Name(),
			TID:     w.TID(),
			Dropped: w.Dropped(),
			Recs:    w.Records(),
		})
	}
	return out
}

// Proc is one process's contribution to a merged timeline.
type Proc struct {
	// PID keys the process's tracks (0 = the parent by convention).
	PID int
	// Name labels the process track group ("parent", "worker 1", ...).
	Name string
	// OffsetNS rebases the process's timestamps onto the merged clock:
	// merged TS = record TS + OffsetNS. The parent's offset is 0; a
	// worker's is the parent's estimate of (parent clock − worker clock)
	// taken when a clock sample arrived.
	OffsetNS int64
	Writers  []ChunkWriter
}

// Incident is a supervision lifecycle marker (suspect, reconnecting,
// recovered, abandoned, adopted) rendered as an instant event on the
// owning process's incident track. TS is on the merged (parent) clock.
type Incident struct {
	TS     int64
	PID    int
	Name   string
	Detail string
}

// wireFlowMask keeps the gate time in the low bits of a flow id; the
// worker index lives above it.
const wireFlowMask = 1<<48 - 1

// WireFlowID builds the correlation id both sides of a wire transfer
// record (parent KWireSend, worker KWireRecv): the destination worker in
// the high bits, the gate's simulated time in the low 48.
func WireFlowID(worker int, gate int64) int64 {
	return int64(worker+1)<<48 | (gate & wireFlowMask)
}

// incidentTID is the reserved track id for incident instants (far above
// any engine writer's tid).
const incidentTID = 1 << 20

// WriteChromeMerged exports the given processes as one Chrome trace-event
// JSON timeline: per-process track groups (process_name metadata), every
// writer's records rebased by the process offset, flow events pairing
// KWireSend/KWireRecv records with equal flow ids, and incidents as
// instant events. It must not run concurrently with recording.
func WriteChromeMerged(w io.Writer, procs []Proc, incidents []Incident) error {
	var evs []chromeEvent
	// sends[flowID] = the parent-side send event's (pid, tid, ts);
	// recvs[flowID] = the worker-side receive. Pairs become flows.
	type endpoint struct {
		pid int
		tid int32
		ts  int64
	}
	sends := make(map[int64]endpoint)
	recvs := make(map[int64]endpoint)
	for _, p := range procs {
		evs = append(evs,
			chromeEvent{
				Name: "process_name",
				Ph:   "M",
				PID:  p.PID,
				Args: map[string]any{"name": p.Name},
			},
			chromeEvent{
				Name: "process_sort_index",
				Ph:   "M",
				PID:  p.PID,
				Args: map[string]any{"sort_index": p.PID},
			})
		for _, cw := range p.Writers {
			evs = append(evs,
				chromeEvent{
					Name: "thread_name",
					Ph:   "M",
					PID:  p.PID,
					TID:  int(cw.TID),
					Args: map[string]any{"name": cw.Name},
				},
				chromeEvent{
					Name: "thread_sort_index",
					Ph:   "M",
					PID:  p.PID,
					TID:  int(cw.TID),
					Args: map[string]any{"sort_index": int(cw.TID)},
				})
			for _, r := range cw.Recs {
				ts := r.TS + p.OffsetNS
				switch r.Kind {
				case KWireSend:
					sends[r.Arg] = endpoint{pid: p.PID, tid: cw.TID, ts: ts}
				case KWireRecv:
					recvs[r.Arg] = endpoint{pid: p.PID, tid: cw.TID, ts: ts}
				}
				rb := r
				rb.TS = ts
				evs = append(evs, chromeeventFor(cw.Name, cw.TID, p.PID, rb))
			}
		}
	}
	for id, s := range sends {
		r, ok := recvs[id]
		if !ok {
			continue
		}
		fid := id
		evs = append(evs,
			chromeEvent{
				Name: "wire", Cat: "wire", Ph: "s", ID: &fid,
				TS: usec(s.ts), PID: s.pid, TID: int(s.tid),
			},
			chromeEvent{
				Name: "wire", Cat: "wire", Ph: "f", BP: "e", ID: &fid,
				TS: usec(r.ts), PID: r.pid, TID: int(r.tid),
			})
	}
	for _, in := range incidents {
		evs = append(evs, chromeEvent{
			Name: in.Name,
			Cat:  "supervision",
			Ph:   "i",
			S:    "g",
			TS:   usec(in.TS),
			PID:  in.PID,
			TID:  incidentTID,
			Args: map[string]any{"detail": in.Detail},
		})
	}
	sortChromeEvents(evs)
	enc, err := json.MarshalIndent(evs, "", " ")
	if err != nil {
		return err
	}
	if _, err := w.Write(enc); err != nil {
		return err
	}
	_, err = io.WriteString(w, "\n")
	return err
}

// ParentProc packages the collector's own rings as the merged timeline's
// pid-0 process.
func (c *Collector) ParentProc(name string) Proc {
	return Proc{PID: 0, Name: name, Writers: c.Chunk()}
}

// MergedDropped sums the wrap-around drop counts across all processes,
// the fleet-wide counterpart of Collector.TotalDropped.
func MergedDropped(procs []Proc) int64 {
	var total int64
	for _, p := range procs {
		for _, w := range p.Writers {
			total += w.Dropped
		}
	}
	return total
}

// String renders an incident one-line ("t=12.3ms worker 1 recovered").
func (in Incident) String() string {
	return fmt.Sprintf("t=%.1fms %s (%s)", float64(in.TS)/1e6, in.Name, in.Detail)
}

// sortChromeEvents applies the stable metadata-first-then-time order the
// exports share.
func sortChromeEvents(evs []chromeEvent) {
	sort.SliceStable(evs, func(i, j int) bool {
		mi, mj := evs[i].Ph == "M", evs[j].Ph == "M"
		if mi != mj {
			return mi
		}
		if evs[i].PID != evs[j].PID && (mi || mj) {
			return evs[i].PID < evs[j].PID
		}
		if evs[i].TS != evs[j].TS {
			return evs[i].TS < evs[j].TS
		}
		if evs[i].PID != evs[j].PID {
			return evs[i].PID < evs[j].PID
		}
		return evs[i].TID < evs[j].TID
	})
}
