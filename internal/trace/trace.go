// Package trace is the engine's low-overhead execution tracer. Each
// simulation goroutine (core thread, manager, shard worker) owns one
// fixed-size ring buffer of fixed-size records and appends to it without
// taking any lock — the single-producer discipline mirrors the engine's
// OutQ/InQ rings, so tracing perturbs the parallel timing it is trying to
// observe as little as possible. When a ring fills it wraps, keeping the
// most recent records and counting the overwritten ones.
//
// The collected records can be exported as Chrome trace-event JSON
// (chrome://tracing, Perfetto's legacy loader) or rendered as an ASCII
// slack timeline. Export is meant to happen after the traced run has
// finished; a Writer must not be appended to concurrently with export.
package trace

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Kind tags a trace record. Counter kinds become Chrome counter tracks,
// span kinds become duration events, instant kinds become instant events.
type Kind uint8

const (
	// KNone is the zero Kind; never recorded.
	KNone Kind = iota
	// KSlack samples a core's remaining window headroom
	// MaxLocal(i) − Local(i), in simulated cycles (counter).
	KSlack
	// KLead samples how far a core's clock runs ahead of the last
	// observed global time, Local(i) − Global, in simulated cycles
	// (counter). Meaningful under every scheme, including Unbounded,
	// where KSlack would be infinite.
	KLead
	// KGlobal samples the global simulated time (counter, manager).
	KGlobal
	// KWindow samples the adaptive scheme's current window (counter).
	KWindow
	// KQDepth samples the manager's global event-queue depth (counter).
	KQDepth
	// KWait is the span a core spends blocked at its window edge waiting
	// for the manager to slide MaxLocal (arg = headroom shortfall).
	KWait
	// KFreeze is the span a stalled core spends with a frozen clock
	// waiting for a reply event under an optimistic scheme.
	KFreeze
	// KProcess is the span of one manager (or shard worker) processing
	// pass (arg = events processed).
	KProcess
	// KBarrier marks a quantum-barrier visibility point (instant,
	// arg = global time).
	KBarrier
	// KPhase marks a scheme phase transition, e.g. the adaptive
	// controller resizing its window (instant, arg = new window).
	KPhase
	// KWireSend marks a frame batch leaving for a remote worker (instant,
	// arg = WireFlowID). The merged export pairs it with the matching
	// KWireRecv on the worker's track as a Chrome flow event.
	KWireSend
	// KWireRecv marks a frame batch arriving at a remote worker (instant,
	// arg = WireFlowID, matching the parent-side KWireSend).
	KWireRecv
	// KIncident marks a supervision lifecycle transition (instant,
	// arg = worker id). Merged exports render these prominently.
	KIncident
	kindCount
)

var kindNames = [kindCount]string{
	KNone:     "none",
	KSlack:    "slack",
	KLead:     "lead",
	KGlobal:   "global",
	KWindow:   "window",
	KQDepth:   "gq_depth",
	KWait:     "window_wait",
	KFreeze:   "reply_freeze",
	KProcess:  "process",
	KBarrier:  "barrier",
	KPhase:    "phase",
	KWireSend: "wire_send",
	KWireRecv: "wire_recv",
	KIncident: "incident",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// counter reports whether the kind renders as a Chrome counter track.
func (k Kind) counter() bool {
	switch k {
	case KSlack, KLead, KGlobal, KWindow, KQDepth:
		return true
	}
	return false
}

// span reports whether the kind renders as a Chrome duration event.
func (k Kind) span() bool {
	switch k {
	case KWait, KFreeze, KProcess:
		return true
	}
	return false
}

// Rec is one fixed-size trace record. TS and Dur are host nanoseconds on
// the collector's clock (Dur is zero for counters and instants); Arg is
// the kind-specific payload — a counter value, a span detail, or an
// instant's argument.
type Rec struct {
	TS   int64
	Dur  int64
	Arg  int64
	Kind Kind
}

// DefaultCapacity is the per-writer ring size (records). At the engine's
// default sampling rates this holds the tail few hundred milliseconds of a
// run; older records are overwritten and counted, never reallocated.
const DefaultCapacity = 1 << 15

// Collector owns the trace clock and the set of per-goroutine writers.
type Collector struct {
	start time.Time
	// clock overrides the host clock (tests); returns ns since start.
	clock func() int64
	cap   int

	mu      sync.Mutex
	writers []*Writer
}

// New returns a collector with DefaultCapacity rings.
func New() *Collector { return NewWithCapacity(DefaultCapacity) }

// NewWithCapacity returns a collector whose writers hold the given number
// of records each (rounded up to a power of two, minimum 2).
func NewWithCapacity(capacity int) *Collector {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &Collector{start: time.Now(), cap: n}
}

// SetClock replaces the host clock with fn (ns since an arbitrary epoch).
// Tests use it to make exports deterministic; call before any recording.
func (c *Collector) SetClock(fn func() int64) { c.clock = fn }

// Now returns the current trace timestamp (ns since collector creation).
func (c *Collector) Now() int64 {
	if c == nil {
		return 0
	}
	if c.clock != nil {
		return c.clock()
	}
	return time.Since(c.start).Nanoseconds()
}

// Writer registers a new single-producer ring. name labels the goroutine
// in exports ("core 3", "manager", "shard 1"); tid orders its track.
// Writer is safe to call concurrently with other Writer calls, but each
// returned *Writer must only ever be appended to by one goroutine.
func (c *Collector) Writer(name string, tid int32) *Writer {
	if c == nil {
		return nil
	}
	w := &Writer{
		c:    c,
		name: name,
		tid:  tid,
		recs: make([]Rec, c.cap),
		mask: int64(c.cap - 1),
	}
	c.mu.Lock()
	c.writers = append(c.writers, w)
	c.mu.Unlock()
	return w
}

// Writers returns the registered writers in registration order.
func (c *Collector) Writers() []*Writer {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Writer(nil), c.writers...)
}

// TotalDropped sums Dropped over every registered writer — the quick
// "did any ring wrap?" check CLIs use to warn that an exported trace is
// incomplete.
func (c *Collector) TotalDropped() int64 {
	var total int64
	for _, w := range c.Writers() {
		total += w.Dropped()
	}
	return total
}

// Writer is one goroutine's trace ring. All recording methods are no-ops
// on a nil receiver, so call sites can keep a possibly-nil writer and pay
// only a nil check when tracing is disabled.
type Writer struct {
	c    *Collector
	name string
	tid  int32
	recs []Rec
	mask int64
	// pos is the total number of records ever emitted; the ring slot of
	// record i is i&mask, so the last len(recs) records survive a wrap.
	pos atomic.Int64
}

// Name returns the writer's display name.
func (w *Writer) Name() string {
	if w == nil {
		return ""
	}
	return w.name
}

// TID returns the writer's track id.
func (w *Writer) TID() int32 {
	if w == nil {
		return -1
	}
	return w.tid
}

func (w *Writer) emit(r Rec) {
	if w == nil {
		return
	}
	p := w.pos.Load()
	w.recs[p&w.mask] = r
	w.pos.Store(p + 1) // release: the record precedes the new position
}

// Count records a counter sample at the current time.
func (w *Writer) Count(k Kind, v int64) {
	if w == nil {
		return
	}
	w.emit(Rec{TS: w.c.Now(), Arg: v, Kind: k})
}

// Begin returns a span start timestamp for a later Span call. Zero-cost
// beyond reading the clock; safe on a nil writer (returns 0).
func (w *Writer) Begin() int64 {
	if w == nil {
		return 0
	}
	return w.c.Now()
}

// Span records a duration event that began at startNS (from Begin) and
// ends now. arg carries kind-specific detail.
func (w *Writer) Span(k Kind, startNS, arg int64) {
	if w == nil {
		return
	}
	now := w.c.Now()
	w.emit(Rec{TS: startNS, Dur: now - startNS, Arg: arg, Kind: k})
}

// Instant records a zero-duration marker at the current time.
func (w *Writer) Instant(k Kind, arg int64) {
	if w == nil {
		return
	}
	w.emit(Rec{TS: w.c.Now(), Arg: arg, Kind: k})
}

// Len returns the number of records currently held (≤ capacity).
func (w *Writer) Len() int {
	if w == nil {
		return 0
	}
	p := w.pos.Load()
	if p > int64(len(w.recs)) {
		return len(w.recs)
	}
	return int(p)
}

// Dropped returns how many records were overwritten by ring wrap-around.
func (w *Writer) Dropped() int64 {
	if w == nil {
		return 0
	}
	if p := w.pos.Load(); p > int64(len(w.recs)) {
		return p - int64(len(w.recs))
	}
	return 0
}

// Records returns the surviving records oldest-first. It must not run
// concurrently with the owning goroutine's recording.
func (w *Writer) Records() []Rec {
	if w == nil {
		return nil
	}
	p := w.pos.Load()
	n := int64(len(w.recs))
	if p <= n {
		return append([]Rec(nil), w.recs[:p]...)
	}
	out := make([]Rec, 0, n)
	for i := p - n; i < p; i++ {
		out = append(out, w.recs[i&w.mask])
	}
	return out
}
