package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestWireFlowID(t *testing.T) {
	// Distinct (worker, gate) pairs must map to distinct ids, and the
	// worker index must survive in the high bits even for huge gates.
	ids := map[int64]bool{}
	for w := 0; w < 3; w++ {
		for _, g := range []int64{0, 1, 1000, 1<<48 - 1} {
			id := WireFlowID(w, g)
			if ids[id] {
				t.Fatalf("duplicate flow id for worker %d gate %d", w, g)
			}
			ids[id] = true
		}
	}
	if WireFlowID(0, 5) == WireFlowID(1, 5) {
		t.Error("worker index must distinguish flow ids")
	}
	// Gates above 48 bits still pair: both sides mask identically.
	if WireFlowID(2, 1<<60|7) != WireFlowID(2, (1<<60|7)&wireFlowMask) {
		t.Error("gate masking differs between call sites")
	}
}

// mergedEvents runs WriteChromeMerged and decodes the output.
func mergedEvents(t *testing.T, procs []Proc, ins []Incident) []map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteChromeMerged(&buf, procs, ins); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("merged output is not valid JSON: %v\n%s", err, buf.String())
	}
	return evs
}

func TestWriteChromeMerged(t *testing.T) {
	flow := WireFlowID(0, 100)
	parent := Proc{
		PID:  0,
		Name: "parent",
		Writers: []ChunkWriter{{
			Name: "wire", TID: 9,
			Recs: []Rec{{TS: 1000, Arg: flow, Kind: KWireSend}},
		}},
	}
	worker := Proc{
		PID:      1,
		Name:     "worker 0",
		OffsetNS: 50_000, // worker clock runs 50µs behind the parent's
		Writers: []ChunkWriter{{
			Name: "shard 0", TID: 0,
			Recs: []Rec{
				{TS: 2000, Arg: flow, Kind: KWireRecv},
				{TS: 3000, Arg: 4, Kind: KProcess, Dur: 500},
			},
		}},
	}
	ins := []Incident{{TS: 9_000_000, PID: 1, Name: "worker 0 recovered", Detail: "epoch 1"}}
	evs := mergedEvents(t, []Proc{parent, worker}, ins)

	procNames := map[float64]string{}
	var sawS, sawF, sawIncident bool
	var recvTS float64
	for _, e := range evs {
		switch e["name"] {
		case "process_name":
			args := e["args"].(map[string]any)
			procNames[e["pid"].(float64)] = args["name"].(string)
		case "wire":
			switch e["ph"] {
			case "s":
				sawS = true
			case "f":
				sawF = true
				if e["bp"] != "e" {
					t.Errorf("flow finish missing bp=e: %v", e)
				}
			}
		case "wire_recv":
			recvTS = e["ts"].(float64)
		case "worker 0 recovered":
			sawIncident = true
			if e["ph"] != "i" || e["s"] != "g" {
				t.Errorf("incident not a global instant: %v", e)
			}
			if e["ts"].(float64) != 9000 { // 9ms in µs
				t.Errorf("incident ts = %v, want 9000", e["ts"])
			}
		}
	}
	if procNames[0] != "parent" || procNames[1] != "worker 0" {
		t.Errorf("process names = %v", procNames)
	}
	if !sawS || !sawF {
		t.Errorf("flow pair missing: s=%v f=%v", sawS, sawF)
	}
	if !sawIncident {
		t.Error("incident instant missing")
	}
	// The worker record must be rebased: (2000 + 50000) ns = 52 µs.
	if recvTS != 52 {
		t.Errorf("worker recv ts = %v µs, want 52 (offset rebase)", recvTS)
	}
}

func TestWriteChromeMergedUnpairedFlow(t *testing.T) {
	// A send whose receive never arrived (worker died) must not emit a
	// dangling flow event.
	parent := Proc{PID: 0, Name: "parent", Writers: []ChunkWriter{{
		Name: "wire", TID: 9,
		Recs: []Rec{{TS: 1000, Arg: WireFlowID(0, 7), Kind: KWireSend}},
	}}}
	evs := mergedEvents(t, []Proc{parent}, nil)
	for _, e := range evs {
		if e["ph"] == "s" || e["ph"] == "f" {
			t.Errorf("unpaired send produced a flow event: %v", e)
		}
	}
}

func TestCollectorChunkAndParentProc(t *testing.T) {
	c := NewWithCapacity(4)
	c.SetClock(fakeClock(10))
	w := c.Writer("core 0", 0)
	for i := 0; i < 6; i++ {
		w.Count(KSlack, int64(i))
	}
	ch := c.Chunk()
	if len(ch) != 1 || ch[0].Name != "core 0" || ch[0].TID != 0 {
		t.Fatalf("chunk = %+v", ch)
	}
	if ch[0].Dropped != 2 || len(ch[0].Recs) != 4 {
		t.Errorf("chunk dropped=%d recs=%d, want 2/4", ch[0].Dropped, len(ch[0].Recs))
	}
	p := c.ParentProc("parent")
	if p.PID != 0 || p.OffsetNS != 0 || len(p.Writers) != 1 {
		t.Errorf("ParentProc = %+v", p)
	}
	if d := MergedDropped([]Proc{p, {Writers: []ChunkWriter{{Dropped: 3}}}}); d != 5 {
		t.Errorf("MergedDropped = %d, want 5", d)
	}
}

func TestIncidentString(t *testing.T) {
	in := Incident{TS: 12_300_000, Name: "worker 1 recovered", Detail: "epoch 1, replaying 4 batches"}
	s := in.String()
	for _, want := range []string{"12.3ms", "worker 1 recovered", "replaying 4 batches"} {
		if !strings.Contains(s, want) {
			t.Errorf("Incident.String() = %q, missing %q", s, want)
		}
	}
}
