package core

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"slacksim/internal/event"
)

// bareMachine builds a Machine with just the pacing state the min-tree and
// dirty-set tests exercise — no cores, no kernel, no cache hierarchy.
func bareMachine(n, ringCap int) *Machine {
	m := &Machine{
		local:       make([]padded, n),
		blocked:     make([]padded, n),
		resumeFloor: make([]padded, n),
		lt:          newMinTree(n),
		outQ:        make([]*event.Ring, n),
		outDirty:    make([]paddedU64, (n+63)/64),
		notifyPend:  make([]uint64, (n+63)/64),
		mgrWake:     make(chan struct{}, 1),
	}
	for i := range m.outQ {
		m.outQ[i] = event.NewRing(ringCap)
	}
	return m
}

// applyMinTreeOp decodes one operation against core i from two bytes and
// applies it through the same entry points the engine uses. Shared by the
// property test and the fuzz target.
func applyMinTreeOp(m *Machine, i int, op, arg byte) {
	switch op % 4 {
	case 0: // core publishes a (monotone) local-clock advance
		m.publishLocal(i, m.local[i].v.Load()+int64(arg))
	case 1: // manager blocks the core in the kernel
		m.blocked[i].v.Store(1)
		m.refreshMinLeaf(i)
	case 2: // manager grants the core out of a blocking wait
		m.resumeFloor[i].v.Store(m.local[i].v.Load() + int64(arg))
		m.blocked[i].v.Store(0)
		m.refreshMinLeaf(i)
	case 3: // global time advances (feeds the all-blocked fallback)
		if g := m.global.Load() + int64(arg); g > m.global.Load() {
			m.global.Store(g)
		}
	}
}

// TestMinTreeMatchesScanSequential drives random publish/block/grant
// sequences through the engine entry points and checks the tree-backed
// globalMin against the naive minLocal reference after every operation.
func TestMinTreeMatchesScanSequential(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 9, 64, 65} {
		rng := rand.New(rand.NewSource(int64(n) * 7919))
		m := bareMachine(n, 8)
		for step := 0; step < 4000; step++ {
			applyMinTreeOp(m, rng.Intn(n), byte(rng.Intn(4)), byte(rng.Intn(256)))
			if got, want := m.globalMin(), m.minLocal(); got != want {
				t.Fatalf("n=%d step=%d: globalMin=%d, minLocal scan=%d", n, step, got, want)
			}
		}
	}
}

// TestMinTreeAllBlockedFallback checks the sentinel path: when every core is
// asleep in the kernel the root is +inf and globalMin falls back to the
// current global time, exactly like minLocal's empty-scan fallback.
func TestMinTreeAllBlockedFallback(t *testing.T) {
	m := bareMachine(4, 8)
	for i := 0; i < 4; i++ {
		m.publishLocal(i, int64(100+i))
		m.blocked[i].v.Store(1)
		m.refreshMinLeaf(i)
	}
	if m.lt.root() != minTreeInf {
		t.Fatalf("all cores blocked, root = %d, want sentinel", m.lt.root())
	}
	m.global.Store(4242)
	if got := m.globalMin(); got != 4242 {
		t.Fatalf("all-blocked globalMin = %d, want current global 4242", got)
	}
	if got, want := m.globalMin(), m.minLocal(); got != want {
		t.Fatalf("fallback disagrees with scan: %d vs %d", got, want)
	}
	// One core granted back: the floor, not the frozen clock, must win.
	m.resumeFloor[2].v.Store(9000)
	m.blocked[2].v.Store(0)
	m.refreshMinLeaf(2)
	if got := m.globalMin(); got != 9000 {
		t.Fatalf("granted core counts at resume floor: got %d, want 9000", got)
	}
}

// TestMinTreeConcurrentAgreesWithScan is the race-closure property test: one
// goroutine per core hammers monotone publishLocal while a "manager"
// goroutine concurrently flips blocked flags and resume floors on random
// cores (the exact write race refreshMinLeaf's store-then-verify closes).
// After the join — a quiescent point — the root must equal the naive scan.
// Run under -race in CI.
func TestMinTreeConcurrentAgreesWithScan(t *testing.T) {
	const n = 16
	for round := 0; round < 8; round++ {
		m := bareMachine(n, 8)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				local := int64(0)
				for k := 0; k < 2000; k++ {
					local += int64(k%7) + 1
					m.publishLocal(i, local)
				}
			}(i)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(round)))
			for k := 0; k < 2000; k++ {
				i := rng.Intn(n)
				if k%3 == 0 {
					m.blocked[i].v.Store(1)
					m.refreshMinLeaf(i)
				} else {
					m.resumeFloor[i].v.Store(int64(rng.Intn(5000)))
					m.blocked[i].v.Store(0)
					m.refreshMinLeaf(i)
				}
			}
			// Leave every core unblocked so the final minimum is non-trivial.
			for i := 0; i < n; i++ {
				m.blocked[i].v.Store(0)
				m.refreshMinLeaf(i)
			}
		}()
		wg.Wait()
		if got, want := m.lt.root(), m.minLocal(); got != want {
			t.Fatalf("round %d: quiescent root=%d, scan=%d", round, got, want)
		}
		for i := 0; i < n; i++ {
			if got, want := m.lt.leaf(i), m.minLeafVal(i); got != want {
				t.Fatalf("round %d: leaf %d=%d, pacing atomics say %d", round, i, got, want)
			}
		}
	}
}

// FuzzMinTreeMatchesScan feeds arbitrary op streams through the engine entry
// points; the tree must agree with the reference scan after every single op.
func FuzzMinTreeMatchesScan(f *testing.F) {
	f.Add([]byte{0, 10, 1, 0, 2, 5})
	f.Add([]byte{1, 0, 1, 0, 1, 0, 3, 100})
	f.Add([]byte{0, 255, 2, 255, 0, 1, 3, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const n = 5
		m := bareMachine(n, 8)
		for k := 0; k+1 < len(ops); k += 2 {
			applyMinTreeOp(m, int(ops[k]>>2)%n, ops[k], ops[k+1])
			if got, want := m.globalMin(), m.minLocal(); got != want {
				t.Fatalf("op %d: globalMin=%d, minLocal=%d", k/2, got, want)
			}
		}
	})
}

// TestDirtyDrainNoStranding is the dirty-set ordering test: concurrent
// producers push through the engine's store-then-mark sequence while the
// consumer repeatedly swap-drains; every pushed event must reach the GQ —
// none stranded in a ring whose dirty bit was consumed by an earlier swap.
// Run under -race in CI.
func TestDirtyDrainNoStranding(t *testing.T) {
	const (
		n       = 70 // spans two dirty words
		perCore = 300
	)
	m := bareMachine(n, 16)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < perCore; k++ {
				for !m.outQ[i].Push(event.Event{Core: int32(i), Time: int64(k)}) {
					runtime.Gosched() // ring full: wait for the drainer
				}
				m.markOutDirty(i)
				m.bumpMgrEpoch()
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		m.drainDirtyOutQs()
		select {
		case <-done:
			// Producers finished: one more dirty drain picks up every bit set
			// after the last swap; the full-scan fallback then cross-checks
			// that the dirty protocol left nothing behind.
			m.drainDirtyOutQs()
			if m.drainOutQs() {
				t.Fatal("full-scan drain found events the dirty-set drain left stranded")
			}
			if m.gq.Len() != n*perCore {
				t.Fatalf("GQ has %d events, want %d", m.gq.Len(), n*perCore)
			}
			return
		default:
		}
	}
}

// TestQuantumBarrierCrossedByJump is the regression test for the unified
// barrier detection. Batched stepping can move the global time across a
// quantum boundary without ever landing on a multiple of the window; the old
// managerLoop check (g%Window == 0) never fires on such a trajectory and the
// barrier's processing is skipped — under the new rounding-down detection the
// barrier is found the moment the global time passes it.
func TestQuantumBarrierCrossedByJump(t *testing.T) {
	const window = 10
	// A global-time trajectory that jumps 7..23: it crosses the boundaries
	// at 10 and 20 without ever equalling a multiple of the window.
	trajectory := []int64{7, 13, 23}

	oldFired, newBarrier := false, int64(0)
	lastBarrier := int64(0)
	for _, g := range trajectory {
		if g > 0 && g%window == 0 { // the pre-unification managerLoop check
			oldFired = true
		}
		if allowed := quantumBarrier(g, window); allowed > 0 && allowed > lastBarrier {
			lastBarrier = allowed
			newBarrier = allowed
		}
	}
	if oldFired {
		t.Fatal("old g%Window==0 check fired on a boundary-jumping trajectory; test is vacuous")
	}
	if newBarrier != 20 {
		t.Fatalf("unified detection found barrier %d, want 20 (last boundary below 23)", newBarrier)
	}

	// Processing must be allowed at the barrier even though g is off-multiple.
	if got := quantumBarrier(23, window); got != 20 {
		t.Fatalf("quantumBarrier(23, 10) = %d, want 20", got)
	}
	if got := quantumBarrier(9, window); got != 0 {
		t.Fatalf("quantumBarrier(9, 10) = %d, want 0 (no boundary crossed yet)", got)
	}
	if got := quantumBarrier(30, window); got != 30 {
		t.Fatalf("quantumBarrier(30, 10) = %d, want 30 (exact boundary still detected)", got)
	}
}
