package core

import (
	"fmt"
	"testing"

	"slacksim/internal/event"
)

// Manager-round cost benchmarks. One round of the old manager paid an O(N)
// clock scan (BenchmarkMinLocalScan) and an O(N) ring scan
// (BenchmarkDrainFullScan) regardless of activity; the new round pays one
// O(1) root read plus — per *active* core — an O(log N) leaf update
// (BenchmarkMinTree) and a dirty-bit drain (BenchmarkDrainDirtySet).
// Numbers are quoted in docs/performance.md ("Host-core scaling").

// BenchmarkMinLocalScan measures the old per-round global-time computation:
// a scan of every core's clock/blocked/floor atomics.
func BenchmarkMinLocalScan(b *testing.B) {
	for _, n := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("cores=%d", n), func(b *testing.B) {
			m := bareMachine(n, 8)
			for i := 0; i < n; i++ {
				m.publishLocal(i, int64(1000+i))
			}
			b.ResetTimer()
			var sink int64
			for k := 0; k < b.N; k++ {
				sink = m.minLocal()
			}
			_ = sink
		})
	}
}

// BenchmarkMinTree measures the replacement round with one active core: an
// O(log N) leaf refresh (the publishing core's side) plus the manager's
// O(1) root read. With more than one active core per round the scan's cost
// stays O(N) while the tree's grows only with the number of publishers.
func BenchmarkMinTree(b *testing.B) {
	for _, n := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("cores=%d", n), func(b *testing.B) {
			m := bareMachine(n, 8)
			for i := 0; i < n; i++ {
				m.publishLocal(i, int64(1000+i))
			}
			b.ResetTimer()
			var sink int64
			for k := 0; k < b.N; k++ {
				i := k & (n - 1)
				m.lt.update(i, int64(1000+k))
				sink = m.lt.root()
			}
			_ = sink
		})
	}
}

// drainBench measures one manager drain round at ~10% ring occupancy: 10%
// of the cores received one request since the last round. The full scan
// pops every ring; the dirty-set drain touches only the marked ones.
func drainBench(b *testing.B, dirty bool) {
	const n = 256
	m := bareMachine(n, 8)
	active := n / 10
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		b.StopTimer()
		for i := 0; i < active; i++ {
			c := (i*37 + k) % n // spread pushes across the dirty words
			m.outQ[c].MustPush(event.Event{Core: int32(c), Time: int64(k)})
			if dirty {
				m.markOutDirty(c)
			}
		}
		b.StartTimer()
		if dirty {
			m.drainDirtyOutQs()
		} else {
			m.drainOutQs()
		}
		b.StopTimer()
		for m.gq.Len() > 0 { // keep the heap from growing across rounds
			m.gq.Pop()
		}
		b.StartTimer()
	}
}

func BenchmarkDrainFullScan(b *testing.B) { drainBench(b, false) }
func BenchmarkDrainDirtySet(b *testing.B) { drainBench(b, true) }
