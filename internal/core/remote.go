package core

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"slacksim/internal/cache"
	"slacksim/internal/event"
	"slacksim/internal/faultinject"
	"slacksim/internal/remote"
	"slacksim/internal/trace"
)

// This file is the parent side of the distributed remote-shard backend
// (ROADMAP item 3): the memory-hierarchy shards of the sharded manager
// (sharded.go) move into separate OS processes, coordinated over the
// internal/remote wire protocol. The parent keeps everything whose state
// is shared — the core loops (which read and write the functional memory
// image directly), the kernel, the global time and the window pacing —
// and the workers keep what is private per shard: the timing-only
// L2/directory state, which carries no data (see internal/cache's
// package doc).
//
// Determinism is inherited from the in-process sharded driver. The round
// structure is the same: the global-time candidate is read before the
// OutQ drain, so every event below it is routed this round; batches are
// written to a worker's connection before the gate frame, and TCP
// preserves order, so a worker that has seen gate=allowed has every
// event below allowed queued; the worker writes all its reply batches
// before the watermark, so a parent that has seen watermark >= allowed
// has every reply below allowed in the cores' rings before it raises any
// window. The wire adds only host latency — which a slack window of s
// cycles absorbs exactly as it absorbs host scheduling jitter.
//
// Fault tolerance rests on the same in-order invariants. Every outbound
// frame is appended to a per-worker replay journal and sent from it;
// workers checkpoint their timing state every K gates, which lets the
// parent truncate the journal. When a connection dies — detected by a
// read/write error, a checksum failure, or heartbeat staleness — a
// per-worker supervisor redials with bounded, backed-off retries,
// restores the worker from the stored checkpoint, and replays the
// journal. Because every journaled event after gate g carries a
// timestamp >= g, the restored worker regenerates the *identical* reply
// sequence the lost connection swallowed, and the parent suppresses the
// prefix it had already delivered (counted per shard) — so a recovered
// run is bit-exact with an undisturbed one. When the retry budget runs
// out the worker is abandoned and its shards migrate into the parent's
// in-process path (the same applyMemEvent), trading the lost
// parallelism for a completed, still bit-exact run.

// RemoteOptions configures a distributed run beyond the initial
// transports: recovery hooks, heartbeat pacing, and checkpoint cadence.
type RemoteOptions struct {
	// Transports are the initial worker connections, one per worker
	// (shards are distributed round-robin over them).
	Transports []remote.Transport
	// Redial, when set, reconnects to worker i after a connection
	// failure (dial mode re-dials the address; spawn mode respawns the
	// process). Nil disables recovery: the first failure abandons the
	// worker and migrates its shards in-process.
	Redial func(worker int) (remote.Transport, error)
	// Kill, when set, terminates worker i's process — the hook behind
	// the faultinject.WorkerKill chaos fault. Nil falls back to severing
	// the connection.
	Kill func(worker int) error
	// Heartbeat is the idle interval after which a worker volunteers a
	// heartbeat frame and the parent's staleness thresholds are scaled
	// (suspect at 2×, dead at 4×). 0 means the 1s default; < 0 disables
	// heartbeats (connection errors still drive recovery).
	Heartbeat time.Duration
	// CheckpointEvery is the gate cadence of worker checkpoints. 0 means
	// the default of 64; < 0 disables checkpointing (recovery then
	// replays the whole run's journal).
	CheckpointEvery int
	// RetryBudget is the redial attempts allowed per failure incident.
	// 0 means the default of 3; < 0 means no retries.
	RetryBudget int
	// RetryBackoff paces the redial attempts (zero value =
	// remote.DefaultBackoff).
	RetryBackoff remote.Backoff
}

func (o *RemoteOptions) heartbeat() time.Duration {
	if o.Heartbeat < 0 {
		return 0
	}
	if o.Heartbeat == 0 {
		return time.Second
	}
	return o.Heartbeat
}

// heartbeatMS renders the heartbeat for the Hello frame (-1 = disabled,
// so the worker's own "0 means default" rule cannot re-enable it).
func (o *RemoteOptions) heartbeatMS() int64 {
	hb := o.heartbeat()
	if hb == 0 {
		return -1
	}
	return hb.Milliseconds()
}

func (o *RemoteOptions) checkpointEvery() int {
	if o.CheckpointEvery < 0 {
		return 0
	}
	if o.CheckpointEvery == 0 {
		return 64
	}
	return o.CheckpointEvery
}

func (o *RemoteOptions) retryBudget() int {
	if o.RetryBudget < 0 {
		return 0
	}
	if o.RetryBudget == 0 {
		return 3
	}
	return o.RetryBudget
}

// RecoveryStats summarises the fault-tolerance activity of a remote run
// (all zero on an undisturbed run).
type RecoveryStats struct {
	// Reconnects counts successful worker session resumes.
	Reconnects int64 `json:"reconnects"`
	// ReplayedBatches counts journal entries replayed to restored
	// workers (and into adopted in-process shards).
	ReplayedBatches int64 `json:"replayed_batches"`
	// Checkpoints and CheckpointBytes count worker checkpoint frames
	// received and their total payload size.
	Checkpoints     int64 `json:"checkpoints"`
	CheckpointBytes int64 `json:"checkpoint_bytes"`
	// AbandonedWorkers counts workers whose retry budget ran out;
	// MigratedShards counts their shards now simulated in-process.
	AbandonedWorkers int64 `json:"abandoned_workers"`
	MigratedShards   int64 `json:"migrated_shards"`
}

// remoteState is the per-machine distributed plumbing (nil unless
// Config.RemoteShards > 0). The reply rings exist from NewMachine (they
// are part of coreRings); the workers are attached by RunRemoteSharded.
type remoteState struct {
	n   int
	out [][]*event.Ring // shard s -> core i reply rings (recv goroutines produce)

	opts    *RemoteOptions
	session string

	workers []*remoteWorker
	owner   []int // shard index -> worker index

	// stage accumulates the current round's routed events per shard
	// (manager goroutine only).
	stage [][]event.Event

	// adopted[s] is non-nil once shard s has been migrated into the
	// parent after its worker was abandoned (manager goroutine only).
	adopted  []*adoptedShard
	nAdopted int

	// closing is set by remoteShutdown: receivers stop re-arming read
	// timeouts and supervisors stop recovering.
	closing atomic.Bool

	// Recovery counters (written by supervisors and receivers, read by
	// results/metrics/introspection).
	reconnects      atomic.Int64
	replayedBatches atomic.Int64
	checkpoints     atomic.Int64
	checkpointBytes atomic.Int64
	abandoned       atomic.Int64
	migrated        atomic.Int64

	// Results folded back from the workers' FStats at shutdown.
	l2stats     []cache.L2Stats // per shard
	wireParent  remote.WireStats
	wireWorkers remote.WireStats
	statsOK     int // workers whose stats arrived

	// Fleet observability (remoteobs.go): worker trace chunks and
	// per-epoch clock-offset estimates collected by the receivers,
	// supervision incidents appended at lifecycle transitions, and the
	// once-per-worker trace-drop warning latch. All under obsMu — these
	// paths are off the per-event hot path (heartbeats, checkpoints,
	// supervision), so one mutex is cheap and keeps the export side
	// trivially safe.
	obsMu     sync.Mutex
	chunks    map[int]map[int]*remote.TraceChunk // worker -> epoch -> latest chunk
	clockOff  map[int]map[int]int64              // worker -> epoch -> parent-worker clock offset (ns)
	incidents []trace.Incident
	dropWarn  map[int]bool

	// wireTW is the parent's wire trace track: one KWireSend instant per
	// gate frame enqueued, carrying the flow id the worker's matching
	// KWireRecv echoes. Manager goroutine only (gates are enqueued there).
	wireTW *trace.Writer
}

func newRemoteState(cfg Config) *remoteState {
	r := &remoteState{n: cfg.RemoteShards}
	for s := 0; s < r.n; s++ {
		rings := make([]*event.Ring, cfg.NumCores)
		for c := range rings {
			rings[c] = event.NewRing(cfg.RingCap)
			rings[c].SetName(fmt.Sprintf("remote%d.c%d", s, c))
		}
		r.out = append(r.out, rings)
	}
	r.stage = make([][]event.Event, r.n)
	r.adopted = make([]*adoptedShard, r.n)
	r.l2stats = make([]cache.L2Stats, r.n)
	r.chunks = make(map[int]map[int]*remote.TraceChunk)
	r.clockOff = make(map[int]map[int]int64)
	r.dropWarn = make(map[int]bool)
	return r
}

// adoptedShard is one shard migrated into the parent after its worker
// was abandoned: the same timing state a worker would hold, restored
// from the last checkpoint, processed by the manager through the shared
// applyMemEvent path.
type adoptedShard struct {
	idx int
	l2  *cache.L2System
	gq  event.Heap
	// skip suppresses the first replies regenerated by the replay —
	// the ones the dead worker already delivered into the rings.
	skip int64
}

// wireMsg is one unit of outbound work: a journal entry until it is
// acknowledged by a checkpoint, and the send queue the sender drains.
type wireMsg struct {
	kind  byte // remote.FEvents, FGate, FCheckpointAck, FFinish
	shard int
	evs   []event.Event
	gate  int64
	batch int64 // global batch index (FEvents entries only)
}

// remoteWorker is the parent's handle on one worker process, across
// every connection incarnation it goes through.
type remoteWorker struct {
	id     int
	shards []int

	// mu guards the connection handle, the journal, and the cursor —
	// shared between the manager (appends), the sender (drains), the
	// receiver (truncates on checkpoint), and the supervisor (swaps the
	// connection on recovery).
	mu   sync.Mutex
	conn *remote.Conn

	// journal holds every unacknowledged outbound frame, oldest first.
	// jBase is the global index of journal[0]; cursor is the global
	// index of the next entry the sender transmits; batchSeq numbers
	// FEvents entries; maxGateEver is the highest gate ever enqueued
	// (re-sent after a resume so a truncated trailing gate cannot strand
	// the watermark).
	journal     []wireMsg
	jBase       int64
	cursor      int64
	batchSeq    int64
	maxGateEver int64

	// ckpt is the last checkpoint payload received from the worker,
	// stored verbatim (the parent only parses the header); the journal
	// is truncated to it.
	ckpt        []byte
	ckptGate    int64
	ckptBatches int64

	// delivered[p] counts replies for shards[p] pushed into the rings
	// since the last checkpoint truncation — the suppression count a
	// replay needs. Written only by the live receiver goroutine (or the
	// manager at adoption); handed between generations by the join in
	// the supervisor.
	delivered []int64

	// Per-connection channels, replaced by the supervisor on recovery
	// (under mu; each generation's goroutines capture their own).
	stopSend chan struct{}
	sendDone chan struct{}
	recvDone chan struct{}

	// Whole-lifetime channels.
	wakeSend chan struct{} // cap 1: journal append signal
	markCh   chan struct{} // cap 1: watermark / abandonment signal
	dying    chan struct{} // closed by remoteShutdown
	supDone  chan struct{} // supervisor goroutine joined

	// mark is the worker's last acknowledged gate (receiver writes,
	// manager spins on it in waitRemoteWatermarks). It survives
	// reconnects — a watermark only ever rises.
	mark padded
	// lastGate is the highest gate the manager has enqueued (manager
	// goroutine only).
	lastGate int64
	// adoptedFlag marks a worker whose shards migrated in-process
	// (manager goroutine only; supervision is already parked by then).
	adoptedFlag bool

	lastHeard atomic.Int64 // unix nanos of the last received frame
	hbStall   atomic.Bool  // faultinject.HeartbeatStall: stop counting frames as liveness
	finished  atomic.Bool  // receiver saw FBye (clean end of session)
	epoch     atomic.Int64 // connection incarnation (0 = original)

	sup *remote.Supervisor

	// wireAgg accumulates the connection counters of every dead
	// incarnation (supervisor goroutine; read after supDone).
	wireAgg  remote.WireStats
	stats    remote.WorkerStats
	gotStats bool // receiver writes before closing recvDone
}

func (w *remoteWorker) faultTarget() int { return faultinject.ShardWorker(w.shards[0]) }

func (w *remoteWorker) name() string { return fmt.Sprintf("worker %d (shards %v)", w.id, w.shards) }

// shardPos maps a global shard index to its position in w.shards.
func (w *remoteWorker) shardPos(shard int) int {
	for p, s := range w.shards {
		if s == shard {
			return p
		}
	}
	return -1
}

// currentConn snapshots the live connection handle (wire-fault hooks).
func (w *remoteWorker) currentConn() *remote.Conn {
	w.mu.Lock()
	c := w.conn
	w.mu.Unlock()
	return c
}

// enqueue appends one frame to the worker's journal and wakes the
// sender. Safe from the manager and the receiver concurrently.
func (w *remoteWorker) enqueue(msg wireMsg) {
	w.mu.Lock()
	if msg.kind == remote.FEvents {
		msg.batch = w.batchSeq
		w.batchSeq++
	}
	if msg.kind == remote.FGate && msg.gate > w.maxGateEver {
		w.maxGateEver = msg.gate
	}
	w.journal = append(w.journal, msg)
	w.mu.Unlock()
	select {
	case w.wakeSend <- struct{}{}:
	default:
	}
}

// storeCheckpoint records a checkpoint payload and truncates the journal
// to it: every entry before the first unconsumed batch is acknowledged
// state and will never need replaying. The cut never passes the send
// cursor — an entry the sender has not transmitted cannot have been
// consumed, whatever the header claims.
func (w *remoteWorker) storeCheckpoint(payload []byte, gate, batches int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.ckpt = append(w.ckpt[:0], payload...)
	w.ckptGate, w.ckptBatches = gate, batches
	limit := int(w.cursor - w.jBase)
	cut := 0
	for cut < len(w.journal) && cut < limit {
		e := &w.journal[cut]
		if e.kind == remote.FFinish || (e.kind == remote.FEvents && e.batch >= batches) {
			break
		}
		cut++
	}
	if cut > 0 {
		n := copy(w.journal, w.journal[cut:])
		for i := n; i < len(w.journal); i++ {
			w.journal[i] = wireMsg{} // release the event slices
		}
		w.journal = w.journal[:n]
		w.jBase += int64(cut)
	}
}

// remoteShardOf routes addr to its owning shard — the same bank-mod rule
// as the in-process driver, computed against the parent's own L2
// instance (bank geometry is pure configuration).
func (m *Machine) remoteShardOf(addr uint64) int {
	return m.l2.BankOf(addr) % m.remote.n
}

// remoteHandshakeTimeout bounds how long the parent waits for a worker's
// Welcome; a worker that never completes the handshake fails the run with
// a contained SimError instead of stalling it for the full watchdog
// window.
func (m *Machine) remoteHandshakeTimeout() time.Duration {
	t := m.stallTimeout()
	if t > 30*time.Second {
		t = 30 * time.Second
	}
	return t
}

// RunRemoteSharded executes the simulation with the memory-hierarchy
// shards hosted by remote worker processes, one per transport (TCP
// connections to slackworker processes, or any other Transport). The
// machine must have been built with Config.RemoteShards > 0; shards are
// distributed round-robin over the transports. The round structure,
// pacing, and determinism guarantees mirror the in-process sharded
// driver: a remote run is bit-exact against ManagerShards =
// RemoteShards for every conservative scheme — including runs that
// lose and recover workers (see RunRemoteShardedOpts for the recovery
// hooks; with no Redial hook a dead worker's shards migrate in-process).
func (m *Machine) RunRemoteSharded(s Scheme, transports []remote.Transport) (*Result, error) {
	return m.RunRemoteShardedOpts(s, &RemoteOptions{Transports: transports})
}

// RunRemoteShardedOpts is RunRemoteSharded with recovery configuration.
func (m *Machine) RunRemoteShardedOpts(s Scheme, opts *RemoteOptions) (*Result, error) {
	if m.remote == nil {
		return nil, fmt.Errorf("core: RunRemoteSharded requires Config.RemoteShards > 0")
	}
	if opts == nil {
		return nil, fmt.Errorf("core: RunRemoteShardedOpts requires options")
	}
	if len(opts.Transports) < 1 || len(opts.Transports) > m.remote.n {
		return nil, fmt.Errorf("core: %d worker connections for %d shards (need 1..%d)", len(opts.Transports), m.remote.n, m.remote.n)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	m.scheme = s
	sc := s
	m.schemeLive.Store(&sc)
	start := time.Now()
	m.captureHostMem()

	m.remote.opts = opts
	if err := m.remoteConnect(opts.Transports); err != nil {
		return nil, err
	}

	init := s.maxLocal(0)
	for i := range m.maxLocal {
		m.maxLocal[i].v.Store(init)
	}

	// Same containment umbrella as RunParallel: cores, the per-connection
	// send/recv goroutines, the supervisors, and the manager all convert
	// panics into a recorded SimError and a clean join.
	var wg sync.WaitGroup
	for i := range m.cores {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer m.containPanic(i, "core-loop")
			m.coreLoop(i)
		}(i)
	}
	func() {
		defer m.containPanic(faultinject.Manager, "manager")
		m.runRemoteManager(s)
	}()
	m.wakeAll()
	wg.Wait()
	m.remoteShutdown()
	if err := m.takeFault(); err != nil {
		return nil, err
	}
	// Straggler events (pushed after done) are finalized locally against
	// the parent's own hierarchy instance, exactly as the in-process
	// sharded driver does.
	func() {
		defer m.containPanic(faultinject.Manager, "final-drain")
		m.drainOutQs()
		m.processAll()
	}()
	if err := m.takeFault(); err != nil {
		return nil, err
	}
	// A run that finished bit-exact but lost a worker for good is still a
	// post-mortem: the fleet shrank, and whoever operates it wants the
	// merged trace and incident log. Capture a bundle on the success path
	// too when any worker was abandoned.
	if m.bundleDir != "" && m.remote.abandoned.Load() > 0 {
		m.writeFailureBundle(fmt.Errorf(
			"remote: run completed with %d abandoned worker(s), %d shard(s) migrated in-process",
			m.remote.abandoned.Load(), m.remote.migrated.Load()))
	}
	return m.result(time.Since(start)), nil
}

// remoteConnect performs the versioned handshake with every worker and
// spawns its send/recv/supervisor goroutines. Any failure — refusal,
// version mismatch, silence past the deadline — closes every connection
// and returns a SimError naming the worker: the initial handshake is
// where configuration mistakes surface, so it stays fatal rather than
// entering the recovery path.
func (m *Machine) remoteConnect(transports []remote.Transport) error {
	r := m.remote
	r.session = fmt.Sprintf("slacksim-%d-%d", os.Getpid(), time.Now().UnixNano())
	nw := len(transports)
	r.owner = make([]int, r.n)
	r.workers = make([]*remoteWorker, nw)
	for wi := 0; wi < nw; wi++ {
		w := &remoteWorker{
			id:       wi,
			conn:     remote.NewConn(transports[wi]),
			stopSend: make(chan struct{}),
			sendDone: make(chan struct{}),
			recvDone: make(chan struct{}),
			wakeSend: make(chan struct{}, 1),
			markCh:   make(chan struct{}, 1),
			dying:    make(chan struct{}),
			supDone:  make(chan struct{}),
			sup:      remote.NewSupervisor(r.opts.retryBudget(), r.opts.RetryBackoff),
		}
		for sh := wi; sh < r.n; sh += nw {
			w.shards = append(w.shards, sh)
			r.owner[sh] = wi
		}
		w.delivered = make([]int64, len(w.shards))
		// The synthetic gate-0 checkpoint makes the recovery path uniform:
		// a worker lost before its first real checkpoint restores fresh
		// state and replays the whole journal.
		ck := remote.Checkpoint{WorkerID: w.id}
		for _, sh := range w.shards {
			ck.Shards = append(ck.Shards, remote.ShardCheckpoint{Shard: sh})
		}
		w.ckpt = remote.AppendCheckpoint(nil, &ck)
		r.workers[wi] = w
	}
	deadline := time.Now().Add(m.remoteHandshakeTimeout())
	for _, w := range r.workers {
		// The write deadline covers a peer that never reads (SendHello
		// flushes); cleared after the handshake — the sender goroutine
		// re-arms its own per frame.
		w.conn.SetWriteDeadline(deadline)
		err := w.conn.SendHello(m.remoteHello(w, false))
		if err == nil {
			_, err = w.conn.AwaitWelcome(deadline)
		}
		w.conn.SetWriteDeadline(time.Time{})
		if err != nil {
			for _, o := range r.workers {
				o.conn.Close()
			}
			return &SimError{
				Core:   w.faultTarget(),
				Op:     "remote-handshake",
				Scheme: m.scheme,
				Detail: fmt.Sprintf("%s: %v", w.name(), err),
			}
		}
	}
	for _, w := range r.workers {
		w.lastHeard.Store(time.Now().UnixNano())
		m.spawnConnGoroutines(w, w.conn, w.stopSend, w.sendDone, w.recvDone, make([]int64, len(w.shards)))
		w := w
		go func() {
			defer close(w.supDone)
			defer m.containPanic(w.faultTarget(), "remote-supervise")
			m.superviseWorker(w)
		}()
	}
	return nil
}

// remoteHello builds the handshake frame for a worker session (initial
// or resumed).
func (m *Machine) remoteHello(w *remoteWorker, resume bool) *remote.Hello {
	return &remote.Hello{
		WorkerID:        w.id,
		Shards:          w.shards,
		NumShards:       m.remote.n,
		NumCores:        m.cfg.NumCores,
		Cache:           m.cfg.Cache,
		StallTimeoutMS:  m.stallTimeout().Milliseconds(),
		HeartbeatMS:     m.remote.opts.heartbeatMS(),
		CheckpointEvery: m.remote.opts.checkpointEvery(),
		SessionID:       m.remote.session,
		ResumeSession:   resume,
		Epoch:           int(w.epoch.Load()),
		// Fleet observability rides on the parent's own: a worker only
		// pays for trace rings and a registry when the parent has somewhere
		// to merge them, which keeps the disabled-overhead budget intact.
		Observe: m.tracer != nil || m.met != nil,
	}
}

// spawnConnGoroutines starts one connection incarnation's sender and
// receiver. skip is the receiver's per-shard count of replies to
// suppress (the ones the previous incarnation already delivered).
func (m *Machine) spawnConnGoroutines(w *remoteWorker, conn *remote.Conn, stopSend, sendDone, recvDone chan struct{}, skip []int64) {
	go func() {
		defer close(sendDone)
		defer m.containPanic(w.faultTarget(), "remote-send")
		m.remoteSender(w, conn, stopSend)
	}()
	go func() {
		defer close(recvDone)
		defer m.containPanic(w.faultTarget(), "remote-recv")
		m.remoteReceiver(w, conn, skip)
	}()
}

// remoteSender drains the worker's journal onto one connection, flushing
// when it catches up — the natural round boundary (the gate is the last
// frame the manager enqueues). A write failure just ends this
// incarnation: the journal still holds everything at risk, and the
// supervisor decides whether a successor replays it.
func (m *Machine) remoteSender(w *remoteWorker, conn *remote.Conn, stopSend chan struct{}) {
	for {
		w.mu.Lock()
		var msg wireMsg
		have := false
		if w.cursor-w.jBase < int64(len(w.journal)) {
			msg = w.journal[w.cursor-w.jBase]
			w.cursor++
			have = true
		}
		caughtUp := w.cursor-w.jBase >= int64(len(w.journal))
		w.mu.Unlock()
		if !have {
			if conn.Flush() != nil {
				return
			}
			select {
			case <-w.wakeSend:
			case <-stopSend:
				return
			}
			continue
		}
		conn.SetWriteDeadline(time.Now().Add(m.stallTimeout()))
		var err error
		switch msg.kind {
		case remote.FEvents:
			err = conn.SendBatch(remote.FEvents, msg.shard, msg.evs)
		case remote.FGate:
			err = conn.SendTime(remote.FGate, msg.gate)
		case remote.FCheckpointAck:
			err = conn.SendTime(remote.FCheckpointAck, msg.gate)
		case remote.FFinish:
			err = conn.WriteFrame(remote.FFinish, nil)
		}
		if err == nil && caughtUp {
			err = conn.Flush()
		}
		if err != nil {
			return
		}
	}
}

// remoteReceiver consumes one connection incarnation's inbound stream:
// reply batches into the per-shard per-core rings (this goroutine is
// each ring's single producer), watermarks into the worker's mark,
// checkpoints into the journal-truncation path, stats into the worker
// handle. Connection-level failures — broken transport, checksum
// mismatch, deadline past the stall window — end the incarnation
// silently; the supervisor owns the recover-or-abandon verdict. Only
// peer-reported errors (FError) and post-checksum decode failures, which
// mean a worker bug rather than a transport fault, fail the run.
func (m *Machine) remoteReceiver(w *remoteWorker, conn *remote.Conn, skip []int64) {
	r := m.remote
	var scratch []event.Event
	for {
		conn.SetReadDeadline(time.Now().Add(m.stallTimeout()))
		f, err := conn.ReadFrame()
		if err != nil {
			if remote.IsTimeout(err) {
				if r.closing.Load() {
					return
				}
				continue
			}
			return
		}
		if !w.hbStall.Load() {
			w.lastHeard.Store(time.Now().UnixNano())
		}
		switch f.Type {
		case remote.FHeartbeat:
			// Liveness (lastHeard already advanced) plus, when the worker is
			// observed, a sample of its trace clock for offset estimation.
			if ns, ok := remote.DecodeClock(f.Payload); ok {
				m.noteWorkerClock(w, int(w.epoch.Load()), ns)
			}
		case remote.FTraceChunk:
			var tc remote.TraceChunk
			if json.Unmarshal(f.Payload, &tc) == nil && tc.WorkerID == w.id {
				m.storeTraceChunk(w, &tc)
			}
		case remote.FMetrics:
			var up remote.MetricsUpdate
			if json.Unmarshal(f.Payload, &up) == nil && m.met != nil {
				m.met.reg.Fold(fmt.Sprintf("worker%d.", w.id), up.Snapshot)
			}
		case remote.FCheckpointAck:
			// Stale resume ack replayed from the journal; harmless.
		case remote.FReplies:
			shard, evs, derr := conn.DecodeEvents(f.Payload, scratch[:0])
			pos := -1
			if derr == nil && shard < r.n {
				pos = w.shardPos(shard)
			}
			if derr != nil || pos < 0 {
				m.setFault(&SimError{
					Core:   w.faultTarget(),
					Op:     "remote-recv",
					Scheme: m.scheme, GlobalTime: m.global.Load(), SimTime: m.global.Load(),
					Detail: fmt.Sprintf("%s: bad reply batch (shard %d): %v", w.name(), shard, derr),
				})
				return
			}
			scratch = evs[:0]
			for i := range evs {
				if skip[pos] > 0 {
					skip[pos]--
					continue
				}
				core := int(evs[i].Core)
				m.remote.out[shard][core].MustPush(evs[i])
				m.notifyCore(core)
				w.delivered[pos]++
			}
			m.bumpMgrEpoch()
		case remote.FWatermark:
			t, derr := remote.DecodeTime(f.Payload)
			if derr != nil {
				m.setFault(&SimError{
					Core: w.faultTarget(), Op: "remote-recv", Scheme: m.scheme,
					Detail: fmt.Sprintf("%s: bad watermark: %v", w.name(), derr),
				})
				return
			}
			if t > w.mark.v.Load() {
				w.mark.v.Store(t)
				select {
				case w.markCh <- struct{}{}:
				default:
				}
			}
		case remote.FCheckpoint:
			wid, gate, batches, perr := remote.PeekCheckpoint(f.Payload)
			if perr != nil || wid != w.id {
				m.setFault(&SimError{
					Core: w.faultTarget(), Op: "remote-recv", Scheme: m.scheme,
					Detail: fmt.Sprintf("%s: bad checkpoint header (worker %d): %v", w.name(), wid, perr),
				})
				return
			}
			w.storeCheckpoint(f.Payload, gate, batches)
			// delivered becomes "pushed since this checkpoint". Replies the
			// previous incarnation delivered beyond this checkpoint's stream
			// position are exactly the not-yet-consumed skip counts.
			copy(w.delivered, skip)
			r.checkpoints.Add(1)
			r.checkpointBytes.Add(int64(len(f.Payload)))
			w.enqueue(wireMsg{kind: remote.FCheckpointAck, gate: gate})
		case remote.FError:
			se := &SimError{
				Core: w.faultTarget(), Op: "remote-worker", Scheme: m.scheme,
				GlobalTime: m.global.Load(),
			}
			if jerr := json.Unmarshal(f.Payload, se); jerr != nil {
				se.Detail = fmt.Sprintf("%s: unparseable error frame: %s", w.name(), f.Payload)
			}
			// The worker's own scheme field is zero — it paces nothing —
			// so stamp the run's.
			se.Scheme = m.scheme
			m.setFault(se)
			return
		case remote.FStats:
			var st remote.WorkerStats
			if json.Unmarshal(f.Payload, &st) == nil {
				if st.ClockNS > 0 {
					// Final clock sample: on heartbeat-less short runs this
					// is the only offset estimate the merge ever gets.
					m.noteWorkerClock(w, int(w.epoch.Load()), st.ClockNS)
				}
				w.stats = st
				w.gotStats = true
			}
		case remote.FBye:
			w.finished.Store(true)
			return
		default:
			m.setFault(&SimError{
				Core: w.faultTarget(), Op: "remote-recv", Scheme: m.scheme,
				Detail: fmt.Sprintf("%s: unexpected %s frame", w.name(), remote.FrameName(f.Type)),
			})
			return
		}
	}
}

// superviseWorker owns one worker's connection lifecycle: it watches the
// live incarnation's goroutines and heartbeat freshness, tears down and
// rebuilds the connection on failure, and parks once the worker is
// finished, abandoned, or the run is shutting down.
func (m *Machine) superviseWorker(w *remoteWorker) {
	r := m.remote
	hb := r.opts.heartbeat()
	var tickC <-chan time.Time
	if hb > 0 {
		t := time.NewTicker(hb)
		defer t.Stop()
		tickC = t.C
	}
	for {
		w.mu.Lock()
		conn, stopSend, sendDone, recvDone := w.conn, w.stopSend, w.sendDone, w.recvDone
		w.mu.Unlock()

		failed := false
		suspected := false
		for !failed {
			select {
			case <-w.dying:
				// Shutdown: give the receiver one stats-deadline window to
				// finish the FFinish/FStats/FBye exchange, then reel in.
				dl := time.NewTimer(m.remoteHandshakeTimeout())
				select {
				case <-recvDone:
				case <-dl.C:
				}
				dl.Stop()
				conn.Close()
				close(stopSend)
				<-recvDone
				<-sendDone
				w.wireAgg.Add(conn.Stats())
				return
			case <-recvDone:
				failed = true
			case <-sendDone:
				failed = true
			case <-tickC:
				since := time.Duration(time.Now().UnixNano() - w.lastHeard.Load())
				switch w.sup.CheckBeat(since, hb) {
				case remote.BeatDead:
					// Silent hang: force the blocked reader out; the failure
					// then takes the ordinary recovery path below.
					conn.Close()
				case remote.BeatLate:
					if !suspected {
						suspected = true
						m.remoteIncident(w, "suspect",
							fmt.Sprintf("no frame for %v", since.Round(time.Millisecond)))
					}
				}
			}
		}

		// This incarnation is over (error or clean FBye). Join both
		// goroutines — after this, delivered/journal state is safely ours.
		conn.Close()
		close(stopSend)
		<-recvDone
		<-sendDone
		w.wireAgg.Add(conn.Stats())
		if w.finished.Load() {
			<-w.dying
			return
		}
		w.sup.Failure()
		m.remoteIncident(w, "reconnecting",
			fmt.Sprintf("connection lost in epoch %d", w.epoch.Load()))
		if m.recoverWorker(w) {
			continue
		}
		w.sup.Abandon()
		m.remoteIncident(w, "abandoned", "retry budget exhausted")
		r.abandoned.Add(1)
		// Wake the manager's watermark wait so it migrates the shards.
		select {
		case w.markCh <- struct{}{}:
		default:
		}
		<-w.dying
		return
	}
}

// recoverWorker runs the redial/restore/replay loop for one failure
// incident, paced by the backoff and bounded by the retry budget.
// Returns false when the worker must be abandoned.
func (m *Machine) recoverWorker(w *remoteWorker) bool {
	r := m.remote
	if r.opts.Redial == nil {
		return false
	}
	for {
		if r.closing.Load() || m.Fault() != nil {
			return false
		}
		delay, ok := w.sup.NextAttempt()
		if !ok {
			return false
		}
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-w.dying:
			t.Stop()
			return false
		}
		tr, err := r.opts.Redial(w.id)
		if err != nil {
			continue
		}
		if m.resumeWorker(w, tr) {
			return true
		}
	}
}

// resumeWorker runs the resumable-session handshake over a fresh
// transport: hello with ResumeSession, ship the stored checkpoint, await
// the worker's ack, then rewind the journal cursor and spawn a new
// connection incarnation that replays everything after the checkpoint.
func (m *Machine) resumeWorker(w *remoteWorker, t remote.Transport) bool {
	r := m.remote
	conn := remote.NewConn(t)
	w.epoch.Add(1)
	deadline := time.Now().Add(m.remoteHandshakeTimeout())
	conn.SetWriteDeadline(deadline)
	err := conn.SendHello(m.remoteHello(w, true))
	if err == nil {
		_, err = conn.AwaitWelcome(deadline)
	}
	var ckGate int64
	if err == nil {
		w.mu.Lock()
		ck := append([]byte(nil), w.ckpt...)
		ckGate = w.ckptGate
		w.mu.Unlock()
		err = conn.WriteFrame(remote.FCheckpoint, ck)
		if err == nil {
			err = conn.Flush()
		}
	}
	if err == nil {
		conn.SetReadDeadline(deadline)
		var f remote.Frame
		f, err = conn.ReadFrame()
		if err == nil && f.Type != remote.FCheckpointAck {
			err = fmt.Errorf("%s frame while awaiting resume ack", remote.FrameName(f.Type))
		}
		if err == nil {
			var ackT int64
			ackT, err = remote.DecodeTime(f.Payload)
			if err == nil && ackT != ckGate {
				err = fmt.Errorf("resume ack for gate %d, want %d", ackT, ckGate)
			}
		}
	}
	conn.SetWriteDeadline(time.Time{})
	if err != nil {
		conn.Close()
		w.wireAgg.Add(conn.Stats())
		return false
	}

	// Restored: rewind the send cursor to the journal base (the journal
	// is truncated exactly to the stored checkpoint) and re-send the
	// highest gate ever issued behind the replay, so a gate that was
	// truncated with its batches still produces a watermark.
	w.mu.Lock()
	w.conn = conn
	w.cursor = w.jBase
	if w.maxGateEver > 0 {
		w.journal = append(w.journal, wireMsg{kind: remote.FGate, gate: w.maxGateEver})
	}
	replayed := int64(0)
	for i := range w.journal {
		if w.journal[i].kind == remote.FEvents {
			replayed++
		}
	}
	w.stopSend = make(chan struct{})
	w.sendDone = make(chan struct{})
	w.recvDone = make(chan struct{})
	stopSend, sendDone, recvDone := w.stopSend, w.sendDone, w.recvDone
	skip := make([]int64, len(w.shards))
	copy(skip, w.delivered)
	w.mu.Unlock()

	w.hbStall.Store(false)
	w.lastHeard.Store(time.Now().UnixNano())
	r.reconnects.Add(1)
	r.replayedBatches.Add(replayed)
	m.spawnConnGoroutines(w, conn, stopSend, sendDone, recvDone, skip)
	w.sup.Recovered()
	m.remoteIncident(w, "recovered",
		fmt.Sprintf("epoch %d, replaying %d batches", w.epoch.Load(), replayed))
	return true
}

// adoptWorker migrates an abandoned worker's shards into the parent:
// rebuild each shard's timing state from the stored checkpoint, replay
// the journal's event batches into the local heaps, and let the manager
// process them through the shared applyMemEvent path from here on. The
// replies the dead worker already delivered are suppressed by count, so
// the rings see the sequence exactly once. Manager goroutine only.
func (m *Machine) adoptWorker(w *remoteWorker) {
	r := m.remote
	w.mu.Lock()
	ck := append([]byte(nil), w.ckpt...)
	journal := append([]wireMsg(nil), w.journal...)
	w.mu.Unlock()
	dec, err := remote.DecodeCheckpoint(ck)
	if err != nil {
		m.setFault(&SimError{
			Core: w.faultTarget(), Op: "remote-adopt", Scheme: m.scheme,
			GlobalTime: m.global.Load(),
			Detail:     fmt.Sprintf("%s: stored checkpoint unusable: %v", w.name(), err),
		})
		return
	}
	w.adoptedFlag = true
	w.mark.v.Store(math.MaxInt64)
	for i := range dec.Shards {
		sc := &dec.Shards[i]
		pos := w.shardPos(sc.Shard)
		if pos < 0 || sc.Shard >= r.n {
			continue
		}
		l2, lerr := cache.NewL2System(m.cfg.Cache)
		if lerr != nil {
			m.setFault(&SimError{
				Core: w.faultTarget(), Op: "remote-adopt", Scheme: m.scheme,
				Detail: fmt.Sprintf("shard %d: %v", sc.Shard, lerr),
			})
			return
		}
		if len(sc.L2) > 0 {
			if rerr := l2.RestoreState(sc.L2); rerr != nil {
				m.setFault(&SimError{
					Core: w.faultTarget(), Op: "remote-adopt", Scheme: m.scheme,
					Detail: fmt.Sprintf("shard %d: %v", sc.Shard, rerr),
				})
				return
			}
		}
		as := &adoptedShard{idx: sc.Shard, l2: l2, skip: w.delivered[pos]}
		for _, ev := range sc.Pending {
			as.gq.Push(ev)
		}
		r.adopted[sc.Shard] = as
		r.nAdopted++
	}
	replayed := int64(0)
	for i := range journal {
		e := &journal[i]
		if e.kind != remote.FEvents {
			continue
		}
		if as := r.adopted[e.shard]; as != nil {
			for _, ev := range e.evs {
				as.gq.Push(ev)
			}
			replayed++
		}
	}
	// The checkpoint's event count is work the lost worker completed that
	// no FStats frame will ever report; the journal replay re-counts the
	// rest as the manager processes it locally.
	m.evShard.Add(dec.Events)
	r.replayedBatches.Add(replayed)
	r.migrated.Add(int64(len(dec.Shards)))
	m.remoteIncident(w, "adopted",
		fmt.Sprintf("%d shard(s) migrated in-process", len(dec.Shards)))
}

// adoptAbandonedWorkers migrates the shards of every newly abandoned
// worker (manager goroutine; cheap no-op scan in the common case).
func (m *Machine) adoptAbandonedWorkers() {
	for _, w := range m.remote.workers {
		if !w.adoptedFlag && w.sup.State() == remote.SupAbandoned {
			m.adoptWorker(w)
		}
	}
}

// processAdoptedShards pops every adopted shard's queued events below
// bound through the shared timing path — the in-process continuation of
// the dead worker's processAndReply, reply-order identical. Must run
// inside the manager's notify batch.
func (m *Machine) processAdoptedShards(bound int64) bool {
	r := m.remote
	if r.nAdopted == 0 {
		return false
	}
	processed := false
	for sh, as := range r.adopted {
		if as == nil {
			continue
		}
		n := int64(0)
		for {
			top := as.gq.Peek()
			if top == nil || top.Time >= bound {
				break
			}
			ev := as.gq.Pop()
			applyMemEvent(as.l2, func(core int, out event.Event) {
				if as.skip > 0 {
					as.skip--
					return
				}
				out.Core = int32(core)
				r.out[sh][core].MustPush(out)
				m.deferNotify(core)
			}, ev)
			n++
		}
		if n > 0 {
			m.evShard.Add(n)
			processed = true
		}
	}
	return processed
}

// routeOutQRemote drains core i's OutQ: system calls to the manager's
// GQ, memory traffic to its shard's staging buffer (flushed to the wire
// at the end of the drain).
func (m *Machine) routeOutQRemote(i int) bool {
	m.drainBuf = m.outQ[i].PopBatch(m.drainBuf[:0])
	for j := range m.drainBuf {
		ev := m.drainBuf[j]
		if ev.Kind == event.KSyscall {
			m.gq.Push(ev)
			continue
		}
		sh := m.remoteShardOf(ev.Addr)
		m.remote.stage[sh] = append(m.remote.stage[sh], ev)
	}
	return len(m.drainBuf) > 0
}

// drainAndRouteRemote is the remote analog of drainAndRouteDirty plus
// the wire flush: dirty OutQs are drained and routed, then each shard's
// staged batch is journaled for its worker's sender — or, for a shard
// already migrated in-process, pushed straight into its local heap. The
// journaled slices' ownership transfers to the journal, so those stage
// slots are reset to nil rather than reused.
func (m *Machine) drainAndRouteRemote() bool {
	moved := false
	for w := range m.outDirty {
		set := m.outDirty[w].v.Swap(0)
		for set != 0 {
			i := w<<6 | bits.TrailingZeros64(set)
			set &= set - 1
			moved = m.routeOutQRemote(i) || moved
		}
	}
	for sh, evs := range m.remote.stage {
		if len(evs) == 0 {
			continue
		}
		if as := m.remote.adopted[sh]; as != nil {
			for i := range evs {
				as.gq.Push(evs[i])
			}
			m.remote.stage[sh] = evs[:0]
			continue
		}
		wk := m.remote.workers[m.remote.owner[sh]]
		wk.enqueue(wireMsg{kind: remote.FEvents, shard: sh, evs: evs})
		m.remote.stage[sh] = nil
	}
	return moved
}

// waitRemoteWatermarks blocks until every live worker has acknowledged
// processing through allowed — the remote waitWatermarks. The total
// wait is bounded by twice the stall timeout: one stall window for an
// undisturbed worker, and another for the supervisor's recovery to
// complete behind it. A worker abandoned mid-wait has its shards
// migrated here, after which the wait no longer applies to it.
func (m *Machine) waitRemoteWatermarks(allowed int64) {
	var deadline *time.Timer
	for _, w := range m.remote.workers {
		if w.adoptedFlag {
			continue
		}
		for w.mark.v.Load() < allowed && !m.done.Load() {
			if w.sup.State() == remote.SupAbandoned {
				m.adoptWorker(w)
				break
			}
			if deadline == nil {
				deadline = time.NewTimer(2 * m.stallTimeout())
				defer deadline.Stop()
			}
			select {
			case <-w.markCh:
				// Re-check the mark (or notice an abandonment); stale
				// wakeups are harmless.
			case <-deadline.C:
				m.setFault(&SimError{
					Core:   w.faultTarget(),
					Op:     "remote-watermark",
					Scheme: m.scheme, GlobalTime: m.global.Load(), SimTime: allowed,
					Detail: fmt.Sprintf("%s: no watermark for gate %d within %v (last %d, supervisor %v, %d reconnects)",
						w.name(), allowed, 2*m.stallTimeout(), w.mark.v.Load(), w.sup.State(), w.sup.Reconnects()),
				})
				return
			}
		}
	}
}

// runRemoteManager mirrors runShardedManager round for round; only the
// shard transport differs (wire instead of shared-memory rings).
func (m *Machine) runRemoteManager(s Scheme) {
	r := m.remote
	conservative := s.Conservative()
	if !conservative {
		// Optimistic schemes process on arrival: one unbounded gate up
		// front, no watermark synchronisation after.
		for _, w := range r.workers {
			w.enqueue(wireMsg{kind: remote.FGate, gate: math.MaxInt64})
			w.lastGate = math.MaxInt64
			r.wireTW.Instant(trace.KWireSend, trace.WireFlowID(w.id, math.MaxInt64))
		}
	}

	ad := adaptState{window: s.Window}
	idleRounds := 0
	prodStreak := 0
	parkT := time.Duration(0)
	lastChange := time.Now()
	lastGlobal := int64(-1)
	mw := m.mgrTW
	measure := m.met != nil
	lastWindow := ad.window
	lastBarrier := int64(0)
	fi := newInjected(m.fiMgr)
	fiWire := newInjected(m.fiWire)
	for !m.done.Load() {
		var t0 time.Time
		if measure {
			t0 = time.Now()
		}
		ps := mw.Begin()
		evBefore := m.evProcessed
		epoch := m.mgrEpoch.v.Load()
		// Min-before-drain, as in every manager: the bound must not pass
		// events still in flight toward the queues.
		g := m.globalMin()
		if measure {
			m.noteStraggler()
		}
		if fi != nil {
			applyPanicFaults(fi, g, "manager")
		}
		m.applyWireFaults(fiWire, g)
		m.adoptAbandonedWorkers()
		moved := m.drainAndRouteRemote()
		if g >= m.cfg.MaxCycles {
			m.aborted = true
			m.done.Store(true)
			break
		}

		var processed bool
		m.beginNotifyBatch()
		if conservative {
			allowed := g
			if s.Kind == Quantum {
				allowed = quantumBarrier(g, s.Window)
				if allowed > lastBarrier {
					lastBarrier = allowed
					mw.Instant(trace.KBarrier, allowed)
					if measure {
						m.met.barriers.Inc()
					}
				}
			}
			if allowed > 0 {
				// Batches went out in drainAndRouteRemote, before this
				// gate — in-order delivery then gives the worker every
				// event below allowed before it sees the gate, which is
				// the shared-memory driver's push-then-raise order.
				for _, w := range r.workers {
					if !w.adoptedFlag && allowed > w.lastGate {
						w.lastGate = allowed
						w.enqueue(wireMsg{kind: remote.FGate, gate: allowed})
						// Flow-event anchor: the worker's FGate receive records
						// a KWireRecv with the identical flow id, and the merge
						// pairs them into an s/f arrow across the processes.
						r.wireTW.Instant(trace.KWireSend, trace.WireFlowID(w.id, allowed))
					}
				}
				m.waitRemoteWatermarks(allowed)
				if m.processAdoptedShards(allowed) {
					processed = true
				}
				if m.processConservative(allowed) {
					processed = true
				}
				m.noteProcBound(allowed)
			}
		} else {
			if m.processAdoptedShards(math.MaxInt64) {
				processed = true
			}
			if s.Kind == Adaptive {
				if m.processAllCounting(&ad) {
					processed = true
				}
				ad.adapt(g)
				if ad.window != lastWindow {
					lastWindow = ad.window
					mw.Count(trace.KWindow, ad.window)
					mw.Instant(trace.KPhase, ad.window)
					if measure {
						m.met.adaptResizes.Inc()
					}
				}
			} else {
				if m.processAll() {
					processed = true
				}
			}
		}
		m.flushNotifyBatch()
		if processed {
			mw.Span(trace.KProcess, ps, m.evProcessed-evBefore)
			mw.Count(trace.KQDepth, int64(m.gq.Len()))
			if measure {
				m.met.gqDepth.Observe(int64(m.gq.Len()))
			}
		}
		if m.introOn {
			m.liveGQ.Store(int64(m.gq.Len()))
		}

		// Publish global only after the pass's replies — including the
		// remote watermark wait — so cores can use it as a safe
		// fast-forward horizon.
		if g > m.global.Load() {
			m.global.Store(g)
			mw.Count(trace.KGlobal, g)
			if measure {
				m.met.globalAdv.Inc()
			}
		}

		changed := m.updateWindows(s, g, &ad)
		if changed && measure {
			m.met.windowSlides.Inc()
		}

		// No certain-deadlock detection here: events and replies in
		// flight on the wire are invisible to the queue emptiness check,
		// so a kernel-deadlock verdict could be premature. The stall
		// watchdog below (and the watermark deadline above) carry the
		// liveness guarantee instead.

		if moved || processed || changed || g != lastGlobal {
			// 1-in-32 watchdog stamp during hot streaks; the idle→productive
			// transition always stamps (see managerLoop in parallel.go).
			if idleRounds != 0 || prodStreak&31 == 0 {
				lastChange = time.Now()
			}
			prodStreak++
			idleRounds = 0
			parkT = 0
			lastGlobal = g
			if measure {
				m.mgrBusyNS += time.Since(t0).Nanoseconds()
			}
			continue
		}
		prodStreak = 0
		idleRounds++
		if idleRounds > 4 {
			if m.mgrIdleWait(epoch, nextParkTimeout(&parkT)) {
				if wait := time.Since(lastChange); wait > m.stallTimeout() {
					m.aborted = true
					m.setFault(&StallError{Wait: wait, Report: m.snapshot(true, wait)})
					break
				}
			}
		}
		if idleRounds&1023 == 0 && time.Since(lastChange) > m.stallTimeout() {
			wait := time.Since(lastChange)
			m.aborted = true
			m.setFault(&StallError{Wait: wait, Report: m.snapshot(true, wait)})
			break
		}
	}
	m.wakeAll()
}

// applyWireFaults fires due wire-level chaos faults against the global
// time: each targets the connection of the worker owning the named
// shard. The injection itself is benign bookkeeping — everything
// interesting happens in the recovery machinery it provokes.
func (m *Machine) applyWireFaults(inj *injected, clock int64) {
	if inj == nil {
		return
	}
	r := m.remote
	for idx := range inj.faults {
		f := &inj.faults[idx]
		if inj.fired[idx] || clock < f.At {
			continue
		}
		inj.fired[idx] = true
		s, ok := faultinject.IsShard(f.Core)
		if !ok || s >= r.n {
			continue
		}
		w := r.workers[r.owner[s]]
		switch f.Kind {
		case faultinject.ConnDrop:
			w.currentConn().Close()
		case faultinject.HeartbeatStall:
			w.hbStall.Store(true)
		case faultinject.FrameCorrupt:
			w.currentConn().InjectRecvCorrupt()
		case faultinject.WorkerKill:
			if r.opts.Kill != nil {
				r.opts.Kill(w.id) //nolint:errcheck // dead-already is fine
			} else {
				w.currentConn().Close()
			}
		}
	}
}

// remoteShutdown winds the wire down after the run: finish every live
// worker, let its supervisor reel in the connection (collecting stats on
// the way), and fold everything into the result. Called after the core
// goroutines have joined, on both the clean and the faulted path.
func (m *Machine) remoteShutdown() {
	r := m.remote
	if r.workers == nil {
		return
	}
	r.closing.Store(true)
	for _, w := range r.workers {
		if !w.adoptedFlag && w.sup.State() != remote.SupAbandoned {
			w.enqueue(wireMsg{kind: remote.FFinish})
		}
		close(w.dying)
	}
	for _, w := range r.workers {
		<-w.supDone
	}
	for _, w := range r.workers {
		r.wireParent.Add(w.wireAgg)
		if !w.gotStats {
			continue
		}
		r.statsOK++
		r.wireWorkers.Add(w.stats.Wire)
		m.evShard.Add(w.stats.Events)
		for _, sl := range w.stats.L2 {
			if sl.Shard >= 0 && sl.Shard < r.n {
				r.l2stats[sl.Shard] = sl.Stats
			}
		}
		// Federation: the worker's final registry snapshot lands under
		// its "worker<i>." prefix, and its ring-drop counts become
		// counters plus the once-per-worker stderr warning.
		if m.met != nil && w.stats.Metrics != nil {
			m.met.reg.Fold(fmt.Sprintf("worker%d.", w.id), *w.stats.Metrics)
		}
		m.warnWorkerDropped(w, w.stats.TraceDropped)
	}
	for sh, as := range r.adopted {
		if as != nil {
			r.l2stats[sh] = as.l2.Stats
		}
	}
}

// RemoteWireStats is the Result's wire-traffic section for a remote run:
// the parent's connection counters and the sum of the workers' (as
// reported in their FStats frames).
type RemoteWireStats struct {
	Parent  remote.WireStats `json:"parent"`
	Workers remote.WireStats `json:"workers"`
}

// remoteWire returns the run's wire stats (nil for non-remote runs).
func (m *Machine) remoteWire() *RemoteWireStats {
	if m.remote == nil || m.remote.workers == nil {
		return nil
	}
	return &RemoteWireStats{Parent: m.remote.wireParent, Workers: m.remote.wireWorkers}
}

// remoteRecovery returns the run's recovery stats (nil for non-remote
// runs). Safe from any goroutine — atomics only.
func (m *Machine) remoteRecovery() *RecoveryStats {
	if m.remote == nil || m.remote.workers == nil {
		return nil
	}
	r := m.remote
	return &RecoveryStats{
		Reconnects:       r.reconnects.Load(),
		ReplayedBatches:  r.replayedBatches.Load(),
		Checkpoints:      r.checkpoints.Load(),
		CheckpointBytes:  r.checkpointBytes.Load(),
		AbandonedWorkers: r.abandoned.Load(),
		MigratedShards:   r.migrated.Load(),
	}
}

// RemoteWorkerReport is one worker's supervision state inside a
// StallReport or introspection snapshot.
type RemoteWorkerReport struct {
	ID         int    `json:"id"`
	State      string `json:"state"`
	Shards     []int  `json:"shards"`
	Mark       int64  `json:"mark"`
	Reconnects int64  `json:"reconnects"`
	Epoch      int64  `json:"epoch"`
}

// remoteWorkerReports snapshots every worker's supervision state from
// atomics only — safe from any goroutine, shared by the forensic
// snapshot and the introspection server.
func (m *Machine) remoteWorkerReports() []RemoteWorkerReport {
	if m.remote == nil || m.remote.workers == nil {
		return nil
	}
	out := make([]RemoteWorkerReport, 0, len(m.remote.workers))
	for _, w := range m.remote.workers {
		out = append(out, RemoteWorkerReport{
			ID:         w.id,
			State:      w.sup.State().String(),
			Shards:     w.shards,
			Mark:       w.mark.v.Load(),
			Reconnects: w.sup.Reconnects(),
			Epoch:      w.epoch.Load(),
		})
	}
	return out
}
