package core

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"sync"
	"time"

	"slacksim/internal/cache"
	"slacksim/internal/event"
	"slacksim/internal/faultinject"
	"slacksim/internal/remote"
	"slacksim/internal/trace"
)

// This file is the parent side of the distributed remote-shard backend
// (ROADMAP item 3): the memory-hierarchy shards of the sharded manager
// (sharded.go) move into separate OS processes, coordinated over the
// internal/remote wire protocol. The parent keeps everything whose state
// is shared — the core loops (which read and write the functional memory
// image directly), the kernel, the global time and the window pacing —
// and the workers keep what is private per shard: the timing-only
// L2/directory state, which carries no data (see internal/cache's
// package doc).
//
// Determinism is inherited from the in-process sharded driver. The round
// structure is the same: the global-time candidate is read before the
// OutQ drain, so every event below it is routed this round; batches are
// written to a worker's connection before the gate frame, and TCP
// preserves order, so a worker that has seen gate=allowed has every
// event below allowed queued; the worker writes all its reply batches
// before the watermark, so a parent that has seen watermark >= allowed
// has every reply below allowed in the cores' rings before it raises any
// window. The wire adds only host latency — which a slack window of s
// cycles absorbs exactly as it absorbs host scheduling jitter.

// remoteState is the per-machine distributed plumbing (nil unless
// Config.RemoteShards > 0). The reply rings exist from NewMachine (they
// are part of coreRings); the workers are attached by RunRemoteSharded.
type remoteState struct {
	n   int
	out [][]*event.Ring // shard s -> core i reply rings (recv goroutines produce)

	workers []*remoteWorker
	owner   []int // shard index -> worker index

	// stage accumulates the current round's routed events per shard
	// (manager goroutine only).
	stage [][]event.Event

	// Results folded back from the workers' FStats at shutdown.
	l2stats     []cache.L2Stats // per shard
	wireParent  remote.WireStats
	wireWorkers remote.WireStats
	statsOK     int // workers whose stats arrived
}

func newRemoteState(cfg Config) *remoteState {
	r := &remoteState{n: cfg.RemoteShards}
	for s := 0; s < r.n; s++ {
		rings := make([]*event.Ring, cfg.NumCores)
		for c := range rings {
			rings[c] = event.NewRing(cfg.RingCap)
			rings[c].SetName(fmt.Sprintf("remote%d.c%d", s, c))
		}
		r.out = append(r.out, rings)
	}
	r.stage = make([][]event.Event, r.n)
	r.l2stats = make([]cache.L2Stats, r.n)
	return r
}

// wireMsg is one unit of work for a connection's sender goroutine.
type wireMsg struct {
	kind  byte // remote.FEvents, remote.FGate, remote.FFinish
	shard int
	evs   []event.Event
	gate  int64
}

// remoteWorker is the parent's handle on one worker process.
type remoteWorker struct {
	id     int
	conn   *remote.Conn
	shards []int

	sendCh   chan wireMsg
	sendDone chan struct{}
	recvDone chan struct{}
	// markCh wakes the manager's watermark wait (cap-1, non-blocking
	// send by the recv goroutine after each mark store). A blocking wait
	// matters: a Gosched spin would keep the scheduler from parking in
	// netpoll, and on a host with few CPUs every wire round trip would
	// then cost a sysmon tick (~10ms) instead of a wire RTT.
	markCh chan struct{}

	// mark is the worker's last acknowledged gate (recv goroutine
	// writes, manager spins on it in waitRemoteWatermarks).
	mark padded
	// lastGate is the highest gate the manager has enqueued (manager
	// goroutine only).
	lastGate int64

	stats    remote.WorkerStats
	gotStats bool // recv goroutine writes before closing recvDone
}

func (w *remoteWorker) faultTarget() int { return faultinject.ShardWorker(w.shards[0]) }

func (w *remoteWorker) name() string { return fmt.Sprintf("worker %d (shards %v)", w.id, w.shards) }

// remoteShardOf routes addr to its owning shard — the same bank-mod rule
// as the in-process driver, computed against the parent's own L2
// instance (bank geometry is pure configuration).
func (m *Machine) remoteShardOf(addr uint64) int {
	return m.l2.BankOf(addr) % m.remote.n
}

// remoteHandshakeTimeout bounds how long the parent waits for a worker's
// Welcome; a worker that never completes the handshake fails the run with
// a contained SimError instead of stalling it for the full watchdog
// window.
func (m *Machine) remoteHandshakeTimeout() time.Duration {
	t := m.stallTimeout()
	if t > 30*time.Second {
		t = 30 * time.Second
	}
	return t
}

// RunRemoteSharded executes the simulation with the memory-hierarchy
// shards hosted by remote worker processes, one per transport (TCP
// connections to slackworker processes, or any other Transport). The
// machine must have been built with Config.RemoteShards > 0; shards are
// distributed round-robin over the transports. The round structure,
// pacing, and determinism guarantees mirror the in-process sharded
// driver: a remote run is bit-exact against ManagerShards =
// RemoteShards for every conservative scheme.
func (m *Machine) RunRemoteSharded(s Scheme, transports []remote.Transport) (*Result, error) {
	if m.remote == nil {
		return nil, fmt.Errorf("core: RunRemoteSharded requires Config.RemoteShards > 0")
	}
	if len(transports) < 1 || len(transports) > m.remote.n {
		return nil, fmt.Errorf("core: %d worker connections for %d shards (need 1..%d)", len(transports), m.remote.n, m.remote.n)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	m.scheme = s
	sc := s
	m.schemeLive.Store(&sc)
	start := time.Now()
	m.captureHostMem()

	if err := m.remoteConnect(transports); err != nil {
		return nil, err
	}

	init := s.maxLocal(0)
	for i := range m.maxLocal {
		m.maxLocal[i].v.Store(init)
	}

	// Same containment umbrella as RunParallel: cores, the per-connection
	// send/recv goroutines, and the manager all convert panics into a
	// recorded SimError and a clean join.
	var wg sync.WaitGroup
	for i := range m.cores {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer m.containPanic(i, "core-loop")
			m.coreLoop(i)
		}(i)
	}
	func() {
		defer m.containPanic(faultinject.Manager, "manager")
		m.runRemoteManager(s)
	}()
	m.wakeAll()
	wg.Wait()
	m.remoteShutdown()
	if err := m.takeFault(); err != nil {
		return nil, err
	}
	// Straggler events (pushed after done) are finalized locally against
	// the parent's own hierarchy instance, exactly as the in-process
	// sharded driver does.
	func() {
		defer m.containPanic(faultinject.Manager, "final-drain")
		m.drainOutQs()
		m.processAll()
	}()
	if err := m.takeFault(); err != nil {
		return nil, err
	}
	return m.result(time.Since(start)), nil
}

// remoteConnect performs the versioned handshake with every worker and
// spawns its send/recv goroutines. Any failure — refusal, version
// mismatch, silence past the deadline — closes every connection and
// returns a SimError naming the worker.
func (m *Machine) remoteConnect(transports []remote.Transport) error {
	r := m.remote
	nw := len(transports)
	r.owner = make([]int, r.n)
	r.workers = make([]*remoteWorker, nw)
	for wi := 0; wi < nw; wi++ {
		w := &remoteWorker{
			id:       wi,
			conn:     remote.NewConn(transports[wi]),
			sendCh:   make(chan wireMsg, 256),
			sendDone: make(chan struct{}),
			recvDone: make(chan struct{}),
			markCh:   make(chan struct{}, 1),
		}
		for sh := wi; sh < r.n; sh += nw {
			w.shards = append(w.shards, sh)
			r.owner[sh] = wi
		}
		r.workers[wi] = w
	}
	deadline := time.Now().Add(m.remoteHandshakeTimeout())
	for _, w := range r.workers {
		hello := &remote.Hello{
			WorkerID:       w.id,
			Shards:         w.shards,
			NumShards:      r.n,
			NumCores:       m.cfg.NumCores,
			Cache:          m.cfg.Cache,
			StallTimeoutMS: m.stallTimeout().Milliseconds(),
		}
		// The write deadline covers a peer that never reads (SendHello
		// flushes); cleared after the handshake — the sender goroutine
		// re-arms its own per frame.
		w.conn.SetWriteDeadline(deadline)
		err := w.conn.SendHello(hello)
		if err == nil {
			_, err = w.conn.AwaitWelcome(deadline)
		}
		w.conn.SetWriteDeadline(time.Time{})
		if err != nil {
			for _, o := range r.workers {
				o.conn.Close()
			}
			return &SimError{
				Core:   w.faultTarget(),
				Op:     "remote-handshake",
				Scheme: m.scheme,
				Detail: fmt.Sprintf("%s: %v", w.name(), err),
			}
		}
	}
	for _, w := range r.workers {
		w := w
		go func() {
			defer close(w.sendDone)
			defer m.containPanic(w.faultTarget(), "remote-send")
			m.remoteSender(w)
		}()
		go func() {
			defer close(w.recvDone)
			defer m.containPanic(w.faultTarget(), "remote-recv")
			m.remoteReceiver(w)
		}()
	}
	return nil
}

// remoteSender drains a worker's outbound queue onto its connection.
// Frames are flushed when the queue momentarily empties — the natural
// round boundary (the gate is the last frame the manager enqueues), and
// the only batching rule the optimistic schemes need (their event
// batches are not followed by gates). A write failure records a
// contained disconnect fault; the sender then keeps draining (and
// discarding) so the manager never blocks on a dead worker's queue.
func (m *Machine) remoteSender(w *remoteWorker) {
	dead := false
	for msg := range w.sendCh {
		if dead {
			continue
		}
		w.conn.SetWriteDeadline(time.Now().Add(m.stallTimeout()))
		var err error
		switch msg.kind {
		case remote.FEvents:
			err = w.conn.SendBatch(remote.FEvents, msg.shard, msg.evs)
		case remote.FGate:
			err = w.conn.SendTime(remote.FGate, msg.gate)
		case remote.FFinish:
			err = w.conn.WriteFrame(remote.FFinish, nil)
		}
		if err == nil && len(w.sendCh) == 0 {
			err = w.conn.Flush()
		}
		if err != nil {
			dead = true
			if !m.done.Load() {
				m.setFault(&SimError{
					Core:   w.faultTarget(),
					Op:     "remote-send",
					Scheme: m.scheme, GlobalTime: m.global.Load(), SimTime: m.global.Load(),
					Detail: fmt.Sprintf("%s: write failed: %v", w.name(), err),
				})
			}
		}
	}
}

// remoteReceiver consumes a worker's inbound stream: reply batches into
// the per-shard per-core rings (this goroutine is each ring's single
// producer), watermarks into the worker's mark, errors into the run's
// fault slot, stats into the worker handle. Read deadlines are re-armed
// on expiry — silence is only an error for the manager's watermark wait,
// which knows how long it has been waiting; here a timeout is just an
// opportunity to notice the run ended.
func (m *Machine) remoteReceiver(w *remoteWorker) {
	var scratch []event.Event
	for {
		w.conn.SetReadDeadline(time.Now().Add(m.stallTimeout()))
		f, err := w.conn.ReadFrame()
		if err != nil {
			if remote.IsTimeout(err) {
				if m.done.Load() {
					return
				}
				continue
			}
			if !m.done.Load() {
				m.setFault(&SimError{
					Core:   w.faultTarget(),
					Op:     "remote-recv",
					Scheme: m.scheme, GlobalTime: m.global.Load(), SimTime: m.global.Load(),
					Detail: fmt.Sprintf("%s: connection lost: %v", w.name(), err),
				})
			}
			return
		}
		switch f.Type {
		case remote.FReplies:
			shard, evs, derr := w.conn.DecodeEvents(f.Payload, scratch[:0])
			if derr != nil || shard >= m.remote.n {
				m.setFault(&SimError{
					Core:   w.faultTarget(),
					Op:     "remote-recv",
					Scheme: m.scheme, GlobalTime: m.global.Load(), SimTime: m.global.Load(),
					Detail: fmt.Sprintf("%s: bad reply batch (shard %d): %v", w.name(), shard, derr),
				})
				return
			}
			scratch = evs[:0]
			for i := range evs {
				core := int(evs[i].Core)
				m.remote.out[shard][core].MustPush(evs[i])
				m.notifyCore(core)
			}
			m.bumpMgrEpoch()
		case remote.FWatermark:
			t, derr := remote.DecodeTime(f.Payload)
			if derr != nil {
				m.setFault(&SimError{
					Core: w.faultTarget(), Op: "remote-recv", Scheme: m.scheme,
					Detail: fmt.Sprintf("%s: bad watermark: %v", w.name(), derr),
				})
				return
			}
			if t > w.mark.v.Load() {
				w.mark.v.Store(t)
				select {
				case w.markCh <- struct{}{}:
				default:
				}
			}
		case remote.FError:
			se := &SimError{
				Core: w.faultTarget(), Op: "remote-worker", Scheme: m.scheme,
				GlobalTime: m.global.Load(),
			}
			if jerr := json.Unmarshal(f.Payload, se); jerr != nil {
				se.Detail = fmt.Sprintf("%s: unparseable error frame: %s", w.name(), f.Payload)
			}
			// The worker's own scheme field is zero — it paces nothing —
			// so stamp the run's.
			se.Scheme = m.scheme
			m.setFault(se)
			return
		case remote.FStats:
			var st remote.WorkerStats
			if json.Unmarshal(f.Payload, &st) == nil {
				w.stats = st
				w.gotStats = true
			}
		case remote.FBye:
			return
		default:
			m.setFault(&SimError{
				Core: w.faultTarget(), Op: "remote-recv", Scheme: m.scheme,
				Detail: fmt.Sprintf("%s: unexpected %s frame", w.name(), remote.FrameName(f.Type)),
			})
			return
		}
	}
}

// routeOutQRemote drains core i's OutQ: system calls to the manager's
// GQ, memory traffic to its shard's staging buffer (flushed to the wire
// at the end of the drain).
func (m *Machine) routeOutQRemote(i int) bool {
	m.drainBuf = m.outQ[i].PopBatch(m.drainBuf[:0])
	for j := range m.drainBuf {
		ev := m.drainBuf[j]
		if ev.Kind == event.KSyscall {
			m.gq.Push(ev)
			continue
		}
		sh := m.remoteShardOf(ev.Addr)
		m.remote.stage[sh] = append(m.remote.stage[sh], ev)
	}
	return len(m.drainBuf) > 0
}

// drainAndRouteRemote is the remote analog of drainAndRouteDirty plus
// the wire flush: dirty OutQs are drained and routed, then each shard's
// staged batch is handed to its worker's sender. The staged slices'
// ownership transfers to the sender goroutine, so the stage slot is
// reset to nil rather than reused.
func (m *Machine) drainAndRouteRemote() bool {
	moved := false
	for w := range m.outDirty {
		set := m.outDirty[w].v.Swap(0)
		for set != 0 {
			i := w<<6 | bits.TrailingZeros64(set)
			set &= set - 1
			moved = m.routeOutQRemote(i) || moved
		}
	}
	for sh, evs := range m.remote.stage {
		if len(evs) == 0 {
			continue
		}
		wk := m.remote.workers[m.remote.owner[sh]]
		wk.sendCh <- wireMsg{kind: remote.FEvents, shard: sh, evs: evs}
		m.remote.stage[sh] = nil
	}
	return moved
}

// waitRemoteWatermarks blocks until every worker has acknowledged
// processing through allowed — the remote waitWatermarks. Unlike the
// in-process wait, it carries its own deadline: an in-process shard
// worker cannot die silently (a panic is contained and sets done), but a
// remote worker can hang without closing its connection, and the parent
// must then surface a contained SimError naming it, never hang.
func (m *Machine) waitRemoteWatermarks(allowed int64) {
	var deadline *time.Timer
	for _, w := range m.remote.workers {
		for w.mark.v.Load() < allowed && !m.done.Load() {
			if deadline == nil {
				deadline = time.NewTimer(m.stallTimeout())
				defer deadline.Stop()
			}
			select {
			case <-w.markCh:
				// Re-check the mark; stale wakeups are harmless.
			case <-w.recvDone:
				// The receiver is gone. Either it recorded a fault (done is
				// set, the loop condition exits) or the stream ended early
				// without one — which mid-gate is itself a fault.
				if w.mark.v.Load() < allowed && !m.done.Load() {
					m.setFault(&SimError{
						Core:   w.faultTarget(),
						Op:     "remote-watermark",
						Scheme: m.scheme, GlobalTime: m.global.Load(), SimTime: allowed,
						Detail: fmt.Sprintf("%s: stream ended before watermark for gate %d (last %d)",
							w.name(), allowed, w.mark.v.Load()),
					})
				}
				return
			case <-deadline.C:
				m.setFault(&SimError{
					Core:   w.faultTarget(),
					Op:     "remote-watermark",
					Scheme: m.scheme, GlobalTime: m.global.Load(), SimTime: allowed,
					Detail: fmt.Sprintf("%s: no watermark for gate %d within %v (last %d)",
						w.name(), allowed, m.stallTimeout(), w.mark.v.Load()),
				})
				return
			}
		}
	}
}

// runRemoteManager mirrors runShardedManager round for round; only the
// shard transport differs (wire instead of shared-memory rings).
func (m *Machine) runRemoteManager(s Scheme) {
	r := m.remote
	conservative := s.Conservative()
	if !conservative {
		// Optimistic schemes process on arrival: one unbounded gate up
		// front, no watermark synchronisation after.
		for _, w := range r.workers {
			w.sendCh <- wireMsg{kind: remote.FGate, gate: math.MaxInt64}
			w.lastGate = math.MaxInt64
		}
	}

	ad := adaptState{window: s.Window}
	idleRounds := 0
	prodStreak := 0
	parkT := time.Duration(0)
	lastChange := time.Now()
	lastGlobal := int64(-1)
	mw := m.mgrTW
	measure := m.met != nil
	lastWindow := ad.window
	lastBarrier := int64(0)
	fi := newInjected(m.fiMgr)
	for !m.done.Load() {
		var t0 time.Time
		if measure {
			t0 = time.Now()
		}
		ps := mw.Begin()
		evBefore := m.evProcessed
		epoch := m.mgrEpoch.v.Load()
		// Min-before-drain, as in every manager: the bound must not pass
		// events still in flight toward the queues.
		g := m.globalMin()
		if measure {
			m.noteStraggler()
		}
		if fi != nil {
			applyPanicFaults(fi, g, "manager")
		}
		moved := m.drainAndRouteRemote()
		if g >= m.cfg.MaxCycles {
			m.aborted = true
			m.done.Store(true)
			break
		}

		var processed bool
		m.beginNotifyBatch()
		if conservative {
			allowed := g
			if s.Kind == Quantum {
				allowed = quantumBarrier(g, s.Window)
				if allowed > lastBarrier {
					lastBarrier = allowed
					mw.Instant(trace.KBarrier, allowed)
					if measure {
						m.met.barriers.Inc()
					}
				}
			}
			if allowed > 0 {
				// Batches went out in drainAndRouteRemote, before this
				// gate — in-order delivery then gives the worker every
				// event below allowed before it sees the gate, which is
				// the shared-memory driver's push-then-raise order.
				for _, w := range r.workers {
					if allowed > w.lastGate {
						w.lastGate = allowed
						w.sendCh <- wireMsg{kind: remote.FGate, gate: allowed}
					}
				}
				m.waitRemoteWatermarks(allowed)
				processed = m.processConservative(allowed)
				m.noteProcBound(allowed)
			}
		} else {
			if s.Kind == Adaptive {
				processed = m.processAllCounting(&ad)
				ad.adapt(g)
				if ad.window != lastWindow {
					lastWindow = ad.window
					mw.Count(trace.KWindow, ad.window)
					mw.Instant(trace.KPhase, ad.window)
					if measure {
						m.met.adaptResizes.Inc()
					}
				}
			} else {
				processed = m.processAll()
			}
		}
		m.flushNotifyBatch()
		if processed {
			mw.Span(trace.KProcess, ps, m.evProcessed-evBefore)
			mw.Count(trace.KQDepth, int64(m.gq.Len()))
			if measure {
				m.met.gqDepth.Observe(int64(m.gq.Len()))
			}
		}
		if m.introOn {
			m.liveGQ.Store(int64(m.gq.Len()))
		}

		// Publish global only after the pass's replies — including the
		// remote watermark wait — so cores can use it as a safe
		// fast-forward horizon.
		if g > m.global.Load() {
			m.global.Store(g)
			mw.Count(trace.KGlobal, g)
			if measure {
				m.met.globalAdv.Inc()
			}
		}

		changed := m.updateWindows(s, g, &ad)
		if changed && measure {
			m.met.windowSlides.Inc()
		}

		// No certain-deadlock detection here: events and replies in
		// flight on the wire are invisible to the queue emptiness check,
		// so a kernel-deadlock verdict could be premature. The stall
		// watchdog below (and the watermark deadline above) carry the
		// liveness guarantee instead.

		if moved || processed || changed || g != lastGlobal {
			// 1-in-32 watchdog stamp during hot streaks; the idle→productive
			// transition always stamps (see managerLoop in parallel.go).
			if idleRounds != 0 || prodStreak&31 == 0 {
				lastChange = time.Now()
			}
			prodStreak++
			idleRounds = 0
			parkT = 0
			lastGlobal = g
			if measure {
				m.mgrBusyNS += time.Since(t0).Nanoseconds()
			}
			continue
		}
		prodStreak = 0
		idleRounds++
		if idleRounds > 4 {
			if m.mgrIdleWait(epoch, nextParkTimeout(&parkT)) {
				if wait := time.Since(lastChange); wait > m.stallTimeout() {
					m.aborted = true
					m.setFault(&StallError{Wait: wait, Report: m.snapshot(true, wait)})
					break
				}
			}
		}
		if idleRounds&1023 == 0 && time.Since(lastChange) > m.stallTimeout() {
			wait := time.Since(lastChange)
			m.aborted = true
			m.setFault(&StallError{Wait: wait, Report: m.snapshot(true, wait)})
			break
		}
	}
	m.wakeAll()
}

// remoteShutdown winds the wire down after the run: finish every worker,
// collect its stats, join the connection goroutines, and close. Called
// after the core goroutines have joined, on both the clean and the
// faulted path — a worker that is already dead simply times out of the
// stats wait and is force-closed.
func (m *Machine) remoteShutdown() {
	r := m.remote
	if r.workers == nil {
		return
	}
	for _, w := range r.workers {
		w.sendCh <- wireMsg{kind: remote.FFinish}
		close(w.sendCh)
	}
	statsDeadline := time.After(m.remoteHandshakeTimeout())
	for _, w := range r.workers {
		select {
		case <-w.recvDone:
		case <-statsDeadline:
		}
		// Force-close unblocks a still-parked receiver (or sender); both
		// treat errors after done as benign.
		w.conn.Close()
		<-w.recvDone
		<-w.sendDone
	}
	for _, w := range r.workers {
		r.wireParent.Add(w.conn.Stats())
		if !w.gotStats {
			continue
		}
		r.statsOK++
		r.wireWorkers.Add(w.stats.Wire)
		m.evShard.Add(w.stats.Events)
		for _, sl := range w.stats.L2 {
			if sl.Shard >= 0 && sl.Shard < r.n {
				r.l2stats[sl.Shard] = sl.Stats
			}
		}
	}
}

// RemoteWireStats is the Result's wire-traffic section for a remote run:
// the parent's connection counters and the sum of the workers' (as
// reported in their FStats frames).
type RemoteWireStats struct {
	Parent  remote.WireStats `json:"parent"`
	Workers remote.WireStats `json:"workers"`
}

// remoteWire returns the run's wire stats (nil for non-remote runs).
func (m *Machine) remoteWire() *RemoteWireStats {
	if m.remote == nil || m.remote.workers == nil {
		return nil
	}
	return &RemoteWireStats{Parent: m.remote.wireParent, Workers: m.remote.wireWorkers}
}
