package core

import (
	"math"
	"time"

	"slacksim/internal/cpu"
	"slacksim/internal/event"
	"slacksim/internal/faultinject"
	"slacksim/internal/trace"
)

// RunSerial executes the whole simulation on the calling goroutine:
// round-robin over the cores each cycle, then the manager. It implements
// cycle-by-cycle semantics with a total order even within a cycle, so it is
// fully deterministic — the testing reference against which the parallel
// schemes' accuracy is measured, and the closest analogue of simulating all
// target cores in a single host thread (the paper's Table 2 baseline).
//
// When every core reports a stalled cycle and the manager has nothing
// eligible, the loop fast-forwards the global clock to the next scheduled
// event — a pure function of simulator state, so determinism is preserved.
// Like the parallel drivers, RunSerial contains panics: a failure inside
// the loop (CPU model bug, ring overflow, audit violation) is returned as
// a *SimError instead of crashing the caller.
func (m *Machine) RunSerial() (*Result, error) {
	start := time.Now()
	m.captureHostMem()
	func() {
		defer m.containPanic(faultinject.Manager, "serial-loop")
		m.runSerialLoop()
	}()
	if err := m.takeFault(); err != nil {
		return nil, err
	}
	return m.result(time.Since(start)), nil
}

func (m *Machine) runSerialLoop() {
	m.serialMode = true
	m.scheme = SchemeCC
	sc := m.scheme
	m.schemeLive.Store(&sc)
	inboxes := make([][]event.Event, len(m.cores))
	stats := make([]*cpu.Stats, len(m.cores))
	for i, c := range m.cores {
		stats[i] = c.Stats()
	}
	t := int64(0)
	mw := m.mgrTW
	measure := m.met != nil
	for !m.done.Load() {
		if t >= m.cfg.MaxCycles {
			m.aborted = true
			break
		}
		// Observability sampling: the serial engine has no slack by
		// construction, but its global-time profile and queue depths use
		// the same trace/metric names as the parallel drivers so runs are
		// directly comparable.
		if t&255 == 0 && (mw != nil || measure) {
			mw.Count(trace.KGlobal, t)
			mw.Count(trace.KQDepth, int64(m.gq.Len()))
			if measure {
				m.met.gqDepth.Observe(int64(m.gq.Len()))
			}
			if m.introOn {
				m.liveGQ.Store(int64(m.gq.Len()))
			}
		}
		roi := m.roiTime.Load()
		anyProgress := false
		for i, c := range m.cores {
			if m.deliverInbox(i, &inboxes[i], t) {
				anyProgress = true
			}
			if roi >= 0 && !stats[i].ROIMarked {
				c.MarkROI(t)
			}
			if c.Tick(t) {
				anyProgress = true
			}
			m.local[i].v.Store(t + 1)
		}
		// The dirty-set drain works in serial mode too (Env.Send marks the
		// bitmap), and skips the N-ring scan on the common no-request cycle.
		// The min-tree is deliberately not consulted here: the serial global
		// time is the loop induction variable, and paying the O(log N) leaf
		// path per core per cycle would tax the reference run for a minimum
		// it never reads.
		if m.drainDirtyOutQs() {
			anyProgress = true
		}
		t++
		m.global.Store(t)
		if m.processConservative(t) {
			anyProgress = true
		}
		m.noteProcBound(t)
		if anyProgress || m.done.Load() {
			continue
		}

		// Everything is stalled: jump to the earliest future work item.
		// Drain the InQ rings first — replies pushed this very cycle must
		// bound the jump, or it would overshoot their timestamps.
		next := int64(math.MaxInt64)
		for i, c := range m.cores {
			m.drainRing(i, &inboxes[i])
			if n := c.NextWork(t); n < next {
				next = n
			}
			if ts, ok := earliestEvent(inboxes[i], true); ok && ts < next {
				next = ts
			}
		}
		if top := m.gq.Peek(); top != nil && top.Time+1 < next {
			// A queued request becomes eligible once global passes it.
			next = top.Time + 1
		}
		if next == math.MaxInt64 || next <= t {
			if next == math.MaxInt64 && m.detectDeadlock() {
				// Certain deadlock (workload bug): no future work anywhere
				// and every live thread is blocked in the kernel. Fail now
				// with forensics instead of crawling to MaxCycles.
				m.aborted = true
				m.setFault(&StallError{Deadlock: true, Report: m.snapshot(true, 0)})
				break
			}
			// Transiently stalled: crawl until work appears or the
			// MaxCycles abort fires.
			continue
		}
		if next > m.cfg.MaxCycles {
			next = m.cfg.MaxCycles
		}
		for i, c := range m.cores {
			c.Skip(next - t)
			m.local[i].v.Store(next)
		}
		t = next
		m.global.Store(t)
		m.processConservative(t)
	}
}

// deliverInbox drains core i's InQ into its inbox and applies every event
// whose timestamp has been reached, in arrival order among the eligible —
// the manager's deterministic processing order under conservative schemes.
// It reports whether anything was delivered.
func (m *Machine) deliverInbox(i int, inbox *[]event.Event, local int64) bool {
	m.drainRing(i, inbox)
	if len(*inbox) == 0 {
		return false
	}
	var delays []faultinject.Fault
	if m.fiDelay != nil {
		delays = m.fiDelay[i]
	}
	delivered := false
	kept := (*inbox)[:0]
	for _, ev := range *inbox {
		if ev.Time > local {
			kept = append(kept, ev)
			continue
		}
		if delays != nil && delayHeld(delays, ev, local) {
			kept = append(kept, ev)
			continue
		}
		delivered = true
		m.lastEvKind[i].v.Store(int64(ev.Kind))
		m.lastEvTime[i].v.Store(ev.Time)
		if m.audit != nil {
			m.auditDelivery(i, ev, local)
		}
		if debugLate != nil && ev.Time < local {
			mode := i
			if m.serialMode {
				mode = -1 - i // negative core ids mark the serial engine
			}
			debugLate(mode, ev, local)
			if !m.serialMode {
				r := m.lastSkip[i]
				debugLate(1000+i, event.Event{Kind: event.Kind(r.kind), Time: r.from, Addr: uint64(r.to), Aux: r.gSnap, Seq: r.limit}, local)
			}
		}
		if m.debugDeliver != nil {
			m.debugDeliver(i, ev, local)
		}
		if ev.SendNS != 0 {
			// A stamped reply (metrics on): attribute the request→reply
			// latency to this core. One zero check on the disabled path.
			m.observeMemLatency(i, &ev, local)
		}
		switch ev.Kind {
		case event.KStart:
			m.cores[i].Start(ev.Addr, m.img.StackTop(i), ev.Aux)
		case event.KStop:
			m.cores[i].Stop()
		default:
			m.cores[i].Deliver(ev, local)
		}
	}
	*inbox = kept
	return delivered
}

// drainRing moves all queued reply events for core i into its inbox (the
// main manager's ring plus, when sharded, every shard's ring; the fused
// driver's plain pending-reply slice instead).
func (m *Machine) drainRing(i int, inbox *[]event.Event) {
	if m.fused {
		if pend := m.fusedIn[i]; len(pend) > 0 {
			*inbox = append(*inbox, pend...)
			m.fusedIn[i] = pend[:0]
		}
		return
	}
	for _, r := range m.coreRings[i] {
		*inbox = r.PopBatch(*inbox)
	}
}

// coreHasEvents reports whether any queued reply for core i is pending.
func (m *Machine) coreHasEvents(i int) bool {
	if m.fused {
		return len(m.fusedIn[i]) > 0
	}
	for _, r := range m.coreRings[i] {
		if r.Len() > 0 {
			return true
		}
	}
	return false
}
