package core

import (
	"fmt"
	"math/bits"

	"slacksim/internal/cache"
	"slacksim/internal/event"
	"slacksim/internal/sysemu"
)

// debugSlowFill, when non-nil, observes fills with suspiciously large
// latencies (test diagnostics only).
var debugSlowFill func(core int, addr uint64, reqT, fillT int64)

// debugProcess, when non-nil, observes every processed GQ event (tests).
var debugProcess func(ev event.Event)

// debugLate, when non-nil, observes events applied after their timestamp
// (test diagnostics; must never fire under conservative schemes).
var debugLate func(core int, ev event.Event, local int64)

// debugLateProc, when non-nil, observes requests that entered the GQ after
// the global time had already passed them (visibility violations).
var debugLateProc func(ev event.Event, prevGlobal int64)

// SetDebugLateProc installs a late-arrival observer (tests; nil to clear).
func SetDebugLateProc(fn func(string)) {
	if fn == nil {
		debugLateProc = nil
		return
	}
	debugLateProc = func(ev event.Event, prevG int64) {
		fn(fmt.Sprintf("%v core=%d ts=%d prevG=%d addr=%#x", ev.Kind, ev.Core, ev.Time, prevG, ev.Addr))
	}
}

// SetDebugLate installs a formatted observer of late event deliveries
// (test diagnostics only; pass nil to clear).
func SetDebugLate(fn func(string)) {
	if fn == nil {
		debugLate = nil
		return
	}
	debugLate = func(core int, ev event.Event, local int64) {
		fn(fmt.Sprintf("core=%d %v ts=%d local=%d addr=%#x aux=%d", core, ev.Kind, ev.Time, local, ev.Addr, ev.Aux))
	}
}

// SetDebugProcess installs a formatted observer of processed GQ events
// (test diagnostics only; pass nil to clear).
func SetDebugProcess(fn func(string)) {
	if fn == nil {
		debugProcess = nil
		return
	}
	debugProcess = func(ev event.Event) {
		fn(fmt.Sprintf("%v c%d t=%d a=%#x x=%d", ev.Kind, ev.Core, ev.Time, ev.Addr, ev.Aux))
	}
}

// This file is the simulation-manager logic shared by the parallel and
// serial drivers: draining OutQs into the GQ, processing GQ entries
// (directory/L2 accesses and system calls) and emitting InQ notifications.
// Conservative schemes call processConservative, which consumes events
// strictly in (timestamp, core, seq) order once the global time has passed
// them; optimistic schemes call processAll, which makes every queued
// request globally visible immediately — the source of the timing
// distortions of §3.2.

// drainOutQs moves all pending core requests into the GQ. Each OutQ is
// drained in one PopBatch pass into a reusable buffer. Returns whether
// anything moved. This is the full O(N) scan — the final-drain and
// serial-driver fallback; the manager hot loops drain through the dirty
// set instead (drainDirtyOutQs).
func (m *Machine) drainOutQs() bool {
	moved := false
	for i := range m.outQ {
		m.drainBuf = m.outQ[i].PopBatch(m.drainBuf[:0])
		for j := range m.drainBuf {
			m.gq.Push(m.drainBuf[j])
		}
		moved = moved || len(m.drainBuf) > 0
	}
	return moved
}

// markOutDirty records that core i's OutQ received a push since the
// manager's last drain: one bit per core in a per-64-core atomic word.
// Called by the core-side push path after the ring write. The
// already-set fast path keeps a streak of pushes to the same ring at one
// extra atomic load each; only the first push of a round pays the CAS.
func (m *Machine) markOutDirty(i int) {
	w := &m.outDirty[i>>6].v
	bit := uint64(1) << uint(i&63)
	for {
		old := w.Load()
		if old&bit != 0 {
			return
		}
		if w.CompareAndSwap(old, old|bit) {
			return
		}
	}
}

// drainDirtyOutQs drains only the OutQs that actually received requests
// since the last round: each dirty word is atomically swapped to zero and
// the set bits' rings drained. O(dirty), not O(N).
//
// No event is ever stranded: a push stores the ring slot and tail before
// setting the dirty bit, and the manager swaps the bit before reading the
// tail — so in the total order of atomic operations, a bit cleared by the
// swap implies the corresponding push's tail store precedes the drain's
// tail load, and the event is consumed; a push whose bit-set follows the
// swap leaves its bit for the next round.
func (m *Machine) drainDirtyOutQs() bool {
	moved := false
	for w := range m.outDirty {
		set := m.outDirty[w].v.Swap(0)
		for set != 0 {
			i := w<<6 | bits.TrailingZeros64(set)
			set &= set - 1
			m.drainBuf = m.outQ[i].PopBatch(m.drainBuf[:0])
			for j := range m.drainBuf {
				m.gq.Push(m.drainBuf[j])
			}
			moved = moved || len(m.drainBuf) > 0
		}
	}
	return moved
}

// processConservative handles every queued event with Time < global, oldest
// first. Deterministic given the event set.
func (m *Machine) processConservative(global int64) bool {
	did := false
	for {
		top := m.gq.Peek()
		if top == nil || top.Time >= global {
			return did
		}
		ev := m.gq.Pop()
		if debugLateProc != nil && m.lastProcGlobal > ev.Time+1 {
			debugLateProc(ev, m.lastProcGlobal)
		}
		m.processEvent(ev)
		did = true
	}
}

func (m *Machine) noteProcBound(g int64) {
	if g > m.lastProcGlobal {
		m.lastProcGlobal = g
	}
}

// (noteProcBound is called by the drivers after each conservative pass.)

// processAll handles every queued event immediately (optimistic schemes).
func (m *Machine) processAll() bool {
	did := false
	for m.gq.Len() > 0 {
		ev := m.gq.Pop()
		m.processEvent(ev)
		did = true
	}
	return did
}

// processEvent applies one request: memory-hierarchy traffic goes to the
// L2/directory model; system calls go to the emulated kernel. Replies and
// coherence actions are pushed onto the destination cores' InQs.
func (m *Machine) processEvent(ev event.Event) {
	if debugProcess != nil {
		debugProcess(ev)
	}
	// Manager-goroutine-only counter (observability; see observe.go).
	m.evProcessed++
	if m.met != nil {
		m.met.events.Inc()
	}
	switch ev.Kind {
	case event.KReadShared, event.KReadExcl, event.KUpgrade, event.KFetch:
		m.processMem(ev)
	case event.KSyscall:
		m.processSyscall(ev)
	}
}

func (m *Machine) processMem(ev event.Event) {
	m.processMemVia(m.l2, m.pushReply, ev)
}

// pushReply delivers one manager-produced reply toward core i: a ring push
// plus a (possibly coalesced) wake-up under the threaded drivers, a plain
// slice append under the fused driver — where producer and consumer are
// the same goroutine, so no ring, notify, or memory ordering is needed.
func (m *Machine) pushReply(core int, ev event.Event) {
	if m.fused {
		m.fusedIn[core] = append(m.fusedIn[core], ev)
		m.fusedNoteInDepth(core)
		return
	}
	m.inQ[core].MustPush(ev)
	m.deferNotify(core)
}

// deferNotify wakes core i for a freshly pushed reply — immediately, or,
// inside a manager processing pass (beginNotifyBatch), by recording the
// core in the pass's pending set so one notifyCore per core replaces one
// per event. Deferring is safe: the reply is already in the ring, so a
// core freezing between the push and the flush sees the event in its
// final predicate check and never sleeps.
func (m *Machine) deferNotify(core int) {
	if m.notifyBatch {
		m.notifyPend[core>>6] |= 1 << uint(core&63)
		return
	}
	m.notifyCore(core)
}

// beginNotifyBatch starts coalescing deferNotify calls (manager goroutine
// only; the shard workers keep per-push notifies on their own rings).
func (m *Machine) beginNotifyBatch() { m.notifyBatch = true }

// flushNotifyBatch issues the coalesced wake-ups and ends the batch.
func (m *Machine) flushNotifyBatch() {
	m.notifyBatch = false
	for w := range m.notifyPend {
		set := m.notifyPend[w]
		if set == 0 {
			continue
		}
		m.notifyPend[w] = 0
		for set != 0 {
			i := w<<6 | bits.TrailingZeros64(set)
			set &= set - 1
			m.notifyCore(i)
		}
	}
}

// processMemVia applies one memory-hierarchy request against the given
// L2/directory instance, emitting the fill and coherence notifications
// through push. The shard workers use their own instances and rings.
func (m *Machine) processMemVia(l2 *cache.L2System, push func(int, event.Event), ev event.Event) {
	applyMemEvent(l2, push, ev)
}

// applyMemEvent is the machine-independent core of processMemVia: it
// needs only the L2/directory instance and a reply sink, which is what
// lets the remote-shard worker (a separate process with no Machine; see
// worker.go) run the identical timing path as the in-process drivers.
func applyMemEvent(l2 *cache.L2System, push func(int, event.Event), ev event.Event) {
	core := int(ev.Core)
	// Retire the piggybacked victim first so the directory's presence bits
	// reflect the eviction before the new request is processed.
	if ev.VictimFlags&event.VictimValid != 0 {
		l2.RetireVictim(core, ev.VictimAddr, ev.VictimFlags&event.VictimDirty != 0, ev.Time)
	}
	var kind cache.ReqKind
	switch ev.Kind {
	case event.KReadExcl:
		kind = cache.GetM
	case event.KUpgrade:
		kind = cache.Upgrade
	default:
		kind = cache.GetS
	}
	fill, invs := l2.Access(core, ev.Addr, kind, ev.Time)
	if debugSlowFill != nil && fill.Time-ev.Time > 200 {
		debugSlowFill(core, ev.Addr, ev.Time, fill.Time)
	}
	for _, inv := range invs {
		sendInvVia(push, inv)
	}
	for _, inv := range l2.DrainBackInvs() {
		sendInvVia(push, inv)
	}
	push(core, event.Event{
		Kind: event.KFill,
		Core: ev.Core,
		Time: fill.Time,
		Addr: ev.Addr,
		Aux:  int64(fill.Grant),
		// Echo the request's latency-attribution stamps (latency.go) so
		// the delivery site can measure the full round trip. Zero when
		// metrics are off.
		ReqTime: ev.ReqTime,
		SendNS:  ev.SendNS,
	})
}

func sendInvVia(push func(int, event.Event), inv cache.InvMsg) {
	kind := event.KInv
	if inv.Downgrade {
		kind = event.KDowngrade
	}
	push(inv.Core, event.Event{
		Kind: kind,
		Core: int32(inv.Core),
		Time: inv.Time,
		Addr: inv.Addr,
	})
}

func (m *Machine) processSyscall(ev event.Event) {
	core := int(ev.Core)
	res := m.kernel.Syscall(core, ev.Time, ev.Aux, ev.Args)
	replyAt := ev.Time + m.cfg.SyscallLat
	for _, eff := range res.Effects {
		switch eff.Kind {
		case sysemu.EffectStartCore:
			m.pushReply(eff.Core, event.Event{
				Kind: event.KStart,
				Core: int32(eff.Core),
				Time: replyAt,
				Addr: eff.PC,
				Aux:  eff.Arg,
			})
		case sysemu.EffectStopCore:
			m.pushReply(eff.Core, event.Event{
				Kind: event.KStop,
				Core: int32(eff.Core),
				Time: replyAt,
			})
		case sysemu.EffectEndSim:
			m.endTime = ev.Time
			m.exitCode = eff.Code
			m.done.Store(true)
		case sysemu.EffectResetStats:
			m.roiTime.Store(ev.Time)
		}
	}
	if res.Block {
		// The kernel queued the caller; the grant arrives via Notify when
		// another thread releases it. Until then the core's frozen clock
		// must not hold back the global time (the releaser could never
		// reach its releasing operation otherwise). The leaf refresh
		// installs the blocked sentinel in the min-tree; it runs on the
		// manager goroutine, so the next globalMin read already excludes
		// this core, exactly as the old minLocal scan did.
		m.blocked[core].v.Store(1)
		if !m.fused {
			m.refreshMinLeaf(core)
		}
		return
	}
	m.pushReply(core, event.Event{
		Kind: event.KSyscallDone,
		Core: ev.Core,
		Time: replyAt,
		Aux:  res.Ret,
		Flag: res.Retry,
	})
}

// (minLocal, the naive global-time scan, lives in mintree.go as the
// tree's reference oracle; the managers read the tree root via globalMin.)

// oldestPendingTime returns the timestamp of the oldest queued event, or
// fallback when the GQ is empty (diagnostics; the Lookahead scheme no
// longer anchors on it — see Scheme.maxLocal).
func (m *Machine) oldestPendingTime(fallback int64) int64 {
	if top := m.gq.Peek(); top != nil {
		return top.Time
	}
	return fallback
}
