// Package core implements the paper's contribution: the SlackSim parallel
// simulation engine. Each target core is simulated by one host goroutine;
// one simulation-manager goroutine models the shared L2/directory/
// interconnect and paces the simulation through three shared variables per
// core — local time, max local time, and the global time — with the
// invariant Global <= Local(i) <= MaxLocal(i) (§2.1). The slack schemes
// differ only in how the manager updates max local times and in when queued
// events become globally visible (§3.1).
package core

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// SchemeKind enumerates the slack simulation schemes of §3.1.
type SchemeKind int

const (
	// CC is cycle-by-cycle simulation: every thread synchronises after
	// every simulated cycle. The accuracy gold standard (Figure 2a).
	CC SchemeKind = iota
	// Quantum is barrier synchronisation every Window cycles (Figure 2b),
	// the WWT-II approach. Accurate while Window <= critical latency.
	Quantum
	// Lookahead is the conservative event-driven scheme: requests are
	// processed only at the global time, in timestamp order, and threads
	// may advance up to Window cycles past it (the sound form of
	// "lookahead from the oldest event"; see maxLocal).
	Lookahead
	// Bounded is the paper's bounded-slack proposal (Figure 2c): a sliding
	// window of Window cycles with no barriers; events are processed the
	// moment they arrive, so small timing distortions are possible.
	Bounded
	// OldestFirst is bounded slack plus conservative event processing in
	// timestamp order at the global time; with Window < critical latency
	// it eliminates all violations while keeping the sliding window.
	OldestFirst
	// Unbounded is bounded slack with an infinite window (Figure 2d): no
	// synchronisation at all; fastest, largest distortions.
	Unbounded
	// Adaptive is bounded slack whose window adjusts itself between 1 and
	// Window cycles from the observed inter-core event traffic, after the
	// adaptive quantum of Falcon et al. [8] (cited in the paper's §5):
	// communication-heavy phases shrink the window toward cycle-accuracy,
	// compute-only phases stretch it for speed. An extension beyond the
	// paper's evaluated schemes.
	Adaptive
)

// Scheme selects a slack simulation scheme and its cycle window.
type Scheme struct {
	Kind SchemeKind
	// Window is the scheme parameter: the quantum size for Quantum, the
	// lookahead for Lookahead, and the maximum slack for Bounded and
	// OldestFirst. Ignored by CC (0) and Unbounded (infinite).
	Window int64
}

// Standard schemes from the paper's evaluation (§4.2).
var (
	SchemeCC   = Scheme{Kind: CC}
	SchemeQ10  = Scheme{Kind: Quantum, Window: 10}
	SchemeL10  = Scheme{Kind: Lookahead, Window: 10}
	SchemeS9   = Scheme{Kind: Bounded, Window: 9}
	SchemeS9x  = Scheme{Kind: OldestFirst, Window: 9}
	SchemeS100 = Scheme{Kind: Bounded, Window: 100}
	SchemeSU   = Scheme{Kind: Unbounded}
	// SchemeA1000 is the adaptive scheme with a 1000-cycle ceiling.
	SchemeA1000 = Scheme{Kind: Adaptive, Window: 1000}
)

// String renders the paper's scheme names (CC, Q10, L10, S9, S9*, S100, SU).
func (s Scheme) String() string {
	switch s.Kind {
	case CC:
		return "CC"
	case Quantum:
		return fmt.Sprintf("Q%d", s.Window)
	case Lookahead:
		return fmt.Sprintf("L%d", s.Window)
	case Bounded:
		return fmt.Sprintf("S%d", s.Window)
	case OldestFirst:
		return fmt.Sprintf("S%d*", s.Window)
	case Unbounded:
		return "SU"
	case Adaptive:
		return fmt.Sprintf("A%d", s.Window)
	}
	return "?"
}

// MarshalJSON renders a scheme by its paper notation ("S9*", not the
// internal Kind/Window pair), matching the keys of harness result maps.
func (s Scheme) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON parses the paper notation back into a Scheme, so forensic
// reports (StallReport) round-trip through JSON.
func (s *Scheme) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	parsed, err := ParseScheme(name)
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}

// Conservative reports whether the scheme processes events strictly in
// timestamp order at the global time, which (with Window <= the target's
// critical latency) makes the simulated cycle counts deterministic and
// equal to cycle-by-cycle simulation.
func (s Scheme) Conservative() bool {
	switch s.Kind {
	case CC, Quantum, Lookahead, OldestFirst:
		return true
	}
	return false
}

// maxLocal computes a core's new max local time given the scheme and the
// current global time. A core may simulate cycle t while t < maxLocal.
func (s Scheme) maxLocal(global int64) int64 {
	switch s.Kind {
	case CC:
		return global + 1
	case Quantum:
		// Barrier at the next multiple of the quantum.
		return (global/s.Window + 1) * s.Window
	case Lookahead:
		// The textbook anchor is the oldest unprocessed event plus the
		// lookahead, but an anchor beyond the global time is unsound in a
		// running engine: a request still in flight toward the manager
		// (not yet visible as "pending") would not bound it, and its
		// issuer could outrun its own reply. The global time is the
		// tightest sound anchor — the oldest event that can still exist
		// is never older than it.
		return global + s.Window
	case Bounded, OldestFirst:
		// Sliding window [global, global+Window] inclusive.
		return global + s.Window + 1
	case Unbounded:
		return math.MaxInt64
	case Adaptive:
		// The manager substitutes its current adapted window; this is the
		// ceiling.
		return global + s.Window + 1
	}
	return global + 1
}

// ParseScheme parses the paper's scheme notation: "CC", "Q10", "L10",
// "S9", "S9*", "S100", "SU" (case-insensitive).
func ParseScheme(s string) (Scheme, error) {
	up := strings.ToUpper(strings.TrimSpace(s))
	switch up {
	case "CC":
		return SchemeCC, nil
	case "SU":
		return SchemeSU, nil
	}
	if len(up) < 2 {
		return Scheme{}, fmt.Errorf("core: bad scheme %q", s)
	}
	kind, rest := up[0], up[1:]
	oldestFirst := strings.HasSuffix(rest, "*")
	rest = strings.TrimSuffix(rest, "*")
	n, err := strconv.ParseInt(rest, 10, 64)
	if err != nil {
		return Scheme{}, fmt.Errorf("core: bad scheme %q", s)
	}
	var out Scheme
	switch {
	case kind == 'Q' && !oldestFirst:
		out = Scheme{Kind: Quantum, Window: n}
	case kind == 'L' && !oldestFirst:
		out = Scheme{Kind: Lookahead, Window: n}
	case kind == 'S' && oldestFirst:
		out = Scheme{Kind: OldestFirst, Window: n}
	case kind == 'S':
		out = Scheme{Kind: Bounded, Window: n}
	case kind == 'A' && !oldestFirst:
		out = Scheme{Kind: Adaptive, Window: n}
	default:
		return Scheme{}, fmt.Errorf("core: bad scheme %q (want CC, Q<n>, L<n>, S<n>, S<n>*, SU)", s)
	}
	return out, out.Validate()
}

// Validate checks the scheme parameters.
func (s Scheme) Validate() error {
	switch s.Kind {
	case CC, Unbounded:
		return nil
	case Quantum, Lookahead:
		if s.Window < 1 {
			return fmt.Errorf("core: scheme %v needs Window >= 1", s.Kind)
		}
	case Bounded, OldestFirst:
		if s.Window < 0 {
			return fmt.Errorf("core: scheme %v needs Window >= 0", s.Kind)
		}
	case Adaptive:
		if s.Window < 1 {
			return fmt.Errorf("core: adaptive scheme needs Window >= 1")
		}
	default:
		return fmt.Errorf("core: unknown scheme kind %d", s.Kind)
	}
	return nil
}
