package core

// Post-mortem crash bundles: when a run fails (SimError, StallError,
// MaxCycles abort with faults, or a remote run that abandoned workers),
// the machine writes a self-contained directory of forensics artifacts —
// merged trace, metrics snapshot, stall report, recovery state, config —
// with a checksummed MANIFEST.json (internal/bundle). The hook lives in
// takeFault, the one choke point every driver (serial, parallel,
// sharded, fused, remote) passes through after its goroutines joined, so
// the snapshot is taken when the single-owner structures are safe to
// read.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"slacksim/internal/bundle"
	"slacksim/internal/introspect"
	"slacksim/internal/trace"
)

// SetBundleDir arms crash-bundle capture: on a failed run the machine
// writes a bundle directory under dir. Empty (the default) disables
// capture. Must be called before Run*.
func (m *Machine) SetBundleDir(dir string) { m.bundleDir = dir }

// BundlePath returns the bundle directory written by the last failure,
// or "" if none was written.
func (m *Machine) BundlePath() string { return m.bundlePath }

// driverName names the execution driver for bundle metadata and
// filenames, derived from the machine's run-mode flags.
func (m *Machine) driverName() string {
	switch {
	case m.remote != nil:
		return "remote"
	case m.fused:
		return "fused"
	case m.shards != nil:
		return "sharded"
	case m.serialMode:
		return "serial"
	default:
		return "parallel"
	}
}

// writeFailureBundle captures the bundle for cause. Called post-join
// from takeFault (and from the remote driver's abandoned-worker path),
// so the kernel, GQ, and trace rings are quiescent. Errors are reported
// on stderr, never escalated — forensics must not mask the run's fault.
func (m *Machine) writeFailureBundle(cause error) {
	if m.bundleDir == "" || m.bundleDone || cause == nil {
		return
	}
	m.bundleDone = true

	var files []bundle.File
	addJSON := func(name string, v any) {
		enc, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return
		}
		files = append(files, bundle.File{Name: name, Data: append(enc, '\n')})
	}

	// The failure itself: the report attached to the error when there is
	// one, else a fresh post-join snapshot.
	report := reportFromError(cause)
	if report == nil {
		report = m.snapshot(true, 0)
	}
	addJSON("stall.json", report)
	files = append(files, bundle.File{Name: "error.txt", Data: []byte(cause.Error() + "\n")})

	if m.tracer != nil {
		var buf bytes.Buffer
		if err := m.WriteTraceChrome(&buf); err == nil {
			files = append(files, bundle.File{Name: "trace.json", Data: buf.Bytes()})
		}
	}
	if m.met != nil {
		var buf bytes.Buffer
		introspect.WritePrometheus(&buf, m.met.reg.Snapshot())
		files = append(files, bundle.File{Name: "metrics.prom", Data: buf.Bytes()})
	}
	session := ""
	if m.remote != nil {
		session = m.remote.session
		addJSON("recovery.json", map[string]any{
			"recovery":  m.remoteRecovery(),
			"workers":   m.remoteWorkerReports(),
			"incidents": incidentStrings(m.TraceIncidents()),
		})
	}
	addJSON("config.json", m.cfg)

	meta := bundle.Meta{
		Reason:  cause.Error(),
		Session: session,
		Driver:  m.driverName(),
		Scheme:  m.scheme.String(),
	}
	dir := filepath.Join(m.bundleDir,
		fmt.Sprintf("bundle-%s-%d", m.driverName(), time.Now().UnixNano()))
	path, err := bundle.Write(dir, meta, files)
	if err != nil {
		fmt.Fprintf(os.Stderr, "warning: crash bundle write failed: %v\n", err)
		return
	}
	m.bundlePath = path
}

// reportFromError pulls the forensic snapshot out of a run error.
func reportFromError(err error) *StallReport {
	var se *SimError
	if errors.As(err, &se) {
		return se.Report
	}
	var ste *StallError
	if errors.As(err, &ste) {
		return ste.Report
	}
	return nil
}

// incidentStrings renders incidents for the JSON recovery artifact.
func incidentStrings(ins []trace.Incident) []string {
	out := make([]string, 0, len(ins))
	for _, in := range ins {
		out = append(out, in.String())
	}
	return out
}
