package core

import (
	"fmt"

	"slacksim/internal/event"
)

// The runtime invariant auditor (Config.Audit): a sampled checker that
// asserts the paper's pacing invariant Global <= Local(i) <= MaxLocal(i),
// monotone local clocks and window edges, and — under conservative
// schemes — that every event is delivered no later than its timestamp.
// Violations surface as contained *SimError values from the Run* drivers,
// naming the offending core and event. The auditor exists to catch engine
// bugs (and injected faults) in long runs without a serial cross-check;
// with Audit off the hot paths pay one nil check per iteration.

// auditState holds the auditor's per-core history. Each index is touched
// only by the owning core's goroutine (the serial driver owns them all),
// so no synchronisation is needed.
type auditState struct {
	// every is the sampling period in core-scheduler iterations.
	every int
	// prevLocal/prevMax track clock and window-edge monotonicity.
	prevLocal []int64
	prevMax   []int64
	// settleG[i] is the global time observed when core i's most recent
	// kernel resume (KSyscallDone grant or KStart) was delivered. A core
	// waking from a blocking system call legitimately runs with
	// local < global until it catches up to the time the world reached
	// while it slept; the Global <= Local check is suppressed below this
	// settle point (and below resumeFloor, before the wake-up jump).
	settleG []int64
}

func newAuditState(n, every int) *auditState {
	return &auditState{
		every:     every,
		prevLocal: make([]int64, n),
		prevMax:   make([]int64, n),
		settleG:   make([]int64, n),
	}
}

// auditCore checks core i's pacing state against values its own goroutine
// just read (gSnap is the pre-drain global snapshot of this iteration).
func (m *Machine) auditCore(i int, local, gSnap int64) {
	a := m.audit
	if local < a.prevLocal[i] {
		m.auditFail(i, local, gSnap, nil,
			fmt.Sprintf("local clock moved backwards: %d -> %d", a.prevLocal[i], local))
		return
	}
	a.prevLocal[i] = local
	ml := m.maxLocal[i].v.Load()
	if ml < a.prevMax[i] {
		m.auditFail(i, local, gSnap, nil,
			fmt.Sprintf("window edge moved backwards: %d -> %d", a.prevMax[i], ml))
		return
	}
	a.prevMax[i] = ml
	if local > ml {
		m.auditFail(i, local, gSnap, nil,
			fmt.Sprintf("local %d above window edge MaxLocal %d", local, ml))
		return
	}
	// Lower bound. Skipped while the core is asleep in a blocking system
	// call (excluded from the global minimum), before it has jumped to a
	// pending resume grant (local <= resumeFloor), and while it is still
	// catching up to the post-sleep global time (local < settleG).
	if m.blocked[i].v.Load() != 0 {
		return
	}
	if flo := m.resumeFloor[i].v.Load(); local <= flo || local < a.settleG[i] {
		return
	}
	if gSnap > local {
		m.auditFail(i, local, gSnap, nil,
			fmt.Sprintf("global %d above local %d", gSnap, local))
	}
}

// auditDelivery checks one InQ delivery on core i. Conservative schemes
// must deliver every event exactly at its timestamp — never late; a late
// delivery means the pacing let an event slip behind a core's clock.
// Optimistic schemes deliver late by design (that is the measured
// distortion of §3.2), so only the settle-point bookkeeping applies.
func (m *Machine) auditDelivery(i int, ev event.Event, local int64) {
	a := m.audit
	switch ev.Kind {
	case event.KSyscallDone, event.KStart:
		a.settleG[i] = m.global.Load()
	}
	if m.scheme.Conservative() && ev.Time < local {
		e := ev
		m.auditFail(i, local, m.global.Load(), &e,
			fmt.Sprintf("late delivery under conservative scheme: %v stamped %d delivered at %d",
				ev.Kind, ev.Time, local))
	}
}

// auditFail records an invariant violation as a contained SimError.
func (m *Machine) auditFail(core int, local, global int64, ev *event.Event, detail string) {
	m.setFault(&SimError{
		Core:       core,
		Op:         "invariant-audit",
		Detail:     detail,
		SimTime:    local,
		GlobalTime: global,
		Scheme:     m.scheme,
		Event:      ev,
	})
}
