package core

// Fleet observability, parent side: the receiver goroutines hand worker
// trace chunks, clock samples, and registry snapshots to the helpers
// here; the supervision paths record lifecycle incidents; and the export
// helpers assemble everything into one merged Chrome/Perfetto timeline
// with per-process tracks and wire flow events.

import (
	"fmt"
	"io"
	"os"
	"sort"

	"slacksim/internal/remote"
	"slacksim/internal/trace"
)

// noteWorkerClock records a clock-offset estimate for one worker
// incarnation. The worker sampled its own trace clock at workerNS (ns
// since its collector's creation) and the frame just arrived, so
// parentNow − workerNS estimates (parent clock − worker clock) plus the
// one-way wire latency — good enough to align tracks visually. Offsets
// are per (worker, epoch): every reconnect starts a fresh worker
// collector with a new clock origin.
func (m *Machine) noteWorkerClock(w *remoteWorker, epoch int, workerNS int64) {
	if m.tracer == nil || workerNS <= 0 {
		return
	}
	off := m.tracer.Now() - workerNS
	r := m.remote
	r.obsMu.Lock()
	if r.clockOff[w.id] == nil {
		r.clockOff[w.id] = make(map[int]int64)
	}
	r.clockOff[w.id][epoch] = off
	r.obsMu.Unlock()
}

// storeTraceChunk keeps the latest ring snapshot for the chunk's
// (worker, epoch) — each chunk is cumulative, so the newest supersedes —
// refreshes the clock-offset estimate from the chunk's own sample, and
// warns once per worker if the worker's rings wrapped.
func (m *Machine) storeTraceChunk(w *remoteWorker, tc *remote.TraceChunk) {
	m.noteWorkerClock(w, tc.Epoch, tc.ClockNS)
	var dropped int64
	for _, cw := range tc.Writers {
		dropped += cw.Dropped
	}
	r := m.remote
	r.obsMu.Lock()
	if r.chunks[w.id] == nil {
		r.chunks[w.id] = make(map[int]*remote.TraceChunk)
	}
	r.chunks[w.id][tc.Epoch] = tc
	warn := dropped > 0 && !r.dropWarn[w.id]
	if warn {
		r.dropWarn[w.id] = true
	}
	r.obsMu.Unlock()
	if warn {
		fmt.Fprintf(os.Stderr,
			"warning: worker %d trace dropped %d event(s) — per-core rings wrapped, oldest events lost (see worker%d.trace.dropped metrics)\n",
			w.id, dropped, w.id)
	}
}

// warnWorkerDropped is the FStats-time fallback for satellite drop
// reporting: publishes per-writer drop counters under the worker prefix
// and emits the once-per-worker warning if no chunk already did.
func (m *Machine) warnWorkerDropped(w *remoteWorker, dropped map[string]int64) {
	if len(dropped) == 0 {
		return
	}
	var total int64
	for name, d := range dropped {
		total += d
		if m.met != nil && d > 0 {
			m.met.reg.Counter(fmt.Sprintf("worker%d.trace.dropped.%s", w.id, sanitizeMetricWord(name))).Add(d)
		}
	}
	if m.met != nil && total > 0 {
		m.met.reg.Counter(fmt.Sprintf("worker%d.trace.dropped", w.id)).Add(total)
	}
	if total <= 0 {
		return
	}
	r := m.remote
	r.obsMu.Lock()
	warn := !r.dropWarn[w.id]
	if warn {
		r.dropWarn[w.id] = true
	}
	r.obsMu.Unlock()
	if warn {
		fmt.Fprintf(os.Stderr,
			"warning: worker %d trace dropped %d event(s) — per-core rings wrapped, oldest events lost (see worker%d.trace.dropped metrics)\n",
			w.id, total, w.id)
	}
}

// remoteIncident appends a supervision lifecycle marker (suspect,
// reconnecting, recovered, abandoned, adopted) for the merged timeline.
// TS is on the parent clock (0 when tracing is off, which keeps the
// record useful as plain forensics text).
func (m *Machine) remoteIncident(w *remoteWorker, state, detail string) {
	r := m.remote
	in := trace.Incident{
		TS:     m.tracer.Now(),
		PID:    w.id + 1,
		Name:   fmt.Sprintf("worker %d %s", w.id, state),
		Detail: detail,
	}
	r.obsMu.Lock()
	r.incidents = append(r.incidents, in)
	r.obsMu.Unlock()
}

// remoteTraceProcs assembles one merged-timeline process per stored
// (worker, epoch) chunk. Epoch 0 keeps the plain "worker N" name and the
// PID the incidents use; re-connected incarnations get their own track
// group so their rebased clocks don't interleave confusingly.
func (m *Machine) remoteTraceProcs() []trace.Proc {
	r := m.remote
	r.obsMu.Lock()
	defer r.obsMu.Unlock()
	nw := len(r.workers)
	var procs []trace.Proc
	for _, w := range r.workers {
		epochs := make([]int, 0, len(r.chunks[w.id]))
		for e := range r.chunks[w.id] {
			epochs = append(epochs, e)
		}
		sort.Ints(epochs)
		for _, e := range epochs {
			tc := r.chunks[w.id][e]
			name := fmt.Sprintf("worker %d", w.id)
			if e > 0 {
				name = fmt.Sprintf("worker %d (epoch %d)", w.id, e)
			}
			procs = append(procs, trace.Proc{
				PID:      1 + w.id + e*nw,
				Name:     name,
				OffsetNS: r.clockOff[w.id][e],
				Writers:  tc.Writers,
			})
		}
	}
	return procs
}

// TraceProcs returns the merged-timeline processes: the parent's own
// rings as pid 0 plus one process per collected worker incarnation.
// Nil when tracing was never enabled.
func (m *Machine) TraceProcs() []trace.Proc {
	if m.tracer == nil {
		return nil
	}
	procs := []trace.Proc{m.tracer.ParentProc("parent")}
	if m.remote != nil {
		procs = append(procs, m.remoteTraceProcs()...)
	}
	return procs
}

// TraceIncidents returns the supervision incidents recorded so far
// (remote runs only), oldest first.
func (m *Machine) TraceIncidents() []trace.Incident {
	if m.remote == nil {
		return nil
	}
	r := m.remote
	r.obsMu.Lock()
	defer r.obsMu.Unlock()
	return append([]trace.Incident(nil), r.incidents...)
}

// WriteTraceChrome exports the run's trace as Chrome trace-event JSON.
// Local drivers get the single-process export; a remote run with
// collected worker chunks gets the merged fleet timeline with clock
// rebasing, wire flow events, and supervision incidents.
func (m *Machine) WriteTraceChrome(w io.Writer) error {
	procs := m.TraceProcs()
	if len(procs) <= 1 {
		return m.tracer.WriteChrome(w) // handles the nil collector
	}
	return trace.WriteChromeMerged(w, procs, m.TraceIncidents())
}

// FleetTraceDropped sums ring wrap-around drops across the parent and
// every collected worker chunk — the fleet-wide counterpart of
// Collector.TotalDropped for post-run warnings.
func (m *Machine) FleetTraceDropped() int64 {
	return trace.MergedDropped(m.TraceProcs())
}

// sanitizeMetricWord makes a writer name usable inside a metric name
// ("core 3" -> "core_3").
func sanitizeMetricWord(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}
