package core

import (
	"testing"

	"slacksim/internal/asm"
	"slacksim/internal/cpu"
	"slacksim/internal/workloads"
)

// TestPrefetcherAblation runs a streaming workload with and without the
// next-line prefetcher: results must stay correct and the prefetcher must
// cut execution time on sequential access patterns.
func TestPrefetcherAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("workload sweep")
	}
	w, err := workloads.Get("radix") // streaming histograms + scatter
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(w.Source(1), asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	run := func(prefetch bool) *Result {
		cfg := smallConfig(4, ModelOoO)
		cfg.MemSize = 64 << 20
		cfg.MaxCycles = 500_000_000
		cfg.CPU = cpu.DefaultConfig()
		cfg.CPU.Prefetch = prefetch
		m, err := NewMachine(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Init(m.Image(), 1); err != nil {
			t.Fatal(err)
		}
		res := runSerial(t, m)
		if res.Aborted {
			t.Fatal("aborted")
		}
		if err := w.Verify(m.Image(), res.Output, 1); err != nil {
			t.Fatal(err)
		}
		return res
	}
	off := run(false)
	on := run(true)
	var prefetches int64
	for _, st := range on.CoreStats {
		prefetches += st.Prefetches
	}
	t.Logf("prefetch off: %d cycles; on: %d cycles (%d prefetches issued)",
		off.EndTime, on.EndTime, prefetches)
	if prefetches == 0 {
		t.Fatal("prefetcher issued nothing on a streaming workload")
	}
	if on.EndTime >= off.EndTime {
		t.Errorf("next-line prefetch did not help a streaming workload: %d vs %d", on.EndTime, off.EndTime)
	}
	// The paper-config (prefetch off) must be unaffected by the feature's
	// existence.
	off2 := run(false)
	if off2.EndTime != off.EndTime {
		t.Fatalf("baseline not reproducible: %d vs %d", off2.EndTime, off.EndTime)
	}
}
