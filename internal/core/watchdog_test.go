package core

import (
	"errors"
	"testing"
	"time"

	"slacksim/internal/sysemu"
)

// deadlockProg acquires a lock twice: the second acquisition can never be
// granted, so the machine must abort — via certain-deadlock detection (every
// live thread blocked in the kernel) — instead of hanging the host.
const deadlockProg = `
main:
    li   a0, 8192
    syscall 5        # lock
    li   a0, 8192
    syscall 5        # self-deadlock
    li   a0, 0
    syscall 0
.data
.align 8
lk: .dword 0
`

func TestWatchdogAbortsDeadlock(t *testing.T) {
	cfg := smallConfig(2, ModelOoO)
	cfg.StallTimeout = 2 * time.Second
	m := mustMachine(t, deadlockProg, cfg)
	start := time.Now()
	_, err := m.RunParallel(SchemeS9)
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("want StallError, got %v", err)
	}
	if !stall.Deadlock {
		t.Errorf("deadlock not classified as certain: %v", err)
	}
	// The forensic report must carry per-core clocks and the held lock's owner.
	if n := len(stall.Report.Cores); n != 2 {
		t.Fatalf("report has %d cores, want 2", n)
	}
	if stall.Report.Cores[0].Local < 0 {
		t.Errorf("core 0 clock missing: %+v", stall.Report.Cores[0])
	}
	if stall.Report.Kernel == nil {
		t.Fatal("report has no kernel forensics")
	}
	var lk *sysemu.LockInfo
	for i := range stall.Report.Kernel.Locks {
		if stall.Report.Kernel.Locks[i].Addr == 8192 {
			lk = &stall.Report.Kernel.Locks[i]
		}
	}
	if lk == nil {
		t.Fatalf("held lock 8192 absent from report: %+v", stall.Report.Kernel.Locks)
	}
	if lk.Owner != 0 {
		t.Errorf("lock owner = c%d, want c0", lk.Owner)
	}
	if wall := time.Since(start); wall > 20*time.Second {
		t.Fatalf("deadlock detection took %v", wall)
	}
}

// Deadlock detection is engine-independent: the serial reference must reach
// the same verdict with the same forensics.
func TestSerialDeadlockDetection(t *testing.T) {
	cfg := smallConfig(2, ModelOoO)
	m := mustMachine(t, deadlockProg, cfg)
	start := time.Now()
	_, err := runSerialErr(m)
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("want StallError, got %v", err)
	}
	if !stall.Deadlock {
		t.Errorf("deadlock not classified as certain: %v", err)
	}
	if wall := time.Since(start); wall > 20*time.Second {
		t.Fatalf("serial deadlock detection took %v", wall)
	}
}

func TestMaxCyclesAbort(t *testing.T) {
	// An infinite loop must hit the cycle limit, not spin the host forever.
	cfg := smallConfig(1, ModelOoO)
	cfg.MaxCycles = 20000
	m := mustMachine(t, "main:\n j main\n", cfg)
	res, err := m.RunParallel(SchemeSU)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Fatal("infinite loop did not abort")
	}
	res2 := runSerial(t, mustMachine(t, "main:\n j main\n", cfg))
	if !res2.Aborted {
		t.Fatal("serial infinite loop did not abort")
	}
}

func TestConfigValidation(t *testing.T) {
	prog := mustMachine(t, sumProg, smallConfig(1, ModelOoO)).Image().Prog
	if _, err := NewMachine(prog, Config{NumCores: 0}); err == nil {
		t.Error("zero cores accepted")
	}
	bad := smallConfig(2, ModelOoO)
	bad.Cache.NumCores = 4 // mismatched cache geometry
	if _, err := NewMachine(prog, bad); err == nil {
		t.Error("mismatched cache core count accepted")
	}
}

func TestInvalidSchemeRejected(t *testing.T) {
	m := mustMachine(t, sumProg, smallConfig(1, ModelOoO))
	if _, err := m.RunParallel(Scheme{Kind: Quantum, Window: 0}); err == nil {
		t.Error("Q0 accepted")
	}
}
