package core

import (
	"testing"
	"time"
)

// deadlockProg acquires a lock twice: the second acquisition can never be
// granted, so the machine must abort via the stall watchdog instead of
// hanging the host.
const deadlockProg = `
main:
    li   a0, 8192
    syscall 5        # lock
    li   a0, 8192
    syscall 5        # self-deadlock
    li   a0, 0
    syscall 0
.data
.align 8
lk: .dword 0
`

func TestWatchdogAbortsDeadlock(t *testing.T) {
	cfg := smallConfig(2, ModelOoO)
	cfg.StallTimeout = 2 * time.Second
	m := mustMachine(t, deadlockProg, cfg)
	start := time.Now()
	res, err := m.RunParallel(SchemeS9)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Fatal("deadlocked workload did not abort")
	}
	if wall := time.Since(start); wall > 20*time.Second {
		t.Fatalf("watchdog took %v", wall)
	}
}

func TestMaxCyclesAbort(t *testing.T) {
	// An infinite loop must hit the cycle limit, not spin the host forever.
	cfg := smallConfig(1, ModelOoO)
	cfg.MaxCycles = 20000
	m := mustMachine(t, "main:\n j main\n", cfg)
	res, err := m.RunParallel(SchemeSU)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Fatal("infinite loop did not abort")
	}
	res2 := mustMachine(t, "main:\n j main\n", cfg).RunSerial()
	if !res2.Aborted {
		t.Fatal("serial infinite loop did not abort")
	}
}

func TestConfigValidation(t *testing.T) {
	prog := mustMachine(t, sumProg, smallConfig(1, ModelOoO)).Image().Prog
	if _, err := NewMachine(prog, Config{NumCores: 0}); err == nil {
		t.Error("zero cores accepted")
	}
	bad := smallConfig(2, ModelOoO)
	bad.Cache.NumCores = 4 // mismatched cache geometry
	if _, err := NewMachine(prog, bad); err == nil {
		t.Error("mismatched cache core count accepted")
	}
}

func TestInvalidSchemeRejected(t *testing.T) {
	m := mustMachine(t, sumProg, smallConfig(1, ModelOoO))
	if _, err := m.RunParallel(Scheme{Kind: Quantum, Window: 0}); err == nil {
		t.Error("Q0 accepted")
	}
}
