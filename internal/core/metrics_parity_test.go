package core

import (
	"sort"
	"strings"
	"testing"

	"slacksim/internal/metrics"
)

// This file pins metric-name parity across the three drivers: a dashboard
// (or the Prometheus scrape behind it) built against one driver must keep
// working when the run switches engines. The serial, parallel, and
// sharded drivers must register and publish the same metric families; the
// sharded driver may only add its shard-queue instruments on top.

// metricNames runs prog under the given driver and returns the sorted
// registry names after the run.
func metricNames(t *testing.T, driver string) []string {
	t.Helper()
	cfg := smallConfig(2, ModelOoO)
	if driver == "sharded" {
		cfg.ManagerShards = 2
	}
	m := mustMachine(t, memProg, cfg)
	reg := metrics.NewRegistry()
	m.EnableMetrics(reg)
	var err error
	switch driver {
	case "serial":
		_, err = m.RunSerial()
	case "fused":
		_, err = m.RunFused(SchemeS9)
	default:
		_, err = m.RunParallel(SchemeS9)
	}
	if err != nil {
		t.Fatalf("%s: %v", driver, err)
	}
	s := reg.Snapshot()
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func TestMetricNameParityAcrossDrivers(t *testing.T) {
	serial := metricNames(t, "serial")
	parallel := metricNames(t, "parallel")
	sharded := metricNames(t, "sharded")
	fused := metricNames(t, "fused")

	diff := func(a, b []string) []string {
		set := make(map[string]bool, len(b))
		for _, n := range b {
			set[n] = true
		}
		var out []string
		for _, n := range a {
			if !set[n] {
				out = append(out, n)
			}
		}
		return out
	}

	if d := diff(serial, parallel); len(d) != 0 {
		t.Errorf("serial-only metrics: %v", d)
	}
	if d := diff(parallel, serial); len(d) != 0 {
		t.Errorf("parallel-only metrics: %v", d)
	}
	// The sharded manager adds its shard-queue instruments and nothing
	// else; everything the parallel driver exports must be present.
	if d := diff(parallel, sharded); len(d) != 0 {
		t.Errorf("metrics lost under sharding: %v", d)
	}
	for _, n := range diff(sharded, parallel) {
		if !strings.Contains(n, "shard") {
			t.Errorf("unexpected sharded-only metric %q", n)
		}
	}
	// The fused driver shares the parallel driver's registry exactly: same
	// dashboards, no goroutine fabric, no extra instruments.
	if d := diff(parallel, fused); len(d) != 0 {
		t.Errorf("metrics lost under fused driver: %v", d)
	}
	if d := diff(fused, parallel); len(d) != 0 {
		t.Errorf("fused-only metrics: %v", d)
	}

	// The latency-attribution families must exist under every driver.
	for _, want := range []string{
		"engine.mem.lat_cycles", "engine.mem.lat_host_ns",
		"engine.c0.mem.lat_cycles", "engine.c1.mem.lat_host_ns",
	} {
		found := false
		for _, n := range serial {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("serial registry missing %q", want)
		}
	}
}
