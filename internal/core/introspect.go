package core

import (
	"fmt"
	"math"

	"slacksim/internal/introspect"
	"slacksim/internal/metrics"
)

// This file attaches a Machine to the live introspection server
// (internal/introspect): it installs the /metrics, /slack and /stallz
// sources and wires the per-ring high-water observers. The sources run on
// HTTP goroutines concurrent with the simulation, so they read only
// atomics and ring head/tail pairs — never the manager-owned GQ or kernel
// (which is why /stallz serves LiveSnapshot, not the watchdog's fuller
// owner-only snapshot).

// EnableIntrospection attaches the machine's live views to srv. Must be
// called after EnableMetrics (the views are built from the registry and
// the latency/straggler state) and before Run*; nil srv is a no-op.
// A single server outlives individual machines: each new run's
// EnableIntrospection replaces the previous run's sources.
func (m *Machine) EnableIntrospection(srv *introspect.Server) error {
	if srv == nil {
		return nil
	}
	if m.met == nil {
		return fmt.Errorf("core: EnableIntrospection requires EnableMetrics first")
	}
	m.introOn = true
	r := m.met.reg
	n := m.cfg.NumCores
	m.hwIn = make([]*metrics.Gauge, n)
	m.hwOut = make([]*metrics.Gauge, n)
	for i := 0; i < n; i++ {
		m.hwIn[i] = r.Gauge(fmt.Sprintf("event.c%d.inq.high_water", i))
		m.hwOut[i] = r.Gauge(fmt.Sprintf("event.c%d.outq.high_water", i))
		m.inQ[i].ObserveHighWater(gaugeMax{m.hwIn[i]})
		m.outQ[i].ObserveHighWater(gaugeMax{m.hwOut[i]})
	}
	srv.SetMetrics(r.Snapshot)
	srv.SetSlack(m.slackSnapshot)
	srv.SetStall(func(format string) ([]byte, error) {
		rep := m.LiveSnapshot()
		if format == "json" {
			return rep.JSON()
		}
		return []byte(rep.Text()), nil
	})
	return nil
}

// gaugeMax adapts a metrics.Gauge to the ring's high-water observer: the
// producer-owned high-water field stays a plain int64 (no hot-path atomic),
// and each rising edge is mirrored into the gauge for race-free reads.
type gaugeMax struct{ g *metrics.Gauge }

func (o gaugeMax) Observe(v int64) { o.g.SetMax(v) }

// LiveSnapshot captures the engine's pacing state from any goroutine while
// the run is in flight: the same CoreReport rows as the stall watchdog's
// forensics, but with the GQ depth read from the manager's atomic mirror
// and without the kernel section (both are manager-owned and unsafe to
// touch concurrently). This is the /stallz payload on a healthy run.
func (m *Machine) LiveSnapshot() *StallReport {
	r := &StallReport{
		Global:  m.global.Load(),
		GQDepth: int(m.liveGQ.Load()),
		Cores:   m.coreReports(),
	}
	if sc := m.schemeLive.Load(); sc != nil {
		r.Scheme = *sc
	}
	return r
}

// slackSnapshot builds the /slack payload: global/root/per-core clocks and
// flags, ring depths and high-waters, per-core memory-latency quantiles,
// and straggler attribution — all from atomics.
func (m *Machine) slackSnapshot() introspect.SlackSnapshot {
	s := introspect.SlackSnapshot{
		Attached: true,
		Global:   m.global.Load(),
		GQDepth:  m.liveGQ.Load(),
		Done:     m.done.Load(),
	}
	if sc := m.schemeLive.Load(); sc != nil {
		s.Scheme = sc.String()
	}
	if v := m.lt.root(); v != minTreeInf {
		s.Root = v
	} else {
		s.Root = -1
	}
	st := m.strag
	for i := range m.cores {
		ml := m.maxLocal[i].v.Load()
		if ml == math.MaxInt64 {
			ml = -1
		}
		c := introspect.SlackCore{
			ID:       i,
			Local:    m.local[i].v.Load(),
			MaxLocal: ml,
			Blocked:  m.blocked[i].v.Load() != 0,
			Parked:   m.parked[i].v.Load() != 0,
			Frozen:   m.frozen[i].v.Load() != 0,
			InQ:      m.inQ[i].Len(),
			OutQ:     m.outQ[i].Len(),
		}
		if m.hwIn != nil {
			c.InQHighWater = m.hwIn[i].Value()
			c.OutQHighWater = m.hwOut[i].Value()
		}
		hs := m.met.coreMemLat[i].Snapshot()
		c.MemLatCount = hs.Count
		c.MemLatP50 = hs.Quantile(0.50)
		c.MemLatP99 = hs.Quantile(0.99)
		if st != nil {
			c.StragglerHeld = st.heldPub[i].v.Load()
			c.StragglerEWMA = float64(st.ewmaPPM[i].v.Load()) / 1e6
		}
		s.Cores = append(s.Cores, c)
	}
	for _, w := range m.remoteWorkerReports() {
		s.Remote = append(s.Remote, introspect.RemoteWorker{
			ID:         w.ID,
			State:      w.State,
			Shards:     w.Shards,
			Mark:       w.Mark,
			Reconnects: w.Reconnects,
			Epoch:      w.Epoch,
		})
	}
	return s
}
