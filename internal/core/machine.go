package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"slacksim/internal/asm"
	"slacksim/internal/cache"
	"slacksim/internal/cpu"
	"slacksim/internal/event"
	"slacksim/internal/faultinject"
	"slacksim/internal/loader"
	"slacksim/internal/metrics"
	"slacksim/internal/sysemu"
	"slacksim/internal/trace"
)

// CoreModel selects the per-core timing model.
type CoreModel int

const (
	// ModelOoO is the paper's 4-wide out-of-order target core.
	ModelOoO CoreModel = iota
	// ModelInOrder is a single-issue blocking core (validation/ablation).
	ModelInOrder
)

// Config describes a target machine and simulation limits.
type Config struct {
	NumCores   int
	NumThreads int // reported by SysNumThreads; defaults to NumCores
	Model      CoreModel
	CPU        cpu.Config
	Cache      cache.Config
	MemSize    uint64
	StackSize  uint64
	// MaxCycles aborts a runaway simulation (0 = a large default).
	MaxCycles int64
	// RingCap sizes the InQ/OutQ rings.
	RingCap int
	// StallTimeout aborts a parallel run whose simulated time stops
	// advancing (deadlocked workload); defaults to 60s of host time.
	StallTimeout time.Duration
	// SyscallLat is the round-trip latency of a system call through the
	// manager; defaults to the cache hierarchy's critical latency, which
	// keeps conservative schemes exact.
	SyscallLat int64
	// ManagerShards splits the memory-hierarchy side of the simulation
	// manager across this many worker goroutines, each owning a disjoint
	// set of NUCA banks and memory channels (the paper's §2.2 scaling
	// hook). 0 or 1 keeps the single manager thread. Requires the L2 bank
	// count to be divisible by the shard count; the cache configuration's
	// DRAMChannels is pinned to the shard count so channel ownership is
	// exact.
	ManagerShards int
	// RemoteShards splits the memory-hierarchy side across this many
	// shards hosted in separate OS processes (the distributed backend;
	// see remote.go and internal/remote). 0 disables. Mutually exclusive
	// with ManagerShards > 1; the same L2-bank divisibility and
	// DRAM-channel pinning rules apply, so a remote run's timing
	// configuration is identical to an in-process run with
	// ManagerShards = RemoteShards — the basis of the bit-exactness
	// guarantee. Drive the run with RunRemoteSharded.
	RemoteShards int
	// Audit enables the sampled runtime invariant auditor (see audit.go):
	// every AuditEvery scheduler iterations each core asserts
	// Global <= Local <= MaxLocal and clock monotonicity, and every InQ
	// delivery is checked for conservative lateness. Violations surface
	// as *SimError from the Run* drivers.
	Audit bool
	// AuditEvery is the auditor's sampling period in core-scheduler
	// iterations (default 64; 1 checks every iteration).
	AuditEvery int
}

// DefaultConfig returns the paper's target: an 8-core CMP of 4-way OoO
// cores with the hierarchy of cache.DefaultConfig.
func DefaultConfig() Config {
	return Config{
		NumCores: 8,
		Model:    ModelOoO,
		CPU:      cpu.DefaultConfig(),
		Cache:    cache.DefaultConfig(8),
	}
}

func (c *Config) fillDefaults() error {
	if c.NumCores < 1 {
		return fmt.Errorf("core: NumCores must be >= 1")
	}
	if c.NumThreads == 0 {
		c.NumThreads = c.NumCores
	}
	if c.Cache.NumCores == 0 {
		c.Cache = cache.DefaultConfig(c.NumCores)
	}
	if c.Cache.NumCores != c.NumCores {
		return fmt.Errorf("core: cache config is for %d cores, machine has %d", c.Cache.NumCores, c.NumCores)
	}
	if err := c.Cache.Validate(); err != nil {
		return fmt.Errorf("core: invalid cache config: %w", err)
	}
	if c.CPU.ROBSize == 0 {
		c.CPU = cpu.DefaultConfig()
	}
	if c.MemSize == 0 {
		c.MemSize = loader.DefaultMemSize
	}
	if c.StackSize == 0 {
		c.StackSize = loader.DefaultStackSize
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 20_000_000_000
	}
	if c.RingCap == 0 {
		c.RingCap = 512
	}
	if c.SyscallLat == 0 {
		c.SyscallLat = c.Cache.CriticalLatency()
	}
	if c.AuditEvery == 0 {
		c.AuditEvery = 64
	}
	if c.ManagerShards > 1 {
		if c.Cache.L2Banks%c.ManagerShards != 0 {
			return fmt.Errorf("core: %d manager shards must divide %d L2 banks", c.ManagerShards, c.Cache.L2Banks)
		}
		if c.Cache.DRAMChannels == 0 || c.Cache.DRAMChannels == 1 {
			c.Cache.DRAMChannels = c.ManagerShards
		}
		if c.Cache.DRAMChannels != c.ManagerShards {
			return fmt.Errorf("core: %d DRAM channels incompatible with %d manager shards", c.Cache.DRAMChannels, c.ManagerShards)
		}
	}
	if c.RemoteShards > 0 {
		if c.ManagerShards > 1 {
			return fmt.Errorf("core: RemoteShards and ManagerShards are mutually exclusive")
		}
		// The same bank and channel pinning as ManagerShards, so a remote
		// run simulates the exact timing configuration of an in-process
		// sharded run with the same shard count.
		if c.Cache.L2Banks%c.RemoteShards != 0 {
			return fmt.Errorf("core: %d remote shards must divide %d L2 banks", c.RemoteShards, c.Cache.L2Banks)
		}
		if c.Cache.DRAMChannels == 0 || c.Cache.DRAMChannels == 1 {
			c.Cache.DRAMChannels = c.RemoteShards
		}
		if c.Cache.DRAMChannels != c.RemoteShards {
			return fmt.Errorf("core: %d DRAM channels incompatible with %d remote shards", c.Cache.DRAMChannels, c.RemoteShards)
		}
	}
	return nil
}

// skipRec records a fast-forward for diagnostics.
type skipRec struct {
	from, to, gSnap, limit int64
	kind                   byte
}

// padded is an atomic.Int64 padded to a cache line to avoid false sharing
// between the manager and core threads on the host CMP.
type padded struct {
	v atomic.Int64
	_ [7]int64
}

// paddedU64 is a cache-line-padded atomic bitmap word (the dirty-OutQ set:
// one bit per core, one word per 64 cores).
type paddedU64 struct {
	v atomic.Uint64
	_ [7]uint64
}

// Machine is an instantiated target system ready to simulate. A Machine is
// single-use: build one per simulation run.
type Machine struct {
	cfg    Config
	scheme Scheme

	img    *loader.Image
	kernel *sysemu.Kernel
	l2     *cache.L2System
	cores  []cpu.Core

	outQ []*event.Ring // core -> manager
	inQ  []*event.Ring // manager -> core

	local    []padded
	maxLocal []padded
	// blocked[i] marks a core whose thread is asleep inside a blocking
	// system call (the kernel holds it on a wait queue). Blocked cores are
	// excluded from the global-time minimum — their clocks are frozen and
	// meaningless until the grant, whose timestamp they then jump to.
	blocked []padded
	// resumeFloor[i] is the timestamp of core i's most recent blocking-
	// syscall grant. From the instant the grant is pushed, the core
	// rejoins the global minimum at this time (its frozen clock will jump
	// there), so the global time cannot race past the core's resume point
	// while its goroutine is waiting to be scheduled — which would let it
	// inject events into the manager's past and break the conservative
	// schemes' determinism.
	resumeFloor []padded
	global      atomic.Int64
	done        atomic.Bool
	intr        atomic.Bool  // Interrupt() requested (signal handler)
	roiTime     atomic.Int64 // simulated time the ROI began (-1 until then)

	// lt is the tournament min-tree over the cores' effective local times
	// (see mintree.go): cores update their leaf on clock publication, the
	// manager reads the root in O(1) instead of scanning N clocks.
	lt *minTree
	// outDirty marks OutQs that received a push since the manager's last
	// drain (one bit per core), so the drain touches only active rings.
	outDirty []paddedU64
	// mgrEpoch counts core-side activity (clock publications, OutQ pushes,
	// kernel grants); the manager records it at the start of a round and
	// parks when a round was idle and the epoch did not move. mgrParked
	// flags a manager waiting on mgrWake so the bump path can skip the
	// channel when the manager is running (same Dekker pattern as the
	// cores' parked/frozen flags).
	mgrEpoch  padded
	mgrParked atomic.Int32
	mgrWake   chan struct{}

	gq evHeap
	// lastProcGlobal is the bound of the previous conservative processing
	// pass (used only by diagnostics).
	lastProcGlobal int64
	// serialMode marks a RunSerial drive (diagnostics).
	serialMode bool
	// fused marks a RunFused drive: the whole simulation runs on one
	// goroutine, so Env.Send pushes straight into the GQ and manager
	// replies append to fusedIn instead of the InQ rings (see fused.go).
	fused bool
	// fusedIn is the fused driver's per-core pending-reply slice — the
	// plain-append replacement for the InQ ring + notify path.
	fusedIn [][]event.Event
	// lastSkip records each core's most recent fast-forward (diagnostics).
	lastSkip []skipRec

	// shards holds the §2.2 sharded-manager plumbing (nil when unsharded).
	shards *shardState
	// remote holds the distributed-backend plumbing (nil unless
	// Config.RemoteShards > 0; see remote.go).
	remote *remoteState
	// coreRings lists, per core, every reply ring the core must drain: the
	// main manager's InQ plus one ring per shard.
	coreRings [][]*event.Ring

	endTime  int64 // simulated time of SysExit
	exitCode int64
	aborted  bool // MaxCycles hit

	// Fault containment (see fault.go): the run's first recorded failure.
	faultMu sync.Mutex
	fault   error
	// audit, when non-nil, is the runtime invariant auditor (audit.go).
	audit *auditState
	// Fault-injection plan slices, partitioned per target goroutine by
	// EnableFaults (all nil when no plan is installed; see fault.go).
	fiCore  [][]faultinject.Fault // per-core faults
	fiDelay [][]faultinject.Fault // per-core DelayDelivery faults
	fiMgr   []faultinject.Fault   // manager-targeted faults
	fiShard [][]faultinject.Fault // per-shard-worker faults
	fiWire  []faultinject.Fault   // wire-level faults (remote backend)
	// lastEvKind/lastEvTime record each core's most recent InQ delivery
	// (written by the owning core goroutine, read by forensic snapshots).
	lastEvKind []padded
	lastEvTime []padded

	// Per-core park/wake plumbing (parallel runs). parkCond wakes a core
	// waiting for its window to slide (signalled by updateWindows);
	// freezeCond wakes a core frozen waiting for an InQ event (signalled by
	// notifyCore after every reply push). frozen[i] != 0 marks a waiter on
	// freezeCond so the push path can skip the mutex when nobody waits;
	// parked[i] serves the same role for parkCond, letting updateWindows
	// slide a spinning (not yet parked) core's window without touching its
	// mutex.
	parkMu     []sync.Mutex
	parkCond   []*sync.Cond
	freezeCond []*sync.Cond
	frozen     []padded
	parked     []padded

	// drainBuf is the manager-side reusable buffer for Ring.PopBatch
	// (manager goroutine only).
	drainBuf []event.Event
	// mgrTimer is the reusable park timer for mgrIdleWait (manager
	// goroutine only); allocating a fresh timer per park shows up as the
	// dominant steady-state allocation of an otherwise quiescent machine.
	mgrTimer *time.Timer

	// hostMem is the runtime allocation baseline captured by the driver
	// entry points; result() reports the deltas (see result.go).
	hostMem      hostMemBaseline
	hostMemValid bool

	// notifyPend/notifyBatch implement the manager's per-round notify
	// coalescing (manager goroutine only; see deferNotify): one bit per
	// core with a pending InQ push this processing pass, flushed as one
	// notifyCore each after the pass.
	notifyPend  []uint64
	notifyBatch bool

	// Per-core engine-level counters.
	waitCycles []int64 // simulated cycles spent blocked at the window edge

	// trace, when non-nil, receives manager snapshots (used by the Figure 2
	// style visualisation example).
	trace func(global int64, locals []int64)
	// debugDeliver, when non-nil, observes every InQ delivery (tests).
	debugDeliver func(core int, ev event.Event, local int64)

	// Observability subsystem (all nil/zero when disabled; see observe.go).
	// epoch anchors the host-time latency stamps (hostNS, latency.go).
	epoch   time.Time
	met     *engineMet
	tracer  *trace.Collector
	coreTW  []*trace.Writer // per-core trace rings
	mgrTW   *trace.Writer   // manager trace ring
	shardTW []*trace.Writer // per-shard-worker trace rings
	// Host-time sync-overhead breakdown, filled only when metrics are
	// enabled. Each slot is written solely by its owning goroutine and
	// read after the run's WaitGroup join.
	coreHostNS []int64 // total host ns each core goroutine ran
	waitHostNS []int64 // host ns each core spent blocked on the manager
	mgrBusyNS  int64   // host ns of productive manager rounds
	// evProcessed counts manager-thread GQ events (manager/serial
	// goroutine only); evShard counts shard-worker events.
	evProcessed int64
	evShard     atomic.Int64

	// strag is the manager-owned straggler attribution state (latency.go;
	// nil when metrics are disabled).
	strag *stragglerState

	// Live introspection plumbing (introspect.go; inert unless
	// EnableIntrospection ran). introOn is set before the run starts.
	// liveGQ mirrors the manager-owned GQ depth and schemeLive the
	// run's scheme, so HTTP-goroutine snapshots never touch single-owner
	// state; hwIn/hwOut are the per-ring high-water gauges.
	introOn    bool
	liveGQ     atomic.Int64
	schemeLive atomic.Pointer[Scheme]
	hwIn       []*metrics.Gauge
	hwOut      []*metrics.Gauge

	// Crash-bundle plumbing (bundle.go; inert unless SetBundleDir ran).
	// bundleDone latches the first write — takeFault runs once per driver
	// exit path and the bundle must not be clobbered by a second pass.
	bundleDir  string
	bundlePath string
	bundleDone bool
}

// NewMachine loads prog into a fresh machine.
func NewMachine(prog *asm.Program, cfg Config) (*Machine, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	img, err := loader.Load(prog, loader.Config{
		MemSize:   cfg.MemSize,
		StackSize: cfg.StackSize,
		NumCores:  cfg.NumCores,
	})
	if err != nil {
		return nil, err
	}
	l2, err := cache.NewL2System(cfg.Cache)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	m := &Machine{
		cfg:         cfg,
		epoch:       time.Now(),
		img:         img,
		kernel:      sysemu.NewKernel(sysemu.KernelImage(img), cfg.NumCores, cfg.NumThreads),
		l2:          l2,
		cores:       make([]cpu.Core, cfg.NumCores),
		outQ:        make([]*event.Ring, cfg.NumCores),
		inQ:         make([]*event.Ring, cfg.NumCores),
		local:       make([]padded, cfg.NumCores),
		maxLocal:    make([]padded, cfg.NumCores),
		blocked:     make([]padded, cfg.NumCores),
		resumeFloor: make([]padded, cfg.NumCores),
		lastSkip:    make([]skipRec, cfg.NumCores),
		parkMu:      make([]sync.Mutex, cfg.NumCores),
		parkCond:    make([]*sync.Cond, cfg.NumCores),
		freezeCond:  make([]*sync.Cond, cfg.NumCores),
		frozen:      make([]padded, cfg.NumCores),
		parked:      make([]padded, cfg.NumCores),
		waitCycles:  make([]int64, cfg.NumCores),
		lastEvKind:  make([]padded, cfg.NumCores),
		lastEvTime:  make([]padded, cfg.NumCores),
		lt:          newMinTree(cfg.NumCores),
		outDirty:    make([]paddedU64, (cfg.NumCores+63)/64),
		notifyPend:  make([]uint64, (cfg.NumCores+63)/64),
		mgrWake:     make(chan struct{}, 1),
		drainBuf:    make([]event.Event, 0, cfg.RingCap),
	}
	m.roiTime.Store(-1)
	if cfg.Audit {
		m.audit = newAuditState(cfg.NumCores, cfg.AuditEvery)
	}
	for i := 0; i < cfg.NumCores; i++ {
		m.outQ[i] = event.NewRing(cfg.RingCap)
		m.outQ[i].SetName(fmt.Sprintf("outq.c%d", i))
		m.inQ[i] = event.NewRing(cfg.RingCap)
		m.inQ[i].SetName(fmt.Sprintf("inq.c%d", i))
		env := cpu.Env{
			ID:       i,
			Mem:      img.Mem,
			CacheCfg: cfg.Cache,
			// Push, then mark the ring dirty, then bump the manager's wake
			// epoch — in that order, so a dirty bit cleared by the
			// manager's swap always implies the event was drained, and a
			// parked manager is woken only after the work is visible.
			Send: func(ev event.Event) {
				if m.met != nil {
					// Latency-attribution stamps (latency.go): the reply
					// echoes both, so delivery can attribute the full
					// request→reply lag without a matching table.
					ev.ReqTime = ev.Time
					ev.SendNS = m.hostNS()
				}
				if m.fused {
					// Single-goroutine drive: push straight into the GQ.
					// The heap's (Time, Core, Seq) order makes processing
					// order independent of push order, so this is exact.
					m.gq.Push(ev)
					return
				}
				m.outQ[i].MustPush(ev)
				m.markOutDirty(i)
				m.bumpMgrEpoch()
			},
			TextBase: prog.TextBase,
			TextEnd:  prog.TextEnd(),
		}
		var c cpu.Core
		var cerr error
		switch cfg.Model {
		case ModelInOrder:
			c, cerr = cpu.NewInOrder(cfg.CPU, env)
		default:
			c, cerr = cpu.NewOoO(cfg.CPU, env)
		}
		if cerr != nil {
			return nil, fmt.Errorf("core: %w", cerr)
		}
		m.cores[i] = c
		m.parkCond[i] = sync.NewCond(&m.parkMu[i])
		m.freezeCond[i] = sync.NewCond(&m.parkMu[i])
	}
	// Deferred grants for blocked syscalls (lock handoff, barrier release,
	// semaphore signal, join) come back through the same InQ reply path.
	m.kernel.Notify = func(core int, t int64, ret int64) {
		if m.kernel.Trace != nil {
			m.kernel.Trace(fmt.Sprintf("  grant core=%d t=%d ret=%d", core, t, ret))
		}
		grantAt := t + m.cfg.SyscallLat
		grant := event.Event{
			Kind: event.KSyscallDone,
			Core: int32(core),
			Time: grantAt,
			Aux:  ret,
		}
		if m.fused {
			// Single-goroutine drive: the grant is a plain append, and the
			// fused loop recomputes the global minimum from the resume
			// floor directly in its next manager phase — no min-tree, no
			// wake-up.
			m.fusedIn[core] = append(m.fusedIn[core], grant)
			m.fusedNoteInDepth(core)
			m.resumeFloor[core].v.Store(grantAt)
			m.blocked[core].v.Store(0)
			return
		}
		m.inQ[core].MustPush(grant)
		m.resumeFloor[core].v.Store(grantAt)
		m.blocked[core].v.Store(0)
		// Rejoin the min-tree at the resume floor. Notify runs on the
		// manager goroutine (inside a processing pass), so the leaf is
		// exact — lowered from the blocked sentinel to the grant time —
		// before the manager's next globalMin read, which keeps the global
		// time from racing past the core's resume point.
		m.refreshMinLeaf(core)
		m.deferNotify(core)
	}
	if cfg.ManagerShards > 1 {
		sh, err := newShardState(cfg)
		if err != nil {
			return nil, err
		}
		m.shards = sh
	}
	if cfg.RemoteShards > 0 {
		m.remote = newRemoteState(cfg)
	}
	m.coreRings = make([][]*event.Ring, cfg.NumCores)
	for i := 0; i < cfg.NumCores; i++ {
		rings := []*event.Ring{m.inQ[i]}
		if m.shards != nil {
			for s := 0; s < m.shards.n; s++ {
				rings = append(rings, m.shards.out[s][i])
			}
		}
		if m.remote != nil {
			for s := 0; s < m.remote.n; s++ {
				rings = append(rings, m.remote.out[s][i])
			}
		}
		m.coreRings[i] = rings
	}
	// Core 0 runs the initial workload thread.
	m.cores[0].Start(img.Entry, img.StackTop(0), 0)
	return m, nil
}

// Image returns the loaded program image (for input poking and output
// inspection by workloads and tests).
func (m *Machine) Image() *loader.Image { return m.img }

// Kernel returns the emulated OS (workload output, violation counters).
func (m *Machine) Kernel() *sysemu.Kernel { return m.kernel }

// L2 returns the shared hierarchy model (statistics).
func (m *Machine) L2() *cache.L2System { return m.l2 }

// Cores returns the per-core models (statistics).
func (m *Machine) Cores() []cpu.Core { return m.cores }

// DebugState renders the engine's pacing state plus each core's debug dump
// (diagnostics for aborted runs).
func (m *Machine) DebugState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "global=%d gq=%d\n", m.global.Load(), m.gq.Len())
	for i := range m.cores {
		fmt.Fprintf(&b, "core %d: local=%d maxLocal=%d blocked=%d floor=%d inQ=%d outQ=%d\n",
			i, m.local[i].v.Load(), m.maxLocal[i].v.Load(), m.blocked[i].v.Load(),
			m.resumeFloor[i].v.Load(), m.inQ[i].Len(), m.outQ[i].Len())
		if d, ok := m.cores[i].(interface{ DebugState() string }); ok {
			b.WriteString("  " + d.DebugState())
		}
	}
	return b.String()
}

// SetTrace installs a manager-side snapshot hook. Parallel runs invoke it
// from the manager goroutine on every pacing update.
func (m *Machine) SetTrace(fn func(global int64, locals []int64)) { m.trace = fn }

// evHeap is the manager's GQ: a binary min-heap of events ordered by
// (Time, Core, Seq). The implementation lives in the event package so the
// remote-shard worker process orders its stream with the same comparator.
type evHeap = event.Heap
