package core

import (
	"fmt"
	"runtime"
	"testing"

	"slacksim/internal/asm"
	"slacksim/internal/cpu"
	"slacksim/internal/workloads"
)

// TestFusedSumBothModels is the quick smoke for the fused driver: a short
// arithmetic workload on one and four target cores must produce the same
// output, exit code, and end time as the serial reference under every
// core model.
func TestFusedSumBothModels(t *testing.T) {
	for _, model := range []CoreModel{ModelInOrder, ModelOoO} {
		for _, n := range []int{1, 4} {
			ref := runSerial(t, mustMachine(t, sumProg, smallConfig(n, model)))
			m := mustMachine(t, sumProg, smallConfig(n, model))
			res, err := m.RunFused(SchemeCC)
			if err != nil {
				t.Fatal(err)
			}
			if res.Aborted {
				t.Fatalf("model %d n=%d: aborted at %d", model, n, res.EndTime)
			}
			if res.Output != "5050" || res.ExitCode != 7 {
				t.Fatalf("model %d n=%d: output=%q exit=%d, want 5050/7", model, n, res.Output, res.ExitCode)
			}
			if res.EndTime != ref.EndTime {
				t.Fatalf("model %d n=%d: end time fused=%d serial=%d", model, n, res.EndTime, ref.EndTime)
			}
			if res.TimeWarps != 0 || res.CoherenceWarps != 0 {
				t.Fatalf("model %d n=%d: fused CC saw warps (%d,%d)", model, n, res.TimeWarps, res.CoherenceWarps)
			}
		}
	}
}

// TestFusedThreadsAllSchemes drives the blocking-syscall workload (locks,
// barriers, thread create/join) through the fused driver under every
// scheme, and checks the driver spawns no goroutines: the count before and
// after each run must match without any settling.
func TestFusedThreadsAllSchemes(t *testing.T) {
	schemes := []Scheme{SchemeCC, SchemeQ10, SchemeL10, SchemeS9, SchemeS9x, SchemeS100, SchemeSU}
	for _, s := range schemes {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			before := runtime.NumGoroutine()
			m := mustMachine(t, threadsProg, smallConfig(4, ModelOoO))
			res, err := m.RunFused(s)
			if err != nil {
				t.Fatal(err)
			}
			if res.Aborted {
				t.Fatalf("aborted at %d", res.EndTime)
			}
			if want := expectTotal(4); res.Output != want {
				t.Fatalf("output = %q, want %q", res.Output, want)
			}
			if s.Conservative() && (res.TimeWarps != 0 || res.CoherenceWarps != 0) {
				t.Fatalf("%v: conservative fused run saw warps (%d,%d)", s, res.TimeWarps, res.CoherenceWarps)
			}
			if after := settleGoroutines(before); after > before {
				t.Fatalf("goroutines grew %d -> %d: fused driver must not spawn any", before, after)
			}
		})
	}
}

// TestFusedConservativeExact checks the fused driver against the serial
// reference for every conservative scheme on the multi-threaded workload:
// same schedule-invariant semantics, so bit-identical end times.
func TestFusedConservativeExact(t *testing.T) {
	for _, model := range []CoreModel{ModelInOrder, ModelOoO} {
		ref := runSerial(t, mustMachine(t, threadsProg, smallConfig(4, model)))
		for _, s := range []Scheme{SchemeCC, SchemeQ10, SchemeL10, SchemeS9x} {
			m := mustMachine(t, threadsProg, smallConfig(4, model))
			res, err := m.RunFused(s)
			if err != nil {
				t.Fatal(err)
			}
			if res.EndTime != ref.EndTime {
				t.Errorf("model %d %v: fused end %d != serial %d", model, s, res.EndTime, ref.EndTime)
			}
			if want := expectTotal(4); res.Output != want {
				t.Errorf("model %d %v: output %q, want %q", model, s, res.Output, want)
			}
		}
	}
}

// fusedOutcome is the curated, host-schedule-independent outcome of a run
// (the same counter set TestBatchedSteppingDeterminism compares).
type fusedOutcome struct {
	endTime   int64
	roiCycles int64
	output    string
	exitCode  int64
	timeWarps int64
	cohWarps  int64
	cores     []cpu.Stats
}

func curatedOutcome(r *Result) fusedOutcome {
	o := fusedOutcome{
		endTime:   r.EndTime,
		roiCycles: r.ROICycles(),
		output:    r.Output,
		exitCode:  r.ExitCode,
		timeWarps: r.TimeWarps,
		cohWarps:  r.CoherenceWarps,
	}
	for _, st := range r.CoreStats {
		o.cores = append(o.cores, cpu.Stats{
			Committed:   st.Committed,
			Fetched:     st.Fetched,
			Squashed:    st.Squashed,
			Loads:       st.Loads,
			Stores:      st.Stores,
			Branches:    st.Branches,
			Mispred:     st.Mispred,
			Syscalls:    st.Syscalls,
			Retries:     st.Retries,
			MemFaults:   st.MemFaults,
			Prefetches:  st.Prefetches,
			OpsLoadDone: st.OpsLoadDone,
			OpsWB:       st.OpsWB,
			L1D:         st.L1D,
			L1I:         st.L1I,
			ROIMarked:   st.ROIMarked,
		})
	}
	return o
}

func diffOutcomes(t *testing.T, label string, a, b fusedOutcome) {
	t.Helper()
	if a.endTime != b.endTime {
		t.Errorf("%s: end time %d != %d", label, a.endTime, b.endTime)
	}
	if a.roiCycles != b.roiCycles {
		t.Errorf("%s: ROI cycles %d != %d", label, a.roiCycles, b.roiCycles)
	}
	if a.output != b.output {
		t.Errorf("%s: output %q != %q", label, a.output, b.output)
	}
	if a.exitCode != b.exitCode {
		t.Errorf("%s: exit code %d != %d", label, a.exitCode, b.exitCode)
	}
	if a.timeWarps != b.timeWarps || a.cohWarps != b.cohWarps {
		t.Errorf("%s: warps (%d,%d) != (%d,%d)", label, a.timeWarps, a.cohWarps, b.timeWarps, b.cohWarps)
	}
	for i := range a.cores {
		if a.cores[i] != b.cores[i] {
			t.Errorf("%s: core %d stats differ:\n a: %+v\n b: %+v", label, i, a.cores[i], b.cores[i])
		}
	}
}

// TestFusedDeterminism is the bit-exactness oracle from the issue: a paper
// workload under the deterministic schemes must produce an identical
// simulation through the fused, serial, and parallel drivers — end time,
// ROI cycles, output, warp counters, and every trajectory-determined
// per-core counter. Serial is only compared for CC (it *is* the CC
// engine); the parallel driver is compared for every conservative scheme.
func TestFusedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("workload runs")
	}
	w, err := workloads.Get("fft")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(w.Source(1), asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []CoreModel{ModelInOrder, ModelOoO} {
		model := model
		t.Run(fmt.Sprintf("model%d", model), func(t *testing.T) {
			mk := func() *Machine {
				cfg := smallConfig(4, model)
				cfg.MemSize = 64 << 20
				cfg.MaxCycles = 200_000_000
				m, err := NewMachine(prog, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := w.Init(m.Image(), 1); err != nil {
					t.Fatal(err)
				}
				return m
			}
			run := func(drive func(*Machine) (*Result, error)) fusedOutcome {
				t.Helper()
				m := mk()
				r, err := drive(m)
				if err != nil {
					t.Fatal(err)
				}
				if r.Aborted {
					t.Fatalf("run aborted at %d cycles", r.EndTime)
				}
				if err := w.Verify(m.Image(), r.Output, 1); err != nil {
					t.Fatal(err)
				}
				return curatedOutcome(r)
			}
			serial := run(func(m *Machine) (*Result, error) { return m.RunSerial() })
			for _, s := range []Scheme{SchemeCC, SchemeQ10, SchemeL10, SchemeS9x} {
				s := s
				fused := run(func(m *Machine) (*Result, error) { return m.RunFused(s) })
				par := run(func(m *Machine) (*Result, error) { return m.RunParallel(s) })
				diffOutcomes(t, fmt.Sprintf("%v fused-vs-parallel", s), fused, par)
				if s == SchemeCC {
					diffOutcomes(t, "CC fused-vs-serial", fused, serial)
				}
				t.Logf("%-4v end=%d roi=%d: fused, parallel%s identical", s, fused.endTime, fused.roiCycles,
					map[bool]string{true: ", serial", false: ""}[s == SchemeCC])
			}
		})
	}
}

// TestFusedZeroAlloc mirrors TestDriverAllocsBounded for the fused driver:
// with metrics off, host heap allocations must stay a small per-run
// constant instead of scaling with committed instructions. The fused
// budget is tighter than the parallel one — no goroutines, parks, or ring
// growth — but keeps the same shape so the two gates read alike.
func TestFusedZeroAlloc(t *testing.T) {
	for _, model := range []CoreModel{ModelInOrder, ModelOoO} {
		model := model
		t.Run(fmt.Sprintf("model%d", model), func(t *testing.T) {
			m := mustMachine(t, allocLoopProg, smallConfig(1, model))
			res, err := m.RunFused(SchemeCC)
			if err != nil {
				t.Fatal(err)
			}
			if res.Aborted {
				t.Fatalf("aborted after %d cycles", res.EndTime)
			}
			if res.Committed < 300_000 {
				t.Fatalf("committed = %d, want a long run", res.Committed)
			}
			budget := uint64(20_000) + uint64(res.Committed/1000)
			if res.HostAllocs > budget {
				t.Errorf("HostAllocs = %d over %d instrs (%.2f/kinstr), budget %d",
					res.HostAllocs, res.Committed, res.AllocsPerKInstr(), budget)
			}
			t.Logf("HostAllocs=%d (%.3f/kinstr) GCs=%d pause=%v",
				res.HostAllocs, res.AllocsPerKInstr(), res.HostGCs, res.HostGCPauses)
		})
	}
}

// TestFusedRejectsShardedConfigs pins the driver's scope: fused is a
// single-goroutine engine, so sharded-manager and remote-shard machines
// must be refused with an error rather than silently mis-executed.
func TestFusedRejectsShardedConfigs(t *testing.T) {
	cfg := smallConfig(4, ModelInOrder)
	cfg.ManagerShards = 2
	m := mustMachine(t, sumProg, cfg)
	if _, err := m.RunFused(SchemeCC); err == nil {
		t.Fatal("RunFused accepted ManagerShards=2")
	}
}
