package core_test

import (
	"fmt"
	"log"

	"slacksim/internal/asm"
	"slacksim/internal/core"
)

// Example assembles a small program, runs it on a 2-core target under the
// paper's recommended bounded-slack scheme, and prints what the workload
// printed.
func Example() {
	prog, err := asm.Assemble(`
main:
    li   r8, 0
    li   r9, 1
loop:
    add  r8, r8, r9
    addi r9, r9, 1
    li   r10, 101
    blt  r9, r10, loop
    mv   a0, r8
    syscall 12          # print_int
    li   a0, 0
    syscall 0           # exit
`, asm.Options{})
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.NumCores = 2
	cfg.Cache.NumCores = 2
	m, err := core.NewMachine(prog, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.RunParallel(core.SchemeS9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Output)
	// Output: 5050
}
