package core

import "math"

// This file is the manager-scalability core of PR 4: a cache-line-aware
// tournament min-tree over the per-core effective local times. The old
// manager recomputed the global time by scanning all N per-core clock
// atomics every round (minLocal), touching N contended cache lines even
// when nothing had changed. With the tree, a core updates its own leaf on
// local-time publication — O(log N) stores, and only when its clock
// actually moved — and the manager reads the root in O(1). The per-round
// manager cost becomes proportional to activity, not core count.
//
// Leaf semantics mirror minLocal exactly: a core asleep in a blocking
// system call contributes the +inf sentinel (excluded from the minimum);
// otherwise it contributes max(local, resumeFloor), so a core granted out
// of a blocking wait counts at its resume time until its frozen clock
// catches up. When every leaf is the sentinel the root is the sentinel and
// the caller falls back to the current global time (all-blocked workload
// deadlock; the watchdog handles it).
//
// Concurrency: leaves are written by their owning core goroutine (clock
// publication) and by the manager goroutine (blocked/resumeFloor
// transitions); internal nodes are recomputed by whichever updater passes
// through. Every node write uses a store-then-verify loop: store the min
// of the children, re-read the children, and repeat if they changed. With
// Go's sequentially consistent atomics this makes the tree eventually
// exact after any quiescent point: consider the last store to a node in
// the total order of atomic operations — either its writer read both
// children's final values, or a child changed after that read, and the
// child's updater (which always stores the parent after storing the
// child) would have produced a later parent store, a contradiction. The
// property/fuzz test (mintree_test.go) checks the tree against the naive
// minLocal scan under concurrent publishes, blocked flips and floor
// updates, with and without the race detector.
//
// All nodes are padded to a cache line (the padded type), so a core
// hammering its leaf never false-shares with a sibling's leaf, and the
// frequently-read root sits alone on its line.

// minTreeInf is the blocked-core sentinel: such cores never win the
// tournament, exactly as minLocal's skip of blocked cores.
const minTreeInf = math.MaxInt64

// minTree is a 1-based implicit binary tree: nodes[1] is the root, leaves
// occupy nodes[base : base+n], and unused leaves hold the sentinel.
type minTree struct {
	n     int
	base  int
	nodes []padded
}

func newMinTree(n int) *minTree {
	base := 1
	for base < n {
		base <<= 1
	}
	t := &minTree{n: n, base: base, nodes: make([]padded, 2*base)}
	for i := range t.nodes {
		t.nodes[i].v.Store(minTreeInf)
	}
	for i := 0; i < n; i++ {
		t.nodes[base+i].v.Store(0)
	}
	for idx := base - 1; idx >= 1; idx-- {
		t.nodes[idx].v.Store(min(t.nodes[2*idx].v.Load(), t.nodes[2*idx+1].v.Load()))
	}
	return t
}

// root returns the current tournament minimum (minTreeInf when every live
// leaf is blocked). O(1): a single atomic load.
func (t *minTree) root() int64 { return t.nodes[1].v.Load() }

// leaf returns leaf i's current value (tests and forensics).
func (t *minTree) leaf(i int) int64 { return t.nodes[t.base+i].v.Load() }

// setLeaf stores leaf i without propagating (callers follow with
// propagate; split so the machine's leaf refresh can store-then-verify
// against the pacing atomics before paying for the upward pass).
func (t *minTree) setLeaf(i int, v int64) { t.nodes[t.base+i].v.Store(v) }

// propagate recomputes every ancestor of leaf i with the store-then-verify
// loop described above. O(log n) on the quiet path; a handful of extra
// iterations under contention.
func (t *minTree) propagate(i int) {
	for idx := (t.base + i) >> 1; idx >= 1; idx >>= 1 {
		for {
			v := min(t.nodes[2*idx].v.Load(), t.nodes[2*idx+1].v.Load())
			t.nodes[idx].v.Store(v)
			if min(t.nodes[2*idx].v.Load(), t.nodes[2*idx+1].v.Load()) == v {
				break
			}
		}
	}
}

// update is the one-call form: set leaf i to v and rebuild its path to the
// root. Used directly by tests and benchmarks; the engine goes through
// Machine.refreshMinLeaf, which derives v from the pacing atomics.
func (t *minTree) update(i int, v int64) {
	t.setLeaf(i, v)
	t.propagate(i)
}

// argmin walks from the root toward the leaf that (currently) holds the
// tournament minimum and returns its index in [0, n). Under concurrent
// updates the walk is advisory — a child may change between the read that
// chose it and the next level — which is exactly the accuracy straggler
// attribution needs: the manager charges the round to whichever core's
// leaf held the root at the moment it looked. Returns -1 when the root is
// the all-blocked sentinel.
func (t *minTree) argmin() int {
	if t.root() == minTreeInf {
		return -1
	}
	idx := 1
	for idx < t.base {
		l, r := t.nodes[2*idx].v.Load(), t.nodes[2*idx+1].v.Load()
		if r < l {
			idx = 2*idx + 1
		} else {
			idx = 2 * idx
		}
	}
	if i := idx - t.base; i < t.n {
		return i
	}
	// A concurrent update steered the walk into the unused sentinel
	// padding; clamp to the last live core rather than report nonsense.
	return t.n - 1
}

// minLeafVal computes core i's effective local time from the pacing
// atomics — the value its tree leaf must converge to. Identical to one
// iteration of the reference minLocal scan.
func (m *Machine) minLeafVal(i int) int64 {
	if m.blocked[i].v.Load() != 0 {
		return minTreeInf
	}
	v := m.local[i].v.Load()
	if f := m.resumeFloor[i].v.Load(); f > v {
		v = f
	}
	return v
}

// refreshMinLeaf re-derives core i's leaf from the pacing atomics and
// propagates. The store-then-verify loop at the leaf closes the race
// between a core publishing its clock and the manager flipping the same
// core's blocked flag: whichever write lands last in the total atomic
// order re-reads the inputs after its store and either confirms the leaf
// or fixes it, and then propagates to the root. Without the verify, a
// stale max(local, floor) could overwrite the blocked sentinel and wedge
// the global time on a frozen clock (the deadlock blocked-exclusion
// exists to prevent).
func (m *Machine) refreshMinLeaf(i int) {
	for {
		v := m.minLeafVal(i)
		m.lt.setLeaf(i, v)
		if m.minLeafVal(i) == v {
			break
		}
	}
	m.lt.propagate(i)
}

// publishLocal publishes core i's local clock: the authoritative per-core
// atomic (read by forensics, audits and the reference scan), the tree
// leaf, and the manager wake epoch. Called from the owning core goroutine
// at batch boundaries, fast-forwards and injected clock warps — already
// amortised sites, so the O(log N) leaf path replaces the manager's
// every-round O(N) scan at no per-cycle cost.
func (m *Machine) publishLocal(i int, v int64) {
	m.local[i].v.Store(v)
	m.refreshMinLeaf(i)
	m.bumpMgrEpoch()
}

// globalMin returns the manager's global-time candidate: the tree root,
// or the current global time unchanged when every live core is blocked in
// the kernel (minLocal's all-blocked fallback).
func (m *Machine) globalMin() int64 {
	if v := m.lt.root(); v != minTreeInf {
		return v
	}
	return m.global.Load()
}

// minLocal is the naive O(N) scan the min-tree replaced. It remains the
// reference oracle: the property test cross-checks the tree root against
// it at every quiescent point, and diagnostics may use it freely (it has
// no side effects).
func (m *Machine) minLocal() int64 {
	lo := int64(-1)
	for i := range m.local {
		if m.blocked[i].v.Load() != 0 {
			continue
		}
		v := m.local[i].v.Load()
		// A core granted out of a blocking wait counts at its resume time
		// until its (possibly still frozen) clock catches up.
		if f := m.resumeFloor[i].v.Load(); f > v {
			v = f
		}
		if lo < 0 || v < lo {
			lo = v
		}
	}
	if lo < 0 {
		return m.global.Load()
	}
	return lo
}
