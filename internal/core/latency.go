package core

import (
	"time"

	"slacksim/internal/event"
)

// This file is the memory-event latency attribution layer: every request a
// core pushes through Env.Send is stamped (simulated issue time + host
// nanosecond), the manager copies the stamps into the reply it emits, and
// the delivery site (deliverInbox, shared by the serial, parallel and
// sharded drivers) attributes the full request→reply latency in simulated
// cycles and in host time to the requesting core's histograms. On top of
// that sits per-round straggler attribution: each manager round the
// min-tree's argmin identifies the core whose effective local time held
// the global time back, feeding a per-core held-round count and an EWMA of
// the held fraction — the live answer to "which core is the straggler?".
//
// Everything here is behind the established nil-fast-path gate: with
// metrics disabled the stamps stay zero and each site pays one predictable
// nil/zero check (covered by the disabled-overhead budget test in
// internal/metrics).

// hostNS returns nanoseconds since the machine was built — the host clock
// the latency stamps and trace records share.
func (m *Machine) hostNS() int64 { return time.Since(m.epoch).Nanoseconds() }

// observeMemLatency attributes one delivered memory reply to core i's
// latency histograms (and the machine-wide aggregates): the simulated
// request→delivery lag and the host-time round trip through the manager.
// Called from deliverInbox, so all three drivers measure identically.
func (m *Machine) observeMemLatency(i int, ev *event.Event, local int64) {
	met := m.met
	if met == nil {
		return
	}
	met.memLat.Observe(local - ev.ReqTime)
	met.coreMemLat[i].Observe(local - ev.ReqTime)
	hostLat := m.hostNS() - ev.SendNS
	met.memLatNS.Observe(hostLat)
	met.coreMemLatNS[i].Observe(hostLat)
}

// stragglerAlpha is the EWMA smoothing factor and stragglerWindow the
// number of manager rounds per EWMA update. The per-round cost is O(1)
// (one argmin walk + one counter bump); the O(N) decay pass runs once per
// window, keeping the manager's activity-proportional round cost intact.
const (
	stragglerAlpha  = 0.125
	stragglerWindow = 64
)

// stragglerState is the manager-owned straggler attribution state. The
// held/winHeld/ewma slices are touched only by the manager goroutine (and
// read after the run joins); heldPub/ewmaPPM are padded atomic mirrors the
// live /slack view reads concurrently.
type stragglerState struct {
	held    []int64 // total rounds core i's leaf held the min-tree root
	winHeld []int64 // held counts within the current EWMA window
	rounds  int64
	ewma    []float64
	heldPub []padded // atomic mirror of held
	ewmaPPM []padded // atomic mirror of ewma, in parts-per-million
}

func newStragglerState(n int) *stragglerState {
	return &stragglerState{
		held:    make([]int64, n),
		winHeld: make([]int64, n),
		ewma:    make([]float64, n),
		heldPub: make([]padded, n),
		ewmaPPM: make([]padded, n),
	}
}

// noteStraggler charges the current manager round to the core whose leaf
// holds the min-tree root. Called once per round from the manager loops
// when metrics are enabled; the serial driver never calls it (its global
// time is the loop induction variable, no core ever "holds it back").
func (m *Machine) noteStraggler() {
	st := m.strag
	if st == nil {
		return
	}
	i := m.lt.argmin()
	if i < 0 {
		return
	}
	st.held[i]++
	st.heldPub[i].v.Store(st.held[i])
	st.winHeld[i]++
	if st.rounds++; st.rounds%stragglerWindow == 0 {
		for c := range st.ewma {
			sample := float64(st.winHeld[c]) / stragglerWindow
			st.winHeld[c] = 0
			st.ewma[c] = st.ewma[c]*(1-stragglerAlpha) + sample*stragglerAlpha
			st.ewmaPPM[c].v.Store(int64(st.ewma[c] * 1e6))
		}
	}
}

// Straggler summarises one core's share of the blame for the global time's
// pace over a run: how many manager rounds its effective local time held
// the min-tree root (HeldRounds, HeldFrac of all attributed rounds) and
// the end-of-run EWMA of that held fraction.
type Straggler struct {
	Core       int     `json:"core"`
	HeldRounds int64   `json:"held_rounds"`
	HeldFrac   float64 `json:"held_frac"`
	EWMA       float64 `json:"ewma"`
}

// stragglers builds the per-core summary (post-join; manager-owned state
// is quiescent). Returns a zeroed slice for drivers that never attribute
// rounds (the serial engine), keeping Result and metric shapes identical
// across drivers.
func (m *Machine) stragglers() []Straggler {
	st := m.strag
	if st == nil {
		return nil
	}
	out := make([]Straggler, len(st.held))
	for i := range st.held {
		out[i] = Straggler{Core: i, HeldRounds: st.held[i], EWMA: st.ewma[i]}
		if st.rounds > 0 {
			out[i].HeldFrac = float64(st.held[i]) / float64(st.rounds)
		}
	}
	return out
}
