package core

import (
	"runtime"
	"time"

	"slacksim/internal/cache"
	"slacksim/internal/cpu"
	"slacksim/internal/metrics"
)

// Result summarises one simulation run.
type Result struct {
	Scheme   Scheme
	ExitCode int64
	// EndTime is the simulated cycle of the workload's exit syscall (the
	// paper's "execution time", the metric Table 3 compares across
	// schemes). When the run aborts at MaxCycles it is the global time at
	// abort.
	EndTime int64
	// ROIStart is the simulated cycle at which the workload reset
	// statistics (after spawning its threads, §4.1); 0 if never.
	ROIStart int64
	// Committed is the total instructions committed in the region of
	// interest, summed over cores.
	Committed int64
	// Wall is the host wall-clock duration of the run.
	Wall time.Duration
	// Aborted reports the MaxCycles safety abort.
	Aborted bool
	// Forensics is the engine-state snapshot captured when the run
	// aborted at MaxCycles (nil on clean exits). Watchdog stalls and
	// contained panics return errors instead, carrying their own report.
	Forensics *StallReport
	// Output is everything the workload printed.
	Output string
	// TimeWarps counts kernel synchronisation operations processed out of
	// timestamp order — the workload-level distortion indicator of §3.2.3
	// (0 under conservative schemes).
	TimeWarps int64
	// CoherenceWarps counts directory requests processed out of timestamp
	// order per line — the simulated-system-state distortion of §3.2.2
	// (0 under conservative schemes).
	CoherenceWarps int64
	// BlockedParks counts, per core, how often the core thread hit the
	// window edge and had to wait for the manager.
	BlockedParks []int64
	// CoreStats exposes the per-core counters.
	CoreStats []*cpu.Stats
	// L2Stats exposes the shared-hierarchy counters.
	L2Stats cache.L2Stats

	// Observability results, filled only when EnableMetrics was called
	// before the run (see observe.go).

	// Metrics is the registry attached with EnableMetrics, now holding
	// the end-of-run counter snapshot.
	Metrics *metrics.Registry
	// EventsProcessed is the total number of GQ events the manager (and
	// shard workers) processed.
	EventsProcessed int64
	// ManagerBusy is the host time the manager thread spent on rounds
	// that drained, processed, or slid windows (its productive share of
	// the run; the rest of its time is idle polling).
	ManagerBusy time.Duration
	// CoreBusy is, per core, the total host time its simulation
	// goroutine ran, and CoreWait the share of that spent blocked on the
	// manager (window-edge parks plus optimistic reply freezes).
	// CoreBusy − CoreWait is host time spent actually simulating — the
	// simulate/wait/manager sync-overhead breakdown of the paper's §4.2.
	CoreBusy []time.Duration
	CoreWait []time.Duration
	// Stragglers attributes the run's manager rounds to the cores whose
	// local times held the global time back (latency.go); indexed by
	// core, all-zero counts for the serial engine.
	Stragglers []Straggler
	// Wire holds the wire-protocol traffic counters of a remote-sharded
	// run (nil for in-process runs): the parent connections' side and
	// the workers' own, as shipped in their FStats frames.
	Wire *RemoteWireStats
	// Recovery summarises the fault-tolerance activity of a remote run
	// (nil for in-process runs; all-zero when nothing went wrong):
	// reconnects, journal replays, checkpoints, and degradations.
	Recovery *RecoveryStats

	// Host allocation accounting (runtime.MemStats deltas across the run,
	// captured by every driver entry point). HostAllocs is the number of
	// heap objects allocated while the run executed — the zero-allocation
	// hot loop keeps this flat in instruction count (metrics disabled).
	// HostGCs and HostGCPauses count collections and total stop-the-world
	// pause time triggered during the run.
	HostAllocs   uint64
	HostGCs      uint32
	HostGCPauses time.Duration
}

// AllocsPerKInstr is HostAllocs per thousand committed instructions — the
// steady-state allocation figure the perf docs track (0.0x for a healthy
// hot loop; metrics and tracing add bounded per-run, not per-instruction,
// allocations).
func (r *Result) AllocsPerKInstr() float64 {
	if r.Committed == 0 {
		return 0
	}
	return float64(r.HostAllocs) / (float64(r.Committed) / 1e3)
}

// hostMemBaseline snapshots the runtime allocation counters at run start;
// result() reports the deltas. ReadMemStats stops the world, so it runs
// only at the run boundaries, never inside the loops.
type hostMemBaseline struct {
	mallocs uint64
	numGC   uint32
	pauseNS uint64
}

func (m *Machine) captureHostMem() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.hostMem = hostMemBaseline{ms.Mallocs, ms.NumGC, ms.PauseTotalNs}
	m.hostMemValid = true
}

// ROICycles is the simulated execution time of the region of interest.
func (r *Result) ROICycles() int64 { return r.EndTime - r.ROIStart }

// KIPS returns simulated kilo-instructions committed per wall-clock second
// (the Table 2 metric).
func (r *Result) KIPS() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Committed) / 1e3 / r.Wall.Seconds()
}

func (m *Machine) result(wall time.Duration) *Result {
	// An Interrupt() arrives on a foreign goroutine, so it sets an atomic
	// flag rather than racing on the manager-owned bool; fold it in here,
	// after every goroutine has joined, so an interrupted run reports as
	// aborted and carries a forensics snapshot like a MaxCycles abort.
	if m.intr.Load() {
		m.aborted = true
	}
	res := &Result{
		Scheme:       m.scheme,
		ExitCode:     m.exitCode,
		EndTime:      m.endTime,
		Wall:         wall,
		Aborted:      m.aborted,
		Output:       m.kernel.Output(),
		TimeWarps:    m.kernel.TimeWarps,
		BlockedParks: m.waitCycles,
		L2Stats:      m.aggregateL2Stats(),
	}
	res.CoherenceWarps = res.L2Stats.OrderViolations
	if m.aborted || m.endTime == 0 {
		res.EndTime = m.global.Load()
	}
	if m.aborted {
		// result() runs after every goroutine joined, so the kernel and
		// GQ are safe to read.
		res.Forensics = m.snapshot(true, 0)
	}
	if t := m.roiTime.Load(); t > 0 {
		res.ROIStart = t
	}
	for _, c := range m.cores {
		st := c.Stats()
		res.CoreStats = append(res.CoreStats, st)
		res.Committed += st.ROICommitted()
	}
	res.Wire = m.remoteWire()
	res.Recovery = m.remoteRecovery()
	if m.hostMemValid {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		res.HostAllocs = ms.Mallocs - m.hostMem.mallocs
		res.HostGCs = ms.NumGC - m.hostMem.numGC
		res.HostGCPauses = time.Duration(ms.PauseTotalNs - m.hostMem.pauseNS)
	}
	m.publishObservability(res)
	return res
}
