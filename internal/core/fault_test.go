package core

import (
	"encoding/json"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"slacksim/internal/event"
	"slacksim/internal/faultinject"
)

// pingPongProg: core 0 polls a shared word while core 1 overwrites it —
// guaranteed cross-core invalidation traffic for the delivery-audit tests.
const pingPongProg = `
main:
    la   a0, worker
    li   a1, 1
    syscall 1            # tcreate worker on core 1
    li   r20, 0
rd_loop:
    li   r8, 300
    bge  r20, r8, rd_done
    la   r9, shared
    ld   r10, 0(r9)
    addi r20, r20, 1
    j    rd_loop
rd_done:
    li   a0, 1
    syscall 3            # tjoin
    li   a0, 0
    syscall 0            # exit
worker:
    li   r20, 0
wr_loop:
    li   r8, 300
    bge  r20, r8, wr_done
    la   r9, shared
    sd   r20, 0(r9)
    addi r20, r20, 1
    j    wr_loop
wr_done:
    syscall 2            # texit
.data
.align 8
shared: .dword 0
`

// settleGoroutines waits for the spawned goroutines of a finished run to
// unwind (the runtime needs a moment after wg.Wait returns).
func settleGoroutines(before int) int {
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

func TestFaultPanicContainmentNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	m := mustMachine(t, sumProg, smallConfig(2, ModelOoO))
	if err := m.EnableFaults(faultinject.NewPlan(faultinject.Fault{
		Kind: faultinject.Panic, Core: 0, At: 1,
	})); err != nil {
		t.Fatal(err)
	}
	res, err := m.RunParallel(SchemeS9)
	if err == nil {
		t.Fatal("injected panic did not surface an error")
	}
	if res != nil {
		t.Fatal("faulted run returned a result")
	}
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T, want *SimError", err)
	}
	if se.Core != 0 || se.Op != "core-loop" {
		t.Fatalf("fault attributed to %s/%s, want core 0/core-loop", goroutineName(se.Core), se.Op)
	}
	if !strings.Contains(se.Detail, "injected panic") {
		t.Fatalf("detail = %q", se.Detail)
	}
	if se.Stack == "" {
		t.Fatal("no stack captured")
	}
	if se.Report == nil || len(se.Report.Cores) != 2 {
		t.Fatalf("post-join report missing or wrong shape: %+v", se.Report)
	}
	if n := settleGoroutines(before); n > before {
		t.Fatalf("goroutine leak: %d before, %d after", before, n)
	}
}

func TestFaultManagerPanicContainment(t *testing.T) {
	before := runtime.NumGoroutine()
	m := mustMachine(t, sumProg, smallConfig(2, ModelOoO))
	if err := m.EnableFaults(faultinject.NewPlan(faultinject.Fault{
		Kind: faultinject.Panic, Core: faultinject.Manager, At: 1,
	})); err != nil {
		t.Fatal(err)
	}
	_, err := m.RunParallel(SchemeS9)
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T, want *SimError", err)
	}
	if se.Core != faultinject.Manager || se.Op != "manager" {
		t.Fatalf("fault attributed to %s/%s, want manager/manager", goroutineName(se.Core), se.Op)
	}
	if n := settleGoroutines(before); n > before {
		t.Fatalf("goroutine leak: %d before, %d after", before, n)
	}
}

func TestFaultShardWorkerPanicContainment(t *testing.T) {
	cfg := smallConfig(2, ModelOoO)
	cfg.ManagerShards = 2
	m := mustMachine(t, pingPongProg, cfg)
	if err := m.EnableFaults(faultinject.NewPlan(faultinject.Fault{
		Kind: faultinject.Panic, Core: faultinject.ShardWorker(1), At: 0,
	})); err != nil {
		t.Fatal(err)
	}
	_, err := m.RunParallel(SchemeS9)
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T, want *SimError", err)
	}
	if se.Core != faultinject.ShardWorker(1) || se.Op != "shard-worker" {
		t.Fatalf("fault attributed to %s/%s, want shard-worker 1", goroutineName(se.Core), se.Op)
	}
}

func TestFaultRingOverflowContainment(t *testing.T) {
	cfg := smallConfig(1, ModelOoO)
	cfg.RingCap = 64
	m := mustMachine(t, sumProg, cfg)
	if err := m.EnableFaults(faultinject.NewPlan(faultinject.Fault{
		Kind: faultinject.RingFlood, Core: 0, At: 1,
	})); err != nil {
		t.Fatal(err)
	}
	_, err := m.RunParallel(SchemeS9)
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T, want *SimError", err)
	}
	var of *event.OverflowError
	if !errors.As(err, &of) {
		t.Fatalf("overflow cause not exposed: %v", err)
	}
	if of.Ring != "outq.c0" {
		t.Fatalf("overflow ring = %q, want outq.c0", of.Ring)
	}
	if of.Cap != 64 {
		t.Fatalf("overflow cap = %d, want 64", of.Cap)
	}
	if of.HighWater < int64(of.Cap) {
		t.Fatalf("high water %d below capacity %d", of.HighWater, of.Cap)
	}
}

// TestWatchdogStallReportForensics deadlocks a single-core machine (all
// cores asleep in the kernel, so the global time can never advance) and
// checks the watchdog's forensic report: per-core clocks, flags, and the
// kernel's held-lock owner.
func TestWatchdogStallReportForensics(t *testing.T) {
	cfg := smallConfig(1, ModelOoO)
	cfg.StallTimeout = 2 * time.Second
	m := mustMachine(t, deadlockProg, cfg)
	start := time.Now()
	res, err := m.RunParallel(SchemeS9)
	if wall := time.Since(start); wall > 30*time.Second {
		t.Fatalf("watchdog took %v", wall)
	}
	if res != nil {
		t.Fatal("stalled run returned a result")
	}
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("error is %T (%v), want *StallError", err, err)
	}
	r := stall.Report
	if r == nil {
		t.Fatal("no StallReport attached")
	}
	if len(r.Cores) != 1 {
		t.Fatalf("report has %d cores, want 1", len(r.Cores))
	}
	c := r.Cores[0]
	if !c.Blocked {
		t.Fatalf("deadlocked core not reported blocked: %+v", c)
	}
	if c.Local < 0 || c.MaxLocal < c.Local {
		t.Fatalf("implausible clocks in report: %+v", c)
	}
	if r.Kernel == nil || len(r.Kernel.Locks) != 1 {
		t.Fatalf("kernel lock state missing: %+v", r.Kernel)
	}
	lk := r.Kernel.Locks[0]
	if lk.Addr != 8192 || lk.Owner != 0 {
		t.Fatalf("lock forensics = %+v, want addr 8192 owned by core 0", lk)
	}
	if len(lk.Waiters) != 1 || lk.Waiters[0] != 0 {
		t.Fatalf("lock waiters = %v, want [0] (self-deadlock)", lk.Waiters)
	}

	// Both renderings: the text dump names the owner, and the JSON round-
	// trips the same structure.
	text := r.Text()
	for _, want := range []string{"core 0:", "blocked", "owner=c0"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text report missing %q:\n%s", want, text)
		}
	}
	b, jerr := r.JSON()
	if jerr != nil {
		t.Fatal(jerr)
	}
	var back StallReport
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if len(back.Cores) != 1 || !back.Cores[0].Blocked || back.Kernel == nil {
		t.Fatalf("round-tripped report lost data: %+v", back)
	}
}

// TestFaultStallTriggersWatchdog pins core 0's clock with an injected
// stall; the global time can never pass it, so the watchdog must fire and
// the report must name the stalled core.
func TestFaultStallTriggersWatchdog(t *testing.T) {
	cfg := smallConfig(2, ModelOoO)
	cfg.StallTimeout = 2 * time.Second
	m := mustMachine(t, sumProg, cfg)
	if err := m.EnableFaults(faultinject.NewPlan(faultinject.Fault{
		Kind: faultinject.Stall, Core: 0, At: 100,
	})); err != nil {
		t.Fatal(err)
	}
	_, err := m.RunParallel(SchemeS9)
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("error is %T (%v), want *StallError", err, err)
	}
	if !strings.Contains(err.Error(), "c0") {
		t.Fatalf("stall error does not name the stalled core: %v", err)
	}
	if r := stall.Report; r == nil || r.Cores[0].Local < 100 || r.Cores[0].Local > r.Global+1 {
		t.Fatalf("report does not pin core 0 at the global time: %+v", r)
	}
}

func TestFaultAuditorCatchesClockWarp(t *testing.T) {
	cfg := smallConfig(2, ModelOoO)
	cfg.Audit = true
	cfg.AuditEvery = 1
	m := mustMachine(t, sumProg, cfg)
	if err := m.EnableFaults(faultinject.NewPlan(faultinject.Fault{
		Kind: faultinject.ClockWarp, Core: 0, At: 200, Dur: 100,
	})); err != nil {
		t.Fatal(err)
	}
	_, err := m.RunParallel(SchemeS9)
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T (%v), want *SimError", err, err)
	}
	if se.Op != "invariant-audit" || se.Core != 0 {
		t.Fatalf("violation attributed to %s/%s, want core 0/invariant-audit", goroutineName(se.Core), se.Op)
	}
	if !strings.Contains(se.Detail, "backwards") {
		t.Fatalf("detail = %q, want monotonicity violation", se.Detail)
	}
}

func TestFaultAuditorCatchesLateDelivery(t *testing.T) {
	for _, serial := range []bool{false, true} {
		cfg := smallConfig(2, ModelOoO)
		cfg.Audit = true
		cfg.AuditEvery = 1
		m := mustMachine(t, pingPongProg, cfg)
		// Hold invalidations to the polling core 100 cycles past their
		// timestamps: a conservative scheme then delivers them late, which
		// the auditor must flag (delayed invalidations never block the
		// core, so its clock keeps advancing past the held timestamps).
		if err := m.EnableFaults(faultinject.NewPlan(faultinject.Fault{
			Kind: faultinject.DelayDelivery, Core: 0, At: 0, Dur: 100,
			EvKinds: []event.Kind{event.KInv, event.KDowngrade},
		})); err != nil {
			t.Fatal(err)
		}
		var err error
		if serial {
			_, err = m.RunSerial()
		} else {
			_, err = m.RunParallel(SchemeCC)
		}
		var se *SimError
		if !errors.As(err, &se) {
			t.Fatalf("serial=%v: error is %T (%v), want *SimError", serial, err, err)
		}
		if se.Op != "invariant-audit" || !strings.Contains(se.Detail, "late delivery") {
			t.Fatalf("serial=%v: got %s: %q", serial, se.Op, se.Detail)
		}
		if se.Event == nil || (se.Event.Kind != event.KInv && se.Event.Kind != event.KDowngrade) {
			t.Fatalf("serial=%v: offending event not attached: %+v", serial, se.Event)
		}
	}
}

// TestFaultAuditorCleanRun checks the auditor is quiet on healthy runs
// across scheme families (no false positives, including the blocking-
// syscall resume transients).
func TestFaultAuditorCleanRun(t *testing.T) {
	for _, s := range []Scheme{SchemeCC, SchemeS9, SchemeSU} {
		cfg := smallConfig(2, ModelOoO)
		cfg.Audit = true
		cfg.AuditEvery = 1
		m := mustMachine(t, pingPongProg, cfg)
		res, err := m.RunParallel(s)
		if err != nil {
			t.Fatalf("%v: auditor false positive: %v", s, err)
		}
		if res.Aborted {
			t.Fatalf("%v: aborted", s)
		}
	}
	cfg := smallConfig(2, ModelOoO)
	cfg.Audit = true
	cfg.AuditEvery = 1
	if _, err := runSerialErr(mustMachine(t, pingPongProg, cfg)); err != nil {
		t.Fatalf("serial: auditor false positive: %v", err)
	}
}

func runSerialErr(m *Machine) (*Result, error) { return m.RunSerial() }

func TestFaultPlanValidation(t *testing.T) {
	m := mustMachine(t, sumProg, smallConfig(2, ModelOoO))
	bad := []faultinject.Fault{
		{Kind: faultinject.Panic, Core: 7},                              // core out of range
		{Kind: faultinject.Stall, Core: faultinject.Manager},            // non-panic on manager
		{Kind: faultinject.RingFlood, Core: faultinject.ShardWorker(0)}, // non-panic on shard
		{Kind: faultinject.Panic, Core: faultinject.ShardWorker(0)},     // no shards configured
		{Kind: faultinject.DelayDelivery, Core: 0},                      // missing Dur
		{Kind: faultinject.ClockWarp, Core: 0},                          // missing Dur
	}
	for _, f := range bad {
		if err := m.EnableFaults(faultinject.NewPlan(f)); err == nil {
			t.Errorf("fault %v accepted", f)
		}
	}
	if err := m.EnableFaults(nil); err != nil {
		t.Errorf("nil plan rejected: %v", err)
	}
}

// TestContainmentRealPanicPath drives a real (not injected) panic through
// containment: an invalid instruction executed by the in-order core.
func TestContainmentRealPanicPath(t *testing.T) {
	// Jump into the data section: the core fetches a non-instruction word.
	prog := `
main:
    la   r9, blob
    jalr r0, r9, 0
.data
.align 8
blob: .dword -1
`
	m := mustMachine(t, prog, smallConfig(1, ModelInOrder))
	_, err := m.RunParallel(SchemeCC)
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T (%v), want *SimError", err, err)
	}
	if se.Core != 0 {
		t.Fatalf("fault attributed to %s, want core 0", goroutineName(se.Core))
	}
}
