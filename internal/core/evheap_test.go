package core

import (
	"math/rand"
	"sort"
	"testing"

	"slacksim/internal/event"
)

// TestEvHeapProperty drives the GQ heap with pseudo-random push/pop mixes —
// including the timestamp-sorted streams that exercise the no-sift-up
// append fast path — and checks every pop against a sorted reference.
func TestEvHeapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mkEvent := func(timeRange int64) event.Event {
		return event.Event{
			Kind: event.KReadShared,
			Time: rng.Int63n(timeRange),
			Core: int32(rng.Intn(8)),
			Seq:  rng.Int63n(1000),
		}
	}
	for trial := 0; trial < 200; trial++ {
		var h evHeap
		var ref []event.Event
		n := 1 + rng.Intn(64)
		sorted := trial%2 == 0 // alternate: sorted streams hit the fast path
		nextTime := int64(0)
		for j := 0; j < n; j++ {
			var ev event.Event
			if sorted {
				nextTime += rng.Int63n(4) // nondecreasing, as cores emit
				ev = mkEvent(100)
				ev.Time = nextTime
			} else {
				ev = mkEvent(100)
			}
			h.Push(ev)
			ref = append(ref, ev)
			// Interleave pops so the heap is exercised at many shapes.
			if rng.Intn(4) == 0 && h.Len() > 0 {
				got := h.Pop()
				sort.SliceStable(ref, func(a, b int) bool { return event.Less(&ref[a], &ref[b]) })
				want := ref[0]
				ref = ref[1:]
				if got != want {
					t.Fatalf("trial %d: interleaved pop = %+v, want %+v", trial, got, want)
				}
			}
		}
		sort.SliceStable(ref, func(a, b int) bool { return event.Less(&ref[a], &ref[b]) })
		for j := range ref {
			got := h.Pop()
			if got != ref[j] {
				t.Fatalf("trial %d: pop %d = %+v, want %+v", trial, j, got, ref[j])
			}
		}
		if h.Len() != 0 {
			t.Fatalf("trial %d: heap not empty after draining", trial)
		}
	}
}

// TestEvHeapFastPathAppend pins the fast-path condition itself: an event
// not below its would-be parent must append without breaking the heap
// order even when it is below the current top (the case where a
// "not-below-top" shortcut would corrupt the heap).
func TestEvHeapFastPathAppend(t *testing.T) {
	var h evHeap
	for _, ti := range []int64{10, 20, 30, 40, 50, 60, 70} {
		h.Push(event.Event{Kind: event.KFetch, Time: ti})
	}
	// Parent of the next slot (index 7) is index 3 (Time 40): Time 45 is
	// above its parent but below Times 50..70 elsewhere in the heap.
	h.Push(event.Event{Kind: event.KFetch, Time: 45})
	var got []int64
	for h.Len() > 0 {
		got = append(got, h.Pop().Time)
	}
	want := []int64{10, 20, 30, 40, 45, 50, 60, 70}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}
