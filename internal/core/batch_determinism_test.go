package core

import (
	"testing"

	"slacksim/internal/asm"
	"slacksim/internal/cpu"
	"slacksim/internal/workloads"
)

// TestBatchedSteppingDeterminism cross-checks coreLoop's batched inner loop
// against the single-cycle path it replaced: a paper workload run under the
// conservative schemes must produce a bit-identical simulation either way.
//
// The comparison covers the simulated outcome — end time, ROI cycles,
// workload output, warp counters, and every per-core counter that is a pure
// function of the simulated trajectory. Host-schedule-dependent counters
// are excluded on both sides of the comparison because they differ between
// *any* two parallel runs, batched or not: Cycles/IdleCycles/Skipped (the
// tick-versus-skip split of a stall depends on how stale the core's global
// snapshot was, and the final cycles race the done flag), the stall
// tallies incremented by redundant no-progress Ticks, BlockedParks, and
// the ROIStart* snapshots (a core notices the roiTime atomic flip at a
// host-interleaving-dependent point in its loop, so the Committed count
// captured then can differ by an instruction between runs).
func TestBatchedSteppingDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("workload runs")
	}
	w, err := workloads.Get("fft")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(w.Source(1), asm.Options{})
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		endTime   int64
		roiCycles int64
		output    string
		timeWarps int64
		cohWarps  int64
		cores     []cpu.Stats
	}
	run := func(disable bool, s Scheme) outcome {
		t.Helper()
		batchDisabled = disable
		defer func() { batchDisabled = false }()
		cfg := smallConfig(4, ModelOoO)
		cfg.MemSize = 64 << 20
		cfg.MaxCycles = 200_000_000
		m, err := NewMachine(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Init(m.Image(), 1); err != nil {
			t.Fatal(err)
		}
		r, err := m.RunParallel(s)
		if err != nil {
			t.Fatal(err)
		}
		if r.Aborted {
			t.Fatalf("run aborted at %d cycles", r.EndTime)
		}
		if err := w.Verify(m.Image(), r.Output, 1); err != nil {
			t.Fatal(err)
		}
		o := outcome{
			endTime:   r.EndTime,
			roiCycles: r.ROICycles(),
			output:    r.Output,
			timeWarps: r.TimeWarps,
			cohWarps:  r.CoherenceWarps,
		}
		for _, st := range r.CoreStats {
			// Curated copy: only trajectory-determined counters.
			o.cores = append(o.cores, cpu.Stats{
				Committed:   st.Committed,
				Fetched:     st.Fetched,
				Squashed:    st.Squashed,
				Loads:       st.Loads,
				Stores:      st.Stores,
				Branches:    st.Branches,
				Mispred:     st.Mispred,
				Syscalls:    st.Syscalls,
				Retries:     st.Retries,
				MemFaults:   st.MemFaults,
				Prefetches:  st.Prefetches,
				OpsLoadDone: st.OpsLoadDone,
				OpsWB:       st.OpsWB,
				L1D:         st.L1D,
				L1I:         st.L1I,
				ROIMarked:   st.ROIMarked,
			})
		}
		return o
	}

	// The prime-window Quantum scheme stresses the unified barrier
	// detection: with batched stepping the global time crosses window
	// boundaries without landing on multiples of 7, so any reversion to the
	// old g%Window == 0 equality check would skip barriers and diverge (or
	// stall) here.
	q7 := Scheme{Kind: Quantum, Window: 7}
	for _, s := range []Scheme{SchemeCC, SchemeQ10, q7, SchemeL10, SchemeS9x} {
		batched := run(false, s)
		single := run(true, s)
		if batched.endTime != single.endTime {
			t.Errorf("%v: end time batched=%d single=%d", s, batched.endTime, single.endTime)
		}
		if batched.roiCycles != single.roiCycles {
			t.Errorf("%v: ROI cycles batched=%d single=%d", s, batched.roiCycles, single.roiCycles)
		}
		if batched.output != single.output {
			t.Errorf("%v: workload output differs", s)
		}
		if batched.timeWarps != single.timeWarps || batched.cohWarps != single.cohWarps {
			t.Errorf("%v: warps batched=(%d,%d) single=(%d,%d)", s,
				batched.timeWarps, batched.cohWarps, single.timeWarps, single.cohWarps)
		}
		for i := range batched.cores {
			if batched.cores[i] != single.cores[i] {
				t.Errorf("%v: core %d stats differ:\n batched: %+v\n single:  %+v",
					s, i, batched.cores[i], single.cores[i])
			}
		}
		t.Logf("%-4v end=%d roi=%d: batched and single-cycle runs identical", s, batched.endTime, batched.roiCycles)
	}
}
