package core

import (
	"fmt"
	"strings"
	"time"

	"slacksim/internal/cache"
	"slacksim/internal/cpu"
	"slacksim/internal/metrics"
	"slacksim/internal/remote"
	"slacksim/internal/trace"
)

func durNS(ns int64) time.Duration { return time.Duration(ns) }

// This file is the engine's observability surface: opt-in tracing and
// metrics with a nil-check fast path. When neither EnableTrace nor
// EnableMetrics has been called, the hot loops pay one predictable nil
// check per instrumentation site (see the overhead test in
// internal/metrics); when enabled, every simulation goroutine writes to
// its own lock-free trace ring and to shared atomic counters, so the
// engine's parallel timing is perturbed as little as possible.

// engineMet holds the engine's typed metric handles (nil when disabled).
type engineMet struct {
	reg          *metrics.Registry
	events       *metrics.Counter   // engine.events.processed
	globalAdv    *metrics.Counter   // engine.global.advances
	windowSlides *metrics.Counter   // engine.window.slides
	barriers     *metrics.Counter   // engine.quantum.barriers
	parks        *metrics.Counter   // engine.window.parks
	freezes      *metrics.Counter   // engine.reply.freezes
	mgrParks     *metrics.Counter   // engine.manager.parks
	adaptResizes *metrics.Counter   // engine.adapt.resizes
	slack        *metrics.Histogram // engine.slack.sample
	gqDepth      *metrics.Histogram // engine.gq.depth

	// Memory-event latency attribution (latency.go): machine-wide and
	// per-core request→reply latency, in simulated cycles and host ns.
	memLat       *metrics.Histogram   // engine.mem.lat_cycles
	memLatNS     *metrics.Histogram   // engine.mem.lat_host_ns
	coreMemLat   []*metrics.Histogram // engine.c%d.mem.lat_cycles
	coreMemLatNS []*metrics.Histogram // engine.c%d.mem.lat_host_ns
}

// EnableMetrics attaches a metrics registry to the machine. Must be
// called before Run*; nil leaves metrics disabled. The engine registers
// its pacing counters plus queue-depth histograms, and publishes the
// per-core CPU and cache counters into the registry when the run ends.
func (m *Machine) EnableMetrics(r *metrics.Registry) {
	if r == nil {
		return
	}
	m.met = &engineMet{
		reg:          r,
		events:       r.Counter("engine.events.processed"),
		globalAdv:    r.Counter("engine.global.advances"),
		windowSlides: r.Counter("engine.window.slides"),
		barriers:     r.Counter("engine.quantum.barriers"),
		parks:        r.Counter("engine.window.parks"),
		freezes:      r.Counter("engine.reply.freezes"),
		mgrParks:     r.Counter("engine.manager.parks"),
		adaptResizes: r.Counter("engine.adapt.resizes"),
		slack:        r.Histogram("engine.slack.sample"),
		gqDepth:      r.Histogram("engine.gq.depth"),
		memLat:       r.Histogram("engine.mem.lat_cycles"),
		memLatNS:     r.Histogram("engine.mem.lat_host_ns"),
	}
	for i := 0; i < m.cfg.NumCores; i++ {
		m.met.coreMemLat = append(m.met.coreMemLat, r.Histogram(fmt.Sprintf("engine.c%d.mem.lat_cycles", i)))
		m.met.coreMemLatNS = append(m.met.coreMemLatNS, r.Histogram(fmt.Sprintf("engine.c%d.mem.lat_host_ns", i)))
	}
	m.strag = newStragglerState(m.cfg.NumCores)
	outDepth := r.Histogram("event.outq.depth")
	inDepth := r.Histogram("event.inq.depth")
	for i := range m.outQ {
		m.outQ[i].ObserveDepth(outDepth)
		m.inQ[i].ObserveDepth(inDepth)
	}
	if m.shards != nil {
		shardDepth := r.Histogram("event.shardq.depth")
		for s := 0; s < m.shards.n; s++ {
			m.shards.in[s].ObserveDepth(shardDepth)
		}
	}
	if m.remote != nil {
		remoteDepth := r.Histogram("event.remoteq.depth")
		for s := range m.remote.out {
			for c := range m.remote.out[s] {
				m.remote.out[s][c].ObserveDepth(remoteDepth)
			}
		}
	}
	m.coreHostNS = make([]int64, m.cfg.NumCores)
	m.waitHostNS = make([]int64, m.cfg.NumCores)
}

// EnableTrace attaches a trace collector to the machine. Must be called
// before Run*; nil leaves tracing disabled. One writer is registered per
// core thread, one for the manager, and one per shard worker.
func (m *Machine) EnableTrace(c *trace.Collector) {
	if c == nil {
		return
	}
	m.tracer = c
	n := m.cfg.NumCores
	m.coreTW = make([]*trace.Writer, n)
	for i := 0; i < n; i++ {
		m.coreTW[i] = c.Writer(fmt.Sprintf("core %d", i), int32(i))
	}
	m.mgrTW = c.Writer("manager", int32(n))
	if m.shards != nil {
		m.shardTW = make([]*trace.Writer, m.shards.n)
		for s := 0; s < m.shards.n; s++ {
			m.shardTW[s] = c.Writer(fmt.Sprintf("shard %d", s), int32(n+1+s))
		}
	}
	if m.remote != nil {
		// Parent end of the wire-flow correlation: every gate frame the
		// manager enqueues records a KWireSend whose flow id the worker's
		// KWireRecv echoes, so the merged export can draw the arrow.
		m.remote.wireTW = c.Writer("wire", int32(n+1))
	}
}

// coreWriter returns core i's trace writer (nil when tracing is off).
func (m *Machine) coreWriter(i int) *trace.Writer {
	if m.coreTW == nil {
		return nil
	}
	return m.coreTW[i]
}

// publishObservability fills the Result's observability fields and
// publishes the end-of-run counter snapshot into the metrics registry.
// No-op when metrics are disabled.
func (m *Machine) publishObservability(res *Result) {
	if m.met == nil {
		return
	}
	r := m.met.reg
	res.Metrics = r
	res.EventsProcessed = m.evProcessed + m.evShard.Load()
	res.ManagerBusy = durNS(m.mgrBusyNS)
	for i := range m.coreHostNS {
		res.CoreBusy = append(res.CoreBusy, durNS(m.coreHostNS[i]))
		res.CoreWait = append(res.CoreWait, durNS(m.waitHostNS[i]))
	}

	r.Gauge("engine.global.final").Set(m.global.Load())
	r.Gauge("engine.gq.final_depth").Set(int64(m.gq.Len()))
	r.Gauge("engine.time_warps").Set(m.kernel.TimeWarps)
	for i := range m.waitCycles {
		r.Gauge(fmt.Sprintf("engine.c%d.wait_cycles", i)).Set(m.waitCycles[i])
	}

	// Straggler attribution (latency.go). Published for every driver —
	// zeros on the serial engine, which never attributes rounds — so the
	// three drivers emit identical metric-name sets for the same config.
	res.Stragglers = m.stragglers()
	for _, s := range res.Stragglers {
		r.Gauge(fmt.Sprintf("engine.c%d.straggler.held", s.Core)).Set(s.HeldRounds)
		r.Gauge(fmt.Sprintf("engine.c%d.straggler.ewma_ppm", s.Core)).Set(int64(s.EWMA * 1e6))
	}

	// Trace-ring loss accounting: when tracing ran alongside metrics,
	// surface every writer's overwritten-record count so a truncated
	// Chrome export no longer masquerades as complete.
	if m.tracer != nil {
		total := r.Counter("trace.dropped")
		for _, w := range m.tracer.Writers() {
			d := w.Dropped()
			r.Counter("trace.dropped." + strings.ReplaceAll(w.Name(), " ", "_")).Add(d)
			total.Add(d)
		}
	}

	// Wire-protocol traffic of a remote-sharded run: both sides of the
	// connections, so a sweep can report bytes/batch and codec overhead
	// next to the engine's pacing counters.
	if rw := res.Wire; rw != nil {
		publishWireStats(r, "remote.parent", rw.Parent)
		publishWireStats(r, "remote.workers", rw.Workers)
	}

	// Fault-tolerance activity of a remote run: all-zero gauges on an
	// undisturbed run, so dashboards can alert on any deviation.
	if rec := res.Recovery; rec != nil {
		r.Gauge("remote.recovery.reconnects").Set(rec.Reconnects)
		r.Gauge("remote.recovery.replayed_batches").Set(rec.ReplayedBatches)
		r.Gauge("remote.recovery.checkpoints").Set(rec.Checkpoints)
		r.Gauge("remote.recovery.checkpoint_bytes").Set(rec.CheckpointBytes)
		r.Gauge("remote.recovery.abandoned_workers").Set(rec.AbandonedWorkers)
		r.Gauge("remote.recovery.migrated_shards").Set(rec.MigratedShards)
	}

	for i, c := range m.cores {
		cpu.PublishStats(r, i, c.Stats())
	}
	cache.PublishL2Stats(r, m.aggregateL2Stats())
}

// publishWireStats sets one side's wire counters as gauges under prefix.
func publishWireStats(r *metrics.Registry, prefix string, w remote.WireStats) {
	r.Gauge(prefix + ".bytes_sent").Set(w.BytesSent)
	r.Gauge(prefix + ".bytes_recv").Set(w.BytesRecv)
	r.Gauge(prefix + ".frames_sent").Set(w.FramesSent)
	r.Gauge(prefix + ".frames_recv").Set(w.FramesRecv)
	r.Gauge(prefix + ".events_sent").Set(w.EventsSent)
	r.Gauge(prefix + ".events_recv").Set(w.EventsRecv)
	r.Gauge(prefix + ".batches_sent").Set(w.BatchesSent)
	r.Gauge(prefix + ".batches_recv").Set(w.BatchesRecv)
	r.Gauge(prefix + ".encode_ns").Set(w.EncodeNS)
	r.Gauge(prefix + ".decode_ns").Set(w.DecodeNS)
	r.Gauge(prefix + ".bytes_per_batch").Set(int64(w.BytesPerBatch()))
}
