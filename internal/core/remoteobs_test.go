package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"slacksim/internal/bundle"
	"slacksim/internal/faultinject"
	"slacksim/internal/metrics"
	"slacksim/internal/remote"
	"slacksim/internal/trace"
)

// This file tests the fleet-observability surface of the remote backend:
// cross-process trace merging (worker chunks, clock offsets, wire flow
// events, supervision incidents), worker metrics federation, and the
// post-mortem crash bundles — all under the same net.Pipe chaos fleet as
// the recovery suite.

// TestRemoteFleetObservability runs a worker-kill chaos scenario with
// the full observability stack attached: the merged timeline must carry
// parent and worker tracks, paired wire flow events, and the recovery
// incident; the parent registry must hold worker-prefixed federated
// metrics; and the run must still complete bit-exact.
func TestRemoteFleetObservability(t *testing.T) {
	ref, m := oceanRemoteRef(t, SchemeCC)
	m.cfg.StallTimeout = 10 * time.Second
	reg := metrics.NewRegistry()
	m.EnableMetrics(reg)
	m.EnableTrace(trace.New())
	pf := newPipeFarm()
	opts := &RemoteOptions{
		Transports:      pf.transports(2),
		Redial:          pf.dial,
		Kill:            pf.kill,
		RetryBackoff:    remote.Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
		CheckpointEvery: 8,
	}
	if err := m.EnableFaults(faultinject.NewPlan(
		faultinject.Fault{Kind: faultinject.WorkerKill, Core: faultinject.ShardWorker(0), At: 10000},
	)); err != nil {
		t.Fatal(err)
	}
	res, err := m.RunRemoteShardedOpts(SchemeCC, opts)
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	pf.join(t)
	assertRemoteExact(t, "CC/fleet-observability", res, ref)
	if res.Recovery.Reconnects < 1 {
		t.Fatalf("reconnects = %d, want >= 1", res.Recovery.Reconnects)
	}

	// Trace correlation: parent track plus at least both workers' epoch-0
	// tracks and the killed worker's resumed incarnation.
	procs := m.TraceProcs()
	if len(procs) < 3 {
		t.Fatalf("TraceProcs = %d processes, want >= 3 (parent + workers)", len(procs))
	}
	if procs[0].PID != 0 || procs[0].Name != "parent" {
		t.Errorf("proc 0 = %+v, want the parent at pid 0", procs[0])
	}
	names := map[string]bool{}
	var offsets int
	for _, p := range procs[1:] {
		names[p.Name] = true
		if p.OffsetNS != 0 {
			offsets++
		}
	}
	if !names["worker 0"] || !names["worker 1"] {
		t.Errorf("worker tracks missing: %v", names)
	}
	if offsets == 0 {
		t.Error("no worker track carries a clock-offset estimate")
	}

	// Supervision incidents: the kill must surface as a reconnecting →
	// recovered pair for the merged timeline.
	ins := m.TraceIncidents()
	if len(ins) == 0 {
		t.Fatal("no supervision incidents recorded")
	}
	var recovered bool
	for _, in := range ins {
		if strings.Contains(in.Name, "recovered") {
			recovered = true
		}
	}
	if !recovered {
		t.Errorf("incidents carry no recovery: %v", ins)
	}

	// The merged export: process metadata, both wire flow endpoints.
	var buf bytes.Buffer
	if err := m.WriteTraceChrome(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"process_name", "worker 0", "wire_send", "wire_recv", `"ph": "s"`, `"ph": "f"`} {
		if !strings.Contains(out, want) {
			t.Errorf("merged trace missing %q", want)
		}
	}

	// Metrics federation: the final FStats snapshots must fold under
	// per-worker prefixes, shard hierarchy counters included.
	snap := reg.Snapshot()
	fed := 0
	for name := range snap.Gauges {
		if strings.HasPrefix(name, "worker0.") || strings.HasPrefix(name, "worker1.") {
			fed++
		}
	}
	for name := range snap.Counters {
		if strings.HasPrefix(name, "worker0.") || strings.HasPrefix(name, "worker1.") {
			fed++
		}
	}
	if fed == 0 {
		t.Error("no worker-prefixed metrics federated into the parent registry")
	}
	found := false
	for _, w := range []int{0, 1} {
		for _, sh := range []int{0, 1} {
			if _, ok := snap.Gauges[fmt.Sprintf("worker%d.shard%d.cache.l2.accesses", w, sh)]; ok {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("federated L2 shard counters missing; gauges: %d", len(snap.Gauges))
	}
}

// TestRemoteBundleOnAbandon: a run that completes but abandons a worker
// must leave a validating crash bundle with the recovery artifacts.
func TestRemoteBundleOnAbandon(t *testing.T) {
	ref, m := oceanRemoteRef(t, SchemeCC)
	m.cfg.StallTimeout = 10 * time.Second
	m.EnableMetrics(metrics.NewRegistry())
	m.EnableTrace(trace.New())
	dir := t.TempDir()
	m.SetBundleDir(dir)
	pf := newPipeFarm()
	opts := &RemoteOptions{
		Transports:  pf.transports(2),
		RetryBudget: -1, // no retries: first failure abandons
	}
	if err := m.EnableFaults(faultinject.NewPlan(
		faultinject.Fault{Kind: faultinject.ConnDrop, Core: faultinject.ShardWorker(1), At: 8000},
	)); err != nil {
		t.Fatal(err)
	}
	res, err := m.RunRemoteShardedOpts(SchemeCC, opts)
	if err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	pf.join(t)
	assertRemoteExact(t, "CC/bundle-abandon", res, ref)
	if res.Recovery.AbandonedWorkers != 1 {
		t.Fatalf("abandoned workers = %d, want 1", res.Recovery.AbandonedWorkers)
	}

	path := m.BundlePath()
	if path == "" {
		t.Fatal("no bundle written for the abandoned-worker outcome")
	}
	man, err := bundle.Validate(path)
	if err != nil {
		t.Fatalf("bundle does not validate: %v", err)
	}
	if man.Driver != "remote" || man.Session == "" {
		t.Errorf("manifest meta = %+v", man)
	}
	if !strings.Contains(man.Reason, "abandoned") {
		t.Errorf("manifest reason = %q, want the abandoned-worker cause", man.Reason)
	}
	got := map[string]bool{}
	for _, f := range man.Files {
		got[f.Name] = true
	}
	for _, want := range []string{"stall.json", "error.txt", "trace.json", "metrics.prom", "recovery.json", "config.json"} {
		if !got[want] {
			t.Errorf("bundle missing %s (has %v)", want, got)
		}
	}
}

// TestBundleOnLocalFailure: the bundle hook must cover the local drivers
// too — a contained core panic under the parallel driver writes one,
// and a second run in the same directory gets its own timestamped dir.
func TestBundleOnLocalFailure(t *testing.T) {
	m := mustMachine(t, longProg, smallConfig(2, ModelOoO))
	m.EnableMetrics(metrics.NewRegistry())
	dir := t.TempDir()
	m.SetBundleDir(dir)
	if err := m.EnableFaults(faultinject.NewPlan(
		faultinject.Fault{Kind: faultinject.Panic, Core: 0, At: 500},
	)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunParallel(SchemeS9); err == nil {
		t.Fatal("injected panic did not fail the run")
	}
	path := m.BundlePath()
	if path == "" {
		t.Fatal("no bundle written for the failed parallel run")
	}
	man, err := bundle.Validate(path)
	if err != nil {
		t.Fatalf("bundle does not validate: %v", err)
	}
	if man.Driver != "parallel" {
		t.Errorf("manifest driver = %q, want parallel", man.Driver)
	}
	names := map[string]bool{}
	for _, f := range man.Files {
		names[f.Name] = true
	}
	if !names["stall.json"] || !names["metrics.prom"] || !names["config.json"] {
		t.Errorf("bundle files = %v", names)
	}
	if names["recovery.json"] {
		t.Error("local bundle must not carry the remote recovery artifact")
	}
}

// TestBundleDisabledByDefault: without SetBundleDir a failure writes
// nothing and BundlePath stays empty.
func TestBundleDisabledByDefault(t *testing.T) {
	m := mustMachine(t, longProg, smallConfig(2, ModelOoO))
	if err := m.EnableFaults(faultinject.NewPlan(
		faultinject.Fault{Kind: faultinject.Panic, Core: 0, At: 500},
	)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunParallel(SchemeS9); err == nil {
		t.Fatal("injected panic did not fail the run")
	}
	if p := m.BundlePath(); p != "" {
		t.Errorf("BundlePath = %q without SetBundleDir", p)
	}
}
