package core

import (
	"encoding/json"
	"fmt"
	"runtime/debug"
	"time"

	"slacksim/internal/cache"
	"slacksim/internal/event"
	"slacksim/internal/faultinject"
	"slacksim/internal/remote"
)

// This file is the worker side of the distributed remote-shard backend:
// the loop a slackworker process (or a slacksim -worker-stdio child)
// runs per connection. It is deliberately in package core, not
// internal/remote — the whole point is that a worker's timing path is
// the in-process shard worker's, applied through the same applyMemEvent
// used by every other driver, so the two backends cannot drift apart.

// remoteShard is one shard's state inside a worker: its own timing-only
// L2/directory instance and its pending-event heap, mirroring the
// in-process shardWorker's per-goroutine state.
type remoteShard struct {
	idx     int
	l2      *cache.L2System
	gq      event.Heap
	replies []event.Event
}

// ServeRemoteShards runs one worker session over t: handshake, then the
// event/gate/reply/watermark loop, until the parent's FFinish (answered
// with FStats) or a fatal error. A panic anywhere in the loop — a cache
// model bug on hostile input, most likely — is serialized as an FError
// frame carrying the same JSON SimError shape the in-process containment
// produces, so the parent's forensics are identical either way. The
// returned error describes why the session ended when it did not end
// with a clean FFinish exchange.
func ServeRemoteShards(t remote.Transport) error {
	c := remote.NewConn(t)
	hello, err := c.AcceptHello(time.Now().Add(30 * time.Second))
	if err != nil {
		c.Close()
		return err
	}
	w := &remoteWorkerLoop{conn: c, hello: hello}
	for _, idx := range hello.Shards {
		l2, lerr := cache.NewL2System(hello.Cache)
		if lerr != nil {
			detail := fmt.Sprintf("worker %d: bad cache config: %v", hello.WorkerID, lerr)
			w.sendError(&SimError{
				Core: faultinject.ShardWorker(idx), Op: "remote-worker", Detail: detail,
			})
			c.Close()
			return fmt.Errorf("core: %s", detail)
		}
		w.shards = append(w.shards, &remoteShard{idx: idx, l2: l2})
	}
	err = w.serve()
	c.Close()
	return err
}

// remoteWorkerLoop is one session's state.
type remoteWorkerLoop struct {
	conn   *remote.Conn
	hello  *remote.Hello
	shards []*remoteShard
	gate   int64
	events int64
	// scratch is the decode buffer reused across FEvents frames.
	scratch []event.Event
}

// readTimeout is the worker's orphan detector: the parent gates every
// conservative round and keeps the connection open for the whole run, so
// total silence for well past the parent's own stall watchdog means the
// parent is gone and the worker should exit rather than linger.
func (w *remoteWorkerLoop) readTimeout() time.Duration {
	t := time.Duration(w.hello.StallTimeoutMS) * time.Millisecond
	if t <= 0 {
		t = 60 * time.Second
	}
	return 2 * t
}

func (w *remoteWorkerLoop) serve() (err error) {
	defer func() {
		if r := recover(); r != nil {
			// Cross-process crash forensics: the same SimError shape the
			// in-process containPanic records, shipped over the wire.
			se := &SimError{
				Core:    faultinject.ShardWorker(w.hello.Shards[0]),
				Op:      "remote-worker",
				Detail:  fmt.Sprint(r),
				SimTime: w.gate, GlobalTime: w.gate,
				Stack: string(debug.Stack()),
			}
			w.sendError(se)
			err = fmt.Errorf("core: remote worker %d panicked: %v", w.hello.WorkerID, r)
		}
	}()
	for {
		w.conn.SetReadDeadline(time.Now().Add(w.readTimeout()))
		f, rerr := w.conn.ReadFrame()
		if rerr != nil {
			if remote.IsTimeout(rerr) {
				return fmt.Errorf("core: remote worker %d: orphaned (no frame in %v)", w.hello.WorkerID, w.readTimeout())
			}
			return fmt.Errorf("core: remote worker %d: %w", w.hello.WorkerID, rerr)
		}
		switch f.Type {
		case remote.FEvents:
			shard, evs, derr := w.conn.DecodeEvents(f.Payload, w.scratch[:0])
			if derr != nil {
				return fmt.Errorf("core: remote worker %d: %w", w.hello.WorkerID, derr)
			}
			sh := w.shardByIndex(shard)
			if sh == nil {
				return fmt.Errorf("core: remote worker %d: batch for foreign shard %d", w.hello.WorkerID, shard)
			}
			for i := range evs {
				sh.gq.Push(evs[i])
			}
			w.scratch = evs[:0]
			// Optimistic schemes publish one unbounded gate up front and
			// then expect replies on arrival; under conservative pacing
			// the new events sit above the gate and this pass is a no-op.
			if w.gate > 0 {
				if err := w.processAndReply(); err != nil {
					return err
				}
				if err := w.conn.Flush(); err != nil {
					return err
				}
			}
		case remote.FGate:
			t, derr := remote.DecodeTime(f.Payload)
			if derr != nil {
				return fmt.Errorf("core: remote worker %d: %w", w.hello.WorkerID, derr)
			}
			if t > w.gate {
				w.gate = t
			}
			if err := w.processAndReply(); err != nil {
				return err
			}
			// The watermark is written after every reply batch on this
			// in-order stream: once the parent reads it, the replies are
			// already in its rings — the wire analog of the in-process
			// store-mark-after-push rule that the window raise relies on.
			if err := w.conn.SendTime(remote.FWatermark, t); err != nil {
				return err
			}
			if err := w.conn.Flush(); err != nil {
				return err
			}
		case remote.FFinish:
			return w.sendStats()
		default:
			return fmt.Errorf("core: remote worker %d: unexpected %s frame", w.hello.WorkerID, remote.FrameName(f.Type))
		}
	}
}

func (w *remoteWorkerLoop) shardByIndex(idx int) *remoteShard {
	for _, sh := range w.shards {
		if sh.idx == idx {
			return sh
		}
	}
	return nil
}

// processAndReply pops every queued event below the gate through the
// shared timing path and ships the accumulated replies, one batch per
// shard — in (timestamp, core, seq) order within each shard, exactly the
// order the in-process shard worker pushes its rings in.
func (w *remoteWorkerLoop) processAndReply() error {
	for _, sh := range w.shards {
		sh.replies = sh.replies[:0]
		for {
			top := sh.gq.Peek()
			if top == nil || top.Time >= w.gate {
				break
			}
			ev := sh.gq.Pop()
			applyMemEvent(sh.l2, func(core int, out event.Event) {
				out.Core = int32(core)
				sh.replies = append(sh.replies, out)
			}, ev)
			w.events++
		}
		if len(sh.replies) > 0 {
			if err := w.conn.SendBatch(remote.FReplies, sh.idx, sh.replies); err != nil {
				return err
			}
		}
	}
	return nil
}

// sendStats answers FFinish with the session's counters and says
// goodbye.
func (w *remoteWorkerLoop) sendStats() error {
	st := remote.WorkerStats{
		WorkerID: w.hello.WorkerID,
		Events:   w.events,
		Wire:     w.conn.Stats(),
	}
	for _, sh := range w.shards {
		st.L2 = append(st.L2, remote.ShardL2{Shard: sh.idx, Stats: sh.l2.Stats})
	}
	body, err := json.Marshal(st)
	if err != nil {
		return err
	}
	if err := w.conn.WriteFrame(remote.FStats, body); err != nil {
		return err
	}
	if err := w.conn.WriteFrame(remote.FBye, nil); err != nil {
		return err
	}
	return w.conn.Flush()
}

// sendError best-effort-ships a SimError frame; the session is already
// dying, so a marshalling or write failure is only swallowed.
func (w *remoteWorkerLoop) sendError(se *SimError) {
	body, err := json.Marshal(se)
	if err != nil {
		return
	}
	w.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if w.conn.WriteFrame(remote.FError, body) == nil {
		w.conn.Flush()
	}
}
