package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"time"

	"slacksim/internal/cache"
	"slacksim/internal/event"
	"slacksim/internal/faultinject"
	"slacksim/internal/metrics"
	"slacksim/internal/remote"
	"slacksim/internal/trace"
)

// This file is the worker side of the distributed remote-shard backend:
// the loop a slackworker process (or a slacksim -worker-stdio child)
// runs per connection. It is deliberately in package core, not
// internal/remote — the whole point is that a worker's timing path is
// the in-process shard worker's, applied through the same applyMemEvent
// used by every other driver, so the two backends cannot drift apart.

// remoteShard is one shard's state inside a worker: its own timing-only
// L2/directory instance and its pending-event heap, mirroring the
// in-process shardWorker's per-goroutine state.
type remoteShard struct {
	idx     int
	l2      *cache.L2System
	gq      event.Heap
	replies []event.Event
}

// ServeRemoteShards runs one worker session over t: handshake, then the
// event/gate/reply/watermark loop, until the parent's FFinish (answered
// with FStats) or a fatal error. A panic anywhere in the loop — a cache
// model bug on hostile input, most likely — is serialized as an FError
// frame carrying the same JSON SimError shape the in-process containment
// produces, so the parent's forensics are identical either way. The
// returned error describes why the session ended when it did not end
// with a clean FFinish exchange.
func ServeRemoteShards(t remote.Transport) error {
	return ServeRemoteShardsOpts(t, nil)
}

// ServeRemoteShardsLog is ServeRemoteShards with a session log sink
// (slackworker's output); logf may be nil.
func ServeRemoteShardsLog(t remote.Transport, logf func(format string, args ...any)) error {
	return ServeRemoteShardsOpts(t, &WorkerOptions{Logf: logf})
}

// WorkerOptions configures a worker session beyond the transport.
type WorkerOptions struct {
	// Logf receives session log lines (handshakes, resumes, exits); nil
	// discards them.
	Logf func(format string, args ...any)
	// Heartbeat overrides the 1s default idle-heartbeat interval used
	// when the parent's handshake doesn't request a specific cadence
	// (a parent that sets one always wins; < 0 is normalised to 0).
	Heartbeat time.Duration
	// SessionDir, when non-empty, persists the latest checkpoint of the
	// session to <dir>/<session>-w<id>.ckpt after each checkpoint frame —
	// a post-mortem artifact for diagnosing recovery bugs (the parent's
	// stored copy dies with the parent). Write failures are logged, not
	// fatal: persistence is forensics, never correctness.
	SessionDir string
}

// ServeRemoteShardsOpts is ServeRemoteShards with worker-side options;
// opts may be nil.
func ServeRemoteShardsOpts(t remote.Transport, opts *WorkerOptions) error {
	if opts == nil {
		opts = &WorkerOptions{}
	}
	c := remote.NewConn(t)
	hello, err := c.AcceptHello(time.Now().Add(30 * time.Second))
	if err != nil {
		c.Close()
		return err
	}
	w := &remoteWorkerLoop{conn: c, hello: hello, opts: opts, logf: opts.Logf}
	if hello.Observe {
		w.enableObservability()
	}
	for _, idx := range hello.Shards {
		l2, lerr := cache.NewL2System(hello.Cache)
		if lerr != nil {
			detail := fmt.Sprintf("worker %d: bad cache config: %v", hello.WorkerID, lerr)
			w.sendError(&SimError{
				Core: faultinject.ShardWorker(idx), Op: "remote-worker", Detail: detail,
			})
			c.Close()
			return fmt.Errorf("core: %s", detail)
		}
		w.shards = append(w.shards, &remoteShard{idx: idx, l2: l2})
	}
	if hello.ResumeSession {
		if err := w.restoreFromParent(); err != nil {
			c.Close()
			return err
		}
	}
	err = w.serve()
	c.Close()
	return err
}

// remoteWorkerLoop is one session's state.
type remoteWorkerLoop struct {
	conn    *remote.Conn
	hello   *remote.Hello
	opts    *WorkerOptions
	shards  []*remoteShard
	gate    int64
	gates   int64 // FGate frames processed this session (checkpoint cadence)
	batches int64 // FEvents frames consumed since the session started
	events  int64
	logf    func(format string, args ...any)
	// scratch is the decode buffer reused across FEvents frames; ckptBuf
	// the checkpoint encode buffer reused across FCheckpoint frames.
	scratch []event.Event
	ckptBuf []byte

	// Worker-side observability (all nil unless the Hello set Observe):
	// the worker's own trace collector and metrics registry, shipped back
	// over the wire for fleet-wide correlation (see internal/trace/merge
	// and the parent's fold in remote.go).
	tracer  *trace.Collector
	wireTW  *trace.Writer      // wire receive/flow track
	procTW  *trace.Writer      // processing-pass track
	reg     *metrics.Registry  // worker registry (federated)
	metHB   *metrics.Counter   // worker.heartbeats
	metCkpt *metrics.Counter   // worker.checkpoints
	metGate *metrics.Counter   // worker.gates
	metBat  *metrics.Counter   // worker.batches
	metEv   *metrics.Counter   // worker.events
	batchH  *metrics.Histogram // worker.batch.events
	lastObs time.Time          // last periodic trace/metrics ship (throttle)
}

// workerTraceCapacity keeps per-writer worker rings small enough that a
// JSON trace chunk (sent with every checkpoint) stays well under the
// frame ceiling.
const workerTraceCapacity = 1 << 12

// obsMinInterval throttles the periodic trace/metrics frames that ride
// behind checkpoints. Each snapshot supersedes its predecessor on the
// parent, so shipping one per checkpoint under a tight CheckpointEvery
// is pure wire overhead — a full ring snapshot costs a JSON encode, a
// synchronous pipe transfer, and a decode, which must stay a small
// fraction of the interval or the sim ends up feeding its own
// instrumentation. One second bounds the trace/metrics staleness a
// worker crash can leave behind; the unconditional pre-FStats chunk
// still guarantees the merged views are complete at session end.
const obsMinInterval = time.Second

// enableObservability builds the worker's collector and registry (the
// parent asked via Hello.Observe).
func (w *remoteWorkerLoop) enableObservability() {
	w.tracer = trace.NewWithCapacity(workerTraceCapacity)
	w.wireTW = w.tracer.Writer("wire", 0)
	w.procTW = w.tracer.Writer(fmt.Sprintf("worker %d shards", w.hello.WorkerID), 1)
	w.reg = metrics.NewRegistry()
	w.metHB = w.reg.Counter("worker.heartbeats")
	w.metCkpt = w.reg.Counter("worker.checkpoints")
	w.metGate = w.reg.Counter("worker.gates")
	w.metBat = w.reg.Counter("worker.batches")
	w.metEv = w.reg.Counter("worker.events")
	w.batchH = w.reg.Histogram("worker.batch.events")
}

// publishShardStats refreshes the per-shard hierarchy gauges in the
// worker registry (cheap: a handful of gauge stores per shard).
func (w *remoteWorkerLoop) publishShardStats() {
	if w.reg == nil {
		return
	}
	for _, sh := range w.shards {
		cache.PublishL2StatsPrefix(w.reg, fmt.Sprintf("shard%d.", sh.idx), sh.l2.Stats)
	}
}

// heartbeatPayload is the worker's clock sample (empty when unobserved);
// the parent estimates the trace-clock offset from it.
func (w *remoteWorkerLoop) heartbeatPayload() []byte {
	if w.tracer == nil {
		return nil
	}
	return remote.AppendClock(nil, w.tracer.Now())
}

// sendTraceChunk ships the current ring snapshot; each chunk supersedes
// the previous one parent-side, so periodic sends cost no duplication.
func (w *remoteWorkerLoop) sendTraceChunk() error {
	if w.tracer == nil {
		return nil
	}
	ch := remote.TraceChunk{
		SessionID: w.hello.SessionID,
		WorkerID:  w.hello.WorkerID,
		Epoch:     w.hello.Epoch,
		ClockNS:   w.tracer.Now(),
		Writers:   w.tracer.Chunk(),
	}
	body, err := json.Marshal(&ch)
	if err != nil {
		return err
	}
	return w.conn.WriteFrame(remote.FTraceChunk, body)
}

// sendMetricsUpdate ships a live registry snapshot for federation.
func (w *remoteWorkerLoop) sendMetricsUpdate() error {
	if w.reg == nil {
		return nil
	}
	w.publishShardStats()
	up := remote.MetricsUpdate{
		WorkerID: w.hello.WorkerID,
		Epoch:    w.hello.Epoch,
		Snapshot: w.reg.Snapshot(),
	}
	body, err := json.Marshal(&up)
	if err != nil {
		return err
	}
	return w.conn.WriteFrame(remote.FMetrics, body)
}

func (w *remoteWorkerLoop) logln(format string, args ...any) {
	if w.logf != nil {
		w.logf(format, args...)
	}
}

// heartbeat returns the interval after which an idle worker volunteers
// an FHeartbeat frame so the parent's staleness detector can tell a
// slow round from a hung or dead worker; 0 disables heartbeats.
func (w *remoteWorkerLoop) heartbeat() time.Duration {
	ms := w.hello.HeartbeatMS
	if ms < 0 {
		return 0
	}
	if ms == 0 {
		if w.opts != nil && w.opts.Heartbeat > 0 {
			return w.opts.Heartbeat
		}
		return time.Second
	}
	return time.Duration(ms) * time.Millisecond
}

// restoreFromParent rebuilds a resumed session: the parent follows a
// ResumeSession hello with the checkpoint it stored from this worker's
// previous incarnation (or a synthetic fresh one for gate 0), and the
// worker restores every shard's timing state and pending heap from it
// before acking. The parent then replays its journal of post-checkpoint
// batches, which regenerates the exact reply stream the lost connection
// swallowed.
func (w *remoteWorkerLoop) restoreFromParent() error {
	w.conn.SetReadDeadline(time.Now().Add(w.readTimeout()))
	f, err := w.conn.ReadFrame()
	if err != nil {
		return fmt.Errorf("core: remote worker %d: awaiting resume checkpoint: %w", w.hello.WorkerID, err)
	}
	if f.Type != remote.FCheckpoint {
		return fmt.Errorf("core: remote worker %d: %s frame while awaiting resume checkpoint", w.hello.WorkerID, remote.FrameName(f.Type))
	}
	ck, err := remote.DecodeCheckpoint(f.Payload)
	if err != nil {
		return fmt.Errorf("core: remote worker %d: %w", w.hello.WorkerID, err)
	}
	if ck.WorkerID != w.hello.WorkerID {
		return fmt.Errorf("core: remote worker %d: resume checkpoint belongs to worker %d", w.hello.WorkerID, ck.WorkerID)
	}
	if len(ck.Shards) != len(w.shards) {
		return fmt.Errorf("core: remote worker %d: resume checkpoint has %d shards, want %d", w.hello.WorkerID, len(ck.Shards), len(w.shards))
	}
	for i := range ck.Shards {
		cs := &ck.Shards[i]
		sh := w.shardByIndex(cs.Shard)
		if sh == nil {
			return fmt.Errorf("core: remote worker %d: resume checkpoint covers foreign shard %d", w.hello.WorkerID, cs.Shard)
		}
		if len(cs.L2) > 0 {
			if err := sh.l2.RestoreState(cs.L2); err != nil {
				return fmt.Errorf("core: remote worker %d shard %d: %w", w.hello.WorkerID, cs.Shard, err)
			}
		}
		for _, ev := range cs.Pending {
			sh.gq.Push(ev)
		}
	}
	w.gate, w.batches, w.events = ck.Gate, ck.Batches, ck.Events
	if err := w.conn.SendTime(remote.FCheckpointAck, ck.Gate); err != nil {
		return err
	}
	if err := w.conn.Flush(); err != nil {
		return err
	}
	w.logln("session resumed: worker %d epoch %d at gate %d (%d batches, %d events replayed into state)",
		w.hello.WorkerID, w.hello.Epoch, ck.Gate, ck.Batches, ck.Events)
	return nil
}

// readTimeout is the worker's orphan detector: the parent gates every
// conservative round and keeps the connection open for the whole run, so
// total silence for well past the parent's own stall watchdog means the
// parent is gone and the worker should exit rather than linger.
func (w *remoteWorkerLoop) readTimeout() time.Duration {
	t := time.Duration(w.hello.StallTimeoutMS) * time.Millisecond
	if t <= 0 {
		t = 60 * time.Second
	}
	return 2 * t
}

func (w *remoteWorkerLoop) serve() (err error) {
	defer func() {
		if r := recover(); r != nil {
			// Cross-process crash forensics: the same SimError shape the
			// in-process containPanic records, shipped over the wire.
			se := &SimError{
				Core:    faultinject.ShardWorker(w.hello.Shards[0]),
				Op:      "remote-worker",
				Detail:  fmt.Sprint(r),
				SimTime: w.gate, GlobalTime: w.gate,
				Stack: string(debug.Stack()),
			}
			w.sendError(se)
			err = fmt.Errorf("core: remote worker %d panicked: %v", w.hello.WorkerID, r)
		}
	}()
	// The read deadline is sliced at the heartbeat interval: each expiry
	// with no inbound frame sends one FHeartbeat so the parent can tell
	// "slow round" from "hung worker", and total silence past the orphan
	// timeout still exits the process.
	lastFrame := time.Now()
	for {
		slice := w.readTimeout()
		if hb := w.heartbeat(); hb > 0 && hb < slice {
			slice = hb
		}
		w.conn.SetReadDeadline(time.Now().Add(slice))
		f, rerr := w.conn.ReadFrame()
		if rerr != nil {
			if remote.IsTimeout(rerr) {
				if time.Since(lastFrame) >= w.readTimeout() {
					return fmt.Errorf("core: remote worker %d: orphaned (no frame in %v)", w.hello.WorkerID, w.readTimeout())
				}
				if w.heartbeat() > 0 {
					w.metHB.Inc()
					if err := w.conn.WriteFrame(remote.FHeartbeat, w.heartbeatPayload()); err != nil {
						return fmt.Errorf("core: remote worker %d: heartbeat: %w", w.hello.WorkerID, err)
					}
					if err := w.conn.Flush(); err != nil {
						return fmt.Errorf("core: remote worker %d: heartbeat: %w", w.hello.WorkerID, err)
					}
				}
				continue
			}
			return fmt.Errorf("core: remote worker %d: %w", w.hello.WorkerID, rerr)
		}
		lastFrame = time.Now()
		switch f.Type {
		case remote.FHeartbeat, remote.FCheckpointAck:
			// Parent liveness / checkpoint bookkeeping; nothing to do. (A
			// stale ack after a resume is harmless by design.)
		case remote.FEvents:
			w.batches++
			w.metBat.Inc()
			shard, evs, derr := w.conn.DecodeEvents(f.Payload, w.scratch[:0])
			if derr != nil {
				return fmt.Errorf("core: remote worker %d: %w", w.hello.WorkerID, derr)
			}
			w.batchH.Observe(int64(len(evs)))
			sh := w.shardByIndex(shard)
			if sh == nil {
				return fmt.Errorf("core: remote worker %d: batch for foreign shard %d", w.hello.WorkerID, shard)
			}
			for i := range evs {
				sh.gq.Push(evs[i])
			}
			w.scratch = evs[:0]
			// Optimistic schemes publish one unbounded gate up front and
			// then expect replies on arrival; under conservative pacing
			// the new events sit above the gate and this pass is a no-op.
			if w.gate > 0 {
				if err := w.processAndReply(); err != nil {
					return err
				}
				if err := w.conn.Flush(); err != nil {
					return err
				}
			}
		case remote.FGate:
			t, derr := remote.DecodeTime(f.Payload)
			if derr != nil {
				return fmt.Errorf("core: remote worker %d: %w", w.hello.WorkerID, derr)
			}
			if t > w.gate {
				w.gate = t
			}
			w.gates++
			w.metGate.Inc()
			// The receive half of the cross-process flow event: the parent
			// recorded KWireSend with the same flow id when it wrote this
			// gate, so the merged timeline draws an arrow across the wire.
			w.wireTW.Instant(trace.KWireRecv, trace.WireFlowID(w.hello.WorkerID, t))
			if err := w.processAndReply(); err != nil {
				return err
			}
			// The watermark is written after every reply batch on this
			// in-order stream: once the parent reads it, the replies are
			// already in its rings — the wire analog of the in-process
			// store-mark-after-push rule that the window raise relies on.
			if err := w.conn.SendTime(remote.FWatermark, t); err != nil {
				return err
			}
			// A checkpoint rides behind the watermark every K gates: the
			// parent sees it strictly after every reply the checkpointed
			// state accounts for, which is what lets it truncate the replay
			// journal and reset its delivered-reply counters atomically.
			if k := w.hello.CheckpointEvery; k > 0 && w.gates%int64(k) == 0 {
				if err := w.sendCheckpoint(); err != nil {
					return err
				}
				// Observability piggybacks on the checkpoint cadence — but
				// throttled: ring and registry snapshots replace, not append,
				// so at most one ships per obsMinInterval however tight the
				// checkpoint spacing is.
				if now := time.Now(); now.Sub(w.lastObs) >= obsMinInterval {
					w.lastObs = now
					if err := w.sendTraceChunk(); err != nil {
						return err
					}
					if err := w.sendMetricsUpdate(); err != nil {
						return err
					}
				}
			}
			if err := w.conn.Flush(); err != nil {
				return err
			}
		case remote.FFinish:
			return w.sendStats()
		default:
			return fmt.Errorf("core: remote worker %d: unexpected %s frame", w.hello.WorkerID, remote.FrameName(f.Type))
		}
	}
}

func (w *remoteWorkerLoop) shardByIndex(idx int) *remoteShard {
	for _, sh := range w.shards {
		if sh.idx == idx {
			return sh
		}
	}
	return nil
}

// processAndReply pops every queued event below the gate through the
// shared timing path and ships the accumulated replies, one batch per
// shard — in (timestamp, core, seq) order within each shard, exactly the
// order the in-process shard worker pushes its rings in.
func (w *remoteWorkerLoop) processAndReply() error {
	ps := w.procTW.Begin()
	before := w.events
	for _, sh := range w.shards {
		sh.replies = sh.replies[:0]
		for {
			top := sh.gq.Peek()
			if top == nil || top.Time >= w.gate {
				break
			}
			ev := sh.gq.Pop()
			applyMemEvent(sh.l2, func(core int, out event.Event) {
				out.Core = int32(core)
				sh.replies = append(sh.replies, out)
			}, ev)
			w.events++
		}
		if len(sh.replies) > 0 {
			if err := w.conn.SendBatch(remote.FReplies, sh.idx, sh.replies); err != nil {
				return err
			}
		}
	}
	if done := w.events - before; done > 0 {
		w.procTW.Span(trace.KProcess, ps, done)
		w.metEv.Add(done)
	}
	return nil
}

// sendCheckpoint serializes every shard's full timing state — L2 lines,
// resource clocks, stats, and the pending-event heap in pop order — into
// one FCheckpoint frame. The pending heap is exported destructively
// (successive pops) and rebuilt, which both yields the deterministic pop
// order the restore relies on and leaves the live heap untouched.
func (w *remoteWorkerLoop) sendCheckpoint() error {
	ck := remote.Checkpoint{
		WorkerID: w.hello.WorkerID,
		Gate:     w.gate,
		Batches:  w.batches,
		Events:   w.events,
	}
	for _, sh := range w.shards {
		sc := remote.ShardCheckpoint{Shard: sh.idx, L2: sh.l2.AppendState(nil)}
		if n := sh.gq.Len(); n > 0 {
			sc.Pending = make([]event.Event, 0, n)
			for sh.gq.Len() > 0 {
				sc.Pending = append(sc.Pending, sh.gq.Pop())
			}
			for _, ev := range sc.Pending {
				sh.gq.Push(ev)
			}
		}
		ck.Shards = append(ck.Shards, sc)
	}
	w.ckptBuf = remote.AppendCheckpoint(w.ckptBuf[:0], &ck)
	if err := w.conn.WriteFrame(remote.FCheckpoint, w.ckptBuf); err != nil {
		return err
	}
	w.metCkpt.Inc()
	w.persistCheckpoint()
	return nil
}

// persistCheckpoint mirrors the latest checkpoint to -session-dir (crash
// forensics; best effort by design).
func (w *remoteWorkerLoop) persistCheckpoint() {
	if w.opts == nil || w.opts.SessionDir == "" {
		return
	}
	sid := w.hello.SessionID
	if sid == "" {
		sid = "session"
	}
	name := filepath.Join(w.opts.SessionDir, fmt.Sprintf("%s-w%d.ckpt", filepath.Base(sid), w.hello.WorkerID))
	if err := os.WriteFile(name, w.ckptBuf, 0o644); err != nil {
		w.logln("checkpoint persist: %v", err)
	}
}

// sendStats answers FFinish with the session's counters and says
// goodbye. When observing, the final trace chunk precedes the stats so
// the parent has the complete rings before it folds the run's results.
func (w *remoteWorkerLoop) sendStats() error {
	if err := w.sendTraceChunk(); err != nil {
		return err
	}
	st := remote.WorkerStats{
		WorkerID: w.hello.WorkerID,
		Events:   w.events,
		Wire:     w.conn.Stats(),
	}
	for _, sh := range w.shards {
		st.L2 = append(st.L2, remote.ShardL2{Shard: sh.idx, Stats: sh.l2.Stats})
	}
	if w.reg != nil {
		w.publishShardStats()
		snap := w.reg.Snapshot()
		st.Metrics = &snap
		st.ClockNS = w.tracer.Now()
		st.TraceDropped = make(map[string]int64)
		for _, tw := range w.tracer.Writers() {
			if d := tw.Dropped(); d > 0 {
				st.TraceDropped[tw.Name()] = d
			}
		}
	}
	body, err := json.Marshal(st)
	if err != nil {
		return err
	}
	if err := w.conn.WriteFrame(remote.FStats, body); err != nil {
		return err
	}
	if err := w.conn.WriteFrame(remote.FBye, nil); err != nil {
		return err
	}
	return w.conn.Flush()
}

// sendError best-effort-ships a SimError frame; the session is already
// dying, so a marshalling or write failure is only swallowed.
func (w *remoteWorkerLoop) sendError(se *SimError) {
	body, err := json.Marshal(se)
	if err != nil {
		return
	}
	w.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if w.conn.WriteFrame(remote.FError, body) == nil {
		w.conn.Flush()
	}
}
