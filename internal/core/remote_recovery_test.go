package core

import (
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"slacksim/internal/asm"
	"slacksim/internal/faultinject"
	"slacksim/internal/introspect"
	"slacksim/internal/metrics"
	"slacksim/internal/remote"
	"slacksim/internal/workloads"
)

// This file is the chaos suite for the fault-tolerant distributed
// backend: every wire-level fault kind is injected mid-run against real
// worker sessions, and the recovered (or degraded) run is held to the
// in-process sharded reference bit for bit. The workers run in-process
// over net.Pipe — which honors deadlines and delivers the same in-order
// byte stream TCP would — so the whole journal/checkpoint/replay
// machinery is exercised end to end, minus only the kernel's socket
// buffers.

// pipeFarm is the chaos tests' worker fleet: it serves worker sessions
// over net.Pipe and can re-serve one (the Redial hook) or sever one from
// the worker side (the Kill hook — the closest net.Pipe analog of
// SIGKILL, since the process just vanishes from the peer's perspective).
type pipeFarm struct {
	mu   sync.Mutex
	live map[int]net.Conn // worker id -> current worker-side end
	wg   sync.WaitGroup
}

func newPipeFarm() *pipeFarm { return &pipeFarm{live: map[int]net.Conn{}} }

// dial starts a fresh worker session and returns the parent-side end.
// Session exit errors are discarded: a killed session dies with a read
// error by design, and the run's correctness is asserted from the parent
// side (bit-exactness against the in-process reference).
func (pf *pipeFarm) dial(worker int) (remote.Transport, error) {
	p, q := net.Pipe()
	pf.mu.Lock()
	pf.live[worker] = q
	pf.mu.Unlock()
	pf.wg.Add(1)
	go func() {
		defer pf.wg.Done()
		ServeRemoteShards(q)
	}()
	return p, nil
}

func (pf *pipeFarm) kill(worker int) error {
	pf.mu.Lock()
	c := pf.live[worker]
	pf.mu.Unlock()
	if c != nil {
		c.Close()
	}
	return nil
}

// transports dials the initial fleet.
func (pf *pipeFarm) transports(nw int) []remote.Transport {
	out := make([]remote.Transport, nw)
	for i := 0; i < nw; i++ {
		out[i], _ = pf.dial(i)
	}
	return out
}

// join waits for every session ever served to exit (leak check).
func (pf *pipeFarm) join(t *testing.T) {
	t.Helper()
	done := make(chan struct{})
	go func() { pf.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Error("worker sessions still running 20s after the run")
	}
}

// oceanRemoteRef builds the chaos tests' workload machine pair: the
// in-process sharded reference result and a fresh remote machine for the
// scheme under test.
func oceanRemoteRef(t *testing.T, s Scheme) (*Result, *Machine) {
	t.Helper()
	w, err := workloads.Get("ocean")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(w.Source(1), asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const shards = 2
	ref, err := shardedMachine(t, prog, w, 4, shards).RunParallel(s)
	if err != nil {
		t.Fatalf("%v: in-process reference: %v", s, err)
	}
	return ref, remoteMachine(t, prog, w, 4, shards)
}

// runChaos injects the given wire faults into a remote ocean run with
// full recovery hooks and asserts it completes bit-exact. Returns the
// recovery stats for fault-specific assertions. The run is bounded: the
// acceptance criterion is recovery within twice the stall timeout, and
// the watermark wait enforces exactly that, so a hung recovery surfaces
// as a test failure here, not a hang.
func runChaos(t *testing.T, s Scheme, opts *RemoteOptions, faults ...faultinject.Fault) *RecoveryStats {
	t.Helper()
	ref, m := oceanRemoteRef(t, s)
	m.cfg.StallTimeout = 10 * time.Second
	before := runtime.NumGoroutine()
	pf := newPipeFarm()
	opts.Transports = pf.transports(2)
	opts.Redial = pf.dial
	opts.Kill = pf.kill
	if opts.RetryBackoff == (remote.Backoff{}) {
		opts.RetryBackoff = remote.Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond}
	}
	if err := m.EnableFaults(faultinject.NewPlan(faults...)); err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := m.RunRemoteShardedOpts(s, opts)
		ch <- outcome{res, err}
	}()
	var res *Result
	select {
	case o := <-ch:
		if o.err != nil {
			t.Fatalf("%v: chaos run failed: %v", s, o.err)
		}
		res = o.res
	case <-time.After(60 * time.Second):
		t.Fatalf("%v: chaos run hung", s)
	}
	pf.join(t)
	assertRemoteExact(t, fmt.Sprintf("%v/chaos", s), res, ref)
	if res.Recovery == nil {
		t.Fatalf("%v: remote run carries no recovery stats", s)
	}
	if n := settleGoroutines(before); n > before {
		t.Errorf("%v: goroutine leak: %d before, %d after", s, before, n)
	}
	return res.Recovery
}

// TestRemoteConnDropRecovery severs each worker's connection once
// mid-run — one early (synthetic-checkpoint replay-from-scratch path)
// and one late (real checkpoint, truncated journal) — for every
// deterministic scheme class: CC (tightest coupling), Q10 (quantum
// barriers), S9* (sampled windows). Both workers must resume their
// sessions and the result must be bit-identical to the in-process run.
func TestRemoteConnDropRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("workload sweep")
	}
	// Checkpointing is disabled so the journal keeps the full history:
	// recovery must then replay from genesis, which pins the replay
	// counter deterministically (with checkpoints enabled a drop can land
	// right after a truncation and legitimately replay nothing — the
	// WorkerKill test covers the checkpointed path).
	for _, s := range []Scheme{SchemeCC, SchemeQ10, SchemeS9x} {
		rec := runChaos(t, s, &RemoteOptions{CheckpointEvery: -1},
			faultinject.Fault{Kind: faultinject.ConnDrop, Core: faultinject.ShardWorker(0), At: 800},
			faultinject.Fault{Kind: faultinject.ConnDrop, Core: faultinject.ShardWorker(1), At: 20000},
		)
		if rec.Reconnects < 2 {
			t.Errorf("%v: reconnects = %d, want >= 2 (both workers dropped)", s, rec.Reconnects)
		}
		if rec.AbandonedWorkers != 0 {
			t.Errorf("%v: %d workers abandoned with a working Redial", s, rec.AbandonedWorkers)
		}
		if rec.ReplayedBatches < 1 {
			t.Errorf("%v: replayed batches = %d, want >= 1 (the early drop predates any checkpoint)", s, rec.ReplayedBatches)
		}
	}
}

// TestRemoteWorkerKillRecovery kills the worker process analog (the
// worker-side end vanishes, no goodbye) through the WorkerKill fault's
// Kill hook, mid-run, after checkpoints exist.
func TestRemoteWorkerKillRecovery(t *testing.T) {
	rec := runChaos(t, SchemeCC, &RemoteOptions{CheckpointEvery: 8},
		faultinject.Fault{Kind: faultinject.WorkerKill, Core: faultinject.ShardWorker(0), At: 10000},
	)
	if rec.Reconnects < 1 {
		t.Errorf("reconnects = %d, want >= 1", rec.Reconnects)
	}
	if rec.Checkpoints < 1 {
		t.Errorf("checkpoints = %d, want >= 1 (CheckpointEvery: 8)", rec.Checkpoints)
	}
	// ReplayedBatches is deliberately not asserted: a kill that lands
	// right after a checkpoint truncation leaves a legitimately empty
	// journal. The early drop in TestRemoteConnDropRecovery pins it.
}

// TestRemoteFrameCorruptRecovery arms a one-shot CRC failure on the
// parent's receive path: the corrupt frame must not reach decode, the
// receiver must treat the connection as broken, and the supervisor must
// recover it — a bit flip costs a reconnect, never corrupt state.
func TestRemoteFrameCorruptRecovery(t *testing.T) {
	rec := runChaos(t, SchemeCC, &RemoteOptions{},
		faultinject.Fault{Kind: faultinject.FrameCorrupt, Core: faultinject.ShardWorker(1), At: 5000},
	)
	if rec.Reconnects < 1 {
		t.Errorf("reconnects = %d, want >= 1", rec.Reconnects)
	}
}

// TestRemoteHeartbeatStallRecovery simulates a silent hang: the worker
// keeps talking but the parent stops crediting its frames as liveness,
// so the supervisor's staleness detector must escalate to dead and tear
// the connection down itself within ~4 heartbeat intervals.
func TestRemoteHeartbeatStallRecovery(t *testing.T) {
	rec := runChaos(t, SchemeCC, &RemoteOptions{Heartbeat: 30 * time.Millisecond},
		faultinject.Fault{Kind: faultinject.HeartbeatStall, Core: faultinject.ShardWorker(0), At: 5000},
	)
	if rec.Reconnects < 1 {
		t.Errorf("reconnects = %d, want >= 1", rec.Reconnects)
	}
}

// TestRemoteRetryBudgetExhausted: when every redial attempt fails, the
// worker must be abandoned after exactly the budgeted attempts and its
// shards migrated in-process — the run completes bit-exact instead of
// erroring out.
func TestRemoteRetryBudgetExhausted(t *testing.T) {
	ref, m := oceanRemoteRef(t, SchemeCC)
	m.cfg.StallTimeout = 10 * time.Second
	before := runtime.NumGoroutine()
	pf := newPipeFarm()
	var redials int64
	var mu sync.Mutex
	opts := &RemoteOptions{
		Transports: pf.transports(2),
		Redial: func(worker int) (remote.Transport, error) {
			mu.Lock()
			redials++
			mu.Unlock()
			return nil, fmt.Errorf("chaos: worker %d unreachable", worker)
		},
		RetryBudget:     2,
		RetryBackoff:    remote.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond},
		CheckpointEvery: 16,
	}
	if err := m.EnableFaults(faultinject.NewPlan(
		faultinject.Fault{Kind: faultinject.ConnDrop, Core: faultinject.ShardWorker(0), At: 10000},
	)); err != nil {
		t.Fatal(err)
	}
	res, err := m.RunRemoteShardedOpts(SchemeCC, opts)
	if err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	pf.join(t)
	rec := res.Recovery
	if rec.AbandonedWorkers != 1 {
		t.Errorf("abandoned workers = %d, want 1", rec.AbandonedWorkers)
	}
	if rec.MigratedShards != 1 {
		t.Errorf("migrated shards = %d, want 1 (worker 0 of 2 owns one shard)", rec.MigratedShards)
	}
	if rec.Reconnects != 0 {
		t.Errorf("reconnects = %d with a failing Redial", rec.Reconnects)
	}
	mu.Lock()
	got := redials
	mu.Unlock()
	if got != 2 {
		t.Errorf("redial attempts = %d, want exactly the budget (2)", got)
	}
	assertRemoteExact(t, "CC/budget-exhausted", res, ref)
	if n := settleGoroutines(before); n > before {
		t.Errorf("goroutine leak: %d before, %d after", before, n)
	}
}

// TestRemoteRecoveryForensics: a chaos run's supervision state must be
// visible in the introspection snapshot and the forensic report — the
// abandoned worker shows up by name with its migrated shards.
func TestRemoteRecoveryForensics(t *testing.T) {
	_, m := oceanRemoteRef(t, SchemeCC)
	m.cfg.StallTimeout = 10 * time.Second
	m.EnableMetrics(metrics.NewRegistry())
	srv, err := introspect.New("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := m.EnableIntrospection(srv); err != nil {
		t.Fatal(err)
	}
	pf := newPipeFarm()
	opts := &RemoteOptions{
		Transports:  pf.transports(2),
		RetryBudget: -1, // no retries: first failure abandons
	}
	if err := m.EnableFaults(faultinject.NewPlan(
		faultinject.Fault{Kind: faultinject.ConnDrop, Core: faultinject.ShardWorker(1), At: 8000},
	)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunRemoteShardedOpts(SchemeCC, opts); err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	pf.join(t)
	reports := m.remoteWorkerReports()
	if len(reports) != 2 {
		t.Fatalf("%d worker reports, want 2", len(reports))
	}
	states := map[string]int{}
	for _, w := range reports {
		states[w.State]++
	}
	if states["abandoned"] != 1 {
		t.Errorf("worker states = %v, want exactly one abandoned", states)
	}
	snap := m.slackSnapshot()
	if len(snap.Remote) != 2 {
		t.Errorf("introspection snapshot lists %d workers, want 2", len(snap.Remote))
	}
	rep := m.snapshot(false, 0)
	if len(rep.Remote) != 2 {
		t.Fatalf("stall report lists %d workers, want 2", len(rep.Remote))
	}
	text := rep.Text()
	if !strings.Contains(text, "remote worker") || !strings.Contains(text, "abandoned") {
		t.Errorf("forensic text misses the supervision state:\n%s", text)
	}
}
