package core

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"slacksim/internal/event"
	"slacksim/internal/faultinject"
	"slacksim/internal/sysemu"
)

// This file is the engine's fault-containment layer. Every goroutine the
// Run* drivers spawn (core loops, the manager, shard workers) runs under a
// deferred containPanic, so a panic anywhere inside the simulation — a CPU
// model bug, a ring overflow, an injected fault — is converted into a
// structured SimError, the run is cancelled cleanly (every peer unparked
// and joined, no goroutine leak), and the error is returned from
// Machine.RunParallel/RunSerial instead of crashing the host process.
// The stall watchdog's forensic StallReport and the deterministic
// fault-injection hooks (internal/faultinject) live here too.

// SimError is a contained engine failure: a recovered panic in a
// simulation goroutine, a ring overflow, or an invariant violation found
// by the runtime auditor (Config.Audit).
type SimError struct {
	// Core identifies the failing goroutine: a core index,
	// faultinject.Manager (-1) for the manager or serial driver, or a
	// faultinject.ShardWorker id (<= -2) for a shard worker.
	Core int `json:"core"`
	// Op names the containment site ("core-loop", "manager",
	// "shard-worker", "serial-loop", "final-drain", "invariant-audit").
	Op string `json:"op"`
	// Detail is the recovered panic value or the violation description.
	Detail string `json:"detail"`
	// SimTime is the failing goroutine's simulated clock at the fault.
	SimTime int64 `json:"sim_time"`
	// GlobalTime is the global simulated time at the fault.
	GlobalTime int64 `json:"global_time"`
	// Scheme is the slack scheme the run used.
	Scheme Scheme `json:"scheme"`
	// Stack is the goroutine stack captured at the recovery point (empty
	// for auditor violations, which are reported in-line, not panics).
	Stack string `json:"stack,omitempty"`
	// Overflow carries the ring's forensics when the fault was a MustPush
	// overflow (ring identity, capacity, depth history, pending event).
	Overflow *event.OverflowError `json:"overflow,omitempty"`
	// Event is the offending event for auditor delivery violations.
	Event *event.Event `json:"event,omitempty"`
	// Report is the post-join engine snapshot, attached by the Run*
	// drivers before returning the error.
	Report *StallReport `json:"report,omitempty"`
}

func (e *SimError) Error() string {
	return fmt.Sprintf("core: contained failure in %s (%s) at local=%d global=%d [%v]: %s",
		goroutineName(e.Core), e.Op, e.SimTime, e.GlobalTime, e.Scheme, e.Detail)
}

// Unwrap exposes the ring-overflow cause to errors.As/errors.Is.
func (e *SimError) Unwrap() error {
	if e.Overflow != nil {
		return e.Overflow
	}
	return nil
}

// goroutineName renders a SimError/fault target id.
func goroutineName(target int) string {
	switch {
	case target == faultinject.Manager:
		return "manager"
	case target <= -2:
		s, _ := faultinject.IsShard(target)
		return fmt.Sprintf("shard-worker %d", s)
	default:
		return fmt.Sprintf("core %d", target)
	}
}

// StallError is returned when the stall watchdog fires: the simulated
// time made no progress for Wait of host time — a deadlocked workload or
// an engine pacing bug. Report is the forensic snapshot captured at the
// moment the watchdog fired.
type StallError struct {
	Wait   time.Duration `json:"wait_ns"`
	Report *StallReport  `json:"report"`
	// Deadlock marks a certain deadlock detected from kernel state (every
	// live thread queued on a kernel object, no grant in flight) rather
	// than a host-time stall; such runs fail immediately instead of
	// waiting out StallTimeout.
	Deadlock bool `json:"deadlock,omitempty"`
}

func (e *StallError) Error() string {
	msg := fmt.Sprintf("core: watchdog: simulated time stalled for %v", e.Wait.Round(time.Millisecond))
	if e.Deadlock {
		msg = "core: watchdog: deadlock: every live thread is blocked in the kernel"
	}
	if e.Report != nil {
		if s := e.Report.stalledSummary(); s != "" {
			msg += " (" + s + ")"
		}
	}
	return msg
}

// StallReport is a forensic snapshot of the engine's pacing state: the
// global time, every core's clock, window edge and park/freeze/blocked
// flags, queue depths, last delivered event, and the kernel's thread,
// lock, barrier and semaphore state. Captured by the watchdog (from the
// manager goroutine, which owns the kernel and GQ) and by the Run*
// drivers after all goroutines have joined.
type StallReport struct {
	Scheme     Scheme            `json:"scheme"`
	Global     int64             `json:"global"`
	GQDepth    int               `json:"gq_depth"`
	StalledFor time.Duration     `json:"stalled_ns,omitempty"`
	Cores      []CoreReport      `json:"cores"`
	Kernel     *sysemu.Forensics `json:"kernel,omitempty"`
	// Remote is the per-worker supervision state on distributed runs —
	// a stall there usually means a worker is mid-recovery or abandoned.
	Remote []RemoteWorkerReport `json:"remote,omitempty"`
}

// CoreReport is one core's pacing state inside a StallReport.
type CoreReport struct {
	ID          int    `json:"id"`
	Local       int64  `json:"local"`
	MaxLocal    int64  `json:"max_local"`
	ResumeFloor int64  `json:"resume_floor,omitempty"`
	Blocked     bool   `json:"blocked,omitempty"`
	Parked      bool   `json:"parked,omitempty"`
	Frozen      bool   `json:"frozen,omitempty"`
	InQ         int    `json:"inq"`
	OutQ        int    `json:"outq"`
	LastEvent   string `json:"last_event,omitempty"`
	LastEventAt int64  `json:"last_event_at,omitempty"`
}

// JSON renders the report as indented JSON (slacksim -forensics -json).
func (r *StallReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Text renders the report as an indented human-readable dump.
func (r *StallReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine snapshot: scheme=%v global=%d gq=%d", r.Scheme, r.Global, r.GQDepth)
	if r.StalledFor > 0 {
		fmt.Fprintf(&b, " stalled-for=%v", r.StalledFor.Round(time.Millisecond))
	}
	b.WriteByte('\n')
	for _, c := range r.Cores {
		fmt.Fprintf(&b, "  core %d: local=%d max=%s", c.ID, c.Local, renderCycles(c.MaxLocal))
		if c.ResumeFloor > 0 {
			fmt.Fprintf(&b, " floor=%d", c.ResumeFloor)
		}
		var flags []string
		if c.Blocked {
			flags = append(flags, "blocked")
		}
		if c.Parked {
			flags = append(flags, "parked")
		}
		if c.Frozen {
			flags = append(flags, "frozen")
		}
		if !c.Blocked && c.Local <= r.Global {
			flags = append(flags, "at-global")
		}
		if len(flags) > 0 {
			fmt.Fprintf(&b, " [%s]", strings.Join(flags, ","))
		}
		fmt.Fprintf(&b, " inq=%d outq=%d", c.InQ, c.OutQ)
		if c.LastEvent != "" {
			fmt.Fprintf(&b, " last=%s@%d", c.LastEvent, c.LastEventAt)
		}
		b.WriteByte('\n')
	}
	if k := r.Kernel; k != nil {
		for _, th := range k.Threads {
			fmt.Fprintf(&b, "  thread c%d: busy=%v exited=%v\n", th.Core, th.Busy, th.Exited)
		}
		for _, l := range k.Locks {
			fmt.Fprintf(&b, "  lock %#x: owner=%s waiters=%v\n", l.Addr, renderOwner(l.Owner), l.Waiters)
		}
		for _, bar := range k.Barriers {
			fmt.Fprintf(&b, "  barrier %#x: %d/%d waiters=%v\n", bar.Addr, bar.Count, bar.N, bar.Waiters)
		}
		for _, s := range k.Semas {
			fmt.Fprintf(&b, "  sema %#x: value=%d waiters=%v\n", s.Addr, s.Value, s.Waiters)
		}
		if k.TimeWarps > 0 || k.LockMismatch > 0 {
			fmt.Fprintf(&b, "  kernel: warps=%d lock-mismatch=%d\n", k.TimeWarps, k.LockMismatch)
		}
	}
	for _, w := range r.Remote {
		fmt.Fprintf(&b, "  remote worker %d: state=%s mark=%s shards=%v", w.ID, w.State, renderCycles(w.Mark), w.Shards)
		if w.Reconnects > 0 || w.Epoch > 0 {
			fmt.Fprintf(&b, " reconnects=%d epoch=%d", w.Reconnects, w.Epoch)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// stalledSummary names the cores pinning the global time (and blocked
// cores, the usual deadlock suspects) for the one-line StallError text.
func (r *StallReport) stalledSummary() string {
	var held []string
	for _, c := range r.Cores {
		switch {
		case c.Blocked:
			held = append(held, fmt.Sprintf("c%d:blocked", c.ID))
		case c.Local <= r.Global:
			held = append(held, fmt.Sprintf("c%d@%d", c.ID, c.Local))
		}
	}
	if len(held) == 0 {
		return ""
	}
	return "stalled cores: " + strings.Join(held, " ")
}

func renderCycles(v int64) string {
	if v == math.MaxInt64 {
		return "inf"
	}
	return fmt.Sprintf("%d", v)
}

func renderOwner(owner int) string {
	if owner < 0 {
		return "free"
	}
	return fmt.Sprintf("c%d", owner)
}

// setFault records the run's first fault, stops the simulation, and wakes
// every parked goroutine so the run joins promptly. Later faults —
// cascades from the shutdown itself — are dropped; the first failure is
// the one worth debugging.
func (m *Machine) setFault(err error) {
	m.faultMu.Lock()
	if m.fault == nil {
		m.fault = err
	}
	m.faultMu.Unlock()
	m.done.Store(true)
	m.wakeAll()
}

// Fault returns the run's recorded fault, if any. The Run* drivers
// already return it; this accessor serves post-mortem inspection.
func (m *Machine) Fault() error {
	m.faultMu.Lock()
	defer m.faultMu.Unlock()
	return m.fault
}

// takeFault is called by the Run* drivers after every goroutine has
// joined; it attaches the post-join engine snapshot to a SimError —
// safe only now, because the kernel and GQ are single-owner structures.
func (m *Machine) takeFault() error {
	m.faultMu.Lock()
	f := m.fault
	m.faultMu.Unlock()
	if f == nil {
		return nil
	}
	if se, ok := f.(*SimError); ok && se.Report == nil {
		se.Report = m.snapshot(true, 0)
	}
	// Crash-bundle capture (bundle.go): every driver funnels its failures
	// through here post-join, so this one hook covers them all.
	m.writeFailureBundle(f)
	return f
}

// containPanic converts a panic on the calling goroutine into a recorded
// SimError and a clean shutdown. Deferred by every goroutine the Run*
// drivers spawn, and around the manager/serial loops themselves.
func (m *Machine) containPanic(target int, op string) {
	r := recover()
	if r == nil {
		return
	}
	se := &SimError{
		Core:       target,
		Op:         op,
		Scheme:     m.scheme,
		GlobalTime: m.global.Load(),
		Stack:      string(debug.Stack()),
	}
	if target >= 0 && target < len(m.local) {
		se.SimTime = m.local[target].v.Load()
	} else {
		se.SimTime = se.GlobalTime
	}
	switch v := r.(type) {
	case *event.OverflowError:
		se.Overflow = v
		se.Detail = v.Error()
	case error:
		se.Detail = v.Error()
	default:
		se.Detail = fmt.Sprint(v)
	}
	m.setFault(se)
}

// detectDeadlock reports a certain deadlock: the GQ and every ring feeding
// a core are empty, and the kernel says every live thread is queued on a
// synchronisation object. Kernel grants travel through manager-produced
// rings, whose Len is exact from the manager (and can only overestimate
// from stale consumer heads), so an in-flight wake-up suppresses the
// verdict; shard-produced memory replies can lag, but a core waiting on
// memory is not kernel-blocked and already suppresses it. Manager-owned,
// like every kernel read.
func (m *Machine) detectDeadlock() bool {
	if m.gq.Len() != 0 {
		return false
	}
	for i := range m.coreRings {
		for _, ring := range m.coreRings[i] {
			if ring.Len() != 0 {
				return false
			}
		}
	}
	return m.kernel.Deadlocked()
}

// snapshot captures the engine's pacing state. Reading the kernel and GQ
// is safe only from the goroutine that owns them: the manager (watchdog
// path) or any goroutine after the run's WaitGroup join (takeFault path).
func (m *Machine) snapshot(withKernel bool, stalledFor time.Duration) *StallReport {
	r := &StallReport{
		Scheme:     m.scheme,
		Global:     m.global.Load(),
		GQDepth:    m.gq.Len(),
		StalledFor: stalledFor,
		Cores:      m.coreReports(),
	}
	if withKernel {
		f := m.kernel.Forensics()
		r.Kernel = &f
	}
	r.Remote = m.remoteWorkerReports()
	return r
}

// coreReports builds the per-core section of a StallReport from the pacing
// atomics and ring lengths only — safe from any goroutine, so it is shared
// by the owner-only snapshot above and the introspection server's
// LiveSnapshot (introspect.go).
func (m *Machine) coreReports() []CoreReport {
	out := make([]CoreReport, 0, len(m.cores))
	for i := range m.cores {
		in := 0
		for _, ring := range m.coreRings[i] {
			in += ring.Len()
		}
		cr := CoreReport{
			ID:          i,
			Local:       m.local[i].v.Load(),
			MaxLocal:    m.maxLocal[i].v.Load(),
			ResumeFloor: m.resumeFloor[i].v.Load(),
			Blocked:     m.blocked[i].v.Load() != 0,
			Parked:      m.parked[i].v.Load() != 0,
			Frozen:      m.frozen[i].v.Load() != 0,
			InQ:         in,
			OutQ:        m.outQ[i].Len(),
		}
		if k := event.Kind(m.lastEvKind[i].v.Load()); k != event.KindInvalid {
			cr.LastEvent = k.String()
			cr.LastEventAt = m.lastEvTime[i].v.Load()
		}
		out = append(out, cr)
	}
	return out
}

// EnableFaults installs a deterministic fault-injection plan (see
// internal/faultinject). Call before the run starts. With no plan
// installed the engine's hot paths pay a single nil check.
func (m *Machine) EnableFaults(p *faultinject.Plan) error {
	if p == nil {
		return nil
	}
	nShards := 0
	if m.shards != nil {
		nShards = m.shards.n
	}
	if m.remote != nil && m.remote.n > nShards {
		nShards = m.remote.n
	}
	if err := p.Validate(m.cfg.NumCores, nShards); err != nil {
		return err
	}
	for _, f := range p.Faults() {
		switch {
		case f.Kind.IsWire():
			if m.remote == nil {
				return fmt.Errorf("core: %v fault requires the remote backend (Config.RemoteShards > 0)", f.Kind)
			}
			m.fiWire = append(m.fiWire, f)
		case f.Core == faultinject.Manager:
			m.fiMgr = append(m.fiMgr, f)
		case f.Core <= -2:
			s, _ := faultinject.IsShard(f.Core)
			if m.fiShard == nil {
				m.fiShard = make([][]faultinject.Fault, nShards)
			}
			m.fiShard[s] = append(m.fiShard[s], f)
		case f.Kind == faultinject.DelayDelivery:
			if m.fiDelay == nil {
				m.fiDelay = make([][]faultinject.Fault, m.cfg.NumCores)
			}
			m.fiDelay[f.Core] = append(m.fiDelay[f.Core], f)
		default:
			if m.fiCore == nil {
				m.fiCore = make([][]faultinject.Fault, m.cfg.NumCores)
			}
			m.fiCore[f.Core] = append(m.fiCore[f.Core], f)
		}
	}
	return nil
}

// injected is one goroutine's private trigger state over its slice of the
// plan. Never shared across goroutines, so the deterministic triggers
// need no synchronisation.
type injected struct {
	faults []faultinject.Fault
	fired  []bool
}

func newInjected(fs []faultinject.Fault) *injected {
	if len(fs) == 0 {
		return nil
	}
	return &injected{faults: fs, fired: make([]bool, len(fs))}
}

// applyCoreFaults fires core i's due faults against its local clock.
// Returns true when the outer loop must restart the iteration (the clock
// changed or the run ended while stalled).
func (m *Machine) applyCoreFaults(i int, inj *injected, local *int64) bool {
	restart := false
	for idx := range inj.faults {
		f := &inj.faults[idx]
		if inj.fired[idx] || *local < f.At {
			continue
		}
		inj.fired[idx] = true
		switch f.Kind {
		case faultinject.Panic:
			panic(fmt.Sprintf("faultinject: injected panic on core %d at local=%d", i, *local))
		case faultinject.Stall:
			// Stop ticking without parking: the published local clock pins
			// the global time, so the watchdog must eventually fire.
			for !m.done.Load() {
				runtime.Gosched()
			}
			return true
		case faultinject.RingFlood:
			m.floodOutQ(i, *local)
		case faultinject.ClockWarp:
			nl := *local - f.Dur
			if nl < 0 {
				nl = 0
			}
			*local = nl
			m.publishLocal(i, nl)
			restart = true
		}
	}
	return restart
}

// floodOutQ force-fills core i's OutQ until MustPush overflows with the
// ring's forensic payload. The manager may be draining concurrently; the
// tight producer loop outruns the consumer and terminates at the first
// failed Push.
func (m *Machine) floodOutQ(i int, local int64) {
	for {
		ev := event.Event{Kind: event.KindInvalid, Core: int32(i), Time: local}
		if !m.outQ[i].Push(ev) {
			m.outQ[i].MustPush(ev) // panics with the overflow forensics
		}
	}
}

// applyPanicFaults fires due Panic faults for a manager or shard-worker
// goroutine against its clock (the global time, or the shard's allowed
// gate).
func applyPanicFaults(inj *injected, clock int64, who string) {
	for idx := range inj.faults {
		f := &inj.faults[idx]
		if inj.fired[idx] || clock < f.At || f.Kind != faultinject.Panic {
			continue
		}
		inj.fired[idx] = true
		panic(fmt.Sprintf("faultinject: injected panic in %s at t=%d", who, clock))
	}
}

// delayHeld reports whether a due DelayDelivery fault still holds ev back
// at the core's current clock.
func delayHeld(delays []faultinject.Fault, ev event.Event, local int64) bool {
	for idx := range delays {
		f := &delays[idx]
		if ev.Time >= f.At && f.Matches(ev.Kind) && local < ev.Time+f.Dur {
			return true
		}
	}
	return false
}
