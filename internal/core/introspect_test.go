package core

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"slacksim/internal/introspect"
	"slacksim/internal/metrics"
)

// longProg keeps the cores busy long enough for HTTP polls to land while
// the run is genuinely in flight.
const longProg = `
# Sum 1..2000000 and exit.
main:
    li   r8, 0
    li   r9, 1
    li   r10, 2000001
loop:
    add  r8, r8, r9
    addi r9, r9, 1
    bne  r9, r10, loop
    li   a0, 0
    syscall 0
`

func TestEnableIntrospectionRequiresMetrics(t *testing.T) {
	srv, err := introspect.New("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	m := mustMachine(t, sumProg, smallConfig(2, ModelOoO))
	if err := m.EnableIntrospection(srv); err == nil {
		t.Fatal("EnableIntrospection without EnableMetrics did not error")
	}
	m.EnableMetrics(metrics.NewRegistry())
	if err := m.EnableIntrospection(srv); err != nil {
		t.Fatal(err)
	}
	if err := m.EnableIntrospection(nil); err != nil {
		t.Fatalf("nil server: %v", err)
	}
}

// TestIntrospectionLive drives the whole stack over real HTTP while a
// parallel run is in flight: /slack must report the machine attached with
// per-core rows, /metrics must expose the engine families, and /stallz
// must render a forensic snapshot of the healthy run.
func TestIntrospectionLive(t *testing.T) {
	srv, err := introspect.New("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	m := mustMachine(t, longProg, smallConfig(2, ModelOoO))
	m.EnableMetrics(metrics.NewRegistry())
	if err := m.EnableIntrospection(srv); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := m.RunParallel(SchemeS9)
		done <- err
	}()

	base := "http://" + srv.Addr()
	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	// Poll /slack until the run reports progress (or finishes — the
	// sources stay attached either way).
	var snap introspect.SlackSnapshot
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if err := json.Unmarshal([]byte(get("/slack")), &snap); err != nil {
			t.Fatalf("bad /slack JSON: %v", err)
		}
		if snap.Global > 0 || snap.Done {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !snap.Attached {
		t.Error("/slack reports attached=false during a live run")
	}
	if len(snap.Cores) != 2 {
		t.Fatalf("/slack cores = %d, want 2", len(snap.Cores))
	}
	if snap.Scheme != "S9" {
		t.Errorf("/slack scheme = %q, want S9", snap.Scheme)
	}

	if body := get("/metrics"); !strings.Contains(body, "slacksim_engine_global_advances_total") {
		t.Errorf("/metrics missing engine families:\n%.400s", body)
	}
	if body := get("/stallz"); !strings.Contains(body, "engine snapshot") {
		t.Errorf("/stallz = %.200q", body)
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// After the run the endpoints still answer, with done=true.
	if err := json.Unmarshal([]byte(get("/slack")), &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Done {
		t.Error("/slack done=false after the run returned")
	}
	// The workload is register-bound on all but core 0, so only the
	// aggregate is guaranteed: somebody's fetch misses went to memory.
	var lat int64
	for _, c := range snap.Cores {
		lat += c.MemLatCount
	}
	if lat == 0 {
		t.Error("no latency observations in final /slack")
	}
}

// TestIntrospectionLiveFused is the fused-driver counterpart: the single
// goroutine mirrors its plain clocks into the shared atomics once per
// round, so /slack, /metrics, and /stallz must answer from another
// goroutine while the fused loop runs.
func TestIntrospectionLiveFused(t *testing.T) {
	srv, err := introspect.New("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	m := mustMachine(t, longProg, smallConfig(2, ModelOoO))
	m.EnableMetrics(metrics.NewRegistry())
	if err := m.EnableIntrospection(srv); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := m.RunFused(SchemeS9)
		done <- err
	}()

	base := "http://" + srv.Addr()
	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	var snap introspect.SlackSnapshot
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if err := json.Unmarshal([]byte(get("/slack")), &snap); err != nil {
			t.Fatalf("bad /slack JSON: %v", err)
		}
		if snap.Global > 0 || snap.Done {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !snap.Attached {
		t.Error("/slack reports attached=false during a live fused run")
	}
	if len(snap.Cores) != 2 {
		t.Fatalf("/slack cores = %d, want 2", len(snap.Cores))
	}
	if snap.Scheme != "S9" {
		t.Errorf("/slack scheme = %q, want S9", snap.Scheme)
	}
	if body := get("/metrics"); !strings.Contains(body, "slacksim_engine_global_advances_total") {
		t.Errorf("/metrics missing engine families:\n%.400s", body)
	}
	if body := get("/stallz"); !strings.Contains(body, "engine snapshot") {
		t.Errorf("/stallz = %.200q", body)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(get("/slack")), &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Done {
		t.Error("/slack done=false after the fused run returned")
	}
}

// TestFusedSlackHighWaters guards the fused driver's ring-depth mirror:
// the fused loop never touches the InQ/OutQ rings (pending replies live
// in fusedIn, undelivered events in round inboxes), so the ring
// observers installed by EnableIntrospection would leave /slack showing
// zero high-waters forever. The driver mirrors its pending-queue depths
// into the gauges instead — on attach and on the sampled rounds — and a
// client must see a nonzero inq high-water from the memory replies core
// 0's fetch misses park across rounds.
func TestFusedSlackHighWaters(t *testing.T) {
	srv, err := introspect.New("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	m := mustMachine(t, longProg, smallConfig(2, ModelOoO))
	m.EnableMetrics(metrics.NewRegistry())
	if err := m.EnableIntrospection(srv); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := m.RunFused(SchemeS9)
		done <- err
	}()

	base := "http://" + srv.Addr()
	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	// Poll until a high-water surfaces mid-run; the gauges only ratchet
	// up (SetMax), so once seen it stays visible.
	var snap introspect.SlackSnapshot
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if err := json.Unmarshal([]byte(get("/slack")), &snap); err != nil {
			t.Fatalf("bad /slack JSON: %v", err)
		}
		if hw := maxInQHighWater(snap); hw > 0 || snap.Done {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(get("/slack")), &snap); err != nil {
		t.Fatal(err)
	}
	if hw := maxInQHighWater(snap); hw == 0 {
		t.Errorf("fused run left all inq high-waters at zero: %+v", snap.Cores)
	}
}

func maxInQHighWater(snap introspect.SlackSnapshot) int64 {
	var hw int64
	for _, c := range snap.Cores {
		if c.InQHighWater > hw {
			hw = c.InQHighWater
		}
	}
	return hw
}
