package core

import (
	"fmt"
	"testing"
)

// threadsProg spawns one worker per remaining core; every thread (including
// main) adds its id+1 into a lock-protected accumulator, synchronises at a
// barrier, and main prints the total. Exercises thread_create/exit/join,
// lock/unlock, barrier, and the shared-memory coherence path.
const threadsProg = `
.equ SYS_EXIT, 0
.equ SYS_TCREATE, 1
.equ SYS_TEXIT, 2
.equ SYS_TJOIN, 3
.equ SYS_LOCK_INIT, 4
.equ SYS_LOCK, 5
.equ SYS_UNLOCK, 6
.equ SYS_BARRIER_INIT, 7
.equ SYS_BARRIER, 8
.equ SYS_PRINT_INT, 12
.equ SYS_NCORES, 20

main:
    syscall SYS_NCORES
    mv   r16, rv            # r16 = n cores
    la   a0, lk
    syscall SYS_LOCK_INIT
    la   a0, bar
    mv   a1, r16
    syscall SYS_BARRIER_INIT

    # spawn workers with arg = tid expectation (1..n-1)
    li   r17, 1
spawn:
    bge  r17, r16, spawned
    la   a0, worker
    mv   a1, r17
    syscall SYS_TCREATE
    addi r17, r17, 1
    j    spawn
spawned:
    # main contributes id 0 -> adds 1
    li   a0, 0
    call contribute
    la   a0, bar
    syscall SYS_BARRIER
    # join workers
    li   r17, 1
join:
    bge  r17, r16, joined
    mv   a0, r17
    syscall SYS_TJOIN
    addi r17, r17, 1
    j    join
joined:
    la   r8, acc
    ld   a0, 0(r8)
    syscall SYS_PRINT_INT
    li   a0, 0
    syscall SYS_EXIT

# contribute(id): acc += id+1 under the lock
contribute:
    mv   r20, a0
    la   a0, lk
    syscall SYS_LOCK
    la   r8, acc
    ld   r9, 0(r8)
    addi r10, r20, 1
    add  r9, r9, r10
    sd   r9, 0(r8)
    la   a0, lk
    syscall SYS_UNLOCK
    ret

worker:
    # a0 = id
    mv   r21, a0
    call contribute
    la   a0, bar
    syscall SYS_BARRIER
    syscall SYS_TEXIT

.data
.align 8
lk:  .dword 0
bar: .dword 0
acc: .dword 0
`

func expectTotal(n int) string {
	total := 0
	for i := 1; i <= n; i++ {
		total += i
	}
	return fmt.Sprint(total)
}

func TestThreadsSerial(t *testing.T) {
	for _, model := range []CoreModel{ModelInOrder, ModelOoO} {
		for _, n := range []int{1, 2, 4, 8} {
			m := mustMachine(t, threadsProg, smallConfig(n, model))
			res := runSerial(t, m)
			if res.Aborted {
				t.Fatalf("model %d n=%d: aborted at %d", model, n, res.EndTime)
			}
			if want := expectTotal(n); res.Output != want {
				t.Fatalf("model %d n=%d: output = %q, want %q", model, n, res.Output, want)
			}
			if res.TimeWarps != 0 {
				t.Fatalf("serial run reported %d time warps", res.TimeWarps)
			}
		}
	}
}

func TestThreadsParallelAllSchemes(t *testing.T) {
	schemes := []Scheme{SchemeCC, SchemeQ10, SchemeL10, SchemeS9, SchemeS9x, SchemeS100, SchemeSU}
	for _, s := range schemes {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			m := mustMachine(t, threadsProg, smallConfig(4, ModelOoO))
			res, err := m.RunParallel(s)
			if err != nil {
				t.Fatal(err)
			}
			if res.Aborted {
				t.Fatalf("aborted at %d", res.EndTime)
			}
			if want := expectTotal(4); res.Output != want {
				t.Fatalf("output = %q, want %q (workload must execute correctly under every scheme)", res.Output, want)
			}
		})
	}
}

// TestConservativeSchemesExact verifies the paper's accuracy claim: with
// windows no larger than the critical latency, the conservative schemes
// (CC, Q10, L10, S9*) produce exactly the serial cycle count.
func TestConservativeSchemesExact(t *testing.T) {
	ref := runSerial(t, mustMachine(t, threadsProg, smallConfig(4, ModelOoO)))
	if ref.Aborted {
		t.Fatal("reference aborted")
	}
	for _, s := range []Scheme{SchemeCC, SchemeQ10, SchemeL10, SchemeS9x} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			m := mustMachine(t, threadsProg, smallConfig(4, ModelOoO))
			res, err := m.RunParallel(s)
			if err != nil {
				t.Fatal(err)
			}
			if res.EndTime != ref.EndTime {
				t.Fatalf("%v end time %d != serial reference %d", s, res.EndTime, ref.EndTime)
			}
			if res.TimeWarps != 0 {
				t.Fatalf("%v processed %d events out of timestamp order", s, res.TimeWarps)
			}
		})
	}
}
