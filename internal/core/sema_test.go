package core

import "testing"

// semaProg builds a producer/consumer pipeline on semaphores: core 0
// produces N items into a 4-slot ring guarded by empty/full semaphores,
// core 1 consumes and accumulates. Exercises SysSema* end to end.
const semaProg = `
.equ SYS_EXIT, 0
.equ SYS_TCREATE, 1
.equ SYS_TEXIT, 2
.equ SYS_TJOIN, 3
.equ SYS_SEMA_INIT, 9
.equ SYS_SEMA_WAIT, 10
.equ SYS_SEMA_SIGNAL, 11
.equ SYS_PRINT_INT, 12
.equ N, 64
.equ SLOTS, 4

main:
    la   a0, empty
    li   a1, SLOTS
    syscall SYS_SEMA_INIT
    la   a0, full
    li   a1, 0
    syscall SYS_SEMA_INIT
    la   a0, consumer
    li   a1, 1
    syscall SYS_TCREATE
    # produce 1..N
    li   r20, 1
p_loop:
    li   r8, N+1
    bge  r20, r8, p_done
    la   a0, empty
    syscall SYS_SEMA_WAIT
    # ring[(i-1) % SLOTS] = i
    addi r9, r20, -1
    andi r9, r9, SLOTS-1
    slli r9, r9, 3
    la   r10, ring
    add  r10, r10, r9
    sd   r20, 0(r10)
    la   a0, full
    syscall SYS_SEMA_SIGNAL
    addi r20, r20, 1
    j    p_loop
p_done:
    li   a0, 1
    syscall SYS_TJOIN
    la   r8, acc
    ld   a0, 0(r8)
    syscall SYS_PRINT_INT
    li   a0, 0
    syscall SYS_EXIT

consumer:
    li   r20, 1
    li   r21, 0           # acc
c_loop:
    li   r8, N+1
    bge  r20, r8, c_done
    la   a0, full
    syscall SYS_SEMA_WAIT
    addi r9, r20, -1
    andi r9, r9, SLOTS-1
    slli r9, r9, 3
    la   r10, ring
    add  r10, r10, r9
    ld   r11, 0(r10)
    add  r21, r21, r11
    la   a0, empty
    syscall SYS_SEMA_SIGNAL
    addi r20, r20, 1
    j    c_loop
c_done:
    la   r8, acc
    sd   r21, 0(r8)
    syscall SYS_TEXIT

.data
.align 8
empty: .dword 0
full:  .dword 0
acc:   .dword 0
ring:  .space SLOTS*8
`

// TestSemaphorePipeline runs the producer/consumer program under the
// serial engine and all schemes; the sum 1..64 = 2080 must always emerge.
func TestSemaphorePipeline(t *testing.T) {
	ref := runSerial(t, mustMachine(t, semaProg, smallConfig(2, ModelOoO)))
	if ref.Aborted || ref.Output != "2080" {
		t.Fatalf("serial: aborted=%v output=%q", ref.Aborted, ref.Output)
	}
	for _, s := range []Scheme{SchemeCC, SchemeQ10, SchemeS9x, SchemeS9, SchemeSU} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			m := mustMachine(t, semaProg, smallConfig(2, ModelOoO))
			res, err := m.RunParallel(s)
			if err != nil {
				t.Fatal(err)
			}
			if res.Output != "2080" {
				t.Fatalf("output = %q", res.Output)
			}
			if s.Conservative() && res.EndTime != ref.EndTime {
				t.Fatalf("conservative end %d != serial %d", res.EndTime, ref.EndTime)
			}
		})
	}
}

// TestSemaphorePipelineInOrder covers the in-order core on the same
// blocking-semaphore pattern.
func TestSemaphorePipelineInOrder(t *testing.T) {
	m := mustMachine(t, semaProg, smallConfig(2, ModelInOrder))
	res, err := m.RunParallel(SchemeS9x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "2080" {
		t.Fatalf("output = %q", res.Output)
	}
}
