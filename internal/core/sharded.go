package core

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"time"

	"slacksim/internal/cache"
	"slacksim/internal/event"
	"slacksim/internal/trace"
)

// This file implements the paper's §2.2 scaling hook: "If the simulation
// manager thread ever becomes a bottleneck it is possible to split the
// functionality of the manager thread also into several threads."
//
// With Config.ManagerShards = S > 1, memory-hierarchy requests are routed
// by NUCA bank to S shard worker goroutines, each owning a disjoint set of
// L2 banks (bank mod S), their directory state, their crossbar ports, and
// their memory channels (the cache config's DRAMChannels is pinned to S so
// channel ownership is exact). The main manager thread keeps the kernel
// (system calls), the global time, and the window pacing.
//
// Determinism for conservative schemes is preserved because the state the
// shards mutate is disjoint per line, each shard processes its events in
// (timestamp, core, seq) order, and the pacing thread raises the windows
// only after every shard's watermark has passed the newly allowed time —
// so every reply is still in flight before any core is allowed to reach
// its timestamp. A sharded run is bit-identical to the serial reference
// built from the same cache configuration.

// shardState is the per-machine sharding plumbing (nil when unsharded).
type shardState struct {
	n    int
	l2   []*cache.L2System
	in   []*event.Ring   // main -> shard s
	out  [][]*event.Ring // shard s -> core i
	gate []padded        // per-shard allowed-time target
	mark []padded        // per-shard processed-through watermark
}

func newShardState(cfg Config) (*shardState, error) {
	s := &shardState{n: cfg.ManagerShards}
	for i := 0; i < s.n; i++ {
		l2, err := cache.NewL2System(cfg.Cache)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		s.l2 = append(s.l2, l2)
		in := event.NewRing(cfg.RingCap * cfg.NumCores)
		in.SetName(fmt.Sprintf("shardq.s%d", i))
		s.in = append(s.in, in)
		rings := make([]*event.Ring, cfg.NumCores)
		for c := range rings {
			rings[c] = event.NewRing(cfg.RingCap)
			rings[c].SetName(fmt.Sprintf("shard%d.c%d", i, c))
		}
		s.out = append(s.out, rings)
	}
	s.gate = make([]padded, s.n)
	s.mark = make([]padded, s.n)
	return s, nil
}

// shardOf returns the shard owning addr's bank.
func (m *Machine) shardOf(addr uint64) int {
	return m.shards.l2[0].BankOf(addr) % m.shards.n
}

// runShardedManager is the sharded replacement for managerLoop: it routes
// memory events to the shard workers, keeps system calls and pacing, and
// synchronises the shards' watermarks with the window updates.
func (m *Machine) runShardedManager(s Scheme) {
	sh := m.shards
	conservative := s.Conservative()
	optimistic := !conservative
	if optimistic {
		for i := 0; i < sh.n; i++ {
			sh.gate[i].v.Store(math.MaxInt64)
		}
	}

	ad := adaptState{window: s.Window}
	idleRounds := 0
	prodStreak := 0
	quiet := 0
	parkT := time.Duration(0)
	lastChange := time.Now()
	lastGlobal := int64(-1)
	mw := m.mgrTW
	measure := m.met != nil
	lastWindow := ad.window
	lastBarrier := int64(0)
	fi := newInjected(m.fiMgr)
	for !m.done.Load() {
		var t0 time.Time
		if measure {
			t0 = time.Now()
		}
		ps := mw.Begin()
		evBefore := m.evProcessed
		// Epoch first, as in managerLoop: activity after this read keeps the
		// manager from parking at the end of an idle round.
		epoch := m.mgrEpoch.v.Load()
		// Min-before-drain, as in managerLoop: the bound must not pass
		// events still in flight toward the queues. The min-tree root makes
		// this O(1) instead of an O(N) clock scan.
		g := m.globalMin()
		if measure {
			// Straggler attribution, as in managerLoop (latency.go).
			m.noteStraggler()
		}
		if fi != nil {
			applyPanicFaults(fi, g, "manager")
		}
		moved := m.drainAndRouteDirty()
		if g >= m.cfg.MaxCycles {
			m.aborted = true
			m.done.Store(true)
			break
		}

		var processed bool
		m.beginNotifyBatch()
		if conservative {
			allowed := g
			if s.Kind == Quantum {
				// Visibility only at quantum boundaries (see quantumBarrier:
				// round down, never test g%Window == 0).
				allowed = quantumBarrier(g, s.Window)
				if allowed > lastBarrier {
					lastBarrier = allowed
					mw.Instant(trace.KBarrier, allowed)
					if measure {
						m.met.barriers.Inc()
					}
				}
			}
			if allowed > 0 {
				for i := 0; i < sh.n; i++ {
					if sh.gate[i].v.Load() < allowed {
						sh.gate[i].v.Store(allowed)
					}
				}
				m.waitWatermarks(allowed)
				processed = m.processConservative(allowed)
			}
		} else {
			if s.Kind == Adaptive {
				processed = m.processAllCounting(&ad)
				ad.adapt(g)
				if ad.window != lastWindow {
					lastWindow = ad.window
					mw.Count(trace.KWindow, ad.window)
					mw.Instant(trace.KPhase, ad.window)
					if measure {
						m.met.adaptResizes.Inc()
					}
				}
			} else {
				processed = m.processAll()
			}
		}
		m.flushNotifyBatch()
		if processed {
			mw.Span(trace.KProcess, ps, m.evProcessed-evBefore)
			mw.Count(trace.KQDepth, int64(m.gq.Len()))
			if measure {
				m.met.gqDepth.Observe(int64(m.gq.Len()))
			}
		}
		if m.introOn {
			// Mirror the manager-owned GQ depth for the live /slack view.
			m.liveGQ.Store(int64(m.gq.Len()))
		}

		// As in managerLoop: publish global only after the pass's replies
		// (including the shard watermark wait) so cores can use it as a
		// safe fast-forward horizon.
		if g > m.global.Load() {
			m.global.Store(g)
			mw.Count(trace.KGlobal, g)
			if measure {
				m.met.globalAdv.Inc()
			}
		}

		changed := m.updateWindows(s, g, &ad)
		if changed && measure {
			m.met.windowSlides.Inc()
		}

		// Certain-deadlock detection, as in managerLoop: idle cores keep
		// the global advancing, so the host-time watchdog below can never
		// fire. After a run of event-free rounds, ask the kernel.
		if moved || processed {
			quiet = 0
		} else if quiet++; quiet&511 == 0 && m.detectDeadlock() {
			m.aborted = true
			m.setFault(&StallError{Deadlock: true, Report: m.snapshot(true, 0)})
			break
		}

		if moved || processed || changed || g != lastGlobal {
			// 1-in-32 watchdog stamp during hot streaks; the idle→productive
			// transition always stamps (see managerLoop in parallel.go).
			if idleRounds != 0 || prodStreak&31 == 0 {
				lastChange = time.Now()
			}
			prodStreak++
			idleRounds = 0
			parkT = 0
			lastGlobal = g
			if measure {
				m.mgrBusyNS += time.Since(t0).Nanoseconds()
			}
			continue
		}
		prodStreak = 0
		idleRounds++
		if idleRounds > 4 {
			// Park as in managerLoop: timed, so the health checks still run
			// when no core will ever bump the epoch again. The shard workers
			// keep their own spin/yield loops; only the pacing thread parks.
			if m.mgrIdleWait(epoch, nextParkTimeout(&parkT)) {
				if m.detectDeadlock() {
					m.aborted = true
					m.setFault(&StallError{Deadlock: true, Report: m.snapshot(true, 0)})
					break
				}
				if wait := time.Since(lastChange); wait > m.stallTimeout() {
					m.aborted = true
					m.setFault(&StallError{Wait: wait, Report: m.snapshot(true, wait)})
					break
				}
			}
		}
		if idleRounds&1023 == 0 && time.Since(lastChange) > m.stallTimeout() {
			// Watchdog, as in managerLoop: capture forensics and surface
			// a StallError rather than hang.
			wait := time.Since(lastChange)
			m.aborted = true
			m.setFault(&StallError{Wait: wait, Report: m.snapshot(true, wait)})
			break
		}
	}
	m.wakeAll()
}

// drainAndRoute moves core requests to their processors: memory traffic to
// the owning shard, system calls to the manager's own queue. Full O(N)
// scan — the final-drain fallback; the hot loop uses drainAndRouteDirty.
func (m *Machine) drainAndRoute() bool {
	moved := false
	for i := range m.outQ {
		moved = m.routeOutQ(i) || moved
	}
	return moved
}

// drainAndRouteDirty is drainAndRoute restricted to the dirty set: only
// OutQs that received a push since the last round are touched (same
// bitmap and no-stranding argument as drainDirtyOutQs).
func (m *Machine) drainAndRouteDirty() bool {
	moved := false
	for w := range m.outDirty {
		set := m.outDirty[w].v.Swap(0)
		for set != 0 {
			i := w<<6 | bits.TrailingZeros64(set)
			set &= set - 1
			moved = m.routeOutQ(i) || moved
		}
	}
	return moved
}

// routeOutQ drains core i's OutQ, routing each request to its processor.
func (m *Machine) routeOutQ(i int) bool {
	m.drainBuf = m.outQ[i].PopBatch(m.drainBuf[:0])
	for j := range m.drainBuf {
		ev := m.drainBuf[j]
		if ev.Kind == event.KSyscall {
			m.gq.Push(ev)
			continue
		}
		m.shards.in[m.shardOf(ev.Addr)].MustPush(ev)
	}
	return len(m.drainBuf) > 0
}

// waitWatermarks blocks until every shard has processed through allowed.
func (m *Machine) waitWatermarks(allowed int64) {
	for s := 0; s < m.shards.n; s++ {
		for m.shards.mark[s].v.Load() < allowed && !m.done.Load() {
			runtime.Gosched()
		}
	}
}

// shardWorker owns one bank shard: it consumes routed requests in
// timestamp order up to the published gate and emits replies on its own
// per-core rings.
func (m *Machine) shardWorker(sidx int) {
	sh := m.shards
	l2 := sh.l2[sidx]
	var gq evHeap
	var drainBuf []event.Event
	push := func(core int, ev event.Event) {
		sh.out[sidx][core].MustPush(ev)
		m.notifyCore(core)
	}
	var sw *trace.Writer
	if m.shardTW != nil {
		sw = m.shardTW[sidx]
	}
	measure := m.met != nil
	var fi *injected
	if m.fiShard != nil {
		fi = newInjected(m.fiShard[sidx])
	}
	for !m.done.Load() {
		allowed := sh.gate[sidx].v.Load()
		if fi != nil {
			applyPanicFaults(fi, allowed, fmt.Sprintf("shard-worker %d", sidx))
		}
		drainBuf = sh.in[sidx].PopBatch(drainBuf[:0])
		for j := range drainBuf {
			gq.Push(drainBuf[j])
		}
		moved := len(drainBuf) > 0
		did := false
		ps := sw.Begin()
		n := int64(0)
		for {
			top := gq.Peek()
			if top == nil || top.Time >= allowed {
				break
			}
			ev := gq.Pop()
			m.processMemVia(l2, push, ev)
			did = true
			n++
		}
		if n > 0 {
			m.evShard.Add(n)
			sw.Span(trace.KProcess, ps, n)
			if measure {
				m.met.events.Add(n)
			}
		}
		if sh.mark[sidx].v.Load() < allowed {
			sh.mark[sidx].v.Store(allowed)
			did = true
		}
		if !moved && !did {
			runtime.Gosched()
		}
	}
}

// aggregateL2Stats sums the hierarchy counters across shards — local
// goroutines or remote workers (whose final counters arrive in their
// FStats frames) — or returns the single manager's stats.
func (m *Machine) aggregateL2Stats() cache.L2Stats {
	if m.remote != nil && m.remote.workers != nil {
		var total cache.L2Stats
		for i := range m.remote.l2stats {
			addL2Stats(&total, m.remote.l2stats[i])
		}
		return total
	}
	if m.shards == nil {
		return m.l2.Stats
	}
	var total cache.L2Stats
	for _, l2 := range m.shards.l2 {
		addL2Stats(&total, l2.Stats)
	}
	return total
}

func addL2Stats(total *cache.L2Stats, st cache.L2Stats) {
	total.Accesses += st.Accesses
	total.Hits += st.Hits
	total.Misses += st.Misses
	total.DRAMReads += st.DRAMReads
	total.DRAMWrites += st.DRAMWrites
	total.InvsSent += st.InvsSent
	total.Downgrades += st.Downgrades
	total.L2Evictions += st.L2Evictions
	total.L1Writebacks += st.L1Writebacks
	total.OrderViolations += st.OrderViolations
}
