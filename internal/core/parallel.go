package core

import (
	"math"
	"runtime"
	"sync"
	"time"

	"slacksim/internal/event"
	"slacksim/internal/faultinject"
	"slacksim/internal/trace"
)

// debugBigJump, when non-nil, observes large fast-forward jumps (tests).
var debugBigJump func(core int, from, to, nextWork int64)

// parkSpinIters bounds the busy-wait phase before a blocked core thread
// parks on its condition variable. Shared-memory spinning is the cheap
// common case the paper's design exploits; parking only matters when the
// host is oversubscribed (e.g. 9 simulation threads on 1 host core).
const parkSpinIters = 128

// optimisticBatch caps the batched inner loop for schemes with no safe
// conservative horizon (the window may be unbounded). The batch also breaks
// as soon as a reply lands in the core's rings, so this only bounds the
// uninterrupted hit-streak run length.
const optimisticBatch = 256

// localPublishMask publishes the core's local clock every 32 batched cycles
// (in addition to every batch end), bounding how stale the manager's view of
// a long-running batch can get. Lazy publication is safe: the published
// value is always <= the true local clock, so the global-time minimum it
// feeds stays conservative.
const localPublishMask = 31

// batchDisabled forces coreLoop to its single-cycle path (test hook for the
// batching determinism cross-check; see TestBatchedSteppingDeterminism).
var batchDisabled bool

// RunParallel executes the simulation with one goroutine per target core
// plus the manager on the calling goroutine, paced by the given slack
// scheme.
func (m *Machine) RunParallel(s Scheme) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	m.scheme = s
	sc := s
	m.schemeLive.Store(&sc)
	start := time.Now()
	m.captureHostMem()

	// Initial windows.
	init := s.maxLocal(0)
	for i := range m.maxLocal {
		m.maxLocal[i].v.Store(init)
	}

	// Every spawned goroutine (and the manager loop itself) runs under
	// containPanic: a panic anywhere inside the simulation is recorded as
	// a SimError, the run is cancelled (done + wakeAll, so every peer
	// unparks and joins), and the error is returned below — no goroutine
	// leaks, no host-process crash.
	var wg sync.WaitGroup
	for i := range m.cores {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer m.containPanic(i, "core-loop")
			m.coreLoop(i)
		}(i)
	}
	if m.shards != nil {
		for sidx := 0; sidx < m.shards.n; sidx++ {
			wg.Add(1)
			go func(sidx int) {
				defer wg.Done()
				defer m.containPanic(faultinject.ShardWorker(sidx), "shard-worker")
				m.shardWorker(sidx)
			}(sidx)
		}
		func() {
			defer m.containPanic(faultinject.Manager, "manager")
			m.runShardedManager(s)
		}()
	} else {
		func() {
			defer m.containPanic(faultinject.Manager, "manager")
			m.managerLoop(s)
		}()
	}
	m.wakeAll()
	wg.Wait()
	if err := m.takeFault(); err != nil {
		return nil, err
	}
	// Process any straggler events so kernel/directory state is final —
	// also guarded, a straggler can fault like any in-run event.
	func() {
		defer m.containPanic(faultinject.Manager, "final-drain")
		m.drainOutQs()
		m.processAll()
	}()
	if err := m.takeFault(); err != nil {
		return nil, err
	}
	return m.result(time.Since(start)), nil
}

// coreLoop is one core thread: deliver InQ events whose time has come,
// simulate up to a safe horizon of cycles in a tight batch, publish the new
// local time; block at the window edge.
//
// Batched stepping: each outer iteration computes a horizon end =
// min(window edge, safe event horizon, earliest kept inbox timestamp) and
// runs Tick in an inner loop up to it, hoisting the done/global/maxLocal
// atomic loads, the inbox drain, the trace/metric sampling, and (mostly)
// the local-clock publication out of the per-cycle path. Under conservative
// schemes the safe event horizon is gSnap + critical latency: every event
// pushed after this iteration's drain is stamped >= that (the manager's
// process-then-publish order), and events already drained bound the horizon
// by their own timestamps — so every event is still applied exactly at its
// timestamp and conservative schemes stay bit-exact against the serial
// reference. Under optimistic schemes there is no such bound; the batch is
// capped at optimisticBatch cycles and additionally breaks as soon as a
// reply lands in the core's rings, preserving the current cycle-granularity
// delivery of replies on arrival.
//
// Two regime controls keep the simulation faithful and live on any host:
//
//   - A core whose Tick made no progress (fully stalled pipeline) does not
//     burn simulated cycles at host speed. It fast-forwards to the next
//     deterministic work time — a scheduled completion, a queued event's
//     timestamp — or, when only a not-yet-arrived reply can unblock it,
//     yields the host CPU without advancing its clock. This reproduces the
//     paper's regime (simulating a cycle was expensive relative to the
//     manager's reply latency, so a stalled core observed replies at their
//     timestamps) and prevents unbounded-slack runs from inflating the
//     simulated time by host-speed-dependent amounts.
//
//   - A core with no workload thread is additionally clamped to global +
//     the critical latency, whatever the scheme: letting it free-run under
//     large or unbounded slack would poison shared-resource occupancy
//     clocks with far-future timestamps.
func (m *Machine) coreLoop(i int) {
	c := m.cores[i]
	st := c.Stats()
	// Sized so a full InQ drain never grows the slice mid-run.
	inbox := make([]event.Event, 0, m.cfg.RingCap)
	local := m.local[i].v.Load()
	idleClamp := m.cfg.Cache.CriticalLatency()
	includeInvs := m.scheme.Conservative()
	ticks := 0
	tw := m.coreWriter(i)
	measure := m.met != nil
	aud := m.audit
	var fi *injected
	if m.fiCore != nil {
		fi = newInjected(m.fiCore[i])
	}
	var loopT0 time.Time
	if measure {
		loopT0 = time.Now()
		defer func() { m.coreHostNS[i] = time.Since(loopT0).Nanoseconds() }()
	}
	for !m.done.Load() {
		// Yield periodically so an oversubscribed host (the paper's 1- and
		// 2-host-core configurations) cannot starve the manager.
		if ticks++; ticks&63 == 0 {
			runtime.Gosched()
		}
		if fi != nil && m.applyCoreFaults(i, fi, &local) {
			continue
		}

		// Read the global time before draining the inbox: every reply
		// pushed before this value was published is then guaranteed to be
		// in the drain below, which makes gSnap + criticalLatency - 1 a
		// safe skip horizon (later pushes are stamped >= gSnap + critical
		// latency by the manager's process-then-publish order).
		gSnap := m.global.Load()
		limit := m.maxLocal[i].v.Load()
		if aud != nil && ticks%aud.every == 0 {
			m.auditCore(i, local, gSnap)
		}
		if !c.Active() {
			if idleMax := gSnap + idleClamp; idleMax < limit {
				limit = idleMax
			}
		}
		// Slack sampling (1 in 64 iterations when tracing/metrics are on):
		// the headroom MaxLocal(i) − Local(i) and the lead over the last
		// published global time — the paper's per-core slack observables.
		if ticks&63 == 0 && (tw != nil || measure) {
			if limit != math.MaxInt64 {
				slack := limit - local
				tw.Count(trace.KSlack, slack)
				if measure {
					m.met.slack.Observe(slack)
				}
			}
			tw.Count(trace.KLead, local-gSnap)
		}
		if local >= limit {
			if !c.Active() {
				// Following the global time, which other cores advance.
				runtime.Gosched()
				continue
			}
			m.waitCycles[i]++
			ws := tw.Begin()
			var pt0 time.Time
			if measure {
				pt0 = time.Now()
			}
			m.parkCore(i, local)
			if measure {
				m.waitHostNS[i] += time.Since(pt0).Nanoseconds()
				m.met.parks.Inc()
			}
			tw.Span(trace.KWait, ws, local)
			continue
		}

		delivered := m.deliverInbox(i, &inbox, local)

		// Batch horizon. Kept inbox events all have timestamps > local, and
		// bound the horizon below, so no event ever becomes deliverable in
		// the middle of a batch under a conservative scheme.
		end := local + 1
		if !batchDisabled {
			end = limit
			if includeInvs {
				if hz := gSnap + idleClamp; hz < end {
					end = hz
				}
			} else if hz := local + optimisticBatch; hz < end {
				end = hz
			}
			if t, ok := earliestEvent(inbox, true); ok && t < end {
				end = t
			}
			if end <= local {
				end = local + 1
			}
		}

		if roi := m.roiTime.Load(); roi >= 0 && !st.ROIMarked {
			c.MarkROI(local)
		}
		progressed := c.Tick(local)
		local++
		for progressed && local < end {
			if !includeInvs && m.coreHasEvents(i) {
				break // optimistic: deliver the arrival promptly
			}
			if local&localPublishMask == 0 {
				m.publishLocal(i, local)
			}
			if !st.ROIMarked && m.roiTime.Load() >= 0 {
				c.MarkROI(local)
			}
			progressed = c.Tick(local)
			local++
		}
		m.publishLocal(i, local)
		if progressed || delivered {
			continue
		}

		// Fully stalled: fast-forward to the next actionable time.
		next := c.NextWork(local)
		if t, ok := earliestEvent(inbox, includeInvs); ok && t < next {
			next = t
		}
		if next == math.MaxInt64 {
			switch {
			case !c.Active():
				next = limit // idle core: follow the window edge
			case m.scheme.Conservative() && m.blocked[i].v.Load() == 0:
				// Conservative schemes process requests only once the
				// global time passes them, and the global time includes
				// every core that is not asleep in the kernel — so slide
				// (skip, never tick) to the window edge and park there;
				// the quantum barrier or the window slide then lets the
				// manager answer us. The skip targets are pure simulated-
				// time quantities, so the outcome stays deterministic.
				next = limit
			default:
				// Optimistic schemes answer requests on arrival, and a
				// kernel-blocked thread is excluded from the global time
				// under every scheme, so in either case the reply needs
				// nothing from this core: freeze the clock entirely — no
				// ticking — until an event arrives, then jump precisely
				// to its timestamp. Ticking once per wait poll would
				// advance the clock at host-schedule speed — exactly the
				// nondeterminism that must not leak into the simulation.
				fs := tw.Begin()
				var ft0 time.Time
				if measure {
					ft0 = time.Now()
				}
				m.freezeWait(i)
				if measure {
					m.waitHostNS[i] += time.Since(ft0).Nanoseconds()
					m.met.freezes.Inc()
				}
				tw.Span(trace.KFreeze, fs, local)
				continue
			}
		}
		if next > limit {
			next = limit
		}
		if includeInvs {
			// Conservative schemes: cap the skip at the pre-drain global
			// snapshot plus the critical latency, so no event pushed after
			// this iteration's drain can land inside the skipped range.
			// The loop re-drains and extends the skip as the global time
			// advances.
			if horizon := gSnap + idleClamp - 1; next > horizon {
				next = horizon
			}
		}
		if next > local {
			if debugBigJump != nil && next-local > 2000 {
				debugBigJump(i, local, next, c.NextWork(local))
			}
			if debugLate != nil {
				m.lastSkip[i] = skipRec{from: local, to: next, gSnap: gSnap, limit: limit, kind: 'S'}
			}
			c.Skip(next - local)
			local = next
			m.publishLocal(i, local)
		}
	}
}

// earliestEvent returns the smallest timestamp among queued events that
// should bound a stalled core's fast-forward jump. Under conservative
// schemes every event participates, so invalidations and downgrades are
// applied exactly at their timestamps — the serial reference and the
// parallel engine then agree on every L1 state transition. Under
// optimistic schemes invalidations are excluded: they unblock nothing, and
// jumping a frozen core's clock to a far-future invalidation from a core
// running ahead would inflate its simulated time by exactly the skew the
// scheme allows; applying them late is part of the measured distortion.
func earliestEvent(inbox []event.Event, includeInvs bool) (int64, bool) {
	best, ok := int64(0), false
	for i := range inbox {
		if !includeInvs {
			switch inbox[i].Kind {
			case event.KInv, event.KDowngrade:
				continue
			}
		}
		if !ok || inbox[i].Time < best {
			best, ok = inbox[i].Time, true
		}
	}
	return best, ok
}

// parkCore waits until the manager raises the core's max local time: a
// bounded spin (with yields) followed by a condition-variable park.
func (m *Machine) parkCore(i int, local int64) {
	for s := 0; s < parkSpinIters; s++ {
		if m.done.Load() || m.maxLocal[i].v.Load() > local {
			return
		}
		runtime.Gosched()
	}
	// Publish the waiter flag before the locked predicate check (same
	// lost-wakeup-free pattern as freezeWait): updateWindows either sees the
	// flag and signals under the mutex, or raised maxLocal before our check.
	m.parked[i].v.Store(1)
	m.parkMu[i].Lock()
	for !m.done.Load() && m.maxLocal[i].v.Load() <= local {
		m.parkCond[i].Wait()
	}
	m.parkMu[i].Unlock()
	m.parked[i].v.Store(0)
}

// freezeWait blocks core i until an InQ event arrives (or the run ends):
// a bounded spin, then a park on the core's freeze condition, which every
// reply push signals through notifyCore. Barrier- and lock-blocked threads
// wait here for hundreds of simulated cycles, so parking them takes their
// goroutines out of the host scheduler's rotation instead of burning it
// with yields.
func (m *Machine) freezeWait(i int) {
	for s := 0; s < parkSpinIters; s++ {
		if m.done.Load() || m.coreHasEvents(i) {
			return
		}
		runtime.Gosched()
	}
	// Publish the waiter flag before the final predicate check: a concurrent
	// pusher either sees the flag (and signals under the mutex) or pushed
	// before our check (and we see the event). Sequentially consistent
	// atomics on both sides make missing both impossible.
	m.frozen[i].v.Store(1)
	m.parkMu[i].Lock()
	for !m.done.Load() && !m.coreHasEvents(i) {
		m.freezeCond[i].Wait()
	}
	m.parkMu[i].Unlock()
	m.frozen[i].v.Store(0)
}

// notifyCore wakes core i if it is parked waiting for an InQ event. Called
// by every goroutine that pushes a reply into one of the core's rings,
// after the push. The atomic flag keeps the common no-waiter case free of
// the mutex.
func (m *Machine) notifyCore(i int) {
	if m.frozen[i].v.Load() == 0 {
		return
	}
	m.parkMu[i].Lock()
	m.freezeCond[i].Signal()
	m.parkMu[i].Unlock()
}

func (m *Machine) wakeAll() {
	for i := range m.parkCond {
		m.parkMu[i].Lock()
		m.parkCond[i].Broadcast()
		m.freezeCond[i].Broadcast()
		m.parkMu[i].Unlock()
	}
	m.wakeManager()
}

// Interrupt requests a graceful stop of an in-flight parallel run from
// another goroutine (a signal handler, typically). The manager and core
// loops observe done at their next poll, unwind through the normal join
// path — final drain, stats fold, remote shutdown — and Run* returns an
// aborted Result. Safe to call more than once, and before or after the
// run; a no-op for runs that already finished.
func (m *Machine) Interrupt() {
	m.intr.Store(true)
	m.done.Store(true)
	m.wakeAll()
}

// bumpMgrEpoch publishes core-side activity to the manager: a clock
// publication, an OutQ push, or a kernel grant. The epoch store comes
// first so a manager checking the epoch before parking either sees the
// bump (and stays up) or parks with the flag already visible to us — in
// which case the channel send below wakes it. The Dekker pairing mirrors
// parkCore/notifyCore.
func (m *Machine) bumpMgrEpoch() {
	m.mgrEpoch.v.Add(1)
	if m.mgrParked.Load() != 0 {
		m.wakeManager()
	}
}

// wakeManager delivers a non-blocking wake token to a parked manager.
func (m *Machine) wakeManager() {
	select {
	case m.mgrWake <- struct{}{}:
	default:
	}
}

// mgrIdleWait is the manager-side analogue of parkCore/freezeWait: after a
// few idle rounds the manager spins briefly (with yields) and then parks
// on its wake channel until core activity bumps the epoch — recovering a
// host core whenever the machine is quiescent, instead of rescanning an
// unchanged machine at host speed. The park is timed: the stall watchdog
// and certain-deadlock detection must keep running even when no core will
// ever bump the epoch again (a stalled or deadlocked workload is exactly
// the case with no activity), so the caller gets a timedOut=true wake at
// most timeout after parking and runs the health checks then.
func (m *Machine) mgrIdleWait(epoch int64, timeout time.Duration) (timedOut bool) {
	for s := 0; s < parkSpinIters; s++ {
		if m.done.Load() || m.mgrEpoch.v.Load() != epoch {
			return false
		}
		runtime.Gosched()
	}
	// Publish the waiter flag before the final epoch check: a concurrent
	// bumper either sees the flag (and sends a wake token) or bumped before
	// our check (and we see the new epoch). Sequentially consistent
	// atomics on both sides make missing both impossible.
	m.mgrParked.Store(1)
	defer m.mgrParked.Store(0)
	if m.done.Load() || m.mgrEpoch.v.Load() != epoch {
		return false
	}
	if m.met != nil {
		m.met.mgrParks.Inc()
	}
	// Reuse one timer across parks: a machine that parks thousands of times
	// per second would otherwise allocate a fresh runtime timer each park.
	// The timer never fires outside this function (we drain or consume the
	// expiry before returning), so Reset is always safe.
	if m.mgrTimer == nil {
		m.mgrTimer = time.NewTimer(timeout)
	} else {
		m.mgrTimer.Reset(timeout)
	}
	select {
	case <-m.mgrWake:
		if !m.mgrTimer.Stop() {
			// Timer fired between the wake and the Stop; drain the expiry so
			// the next park's select cannot observe a stale tick.
			select {
			case <-m.mgrTimer.C:
			default:
			}
		}
		return false
	case <-m.mgrTimer.C:
		return true
	}
}

// mgrParkCeil caps the manager's escalating park timeout: long enough to
// make a fully parked manager's background wake-ups negligible, short
// enough that deadlock detection and the watchdog stay responsive.
const mgrParkCeil = 10 * time.Millisecond

// nextParkTimeout escalates the manager's park timeout from 100µs toward
// the ceiling; productive rounds reset it.
func nextParkTimeout(d *time.Duration) time.Duration {
	switch {
	case *d == 0:
		*d = 100 * time.Microsecond
	case *d < mgrParkCeil:
		if *d *= 2; *d > mgrParkCeil {
			*d = mgrParkCeil
		}
	}
	return *d
}

// managerLoop is the simulation manager thread (§2.1): it consolidates the
// OutQs into the GQ, advances the global time, makes requests globally
// visible according to the scheme, and slides every core's window.
//
// Its per-round cost is proportional to activity, not core count: the
// global-time candidate is the min-tree root (O(1); cores pay O(log N) on
// publication), the drain touches only OutQs with new requests (the dirty
// set), replies are pushed with one coalesced notify per core, and a
// quiescent machine parks the manager on its wake channel (timed, so the
// watchdog and deadlock detection never depend on the hot loop).
func (m *Machine) managerLoop(s Scheme) {
	conservative := s.Conservative()
	var tracedLocals []int64
	idleRounds := 0
	prodStreak := 0
	quiet := 0
	parkT := time.Duration(0)
	lastChange := time.Now()
	lastGlobal := int64(-1)
	lastBarrier := int64(0)
	ad := adaptState{window: s.Window}
	mw := m.mgrTW
	measure := m.met != nil
	lastWindow := ad.window
	fi := newInjected(m.fiMgr)
	for !m.done.Load() {
		var t0 time.Time
		if measure {
			t0 = time.Now()
		}
		ps := mw.Begin()
		evBefore := m.evProcessed
		// The activity epoch is read first: any bump after this point keeps
		// the manager from parking at the end of an idle round, so no
		// activity between the reads below and the idle decision is lost.
		epoch := m.mgrEpoch.v.Load()
		// Snapshot the global-time candidate BEFORE draining: every event
		// with a timestamp below this minimum was pushed before its core's
		// clock passed it — the push precedes the core's leaf update in the
		// total order of atomic operations, which precedes this root read —
		// so the drain below is guaranteed to contain it. Draining first
		// would let cores advance between the drain and the minimum,
		// overstating the bound past events still sitting in their OutQs.
		g := m.globalMin()
		if measure {
			// Straggler attribution: charge the round to the core whose
			// leaf holds the min-tree root (latency.go).
			m.noteStraggler()
		}
		if fi != nil {
			applyPanicFaults(fi, g, "manager")
		}
		moved := m.drainDirtyOutQs()
		if g >= m.cfg.MaxCycles {
			m.aborted = true
			m.done.Store(true)
			break
		}

		var processed bool
		m.beginNotifyBatch()
		switch {
		case s.Kind == Adaptive:
			processed = m.processAllCounting(&ad)
			ad.adapt(g)
			if ad.window != lastWindow {
				lastWindow = ad.window
				mw.Count(trace.KWindow, ad.window)
				mw.Instant(trace.KPhase, ad.window)
				if measure {
					m.met.adaptResizes.Inc()
				}
			}
		case s.Kind == Quantum:
			// Requests become visible only at the barrier (§3.1): when
			// every thread has finished the quantum. The barrier is the
			// last quantum boundary at or below the global time — computed
			// by rounding down, as the sharded manager always did, never by
			// testing g%Window == 0: batched stepping can move the global
			// time across a boundary without ever landing on it, and the
			// equality test would skip that barrier outright (see
			// TestQuantumBarrierCrossedByJump).
			if allowed := quantumBarrier(g, s.Window); allowed > 0 {
				if allowed > lastBarrier {
					lastBarrier = allowed
					mw.Instant(trace.KBarrier, allowed)
					if measure {
						m.met.barriers.Inc()
					}
				}
				processed = m.processConservative(allowed)
				m.noteProcBound(allowed)
			}
		case conservative:
			processed = m.processConservative(g)
			m.noteProcBound(g)
		default:
			processed = m.processAll()
		}
		m.flushNotifyBatch()
		if processed {
			mw.Span(trace.KProcess, ps, m.evProcessed-evBefore)
			mw.Count(trace.KQDepth, int64(m.gq.Len()))
			if measure {
				m.met.gqDepth.Observe(int64(m.gq.Len()))
			}
		}
		if m.introOn {
			// Mirror the manager-owned GQ depth for the live /slack view.
			m.liveGQ.Store(int64(m.gq.Len()))
		}

		// Publish the new global time only after this pass's replies are
		// pushed: a core reading global = g may then rely on every request
		// stamped below g having been answered, which makes global +
		// critical latency a safe fast-forward horizon (see coreLoop).
		if g > m.global.Load() {
			m.global.Store(g)
			mw.Count(trace.KGlobal, g)
			if measure {
				m.met.globalAdv.Inc()
			}
		}

		changed := m.updateWindows(s, g, &ad)
		if changed && measure {
			m.met.windowSlides.Inc()
		}

		// Certain-deadlock detection: when every live thread is blocked in
		// the kernel, idle cores can keep the global time advancing, so the
		// host-time watchdog below never fires — the run would crawl to
		// MaxCycles. After a run of event-free rounds, consult the kernel
		// and fail immediately with the same forensic report.
		if moved || processed {
			quiet = 0
		} else if quiet++; quiet&511 == 0 && m.detectDeadlock() {
			m.aborted = true
			m.setFault(&StallError{Deadlock: true, Report: m.snapshot(true, 0)})
			break
		}

		if m.trace != nil && (changed || processed) {
			if tracedLocals == nil {
				tracedLocals = make([]int64, len(m.local))
			}
			for i := range m.local {
				tracedLocals[i] = m.local[i].v.Load()
			}
			m.trace(g, tracedLocals)
		}

		if moved || processed || changed || g != lastGlobal {
			// The watchdog stamp is only consulted after the machine goes
			// idle, so during a hot productive streak it is refreshed 1-in-32
			// (time.Now is ~3% of manager CPU otherwise). The idle→productive
			// transition always stamps, so a workload that is productive only
			// rarely never accumulates false stall time.
			if idleRounds != 0 || prodStreak&31 == 0 {
				lastChange = time.Now()
			}
			prodStreak++
			idleRounds = 0
			parkT = 0
			lastGlobal = g
			if measure {
				m.mgrBusyNS += time.Since(t0).Nanoseconds()
			}
			continue
		}
		prodStreak = 0
		idleRounds++
		if idleRounds > 4 {
			// The round observed no activity and the epoch proves none
			// arrived since it started: spin briefly, then park until a core
			// publishes, pushes, or is granted. The park is timed (escalating
			// toward mgrParkCeil) so the health checks below still run when
			// no core will ever bump the epoch again — a stalled or
			// deadlocked workload is exactly that case, and the watchdog must
			// not depend on the manager hot-looping.
			if m.mgrIdleWait(epoch, nextParkTimeout(&parkT)) {
				if m.detectDeadlock() {
					m.aborted = true
					m.setFault(&StallError{Deadlock: true, Report: m.snapshot(true, 0)})
					break
				}
				if wait := time.Since(lastChange); wait > m.stallTimeout() {
					m.aborted = true
					m.setFault(&StallError{Wait: wait, Report: m.snapshot(true, wait)})
					break
				}
			}
		}
		if idleRounds&1023 == 0 && time.Since(lastChange) > m.stallTimeout() {
			// Watchdog: the simulated time has not moved for a long host
			// time — a deadlocked workload or a simulator bug. Capture the
			// forensic snapshot (this goroutine owns the kernel and GQ)
			// and surface a StallError rather than hang.
			wait := time.Since(lastChange)
			m.aborted = true
			m.setFault(&StallError{Wait: wait, Report: m.snapshot(true, wait)})
			break
		}
	}
	m.wakeAll()
}

// quantumBarrier returns the last quantum boundary at or below the global
// time g — the visibility point for the Quantum scheme. Rounding down (never
// testing g%window == 0) is the load-bearing part: batched stepping can move
// the global time across a boundary without landing on it, and an equality
// test would skip that barrier's processing entirely (a liveness bug when a
// request below the boundary is the only thing that can unblock a core).
func quantumBarrier(g, window int64) int64 {
	return g - g%window
}

func (m *Machine) stallTimeout() time.Duration {
	if m.cfg.StallTimeout > 0 {
		return m.cfg.StallTimeout
	}
	// Generous default: the watchdog exists for genuinely deadlocked
	// workloads, and must not fire on hosts slowed by load or the race
	// detector.
	return 60 * time.Second
}

// adaptState is the Adaptive scheme's controller: it measures processed
// events per simulated cycle over epochs of global-time progress and
// halves or doubles the window accordingly (within [1, ceiling]).
type adaptState struct {
	window     int64
	epochStart int64
	events     int64
}

// Adaptation thresholds: above high, synchronise tightly; below low, relax.
const (
	adaptEpoch    = 2048  // simulated cycles per adaptation decision
	adaptHighRate = 0.02  // events per cycle
	adaptLowRate  = 0.005 //
)

func (a *adaptState) adapt(g int64) {
	if g-a.epochStart < adaptEpoch {
		return
	}
	rate := float64(a.events) / float64(g-a.epochStart)
	switch {
	case rate > adaptHighRate && a.window > 1:
		a.window /= 2
		if a.window < 1 {
			a.window = 1
		}
	case rate < adaptLowRate:
		a.window *= 2
	}
	a.epochStart = g
	a.events = 0
}

// processAllCounting is processAll with event accounting for adaptation.
func (m *Machine) processAllCounting(ad *adaptState) bool {
	did := false
	for m.gq.Len() > 0 {
		ev := m.gq.Pop()
		m.processEvent(ev)
		ad.events++
		did = true
	}
	return did
}

// updateWindows recomputes every core's max local time for the scheme and
// wakes cores whose window moved.
func (m *Machine) updateWindows(s Scheme, g int64, ad *adaptState) bool {
	var target int64
	switch s.Kind {
	case Unbounded:
		return false // set once at start; never moves
	case Adaptive:
		w := ad.window
		if w > s.Window {
			w = s.Window
		}
		target = g + w + 1
	default:
		target = s.maxLocal(g)
	}
	if target < 0 { // overflow guard
		target = math.MaxInt64
	}
	changed := false
	for i := range m.maxLocal {
		if m.maxLocal[i].v.Load() < target {
			m.maxLocal[i].v.Store(target)
			changed = true
			// Signal under the park mutex so a core checking the condition
			// cannot miss the wakeup — but only when the core has actually
			// parked; a spinning core observes the new maxLocal directly.
			if m.parked[i].v.Load() != 0 {
				m.parkMu[i].Lock()
				m.parkCond[i].Signal()
				m.parkMu[i].Unlock()
			}
		}
	}
	return changed
}
