package core

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"slacksim/internal/asm"
	"slacksim/internal/faultinject"
	"slacksim/internal/remote"
	"slacksim/internal/workloads"
)

// remoteMachine builds a machine configured for the distributed backend,
// mirroring shardedMachine so the two drivers simulate the identical
// timing configuration.
func remoteMachine(t *testing.T, prog *asm.Program, w *workloads.Workload, cores, shards int) *Machine {
	t.Helper()
	cfg := smallConfig(cores, ModelOoO)
	cfg.MemSize = 64 << 20
	cfg.MaxCycles = 200_000_000
	cfg.RemoteShards = shards
	m, err := NewMachine(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w != nil {
		if err := w.Init(m.Image(), 1); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// startRemoteWorkers spawns nw worker sessions in-process over net.Pipe
// (which honors deadlines, so the wire paths are exercised end to end)
// and returns the parent-side transports plus a join that collects each
// session's exit error.
func startRemoteWorkers(nw int) ([]remote.Transport, func() []error) {
	transports := make([]remote.Transport, nw)
	errs := make(chan error, nw)
	for i := 0; i < nw; i++ {
		p, q := net.Pipe()
		transports[i] = p
		go func() { errs <- ServeRemoteShards(q) }()
	}
	join := func() []error {
		out := make([]error, 0, nw)
		for i := 0; i < nw; i++ {
			select {
			case e := <-errs:
				out = append(out, e)
			case <-time.After(20 * time.Second):
				out = append(out, fmt.Errorf("worker %d: join timeout", i))
			}
		}
		return out
	}
	return transports, join
}

// TestRemoteShardedSmoke is the short-mode determinism check: a remote
// run over one in-process worker must be bit-identical to the in-process
// sharded driver on the same configuration.
func TestRemoteShardedSmoke(t *testing.T) {
	prog, err := asm.Assemble(threadsProg, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := shardedMachine(t, prog, nil, 2, 2).RunParallel(SchemeCC)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	m := remoteMachine(t, prog, nil, 2, 2)
	transports, join := startRemoteWorkers(1)
	res, err := m.RunRemoteSharded(SchemeCC, transports)
	if err != nil {
		t.Fatal(err)
	}
	for _, werr := range join() {
		if werr != nil {
			t.Errorf("worker exit: %v", werr)
		}
	}
	assertRemoteExact(t, "CC/1worker", res, ref)
	if res.Wire == nil {
		t.Fatal("remote run has no wire stats")
	}
	if res.Wire.Parent.BatchesSent == 0 || res.Wire.Workers.BatchesSent == 0 {
		t.Errorf("wire stats empty: parent %+v workers %+v", res.Wire.Parent, res.Wire.Workers)
	}
	if n := settleGoroutines(before); n > before {
		t.Errorf("goroutine leak: %d before, %d after", before, n)
	}
}

// TestRemoteConservativeExact is the distributed analog of
// TestShardedConservativeExact: for every deterministic scheme and
// worker count, RunRemoteSharded must be bit-identical to the in-process
// sharded driver with ManagerShards = RemoteShards.
func TestRemoteConservativeExact(t *testing.T) {
	if testing.Short() {
		t.Skip("workload sweep")
	}
	w, err := workloads.Get("ocean")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(w.Source(1), asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const shards = 2
	for _, s := range []Scheme{SchemeCC, SchemeQ10, SchemeL10, SchemeS9x} {
		ref, err := shardedMachine(t, prog, w, 4, shards).RunParallel(s)
		if err != nil {
			t.Fatalf("%v: in-process reference: %v", s, err)
		}
		for _, nw := range []int{1, 2} {
			m := remoteMachine(t, prog, w, 4, shards)
			transports, join := startRemoteWorkers(nw)
			res, err := m.RunRemoteSharded(s, transports)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", s, nw, err)
			}
			for _, werr := range join() {
				if werr != nil {
					t.Errorf("%v workers=%d: worker exit: %v", s, nw, werr)
				}
			}
			if verr := w.Verify(m.Image(), res.Output, 1); verr != nil {
				t.Errorf("%v workers=%d: %v", s, nw, verr)
			}
			assertRemoteExact(t, fmt.Sprintf("%v/workers=%d", s, nw), res, ref)
		}
	}
}

// assertRemoteExact holds a remote result to the in-process sharded
// reference on every deterministic field — the bit-exactness guarantee
// of docs/distributed.md. (The L2 aggregate is excluded for the same
// reason TestShardedConservativeExact excludes it: post-done straggler
// events are finalized against the parent's local hierarchy instance.)
func assertRemoteExact(t *testing.T, name string, res, ref *Result) {
	t.Helper()
	if res.EndTime != ref.EndTime {
		t.Errorf("%s: end %d != in-process %d", name, res.EndTime, ref.EndTime)
	}
	if res.ExitCode != ref.ExitCode {
		t.Errorf("%s: exit %d != in-process %d", name, res.ExitCode, ref.ExitCode)
	}
	if res.Output != ref.Output {
		t.Errorf("%s: output %q != in-process %q", name, res.Output, ref.Output)
	}
	// Committed is deliberately not compared: a core commits a few more
	// instructions after the exit event before it observes done, and that
	// tail depends on host scheduling in both drivers — the in-process
	// exactness test (TestShardedConservativeExact) excludes it for the
	// same reason.
	if res.TimeWarps != ref.TimeWarps {
		t.Errorf("%s: time warps %d != in-process %d", name, res.TimeWarps, ref.TimeWarps)
	}
	if res.CoherenceWarps != ref.CoherenceWarps {
		t.Errorf("%s: coherence warps %d != in-process %d", name, res.CoherenceWarps, ref.CoherenceWarps)
	}
}

// runRemoteBounded drives a remote run that is expected to fail, bounding
// the wait so a containment bug surfaces as a test failure, not a hang.
func runRemoteBounded(t *testing.T, m *Machine, s Scheme, transports []remote.Transport, within time.Duration) error {
	t.Helper()
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := m.RunRemoteSharded(s, transports)
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		if o.err == nil {
			t.Fatal("run succeeded; expected a contained fault")
		}
		return o.err
	case <-time.After(within):
		t.Fatalf("run still blocked after %v; containment failed", within)
		return nil
	}
}

// wantWorkerSimError asserts the contained error names the worker's
// fault domain with one of the expected containment sites.
func wantWorkerSimError(t *testing.T, err error, ops ...string) *SimError {
	t.Helper()
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T (%v), want *SimError", err, err)
	}
	if se.Core > faultinject.Manager {
		t.Errorf("fault core = %d, want a worker fault id (<= %d)", se.Core, faultinject.Manager)
	}
	for _, op := range ops {
		if se.Op == op {
			return se
		}
	}
	t.Errorf("fault op = %q, want one of %v (detail: %s)", se.Op, ops, se.Detail)
	return se
}

// TestRemoteWorkerDiesMidRun: a worker whose connection drops right
// after the handshake — with no Redial hook configured — must degrade,
// not die: the supervisor abandons the worker, its shards migrate into
// the parent's in-process path, and the run completes bit-exact with the
// in-process sharded reference.
func TestRemoteWorkerDiesMidRun(t *testing.T) {
	refCfg := smallConfig(2, ModelOoO)
	refCfg.ManagerShards = 2
	refM, err := NewMachine(mustAssemble(t, threadsProg), refCfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refM.RunParallel(SchemeCC)
	if err != nil {
		t.Fatalf("in-process reference: %v", err)
	}

	before := runtime.NumGoroutine()
	m := mustRemoteSmall(t, 2)
	m.cfg.StallTimeout = 5 * time.Second
	p, q := net.Pipe()
	go func() {
		c := remote.NewConn(q)
		if _, err := c.AcceptHello(time.Now().Add(10 * time.Second)); err != nil {
			return
		}
		q.Close() // killed immediately after joining the run
	}()
	res, err := m.RunRemoteSharded(SchemeCC, []remote.Transport{p})
	if err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	rec := res.Recovery
	if rec == nil {
		t.Fatal("remote run carries no recovery stats")
	}
	if rec.AbandonedWorkers != 1 {
		t.Errorf("abandoned workers = %d, want 1", rec.AbandonedWorkers)
	}
	if rec.MigratedShards != 2 {
		t.Errorf("migrated shards = %d, want 2", rec.MigratedShards)
	}
	if rec.Reconnects != 0 {
		t.Errorf("reconnects = %d with no Redial hook", rec.Reconnects)
	}
	assertRemoteExact(t, "degraded/CC", res, ref)
	if n := settleGoroutines(before); n > before {
		t.Errorf("goroutine leak: %d before, %d after", before, n)
	}
}

// TestRemoteWorkerNeverCompletesHandshake: a peer that accepts the
// connection but never answers the Hello must produce a handshake
// SimError within the (shortened) deadline.
func TestRemoteWorkerNeverCompletesHandshake(t *testing.T) {
	before := runtime.NumGoroutine()
	m := mustRemoteSmall(t, 2)
	m.cfg.StallTimeout = 500 * time.Millisecond
	p, q := net.Pipe()
	go io.Copy(io.Discard, q) // reads the hello, never replies
	start := time.Now()
	_, err := m.RunRemoteSharded(SchemeCC, []remote.Transport{p})
	if err == nil {
		t.Fatal("run succeeded against a silent worker")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("handshake failure took %v; deadline not applied", elapsed)
	}
	wantWorkerSimError(t, err, "remote-handshake")
	q.Close()
	if n := settleGoroutines(before); n > before {
		t.Errorf("goroutine leak: %d before, %d after", before, n)
	}
}

// TestRemoteWorkerVersionMismatch: a worker that answers with a foreign
// protocol version must be refused with a structured handshake error
// naming both versions.
func TestRemoteWorkerVersionMismatch(t *testing.T) {
	m := mustRemoteSmall(t, 2)
	m.cfg.StallTimeout = 5 * time.Second
	p, q := net.Pipe()
	go func() {
		c := remote.NewConn(q)
		c.SetReadDeadline(time.Now().Add(10 * time.Second))
		if _, err := c.ReadFrame(); err != nil {
			return
		}
		payload := binary.LittleEndian.AppendUint16(nil, remote.Version+1)
		payload = append(payload, []byte(`{"worker_id":0}`)...)
		c.WriteFrame(remote.FWelcome, payload)
		c.Flush()
		io.Copy(io.Discard, q) // drain until the parent closes
	}()
	_, err := m.RunRemoteSharded(SchemeCC, []remote.Transport{p})
	if err == nil {
		t.Fatal("run accepted a version-mismatched worker")
	}
	se := wantWorkerSimError(t, err, "remote-handshake")
	if !strings.Contains(se.Detail, "version mismatch") {
		t.Errorf("detail %q does not name the version mismatch", se.Detail)
	}
}

// TestRemoteWorkerErrorFrame: a worker-side failure serialized as an
// FError frame (the cross-process analog of a contained panic) must
// surface as the run's error with its forensics — detail and stack —
// intact.
func TestRemoteWorkerErrorFrame(t *testing.T) {
	before := runtime.NumGoroutine()
	m := mustRemoteSmall(t, 2)
	m.cfg.StallTimeout = 5 * time.Second
	p, q := net.Pipe()
	go func() {
		c := remote.NewConn(q)
		if _, err := c.AcceptHello(time.Now().Add(10 * time.Second)); err != nil {
			return
		}
		body, _ := json.Marshal(&SimError{
			Core:   faultinject.ShardWorker(0),
			Op:     "remote-worker",
			Detail: "injected worker panic",
			Stack:  "goroutine 1 [running]:\nworker.go:1",
		})
		c.WriteFrame(remote.FError, body)
		c.Flush()
		io.Copy(io.Discard, q)
	}()
	err := runRemoteBounded(t, m, SchemeCC, []remote.Transport{p}, 30*time.Second)
	se := wantWorkerSimError(t, err, "remote-worker")
	if se.Detail != "injected worker panic" {
		t.Errorf("detail = %q", se.Detail)
	}
	if se.Stack == "" {
		t.Error("worker stack lost in transit")
	}
	if n := settleGoroutines(before); n > before {
		t.Errorf("goroutine leak: %d before, %d after", before, n)
	}
}

// TestRemoteWorkerPanicForensics drives a real panic through the worker
// loop: a corrupt batch (foreign shard) makes the session fail, and a
// genuine panic inside serve() must come back as FError. Here we panic
// the cache model by feeding the worker loop directly.
func TestRemoteConfigValidation(t *testing.T) {
	cfg := smallConfig(2, ModelOoO)
	cfg.RemoteShards = 2
	cfg.ManagerShards = 2
	if _, err := NewMachine(mustAssemble(t, sumProg), cfg); err == nil {
		t.Error("RemoteShards + ManagerShards accepted")
	}
	cfg = smallConfig(2, ModelOoO)
	cfg.RemoteShards = 3 // does not divide the default bank count
	if _, err := NewMachine(mustAssemble(t, sumProg), cfg); err == nil {
		t.Error("non-divisible RemoteShards accepted")
	}
	// A machine without RemoteShards must refuse the remote driver.
	m := mustMachine(t, sumProg, smallConfig(2, ModelOoO))
	if _, err := m.RunRemoteSharded(SchemeCC, nil); err == nil {
		t.Error("RunRemoteSharded ran without RemoteShards")
	}
}

// mustRemoteSmall builds a small 2-core machine with the given remote
// shard count (no workload image).
func mustRemoteSmall(t *testing.T, shards int) *Machine {
	t.Helper()
	cfg := smallConfig(2, ModelOoO)
	cfg.RemoteShards = shards
	m, err := NewMachine(mustAssemble(t, threadsProg), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestRemoteInterrupt: Interrupt() from a foreign goroutine (the signal
// path) must unwind a remote run through the normal join — aborted
// result, no error, workers finished — rather than deadlocking it.
func TestRemoteInterrupt(t *testing.T) {
	before := runtime.NumGoroutine()
	w, err := workloads.Get("ocean")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(w.Source(1), asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := remoteMachine(t, prog, w, 2, 2)
	transports, join := startRemoteWorkers(1)
	go func() {
		time.Sleep(50 * time.Millisecond)
		m.Interrupt()
	}()
	res, err := m.RunRemoteSharded(SchemeCC, transports)
	if err != nil {
		t.Fatalf("interrupted run errored: %v", err)
	}
	if !res.Aborted {
		t.Error("interrupted run not marked aborted")
	}
	for _, werr := range join() {
		if werr != nil {
			t.Errorf("worker exit: %v", werr)
		}
	}
	if n := settleGoroutines(before); n > before {
		t.Errorf("goroutine leak: %d before, %d after", before, n)
	}
}
