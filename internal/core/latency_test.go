package core

import (
	"fmt"
	"testing"

	"slacksim/internal/metrics"
)

// Tests for memory-event latency attribution: every request stamped at
// Env.Send must be observed at delivery, under every driver, in both
// simulated cycles and host nanoseconds — and the parallel drivers must
// attribute manager rounds to the straggler core holding the min-tree.

func runWithMetrics(t *testing.T, driver string) (*metrics.Registry, *Result, int) {
	t.Helper()
	cfg := smallConfig(2, ModelOoO)
	if driver == "sharded" {
		cfg.ManagerShards = 2
	}
	m := mustMachine(t, memProg, cfg)
	reg := metrics.NewRegistry()
	m.EnableMetrics(reg)
	var res *Result
	var err error
	if driver == "serial" {
		res, err = m.RunSerial()
	} else {
		res, err = m.RunParallel(SchemeS9)
	}
	if err != nil {
		t.Fatalf("%s: %v", driver, err)
	}
	return reg, res, cfg.NumCores
}

func TestMemLatencyAttribution(t *testing.T) {
	for _, driver := range []string{"serial", "parallel", "sharded"} {
		t.Run(driver, func(t *testing.T) {
			reg, res, n := runWithMetrics(t, driver)

			cyc := reg.Histogram("engine.mem.lat_cycles")
			host := reg.Histogram("engine.mem.lat_host_ns")
			if cyc.Count() == 0 {
				t.Fatal("no simulated-latency observations")
			}
			// Every stamped request is observed on both clocks.
			if cyc.Count() != host.Count() {
				t.Errorf("cycles count %d != host-ns count %d", cyc.Count(), host.Count())
			}
			// A memory round trip is never free.
			if min := cyc.Snapshot().Quantile(0.01); min <= 0 {
				t.Errorf("p1 simulated latency %d, want > 0", min)
			}

			// The per-core histograms partition the machine-wide one.
			var perCore int64
			for i := 0; i < n; i++ {
				perCore += reg.Histogram(fmt.Sprintf("engine.c%d.mem.lat_cycles", i)).Count()
			}
			if perCore != cyc.Count() {
				t.Errorf("per-core counts sum to %d, machine-wide %d", perCore, cyc.Count())
			}

			// Straggler attribution rides on every result, indexed by core;
			// only the parallel managers charge rounds.
			if len(res.Stragglers) != n {
				t.Fatalf("len(Stragglers) = %d, want %d", len(res.Stragglers), n)
			}
			var held int64
			for i, s := range res.Stragglers {
				if s.Core != i {
					t.Errorf("Stragglers[%d].Core = %d", i, s.Core)
				}
				held += s.HeldRounds
			}
			if driver == "serial" {
				if held != 0 {
					t.Errorf("serial driver charged %d straggler rounds", held)
				}
			} else if held == 0 {
				t.Error("parallel driver charged no straggler rounds")
			}
		})
	}
}

// TestLatencyStampsDisabled: with metrics off, events carry no stamps —
// the hot path must not pay for attribution nobody asked for.
func TestLatencyStampsDisabled(t *testing.T) {
	m := mustMachine(t, memProg, smallConfig(2, ModelOoO))
	res, err := m.RunParallel(SchemeS9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stragglers != nil {
		t.Errorf("Stragglers populated without metrics: %+v", res.Stragglers)
	}
}
