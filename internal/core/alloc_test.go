package core

import (
	"fmt"
	"testing"
)

// allocLoopProg runs long enough (~400k committed instructions) that any
// per-instruction allocation in the engine or core models dominates the
// run's fixed setup allocations by orders of magnitude.
const allocLoopProg = `
main:
    li   r8, 0
    li   r9, 100000
    li   r10, 0
loop:
    add  r10, r10, r8
    addi r8, r8, 1
    blt  r8, r9, loop
    li   a0, 0
    syscall 0
`

// TestDriverAllocsBounded is the driver-level zero-allocation regression
// gate: with metrics disabled, a run's host heap allocations
// (runtime.MemStats delta, captured by every driver entry point) must stay
// a small per-run constant, not scale with committed instructions. The
// bound is deliberately loose — a fixed setup budget plus a fraction of an
// alloc per thousand instructions — because goroutine scheduling and GC
// internals allocate a little nondeterministically; a per-instruction
// allocation regression blows through it by 100x or more.
func TestDriverAllocsBounded(t *testing.T) {
	for _, model := range []CoreModel{ModelInOrder, ModelOoO} {
		for _, parallel := range []bool{false, true} {
			name := fmt.Sprintf("model%d/parallel=%v", model, parallel)
			t.Run(name, func(t *testing.T) {
				m := mustMachine(t, allocLoopProg, smallConfig(1, model))
				var res *Result
				var err error
				if parallel {
					res, err = m.RunParallel(SchemeS9)
				} else {
					res, err = m.RunSerial()
				}
				if err != nil {
					t.Fatal(err)
				}
				if res.Aborted {
					t.Fatalf("aborted after %d cycles", res.EndTime)
				}
				if res.Committed < 300_000 {
					t.Fatalf("committed = %d, want a long run", res.Committed)
				}
				// Fixed budget: setup, goroutines, parks, kernel, result
				// assembly. Per-kinstr budget: < 1 alloc per 1000 committed
				// instructions. A single alloc on the per-instruction path
				// would add ~400k allocations here.
				budget := uint64(20_000) + uint64(res.Committed/1000)
				if res.HostAllocs > budget {
					t.Errorf("HostAllocs = %d over %d instrs (%.2f/kinstr), budget %d",
						res.HostAllocs, res.Committed, res.AllocsPerKInstr(), budget)
				}
				t.Logf("HostAllocs=%d (%.3f/kinstr) GCs=%d pause=%v",
					res.HostAllocs, res.AllocsPerKInstr(), res.HostGCs, res.HostGCPauses)
			})
		}
	}
}
