package core

import (
	"fmt"
	"testing"

	"slacksim/internal/asm"
	"slacksim/internal/cache"
	"slacksim/internal/cpu"
)

const sumProg = `
# Sum 1..100, print the result, exit with code 7.
main:
    li   r8, 0
    li   r9, 1
    li   r10, 101
loop:
    add  r8, r8, r9
    addi r9, r9, 1
    bne  r9, r10, loop
    mv   a0, r8
    syscall 12          # print_int
    li   a0, 7
    syscall 0           # exit
`

const memProg = `
# Write i*i into an array, read it back, print the sum of squares 0..9.
main:
    la   r8, arr
    li   r9, 0
    li   r10, 10
w:
    mul  r11, r9, r9
    sll  r12, r9, r13   # r13 = 0, so r12 = r9
    slli r12, r9, 3
    add  r12, r12, r8
    sd   r11, 0(r12)
    addi r9, r9, 1
    bne  r9, r10, w
    li   r9, 0
    li   r14, 0
r:
    slli r12, r9, 3
    add  r12, r12, r8
    ld   r11, 0(r12)
    add  r14, r14, r11
    addi r9, r9, 1
    bne  r9, r10, r
    mv   a0, r14
    syscall 12
    li   a0, 0
    syscall 0
.data
.align 8
arr: .space 128
`

func smallConfig(n int, model CoreModel) Config {
	cfg := Config{
		NumCores:  n,
		Model:     model,
		CPU:       cpu.DefaultConfig(),
		Cache:     cache.DefaultConfig(n),
		MemSize:   16 << 20,
		StackSize: 64 << 10,
		MaxCycles: 5_000_000,
	}
	return cfg
}

func mustMachine(t *testing.T, src string, cfg Config) *Machine {
	t.Helper()
	prog, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m, err := NewMachine(prog, cfg)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	return m
}

// runSerial drives the serial reference, failing the test on a contained
// fault.
func runSerial(t testing.TB, m *Machine) *Result {
	t.Helper()
	res, err := m.RunSerial()
	if err != nil {
		t.Fatalf("RunSerial: %v", err)
	}
	return res
}

func TestSerialSumBothModels(t *testing.T) {
	for _, model := range []CoreModel{ModelInOrder, ModelOoO} {
		model := model
		t.Run(fmt.Sprintf("model%d", model), func(t *testing.T) {
			m := mustMachine(t, sumProg, smallConfig(1, model))
			res := runSerial(t, m)
			if res.Aborted {
				t.Fatalf("aborted after %d cycles", res.EndTime)
			}
			if res.Output != "5050" {
				t.Fatalf("output = %q, want 5050", res.Output)
			}
			if res.ExitCode != 7 {
				t.Fatalf("exit code = %d, want 7", res.ExitCode)
			}
			if res.EndTime <= 0 {
				t.Fatalf("end time = %d", res.EndTime)
			}
		})
	}
}

func TestSerialMemProgram(t *testing.T) {
	for _, model := range []CoreModel{ModelInOrder, ModelOoO} {
		m := mustMachine(t, memProg, smallConfig(1, model))
		res := runSerial(t, m)
		if res.Aborted {
			t.Fatalf("model %d: aborted", model)
		}
		if res.Output != "285" {
			t.Fatalf("model %d: output = %q, want 285", model, res.Output)
		}
	}
}

func TestParallelCCMatchesSerial(t *testing.T) {
	serial := mustMachine(t, sumProg, smallConfig(2, ModelOoO))
	sres := runSerial(t, serial)

	par := mustMachine(t, sumProg, smallConfig(2, ModelOoO))
	pres, err := par.RunParallel(SchemeCC)
	if err != nil {
		t.Fatal(err)
	}
	if pres.Output != sres.Output {
		t.Fatalf("parallel output %q != serial %q", pres.Output, sres.Output)
	}
	if pres.EndTime != sres.EndTime {
		t.Fatalf("parallel CC end time %d != serial %d", pres.EndTime, sres.EndTime)
	}
}

func TestParallelSchemesRunSum(t *testing.T) {
	for _, s := range []Scheme{SchemeQ10, SchemeL10, SchemeS9, SchemeS9x, SchemeS100, SchemeSU} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			m := mustMachine(t, sumProg, smallConfig(2, ModelOoO))
			res, err := m.RunParallel(s)
			if err != nil {
				t.Fatal(err)
			}
			if res.Aborted {
				t.Fatalf("aborted")
			}
			if res.Output != "5050" {
				t.Fatalf("output = %q", res.Output)
			}
		})
	}
}
