package core

import (
	"testing"

	"slacksim/internal/asm"
	"slacksim/internal/workloads"
)

func shardedMachine(t *testing.T, prog *asm.Program, w *workloads.Workload, cores, shards int) *Machine {
	t.Helper()
	cfg := smallConfig(cores, ModelOoO)
	cfg.MemSize = 64 << 20
	cfg.MaxCycles = 200_000_000
	cfg.ManagerShards = shards
	m, err := NewMachine(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if w != nil {
		if err := w.Init(m.Image(), 1); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// TestShardedConservativeExact: with S manager shards the conservative
// schemes must still be bit-identical to the serial reference built from
// the same (S-channel) cache configuration — the §2.2 split may not change
// any simulated outcome.
func TestShardedConservativeExact(t *testing.T) {
	if testing.Short() {
		t.Skip("workload sweep")
	}
	w, err := workloads.Get("ocean")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(w.Source(1), asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4} {
		shards := shards
		ref := runSerial(t, shardedMachine(t, prog, w, 4, shards))
		if ref.Aborted {
			t.Fatal("serial reference aborted")
		}
		for _, s := range []Scheme{SchemeCC, SchemeQ10, SchemeS9x} {
			m := shardedMachine(t, prog, w, 4, shards)
			res, err := m.RunParallel(s)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Verify(m.Image(), res.Output, 1); err != nil {
				t.Fatalf("shards=%d %v: %v", shards, s, err)
			}
			if res.EndTime != ref.EndTime {
				t.Errorf("shards=%d %v: end %d != serial %d", shards, s, res.EndTime, ref.EndTime)
			}
			if res.TimeWarps != 0 || res.CoherenceWarps != 0 {
				t.Errorf("shards=%d %v: warps %d/%d", shards, s, res.TimeWarps, res.CoherenceWarps)
			}
		}
	}
}

// TestShardedOptimistic: unbounded slack with shards still executes the
// workload correctly with bounded distortion.
func TestShardedOptimistic(t *testing.T) {
	if testing.Short() {
		t.Skip("workload sweep")
	}
	w, err := workloads.Get("radix")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(w.Source(1), asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref := runSerial(t, shardedMachine(t, prog, w, 4, 2))
	m := shardedMachine(t, prog, w, 4, 2)
	res, err := m.RunParallel(SchemeSU)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(m.Image(), res.Output, 1); err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.EndTime) / float64(ref.EndTime)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("SU sharded ratio %.2f", ratio)
	}
	if res.L2Stats.Accesses == 0 {
		t.Fatal("aggregated shard stats empty")
	}
}

// TestShardedThreads runs the lock/barrier/join program under shards.
func TestShardedThreads(t *testing.T) {
	prog, err := asm.Assemble(threadsProg, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref := runSerial(t, shardedMachine(t, prog, nil, 4, 2))
	for _, s := range []Scheme{SchemeCC, SchemeS9x, SchemeS9, SchemeSU} {
		m := shardedMachine(t, prog, nil, 4, 2)
		res, err := m.RunParallel(s)
		if err != nil {
			t.Fatal(err)
		}
		if res.Output != expectTotal(4) {
			t.Fatalf("%v: output %q", s, res.Output)
		}
		if s.Conservative() && res.EndTime != ref.EndTime {
			t.Fatalf("%v: end %d != serial %d", s, res.EndTime, ref.EndTime)
		}
	}
}

func TestShardConfigValidation(t *testing.T) {
	prog, err := asm.Assemble(sumProg, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(2, ModelOoO)
	cfg.ManagerShards = 3 // does not divide 8 banks
	if _, err := NewMachine(prog, cfg); err == nil {
		t.Error("3 shards over 8 banks accepted")
	}
	cfg = smallConfig(2, ModelOoO)
	cfg.ManagerShards = 2
	cfg.Cache.DRAMChannels = 4
	if _, err := NewMachine(prog, cfg); err == nil {
		t.Error("mismatched DRAM channels accepted")
	}
}
