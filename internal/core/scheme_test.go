package core

import (
	"math"
	"testing"
	"testing/quick"

	"slacksim/internal/event"
)

func TestSchemeStrings(t *testing.T) {
	for s, want := range map[Scheme]string{
		SchemeCC:   "CC",
		SchemeQ10:  "Q10",
		SchemeL10:  "L10",
		SchemeS9:   "S9",
		SchemeS9x:  "S9*",
		SchemeS100: "S100",
		SchemeSU:   "SU",
	} {
		if s.String() != want {
			t.Errorf("%v != %s", s, want)
		}
	}
}

func TestParseScheme(t *testing.T) {
	for in, want := range map[string]Scheme{
		"CC": SchemeCC, "cc": SchemeCC,
		"Q10": SchemeQ10, "q10": SchemeQ10,
		"L10": SchemeL10,
		"S9":  SchemeS9, "s9*": SchemeS9x,
		"S100": SchemeS100,
		"SU":   SchemeSU, "su": SchemeSU,
		" S42 ": {Kind: Bounded, Window: 42},
	} {
		got, err := ParseScheme(in)
		if err != nil || got != want {
			t.Errorf("ParseScheme(%q) = %v, %v", in, got, err)
		}
	}
	for _, bad := range []string{"", "X9", "Q", "Q0", "L-1", "S9**", "Q10*", "carrots"} {
		if _, err := ParseScheme(bad); err == nil {
			t.Errorf("ParseScheme(%q) accepted", bad)
		}
	}
}

func TestConservativeClassification(t *testing.T) {
	for s, want := range map[Scheme]bool{
		SchemeCC: true, SchemeQ10: true, SchemeL10: true, SchemeS9x: true,
		SchemeS9: false, SchemeS100: false, SchemeSU: false,
	} {
		if s.Conservative() != want {
			t.Errorf("%v conservative = %v", s, !want)
		}
	}
}

func TestMaxLocalRules(t *testing.T) {
	if got := SchemeCC.maxLocal(7); got != 8 {
		t.Errorf("CC window = %d", got)
	}
	// Quantum: barrier at the next multiple.
	if got := SchemeQ10.maxLocal(0); got != 10 {
		t.Errorf("Q10 at 0 = %d", got)
	}
	if got := SchemeQ10.maxLocal(9); got != 10 {
		t.Errorf("Q10 at 9 = %d", got)
	}
	if got := SchemeQ10.maxLocal(10); got != 20 {
		t.Errorf("Q10 at 10 = %d", got)
	}
	// Bounded: sliding window of Window cycles.
	if got := SchemeS9.maxLocal(100); got != 110 {
		t.Errorf("S9 at 100 = %d", got)
	}
	// Lookahead anchors at the global time (the sound anchor; see
	// Scheme.maxLocal).
	if got := SchemeL10.maxLocal(100); got != 110 {
		t.Errorf("L10 = %d", got)
	}
	if got := SchemeSU.maxLocal(5); got != math.MaxInt64 {
		t.Errorf("SU window = %d", got)
	}
}

// TestMaxLocalMonotone: every scheme's window edge is nondecreasing in the
// global time — the invariant that keeps cores from being pulled backward.
func TestMaxLocalMonotone(t *testing.T) {
	schemes := []Scheme{SchemeCC, SchemeQ10, SchemeL10, SchemeS9, SchemeS9x, SchemeS100}
	f := func(g1raw, g2raw uint32) bool {
		g1, g2 := int64(g1raw%1_000_000), int64(g2raw%1_000_000)
		if g1 > g2 {
			g1, g2 = g2, g1
		}
		for _, s := range schemes {
			if s.maxLocal(g1) > s.maxLocal(g2) {
				return false
			}
			if s.maxLocal(g1) <= g1 {
				return false // window must always admit at least one cycle
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestSchemeValidate(t *testing.T) {
	bad := []Scheme{
		{Kind: Quantum, Window: 0},
		{Kind: Lookahead, Window: -1},
		{Kind: Bounded, Window: -1},
		{Kind: SchemeKind(99)},
	}
	for _, s := range bad {
		if s.Validate() == nil {
			t.Errorf("%+v validated", s)
		}
	}
	good := []Scheme{SchemeCC, SchemeSU, {Kind: Bounded, Window: 0}, {Kind: Quantum, Window: 1}}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("%v rejected: %v", s, err)
		}
	}
}

// TestEvHeapOrdering: the GQ pops in (Time, Core, Seq) order for arbitrary
// push sequences.
func TestEvHeapOrdering(t *testing.T) {
	f := func(raw []uint32) bool {
		var h evHeap
		for i, r := range raw {
			h.Push(event.Event{
				Time: int64(r % 64),
				Core: int32(r / 64 % 8),
				Seq:  int64(i),
			})
		}
		var prev *event.Event
		for h.Len() > 0 {
			ev := h.Pop()
			if prev != nil && event.Less(&ev, prev) {
				return false
			}
			cp := ev
			prev = &cp
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEvHeapPeek(t *testing.T) {
	var h evHeap
	if h.Peek() != nil {
		t.Fatal("peek on empty heap")
	}
	h.Push(event.Event{Time: 5})
	h.Push(event.Event{Time: 2})
	if h.Peek().Time != 2 {
		t.Fatalf("peek = %d", h.Peek().Time)
	}
}
