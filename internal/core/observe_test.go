package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"slacksim/internal/asm"
	"slacksim/internal/metrics"
	"slacksim/internal/trace"
)

func mustAssemble(t *testing.T, src string) *asm.Program {
	t.Helper()
	prog, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func kindRecs(c *trace.Collector, writer string, k trace.Kind) int {
	n := 0
	for _, w := range c.Writers() {
		if !strings.HasPrefix(w.Name(), writer) {
			continue
		}
		for _, r := range w.Records() {
			if r.Kind == k {
				n++
			}
		}
	}
	return n
}

// TestObservabilityParallel runs the threaded program under bounded slack
// with tracing and metrics attached and checks every observable the
// subsystem promises: slack samples, wait spans, global advances, the
// sync-overhead breakdown, the metric registry, and both exporters.
func TestObservabilityParallel(t *testing.T) {
	m := mustMachine(t, threadsProg, smallConfig(4, ModelOoO))
	tc := trace.New()
	reg := metrics.NewRegistry()
	m.EnableTrace(tc)
	m.EnableMetrics(reg)
	res, err := m.RunParallel(SchemeS9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != expectTotal(4) {
		t.Fatalf("output %q", res.Output)
	}

	// Sync-overhead breakdown.
	if res.Metrics != reg {
		t.Error("Result.Metrics should be the attached registry")
	}
	if res.EventsProcessed == 0 {
		t.Error("EventsProcessed = 0")
	}
	if len(res.CoreBusy) != 4 || len(res.CoreWait) != 4 {
		t.Fatalf("breakdown lengths %d/%d, want 4/4", len(res.CoreBusy), len(res.CoreWait))
	}
	for i := range res.CoreBusy {
		if res.CoreBusy[i] <= 0 {
			t.Errorf("core %d: CoreBusy = %v", i, res.CoreBusy[i])
		}
		if res.CoreWait[i] < 0 || res.CoreWait[i] > res.CoreBusy[i] {
			t.Errorf("core %d: CoreWait %v outside [0, %v]", i, res.CoreWait[i], res.CoreBusy[i])
		}
	}
	if res.ManagerBusy <= 0 {
		t.Error("ManagerBusy not measured")
	}

	// Metrics registry contents.
	s := reg.Snapshot()
	for _, name := range []string{"engine.events.processed", "engine.global.advances", "engine.window.slides"} {
		if s.Counters[name] == 0 {
			t.Errorf("counter %s = 0", name)
		}
	}
	if s.Counters["cpu.total.committed"] == 0 {
		t.Error("cpu.total.committed = 0")
	}
	if s.Gauges["cache.l2.accesses"] == 0 {
		t.Error("cache.l2.accesses = 0")
	}
	if s.Histograms["engine.slack.sample"].Count == 0 {
		t.Error("no slack samples in metrics")
	}
	if s.Histograms["event.outq.depth"].Count == 0 {
		t.Error("no OutQ depth observations")
	}
	var dump bytes.Buffer
	if err := reg.Write(&dump); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dump.String(), "engine.slack.sample") {
		t.Error("registry dump missing slack histogram")
	}

	// Trace contents.
	if kindRecs(tc, "core", trace.KSlack) == 0 {
		t.Error("no per-core slack counter records")
	}
	if kindRecs(tc, "manager", trace.KGlobal) == 0 {
		t.Error("no manager global-time records")
	}
	if kindRecs(tc, "manager", trace.KProcess) == 0 {
		t.Error("no manager processing spans")
	}
	if kindRecs(tc, "core", trace.KWait) == 0 {
		t.Error("no core window-wait spans")
	}

	// Chrome export parses and contains the expected tracks.
	var out bytes.Buffer
	if err := tc.WriteChrome(&out); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(out.Bytes(), &evs); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	names := make(map[string]bool)
	for _, ev := range evs {
		if n, ok := ev["name"].(string); ok {
			names[n] = true
		}
	}
	for _, want := range []string{"slack core 0", "global manager", "window_wait"} {
		if !names[want] {
			t.Errorf("chrome export missing %q events", want)
		}
	}

	// ASCII timeline renders a row per core.
	var tl bytes.Buffer
	if err := tc.SlackTimeline(&tl, 60); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tl.String(), "core 0") || !strings.Contains(tl.String(), "core 3") {
		t.Errorf("timeline missing core rows:\n%s", tl.String())
	}
}

// TestObservabilityQuantum checks the barrier instrumentation.
func TestObservabilityQuantum(t *testing.T) {
	m := mustMachine(t, threadsProg, smallConfig(4, ModelOoO))
	tc := trace.New()
	reg := metrics.NewRegistry()
	m.EnableTrace(tc)
	m.EnableMetrics(reg)
	res, err := m.RunParallel(SchemeQ10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != expectTotal(4) {
		t.Fatalf("output %q", res.Output)
	}
	if got := reg.Counter("engine.quantum.barriers").Value(); got == 0 {
		t.Error("no quantum barriers counted")
	}
	if kindRecs(tc, "manager", trace.KBarrier) == 0 {
		t.Error("no barrier instants in the manager trace")
	}
}

// TestObservabilitySharded checks the shard-worker instrumentation.
func TestObservabilitySharded(t *testing.T) {
	m := shardedMachine(t, mustAssemble(t, threadsProg), nil, 4, 2)
	tc := trace.New()
	reg := metrics.NewRegistry()
	m.EnableTrace(tc)
	m.EnableMetrics(reg)
	res, err := m.RunParallel(SchemeS9x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != expectTotal(4) {
		t.Fatalf("output %q", res.Output)
	}
	if res.EventsProcessed == 0 {
		t.Error("EventsProcessed = 0 under shards")
	}
	if kindRecs(tc, "shard", trace.KProcess) == 0 {
		t.Error("no shard-worker processing spans")
	}
	if reg.Histogram("event.shardq.depth").Count() == 0 {
		t.Error("no shard queue depth observations")
	}
}

// TestObservabilitySerial checks the serial driver's samples.
func TestObservabilitySerial(t *testing.T) {
	m := mustMachine(t, threadsProg, smallConfig(4, ModelOoO))
	tc := trace.New()
	reg := metrics.NewRegistry()
	m.EnableTrace(tc)
	m.EnableMetrics(reg)
	res := runSerial(t, m)
	if res.Output != expectTotal(4) {
		t.Fatalf("output %q", res.Output)
	}
	if res.EventsProcessed == 0 {
		t.Error("EventsProcessed = 0")
	}
	if kindRecs(tc, "manager", trace.KGlobal) == 0 {
		t.Error("no global-time samples from the serial driver")
	}
	if reg.Counter("cpu.total.committed").Value() == 0 {
		t.Error("cpu stats not published")
	}
}

// TestObservabilityDisabled verifies a plain run records nothing.
func TestObservabilityDisabled(t *testing.T) {
	m := mustMachine(t, threadsProg, smallConfig(4, ModelOoO))
	res, err := m.RunParallel(SchemeS9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != expectTotal(4) {
		t.Fatalf("output %q", res.Output)
	}
	if res.Metrics != nil || res.CoreBusy != nil || res.CoreWait != nil ||
		res.EventsProcessed != 0 || res.ManagerBusy != 0 {
		t.Error("observability fields must stay zero when disabled")
	}
}
