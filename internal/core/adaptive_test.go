package core

import (
	"testing"

	"slacksim/internal/asm"
	"slacksim/internal/workloads"
)

// TestAdaptiveScheme runs a real workload under the adaptive scheme
// (DESIGN.md §7 extension) and checks correctness plus a bounded
// execution-time distortion between bounded-slack and unbounded behaviour.
func TestAdaptiveScheme(t *testing.T) {
	if testing.Short() {
		t.Skip("workload run")
	}
	w, err := workloads.Get("ocean")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(w.Source(1), asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *Machine {
		cfg := smallConfig(4, ModelOoO)
		cfg.MemSize = 64 << 20
		cfg.MaxCycles = 100_000_000
		m, err := NewMachine(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Init(m.Image(), 1); err != nil {
			t.Fatal(err)
		}
		return m
	}
	ref := runSerial(t, mk())
	m := mk()
	res, err := m.RunParallel(SchemeA1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatal("adaptive run aborted")
	}
	if err := w.Verify(m.Image(), res.Output, 1); err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.EndTime) / float64(ref.EndTime)
	t.Logf("adaptive: end=%d (serial %d, ratio %.3f) wall=%v warps=%d",
		res.EndTime, ref.EndTime, ratio, res.Wall, res.TimeWarps)
	if ratio < 0.8 || ratio > 1.5 {
		t.Fatalf("adaptive execution time ratio %.3f out of bounds", ratio)
	}
}

func TestAdaptiveParseAndValidate(t *testing.T) {
	s, err := ParseScheme("A1000")
	if err != nil || s != SchemeA1000 {
		t.Fatalf("ParseScheme(A1000) = %v, %v", s, err)
	}
	if s.Conservative() {
		t.Fatal("adaptive must not claim conservatism")
	}
	if s.String() != "A1000" {
		t.Fatalf("String = %q", s)
	}
	if (Scheme{Kind: Adaptive, Window: 0}).Validate() == nil {
		t.Fatal("A0 validated")
	}
}

func TestAdaptStateController(t *testing.T) {
	a := adaptState{window: 64}
	// High traffic: halve once the epoch elapses.
	a.events = int64(adaptEpoch) // rate 1.0 >> high
	a.adapt(adaptEpoch)
	if a.window != 32 {
		t.Fatalf("window after high-rate epoch = %d", a.window)
	}
	// Low traffic: double.
	a.events = 0
	a.adapt(2 * adaptEpoch)
	if a.window != 64 {
		t.Fatalf("window after low-rate epoch = %d", a.window)
	}
	// Mid traffic: hold.
	midRate := (adaptHighRate + adaptLowRate) / 2
	a.events = int64(midRate * adaptEpoch)
	a.adapt(3 * adaptEpoch)
	if a.window != 64 {
		t.Fatalf("window after mid-rate epoch = %d", a.window)
	}
	// Never below 1.
	a.window = 1
	a.events = int64(adaptEpoch)
	a.adapt(4 * adaptEpoch)
	if a.window != 1 {
		t.Fatalf("window floor broken: %d", a.window)
	}
}
