package core

import (
	"testing"

	"slacksim/internal/asm"
	"slacksim/internal/cache"
	"slacksim/internal/workloads"
)

// TestSnoopBusProtocol runs a workload with bus-based coherence timing
// (paper §2's alternative to the directory): results must verify, the
// conservative engine must stay exact against its own serial reference,
// and the serialised bus should cost cycles relative to the banked
// crossbar on a multi-threaded run.
func TestSnoopBusProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("workload sweep")
	}
	w, err := workloads.Get("ocean")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(w.Source(1), asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(p cache.Protocol) *Machine {
		cfg := smallConfig(4, ModelOoO)
		cfg.MemSize = 64 << 20
		cfg.MaxCycles = 200_000_000
		cfg.Cache.Protocol = p
		m, err := NewMachine(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Init(m.Image(), 1); err != nil {
			t.Fatal(err)
		}
		return m
	}

	dirRef := runSerial(t, mk(cache.Directory))
	busRef := runSerial(t, mk(cache.SnoopBus))
	if busRef.Aborted || dirRef.Aborted {
		t.Fatal("reference aborted")
	}
	t.Logf("directory: %d cycles, snoop bus: %d cycles", dirRef.EndTime, busRef.EndTime)
	if busRef.EndTime <= dirRef.EndTime {
		t.Errorf("serialised bus (%d) not slower than banked crossbar (%d)", busRef.EndTime, dirRef.EndTime)
	}

	// Conservative exactness holds under the bus protocol too.
	m := mk(cache.SnoopBus)
	res, err := m.RunParallel(SchemeS9x)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(m.Image(), res.Output, 1); err != nil {
		t.Fatal(err)
	}
	if res.EndTime != busRef.EndTime {
		t.Fatalf("bus S9* end %d != serial %d", res.EndTime, busRef.EndTime)
	}
}

// TestSixteenCoreTarget scales the target CMP to 16 cores (beyond the
// paper's 8) and checks the engine and a workload still behave.
func TestSixteenCoreTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("large target")
	}
	w, err := workloads.Get("radix")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(w.Source(1), asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(16, ModelOoO)
	cfg.MemSize = 64 << 20
	cfg.MaxCycles = 500_000_000
	m, err := NewMachine(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Init(m.Image(), 1); err != nil {
		t.Fatal(err)
	}
	res, err := m.RunParallel(SchemeS9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborted {
		t.Fatal("aborted")
	}
	if err := w.Verify(m.Image(), res.Output, 1); err != nil {
		t.Fatal(err)
	}
}
