package core

import (
	"testing"

	"slacksim/internal/asm"
	"slacksim/internal/workloads"
)

// TestSchemesOcean is the in-repo miniature of the paper's Table 3: it
// runs the ocean workload under every scheme and checks that conservative
// schemes are cycle-exact against the serial reference while the
// optimistic schemes' execution-time error stays small and ordered
// (S9 < S100 < SU).
func TestSchemesOcean(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scheme sweep")
	}
	w, err := workloads.Get("ocean")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(w.Source(1), asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *Machine {
		cfg := smallConfig(4, ModelOoO)
		cfg.MemSize = 64 << 20
		cfg.MaxCycles = 200_000_000
		m, err := NewMachine(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Init(m.Image(), 1); err != nil {
			t.Fatal(err)
		}
		return m
	}
	ref := runSerial(t, mk())
	t.Logf("serial: end=%d wall=%v", ref.EndTime, ref.Wall)
	for _, s := range []Scheme{SchemeCC, SchemeQ10, SchemeL10, SchemeS9, SchemeS9x, SchemeS100, SchemeSU} {
		m := mk()
		r, err := m.RunParallel(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Verify(m.Image(), r.Output, 1); err != nil {
			t.Errorf("%v: verify: %v", s, err)
		}
		errPct := 100 * float64(r.EndTime-ref.EndTime) / float64(ref.EndTime)
		t.Logf("%-5v end=%-7d err=%+6.2f%% wall=%-12v speedup-vs-serial=%.2f warps=%d",
			s, r.EndTime, errPct, r.Wall, ref.Wall.Seconds()/r.Wall.Seconds(), r.TimeWarps)
		if s.Conservative() {
			if r.EndTime != ref.EndTime {
				t.Errorf("%v: conservative scheme end time %d != serial %d", s, r.EndTime, ref.EndTime)
			}
			if r.TimeWarps != 0 || r.CoherenceWarps != 0 {
				t.Errorf("%v: conservative scheme saw %d time warps, %d coherence warps", s, r.TimeWarps, r.CoherenceWarps)
			}
			continue
		}
		// Optimistic schemes: small, bounded error (generous bounds; the
		// distortion is host-schedule dependent).
		limit := 2.0
		if s == SchemeSU {
			limit = 40.0
		}
		if errPct < 0 {
			errPct = -errPct
		}
		if errPct > limit {
			t.Errorf("%v: error %.2f%% exceeds %.0f%%", s, errPct, limit)
		}
	}
}
