package core

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"slacksim/internal/cpu"
	"slacksim/internal/event"
	"slacksim/internal/faultinject"
	"slacksim/internal/trace"
)

// RunFused executes the simulation entirely on the calling goroutine: all
// target cores run inline as a cooperative round-robin under the slack
// invariant (Global <= Local(i) <= MaxLocal(i)), interleaved with the
// manager's drain/process/window phase. It exists for the scarce-host-core
// regime (the paper's Table 2 configuration: the whole parallel engine on
// one host core), where the goroutine-per-core fabric — scheduling N+1
// goroutines on one P, per-publication min-tree maintenance, Dekker parks,
// manager pacing — is pure overhead: with a single runner there is nothing
// to synchronise, so the fused driver replaces every atomic, park and
// cross-goroutine ring on the hot path with plain locals and slice appends.
//
//   - Core->manager transfer: Env.Send pushes straight into the manager's
//     GQ (the heap's (Time, Core, Seq) order makes the result independent
//     of push order, so this is exact).
//   - Manager->core transfer: replies append to a plain per-core slice
//     (fusedIn) instead of the InQ ring + notify path.
//   - Global time: a direct min over the loop-owned locals (with the same
//     blocked/resumeFloor handling as minLocal) instead of the min-tree.
//   - Parks/freezes: none. A core with nothing to do is simply skipped
//     this round; the manager phase always runs next.
//
// Scheme semantics are the parallel driver's, phase by phase: the same
// batch horizons (conservative: global + critical latency; optimistic:
// optimisticBatch), the same stall fast-forward rules (slide to the window
// edge under conservative schemes, freeze under optimistic ones), the same
// per-scheme processing (conservative bound, quantum barrier, adaptive
// controller), and the same idle-core clamp. Because the round-robin is a
// particular legal schedule of the parallel engine and conservative
// schemes are schedule-invariant, CC/Q/L/S* runs are bit-exact against
// both RunSerial and RunParallel (the determinism suite enforces this).
//
// Pacing atomics (local, maxLocal, global, liveGQ) are still mirrored —
// once per round, not per cycle — so forensics snapshots, the sampled
// auditor, and the live introspection views keep working unchanged.
func (m *Machine) RunFused(s Scheme) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if m.cfg.ManagerShards > 1 || m.cfg.RemoteShards > 0 {
		return nil, fmt.Errorf("core: RunFused supports only the unsharded in-process manager (ManagerShards=%d RemoteShards=%d)",
			m.cfg.ManagerShards, m.cfg.RemoteShards)
	}
	m.scheme = s
	sc := s
	m.schemeLive.Store(&sc)
	m.fused = true
	m.fusedIn = make([][]event.Event, m.cfg.NumCores)
	for i := range m.fusedIn {
		m.fusedIn[i] = make([]event.Event, 0, m.cfg.RingCap)
	}
	start := time.Now()
	m.captureHostMem()

	// Initial windows (mirrored for forensics/introspection; the loop's
	// authoritative edge is a plain local).
	init := s.maxLocal(0)
	for i := range m.maxLocal {
		m.maxLocal[i].v.Store(init)
	}

	func() {
		defer m.containPanic(faultinject.Manager, "fused-loop")
		m.runFusedLoop(s)
	}()
	if err := m.takeFault(); err != nil {
		return nil, err
	}
	// Straggler events pushed after done (cores commit a few trailing
	// instructions) — same final drain as the other drivers, guarded.
	func() {
		defer m.containPanic(faultinject.Manager, "final-drain")
		m.drainOutQs()
		m.processAll()
	}()
	if err := m.takeFault(); err != nil {
		return nil, err
	}
	return m.result(time.Since(start)), nil
}

// fusedMin computes the global-time candidate from the loop-owned local
// clocks: the exact semantics of minLocal (skip kernel-blocked cores, count
// resume floors, fall back to the current global when everything is
// blocked) over plain values instead of the min-tree.
func (m *Machine) fusedMin(locals []int64, g int64) int64 {
	lo := int64(-1)
	for i := range locals {
		if m.blocked[i].v.Load() != 0 {
			continue
		}
		v := locals[i]
		if f := m.resumeFloor[i].v.Load(); f > v {
			v = f
		}
		if lo < 0 || v < lo {
			lo = v
		}
	}
	if lo < 0 {
		return g
	}
	return lo
}

// fusedEdgeTarget computes the scheme's window-edge target for global time
// g — updateWindows' policy, shared with the adaptive controller state.
func fusedEdgeTarget(s Scheme, g int64, ad *adaptState) int64 {
	var target int64
	switch s.Kind {
	case Unbounded:
		return math.MaxInt64
	case Adaptive:
		w := ad.window
		if w > s.Window {
			w = s.Window
		}
		target = g + w + 1
	default:
		target = s.maxLocal(g)
	}
	if target < 0 { // overflow guard
		target = math.MaxInt64
	}
	return target
}

// publishFusedHighWaters mirrors the fused driver's pending-event depths
// into the introspection high-water gauges. The fused loop never touches
// the InQ/OutQ rings (pending replies live in fusedIn, undelivered
// events in the round's inboxes), so the ring observers installed by
// EnableIntrospection would leave /slack reporting zeros; this publishes
// the equivalent per-core depth instead. No-op when introspection is off.
func (m *Machine) publishFusedHighWaters(inboxes [][]event.Event) {
	if m.hwIn == nil {
		return
	}
	for i := range m.hwIn {
		m.hwIn[i].SetMax(int64(len(m.fusedIn[i]) + len(inboxes[i])))
	}
}

// fusedNoteInDepth ratchets core i's inq high-water gauge after a fused
// pending-reply append. The sampled publishFusedHighWaters would miss a
// reply that is delivered between two samples — on a register-bound
// workload a single memory miss is exactly that — so the append sites
// record the depth directly when introspection is on.
func (m *Machine) fusedNoteInDepth(core int) {
	if m.introOn && m.hwIn != nil {
		m.hwIn[core].SetMax(int64(len(m.fusedIn[core])))
	}
}

// fusedDeadlocked is detectDeadlock for the fused driver: the GQ, every
// pending-reply slice and every undelivered inbox must be empty, and the
// kernel must report every live thread queued on a synchronisation object.
func (m *Machine) fusedDeadlocked(inboxes [][]event.Event) bool {
	if m.gq.Len() != 0 {
		return false
	}
	for i := range m.fusedIn {
		if len(m.fusedIn[i]) != 0 || len(inboxes[i]) != 0 {
			return false
		}
	}
	return m.kernel.Deadlocked()
}

// applyFusedCoreFaults fires core i's due injected faults against its
// loop-owned clock. It mirrors applyCoreFaults with one structural change:
// a Stall fault cannot spin (there is no per-core goroutine to stall), so
// it pins the core instead — the core is skipped every round, its frozen
// clock pins the global time, and the stall watchdog fires with the same
// forensics as the parallel driver.
func (m *Machine) applyFusedCoreFaults(i int, inj *injected, local *int64, pinned *bool) bool {
	restart := false
	for idx := range inj.faults {
		f := &inj.faults[idx]
		if inj.fired[idx] || *local < f.At {
			continue
		}
		inj.fired[idx] = true
		switch f.Kind {
		case faultinject.Panic:
			panic(fmt.Sprintf("faultinject: injected panic on core %d at local=%d", i, *local))
		case faultinject.Stall:
			*pinned = true
			return true
		case faultinject.RingFlood:
			m.floodOutQ(i, *local)
		case faultinject.ClockWarp:
			nl := *local - f.Dur
			if nl < 0 {
				nl = 0
			}
			*local = nl
			m.local[i].v.Store(nl)
			restart = true
		}
	}
	return restart
}

// runFusedLoop is the fused driver's round loop. Each round is one core
// phase (every runnable core delivers its pending replies, then ticks a
// batch of cycles up to the scheme's horizon, or fast-forwards a stall)
// followed by one manager phase (global-time min, per-scheme GQ
// processing, window-edge raise, sampled observability and health checks).
func (m *Machine) runFusedLoop(s Scheme) {
	n := len(m.cores)
	conservative := s.Conservative()
	idleClamp := m.cfg.Cache.CriticalLatency()
	edge := s.maxLocal(0)
	g := int64(0)

	locals := make([]int64, n)
	inboxes := make([][]event.Event, n)
	stats := make([]*cpu.Stats, n)
	ticks := make([]int, n)
	pinned := make([]bool, n)
	for i, c := range m.cores {
		inboxes[i] = make([]event.Event, 0, m.cfg.RingCap)
		stats[i] = c.Stats()
		locals[i] = m.local[i].v.Load()
	}
	var fi []*injected
	if m.fiCore != nil {
		fi = make([]*injected, n)
		for i := range fi {
			fi[i] = newInjected(m.fiCore[i])
		}
	}
	fiMgr := newInjected(m.fiMgr)
	ad := adaptState{window: s.Window}
	aud := m.audit
	mw := m.mgrTW
	measure := m.met != nil
	lastBarrier := int64(0)
	lastWindow := ad.window
	lastChange := time.Now()
	lastGlobal := int64(-1)
	prodStreak := 0
	idleRounds := 0
	quiet := 0
	rounds := 0

	// Publish the pending-queue high-waters before the first round: an
	// introspection client that attaches mid-run must see fused ring
	// depths immediately, not only after the first sampled round below.
	m.publishFusedHighWaters(inboxes)

	for !m.done.Load() {
		rounds++
		progress := false
		anyPinned := false

		// --- Core phase: cooperative round-robin over the target cores ---
		for i, c := range m.cores {
			if pinned[i] {
				anyPinned = true
				continue
			}
			local := locals[i]
			if fi != nil && fi[i] != nil && m.applyFusedCoreFaults(i, fi[i], &local, &pinned[i]) {
				if local != locals[i] {
					locals[i] = local
					progress = true // an injected clock warp moved the clock
				}
				if pinned[i] {
					anyPinned = true
				}
				continue
			}
			limit := edge
			if !c.Active() {
				// Idle-core clamp: whatever the scheme, never free-run an
				// inactive core past global + critical latency.
				if idleMax := g + idleClamp; idleMax < limit {
					limit = idleMax
				}
			}
			if aud != nil {
				if ticks[i]++; ticks[i]%aud.every == 0 {
					m.auditCore(i, local, g)
				}
			}
			if local >= limit {
				continue // at the window edge; the manager phase raises it
			}
			delivered := m.deliverInbox(i, &inboxes[i], local)

			// Batch horizon — the coreLoop rules verbatim. Under
			// conservative schemes every reply pushed by a later manager
			// phase stems from an event stamped >= g, so its timestamp is
			// >= g + critical latency and the batch can never run past an
			// undelivered event.
			end := local + 1
			if !batchDisabled {
				end = limit
				if conservative {
					if hz := g + idleClamp; hz < end {
						end = hz
					}
				} else if hz := local + optimisticBatch; hz < end {
					end = hz
				}
				if t, ok := earliestEvent(inboxes[i], true); ok && t < end {
					end = t
				}
				if end <= local {
					end = local + 1
				}
			}
			if roi := m.roiTime.Load(); roi >= 0 && !stats[i].ROIMarked {
				c.MarkROI(local)
			}
			progressed := c.Tick(local)
			local++
			for progressed && local < end {
				if !stats[i].ROIMarked && m.roiTime.Load() >= 0 {
					c.MarkROI(local)
				}
				progressed = c.Tick(local)
				local++
			}
			if local != locals[i] {
				locals[i] = local
				m.local[i].v.Store(local) // forensics/introspection mirror
			}
			if progressed || delivered {
				progress = true
				continue
			}

			// Fully stalled: fast-forward per the coreLoop regime rules.
			next := c.NextWork(local)
			if t, ok := earliestEvent(inboxes[i], conservative); ok && t < next {
				next = t
			}
			if next == math.MaxInt64 {
				switch {
				case !c.Active():
					next = limit // idle core: follow the window edge
				case conservative && m.blocked[i].v.Load() == 0:
					next = limit // slide to the edge; processing will answer
				default:
					// Optimistic or kernel-blocked: freeze — no clock
					// movement until an event arrives in a later round.
					continue
				}
			}
			if next > limit {
				next = limit
			}
			if conservative {
				// No event pushed by a later manager phase can land inside
				// the skipped range (their timestamps are >= g + critical
				// latency); the cap keeps that guarantee exact.
				if horizon := g + idleClamp - 1; next > horizon {
					next = horizon
				}
			}
			if next > local {
				c.Skip(next - local)
				locals[i] = next
				m.local[i].v.Store(next)
				progress = true
			}
		}

		// --- Manager phase ---
		var t0 time.Time
		if measure {
			t0 = time.Now()
		}
		ps := mw.Begin()
		evBefore := m.evProcessed
		if ng := m.fusedMin(locals, g); ng > g {
			g = ng
			if measure {
				m.met.globalAdv.Inc()
			}
		}
		if g >= m.cfg.MaxCycles {
			m.aborted = true
			m.done.Store(true)
			break
		}
		if fiMgr != nil {
			applyPanicFaults(fiMgr, g, "manager")
		}
		var processed bool
		switch {
		case s.Kind == Adaptive:
			processed = m.processAllCounting(&ad)
			ad.adapt(g)
			if ad.window != lastWindow {
				lastWindow = ad.window
				mw.Count(trace.KWindow, ad.window)
				if measure {
					m.met.adaptResizes.Inc()
				}
			}
		case s.Kind == Quantum:
			if allowed := quantumBarrier(g, s.Window); allowed > 0 {
				if allowed > lastBarrier {
					lastBarrier = allowed
					mw.Instant(trace.KBarrier, allowed)
					if measure {
						m.met.barriers.Inc()
					}
				}
				processed = m.processConservative(allowed)
				m.noteProcBound(allowed)
			}
		case conservative:
			processed = m.processConservative(g)
			m.noteProcBound(g)
		default:
			processed = m.processAll()
		}
		if processed {
			mw.Span(trace.KProcess, ps, m.evProcessed-evBefore)
		}
		if g > m.global.Load() {
			m.global.Store(g) // mirror for forensics/audit/introspection
		}

		// Raise the window edge (monotone, like updateWindows).
		if target := fusedEdgeTarget(s, g, &ad); target > edge {
			edge = target
			for i := range m.maxLocal {
				m.maxLocal[i].v.Store(edge)
			}
			progress = true
			if measure {
				m.met.windowSlides.Inc()
			}
		}

		// Sampled observability: trace counts, GQ-depth and slack
		// histograms, live-view mirrors (including the min-tree leaves the
		// /slack root display reads — refreshed here, not per publication).
		if rounds&63 == 0 && (mw != nil || measure) {
			mw.Count(trace.KGlobal, g)
			mw.Count(trace.KQDepth, int64(m.gq.Len()))
			if measure {
				m.met.gqDepth.Observe(int64(m.gq.Len()))
				if edge != math.MaxInt64 {
					for i := range locals {
						m.met.slack.Observe(edge - locals[i])
					}
				}
			}
		}
		if m.introOn {
			m.liveGQ.Store(int64(m.gq.Len()))
			if rounds&63 == 0 {
				for i := range m.cores {
					m.refreshMinLeaf(i)
				}
				m.publishFusedHighWaters(inboxes)
			}
		}
		if m.trace != nil && (processed || progress) {
			m.trace(g, locals)
		}

		if progress || processed || g != lastGlobal {
			if idleRounds != 0 || prodStreak&31 == 0 {
				lastChange = time.Now()
			}
			prodStreak++
			idleRounds = 0
			quiet = 0
			lastGlobal = g
			if measure {
				m.mgrBusyNS += time.Since(t0).Nanoseconds()
			}
			continue
		}
		prodStreak = 0
		idleRounds++

		// No core moved, nothing processed, the global time is pinned: a
		// kernel deadlock, an injected stall, or a transient wait. The same
		// health checks as the parallel manager; a healthy conservative run
		// never lands here (the slide-to-edge rule always moves the minimum
		// core), so this branch is cold by construction.
		if quiet++; quiet&511 == 0 && m.fusedDeadlocked(inboxes) {
			m.aborted = true
			m.setFault(&StallError{Deadlock: true, Report: m.snapshot(true, 0)})
			break
		}
		if idleRounds&1023 == 0 {
			if wait := time.Since(lastChange); wait > m.stallTimeout() {
				m.aborted = true
				m.setFault(&StallError{Wait: wait, Report: m.snapshot(true, wait)})
				break
			}
		}
		_ = anyPinned
		runtime.Gosched() // stay polite to the host while waiting
	}
}
