package interconnect

import (
	"testing"
	"testing/quick"
)

func TestResourceQueueing(t *testing.T) {
	r := NewResource(4)
	if got := r.Acquire(10); got != 10 {
		t.Fatalf("idle acquire = %d", got)
	}
	if got := r.Acquire(10); got != 14 {
		t.Fatalf("queued acquire = %d", got)
	}
	if got := r.Acquire(100); got != 100 {
		t.Fatalf("late acquire = %d", got)
	}
	if r.Uses() != 3 {
		t.Errorf("uses = %d", r.Uses())
	}
	if r.WaitCycles() != 4 {
		t.Errorf("wait cycles = %d", r.WaitCycles())
	}
}

// TestResourceMonotoneInOrder: with nondecreasing arrival times, service
// start times are nondecreasing and the backlog cap never fires below the
// physical bound — the property that keeps conservative schemes exact.
func TestResourceMonotoneInOrder(t *testing.T) {
	f := func(deltas []uint8) bool {
		r := NewResource(3)
		now, last := int64(0), int64(-1)
		for _, d := range deltas {
			now += int64(d % 16)
			start := r.Acquire(now)
			if start < now || start < last {
				return false
			}
			last = start
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestResourceBacklogCap: a far-future request must not poison the queue
// for an earlier-stamped request beyond the finite-buffer bound.
func TestResourceBacklogCap(t *testing.T) {
	r := NewResource(4)
	r.Acquire(1_000_000) // free := 1,000,004
	start := r.Acquire(100)
	if max := int64(100 + backlogOps*4); start > max {
		t.Fatalf("capped start = %d, want <= %d", start, max)
	}
	if start < 100 {
		t.Fatalf("start %d before arrival", start)
	}
}

func TestResourceReset(t *testing.T) {
	r := NewResource(2)
	r.Acquire(5)
	r.Acquire(5)
	r.Reset()
	if r.Uses() != 0 || r.WaitCycles() != 0 {
		t.Error("stats not reset")
	}
	if got := r.Acquire(0); got != 0 {
		t.Errorf("occupancy not reset: %d", got)
	}
}

func TestCrossbarNUCADistance(t *testing.T) {
	x := NewCrossbar(8, 8, 2, 1, 1)
	if got := x.Latency(0, 0); got != 2 {
		t.Errorf("near latency = %d", got)
	}
	if got := x.Latency(0, 7); got != 9 {
		t.Errorf("far latency = %d", got)
	}
	if got := x.Latency(7, 7); got != 2 {
		t.Errorf("corner latency = %d", got)
	}
	if x.MinLatency() != 2 {
		t.Errorf("min latency = %d", x.MinLatency())
	}
}

func TestCrossbarBankScaling(t *testing.T) {
	// 4 cores, 8 banks: banks map onto core positions pairwise.
	x := NewCrossbar(4, 8, 2, 1, 1)
	if got := x.Latency(0, 1); got != 2 {
		t.Errorf("bank 1 maps to core 0: latency = %d", got)
	}
	if got := x.Latency(0, 7); got != 5 {
		t.Errorf("bank 7 latency = %d", got)
	}
}

func TestCrossbarPortContention(t *testing.T) {
	x := NewCrossbar(4, 4, 2, 1, 3)
	a := x.Traverse(0, 1, 10)
	b := x.Traverse(2, 1, 10) // same bank, same cycle: queues 3 cycles
	if b-a != 3 {
		t.Errorf("contended traverses: %d then %d", a, b)
	}
	c := x.Traverse(0, 2, 10) // different bank: no queueing, 2 hops away
	if c != 14 {
		t.Errorf("uncontended traverse = %d, want 10+2+2*1", c)
	}
	if x.PortWaitCycles() != 3 {
		t.Errorf("port wait cycles = %d", x.PortWaitCycles())
	}
	x.Reset()
	if x.PortWaitCycles() != 0 {
		t.Error("reset did not clear port stats")
	}
}
