// Package interconnect provides simple occupancy-based contention models for
// the on-chip fabric between cores and the NUCA L2 banks: each shared
// resource is a single server with a fixed per-message occupancy, so
// back-to-back messages queue behind each other. The paper's target couples
// cores to L2 banks this way; conflicts on such shared resources are one of
// the inter-core interaction channels slack can distort (§3.2.1).
package interconnect

// Resource is a single-server queue: each message occupies the server for a
// fixed number of cycles, and a message arriving while the server is busy
// waits. Not safe for concurrent use; in the parallel engine all resources
// are owned by the manager thread.
//
// Requests are normally presented in timestamp order (conservative slack
// schemes guarantee it). Optimistic schemes may present them out of order,
// so the observable backlog is capped at maxBacklog cycles — the longest
// queue a bounded number of outstanding requests could physically build.
// Without the cap, one far-future timestamp would poison the free clock
// and every later-arriving (but earlier-stamped) request would be served
// in the far future, compounding the very distortion it models (§3.2.1).
// In timestamp order the cap is never reached, so conservative schemes and
// the serial reference are bit-identical with or without it.
type Resource struct {
	perOp      int64 // server occupancy per message, in cycles
	free       int64 // first cycle at which the server is idle
	maxBacklog int64
	uses       int64
	waits      int64 // cumulative queueing cycles
}

// backlogOps bounds the queue depth a resource can present to any request
// — a finite request buffer, as real banks and memory controllers have.
// It also bounds how far one far-future timestamp (possible under
// optimistic slack schemes) can push later-arriving requests.
const backlogOps = 8

// NewResource creates a resource with the given per-message occupancy.
func NewResource(perOp int64) *Resource {
	if perOp < 1 {
		perOp = 1
	}
	return &Resource{perOp: perOp, maxBacklog: backlogOps * perOp}
}

// Acquire reserves the resource for one message arriving at cycle now and
// returns the cycle service actually starts.
func (r *Resource) Acquire(now int64) (start int64) {
	start = now
	if r.free > start {
		if capped := now + r.maxBacklog; r.free > capped {
			start = capped
		} else {
			start = r.free
		}
	}
	r.waits += start - now
	if f := start + r.perOp; f > r.free {
		r.free = f
	}
	r.uses++
	return start
}

// Uses returns the number of messages served.
func (r *Resource) Uses() int64 { return r.uses }

// State exports the resource's mutable occupancy state (free clock, use
// and wait counters) for shard checkpointing; perOp and maxBacklog are
// configuration and travel with the cache config instead.
func (r *Resource) State() (free, uses, waits int64) {
	return r.free, r.uses, r.waits
}

// SetState restores occupancy state captured by State on a resource built
// from the identical configuration.
func (r *Resource) SetState(free, uses, waits int64) {
	r.free, r.uses, r.waits = free, uses, waits
}

// WaitCycles returns the cumulative number of cycles messages spent queued.
func (r *Resource) WaitCycles() int64 { return r.waits }

// Reset clears occupancy and statistics.
func (r *Resource) Reset() { r.free, r.uses, r.waits = 0, 0, 0 }

// Crossbar connects n cores to m banks. Each bank has an independent input
// port (a Resource); traversal latency grows with the hop distance between
// the core and the bank, which is what makes the shared L2 non-uniform
// (NUCA).
type Crossbar struct {
	ports    []*Resource
	baseLat  int64
	hopLat   int64
	numCores int
}

// NewCrossbar builds a crossbar with one port per bank. baseLat is the
// minimum one-way traversal latency; hopLat is the extra latency per unit of
// core-to-bank distance; portOcc is the per-message port occupancy.
func NewCrossbar(numCores, numBanks int, baseLat, hopLat, portOcc int64) *Crossbar {
	ports := make([]*Resource, numBanks)
	for i := range ports {
		ports[i] = NewResource(portOcc)
	}
	return &Crossbar{ports: ports, baseLat: baseLat, hopLat: hopLat, numCores: numCores}
}

// Traverse models a message from core to bank injected at cycle now and
// returns its arrival cycle at the bank, including queueing at the bank's
// input port.
func (x *Crossbar) Traverse(core, bank int, now int64) int64 {
	start := x.ports[bank].Acquire(now)
	return start + x.baseLat + x.hopLat*x.distance(core, bank)
}

// Latency returns the unloaded core-to-bank traversal latency.
func (x *Crossbar) Latency(core, bank int) int64 {
	return x.baseLat + x.hopLat*x.distance(core, bank)
}

// MinLatency returns the smallest unloaded traversal latency across all
// core/bank pairs — the term this fabric contributes to the target's
// critical latency.
func (x *Crossbar) MinLatency() int64 { return x.baseLat }

func (x *Crossbar) distance(core, bank int) int64 {
	if len(x.ports) == 0 || x.numCores == 0 {
		return 0
	}
	// Cores and banks are laid out along the same die edge; distance is the
	// index gap after scaling bank indices onto core positions.
	pos := bank
	if len(x.ports) != x.numCores {
		pos = bank * x.numCores / len(x.ports)
	}
	d := core - pos
	if d < 0 {
		d = -d
	}
	return int64(d)
}

// Ports exposes the per-bank input ports for shard checkpointing (their
// occupancy state is part of a shard's timing state).
func (x *Crossbar) Ports() []*Resource { return x.ports }

// PortWaitCycles sums queueing cycles across all bank ports.
func (x *Crossbar) PortWaitCycles() int64 {
	var total int64
	for _, p := range x.ports {
		total += p.WaitCycles()
	}
	return total
}

// Reset clears all port occupancy and statistics.
func (x *Crossbar) Reset() {
	for _, p := range x.ports {
		p.Reset()
	}
}
