package loader

import (
	"testing"

	"slacksim/internal/asm"
	"slacksim/internal/isa"
)

func testProg(t *testing.T) *asm.Program {
	t.Helper()
	p, err := asm.Assemble(`
main:
    li r8, 7
    syscall 0
.data
.align 8
x: .dword 0x1122334455667788
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadLayout(t *testing.T) {
	prog := testProg(t)
	im, err := Load(prog, Config{MemSize: 8 << 20, StackSize: 64 << 10, NumCores: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Text readable at the entry.
	w, ok := im.Mem.LoadWord(im.Entry)
	if !ok {
		t.Fatal("entry unreadable")
	}
	if in := isa.Decode(w); in.Op != isa.OpLI || in.Imm != 7 {
		t.Fatalf("first instruction = %v", in)
	}
	// Data placed and readable via symbol lookup.
	xa, err := im.Symbol("x")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := im.Mem.LoadWord(xa); v != 0x1122334455667788 {
		t.Fatalf("data word = %#x", v)
	}
	// Heap begins past the data, page aligned, below the stacks.
	if im.HeapStart <= prog.DataEnd() || im.HeapStart%0x1000 != 0 {
		t.Errorf("heap start %#x", im.HeapStart)
	}
	if im.HeapLimit != 8<<20-4*(64<<10) {
		t.Errorf("heap limit %#x", im.HeapLimit)
	}
}

func TestStacksDisjointAndAligned(t *testing.T) {
	prog := testProg(t)
	im, err := Load(prog, Config{MemSize: 8 << 20, StackSize: 64 << 10, NumCores: 8})
	if err != nil {
		t.Fatal(err)
	}
	tops := map[uint64]bool{}
	for c := 0; c < 8; c++ {
		top := im.StackTop(c)
		if top%8 != 0 {
			t.Errorf("stack %d top %#x misaligned", c, top)
		}
		if tops[top] {
			t.Errorf("stack %d top %#x reused", c, top)
		}
		tops[top] = true
		if c > 0 && im.StackTop(c-1)-top != 64<<10 {
			t.Errorf("stacks %d/%d not %#x apart", c-1, c, 64<<10)
		}
		// A deep push must stay above the next stack's top.
		if top-(60<<10) <= im.HeapLimit && c == 7 {
			t.Errorf("lowest stack dips into the heap")
		}
	}
}

func TestLoadErrors(t *testing.T) {
	prog := testProg(t)
	if _, err := Load(prog, Config{NumCores: 0}); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := Load(prog, Config{MemSize: 1 << 16, StackSize: 1 << 20, NumCores: 8}); err == nil {
		t.Error("stacks larger than memory accepted")
	}
	bad, err := asm.Assemble("main:\n nop\n", asm.Options{TextBase: 0x100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad, Config{NumCores: 1}); err == nil {
		t.Error("text inside the null guard accepted")
	}
}

func TestSymbolLookupError(t *testing.T) {
	im, err := Load(testProg(t), Config{NumCores: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := im.Symbol("nonexistent"); err == nil {
		t.Error("missing symbol lookup succeeded")
	}
}

func TestStackTopPanicsOutOfRange(t *testing.T) {
	im, err := Load(testProg(t), Config{NumCores: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic for out-of-range core")
		}
	}()
	im.StackTop(2)
}
