// Package loader lays out an assembled program in the simulated address
// space: text, data, heap, and one downward-growing stack per target core.
package loader

import (
	"fmt"

	"slacksim/internal/asm"
	"slacksim/internal/mem"
)

// Layout constants.
const (
	// DefaultMemSize is the default simulated physical memory size.
	DefaultMemSize = 256 << 20
	// DefaultStackSize is the per-core stack size.
	DefaultStackSize = 1 << 20
	// guard is the unmapped low region that catches null dereferences.
	guard = 0x1000
)

// Image is a loaded program: memory plus the address-space map.
type Image struct {
	Mem       *mem.Memory
	Prog      *asm.Program
	Entry     uint64
	HeapStart uint64 // first heap address (sbrk starts here)
	HeapLimit uint64 // heap may not grow past this
	StackSize uint64
	NumCores  int
	memSize   uint64
}

// Config controls loading.
type Config struct {
	MemSize   uint64 // defaults to DefaultMemSize
	StackSize uint64 // defaults to DefaultStackSize
	NumCores  int    // number of target cores (stacks); must be >= 1
}

// Load writes prog into a fresh memory and computes the address-space map.
func Load(prog *asm.Program, cfg Config) (*Image, error) {
	if cfg.MemSize == 0 {
		cfg.MemSize = DefaultMemSize
	}
	if cfg.StackSize == 0 {
		cfg.StackSize = DefaultStackSize
	}
	if cfg.NumCores < 1 {
		return nil, fmt.Errorf("loader: NumCores must be >= 1, got %d", cfg.NumCores)
	}
	if prog.TextBase < guard {
		return nil, fmt.Errorf("loader: text base %#x overlaps the null guard page", prog.TextBase)
	}
	m := mem.New(cfg.MemSize)
	if err := m.WriteBytes(prog.TextBase, prog.TextBytes()); err != nil {
		return nil, fmt.Errorf("loader: text: %w", err)
	}
	if err := m.WriteBytes(prog.DataBase, prog.Data); err != nil {
		return nil, fmt.Errorf("loader: data: %w", err)
	}
	heapStart := (prog.DataEnd() + 0xFFF) &^ 0xFFF
	stackBytes := uint64(cfg.NumCores) * cfg.StackSize
	if heapStart+stackBytes >= cfg.MemSize {
		return nil, fmt.Errorf("loader: memory too small: heap at %#x, %d stacks of %#x, size %#x",
			heapStart, cfg.NumCores, cfg.StackSize, cfg.MemSize)
	}
	return &Image{
		Mem:       m,
		Prog:      prog,
		Entry:     prog.Entry,
		HeapStart: heapStart,
		HeapLimit: cfg.MemSize - stackBytes,
		StackSize: cfg.StackSize,
		NumCores:  cfg.NumCores,
		memSize:   cfg.MemSize,
	}, nil
}

// StackTop returns the initial stack pointer for the given core. Stacks are
// carved from the top of memory, core 0 highest, and grow downward. The top
// 16 bytes are left unused as a red zone.
func (im *Image) StackTop(core int) uint64 {
	if core < 0 || core >= im.NumCores {
		panic(fmt.Sprintf("loader: StackTop(%d) with %d cores", core, im.NumCores))
	}
	return im.memSize - uint64(core)*im.StackSize - 16
}

// Symbol returns the address of a label defined by the program.
func (im *Image) Symbol(name string) (uint64, error) {
	a, ok := im.Prog.Symbols[name]
	if !ok {
		return 0, fmt.Errorf("loader: undefined symbol %q", name)
	}
	return a, nil
}
