package remote

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"time"

	"slacksim/internal/cache"
	"slacksim/internal/metrics"
	"slacksim/internal/trace"
)

// Version is the wire-protocol version. The handshake rejects any
// mismatch outright — the protocol carries simulator-internal structures
// (event layout, cache config) whose compatibility across versions is
// exactly what a version bump declares broken.
//
// v2: CRC32-C frame envelope (remote.go), heartbeat and checkpoint
// frames, and the resumable-session handshake fields in Hello.
//
// v3: fleet observability — trace-chunk and metrics frames, a worker
// clock sample on every heartbeat (cross-process trace correlation), and
// the observability fields in Hello/WorkerStats.
const Version uint16 = 3

// magic opens every Hello frame so a worker fed a non-slacksim stream
// (wrong port, stray HTTP client) fails fast with a clear error.
const magic = "SLKR"

// Frame types. Parent → worker: FHello, FEvents, FGate, FFinish.
// Worker → parent: FWelcome, FReplies, FWatermark, FError, FStats, FBye.
const (
	// FHello opens the handshake: magic, version, then a JSON Hello.
	FHello byte = 0x01
	// FWelcome acknowledges: version, then a JSON Welcome.
	FWelcome byte = 0x02
	// FEvents carries a delta-encoded request batch for one shard.
	FEvents byte = 0x03
	// FGate publishes the allowed time: the worker must process every
	// queued event below it and answer with FWatermark.
	FGate byte = 0x04
	// FReplies carries a delta-encoded reply batch from one shard.
	FReplies byte = 0x05
	// FWatermark acknowledges a gate. The worker sends it only after
	// every FReplies for events below the gate is already written to the
	// stream, so in-order delivery guarantees the parent has the replies
	// once it sees the watermark — the remote analog of the in-process
	// rule that a shard stores its mark after its ring pushes.
	FWatermark byte = 0x06
	// FError carries a worker's JSON-serialized SimError (panic, injected
	// fault, or handshake rejection). Terminal: the worker exits after it.
	FError byte = 0x07
	// FFinish tells the worker the run is over; it must answer FStats.
	FFinish byte = 0x08
	// FStats carries the worker's JSON WorkerStats (per-shard L2 counters,
	// event counts, wire counters).
	FStats byte = 0x09
	// FBye is the worker's end-of-stream marker after FStats; the parent
	// joins its receiver on it and closes the connection.
	FBye byte = 0x0A
	// FHeartbeat is the worker's liveness beacon: sent whenever the
	// connection has been read-idle for one heartbeat interval, so the
	// parent's supervisor can tell a slow worker from a dead one without
	// waiting out the full stall timeout. The payload is the worker's
	// trace-clock sample (8-byte little-endian ns since the worker's
	// collector was created, or empty when the worker traces nothing);
	// the parent subtracts it from its own trace clock at receive time to
	// estimate the offset that rebases the worker's records.
	FHeartbeat byte = 0x0B
	// FCheckpoint carries serialized shard state (checkpoint.go). The
	// worker emits one every CheckpointEvery gates; the parent stores the
	// payload verbatim, truncates its replay journal at the checkpoint's
	// batch boundary, and acknowledges with FCheckpointAck. On a resumed
	// session the direction reverses: the parent sends its stored
	// checkpoint right after the handshake and the worker restores from
	// it, answering FCheckpointAck.
	FCheckpoint byte = 0x0C
	// FCheckpointAck acknowledges a checkpoint with its gate timestamp
	// (8-byte payload, like FGate/FWatermark).
	FCheckpointAck byte = 0x0D
	// FTraceChunk carries a worker's JSON TraceChunk: a session/epoch-
	// stamped snapshot of its trace rings plus a clock sample. The worker
	// sends one alongside each checkpoint and a final one before FStats;
	// each chunk supersedes the previous one for that worker's epoch.
	FTraceChunk byte = 0x0E
	// FMetrics carries a worker's JSON MetricsUpdate (a registry
	// snapshot). Sent periodically so the parent's live /metrics covers
	// the fleet mid-run; the final snapshot rides in FStats instead.
	FMetrics byte = 0x0F
)

// FrameName names a frame type for diagnostics.
func FrameName(t byte) string {
	switch t {
	case FHello:
		return "hello"
	case FWelcome:
		return "welcome"
	case FEvents:
		return "events"
	case FGate:
		return "gate"
	case FReplies:
		return "replies"
	case FWatermark:
		return "watermark"
	case FError:
		return "error"
	case FFinish:
		return "finish"
	case FStats:
		return "stats"
	case FBye:
		return "bye"
	case FHeartbeat:
		return "heartbeat"
	case FCheckpoint:
		return "checkpoint"
	case FCheckpointAck:
		return "checkpoint-ack"
	case FTraceChunk:
		return "trace-chunk"
	case FMetrics:
		return "metrics"
	}
	return fmt.Sprintf("unknown(%#02x)", t)
}

// Hello is the parent's handshake payload: everything a worker needs to
// build its shards' timing state identically to the in-process driver.
type Hello struct {
	// WorkerID indexes this worker among the run's workers (diagnostics
	// and fault attribution).
	WorkerID int `json:"worker_id"`
	// Shards lists the shard indices this worker owns.
	Shards []int `json:"shards"`
	// NumShards is the run's total shard count (bank mod NumShards
	// routing happens at the parent; the worker only needs the total for
	// sanity checks).
	NumShards int `json:"num_shards"`
	// NumCores is the target machine's core count (sizes reply routing).
	NumCores int `json:"num_cores"`
	// Cache is the full hierarchy configuration; each shard instantiates
	// its own L2System from it, exactly as newShardState does.
	Cache cache.Config `json:"cache"`
	// StallTimeoutMS keys the worker's read deadline off the parent's
	// stall watchdog, so an orphaned worker (parent killed) exits on its
	// own instead of lingering.
	StallTimeoutMS int64 `json:"stall_timeout_ms"`
	// HeartbeatMS is the worker's liveness-beacon interval; 0 disables
	// heartbeats (the worker then falls back to its own default, if any).
	HeartbeatMS int64 `json:"heartbeat_ms,omitempty"`
	// CheckpointEvery is the number of acknowledged gates between shard
	// checkpoints; 0 disables periodic checkpointing (the parent then has
	// only the initial empty checkpoint to recover from).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// SessionID names the run for logs and session files; stable across
	// reconnects of the same run.
	SessionID string `json:"session_id,omitempty"`
	// ResumeSession marks a reconnect after a worker loss: the parent
	// will follow the handshake with its stored FCheckpoint, and the
	// worker must restore from it (answering FCheckpointAck) before
	// entering the serve loop.
	ResumeSession bool `json:"resume_session,omitempty"`
	// Epoch counts this worker slot's connections within the session
	// (0 for the initial connection, +1 per recovery), so logs and
	// forensics can attribute frames to the right incarnation.
	Epoch int `json:"epoch,omitempty"`
	// Observe asks the worker to run its own trace collector and metrics
	// registry and ship them back (FTraceChunk/FMetrics frames, clock
	// samples on heartbeats, snapshots in FStats). Off by default so an
	// unobserved run pays nothing.
	Observe bool `json:"observe,omitempty"`
}

// Welcome is the worker's handshake acknowledgment.
type Welcome struct {
	WorkerID int  `json:"worker_id"`
	Resumed  bool `json:"resumed,omitempty"`
}

// HandshakeError reports a failed or refused handshake; the caller wraps
// it into a contained SimError naming the worker.
type HandshakeError struct {
	Detail string
}

func (e *HandshakeError) Error() string { return "remote: handshake: " + e.Detail }

// SendHello writes and flushes the parent's opening frame.
func (c *Conn) SendHello(h *Hello) error {
	body, err := json.Marshal(h)
	if err != nil {
		return err
	}
	payload := make([]byte, 0, len(magic)+2+len(body))
	payload = append(payload, magic...)
	payload = binary.LittleEndian.AppendUint16(payload, Version)
	payload = append(payload, body...)
	if err := c.WriteFrame(FHello, payload); err != nil {
		return err
	}
	return c.Flush()
}

// AwaitWelcome blocks (bounded by deadline) for the worker's FWelcome and
// validates the version echo. An FError frame in its place carries the
// worker's refusal (e.g. its own version-mismatch report) and is returned
// as a HandshakeError holding the JSON payload.
func (c *Conn) AwaitWelcome(deadline time.Time) (*Welcome, error) {
	if err := c.SetReadDeadline(deadline); err != nil {
		return nil, err
	}
	defer c.SetReadDeadline(time.Time{})
	f, err := c.ReadFrame()
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case FWelcome:
	case FError:
		return nil, &HandshakeError{Detail: "worker refused: " + string(f.Payload)}
	default:
		return nil, &HandshakeError{Detail: "expected welcome, got " + FrameName(f.Type)}
	}
	if len(f.Payload) < 2 {
		return nil, &HandshakeError{Detail: "short welcome frame"}
	}
	if v := binary.LittleEndian.Uint16(f.Payload); v != Version {
		return nil, &HandshakeError{Detail: fmt.Sprintf("version mismatch: worker speaks v%d, parent v%d", v, Version)}
	}
	var w Welcome
	if err := json.Unmarshal(f.Payload[2:], &w); err != nil {
		return nil, &HandshakeError{Detail: "bad welcome body: " + err.Error()}
	}
	return &w, nil
}

// AcceptHello blocks (bounded by deadline) for the parent's FHello,
// validates magic and version, and replies FWelcome. On a version
// mismatch it still replies — with an FError naming both versions — so
// the parent gets a structured refusal rather than a timeout.
func (c *Conn) AcceptHello(deadline time.Time) (*Hello, error) {
	if err := c.SetReadDeadline(deadline); err != nil {
		return nil, err
	}
	defer c.SetReadDeadline(time.Time{})
	f, err := c.ReadFrame()
	if err != nil {
		return nil, err
	}
	if f.Type != FHello {
		return nil, &HandshakeError{Detail: "expected hello, got " + FrameName(f.Type)}
	}
	if len(f.Payload) < len(magic)+2 || string(f.Payload[:len(magic)]) != magic {
		return nil, &HandshakeError{Detail: "bad magic (not a slacksim parent?)"}
	}
	if v := binary.LittleEndian.Uint16(f.Payload[len(magic):]); v != Version {
		detail := fmt.Sprintf("version mismatch: parent speaks v%d, worker v%d", v, Version)
		c.WriteFrame(FError, []byte(fmt.Sprintf(`{"op":"remote-handshake","detail":%q}`, detail)))
		c.Flush()
		return nil, &HandshakeError{Detail: detail}
	}
	var h Hello
	if err := json.Unmarshal(f.Payload[len(magic)+2:], &h); err != nil {
		return nil, &HandshakeError{Detail: "bad hello body: " + err.Error()}
	}
	if len(h.Shards) == 0 || h.NumCores < 1 {
		return nil, &HandshakeError{Detail: "hello assigns no shards or no cores"}
	}
	ack, err := json.Marshal(Welcome{WorkerID: h.WorkerID, Resumed: h.ResumeSession})
	if err != nil {
		return nil, err
	}
	payload := binary.LittleEndian.AppendUint16(nil, Version)
	payload = append(payload, ack...)
	if err := c.WriteFrame(FWelcome, payload); err != nil {
		return nil, err
	}
	if err := c.Flush(); err != nil {
		return nil, err
	}
	return &h, nil
}

// ShardL2 pairs a shard index with its final hierarchy counters.
type ShardL2 struct {
	Shard int           `json:"shard"`
	Stats cache.L2Stats `json:"stats"`
}

// WorkerStats is the FStats payload: everything the parent folds back
// into the Result so a remote run reports identically to an in-process
// one. The observability fields are populated only when the Hello asked
// for them (Observe).
type WorkerStats struct {
	WorkerID int       `json:"worker_id"`
	Events   int64     `json:"events"`
	L2       []ShardL2 `json:"l2"`
	Wire     WireStats `json:"wire"`
	// Metrics is the worker registry's final snapshot; the parent folds
	// it under "worker<i>." so one scrape covers the fleet.
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
	// TraceDropped maps writer name to its ring's wrap-around drop count,
	// so the parent can warn that the worker's exported trace is
	// incomplete (the cross-process analog of Collector.TotalDropped).
	TraceDropped map[string]int64 `json:"trace_dropped,omitempty"`
	// ClockNS is the worker's trace-clock sample at stats time (ns since
	// its collector's creation) — a final offset estimate even on runs
	// too short for a heartbeat.
	ClockNS int64 `json:"clock_ns,omitempty"`
}

// TraceChunk is the FTraceChunk payload: one worker's trace-ring
// snapshot, stamped with the session and connection epoch so the parent
// can discard chunks from a dead incarnation.
type TraceChunk struct {
	SessionID string              `json:"session_id"`
	WorkerID  int                 `json:"worker_id"`
	Epoch     int                 `json:"epoch"`
	ClockNS   int64               `json:"clock_ns"`
	Writers   []trace.ChunkWriter `json:"writers"`
}

// MetricsUpdate is the FMetrics payload: a worker registry snapshot for
// live federation between checkpoints.
type MetricsUpdate struct {
	WorkerID int              `json:"worker_id"`
	Epoch    int              `json:"epoch"`
	Snapshot metrics.Snapshot `json:"snapshot"`
}

// AppendClock encodes a trace-clock sample as a heartbeat payload.
func AppendClock(dst []byte, ns int64) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(ns))
}

// DecodeClock reads a heartbeat's clock sample; ok is false for the
// empty (unobserved) payload.
func DecodeClock(payload []byte) (ns int64, ok bool) {
	if len(payload) < 8 {
		return 0, false
	}
	return int64(binary.LittleEndian.Uint64(payload)), true
}
