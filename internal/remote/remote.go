// Package remote implements the wire protocol of the distributed
// remote-shard backend: shard groups of the memory hierarchy run in
// separate OS processes and exchange timestamped event batches with the
// parent simulation over a length-prefixed binary protocol.
//
// The protocol is slack-tolerant by construction. The parent's pacing
// round computes the allowed time before draining the cores' OutQs, so
// any event routed to a worker after a gate frame carries a timestamp at
// or above every gate already sent; a worker that has acknowledged a gate
// with a watermark will never see an event below it. That is exactly the
// in-process sharded driver's invariant, which is why a remote run is
// bit-identical to an in-process one for the conservative schemes — the
// network only adds host latency, which a slack window of s cycles
// absorbs the same way it absorbs host scheduling jitter.
//
// Framing is minimal: a one-byte frame type, a 4-byte little-endian
// payload length, a 4-byte little-endian CRC32-C of the payload, then
// the payload. The checksum turns a corrupted stream into a structured
// CorruptFrameError naming the frame type and stream offset — which the
// parent's supervisor treats as a connection failure and recovers from —
// instead of a decode panic or silently wrong timing state. Event
// batches are delta-encoded (codec.go); control frames carry either an
// 8-byte timestamp or JSON. See docs/distributed.md for the full layout
// and failure semantics.
package remote

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync/atomic"
	"time"

	"slacksim/internal/event"
)

// MaxFrame bounds a frame payload; a length prefix beyond it means a
// corrupt or hostile stream and fails the read instead of allocating.
const MaxFrame = 16 << 20

// Transport is the byte stream a Conn runs over. net.Conn satisfies it
// (TCP peers, net.Pipe in tests), and so does *os.File on Linux pipes
// (spawned-worker stdio), which is why deadlines are part of the
// contract: every blocking read the parent issues is bounded by the
// stall-watchdog timeout, so a dead worker surfaces as a contained
// timeout error, never a parent hang.
type Transport interface {
	io.ReadWriteCloser
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// WireStats counts one connection's traffic, split by direction. The
// send-side fields are written by the sender goroutine and the recv-side
// fields by the receiver goroutine; all are read by stats collection
// after the run, hence the atomics.
type WireStats struct {
	BytesSent   int64 `json:"bytes_sent"`
	BytesRecv   int64 `json:"bytes_recv"`
	FramesSent  int64 `json:"frames_sent"`
	FramesRecv  int64 `json:"frames_recv"`
	EventsSent  int64 `json:"events_sent"`
	EventsRecv  int64 `json:"events_recv"`
	BatchesSent int64 `json:"batches_sent"`
	BatchesRecv int64 `json:"batches_recv"`
	EncodeNS    int64 `json:"encode_ns"`
	DecodeNS    int64 `json:"decode_ns"`
}

// Add accumulates o into s.
func (s *WireStats) Add(o WireStats) {
	s.BytesSent += o.BytesSent
	s.BytesRecv += o.BytesRecv
	s.FramesSent += o.FramesSent
	s.FramesRecv += o.FramesRecv
	s.EventsSent += o.EventsSent
	s.EventsRecv += o.EventsRecv
	s.BatchesSent += o.BatchesSent
	s.BatchesRecv += o.BatchesRecv
	s.EncodeNS += o.EncodeNS
	s.DecodeNS += o.DecodeNS
}

// BytesPerBatch returns the mean encoded size of a sent event batch.
func (s *WireStats) BytesPerBatch() float64 {
	if s.BatchesSent == 0 {
		return 0
	}
	return float64(s.BytesSent) / float64(s.BatchesSent)
}

// Conn frames a Transport. Writes are buffered — callers must Flush after
// the last frame of a round (the gate frame), which is also the natural
// batching boundary: one TCP segment typically carries a whole round's
// event batches plus the gate. A Conn supports one concurrent reader and
// one concurrent writer (the parent's per-connection recv and send
// goroutines); the counters are atomic for exactly that split.
type Conn struct {
	t  Transport
	bw *bufio.Writer

	bytesSent   atomic.Int64
	bytesRecv   atomic.Int64
	framesSent  atomic.Int64
	framesRecv  atomic.Int64
	eventsSent  atomic.Int64
	eventsRecv  atomic.Int64
	batchesSent atomic.Int64
	batchesRecv atomic.Int64
	encodeNS    atomic.Int64
	decodeNS    atomic.Int64

	encBuf  []byte // sender-goroutine scratch
	readBuf []byte // receiver-goroutine scratch
	hdr     [frameHeader]byte
	rhdr    [frameHeader]byte

	// rOff is the stream offset of the next frame to read (receiver
	// goroutine only); CorruptFrameError reports it.
	rOff int64
	// corruptRecv, when armed, flips the next received frame's checksum
	// check — the deterministic hook behind the FrameCorrupt injected
	// fault (internal/faultinject), equivalent to a bit flip on the wire.
	corruptRecv atomic.Bool
}

const frameHeader = 9 // type byte + LE32 length + LE32 CRC32-C(payload)

// castagnoli is the CRC32-C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CorruptFrameError reports a frame whose payload failed its checksum:
// the frame's claimed type, where in the inbound stream it started, and
// both checksums. The connection is unusable afterwards — framing cannot
// be trusted past a corrupt header/payload — so callers treat it like a
// broken transport.
type CorruptFrameError struct {
	FrameType byte
	Offset    int64 // stream offset of the frame's first header byte
	Want, Got uint32
}

func (e *CorruptFrameError) Error() string {
	return fmt.Sprintf("remote: corrupt %s frame at stream offset %d: crc %08x, want %08x",
		FrameName(e.FrameType), e.Offset, e.Got, e.Want)
}

// InjectRecvCorrupt arms a one-shot checksum failure on the next frame
// this connection reads (fault injection only).
func (c *Conn) InjectRecvCorrupt() { c.corruptRecv.Store(true) }

// NewConn wraps t.
func NewConn(t Transport) *Conn {
	return &Conn{t: t, bw: bufio.NewWriterSize(t, 64<<10)}
}

// Stats snapshots the connection counters.
func (c *Conn) Stats() WireStats {
	return WireStats{
		BytesSent:   c.bytesSent.Load(),
		BytesRecv:   c.bytesRecv.Load(),
		FramesSent:  c.framesSent.Load(),
		FramesRecv:  c.framesRecv.Load(),
		EventsSent:  c.eventsSent.Load(),
		EventsRecv:  c.eventsRecv.Load(),
		BatchesSent: c.batchesSent.Load(),
		BatchesRecv: c.batchesRecv.Load(),
		EncodeNS:    c.encodeNS.Load(),
		DecodeNS:    c.decodeNS.Load(),
	}
}

// Close closes the underlying transport; a blocked Read/Write unblocks
// with an error.
func (c *Conn) Close() error { return c.t.Close() }

// SetReadDeadline bounds the next Read on the transport.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.t.SetReadDeadline(t) }

// SetWriteDeadline bounds the next Write on the transport (the sender
// goroutine arms it per frame group, so a worker that stops reading
// fails the parent's write instead of wedging it on a full TCP buffer).
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.t.SetWriteDeadline(t) }

// WriteFrame appends one frame to the write buffer.
func (c *Conn) WriteFrame(typ byte, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("remote: frame %#02x payload %d exceeds %d", typ, len(payload), MaxFrame)
	}
	c.hdr[0] = typ
	binary.LittleEndian.PutUint32(c.hdr[1:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(c.hdr[5:], crc32.Checksum(payload, castagnoli))
	if _, err := c.bw.Write(c.hdr[:]); err != nil {
		return err
	}
	if _, err := c.bw.Write(payload); err != nil {
		return err
	}
	c.bytesSent.Add(int64(frameHeader + len(payload)))
	c.framesSent.Add(1)
	return nil
}

// Flush pushes buffered frames to the transport.
func (c *Conn) Flush() error { return c.bw.Flush() }

// Frame is one received frame. Payload aliases the connection's read
// buffer and is only valid until the next ReadFrame.
type Frame struct {
	Type    byte
	Payload []byte
}

// ReadFrame blocks for the next frame (subject to the read deadline) and
// verifies its payload checksum; a mismatch returns a *CorruptFrameError.
func (c *Conn) ReadFrame() (Frame, error) {
	off := c.rOff
	if _, err := io.ReadFull(c.t, c.rhdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint32(c.rhdr[1:])
	if n > MaxFrame {
		return Frame{}, fmt.Errorf("remote: frame %#02x length %d exceeds %d", c.rhdr[0], n, MaxFrame)
	}
	want := binary.LittleEndian.Uint32(c.rhdr[5:])
	if cap(c.readBuf) < int(n) {
		c.readBuf = make([]byte, n)
	}
	buf := c.readBuf[:n]
	if _, err := io.ReadFull(c.t, buf); err != nil {
		return Frame{}, err
	}
	c.rOff = off + int64(frameHeader) + int64(n)
	c.bytesRecv.Add(int64(frameHeader) + int64(n))
	c.framesRecv.Add(1)
	got := crc32.Checksum(buf, castagnoli)
	if c.corruptRecv.Swap(false) {
		got ^= 0x5A5A5A5A // deterministic injected bit flip
	}
	if got != want {
		return Frame{}, &CorruptFrameError{FrameType: c.rhdr[0], Offset: off, Want: want, Got: got}
	}
	return Frame{Type: c.rhdr[0], Payload: buf}, nil
}

// SendBatch encodes one shard's batch (timed) and frames it under typ
// (FEvents from the parent, FReplies from a worker). The frame stays in
// the write buffer until Flush.
func (c *Conn) SendBatch(typ byte, shard int, evs []event.Event) error {
	t0 := time.Now()
	c.encBuf = AppendBatch(c.encBuf[:0], shard, evs)
	c.encodeNS.Add(time.Since(t0).Nanoseconds())
	c.eventsSent.Add(int64(len(evs)))
	c.batchesSent.Add(1)
	return c.WriteFrame(typ, c.encBuf)
}

// DecodeEvents decodes an FEvents payload (timed), appending onto dst.
func (c *Conn) DecodeEvents(payload []byte, dst []event.Event) (shard int, evs []event.Event, err error) {
	t0 := time.Now()
	shard, evs, err = DecodeBatch(payload, dst)
	c.decodeNS.Add(time.Since(t0).Nanoseconds())
	if err == nil {
		c.eventsRecv.Add(int64(len(evs) - len(dst)))
		c.batchesRecv.Add(1)
	}
	return shard, evs, err
}

// SendTime frames an 8-byte timestamp (gate and watermark frames).
func (c *Conn) SendTime(typ byte, t int64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(t))
	return c.WriteFrame(typ, b[:])
}

// DecodeTime reads an 8-byte timestamp payload.
func DecodeTime(payload []byte) (int64, error) {
	if len(payload) != 8 {
		return 0, fmt.Errorf("remote: timestamp payload is %d bytes, want 8", len(payload))
	}
	return int64(binary.LittleEndian.Uint64(payload)), nil
}

// IsTimeout reports whether err is a read-deadline expiry (as opposed to
// a closed or broken transport).
func IsTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var to interface{ Timeout() bool }
	return errors.As(err, &to) && to.Timeout()
}
