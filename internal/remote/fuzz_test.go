package remote

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"slacksim/internal/event"
)

// FuzzBatchCodecRoundTrip drives the codec from both ends: the input
// bytes are decoded as a hostile payload (must never panic, may error),
// and separately interpreted as a generator for a structured batch that
// must encode→decode bit-exact.
func FuzzBatchCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00})
	f.Add(AppendBatch(nil, 1, []event.Event{
		{Kind: event.KReadExcl, Core: 3, Time: 1000, Seq: 12, Addr: 0x4040,
			VictimAddr: 0x8080, VictimFlags: event.VictimValid | event.VictimDirty},
		{Kind: event.KFill, Core: 3, Time: 1010, Seq: 12, Addr: 0x4040, Aux: 2,
			ReqTime: 1000, SendNS: 123456},
	}))
	f.Add(AppendBatch(nil, 7, []event.Event{
		{Kind: event.KSyscall, Core: 0, Time: 5, Seq: 1, Aux: 9,
			Args: [4]int64{1, -2, 3, -4}, Flag: true},
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Arm 1: arbitrary bytes are a batch payload. Decode must return
		// cleanly — an error is fine, a panic or hang is the bug.
		if _, evs, err := DecodeBatch(data, nil); err == nil {
			// A payload that decodes must re-encode to an equivalent batch:
			// decode(encode(decode(x))) == decode(x).
			sh, _, _ := DecodeBatch(data, nil)
			re := AppendBatch(nil, sh, evs)
			sh2, evs2, err2 := DecodeBatch(re, nil)
			if err2 != nil {
				t.Fatalf("re-encode of valid batch failed to decode: %v", err2)
			}
			if sh2 != sh || len(evs2) != len(evs) {
				t.Fatalf("re-encode changed shape: shard %d→%d, %d→%d events", sh, sh2, len(evs), len(evs2))
			}
			for i := range evs {
				if evs[i] != evs2[i] {
					t.Fatalf("re-encode changed event %d: %+v → %+v", i, evs[i], evs2[i])
				}
			}
		}

		// Arm 2: the same bytes seed a structured batch that must
		// round-trip exactly.
		var in []event.Event
		for off := 0; off+16 <= len(data) && len(in) < 64; off += 16 {
			w1 := binary.LittleEndian.Uint64(data[off:])
			w2 := binary.LittleEndian.Uint64(data[off+8:])
			ev := event.Event{
				Kind: event.Kind(1 + w1%uint64(event.KStop)),
				Core: int32(w1 >> 8 & 0xFFFF),
				Time: int64(w2),
				Seq:  int64(w1 >> 24),
				Addr: w2 ^ w1,
				Aux:  int64(w1) - int64(w2),
				Flag: w1&1 == 1,
			}
			if w1&2 != 0 {
				ev.VictimAddr = w1
				ev.VictimFlags = uint8(w2 & 3)
			}
			if w1&4 != 0 {
				ev.ReqTime = int64(w2 >> 1)
				ev.SendNS = int64(w1 >> 1)
			}
			if ev.Kind == event.KSyscall {
				ev.Args = [4]int64{int64(w1), int64(w2), -int64(w1), -int64(w2)}
			}
			in = append(in, ev)
		}
		shard := 0
		if len(data) > 0 {
			shard = int(data[0]) % 32
		}
		buf := AppendBatch(nil, shard, in)
		gotShard, got, err := DecodeBatch(buf, nil)
		if err != nil {
			t.Fatalf("structured batch failed to decode: %v", err)
		}
		if gotShard != shard || len(got) != len(in) {
			t.Fatalf("structured batch shape: shard %d→%d, %d→%d events", shard, gotShard, len(in), len(got))
		}
		for i := range in {
			if got[i] != in[i] {
				t.Fatalf("event %d not bit-exact:\n got %+v\nwant %+v", i, got[i], in[i])
			}
		}
	})
}

// FuzzCheckpointDecode feeds arbitrary bytes to the checkpoint decoder
// (must error or succeed, never panic) and asserts that anything that
// decodes re-encodes to a payload that decodes to the same value.
func FuzzCheckpointDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add(AppendCheckpoint(nil, &Checkpoint{
		WorkerID: 2, Gate: 4096, Batches: 17, Events: 900,
		Shards: []ShardCheckpoint{
			{Shard: 2, L2: []byte{1, 0, 42}, Pending: []event.Event{
				{Kind: event.KReadShared, Core: 1, Time: 4100, Seq: 3, Addr: 0x80},
			}},
			{Shard: 6},
		},
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCheckpoint(data)
		if err != nil {
			return
		}
		re := AppendCheckpoint(nil, c)
		c2, err := DecodeCheckpoint(re)
		if err != nil {
			t.Fatalf("re-encode of valid checkpoint failed to decode: %v", err)
		}
		if c2.WorkerID != c.WorkerID || c2.Gate != c.Gate || c2.Batches != c.Batches ||
			c2.Events != c.Events || len(c2.Shards) != len(c.Shards) {
			t.Fatalf("re-encode changed checkpoint: %+v → %+v", c, c2)
		}
	})
}

// FuzzFrameEnvelope feeds arbitrary bytes to the frame reader as a raw
// inbound stream: every outcome must be a clean error or a frame whose
// payload checksum verified — never a panic, and never a huge
// allocation (MaxFrame bounds the length prefix). A mutated copy of a
// valid frame exercises the corrupt path: if the header survived intact
// but payload bytes changed, the reader must return CorruptFrameError.
func FuzzFrameEnvelope(f *testing.F) {
	valid := func(typ byte, payload []byte) []byte {
		var buf bytes.Buffer
		c := NewConn(nopTransport{w: &buf})
		c.WriteFrame(typ, payload)
		c.Flush()
		return buf.Bytes()
	}
	f.Add(valid(FEvents, []byte{1, 2, 3}), byte(0))
	f.Add(valid(FGate, []byte{0, 0, 0, 0, 0, 0, 0, 1}), byte(9))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, byte(0))
	f.Add([]byte{}, byte(3))

	f.Fuzz(func(t *testing.T, stream []byte, flip byte) {
		// Arm 1: the raw bytes as an inbound stream.
		c := NewConn(nopTransport{r: bytes.NewReader(stream)})
		for {
			if _, err := c.ReadFrame(); err != nil {
				break
			}
		}

		// Arm 2: frame the stream as a payload, flip one byte of the
		// encoded result, and require a structured error (or, if the flip
		// hit nothing — zero XOR — a clean read).
		if len(stream) > MaxFrame {
			return
		}
		enc := valid(FReplies, stream)
		pos := int(flip) % len(enc)
		mut := append([]byte(nil), enc...)
		mut[pos] ^= 1 + flip%255
		r := NewConn(nopTransport{r: bytes.NewReader(mut)})
		_, err := r.ReadFrame()
		if pos >= frameHeader {
			// Payload-only damage: header intact, so this must surface as a
			// checksum failure naming the frame type and offset 0.
			var cfe *CorruptFrameError
			if !errors.As(err, &cfe) {
				t.Fatalf("payload flip at %d not caught: %v", pos, err)
			}
			if cfe.FrameType != FReplies || cfe.Offset != 0 {
				t.Fatalf("corrupt error misattributed: type %s offset %d", FrameName(cfe.FrameType), cfe.Offset)
			}
		} else if err == nil && pos != 0 {
			// Header damage may legitimately fail as a short read, a length
			// error, or a checksum error — but flipping length/CRC bytes can
			// never yield a clean frame. (pos 0 changes only the type byte,
			// which is not checksummed.)
			t.Fatalf("header flip at %d read cleanly", pos)
		}
	})
}
