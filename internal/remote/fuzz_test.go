package remote

import (
	"encoding/binary"
	"testing"

	"slacksim/internal/event"
)

// FuzzBatchCodecRoundTrip drives the codec from both ends: the input
// bytes are decoded as a hostile payload (must never panic, may error),
// and separately interpreted as a generator for a structured batch that
// must encode→decode bit-exact.
func FuzzBatchCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00})
	f.Add(AppendBatch(nil, 1, []event.Event{
		{Kind: event.KReadExcl, Core: 3, Time: 1000, Seq: 12, Addr: 0x4040,
			VictimAddr: 0x8080, VictimFlags: event.VictimValid | event.VictimDirty},
		{Kind: event.KFill, Core: 3, Time: 1010, Seq: 12, Addr: 0x4040, Aux: 2,
			ReqTime: 1000, SendNS: 123456},
	}))
	f.Add(AppendBatch(nil, 7, []event.Event{
		{Kind: event.KSyscall, Core: 0, Time: 5, Seq: 1, Aux: 9,
			Args: [4]int64{1, -2, 3, -4}, Flag: true},
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Arm 1: arbitrary bytes are a batch payload. Decode must return
		// cleanly — an error is fine, a panic or hang is the bug.
		if _, evs, err := DecodeBatch(data, nil); err == nil {
			// A payload that decodes must re-encode to an equivalent batch:
			// decode(encode(decode(x))) == decode(x).
			sh, _, _ := DecodeBatch(data, nil)
			re := AppendBatch(nil, sh, evs)
			sh2, evs2, err2 := DecodeBatch(re, nil)
			if err2 != nil {
				t.Fatalf("re-encode of valid batch failed to decode: %v", err2)
			}
			if sh2 != sh || len(evs2) != len(evs) {
				t.Fatalf("re-encode changed shape: shard %d→%d, %d→%d events", sh, sh2, len(evs), len(evs2))
			}
			for i := range evs {
				if evs[i] != evs2[i] {
					t.Fatalf("re-encode changed event %d: %+v → %+v", i, evs[i], evs2[i])
				}
			}
		}

		// Arm 2: the same bytes seed a structured batch that must
		// round-trip exactly.
		var in []event.Event
		for off := 0; off+16 <= len(data) && len(in) < 64; off += 16 {
			w1 := binary.LittleEndian.Uint64(data[off:])
			w2 := binary.LittleEndian.Uint64(data[off+8:])
			ev := event.Event{
				Kind: event.Kind(1 + w1%uint64(event.KStop)),
				Core: int32(w1 >> 8 & 0xFFFF),
				Time: int64(w2),
				Seq:  int64(w1 >> 24),
				Addr: w2 ^ w1,
				Aux:  int64(w1) - int64(w2),
				Flag: w1&1 == 1,
			}
			if w1&2 != 0 {
				ev.VictimAddr = w1
				ev.VictimFlags = uint8(w2 & 3)
			}
			if w1&4 != 0 {
				ev.ReqTime = int64(w2 >> 1)
				ev.SendNS = int64(w1 >> 1)
			}
			if ev.Kind == event.KSyscall {
				ev.Args = [4]int64{int64(w1), int64(w2), -int64(w1), -int64(w2)}
			}
			in = append(in, ev)
		}
		shard := 0
		if len(data) > 0 {
			shard = int(data[0]) % 32
		}
		buf := AppendBatch(nil, shard, in)
		gotShard, got, err := DecodeBatch(buf, nil)
		if err != nil {
			t.Fatalf("structured batch failed to decode: %v", err)
		}
		if gotShard != shard || len(got) != len(in) {
			t.Fatalf("structured batch shape: shard %d→%d, %d→%d events", shard, gotShard, len(in), len(got))
		}
		for i := range in {
			if got[i] != in[i] {
				t.Fatalf("event %d not bit-exact:\n got %+v\nwant %+v", i, got[i], in[i])
			}
		}
	})
}
