package remote

import (
	"encoding/binary"
	"fmt"

	"slacksim/internal/event"
)

// Checkpoint codec: one FCheckpoint payload is
//
//	uvarint worker id
//	uvarint gate            (the gate the worker had fully processed)
//	uvarint batches         (FEvents batches consumed since session start)
//	uvarint events          (events processed since session start)
//	uvarint shard count
//	count × shard:
//	    uvarint shard index
//	    uvarint len(l2 state)   + bytes   (cache.AppendState; empty = fresh)
//	    uvarint len(pending)    + bytes   (AppendBatch of the pending heap,
//	                                       in pop order)
//
// The parent never parses shard bodies — it stores the payload verbatim
// and only reads the header (PeekCheckpoint) to truncate its replay
// journal. The worker parses everything on restore. The determinism
// argument for replay: every event the parent routed after gate g has
// timestamp >= g, so a worker restored to (gate, L2 state, pending heap)
// and re-fed the journaled batches regenerates the identical per-shard
// reply sequence it produced the first time, regardless of how the
// original run's gate passes interleaved with the batches.

// ShardCheckpoint is one shard's slice of a checkpoint.
type ShardCheckpoint struct {
	Shard   int
	L2      []byte        // cache.L2System.AppendState payload; empty = fresh state
	Pending []event.Event // pending heap contents in pop order
}

// Checkpoint is a decoded FCheckpoint payload.
type Checkpoint struct {
	WorkerID int
	Gate     int64
	Batches  int64
	Events   int64
	Shards   []ShardCheckpoint
}

// AppendCheckpoint serializes c onto dst.
func AppendCheckpoint(dst []byte, c *Checkpoint) []byte {
	dst = binary.AppendUvarint(dst, uint64(c.WorkerID))
	dst = binary.AppendUvarint(dst, uint64(c.Gate))
	dst = binary.AppendUvarint(dst, uint64(c.Batches))
	dst = binary.AppendUvarint(dst, uint64(c.Events))
	dst = binary.AppendUvarint(dst, uint64(len(c.Shards)))
	for i := range c.Shards {
		sh := &c.Shards[i]
		dst = binary.AppendUvarint(dst, uint64(sh.Shard))
		dst = binary.AppendUvarint(dst, uint64(len(sh.L2)))
		dst = append(dst, sh.L2...)
		enc := AppendBatch(nil, sh.Shard, sh.Pending)
		dst = binary.AppendUvarint(dst, uint64(len(enc)))
		dst = append(dst, enc...)
	}
	return dst
}

// PeekCheckpoint reads only the header fields the parent needs for
// journal truncation, without touching the shard bodies.
func PeekCheckpoint(payload []byte) (workerID int, gate, batches int64, err error) {
	r := &batchReader{b: payload}
	w, err := r.uvarint()
	if err != nil {
		return 0, 0, 0, err
	}
	g, err := r.uvarint()
	if err != nil {
		return 0, 0, 0, err
	}
	b, err := r.uvarint()
	if err != nil {
		return 0, 0, 0, err
	}
	if w > 1<<20 || g > 1<<62 || b > 1<<40 {
		return 0, 0, 0, fmt.Errorf("remote: implausible checkpoint header (worker %d gate %d batches %d)", w, g, b)
	}
	return int(w), int64(g), int64(b), nil
}

// DecodeCheckpoint parses a full FCheckpoint payload. Like the batch
// codec it validates everything and returns errors, never panics.
func DecodeCheckpoint(payload []byte) (*Checkpoint, error) {
	r := &batchReader{b: payload}
	c := &Checkpoint{}
	u, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if u > 1<<20 {
		return nil, fmt.Errorf("remote: implausible checkpoint worker id %d", u)
	}
	c.WorkerID = int(u)
	if u, err = r.uvarint(); err != nil {
		return nil, err
	}
	c.Gate = int64(u)
	if u, err = r.uvarint(); err != nil {
		return nil, err
	}
	c.Batches = int64(u)
	if u, err = r.uvarint(); err != nil {
		return nil, err
	}
	c.Events = int64(u)
	count, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if count > uint64(len(payload)) {
		return nil, fmt.Errorf("remote: checkpoint claims %d shards in %d bytes", count, len(payload))
	}
	for i := uint64(0); i < count; i++ {
		var sh ShardCheckpoint
		if u, err = r.uvarint(); err != nil {
			return nil, err
		}
		if u > 1<<20 {
			return nil, fmt.Errorf("remote: implausible checkpoint shard index %d", u)
		}
		sh.Shard = int(u)
		l2, err := r.bytes()
		if err != nil {
			return nil, err
		}
		// Copy: the payload usually aliases a connection read buffer.
		if len(l2) > 0 {
			sh.L2 = append([]byte(nil), l2...)
		}
		penc, err := r.bytes()
		if err != nil {
			return nil, err
		}
		pshard, pending, err := DecodeBatch(penc, nil)
		if err != nil {
			return nil, fmt.Errorf("remote: checkpoint shard %d pending: %w", sh.Shard, err)
		}
		if pshard != sh.Shard {
			return nil, fmt.Errorf("remote: checkpoint pending batch labeled shard %d inside shard %d", pshard, sh.Shard)
		}
		sh.Pending = pending
		c.Shards = append(c.Shards, sh)
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("remote: %d trailing bytes after checkpoint", len(payload)-r.off)
	}
	return c, nil
}

// bytes reads a uvarint length followed by that many bytes, returning a
// slice aliasing the payload.
func (r *batchReader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)-r.off) {
		return nil, fmt.Errorf("remote: %d-byte field at offset %d exceeds %d remaining", n, r.off, len(r.b)-r.off)
	}
	out := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return out, nil
}
