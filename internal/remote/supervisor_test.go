package remote

import (
	"testing"
	"time"
)

func TestBackoffDelay(t *testing.T) {
	b := Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second}
	want := []time.Duration{
		50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 800 * time.Millisecond, 1600 * time.Millisecond,
		2 * time.Second, 2 * time.Second,
	}
	for i, w := range want {
		if got := b.Delay(i + 1); got != w {
			t.Fatalf("attempt %d: delay %v, want %v", i+1, got, w)
		}
	}
	// Degenerate inputs fall back to defaults / clamp.
	if got := (Backoff{}).Delay(1); got != DefaultBackoff.Base {
		t.Fatalf("zero backoff first delay %v, want %v", got, DefaultBackoff.Base)
	}
	if got := (Backoff{Base: time.Hour, Max: time.Second}).Delay(1); got != time.Second {
		t.Fatalf("base above max: %v, want 1s", got)
	}
	if got := b.Delay(0); got != b.Base {
		t.Fatalf("attempt 0 clamps to 1: %v", got)
	}
	// A huge attempt count must not overflow into a negative delay.
	if got := b.Delay(1 << 20); got != b.Max {
		t.Fatalf("huge attempt: %v, want max", got)
	}
}

// TestSupervisorLifecycle drives the full state machine through an
// incident with a fake clock: late heartbeats, death, a failed retry, a
// successful one, then a second incident that exhausts the budget.
func TestSupervisorLifecycle(t *testing.T) {
	s := NewSupervisor(2, Backoff{Base: 10 * time.Millisecond, Max: 40 * time.Millisecond})
	hb := 100 * time.Millisecond
	if s.State() != SupHealthy {
		t.Fatalf("initial state %v", s.State())
	}

	// Fake clock: the verdicts depend only on the elapsed time we feed in.
	if v := s.CheckBeat(hb/2, hb); v != BeatOK || s.State() != SupHealthy {
		t.Fatalf("fresh beat: verdict %v state %v", v, s.State())
	}
	if v := s.CheckBeat(3*hb, hb); v != BeatLate || s.State() != SupSuspect {
		t.Fatalf("late beat: verdict %v state %v", v, s.State())
	}
	// Frames resume: suspect clears.
	if v := s.CheckBeat(hb/2, hb); v != BeatOK || s.State() != SupHealthy {
		t.Fatalf("recovered beat: verdict %v state %v", v, s.State())
	}
	if v := s.CheckBeat(5*hb, hb); v != BeatDead || s.State() != SupSuspect {
		t.Fatalf("dead beat: verdict %v state %v", v, s.State())
	}
	// Heartbeats disabled: always OK.
	if v := s.CheckBeat(time.Hour, 0); v != BeatOK {
		t.Fatalf("disabled heartbeat verdict %v", v)
	}

	// Incident 1: two attempts within budget, second succeeds.
	s.Failure()
	if s.State() != SupReconnecting {
		t.Fatalf("after failure: %v", s.State())
	}
	d1, ok := s.NextAttempt()
	if !ok || d1 != 10*time.Millisecond {
		t.Fatalf("attempt 1: delay %v ok %v", d1, ok)
	}
	d2, ok := s.NextAttempt()
	if !ok || d2 != 20*time.Millisecond {
		t.Fatalf("attempt 2: delay %v ok %v", d2, ok)
	}
	s.Recovered()
	if s.State() != SupHealthy || s.Reconnects() != 1 {
		t.Fatalf("after recovery: state %v reconnects %d", s.State(), s.Reconnects())
	}

	// Incident 2: the attempt counter reset on recovery, so the budget is
	// fresh; exhaust it.
	s.Failure()
	if _, ok := s.NextAttempt(); !ok {
		t.Fatal("attempt 1 of incident 2 refused — budget did not reset")
	}
	if _, ok := s.NextAttempt(); !ok {
		t.Fatal("attempt 2 of incident 2 refused")
	}
	if _, ok := s.NextAttempt(); ok {
		t.Fatal("attempt 3 allowed past budget 2")
	}
	s.Abandon()
	if s.State() != SupAbandoned {
		t.Fatalf("after abandon: %v", s.State())
	}
	// Abandoned is terminal: a late Failure must not resurrect it.
	s.Failure()
	if s.State() != SupAbandoned {
		t.Fatalf("failure resurrected abandoned worker: %v", s.State())
	}
}

func TestSupervisorZeroBudget(t *testing.T) {
	s := NewSupervisor(0, Backoff{})
	s.Failure()
	if _, ok := s.NextAttempt(); ok {
		t.Fatal("zero budget allowed an attempt")
	}
}
