package remote

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Supervision state machine for the parent's per-worker supervisor
// goroutine (internal/core/remote.go). The decision logic lives here,
// decoupled from goroutines, connections, and the wall clock, so the
// backoff/budget/staleness rules are unit-testable with a fake clock:
// the caller feeds in elapsed durations and acts on the returned
// verdicts; this type never sleeps or reads time itself.

// SupervisorState is one worker's position in the supervision lifecycle.
type SupervisorState int32

const (
	// SupHealthy: connected, frames flowing.
	SupHealthy SupervisorState = iota
	// SupSuspect: no frame for a suspicious interval (heartbeats late);
	// the supervisor is watching but has not yet torn the connection down.
	SupSuspect
	// SupReconnecting: the connection is down and redial attempts are in
	// progress (bounded by the retry budget, paced by the backoff).
	SupReconnecting
	// SupAbandoned: the retry budget is exhausted; the worker's shards
	// have been (or are being) migrated into the parent's in-process
	// path.
	SupAbandoned
)

func (s SupervisorState) String() string {
	switch s {
	case SupHealthy:
		return "healthy"
	case SupSuspect:
		return "suspect"
	case SupReconnecting:
		return "reconnecting"
	case SupAbandoned:
		return "abandoned"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Backoff is a capped exponential backoff policy.
type Backoff struct {
	Base time.Duration // delay before the first retry
	Max  time.Duration // cap on the delay growth
}

// DefaultBackoff paces redials fast enough that a restarted worker is
// picked up well inside the recovery deadline (2× stall timeout), while
// the cap keeps a flapping worker from being hammered.
var DefaultBackoff = Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second}

// Delay returns the pause before retry attempt (1-based): Base doubling
// per attempt, capped at Max.
func (b Backoff) Delay(attempt int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = DefaultBackoff.Base
	}
	max := b.Max
	if max <= 0 {
		max = DefaultBackoff.Max
	}
	if attempt < 1 {
		attempt = 1
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= max {
			return max
		}
	}
	if d > max {
		d = max
	}
	return d
}

// BeatVerdict classifies how stale a worker's inbound stream is.
type BeatVerdict int

const (
	// BeatOK: frames (or heartbeats) are arriving on schedule.
	BeatOK BeatVerdict = iota
	// BeatLate: past the suspect threshold (2 intervals); keep watching.
	BeatLate
	// BeatDead: past the dead threshold (4 intervals); tear the
	// connection down and recover.
	BeatDead
)

// Supervisor tracks one worker's supervision state: the lifecycle state
// (atomic, so the introspection server and manager read it concurrently
// with the supervisor goroutine), the per-incident retry attempt count
// against a bounded budget, and the cumulative reconnect counter.
type Supervisor struct {
	budget  int
	backoff Backoff

	state      atomic.Int32
	attempt    int // consecutive failures in the current incident
	reconnects atomic.Int64
}

// NewSupervisor builds a supervisor with the given retry budget (attempts
// per incident; <= 0 means no retries — first failure abandons) and
// backoff policy (zero value = DefaultBackoff).
func NewSupervisor(budget int, b Backoff) *Supervisor {
	return &Supervisor{budget: budget, backoff: b}
}

// State reads the lifecycle state (any goroutine).
func (s *Supervisor) State() SupervisorState { return SupervisorState(s.state.Load()) }

// Reconnects reads the cumulative successful-recovery count.
func (s *Supervisor) Reconnects() int64 { return s.reconnects.Load() }

// Suspect marks a late worker (no effect once reconnecting/abandoned).
func (s *Supervisor) Suspect() {
	s.state.CompareAndSwap(int32(SupHealthy), int32(SupSuspect))
}

// ClearSuspect returns a suspect worker to healthy (frames resumed).
func (s *Supervisor) ClearSuspect() {
	s.state.CompareAndSwap(int32(SupSuspect), int32(SupHealthy))
}

// CheckBeat classifies the time since the last received frame against
// the heartbeat interval, applying the Healthy↔Suspect transition as a
// side effect. Interval <= 0 disables staleness detection entirely (the
// verdict is then always BeatOK; connection errors still drive
// recovery).
func (s *Supervisor) CheckBeat(sinceLastFrame, interval time.Duration) BeatVerdict {
	if interval <= 0 {
		return BeatOK
	}
	switch {
	case sinceLastFrame > 4*interval:
		s.Suspect()
		return BeatDead
	case sinceLastFrame > 2*interval:
		s.Suspect()
		return BeatLate
	default:
		s.ClearSuspect()
		return BeatOK
	}
}

// Failure moves the supervisor into reconnecting (the connection is
// down). Calling it while already reconnecting is harmless.
func (s *Supervisor) Failure() {
	if s.State() != SupAbandoned {
		s.state.Store(int32(SupReconnecting))
	}
}

// NextAttempt consumes one unit of the retry budget and returns the
// backoff delay to wait before that attempt. ok is false when the budget
// is exhausted — the caller must Abandon (and migrate the shards).
func (s *Supervisor) NextAttempt() (delay time.Duration, ok bool) {
	if s.attempt >= s.budget {
		return 0, false
	}
	s.attempt++
	return s.backoff.Delay(s.attempt), true
}

// Recovered records a successful resume: the incident's attempt count
// resets (the budget is per incident, not per run) and the worker is
// healthy again.
func (s *Supervisor) Recovered() {
	s.attempt = 0
	s.reconnects.Add(1)
	s.state.Store(int32(SupHealthy))
}

// Abandon marks the worker permanently lost.
func (s *Supervisor) Abandon() { s.state.Store(int32(SupAbandoned)) }
