package remote

import (
	"encoding/binary"
	"fmt"

	"slacksim/internal/event"
)

// Batch codec: one FEvents/FReplies payload is
//
//	uvarint shard
//	uvarint count
//	count × event
//
// where each event is a kind byte, a presence byte, a zigzag core, a
// zigzag timestamp delta against the previous event in the batch, then
// only the fields the presence byte declares. Batches come off Ring
// drains in push order, so consecutive timestamps are close and the
// delta usually fits one byte; most fields (victim piggybacks, latency
// stamps, syscall args) are zero on the hot path and cost only their
// presence bit. Decode validates everything — kind range, count bounds,
// trailing bytes — and returns errors, never panics: the fuzz target
// FuzzBatchCodecRoundTrip feeds it arbitrary bytes.

// Presence bits (the per-event second byte).
const (
	pSeq = 1 << iota
	pAddr
	pAux
	pFlag
	pVictim
	pReqTime
	pSendNS
	pArgs
)

func zig(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzig(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// AppendBatch delta-encodes evs for shard onto dst.
func AppendBatch(dst []byte, shard int, evs []event.Event) []byte {
	dst = binary.AppendUvarint(dst, uint64(shard))
	dst = binary.AppendUvarint(dst, uint64(len(evs)))
	prev := int64(0)
	for i := range evs {
		ev := &evs[i]
		var p byte
		if ev.Seq != 0 {
			p |= pSeq
		}
		if ev.Addr != 0 {
			p |= pAddr
		}
		if ev.Aux != 0 {
			p |= pAux
		}
		if ev.Flag {
			p |= pFlag
		}
		if ev.VictimAddr != 0 || ev.VictimFlags != 0 {
			p |= pVictim
		}
		if ev.ReqTime != 0 {
			p |= pReqTime
		}
		if ev.SendNS != 0 {
			p |= pSendNS
		}
		if ev.Args != [4]int64{} {
			p |= pArgs
		}
		dst = append(dst, byte(ev.Kind), p)
		dst = binary.AppendUvarint(dst, zig(int64(ev.Core)))
		dst = binary.AppendUvarint(dst, zig(ev.Time-prev))
		prev = ev.Time
		if p&pSeq != 0 {
			dst = binary.AppendUvarint(dst, uint64(ev.Seq))
		}
		if p&pAddr != 0 {
			dst = binary.AppendUvarint(dst, ev.Addr)
		}
		if p&pAux != 0 {
			dst = binary.AppendUvarint(dst, zig(ev.Aux))
		}
		if p&pVictim != 0 {
			dst = binary.AppendUvarint(dst, ev.VictimAddr)
			dst = append(dst, ev.VictimFlags)
		}
		if p&pReqTime != 0 {
			dst = binary.AppendUvarint(dst, zig(ev.ReqTime))
		}
		if p&pSendNS != 0 {
			dst = binary.AppendUvarint(dst, zig(ev.SendNS))
		}
		if p&pArgs != 0 {
			for _, a := range ev.Args {
				dst = binary.AppendUvarint(dst, zig(a))
			}
		}
	}
	return dst
}

// batchReader walks a payload with bounds checking.
type batchReader struct {
	b   []byte
	off int
}

func (r *batchReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("remote: truncated varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *batchReader) byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, fmt.Errorf("remote: truncated batch at offset %d", r.off)
	}
	c := r.b[r.off]
	r.off++
	return c, nil
}

// DecodeBatch decodes an FEvents/FReplies payload, appending the events
// onto dst (pass dst[:0] to reuse a buffer).
func DecodeBatch(payload []byte, dst []event.Event) (shard int, evs []event.Event, err error) {
	r := &batchReader{b: payload}
	sh, err := r.uvarint()
	if err != nil {
		return 0, dst, err
	}
	if sh > 1<<20 {
		return 0, dst, fmt.Errorf("remote: implausible shard index %d", sh)
	}
	count, err := r.uvarint()
	if err != nil {
		return 0, dst, err
	}
	// Each event costs at least 4 bytes (kind, presence, core, delta), so
	// a count beyond remaining/4 is corrupt — reject before allocating.
	if remaining := len(payload) - r.off; count > uint64(remaining)/4+1 {
		return 0, dst, fmt.Errorf("remote: batch claims %d events in %d bytes", count, remaining)
	}
	evs = dst
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		kind, err := r.byte()
		if err != nil {
			return 0, dst, err
		}
		if event.Kind(kind) == event.KindInvalid || event.Kind(kind) > event.KStop {
			return 0, dst, fmt.Errorf("remote: invalid event kind %d", kind)
		}
		p, err := r.byte()
		if err != nil {
			return 0, dst, err
		}
		var ev event.Event
		ev.Kind = event.Kind(kind)
		u, err := r.uvarint()
		if err != nil {
			return 0, dst, err
		}
		core := unzig(u)
		if core < -1 || core > 1<<20 {
			return 0, dst, fmt.Errorf("remote: implausible core %d", core)
		}
		ev.Core = int32(core)
		if u, err = r.uvarint(); err != nil {
			return 0, dst, err
		}
		ev.Time = prev + unzig(u)
		prev = ev.Time
		if p&pSeq != 0 {
			if u, err = r.uvarint(); err != nil {
				return 0, dst, err
			}
			ev.Seq = int64(u)
		}
		if p&pAddr != 0 {
			if ev.Addr, err = r.uvarint(); err != nil {
				return 0, dst, err
			}
		}
		if p&pAux != 0 {
			if u, err = r.uvarint(); err != nil {
				return 0, dst, err
			}
			ev.Aux = unzig(u)
		}
		ev.Flag = p&pFlag != 0
		if p&pVictim != 0 {
			if ev.VictimAddr, err = r.uvarint(); err != nil {
				return 0, dst, err
			}
			if ev.VictimFlags, err = r.byte(); err != nil {
				return 0, dst, err
			}
		}
		if p&pReqTime != 0 {
			if u, err = r.uvarint(); err != nil {
				return 0, dst, err
			}
			ev.ReqTime = unzig(u)
		}
		if p&pSendNS != 0 {
			if u, err = r.uvarint(); err != nil {
				return 0, dst, err
			}
			ev.SendNS = unzig(u)
		}
		if p&pArgs != 0 {
			for a := 0; a < 4; a++ {
				if u, err = r.uvarint(); err != nil {
					return 0, dst, err
				}
				ev.Args[a] = unzig(u)
			}
		}
		evs = append(evs, ev)
	}
	if r.off != len(payload) {
		return 0, dst, fmt.Errorf("remote: %d trailing bytes after batch", len(payload)-r.off)
	}
	return int(sh), evs, nil
}
