package remote

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"slacksim/internal/event"
)

func randEvent(rng *rand.Rand) event.Event {
	ev := event.Event{
		Kind: event.Kind(1 + rng.Intn(int(event.KStop))),
		Core: int32(rng.Intn(64)),
		Time: rng.Int63n(1 << 40),
		Seq:  rng.Int63n(1 << 30),
	}
	if rng.Intn(2) == 0 {
		ev.Addr = rng.Uint64()
	}
	if rng.Intn(4) == 0 {
		ev.Aux = rng.Int63() - rng.Int63()
	}
	if rng.Intn(8) == 0 {
		ev.Flag = true
	}
	if rng.Intn(8) == 0 {
		ev.VictimAddr = rng.Uint64()
		ev.VictimFlags = uint8(rng.Intn(4))
	}
	if rng.Intn(4) == 0 {
		ev.ReqTime = rng.Int63n(1 << 40)
		ev.SendNS = rng.Int63()
	}
	if ev.Kind == event.KSyscall {
		for i := range ev.Args {
			ev.Args[i] = rng.Int63() - rng.Int63()
		}
	}
	return ev
}

func TestBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(64)
		in := make([]event.Event, n)
		for i := range in {
			in[i] = randEvent(rng)
		}
		shard := rng.Intn(16)
		buf := AppendBatch(nil, shard, in)
		gotShard, got, err := DecodeBatch(buf, nil)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if gotShard != shard {
			t.Fatalf("trial %d: shard %d, want %d", trial, gotShard, shard)
		}
		if len(got) != len(in) {
			t.Fatalf("trial %d: %d events, want %d", trial, len(got), len(in))
		}
		for i := range in {
			if got[i] != in[i] {
				t.Fatalf("trial %d event %d:\n got %+v\nwant %+v", trial, i, got[i], in[i])
			}
		}
	}
}

func TestBatchRoundTripEmpty(t *testing.T) {
	buf := AppendBatch(nil, 3, nil)
	shard, evs, err := DecodeBatch(buf, nil)
	if err != nil || shard != 3 || len(evs) != 0 {
		t.Fatalf("empty batch: shard=%d evs=%d err=%v", shard, len(evs), err)
	}
}

// TestBatchRoundTripExtremes pins the codec on boundary values: the delta
// encoding must survive timestamps that jump across the full int64 range
// within one batch.
func TestBatchRoundTripExtremes(t *testing.T) {
	in := []event.Event{
		{Kind: event.KFill, Core: 0, Time: math.MaxInt64, Seq: math.MaxInt64, Addr: math.MaxUint64},
		{Kind: event.KInv, Core: 1 << 19, Time: 0},
		{Kind: event.KSyscall, Core: 0, Time: 1, Aux: math.MinInt64,
			Args: [4]int64{math.MinInt64, math.MaxInt64, -1, 1}},
		{Kind: event.KStop, Core: -1, Time: math.MaxInt64, SendNS: math.MinInt64, ReqTime: -5},
	}
	buf := AppendBatch(nil, 0, in)
	_, got, err := DecodeBatch(buf, nil)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("extremes:\n got %+v\nwant %+v", got, in)
	}
}

func TestDecodeBatchReusesDst(t *testing.T) {
	in := []event.Event{{Kind: event.KFill, Core: 2, Time: 100, Seq: 7}}
	buf := AppendBatch(nil, 1, in)
	scratch := make([]event.Event, 0, 8)
	_, evs, err := DecodeBatch(buf, scratch)
	if err != nil || len(evs) != 1 || evs[0] != in[0] {
		t.Fatalf("reuse: evs=%+v err=%v", evs, err)
	}
}

func TestDecodeBatchRejectsCorruption(t *testing.T) {
	in := make([]event.Event, 8)
	rng := rand.New(rand.NewSource(7))
	for i := range in {
		in[i] = randEvent(rng)
	}
	buf := AppendBatch(nil, 2, in)

	// Every truncation point must error, not panic.
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeBatch(buf[:cut], nil); err == nil {
			// A prefix that happens to parse as a complete smaller batch
			// would have trailing-byte or count mismatches; none should
			// decode cleanly.
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(buf))
		}
	}

	// Trailing garbage must be rejected.
	if _, _, err := DecodeBatch(append(append([]byte{}, buf...), 0xFF), nil); err == nil {
		t.Fatal("trailing byte decoded without error")
	}

	// An absurd count must be rejected before allocation.
	huge := AppendBatch(nil, 0, nil)
	huge[1] = 0xFF // rewrite count varint's first byte
	huge = append(huge, 0xFF, 0xFF, 0xFF, 0x7F)
	if _, _, err := DecodeBatch(huge, nil); err == nil {
		t.Fatal("absurd count decoded without error")
	}

	// Invalid kind.
	bad := AppendBatch(nil, 0, []event.Event{{Kind: event.KFill, Time: 1}})
	for i := range bad {
		if bad[i] == byte(event.KFill) {
			bad[i] = 0xEE
			break
		}
	}
	if _, _, err := DecodeBatch(bad, nil); err == nil {
		t.Fatal("invalid kind decoded without error")
	}
}
