package remote

import (
	"bytes"
	"errors"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"slacksim/internal/event"
)

// pipePair returns two framed connections over an in-memory duplex pipe.
func pipePair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return NewConn(a), NewConn(b)
}

func readOne(t *testing.T, c *Conn) (Frame, error) {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := c.ReadFrame()
	if err == nil {
		// Payload aliases the read buffer; copy for assertions.
		f.Payload = append([]byte(nil), f.Payload...)
	}
	return f, err
}

func TestFrameCRCRoundTrip(t *testing.T) {
	a, b := pipePair(t)
	payloads := [][]byte{nil, {}, {0x00}, bytes.Repeat([]byte{0xAB}, 4096)}
	go func() {
		for i, p := range payloads {
			a.WriteFrame(byte(i+1), p)
		}
		a.Flush()
	}()
	for i, p := range payloads {
		f, err := readOne(t, b)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Type != byte(i+1) || !bytes.Equal(f.Payload, p) {
			t.Fatalf("frame %d: type %d payload %d bytes", i, f.Type, len(f.Payload))
		}
	}
}

// TestFrameCorruptionDetected flips one payload byte on the wire and
// asserts the reader returns a structured CorruptFrameError naming the
// frame type and the stream offset of the corrupt frame.
func TestFrameCorruptionDetected(t *testing.T) {
	// Frame 1 is clean, frame 2's payload is corrupted in transit: the
	// error's offset must point at frame 2's header, not at zero.
	var wire bytes.Buffer
	c := NewConn(nopTransport{w: &wire})
	if err := c.WriteFrame(FGate, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFrame(FReplies, []byte("hello replies")); err != nil {
		t.Fatal(err)
	}
	c.Flush()
	raw := wire.Bytes()
	frame2 := frameHeader + 8
	raw[frame2+frameHeader+2] ^= 0x40 // flip a bit inside frame 2's payload

	r := NewConn(nopTransport{r: bytes.NewReader(raw)})
	if _, err := r.ReadFrame(); err != nil {
		t.Fatalf("clean frame 1: %v", err)
	}
	_, err := r.ReadFrame()
	var cfe *CorruptFrameError
	if !errors.As(err, &cfe) {
		t.Fatalf("corrupt frame error type: %v", err)
	}
	if cfe.FrameType != FReplies {
		t.Fatalf("corrupt frame type %s, want replies", FrameName(cfe.FrameType))
	}
	if cfe.Offset != int64(frame2) {
		t.Fatalf("corrupt frame offset %d, want %d", cfe.Offset, frame2)
	}
	if !strings.Contains(err.Error(), "replies") || !strings.Contains(err.Error(), "offset") {
		t.Fatalf("error text lacks frame name/offset: %q", err)
	}
}

// TestInjectRecvCorrupt pins the FrameCorrupt fault hook: an armed
// connection fails exactly one checksum, then reads cleanly again.
func TestInjectRecvCorrupt(t *testing.T) {
	var wire bytes.Buffer
	w := NewConn(nopTransport{w: &wire})
	w.WriteFrame(FHeartbeat, nil)
	w.WriteFrame(FGate, []byte{8, 7, 6, 5, 4, 3, 2, 1})
	w.Flush()

	r := NewConn(nopTransport{r: bytes.NewReader(wire.Bytes())})
	r.InjectRecvCorrupt()
	_, err := r.ReadFrame()
	var cfe *CorruptFrameError
	if !errors.As(err, &cfe) || cfe.FrameType != FHeartbeat {
		t.Fatalf("injected corruption: %v", err)
	}
	if f, err := r.ReadFrame(); err != nil || f.Type != FGate {
		t.Fatalf("read after one-shot corruption: %v", err)
	}
}

// nopTransport adapts a reader/writer into a Transport for wire-level
// tests (deadlines are no-ops; nothing blocks on a bytes.Reader).
type nopTransport struct {
	r *bytes.Reader
	w *bytes.Buffer
}

func (n nopTransport) Read(p []byte) (int, error) {
	if n.r == nil {
		return 0, errors.New("not readable")
	}
	return n.r.Read(p)
}

func (n nopTransport) Write(p []byte) (int, error) {
	if n.w == nil {
		return 0, errors.New("not writable")
	}
	return n.w.Write(p)
}

func (nopTransport) Close() error                       { return nil }
func (nopTransport) SetReadDeadline(time.Time) error    { return nil }
func (nopTransport) SetWriteDeadline(t time.Time) error { return nil }

func TestCheckpointRoundTrip(t *testing.T) {
	in := &Checkpoint{
		WorkerID: 3,
		Gate:     123456,
		Batches:  789,
		Events:   4242,
		Shards: []ShardCheckpoint{
			{Shard: 1, L2: []byte{1, 9, 0, 0, 7}, Pending: []event.Event{
				{Kind: event.KReadShared, Core: 2, Time: 123500, Seq: 9, Addr: 0x1000},
				{Kind: event.KReadExcl, Core: 0, Time: 123600, Seq: 4, Addr: 0x2040,
					VictimAddr: 0x99c0, VictimFlags: event.VictimValid},
			}},
			{Shard: 3}, // fresh shard: no state, no pending
		},
	}
	payload := AppendCheckpoint(nil, in)

	wid, gate, batches, err := PeekCheckpoint(payload)
	if err != nil || wid != 3 || gate != 123456 || batches != 789 {
		t.Fatalf("peek: worker=%d gate=%d batches=%d err=%v", wid, gate, batches, err)
	}

	out, err := DecodeCheckpoint(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.WorkerID != in.WorkerID || out.Gate != in.Gate || out.Batches != in.Batches || out.Events != in.Events {
		t.Fatalf("header mismatch: %+v", out)
	}
	if len(out.Shards) != 2 {
		t.Fatalf("%d shards", len(out.Shards))
	}
	if out.Shards[0].Shard != 1 || !bytes.Equal(out.Shards[0].L2, in.Shards[0].L2) {
		t.Fatalf("shard 0 mismatch: %+v", out.Shards[0])
	}
	if !reflect.DeepEqual(out.Shards[0].Pending, in.Shards[0].Pending) {
		t.Fatalf("pending mismatch:\n got %+v\nwant %+v", out.Shards[0].Pending, in.Shards[0].Pending)
	}
	if out.Shards[1].Shard != 3 || len(out.Shards[1].L2) != 0 || len(out.Shards[1].Pending) != 0 {
		t.Fatalf("fresh shard mismatch: %+v", out.Shards[1])
	}
}

func TestCheckpointDecodeRejectsCorruption(t *testing.T) {
	payload := AppendCheckpoint(nil, &Checkpoint{
		WorkerID: 1, Gate: 10, Batches: 2, Events: 5,
		Shards: []ShardCheckpoint{{Shard: 0, L2: []byte{1, 2, 3},
			Pending: []event.Event{{Kind: event.KReadShared, Core: 1, Time: 11, Seq: 1}}}},
	})
	for cut := 0; cut < len(payload); cut++ {
		if _, err := DecodeCheckpoint(payload[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(payload))
		}
	}
	if _, err := DecodeCheckpoint(append(append([]byte{}, payload...), 0xFF)); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
}
