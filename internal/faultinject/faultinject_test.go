package faultinject

import (
	"strings"
	"testing"

	"slacksim/internal/event"
)

func TestFaultTargetEncoding(t *testing.T) {
	for s := 0; s < 4; s++ {
		id := ShardWorker(s)
		if id >= 0 {
			t.Fatalf("ShardWorker(%d) = %d, want negative", s, id)
		}
		got, ok := IsShard(id)
		if !ok || got != s {
			t.Fatalf("IsShard(ShardWorker(%d)) = %d,%v", s, got, ok)
		}
	}
	if _, ok := IsShard(Manager); ok {
		t.Error("Manager decoded as a shard worker")
	}
	if _, ok := IsShard(0); ok {
		t.Error("core 0 decoded as a shard worker")
	}
}

func TestFaultMatches(t *testing.T) {
	all := Fault{Kind: DelayDelivery, Dur: 1}
	if !all.Matches(event.KInv) || !all.Matches(event.KFill) {
		t.Error("empty filter must match everything")
	}
	inv := Fault{Kind: DelayDelivery, Dur: 1, EvKinds: []event.Kind{event.KInv}}
	if !inv.Matches(event.KInv) || inv.Matches(event.KFill) {
		t.Error("filter not honoured")
	}
}

func TestFaultValidation(t *testing.T) {
	good := []Fault{
		{Kind: Panic, Core: 0},
		{Kind: Panic, Core: Manager},
		{Kind: Panic, Core: ShardWorker(1)},
		{Kind: Stall, Core: 3},
		{Kind: RingFlood, Core: 0, At: 100},
		{Kind: ClockWarp, Core: 0, At: 100, Dur: 10},
		{Kind: DelayDelivery, Core: 0, Dur: 5},
		{Kind: ConnDrop, Core: ShardWorker(0), At: 100},
		{Kind: HeartbeatStall, Core: ShardWorker(1), At: 100},
		{Kind: FrameCorrupt, Core: ShardWorker(0), At: 100},
		{Kind: WorkerKill, Core: ShardWorker(1), At: 100},
	}
	for _, f := range good {
		if err := f.Validate(4, 2); err != nil {
			t.Errorf("%v rejected: %v", f, err)
		}
	}
	bad := []Fault{
		{Kind: Panic, Core: 4},                     // core out of range
		{Kind: Panic, Core: ShardWorker(2)},        // shard out of range
		{Kind: Stall, Core: Manager},               // manager is panic-only
		{Kind: ClockWarp, Core: ShardWorker(0)},    // shards are panic-only
		{Kind: ClockWarp, Core: 0},                 // missing Dur
		{Kind: DelayDelivery, Core: 0},             // missing Dur
		{Kind: ConnDrop, Core: 0},                  // wire faults are shard-only
		{Kind: WorkerKill, Core: Manager},          // wire faults are shard-only
		{Kind: FrameCorrupt, Core: ShardWorker(2)}, // shard out of range
	}
	for _, f := range bad {
		if err := f.Validate(4, 2); err == nil {
			t.Errorf("%v accepted", f)
		}
	}
}

func TestFaultPlanIsImmutable(t *testing.T) {
	src := []Fault{{Kind: Panic, Core: 1, At: 7}}
	p := NewPlan(src...)
	src[0].Core = 99
	if got := p.Faults(); got[0].Core != 1 {
		t.Fatalf("plan aliased caller slice: %+v", got)
	}
	out := p.Faults()
	out[0].Core = 42
	if p.Faults()[0].Core != 1 {
		t.Fatal("Faults() exposed internal storage")
	}
	var nilPlan *Plan
	if nilPlan.Faults() != nil {
		t.Error("nil plan returned faults")
	}
	if err := nilPlan.Validate(1, 0); err != nil {
		t.Errorf("nil plan failed validation: %v", err)
	}
}

func TestFaultKindStrings(t *testing.T) {
	for _, k := range []Kind{Panic, Stall, RingFlood, ClockWarp, DelayDelivery,
		ConnDrop, HeartbeatStall, FrameCorrupt, WorkerKill} {
		if s := k.String(); s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("Kind(%d).String() = %q", int(k), s)
		}
	}
	for _, k := range []Kind{Panic, Stall, RingFlood, ClockWarp, DelayDelivery} {
		if k.IsWire() {
			t.Errorf("%v claims to be a wire fault", k)
		}
	}
	for _, k := range []Kind{ConnDrop, HeartbeatStall, FrameCorrupt, WorkerKill} {
		if !k.IsWire() {
			t.Errorf("%v not a wire fault", k)
		}
	}
	if s := Kind(99).String(); s != "kind(99)" {
		t.Errorf("unknown kind = %q", s)
	}
}
