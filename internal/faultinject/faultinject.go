// Package faultinject provides deterministic, cycle-triggered fault hooks
// for the slacksim engine, used to prove every fault-containment path end
// to end (panic recovery, ring-overflow backpressure, the stall watchdog's
// forensics, and the invariant auditor) without patching the engine or
// relying on randomness.
//
// Faults are seed-free: each fault names a target goroutine and a trigger
// clock — the target core's local simulated time, or the global time for
// the manager and shard workers — so the same plan fires at the same
// simulated instant on every run. The engine consults an installed plan
// through a single nil check per scheduler iteration; with no plan
// installed the hot paths are untouched.
//
// Typical use (a test proving panic containment):
//
//	plan := faultinject.NewPlan(faultinject.Fault{
//	        Kind: faultinject.Panic, Core: 1, At: 5000,
//	})
//	m.EnableFaults(plan)
//	_, err := m.RunParallel(core.SchemeS9) // returns a *core.SimError
package faultinject

import (
	"fmt"

	"slacksim/internal/event"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	// Panic panics the target goroutine (core, Manager, or ShardWorker)
	// when its clock reaches At. Proves the engine's panic containment:
	// the run must return a *core.SimError with all goroutines joined.
	Panic Kind = iota
	// Stall freezes the target core at local time At: the core goroutine
	// stops ticking without parking, so the global time stops advancing
	// and the stall watchdog must fire with a forensic StallReport.
	Stall
	// RingFlood floods the target core's OutQ with filler events at local
	// time At until it overflows, exercising the MustPush backpressure
	// path (a contained ring-overflow SimError).
	RingFlood
	// ClockWarp moves the target core's local clock backwards by Dur
	// cycles at local time At — a synthetic violation of the engine's
	// monotone-clock invariant that the runtime auditor must catch.
	ClockWarp
	// DelayDelivery holds the target core's matching InQ events (EvKinds
	// filter; empty = all) for Dur cycles past their timestamps, for
	// events stamped at or after At. Under a conservative scheme this
	// makes deliveries late, which the auditor reports; under optimistic
	// schemes it widens the measured distortion. A delayed event is
	// delivered only once the core's clock reaches Time+Dur, so delaying
	// an event the core must block on stalls the run (and is then a
	// deterministic watchdog trigger).
	DelayDelivery
	// ConnDrop severs the parent↔worker connection of the targeted remote
	// shard worker (ShardWorker target, remote backend only) when the
	// global time reaches At — both directions fail immediately, as if the
	// TCP peer vanished. The supervisor must redial, replay, and resume.
	ConnDrop
	// HeartbeatStall simulates a silent hang: the parent stops counting
	// the target worker's inbound frames as liveness from global time At,
	// so the heartbeat staleness detector must escalate suspect→dead and
	// tear the connection down itself.
	HeartbeatStall
	// FrameCorrupt arms a one-shot checksum failure on the next frame the
	// parent receives from the target worker at global time At —
	// equivalent to a bit flip on the wire. The CRC envelope must turn it
	// into a structured CorruptFrameError and the supervisor must treat
	// the connection as broken and recover.
	FrameCorrupt
	// WorkerKill asks the run's Kill hook (core.RemoteOptions.Kill) to
	// terminate the target worker's process at global time At — the
	// distributed analogue of Panic, except the process gets no chance to
	// flush or say goodbye (SIGKILL). Recovery must restore from the last
	// checkpoint and replay.
	WorkerKill
)

// String returns the fault kind's name.
func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Stall:
		return "stall"
	case RingFlood:
		return "ring-flood"
	case ClockWarp:
		return "clock-warp"
	case DelayDelivery:
		return "delay-delivery"
	case ConnDrop:
		return "conn-drop"
	case HeartbeatStall:
		return "heartbeat-stall"
	case FrameCorrupt:
		return "frame-corrupt"
	case WorkerKill:
		return "worker-kill"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// IsWire reports whether k is a wire-level fault: one that attacks the
// parent↔worker connection of the distributed backend rather than a
// simulation goroutine. Wire faults target ShardWorker ids and only
// apply to remote runs.
func (k Kind) IsWire() bool {
	switch k {
	case ConnDrop, HeartbeatStall, FrameCorrupt, WorkerKill:
		return true
	}
	return false
}

// Manager targets the simulation-manager goroutine (Panic only); its
// trigger clock is the global time.
const Manager = -1

// ShardWorker returns the target id of shard worker s (Panic, or a wire
// fault against the remote backend); its trigger clock is the shard's
// allowed-time gate (wire faults: the remote worker owning the shard).
func ShardWorker(s int) int { return -2 - s }

// IsShard reports whether target is a ShardWorker id, and which one.
func IsShard(target int) (int, bool) {
	if target <= -2 {
		return -2 - target, true
	}
	return 0, false
}

// Fault is one injected fault.
type Fault struct {
	// Kind selects the fault.
	Kind Kind
	// Core is the target: a core index, Manager, or ShardWorker(s).
	Core int
	// At is the trigger clock in simulated cycles: the target core's
	// local time (core targets) or the global time (Manager and shard
	// targets). A fault with At <= 0 triggers on the first iteration.
	At int64
	// Dur parameterises the fault: the backward jump of ClockWarp and the
	// extra delivery delay of DelayDelivery. Ignored by the other kinds.
	Dur int64
	// EvKinds restricts DelayDelivery to the listed event kinds; empty
	// delays every InQ event.
	EvKinds []event.Kind
}

// Matches reports whether the fault applies to an event of kind k
// (DelayDelivery filtering).
func (f *Fault) Matches(k event.Kind) bool {
	if len(f.EvKinds) == 0 {
		return true
	}
	for _, ek := range f.EvKinds {
		if ek == k {
			return true
		}
	}
	return false
}

// Validate checks the fault against the machine's core count.
func (f *Fault) Validate(numCores, numShards int) error {
	if f.Core >= numCores {
		return fmt.Errorf("faultinject: %v fault targets core %d of %d", f.Kind, f.Core, numCores)
	}
	if s, ok := IsShard(f.Core); ok {
		if f.Kind != Panic && !f.Kind.IsWire() {
			return fmt.Errorf("faultinject: %v fault cannot target shard worker %d (only panic and wire faults)", f.Kind, s)
		}
		if s >= numShards {
			return fmt.Errorf("faultinject: fault targets shard worker %d of %d", s, numShards)
		}
	} else if f.Kind.IsWire() {
		return fmt.Errorf("faultinject: %v fault must target a shard worker, not %d", f.Kind, f.Core)
	}
	if f.Core == Manager && f.Kind != Panic {
		return fmt.Errorf("faultinject: %v fault cannot target the manager (only panic)", f.Kind)
	}
	if f.Kind == DelayDelivery && f.Dur < 1 {
		return fmt.Errorf("faultinject: delay-delivery fault needs Dur >= 1")
	}
	if f.Kind == ClockWarp && f.Dur < 1 {
		return fmt.Errorf("faultinject: clock-warp fault needs Dur >= 1")
	}
	return nil
}

func (f Fault) String() string {
	return fmt.Sprintf("%v core=%d at=%d dur=%d", f.Kind, f.Core, f.At, f.Dur)
}

// Plan is an immutable set of faults to inject into one run. The engine
// partitions it per goroutine at EnableFaults time; runtime trigger state
// lives with the executing goroutine, so a Plan may be shared and reused.
type Plan struct {
	faults []Fault
}

// NewPlan builds a plan from the given faults.
func NewPlan(faults ...Fault) *Plan {
	return &Plan{faults: append([]Fault(nil), faults...)}
}

// Faults returns a copy of the plan's faults.
func (p *Plan) Faults() []Fault {
	if p == nil {
		return nil
	}
	return append([]Fault(nil), p.faults...)
}

// Validate checks every fault against the machine shape.
func (p *Plan) Validate(numCores, numShards int) error {
	if p == nil {
		return nil
	}
	for i := range p.faults {
		if err := p.faults[i].Validate(numCores, numShards); err != nil {
			return err
		}
	}
	return nil
}
