package cpu

import (
	"fmt"

	"slacksim/internal/cache"
	"slacksim/internal/event"
	"slacksim/internal/isa"
)

// ---------------------------------------------------------- store drain --

// drainStores retires committed stores from the head of the store queue
// into the cache hierarchy, in order, one outstanding miss at a time (the
// write buffer of the paper's NetBurst-like target also drains in order).
// The functional memory write already happened at commit; this models only
// the coherence/timing side.
func (c *OoO) drainStores(now int64) {
	c.drainRetryAt = -1
	if c.sqCount == 0 {
		return
	}
	h := c.sqHead
	fl := c.sq.flags[h]
	if fl&sfValid == 0 || fl&sfCommitted == 0 || fl&sfDrainWait != 0 {
		return
	}
	addr := c.sq.addr[h]
	line := c.env.CacheCfg.LineAddr(addr)
	switch c.l1d.Probe(addr, true) {
	case cache.Hit:
		c.freeSQHead(now)
		c.prog = true
	case cache.NeedUpgrade:
		if m := c.findMSHR(line); m != nil {
			m.store = true
			c.sq.flags[h] |= sfDrainWait
			c.prog = true
			return
		}
		m := c.allocMSHR(line)
		if m == nil {
			return // all MSHRs busy; retried after the next fill delivery
		}
		m.store = true
		m.upgrade = true
		c.sq.flags[h] |= sfDrainWait
		c.prog = true
		c.sendPlain(event.Event{Kind: event.KUpgrade, Time: now, Addr: line})
	case cache.Blocked:
		if m := c.findMSHR(line); m != nil {
			m.store = true
			c.sq.flags[h] |= sfDrainWait
			c.prog = true
			return
		}
		// The fill landed this very cycle; retry next cycle.
		c.drainRetryAt = now + 1
	default: // MissExcl
		if m := c.findMSHR(line); m != nil {
			// A read miss for the line is in flight; wait for it, then
			// re-probe (which will then find a NeedUpgrade or Hit).
			m.store = true
			c.sq.flags[h] |= sfDrainWait
			c.prog = true
			return
		}
		m := c.allocMSHR(line)
		if m == nil {
			return // all MSHRs busy; retried after the next fill delivery
		}
		m.store = true
		victimAddr, victimDirty, victimValid := c.l1d.Reserve(line)
		c.send(event.Event{Kind: event.KReadExcl, Time: now, Addr: line}, victimAddr, victimDirty, victimValid)
		c.sq.flags[h] |= sfDrainWait
		c.prog = true
	}
}

// intVal reads the architecturally-current value of integer register r via
// the rename map. Only valid at serialised commit points (syscalls, AMOs),
// where no younger in-flight definitions exist.
func (c *OoO) intVal(r uint8) int64 {
	if r == isa.RegZero {
		return 0
	}
	return c.physIntVal[c.mapInt[r]]
}

func (c *OoO) freeSQHead(now int64) {
	c.sq.flags[c.sqHead] = 0
	c.sqHead = (c.sqHead + 1) % c.cfg.SQSize
	c.sqCount--
	// A load parked on a conflict with this store can now proceed.
	c.kickParkedLoads(now)
}

// --------------------------------------------------------------- commit --

func (c *OoO) commit(now int64) {
	for n := 0; n < c.cfg.Width && c.robCount > 0; n++ {
		h := c.robHead
		fl := c.rob.flags[h]
		if fl&rfValid == 0 {
			panic("cpu: invalid ROB head")
		}
		if fl&rfDone == 0 {
			switch {
			case fl&rfSys != 0:
				c.stepSyscall(h, now)
			case fl&rfAMO != 0:
				c.stepAMO(h, now)
			}
			if fl = c.rob.flags[h]; fl&rfDone == 0 {
				c.stats.HeadStall++
				return
			}
		}
		if c.rob.pre[h].Op == isa.OpInvalid {
			panic(fmt.Sprintf("cpu: core %d committed invalid instruction at pc %#x", c.env.ID, c.rob.pc[h]))
		}
		// Retire.
		if sqi := c.rob.sq[h]; sqi >= 0 {
			c.writeMem(c.sq.op[sqi], c.sq.addr[sqi], c.sq.value[sqi])
			c.sq.flags[sqi] |= sfCommitted
		}
		if lqi := c.rob.lq[h]; lqi >= 0 {
			c.lq.flags[lqi] = 0
			c.lqHead = (int(lqi) + 1) % c.cfg.LQSize
			c.lqCount--
		}
		if c.rob.dst[h] >= 0 {
			if fl&rfDstFP != 0 {
				c.freeFP = append(c.freeFP, c.rob.old[h])
			} else {
				c.freeInt = append(c.freeInt, c.rob.old[h])
			}
		}
		if ck := c.rob.ckpt[h]; ck >= 0 {
			// Normally freed at resolution; defensive.
			c.ckptFree = append(c.ckptFree, ck)
		}
		if c.rob.seq[h] == c.serializeSeq {
			c.serializeSeq = -1
			c.sysHoldFetch = false
		}
		if c.dbgOn() {
			c.dbg(now, "commit pc=%#x %s", c.rob.pc[h], c.rob.pre[h].Inst().Disassemble(c.rob.pc[h]))
		}
		c.rob.flags[h] = 0
		c.robHead = (c.robHead + 1) % c.cfg.ROBSize
		c.robCount--
		c.stats.Committed++
		c.prog = true
	}
}

// stepSyscall advances the commit-point syscall state machine for the ROB
// head at index h. Syscalls travel to the simulation manager as OutQ
// events, mirroring the paper's emulation of system functions outside the
// simulator; blocking primitives reply "retry" and the core spins in
// simulated time.
func (c *OoO) stepSyscall(h int, now int64) {
	if c.sysDone {
		c.writebackAt(h, c.sysResult)
		c.rob.flags[h] |= rfDone
		return
	}
	if !c.sysIssued {
		// Issue only once the core is quiescent: every committed store has
		// drained into the hierarchy and no data-side miss is outstanding.
		// System calls may put this thread to sleep in the kernel; nothing
		// with an older timestamp may be emitted after that.
		if c.sqCount > 0 {
			return
		}
		for i := range c.mshrs {
			if c.mshrs[i].valid && !c.mshrs[i].instr {
				return
			}
		}
		c.sysIssued = true
		c.prog = true
		c.stats.Syscalls++
		c.sendPlain(event.Event{
			Kind: event.KSyscall,
			Time: now,
			Aux:  int64(c.rob.pre[h].Imm),
			Args: [4]int64{c.intVal(isa.RegA0), c.intVal(isa.RegA1), c.intVal(isa.RegA2), c.intVal(isa.RegA3)},
		})
		return
	}
	if c.sysRetryAt >= 0 && now >= c.sysRetryAt {
		c.sysRetryAt = -1
		c.prog = true
		c.stats.Retries++
		c.sendPlain(event.Event{
			Kind: event.KSyscall,
			Time: now,
			Aux:  int64(c.rob.pre[h].Imm),
			Args: [4]int64{c.intVal(isa.RegA0), c.intVal(isa.RegA1), c.intVal(isa.RegA2), c.intVal(isa.RegA3)},
		})
	}
}

// stepAMO performs an atomic read-modify-write at the commit point for the
// ROB head at index h. The functional operation executes atomically against
// shared memory when the fixed latency expires; the timing approximates a
// round trip that bypasses the L1 (AMOs are rare in our workloads — the
// Table 1 primitives are syscalls).
func (c *OoO) stepAMO(h int, now int64) {
	if c.amoDoneAt < 0 {
		c.amoDoneAt = now + c.cfg.AMOLat
		c.prog = true
		return
	}
	if now < c.amoDoneAt {
		return
	}
	p := &c.rob.pre[h]
	addr := uint64(c.intVal(p.Rs1))
	rs2 := uint64(c.intVal(p.Rs2))
	var old uint64
	var ok bool
	switch p.Op {
	case isa.OpAMOADD:
		old, ok = c.env.Mem.AMOAdd(addr, rs2)
	case isa.OpAMOSWAP:
		old, ok = c.env.Mem.AMOSwap(addr, rs2)
	case isa.OpCAS:
		// The swap value is the committed (pre-rename) value of rd.
		swap := uint64(c.physIntVal[c.rob.old[h]])
		old, ok = c.env.Mem.CAS(addr, rs2, swap)
	}
	if !ok {
		c.stats.MemFaults++
	}
	c.writebackAt(h, int64(old))
	c.rob.flags[h] |= rfDone
	c.amoDoneAt = -1
}

func (c *OoO) writebackAt(h int, v int64) {
	if dst := c.rob.dst[h]; dst >= 0 && c.rob.flags[h]&rfDstFP == 0 {
		c.physIntVal[dst] = v
		c.physIntReady[dst] = true
		c.iqUnready = false
	}
}

func (c *OoO) writeMem(op isa.Op, addr uint64, raw uint64) {
	var ok bool
	switch op {
	case isa.OpSD, isa.OpFSD:
		ok = c.env.Mem.StoreWord(addr, raw)
	case isa.OpSW:
		ok = c.env.Mem.Store32(addr, uint32(raw))
	case isa.OpSB:
		ok = c.env.Mem.Store8(addr, uint8(raw))
	}
	if !ok {
		c.stats.MemFaults++
	}
}

// -------------------------------------------------------------- deliver --

// Deliver implements Core: apply an InQ notification at local time now.
func (c *OoO) Deliver(ev event.Event, now int64) {
	switch ev.Kind {
	case event.KFill:
		c.deliverFill(ev, now)
	case event.KInv:
		c.l1d.Invalidate(ev.Addr)
		c.l1i.Invalidate(ev.Addr)
		c.pd.invalidate(ev.Addr)
	case event.KDowngrade:
		c.l1d.Downgrade(ev.Addr)
		c.l1i.Downgrade(ev.Addr)
	case event.KSyscallDone:
		if !c.sysIssued || c.sysDone {
			return // stale (core stopped or syscall squashed pre-issue)
		}
		if ev.Flag {
			c.sysRetryAt = now + 1
		} else {
			c.sysResult = ev.Aux
			c.sysDone = true
		}
	}
}

func (c *OoO) deliverFill(ev event.Event, now int64) {
	m := c.findMSHR(ev.Addr)
	if m == nil {
		return // stale fill after Stop
	}
	// A fetch may be waiting on this line even when the MSHR belongs to the
	// data side (fetch merged into an in-flight data miss): unblock it; the
	// I-cache will simply re-miss and request its own copy.
	if c.fetchMiss && c.fetchMissLn == ev.Addr {
		c.fetchMiss = false
	}
	switch {
	case m.instr:
		c.l1i.Fill(ev.Addr, cache.State(ev.Aux))
	case m.upgrade:
		c.l1d.UpgradeDone(ev.Addr)
	default:
		c.l1d.Fill(ev.Addr, cache.State(ev.Aux))
	}
	for lqi := m.loadHead; lqi >= 0; lqi = c.lq.next[lqi] {
		if c.lq.flags[lqi]&lfValid == 0 {
			continue
		}
		c.addPending(pendingOp{
			at: now, kind: pLoadDone, seq: c.lq.seq[lqi], robIdx: c.lq.rob[lqi], lqIdx: lqi,
		})
	}
	if m.store && c.sqCount > 0 {
		c.sq.flags[c.sqHead] &^= sfDrainWait
	}
	m.valid = false
	m.loadHead, m.loadTail = -1, -1
	m.store, m.upgrade, m.instr = false, false, false
	// An MSHR is free again: loads parked on MSHR exhaustion can retry.
	c.kickParkedLoads(now)
}

// ----------------------------------------------------------------- MSHR --

func (c *OoO) findMSHR(line uint64) *mshr {
	for i := range c.mshrs {
		if c.mshrs[i].valid && c.mshrs[i].line == line {
			return &c.mshrs[i]
		}
	}
	return nil
}

func (c *OoO) allocMSHR(line uint64) *mshr {
	for i := range c.mshrs {
		if !c.mshrs[i].valid {
			m := &c.mshrs[i]
			m.valid = true
			m.line = line
			m.loadHead, m.loadTail = -1, -1
			m.store, m.upgrade, m.instr = false, false, false
			return m
		}
	}
	return nil
}

// ----------------------------------------------------------------- send --

func (c *OoO) sendPlain(ev event.Event) {
	ev.Core = int32(c.env.ID)
	c.eventSeq++
	ev.Seq = c.eventSeq
	c.env.Send(ev)
}

func (c *OoO) send(ev event.Event, victimAddr uint64, victimDirty, victimValid bool) {
	if victimValid {
		ev.VictimAddr = victimAddr
		ev.VictimFlags = event.VictimValid
		if victimDirty {
			ev.VictimFlags |= event.VictimDirty
		}
	}
	c.sendPlain(ev)
}
