package cpu

import (
	"fmt"
	"strings"
)

// DebugState renders a one-look summary of the core's in-flight state; used
// by engine diagnostics when a simulation aborts.
func (c *OoO) DebugState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core %d active=%v fetchPC=%#x fetchMiss=%v(line %#x) fetchQ=%d rob=%d iq=%d lq=%d sq=%d serialize=%d sysIssued=%v sysDone=%v retryAt=%d pending=%d\n",
		c.env.ID, c.active, c.fetchPC, c.fetchMiss, c.fetchMissLn, c.fetchQLen(),
		c.robCount, len(c.iq), c.lqCount, c.sqCount, c.serializeSeq, c.sysIssued, c.sysDone, c.sysRetryAt, len(c.pending))
	if c.robCount > 0 {
		h := c.robHead
		fl := c.rob.flags[h]
		fmt.Fprintf(&b, "  head: seq=%d pc=%#x %s done=%v sys=%v amo=%v\n",
			c.rob.seq[h], c.rob.pc[h], c.rob.pre[h].Inst().Disassemble(c.rob.pc[h]),
			fl&rfDone != 0, fl&rfSys != 0, fl&rfAMO != 0)
	}
	for i := range c.mshrs {
		if c.mshrs[i].valid {
			m := &c.mshrs[i]
			waiters := 0
			for lqi := m.loadHead; lqi >= 0; lqi = c.lq.next[lqi] {
				waiters++
			}
			fmt.Fprintf(&b, "  mshr: line=%#x instr=%v upgrade=%v store=%v loads=%d\n", m.line, m.instr, m.upgrade, m.store, waiters)
		}
	}
	for i := range c.pending {
		p := &c.pending[i]
		fmt.Fprintf(&b, "  pending: at=%d kind=%d seq=%d\n", p.at, p.kind, p.seq)
	}
	return b.String()
}

// DebugState for the in-order core.
func (c *InOrder) DebugState() string {
	return fmt.Sprintf("core %d active=%v pc=%#x state=%d busyUntil=%d retryAt=%d cur=%s\n",
		c.env.ID, c.active, c.pc, c.state, c.busyUntil, c.retryAt, c.cur.Inst().Disassemble(c.pc))
}
