package cpu

import (
	"fmt"
	"math"

	"slacksim/internal/cache"
	"slacksim/internal/event"
	"slacksim/internal/isa"
)

// OoO is the detailed out-of-order core model: 4-wide fetch/dispatch/
// issue/commit, a 64-entry ROB, physical register files with rename-map
// checkpoints for branch recovery, a unified issue queue, a load/store
// queue with store-to-load forwarding, and non-blocking L1 caches with
// MSHRs. As in the paper's NetBurst-like target, operand values are read
// from the physical register file just before execution (§2.2), and loads
// read the shared functional memory when their access completes — which is
// exactly how slack-induced simulated-time distortions become visible to
// the workload (§3.2.3).
//
// The ROB and load/store queues are laid out as struct-of-arrays (parallel
// slices indexed by entry) with single-byte flag words: the commit walk,
// store-queue disambiguation scan, and parked-load sweep each touch one
// dense array instead of striding over fat entry structs, and none of the
// per-entry state holds a pointer the GC has to trace.
type OoO struct {
	cfg Config
	env Env

	stats  Stats
	active bool

	l1d, l1i *cache.L1
	pred     *predictor
	pd       *predecode

	// Register state.
	physIntVal   []int64
	physIntReady []bool
	physFPVal    []float64
	physFPReady  []bool
	mapInt       [isa.NumIntRegs]int16
	mapFP        [isa.NumFPRegs]int16
	freeInt      []int16
	freeFP       []int16

	// Front end.
	seqCounter   int64
	fetchPC      uint64
	fetchBlocked int64 // no fetch until this cycle (mispredict redirect)
	fetchMiss    bool  // waiting for an instruction fill
	fetchMissLn  uint64
	fetchQ       []fetched
	fetchHead    int // consumed prefix of fetchQ (compacted when drained)

	// Window.
	rob      robSoA
	robHead  int
	robCount int
	// iq holds waiting instructions in dispatch (= seq) order: dispatch
	// appends, issue compacts in place, recovery truncates the squashed
	// suffix. Order is invariant, which lets issue run a single in-order
	// pass instead of IssueWidth oldest-ready scans.
	iq []iqEntry
	// iqUnready short-circuits issue while no queued entry has all source
	// operands ready. Readiness only changes through writeback/writebackAt,
	// dispatch of a new entry, recovery, or Start — each of which clears the
	// flag. (Source physical registers of a waiting entry cannot be
	// reallocated before it issues: the next definer of the same
	// architectural register commits after this entry does.)
	iqUnready bool

	lq                      lqSoA
	lqHead, lqTail, lqCount int
	sq                      sqSoA
	sqHead, sqTail, sqCount int

	ckpts    []checkpoint
	ckptFree []int8

	pending      []pendingOp // scheduled completions, unordered small slice
	pendingSpare []pendingOp // double buffer for completePending
	// pendMin is a lower bound on the earliest due time in pending
	// (MaxInt64 when empty): completePending skips its walk entirely while
	// now < pendMin. It may go stale-low after a walk or a recovery — that
	// only costs one wasted walk, never a missed completion.
	pendMin  int64
	mshrs    []mshr
	eventSeq int64

	// Commit-point serialisation (syscalls and atomics).
	serializeSeq int64 // -1 when inactive
	sysHoldFetch bool  // a dispatched syscall suspends fetch until it retires
	prog         bool  // progress flag for the current Tick
	drainRetryAt int64 // store-drain wants to retry at this cycle (-1 none)
	sysIssued    bool
	sysDone      bool
	sysRetryAt   int64 // re-issue a blocking syscall at this cycle (-1: none)
	sysResult    int64
	amoDoneAt    int64 // -1 when no AMO in progress

	divBusy   int64
	fpDivBusy int64
}

type fetched struct {
	pre    Pre
	pc     uint64
	npc    uint64 // predicted next pc
	rasTop int    // RAS top before this instruction's own push/pop
}

// robFlag packs a ROB entry's booleans into one byte of the flags array.
type robFlag uint8

const (
	rfValid robFlag = 1 << iota
	rfDone
	rfDstFP
	rfSys
	rfAMO
)

// robSoA is the reorder buffer in struct-of-arrays form: one slice per
// field, all indexed by the circular (robHead, robCount) window.
type robSoA struct {
	seq   []int64
	pre   []Pre
	pc    []uint64
	npc   []uint64 // predicted next pc
	dst   []int16  // physical destination, -1 none
	old   []int16  // previous mapping of the architectural destination
	lq    []int16  // LQ index, -1
	sq    []int16  // SQ index, -1
	ckpt  []int8   // checkpoint id, -1
	flags []robFlag
}

func newROBSoA(n int) robSoA {
	return robSoA{
		seq:   make([]int64, n),
		pre:   make([]Pre, n),
		pc:    make([]uint64, n),
		npc:   make([]uint64, n),
		dst:   make([]int16, n),
		old:   make([]int16, n),
		lq:    make([]int16, n),
		sq:    make([]int16, n),
		ckpt:  make([]int8, n),
		flags: make([]robFlag, n),
	}
}

// iqEntry captures the dispatch-time rename of each operand role so that
// execution reads the values this instruction's program-order position
// requires, regardless of younger redefinitions in flight. A physical index
// of -1 means "constant zero / unused" (integer) or "unused" (FP).
type iqEntry struct {
	seq    int64
	robIdx int16
	ps1    int16 // integer rs1
	ps2    int16 // integer rs2 (store data for integer stores)
	pf1    int16 // fp fs1, -1 unused
	pf2    int16 // fp fs2 (store data for fp stores), -1 unused
	class  fuClass
	need   uint8 // operands not yet observed ready (needPs1..needPf2)
}

// need bits: one per operand slot still awaiting a producer writeback.
// Readiness is monotonic while the entry is queued (a source physical
// register cannot be reallocated before the entry issues), so a cleared
// bit never has to be re-checked and need==0 means ready forever.
const (
	needPs1 uint8 = 1 << iota
	needPs2
	needPf1
	needPf2
)

type lqFlag uint8

const (
	lfValid lqFlag = 1 << iota
	lfDone
	// lfParked marks a load waiting on a condition that clears via another
	// micro-event (an older store's address/value, a store drain, a free
	// MSHR) rather than the passage of cycles; kickParkedLoads requeues it
	// when such an event fires. Event-driven waits keep a fully stalled
	// core's Tick a no-op, so the engine can freeze it instead of letting
	// it burn simulated cycles at host speed.
	lfParked
)

// lqSoA is the load queue in struct-of-arrays form. next carries the
// intrusive MSHR waiter chain: loads waiting on the same outstanding line
// are linked head-to-tail through next (index-based free list instead of a
// per-MSHR waiter slice), preserving FIFO wake order.
type lqSoA struct {
	seq   []int64
	addr  []uint64
	rob   []int16
	next  []int16 // MSHR waiter chain link, -1 end
	op    []isa.Op
	width []uint8
	flags []lqFlag
}

func newLQSoA(n int) lqSoA {
	return lqSoA{
		seq:   make([]int64, n),
		addr:  make([]uint64, n),
		rob:   make([]int16, n),
		next:  make([]int16, n),
		op:    make([]isa.Op, n),
		width: make([]uint8, n),
		flags: make([]lqFlag, n),
	}
}

type sqFlag uint8

const (
	sfValid sqFlag = 1 << iota
	sfReady        // address+value computed
	sfCommitted
	sfDrainWait // waiting for an upgrade/fill reply
)

// sqSoA is the store queue in struct-of-arrays form. The disambiguation
// scan in olderStore touches only seq/flags/addr, each a dense array.
type sqSoA struct {
	seq   []int64
	addr  []uint64
	value []uint64 // raw bits
	rob   []int16
	op    []isa.Op
	width []uint8
	flags []sqFlag
}

func newSQSoA(n int) sqSoA {
	return sqSoA{
		seq:   make([]int64, n),
		addr:  make([]uint64, n),
		value: make([]uint64, n),
		rob:   make([]int16, n),
		op:    make([]isa.Op, n),
		width: make([]uint8, n),
		flags: make([]sqFlag, n),
	}
}

type checkpoint struct {
	mapInt [isa.NumIntRegs]int16
	mapFP  [isa.NumFPRegs]int16
	rasTop int
}

type pendingKind uint8

const (
	pWriteback  pendingKind = iota // ALU/FP result
	pCTI                           // control transfer resolution (+ link writeback)
	pLoadIssue                     // address generated; run the load pipeline step
	pLoadDone                      // load data available: functional read + writeback
	pStoreReady                    // store address/value computed
)

type pendingOp struct {
	at     int64
	kind   pendingKind
	seq    int64
	robIdx int16
	lqIdx  int16

	valInt int64
	valFP  float64

	// CTI resolution data.
	actualNext uint64
	taken      bool
}

// mshr tracks one outstanding line. Waiting loads hang off an intrusive
// FIFO chain through lq.next (loadHead/loadTail are LQ indices, -1 empty).
type mshr struct {
	valid    bool
	line     uint64
	upgrade  bool
	instr    bool // instruction-side fill
	loadHead int16
	loadTail int16
	store    bool // the committed-store drain head waits on this line
}

// NewOoO builds an out-of-order core. A bad cache geometry is reported as
// an error so machine construction fails fast instead of panicking.
func NewOoO(cfg Config, env Env) (*OoO, error) {
	l1d, err := cache.NewL1(env.CacheCfg)
	if err != nil {
		return nil, err
	}
	l1i, err := cache.NewL1(env.CacheCfg)
	if err != nil {
		return nil, err
	}
	c := &OoO{
		cfg:  cfg,
		env:  env,
		l1d:  l1d,
		l1i:  l1i,
		pred: newPredictor(&cfg),

		physIntVal:   make([]int64, cfg.PhysInt),
		physIntReady: make([]bool, cfg.PhysInt),
		physFPVal:    make([]float64, cfg.PhysFP),
		physFPReady:  make([]bool, cfg.PhysFP),
		freeInt:      make([]int16, 0, cfg.PhysInt),
		freeFP:       make([]int16, 0, cfg.PhysFP),

		fetchQ: make([]fetched, 0, cfg.FetchQSize),
		rob:    newROBSoA(cfg.ROBSize),
		iq:     make([]iqEntry, 0, cfg.IQSize),
		lq:     newLQSoA(cfg.LQSize),
		sq:     newSQSoA(cfg.SQSize),
		ckpts:  make([]checkpoint, cfg.MaxBranches),
		mshrs:  make([]mshr, cfg.MSHRs),

		// Steady state never outgrows these: at most one scheduled
		// completion per ROB entry plus a handful of same-cycle retries.
		pending:      make([]pendingOp, 0, cfg.ROBSize+8),
		pendingSpare: make([]pendingOp, 0, cfg.ROBSize+8),
		pendMin:      math.MaxInt64,
		ckptFree:     make([]int8, 0, cfg.MaxBranches),

		serializeSeq: -1,
		sysRetryAt:   -1,
		amoDoneAt:    -1,
		drainRetryAt: -1,
	}
	c.pd = newPredecode(&c.cfg, &c.env)
	for i := range c.mshrs {
		c.mshrs[i].loadHead, c.mshrs[i].loadTail = -1, -1
	}
	for i := int8(0); i < int8(cfg.MaxBranches); i++ {
		c.ckptFree = append(c.ckptFree, i)
	}
	c.resetRename()
	return c, nil
}

func (c *OoO) resetRename() {
	for r := 0; r < isa.NumIntRegs; r++ {
		c.mapInt[r] = int16(r)
		c.physIntVal[r] = 0
		c.physIntReady[r] = true
	}
	for r := 0; r < isa.NumFPRegs; r++ {
		c.mapFP[r] = int16(r)
		c.physFPVal[r] = 0
		c.physFPReady[r] = true
	}
	c.freeInt = c.freeInt[:0]
	for p := int16(isa.NumIntRegs); p < int16(c.cfg.PhysInt); p++ {
		c.freeInt = append(c.freeInt, p)
	}
	c.freeFP = c.freeFP[:0]
	for p := int16(isa.NumFPRegs); p < int16(c.cfg.PhysFP); p++ {
		c.freeFP = append(c.freeFP, p)
	}
}

// ID implements Core.
func (c *OoO) ID() int { return c.env.ID }

// Stats implements Core. The returned pointer is stable; the L1 cache
// counters are synchronised into it on each call.
func (c *OoO) Stats() *Stats {
	c.stats.L1D = c.l1d.Stats
	c.stats.L1I = c.l1i.Stats
	return &c.stats
}

// Active implements Core.
func (c *OoO) Active() bool { return c.active }

// MarkROI implements Core.
func (c *OoO) MarkROI(now int64) {
	if !c.stats.ROIMarked {
		c.stats.ROIMarked = true
		c.stats.ROIStartCycles = c.stats.Cycles + c.stats.IdleCycles
		c.stats.ROIStartCommitted = c.stats.Committed
	}
}

// Start implements Core.
func (c *OoO) Start(pc, sp uint64, arg int64) {
	c.resetRename()
	c.physIntVal[c.mapInt[isa.RegSP]] = int64(sp)
	c.physIntVal[c.mapInt[isa.RegA0]] = arg
	c.fetchPC = pc
	c.active = true
	c.fetchMiss = false
	c.fetchBlocked = 0
	c.iqUnready = false
}

// Stop implements Core.
func (c *OoO) Stop() {
	c.active = false
	// Drop all in-flight state; the thread on this core is gone.
	c.fetchQ = c.fetchQ[:0]
	c.fetchHead = 0
	for i := range c.rob.flags {
		c.rob.flags[i] = 0
	}
	c.robHead, c.robCount = 0, 0
	c.iq = c.iq[:0]
	c.iqUnready = false
	for i := range c.lq.flags {
		c.lq.flags[i] = 0
	}
	c.lqHead, c.lqTail, c.lqCount = 0, 0, 0
	for i := range c.sq.flags {
		c.sq.flags[i] = 0
	}
	c.sqHead, c.sqTail, c.sqCount = 0, 0, 0
	c.pending = c.pending[:0]
	c.pendMin = math.MaxInt64
	for i := range c.mshrs {
		c.mshrs[i] = mshr{loadHead: -1, loadTail: -1}
	}
	c.fetchMiss = false
	c.serializeSeq = -1
	c.sysHoldFetch = false
	c.sysIssued, c.sysDone = false, false
	c.sysRetryAt = -1
	c.amoDoneAt = -1
}

// DebugTrace, when non-nil, receives a line per interesting micro-event on
// cores whose id is in DebugCores (test diagnostics only; not used in
// normal runs).
var (
	DebugTrace func(s string)
	DebugCores = -1
)

// dbgOn reports whether tracing is enabled for this core. Call sites must
// gate on it so trace-argument construction (disassembly, Sprintf) stays
// entirely off the simulation's hot path.
func (c *OoO) dbgOn() bool { return DebugTrace != nil && c.env.ID == DebugCores }

func (c *OoO) dbg(now int64, format string, args ...any) {
	DebugTrace(fmt.Sprintf("t=%d c%d ", now, c.env.ID) + fmt.Sprintf(format, args...))
}

// Tick implements Core: one simulated cycle. Stages run commit-first so
// that each pipeline stage consumes the previous cycle's products.
func (c *OoO) Tick(now int64) bool {
	if !c.active {
		c.stats.IdleCycles++
		return false
	}
	c.stats.Cycles++
	c.prog = false
	c.commit(now)
	c.drainStores(now)
	c.completePending(now)
	c.issue(now)
	c.dispatch(now)
	c.fetch(now)
	return c.prog
}

// NextWork implements Core. Work scheduled at exactly `now` is returned:
// the caller has not yet simulated cycle `now`.
func (c *OoO) NextWork(now int64) int64 {
	next := int64(math.MaxInt64)
	consider := func(t int64) {
		if t >= now && t < next {
			next = t
		}
	}
	for i := range c.pending {
		consider(c.pending[i].at)
	}
	if c.sysRetryAt >= 0 {
		consider(c.sysRetryAt)
	}
	if c.amoDoneAt >= 0 {
		consider(c.amoDoneAt)
	}
	if c.drainRetryAt >= 0 {
		consider(c.drainRetryAt)
	}
	if c.fetchBlocked >= now && !c.fetchMiss {
		consider(c.fetchBlocked)
	}
	// An unpipelined divider can be busy with no corresponding pending op
	// (a squash purges the op but not the busy horizon); a ready divide in
	// the issue queue then becomes grantable only once the unit frees.
	if len(c.iq) > 0 {
		consider(c.divBusy)
		consider(c.fpDivBusy)
	}
	return next
}

// WaitingSyscall implements Core.
func (c *OoO) WaitingSyscall() bool {
	return c.active && c.sysIssued && !c.sysDone && c.sysRetryAt < 0
}

// Skip implements Core.
func (c *OoO) Skip(n int64) {
	c.stats.Skipped += n
	if c.active {
		c.stats.Cycles += n
	} else {
		c.stats.IdleCycles += n
	}
}

// ---------------------------------------------------------------- fetch --

func (c *OoO) fetch(now int64) {
	if c.fetchMiss {
		c.stats.FetchStall++
		return
	}
	if c.sysHoldFetch {
		// A system call is in flight: the front end is held so the core is
		// fully quiescent — no new fetch misses — by the time the call
		// reaches the kernel and possibly puts this thread to sleep. (The
		// engine excludes sleeping cores from the global time; a straggler
		// request emitted after that point would carry a stale timestamp.)
		c.stats.SerializeOn++
		return
	}
	if now < c.fetchBlocked {
		return
	}
	var curLine uint64
	haveLine := false
	for n := 0; n < c.cfg.FetchWidth && c.fetchQLen() < c.cfg.FetchQSize; n++ {
		line := c.env.CacheCfg.LineAddr(c.fetchPC)
		if !haveLine || line != curLine {
			switch c.l1i.Probe(c.fetchPC, false) {
			case cache.Hit:
				curLine, haveLine = line, true
			case cache.Blocked:
				// A fill for this line is already outstanding; wait.
				c.stats.FetchStall++
				return
			default:
				if !c.startFetchMiss(line, now) {
					c.stats.FetchStall++
				}
				return
			}
		}
		pp, ok := c.pd.lookup(c.fetchPC)
		var scratch Pre
		if !ok {
			word, ok := c.env.Mem.LoadWord(c.fetchPC)
			if !ok {
				// Fetching unmapped memory: only reachable on a wrong path
				// or in a broken workload; stall until a redirect rescues us.
				return
			}
			scratch = makePre(&c.cfg, isa.Decode(word))
			pp = &scratch
		}
		rasTop := c.pred.snapshotRAS()
		npc := c.fetchPC + isa.InstBytes
		taken := false
		if pp.Flags&pfCTI != 0 {
			npc, taken = c.pred.predict(pp, c.fetchPC)
		}
		c.fetchQ = append(c.fetchQ, fetched{pre: *pp, pc: c.fetchPC, npc: npc, rasTop: rasTop})
		if c.dbgOn() {
			c.dbg(now, "fetch pc=%#x %s npc=%#x", c.fetchPC, pp.Inst().Disassemble(c.fetchPC), npc)
		}
		c.stats.Fetched++
		c.prog = true
		c.fetchPC = npc
		if taken {
			break // fetch group ends at a predicted-taken transfer
		}
	}
}

func (c *OoO) startFetchMiss(line uint64, now int64) bool {
	if c.findMSHR(line) != nil {
		c.fetchMiss, c.fetchMissLn = true, line
		return true
	}
	m := c.allocMSHR(line)
	if m == nil {
		return false
	}
	m.instr = true
	victimAddr, victimDirty, victimValid := c.l1i.Reserve(line)
	c.fetchMiss, c.fetchMissLn = true, line
	if c.dbgOn() {
		c.dbg(now, "fetchmiss line=%#x", line)
	}
	c.send(event.Event{Kind: event.KFetch, Time: now, Addr: line}, victimAddr, victimDirty, victimValid)
	c.prog = true
	return true
}

func (c *OoO) fetchQLen() int { return len(c.fetchQ) - c.fetchHead }

// ------------------------------------------------------------- dispatch --

func (c *OoO) dispatch(now int64) {
	for n := 0; n < c.cfg.Width && c.fetchQLen() > 0; n++ {
		if c.serializeSeq >= 0 {
			c.stats.SerializeOn++
			return
		}
		if c.robCount >= c.cfg.ROBSize {
			c.stats.ROBStall++
			return
		}
		f := &c.fetchQ[c.fetchHead]
		p := &f.pre
		fl := p.Flags

		needsIQ := fl&pfNeedsIQ != 0
		if needsIQ && len(c.iq) >= c.cfg.IQSize {
			return
		}
		isLoad, isStore := fl&pfLoad != 0, fl&pfStore != 0
		if isLoad && c.lqCount >= c.cfg.LQSize {
			c.stats.LSQStall++
			return
		}
		if isStore && c.sqCount >= c.cfg.SQSize {
			c.stats.LSQStall++
			return
		}
		needCkpt := fl&pfNeedCkpt != 0
		if needCkpt && len(c.ckptFree) == 0 {
			return
		}
		if p.IntDst >= 0 && len(c.freeInt) == 0 {
			return
		}
		if p.FPDst >= 0 && len(c.freeFP) == 0 {
			return
		}

		// All resources available: dispatch.
		c.prog = true
		c.seqCounter++
		seq := c.seqCounter

		var flags robFlag = rfValid
		dst, old := int16(-1), int16(-1)
		// Capture source renames before updating the destination mapping
		// (an instruction may read the register it writes).
		iqe := c.captureOperands(p)

		switch {
		case p.IntDst >= 0:
			ph := c.freeInt[len(c.freeInt)-1]
			c.freeInt = c.freeInt[:len(c.freeInt)-1]
			c.physIntReady[ph] = false
			dst, old = ph, c.mapInt[p.IntDst]
			c.mapInt[p.IntDst] = ph
		case p.FPDst >= 0:
			ph := c.freeFP[len(c.freeFP)-1]
			c.freeFP = c.freeFP[:len(c.freeFP)-1]
			c.physFPReady[ph] = false
			dst, old = ph, c.mapFP[p.FPDst]
			flags |= rfDstFP
			c.mapFP[p.FPDst] = ph
		}

		ckptID := int8(-1)
		if needCkpt {
			id := c.ckptFree[len(c.ckptFree)-1]
			c.ckptFree = c.ckptFree[:len(c.ckptFree)-1]
			ck := &c.ckpts[id]
			ck.mapInt = c.mapInt
			ck.mapFP = c.mapFP
			ck.rasTop = f.rasTop
			ckptID = id
			c.stats.Branches++
		} else if p.Op == isa.OpJAL {
			c.stats.Branches++
		}

		robIdx := int16((c.robHead + c.robCount) % c.cfg.ROBSize)

		lqIdx, sqIdx := int16(-1), int16(-1)
		if isLoad {
			lqIdx = int16(c.lqTail)
			i := c.lqTail
			c.lq.seq[i] = seq
			c.lq.rob[i] = robIdx
			c.lq.op[i] = p.Op
			c.lq.width[i] = p.MemW
			c.lq.next[i] = -1
			c.lq.flags[i] = lfValid
			c.lqTail = (c.lqTail + 1) % c.cfg.LQSize
			c.lqCount++
			c.stats.Loads++
		}
		if isStore {
			sqIdx = int16(c.sqTail)
			i := c.sqTail
			c.sq.seq[i] = seq
			c.sq.rob[i] = robIdx
			c.sq.op[i] = p.Op
			c.sq.width[i] = p.MemW
			c.sq.flags[i] = sfValid
			c.sqTail = (c.sqTail + 1) % c.cfg.SQSize
			c.sqCount++
			c.stats.Stores++
		}

		switch {
		case fl&pfSyscall != 0:
			flags |= rfSys
			c.serializeSeq = seq
			c.sysHoldFetch = true
			c.sysIssued, c.sysDone = false, false
			c.sysRetryAt = -1
		case fl&pfAMO != 0:
			flags |= rfAMO
			c.serializeSeq = seq
			c.amoDoneAt = -1
		case !needsIQ:
			flags |= rfDone // NOP/Invalid: complete at dispatch
		}

		ri := int(robIdx)
		c.rob.seq[ri] = seq
		c.rob.pre[ri] = *p
		c.rob.pc[ri] = f.pc
		c.rob.npc[ri] = f.npc
		c.rob.dst[ri] = dst
		c.rob.old[ri] = old
		c.rob.lq[ri] = lqIdx
		c.rob.sq[ri] = sqIdx
		c.rob.ckpt[ri] = ckptID
		c.rob.flags[ri] = flags
		c.robCount++

		c.fetchHead++
		if c.fetchHead == len(c.fetchQ) {
			c.fetchQ = c.fetchQ[:0]
			c.fetchHead = 0
		}

		if needsIQ {
			iqe.seq = seq
			iqe.robIdx = robIdx
			iqe.class = p.Class
			c.iq = append(c.iq, iqe)
			c.iqUnready = false
		}
	}
}

// captureOperands records the dispatch-time physical register of each
// operand role, following the predecoded capture plan. Integer r0 maps to
// -1 (constant zero).
func (c *OoO) captureOperands(p *Pre) iqEntry {
	e := iqEntry{ps1: -1, ps2: -1, pf1: -1, pf2: -1}
	fl := p.Flags
	if fl&pfReadInt1 != 0 && p.Rs1 != isa.RegZero {
		e.ps1 = c.mapInt[p.Rs1]
		if !c.physIntReady[e.ps1] {
			e.need |= needPs1
		}
	}
	if fl&pfReadInt2 != 0 && p.Rs2 != isa.RegZero {
		e.ps2 = c.mapInt[p.Rs2]
		if !c.physIntReady[e.ps2] {
			e.need |= needPs2
		}
	}
	if fl&pfReadFP1 != 0 {
		e.pf1 = c.mapFP[p.Rs1]
		if !c.physFPReady[e.pf1] {
			e.need |= needPf1
		}
	}
	if fl&pfReadFP2 != 0 {
		e.pf2 = c.mapFP[p.Rs2]
		if !c.physFPReady[e.pf2] {
			e.need |= needPf2
		}
	}
	return e
}

// ---------------------------------------------------------------- issue --

// iqReady refreshes the entry's need mask against the ready files and
// reports whether every operand has been produced. Cleared bits are
// sticky (see the need constants), so operands already observed ready
// cost no register-file load on later scans.
func (c *OoO) iqReady(e *iqEntry) bool {
	n := e.need
	if n == 0 {
		return true
	}
	if n&needPs1 != 0 && c.physIntReady[e.ps1] {
		n &^= needPs1
	}
	if n&needPs2 != 0 && c.physIntReady[e.ps2] {
		n &^= needPs2
	}
	if n&needPf1 != 0 && c.physFPReady[e.pf1] {
		n &^= needPf1
	}
	if n&needPf2 != 0 && c.physFPReady[e.pf2] {
		n &^= needPf2
	}
	e.need = n
	return n == 0
}

// issue grants up to IssueWidth ready instructions, oldest first, in one
// in-order pass over the seq-sorted queue, compacting granted entries out
// in place. This selects exactly the same instructions as repeated
// oldest-ready-first scans: within a cycle operand readiness never changes
// (writebacks happen in completePending) and FU availability only
// decreases, so an entry skipped at its queue position would be skipped by
// every later scan of this cycle too.
func (c *OoO) issue(now int64) {
	if len(c.iq) == 0 || c.iqUnready {
		return
	}
	intALU, intMul, fpAdd, fpMul, memPorts := c.cfg.IntALUs, c.cfg.IntMuls, c.cfg.FPAdds, c.cfg.FPMuls, c.cfg.MemPorts
	budget := c.cfg.IssueWidth
	// leftover marks a ready entry that stayed queued: FU-blocked, or in
	// the unexamined tail after the budget ran out. Only such an entry can
	// become grantable by time alone (per-cycle FU budgets refresh, the
	// unpipelined dividers free); everything else needs a writeback,
	// dispatch, recovery, or restart first — all of which clear iqUnready.
	leftover := false
	w := -1 // compaction write cursor; entries before the first grant stay put
	for k := 0; k < len(c.iq); k++ {
		e := &c.iq[k]
		if c.iqReady(e) {
			if c.fuAvailable(e.class, now, intALU, intMul, fpAdd, fpMul, memPorts) {
				c.prog = true
				ev := *e
				c.consumeFU(ev.class, now, &intALU, &intMul, &fpAdd, &fpMul, &memPorts)
				c.execute(&ev, now)
				if w < 0 {
					w = k
				}
				if budget--; budget == 0 {
					w += copy(c.iq[w:], c.iq[k+1:])
					if k+1 < len(c.iq) {
						leftover = true
					}
					break
				}
				continue
			}
			leftover = true
		}
		if w >= 0 {
			c.iq[w] = *e
			w++
		}
	}
	if w >= 0 {
		c.iq = c.iq[:w]
	}
	if !leftover {
		// Every entry still queued was examined and found not ready: skip
		// issue scans until a writeback, a dispatch, a recovery, or a
		// restart can change operand readiness. (A skipped scan would have
		// granted nothing and has no side effects, so this is invisible to
		// the simulated machine.)
		c.iqUnready = true
	}
}

func (c *OoO) fuAvailable(class fuClass, now int64, intALU, intMul, fpAdd, fpMul, memPorts int) bool {
	switch class {
	case fuMem:
		return memPorts > 0
	case fuIntMul:
		return intMul > 0
	case fuIntDiv:
		return intMul > 0 && now >= c.divBusy
	case fuFPMul:
		return fpMul > 0
	case fuFPDiv:
		return fpMul > 0 && now >= c.fpDivBusy
	case fuFPAdd:
		return fpAdd > 0
	default:
		return intALU > 0
	}
}

func (c *OoO) consumeFU(class fuClass, now int64, intALU, intMul, fpAdd, fpMul, memPorts *int) {
	switch class {
	case fuMem:
		*memPorts--
	case fuIntMul:
		*intMul--
	case fuIntDiv:
		*intMul--
		c.divBusy = now + c.cfg.DivLat // unpipelined divider
	case fuFPMul:
		*fpMul--
	case fuFPDiv:
		*fpMul--
		c.fpDivBusy = now + c.cfg.FPSqrtLat
	case fuFPAdd:
		*fpAdd--
	default:
		*intALU--
	}
}

// isFPUnit reports whether in occupies the FP adder pipeline (classOf's
// catch-all for FP ops that are not multiplies/divides/memory).
func isFPUnit(in isa.Inst) bool {
	if in.FPDst() >= 0 {
		return true
	}
	switch in.Op {
	case isa.OpFEQ, isa.OpFLT, isa.OpFLE, isa.OpFCVTWD, isa.OpFMVXD:
		return true
	}
	return false
}

// execute reads operand values just before execution (paper §2.2) from the
// dispatch-time physical registers and schedules the result via the
// predecoded record's execute function — one indirect call, no opcode
// switch.
func (c *OoO) execute(e *iqEntry, now int64) {
	ri := int(e.robIdx)
	p := &c.rob.pre[ri]

	a, b := c.physOrZero(e.ps1), c.physOrZero(e.ps2)
	var fa, fb float64
	if e.pf1 >= 0 {
		fa = c.physFPVal[e.pf1]
	}
	if e.pf2 >= 0 {
		fb = c.physFPVal[e.pf2]
	}

	if p.Flags&pfMemData != 0 {
		c.executeMem(e, p, a, b, fb, now)
		return
	}

	res := p.Exec(p, c.rob.pc[ri], a, b, fa, fb)
	op := pendingOp{at: now + int64(p.Lat), seq: e.seq, robIdx: e.robIdx, lqIdx: -1, valInt: res.intVal, valFP: res.fpVal}
	if res.isCTI {
		op.kind = pCTI
		op.actualNext = res.next
		op.taken = res.taken
	} else {
		op.kind = pWriteback
	}
	c.addPending(op)
}

// addPending queues a scheduled completion, maintaining the earliest-due
// bound that lets completePending skip cycles with nothing due.
func (c *OoO) addPending(op pendingOp) {
	if op.at < c.pendMin {
		c.pendMin = op.at
	}
	c.pending = append(c.pending, op)
}

func (c *OoO) physOrZero(p int16) int64 {
	if p < 0 {
		return 0
	}
	return c.physIntVal[p]
}

func (c *OoO) executeMem(e *iqEntry, p *Pre, base, ival int64, fval float64, now int64) {
	ri := int(e.robIdx)
	addr := uint64(base + int64(p.Imm))
	if p.Flags&pfLoad != 0 {
		lqi := c.rob.lq[ri]
		c.lq.addr[lqi] = addr
		c.addPending(pendingOp{
			at: now + c.cfg.AGULat, kind: pLoadIssue, seq: c.rob.seq[ri], robIdx: e.robIdx, lqIdx: lqi,
		})
		return
	}
	sqi := c.rob.sq[ri]
	c.sq.addr[sqi] = addr
	if p.Op == isa.OpFSD {
		c.sq.value[sqi] = math.Float64bits(fval)
	} else {
		c.sq.value[sqi] = uint64(ival)
	}
	c.addPending(pendingOp{
		at: now + c.cfg.AGULat, kind: pStoreReady, seq: c.rob.seq[ri], robIdx: e.robIdx, lqIdx: -1,
	})
}

// ----------------------------------------------------------- completion --

func (c *OoO) completePending(now int64) {
	if now < c.pendMin {
		// Nothing can be due: pendMin is a lower bound on every queued
		// op's time. A skipped walk would only have re-queued every op.
		return
	}
	// Swap buffers: handlers (and load retries) append to the fresh
	// c.pending while we walk the old list.
	cur := c.pending
	c.pending = c.pendingSpare[:0]
	c.pendMin = math.MaxInt64
	for i := range cur {
		op := cur[i]
		if op.at > now {
			if op.at < c.pendMin {
				c.pendMin = op.at
			}
			c.pending = append(c.pending, op)
			continue
		}
		c.prog = true
		switch op.kind {
		case pWriteback:
			c.stats.OpsWB++
			ri := int(op.robIdx)
			if c.rob.flags[ri]&rfValid != 0 && c.rob.seq[ri] == op.seq {
				c.writeback(op.robIdx, op.valInt, op.valFP)
				c.rob.flags[ri] |= rfDone
			}
		case pCTI:
			c.resolveCTI(op, now)
		case pStoreReady:
			ri := int(op.robIdx)
			if c.rob.flags[ri]&rfValid != 0 && c.rob.seq[ri] == op.seq {
				c.sq.flags[c.rob.sq[ri]] |= sfReady
				c.rob.flags[ri] |= rfDone
				c.kickParkedLoads(now)
			}
		case pLoadIssue:
			c.stats.OpsLoadIssue++
			c.loadStep(op, now)
		case pLoadDone:
			c.stats.OpsLoadDone++
			c.finishLoad(op, now)
		}
	}
	c.pendingSpare = cur[:0]
}

func (c *OoO) writeback(robIdx int16, vi int64, vf float64) {
	ri := int(robIdx)
	dst := c.rob.dst[ri]
	if dst < 0 {
		return
	}
	if c.rob.flags[ri]&rfDstFP != 0 {
		c.physFPVal[dst] = vf
		c.physFPReady[dst] = true
	} else {
		c.physIntVal[dst] = vi
		c.physIntReady[dst] = true
	}
	c.iqUnready = false
}

func (c *OoO) resolveCTI(op pendingOp, now int64) {
	ri := int(op.robIdx)
	if c.rob.flags[ri]&rfValid == 0 || c.rob.seq[ri] != op.seq {
		return
	}
	c.writeback(op.robIdx, op.valInt, op.valFP) // link register, if any
	c.rob.flags[ri] |= rfDone
	c.pred.update(&c.rob.pre[ri], c.rob.pc[ri], op.taken, op.actualNext)
	if ck := c.rob.ckpt[ri]; ck >= 0 {
		c.ckptFree = append(c.ckptFree, ck)
		c.rob.ckpt[ri] = -1
		if op.actualNext != c.rob.npc[ri] {
			c.recover(op.robIdx, ck, op.actualNext, now)
		}
	} else if op.actualNext != c.rob.npc[ri] {
		// JAL with an exact target cannot mispredict; defensive only.
		panic(fmt.Sprintf("cpu: unpredicted mispredict at pc %#x", c.rob.pc[ri]))
	}
}

// recover squashes everything younger than the mispredicted instruction at
// rob index brIdx, restores the rename maps from its checkpoint, and
// redirects fetch.
func (c *OoO) recover(brIdx int16, ckpt int8, target uint64, now int64) {
	c.stats.Mispred++
	brSeq := c.rob.seq[brIdx]

	// Restore rename state.
	ck := &c.ckpts[ckpt]
	c.mapInt = ck.mapInt
	c.mapFP = ck.mapFP
	c.pred.restoreRAS(ck.rasTop)

	// Walk the ROB tail-to-branch, undoing younger entries.
	for c.robCount > 0 {
		ti := (c.robHead + c.robCount - 1) % c.cfg.ROBSize
		if c.rob.seq[ti] <= brSeq {
			break
		}
		fl := c.rob.flags[ti]
		if dst := c.rob.dst[ti]; dst >= 0 {
			if fl&rfDstFP != 0 {
				c.freeFP = append(c.freeFP, dst)
			} else {
				c.freeInt = append(c.freeInt, dst)
			}
		}
		if ckp := c.rob.ckpt[ti]; ckp >= 0 {
			c.ckptFree = append(c.ckptFree, ckp)
		}
		if lqi := c.rob.lq[ti]; lqi >= 0 {
			c.lq.flags[lqi] = 0
			c.lqTail = int(lqi)
			c.lqCount--
		}
		if sqi := c.rob.sq[ti]; sqi >= 0 {
			c.sq.flags[sqi] = 0
			c.sqTail = int(sqi)
			c.sqCount--
		}
		if fl&(rfSys|rfAMO) != 0 {
			// A squashed serialising instruction releases the stall.
			c.serializeSeq = -1
			c.sysRetryAt = -1
			c.amoDoneAt = -1
			c.sysHoldFetch = false
		}
		c.rob.flags[ti] = 0
		c.robCount--
		c.stats.Squashed++
	}

	// Purge younger IQ entries (a seq-ordered suffix) and scheduled
	// completions.
	for len(c.iq) > 0 && c.iq[len(c.iq)-1].seq > brSeq {
		c.iq = c.iq[:len(c.iq)-1]
	}
	c.iqUnready = false
	kept := c.pending[:0]
	for _, op := range c.pending {
		if op.seq <= brSeq {
			kept = append(kept, op)
		}
	}
	c.pending = kept

	// Drop squashed loads from MSHR waiter chains (fills still complete and
	// install the line; nobody consumes the data). Surviving loads keep
	// their relative order.
	for i := range c.mshrs {
		m := &c.mshrs[i]
		if !m.valid {
			continue
		}
		head, tail := int16(-1), int16(-1)
		for lqi := m.loadHead; lqi >= 0; {
			nxt := c.lq.next[lqi]
			if c.lq.flags[lqi]&lfValid != 0 && c.lq.seq[lqi] <= brSeq {
				if head < 0 {
					head = lqi
				} else {
					c.lq.next[tail] = lqi
				}
				tail = lqi
				c.lq.next[lqi] = -1
			}
			lqi = nxt
		}
		m.loadHead, m.loadTail = head, tail
	}

	// Redirect the front end.
	c.fetchQ = c.fetchQ[:0]
	c.fetchHead = 0
	c.fetchPC = target
	c.fetchBlocked = now + 1
	c.fetchMiss = false
}

// ----------------------------------------------------------------- load --

// loadStep runs after address generation: disambiguate against older
// stores, then forward or access the L1.
func (c *OoO) loadStep(op pendingOp, now int64) {
	lqi := op.lqIdx
	if c.lq.flags[lqi]&lfValid == 0 || c.lq.seq[lqi] != op.seq {
		return // squashed
	}
	addr := c.lq.addr[lqi]
	st, conflict, unknown := c.olderStore(lqi)
	if unknown {
		// An older store address is still unresolved; the store's AGU
		// completion kicks us.
		c.lq.flags[lqi] |= lfParked
		return
	}
	if conflict {
		if st < 0 {
			// Overlapping but non-forwardable store: wait for it to drain.
			c.lq.flags[lqi] |= lfParked
			return
		}
		// Store-to-load forwarding.
		done := op
		done.kind = pLoadDone
		done.at = now + 1
		done.valInt = int64(c.sq.value[st])
		done.taken = true // flag: value forwarded, skip the memory read
		c.reschedule(done)
		return
	}

	// Access the L1 data cache.
	switch c.l1d.Probe(addr, false) {
	case cache.Hit:
		done := op
		done.kind = pLoadDone
		done.at = now + c.env.CacheCfg.L1HitLat
		c.reschedule(done)
	case cache.Blocked:
		line := c.env.CacheCfg.LineAddr(addr)
		if m := c.findMSHR(line); m != nil {
			c.mshrAddLoad(m, lqi)
			return
		}
		// Line pending with no MSHR (fill already applied this cycle);
		// retry next cycle.
		op.at = now + 1
		c.reschedule(op)
	default: // miss
		line := c.env.CacheCfg.LineAddr(addr)
		if m := c.findMSHR(line); m != nil {
			c.mshrAddLoad(m, lqi)
			return
		}
		m := c.allocMSHR(line)
		if m == nil {
			c.lq.flags[lqi] |= lfParked // all MSHRs busy; a fill delivery kicks us
			return
		}
		c.mshrAddLoad(m, lqi)
		victimAddr, victimDirty, victimValid := c.l1d.Reserve(line)
		c.send(event.Event{Kind: event.KReadShared, Time: now, Addr: line}, victimAddr, victimDirty, victimValid)
		c.maybePrefetch(line, now)
	}
}

// mshrAddLoad appends LQ index lqi to m's intrusive waiter chain. A load is
// on at most one chain: once appended it is neither parked nor pending, so
// no other loadStep can see it until the fill delivers and resets the chain.
func (c *OoO) mshrAddLoad(m *mshr, lqi int16) {
	c.lq.next[lqi] = -1
	if m.loadHead < 0 {
		m.loadHead = lqi
	} else {
		c.lq.next[m.loadTail] = lqi
	}
	m.loadTail = lqi
}

// maybePrefetch issues a next-line prefetch after a demand miss when the
// prefetcher is enabled, the line is absent, and an MSHR is free.
func (c *OoO) maybePrefetch(demand uint64, now int64) {
	if !c.cfg.Prefetch {
		return
	}
	next := demand + uint64(c.env.CacheCfg.LineSize)
	if c.l1d.StateOf(next) != cache.Invalid || c.findMSHR(next) != nil {
		return
	}
	m := c.allocMSHR(next)
	if m == nil {
		return
	}
	c.stats.Prefetches++
	victimAddr, victimDirty, victimValid := c.l1d.Reserve(next)
	c.send(event.Event{Kind: event.KReadShared, Time: now, Addr: next}, victimAddr, victimDirty, victimValid)
}

// olderStore scans the store queue for stores older than the load at LQ
// index lqi touching the same word. Returns (forwardableStoreIdx, conflict,
// unknownAddr); the index is -1 when no forwardable store exists.
func (c *OoO) olderStore(lqi int16) (st int, conflict, unknown bool) {
	ldSeq := c.lq.seq[lqi]
	ldAddr := c.lq.addr[lqi]
	wordAddr := ldAddr &^ 7
	best := -1
	var bestSeq int64 = -1
	for i := range c.sq.flags {
		fl := c.sq.flags[i]
		if fl&sfValid == 0 || c.sq.seq[i] >= ldSeq {
			continue
		}
		if fl&sfReady == 0 {
			return -1, false, true
		}
		if c.sq.addr[i]&^7 != wordAddr {
			continue
		}
		if c.sq.seq[i] > bestSeq {
			best, bestSeq = i, c.sq.seq[i]
		}
	}
	if best < 0 {
		return -1, false, false
	}
	if c.sq.addr[best] == ldAddr && c.sq.width[best] == c.lq.width[lqi] {
		return best, true, false
	}
	return -1, true, false // overlap, not forwardable: wait for drain
}

// finishLoad delivers the load's data: a forwarded value, or a functional
// read of shared memory performed now — the simulated instant the data
// arrives, so cross-thread value races resolve in simulation-time order.
func (c *OoO) finishLoad(op pendingOp, now int64) {
	lqi := op.lqIdx
	if c.lq.flags[lqi]&lfValid == 0 || c.lq.seq[lqi] != op.seq {
		return // squashed
	}
	var raw uint64
	if op.taken {
		raw = uint64(op.valInt) // forwarded
	} else {
		raw = c.readMem(c.lq.op[lqi], c.lq.addr[lqi])
	}
	robIdx := c.lq.rob[lqi]
	if c.lq.op[lqi] == isa.OpFLD {
		c.writeback(robIdx, 0, math.Float64frombits(raw))
	} else {
		c.writeback(robIdx, extend(c.lq.op[lqi], raw), 0)
	}
	c.lq.flags[lqi] |= lfDone
	c.rob.flags[robIdx] |= rfDone
}

func (c *OoO) readMem(op isa.Op, addr uint64) uint64 {
	switch op {
	case isa.OpLD, isa.OpFLD:
		v, _ := c.env.Mem.LoadWord(addr)
		return v
	case isa.OpLW, isa.OpLWU:
		v, _ := c.env.Mem.Load32(addr)
		return uint64(v)
	case isa.OpLB, isa.OpLBU:
		v, _ := c.env.Mem.Load8(addr)
		return uint64(v)
	}
	return 0
}

// extend applies the load's sign/zero extension to raw bits.
func extend(op isa.Op, raw uint64) int64 {
	switch op {
	case isa.OpLW:
		return int64(int32(uint32(raw)))
	case isa.OpLWU:
		return int64(uint32(raw))
	case isa.OpLB:
		return int64(int8(uint8(raw)))
	case isa.OpLBU:
		return int64(uint8(raw))
	}
	return int64(raw)
}

// reschedule re-enqueues op on the (fresh) pending list.
func (c *OoO) reschedule(op pendingOp) {
	c.addPending(op)
}

// kickParkedLoads requeues every parked load for another loadStep pass.
func (c *OoO) kickParkedLoads(now int64) {
	for i := range c.lq.flags {
		if c.lq.flags[i]&(lfValid|lfParked) != lfValid|lfParked {
			continue
		}
		c.lq.flags[i] &^= lfParked
		c.stats.Kicks++
		c.addPending(pendingOp{
			at: now, kind: pLoadIssue, seq: c.lq.seq[i], robIdx: c.lq.rob[i], lqIdx: int16(i),
		})
	}
}
