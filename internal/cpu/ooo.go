package cpu

import (
	"fmt"
	"math"

	"slacksim/internal/cache"
	"slacksim/internal/event"
	"slacksim/internal/isa"
)

// OoO is the detailed out-of-order core model: 4-wide fetch/dispatch/
// issue/commit, a 64-entry ROB, physical register files with rename-map
// checkpoints for branch recovery, a unified issue queue, a load/store
// queue with store-to-load forwarding, and non-blocking L1 caches with
// MSHRs. As in the paper's NetBurst-like target, operand values are read
// from the physical register file just before execution (§2.2), and loads
// read the shared functional memory when their access completes — which is
// exactly how slack-induced simulated-time distortions become visible to
// the workload (§3.2.3).
type OoO struct {
	cfg Config
	env Env

	stats  Stats
	active bool

	l1d, l1i *cache.L1
	pred     *predictor
	pd       *predecode

	// Register state.
	physIntVal   []int64
	physIntReady []bool
	physFPVal    []float64
	physFPReady  []bool
	mapInt       [isa.NumIntRegs]int16
	mapFP        [isa.NumFPRegs]int16
	freeInt      []int16
	freeFP       []int16

	// Front end.
	seqCounter   int64
	fetchPC      uint64
	fetchBlocked int64 // no fetch until this cycle (mispredict redirect)
	fetchMiss    bool  // waiting for an instruction fill
	fetchMissLn  uint64
	fetchQ       []fetched
	fetchHead    int // consumed prefix of fetchQ (compacted when drained)

	// Window.
	rob      []robEntry
	robHead  int
	robCount int
	// iq holds waiting instructions in dispatch (= seq) order: dispatch
	// appends, issue compacts in place, recovery truncates the squashed
	// suffix. Order is invariant, which lets issue run a single in-order
	// pass instead of IssueWidth oldest-ready scans.
	iq []iqEntry
	// iqUnready short-circuits issue while no queued entry has all source
	// operands ready. Readiness only changes through writeback/writebackAt,
	// dispatch of a new entry, recovery, or Start — each of which clears the
	// flag. (Source physical registers of a waiting entry cannot be
	// reallocated before it issues: the next definer of the same
	// architectural register commits after this entry does.)
	iqUnready bool

	lq                      []lqEntry
	lqHead, lqTail, lqCount int
	sq                      []sqEntry
	sqHead, sqTail, sqCount int

	ckpts    []checkpoint
	ckptFree []int8

	pending      []pendingOp // scheduled completions, unordered small slice
	pendingSpare []pendingOp // double buffer for completePending
	mshrs        []mshr
	eventSeq     int64

	// Commit-point serialisation (syscalls and atomics).
	serializeSeq int64 // -1 when inactive
	sysHoldFetch bool  // a dispatched syscall suspends fetch until it retires
	prog         bool  // progress flag for the current Tick
	drainRetryAt int64 // store-drain wants to retry at this cycle (-1 none)
	sysIssued    bool
	sysDone      bool
	sysRetryAt   int64 // re-issue a blocking syscall at this cycle (-1: none)
	sysResult    int64
	amoDoneAt    int64 // -1 when no AMO in progress

	divBusy   int64
	fpDivBusy int64
}

type fetched struct {
	inst   isa.Inst
	pc     uint64
	npc    uint64 // predicted next pc
	rasTop int    // RAS top before this instruction's own push/pop
}

type robEntry struct {
	valid   bool
	seq     int64
	inst    isa.Inst
	pc      uint64
	npc     uint64 // predicted next pc
	physDst int16  // -1 if none
	oldDst  int16
	dstFP   bool
	done    bool
	lqIdx   int16 // -1
	sqIdx   int16 // -1
	ckpt    int8  // -1
	isSys   bool
	isAMO   bool
}

// iqEntry captures the dispatch-time rename of each operand role so that
// execution reads the values this instruction's program-order position
// requires, regardless of younger redefinitions in flight. A physical index
// of -1 means "constant zero / unused".
type iqEntry struct {
	seq    int64
	robIdx int16
	ps1    int16 // integer rs1
	ps2    int16 // integer rs2 (store data for integer stores)
	pf1    int16 // fp fs1
	pf2    int16 // fp fs2 (store data for fp stores)
	fp1Use bool
	fp2Use bool
}

type lqEntry struct {
	valid  bool
	seq    int64
	robIdx int16
	op     isa.Op
	addr   uint64
	width  int
	done   bool
	// parked marks a load waiting on a condition that clears via another
	// micro-event (an older store's address/value, a store drain, a free
	// MSHR) rather than the passage of cycles; kickParkedLoads requeues it
	// when such an event fires. Event-driven waits keep a fully stalled
	// core's Tick a no-op, so the engine can freeze it instead of letting
	// it burn simulated cycles at host speed.
	parked bool
}

type sqEntry struct {
	valid     bool
	seq       int64
	robIdx    int16
	op        isa.Op
	addr      uint64
	width     int
	value     uint64 // raw bits
	ready     bool   // address+value computed
	committed bool
	drainWait bool // waiting for an upgrade/fill reply
}

type checkpoint struct {
	mapInt [isa.NumIntRegs]int16
	mapFP  [isa.NumFPRegs]int16
	rasTop int
}

type pendingKind uint8

const (
	pWriteback  pendingKind = iota // ALU/FP result
	pCTI                           // control transfer resolution (+ link writeback)
	pLoadIssue                     // address generated; run the load pipeline step
	pLoadDone                      // load data available: functional read + writeback
	pStoreReady                    // store address/value computed
)

type pendingOp struct {
	at     int64
	kind   pendingKind
	seq    int64
	robIdx int16
	lqIdx  int16

	valInt int64
	valFP  float64

	// CTI resolution data.
	actualNext uint64
	taken      bool
}

type mshr struct {
	valid   bool
	line    uint64
	upgrade bool
	instr   bool    // instruction-side fill
	loads   []int16 // LQ indices waiting on this line
	store   bool    // the committed-store drain head waits on this line
}

// NewOoO builds an out-of-order core. A bad cache geometry is reported as
// an error so machine construction fails fast instead of panicking.
func NewOoO(cfg Config, env Env) (*OoO, error) {
	l1d, err := cache.NewL1(env.CacheCfg)
	if err != nil {
		return nil, err
	}
	l1i, err := cache.NewL1(env.CacheCfg)
	if err != nil {
		return nil, err
	}
	c := &OoO{
		cfg:  cfg,
		env:  env,
		l1d:  l1d,
		l1i:  l1i,
		pred: newPredictor(&cfg),
		pd:   newPredecode(&env),

		physIntVal:   make([]int64, cfg.PhysInt),
		physIntReady: make([]bool, cfg.PhysInt),
		physFPVal:    make([]float64, cfg.PhysFP),
		physFPReady:  make([]bool, cfg.PhysFP),

		rob:   make([]robEntry, cfg.ROBSize),
		iq:    make([]iqEntry, 0, cfg.IQSize),
		lq:    make([]lqEntry, cfg.LQSize),
		sq:    make([]sqEntry, cfg.SQSize),
		ckpts: make([]checkpoint, cfg.MaxBranches),
		mshrs: make([]mshr, cfg.MSHRs),

		serializeSeq: -1,
		sysRetryAt:   -1,
		amoDoneAt:    -1,
		drainRetryAt: -1,
	}
	for i := int8(0); i < int8(cfg.MaxBranches); i++ {
		c.ckptFree = append(c.ckptFree, i)
	}
	c.resetRename()
	return c, nil
}

func (c *OoO) resetRename() {
	for r := 0; r < isa.NumIntRegs; r++ {
		c.mapInt[r] = int16(r)
		c.physIntVal[r] = 0
		c.physIntReady[r] = true
	}
	for r := 0; r < isa.NumFPRegs; r++ {
		c.mapFP[r] = int16(r)
		c.physFPVal[r] = 0
		c.physFPReady[r] = true
	}
	c.freeInt = c.freeInt[:0]
	for p := int16(isa.NumIntRegs); p < int16(c.cfg.PhysInt); p++ {
		c.freeInt = append(c.freeInt, p)
	}
	c.freeFP = c.freeFP[:0]
	for p := int16(isa.NumFPRegs); p < int16(c.cfg.PhysFP); p++ {
		c.freeFP = append(c.freeFP, p)
	}
}

// ID implements Core.
func (c *OoO) ID() int { return c.env.ID }

// Stats implements Core. The returned pointer is stable; the L1 cache
// counters are synchronised into it on each call.
func (c *OoO) Stats() *Stats {
	c.stats.L1D = c.l1d.Stats
	c.stats.L1I = c.l1i.Stats
	return &c.stats
}

// Active implements Core.
func (c *OoO) Active() bool { return c.active }

// MarkROI implements Core.
func (c *OoO) MarkROI(now int64) {
	if !c.stats.ROIMarked {
		c.stats.ROIMarked = true
		c.stats.ROIStartCycles = c.stats.Cycles + c.stats.IdleCycles
		c.stats.ROIStartCommitted = c.stats.Committed
	}
}

// Start implements Core.
func (c *OoO) Start(pc, sp uint64, arg int64) {
	c.resetRename()
	c.physIntVal[c.mapInt[isa.RegSP]] = int64(sp)
	c.physIntVal[c.mapInt[isa.RegA0]] = arg
	c.fetchPC = pc
	c.active = true
	c.fetchMiss = false
	c.fetchBlocked = 0
	c.iqUnready = false
}

// Stop implements Core.
func (c *OoO) Stop() {
	c.active = false
	// Drop all in-flight state; the thread on this core is gone.
	c.fetchQ = c.fetchQ[:0]
	c.fetchHead = 0
	for i := range c.rob {
		c.rob[i].valid = false
	}
	c.robHead, c.robCount = 0, 0
	c.iq = c.iq[:0]
	c.iqUnready = false
	for i := range c.lq {
		c.lq[i].valid = false
	}
	c.lqHead, c.lqTail, c.lqCount = 0, 0, 0
	for i := range c.sq {
		c.sq[i].valid = false
	}
	c.sqHead, c.sqTail, c.sqCount = 0, 0, 0
	c.pending = c.pending[:0]
	for i := range c.mshrs {
		c.mshrs[i] = mshr{}
	}
	c.fetchMiss = false
	c.serializeSeq = -1
	c.sysHoldFetch = false
	c.sysIssued, c.sysDone = false, false
	c.sysRetryAt = -1
	c.amoDoneAt = -1
}

// DebugTrace, when non-nil, receives a line per interesting micro-event on
// cores whose id is in DebugCores (test diagnostics only; not used in
// normal runs).
var (
	DebugTrace func(s string)
	DebugCores = -1
)

// dbgOn reports whether tracing is enabled for this core. Call sites must
// gate on it so trace-argument construction (disassembly, Sprintf) stays
// entirely off the simulation's hot path.
func (c *OoO) dbgOn() bool { return DebugTrace != nil && c.env.ID == DebugCores }

func (c *OoO) dbg(now int64, format string, args ...any) {
	DebugTrace(fmt.Sprintf("t=%d c%d ", now, c.env.ID) + fmt.Sprintf(format, args...))
}

// Tick implements Core: one simulated cycle. Stages run commit-first so
// that each pipeline stage consumes the previous cycle's products.
func (c *OoO) Tick(now int64) bool {
	if !c.active {
		c.stats.IdleCycles++
		return false
	}
	c.stats.Cycles++
	c.prog = false
	c.commit(now)
	c.drainStores(now)
	c.completePending(now)
	c.issue(now)
	c.dispatch(now)
	c.fetch(now)
	return c.prog
}

// NextWork implements Core. Work scheduled at exactly `now` is returned:
// the caller has not yet simulated cycle `now`.
func (c *OoO) NextWork(now int64) int64 {
	next := int64(math.MaxInt64)
	consider := func(t int64) {
		if t >= now && t < next {
			next = t
		}
	}
	for i := range c.pending {
		consider(c.pending[i].at)
	}
	if c.sysRetryAt >= 0 {
		consider(c.sysRetryAt)
	}
	if c.amoDoneAt >= 0 {
		consider(c.amoDoneAt)
	}
	if c.drainRetryAt >= 0 {
		consider(c.drainRetryAt)
	}
	if c.fetchBlocked >= now && !c.fetchMiss {
		consider(c.fetchBlocked)
	}
	// An unpipelined divider can be busy with no corresponding pending op
	// (a squash purges the op but not the busy horizon); a ready divide in
	// the issue queue then becomes grantable only once the unit frees.
	if len(c.iq) > 0 {
		consider(c.divBusy)
		consider(c.fpDivBusy)
	}
	return next
}

// WaitingSyscall implements Core.
func (c *OoO) WaitingSyscall() bool {
	return c.active && c.sysIssued && !c.sysDone && c.sysRetryAt < 0
}

// Skip implements Core.
func (c *OoO) Skip(n int64) {
	c.stats.Skipped += n
	if c.active {
		c.stats.Cycles += n
	} else {
		c.stats.IdleCycles += n
	}
}

// ---------------------------------------------------------------- fetch --

func (c *OoO) fetch(now int64) {
	if c.fetchMiss {
		c.stats.FetchStall++
		return
	}
	if c.sysHoldFetch {
		// A system call is in flight: the front end is held so the core is
		// fully quiescent — no new fetch misses — by the time the call
		// reaches the kernel and possibly puts this thread to sleep. (The
		// engine excludes sleeping cores from the global time; a straggler
		// request emitted after that point would carry a stale timestamp.)
		c.stats.SerializeOn++
		return
	}
	if now < c.fetchBlocked {
		return
	}
	var curLine uint64
	haveLine := false
	for n := 0; n < c.cfg.FetchWidth && c.fetchQLen() < c.cfg.FetchQSize; n++ {
		line := c.env.CacheCfg.LineAddr(c.fetchPC)
		if !haveLine || line != curLine {
			switch c.l1i.Probe(c.fetchPC, false) {
			case cache.Hit:
				curLine, haveLine = line, true
			case cache.Blocked:
				// A fill for this line is already outstanding; wait.
				c.stats.FetchStall++
				return
			default:
				if !c.startFetchMiss(line, now) {
					c.stats.FetchStall++
				}
				return
			}
		}
		in, ok := c.pd.lookup(c.fetchPC)
		if !ok {
			word, ok := c.env.Mem.LoadWord(c.fetchPC)
			if !ok {
				// Fetching unmapped memory: only reachable on a wrong path
				// or in a broken workload; stall until a redirect rescues us.
				return
			}
			in = isa.Decode(word)
		}
		rasTop := c.pred.snapshotRAS()
		npc := c.fetchPC + isa.InstBytes
		taken := false
		if in.IsCTI() {
			npc, taken = c.pred.predict(in, c.fetchPC)
		}
		c.fetchQ = append(c.fetchQ, fetched{inst: in, pc: c.fetchPC, npc: npc, rasTop: rasTop})
		if c.dbgOn() {
			c.dbg(now, "fetch pc=%#x %s npc=%#x", c.fetchPC, in.Disassemble(c.fetchPC), npc)
		}
		c.stats.Fetched++
		c.prog = true
		c.fetchPC = npc
		if taken {
			break // fetch group ends at a predicted-taken transfer
		}
	}
}

func (c *OoO) startFetchMiss(line uint64, now int64) bool {
	if c.findMSHR(line) != nil {
		c.fetchMiss, c.fetchMissLn = true, line
		return true
	}
	m := c.allocMSHR(line)
	if m == nil {
		return false
	}
	m.instr = true
	victimAddr, victimDirty, victimValid := c.l1i.Reserve(line)
	c.fetchMiss, c.fetchMissLn = true, line
	if c.dbgOn() {
		c.dbg(now, "fetchmiss line=%#x", line)
	}
	c.send(event.Event{Kind: event.KFetch, Time: now, Addr: line}, victimAddr, victimDirty, victimValid)
	c.prog = true
	return true
}

func (c *OoO) fetchQLen() int { return len(c.fetchQ) - c.fetchHead }

// ------------------------------------------------------------- dispatch --

func (c *OoO) dispatch(now int64) {
	for n := 0; n < c.cfg.Width && c.fetchQLen() > 0; n++ {
		if c.serializeSeq >= 0 {
			c.stats.SerializeOn++
			return
		}
		if c.robCount >= c.cfg.ROBSize {
			c.stats.ROBStall++
			return
		}
		f := c.fetchQ[c.fetchHead]
		in := f.inst

		needsIQ := c.needsIQ(in)
		if needsIQ && len(c.iq) >= c.cfg.IQSize {
			return
		}
		isLoad, isStore := in.IsLoad(), in.IsStore()
		if isLoad && c.lqCount >= c.cfg.LQSize {
			c.stats.LSQStall++
			return
		}
		if isStore && c.sqCount >= c.cfg.SQSize {
			c.stats.LSQStall++
			return
		}
		needCkpt := in.IsBranch() || in.Op == isa.OpJALR
		if needCkpt && len(c.ckptFree) == 0 {
			return
		}
		intDst, fpDst := in.IntDst(), in.FPDst()
		if intDst >= 0 && len(c.freeInt) == 0 {
			return
		}
		if fpDst >= 0 && len(c.freeFP) == 0 {
			return
		}

		// All resources available: dispatch.
		c.prog = true
		c.fetchHead++
		if c.fetchHead == len(c.fetchQ) {
			c.fetchQ = c.fetchQ[:0]
			c.fetchHead = 0
		}
		c.seqCounter++
		seq := c.seqCounter

		e := robEntry{
			valid: true, seq: seq, inst: in, pc: f.pc, npc: f.npc,
			physDst: -1, oldDst: -1, lqIdx: -1, sqIdx: -1, ckpt: -1,
		}
		// Capture source renames before updating the destination mapping
		// (an instruction may read the register it writes).
		iqe := c.captureOperands(in)

		switch {
		case intDst >= 0:
			p := c.freeInt[len(c.freeInt)-1]
			c.freeInt = c.freeInt[:len(c.freeInt)-1]
			c.physIntReady[p] = false
			e.physDst, e.oldDst, e.dstFP = p, c.mapInt[intDst], false
			c.mapInt[intDst] = p
		case fpDst >= 0:
			p := c.freeFP[len(c.freeFP)-1]
			c.freeFP = c.freeFP[:len(c.freeFP)-1]
			c.physFPReady[p] = false
			e.physDst, e.oldDst, e.dstFP = p, c.mapFP[fpDst], true
			c.mapFP[fpDst] = p
		}

		if needCkpt {
			id := c.ckptFree[len(c.ckptFree)-1]
			c.ckptFree = c.ckptFree[:len(c.ckptFree)-1]
			ck := &c.ckpts[id]
			ck.mapInt = c.mapInt
			ck.mapFP = c.mapFP
			ck.rasTop = f.rasTop
			e.ckpt = id
			c.stats.Branches++
		} else if in.Op == isa.OpJAL {
			c.stats.Branches++
		}

		robIdx := int16((c.robHead + c.robCount) % c.cfg.ROBSize)

		if isLoad {
			e.lqIdx = int16(c.lqTail)
			c.lq[c.lqTail] = lqEntry{valid: true, seq: seq, robIdx: robIdx, op: in.Op, width: in.MemBytes()}
			c.lqTail = (c.lqTail + 1) % c.cfg.LQSize
			c.lqCount++
			c.stats.Loads++
		}
		if isStore {
			e.sqIdx = int16(c.sqTail)
			c.sq[c.sqTail] = sqEntry{valid: true, seq: seq, robIdx: robIdx, op: in.Op, width: in.MemBytes()}
			c.sqTail = (c.sqTail + 1) % c.cfg.SQSize
			c.sqCount++
			c.stats.Stores++
		}

		switch {
		case in.IsSyscall():
			e.isSys = true
			c.serializeSeq = seq
			c.sysHoldFetch = true
			c.sysIssued, c.sysDone = false, false
			c.sysRetryAt = -1
		case in.IsAMO():
			e.isAMO = true
			c.serializeSeq = seq
			c.amoDoneAt = -1
		case in.Op == isa.OpNOP || in.Op == isa.OpInvalid:
			e.done = true
		}

		c.rob[robIdx] = e
		c.robCount++

		if needsIQ {
			iqe.seq = seq
			iqe.robIdx = robIdx
			c.iq = append(c.iq, iqe)
			c.iqUnready = false
		}
	}
}

// needsIQ reports whether in must pass through the issue queue. Syscalls
// and AMOs execute at the commit point; NOPs complete at dispatch.
func (c *OoO) needsIQ(in isa.Inst) bool {
	if in.IsSyscall() || in.IsAMO() {
		return false
	}
	switch in.Op {
	case isa.OpNOP, isa.OpInvalid:
		return false
	}
	return true
}

// captureOperands records the dispatch-time physical register of each
// operand role. r0 maps to -1 (constant zero).
func (c *OoO) captureOperands(in isa.Inst) iqEntry {
	e := iqEntry{ps1: -1, ps2: -1, pf1: -1, pf2: -1}
	pInt := func(r uint8) int16 {
		if r == isa.RegZero {
			return -1
		}
		return c.mapInt[r]
	}
	switch in.Op.Format() {
	case isa.FmtR, isa.FmtB:
		e.ps1, e.ps2 = pInt(in.Rs1), pInt(in.Rs2)
	case isa.FmtI, isa.FmtJR, isa.FmtLoad, isa.FmtFLoad:
		e.ps1 = pInt(in.Rs1)
	case isa.FmtStore:
		e.ps1, e.ps2 = pInt(in.Rs1), pInt(in.Rs2)
	case isa.FmtFStore:
		e.ps1 = pInt(in.Rs1)
		e.pf2, e.fp2Use = c.mapFP[in.Rs2], true
	case isa.FmtFR, isa.FmtFCmp:
		e.pf1, e.fp1Use = c.mapFP[in.Rs1], true
		e.pf2, e.fp2Use = c.mapFP[in.Rs2], true
	case isa.FmtF2, isa.FmtFCvtFI:
		e.pf1, e.fp1Use = c.mapFP[in.Rs1], true
	case isa.FmtFCvtIF:
		e.ps1 = pInt(in.Rs1)
	}
	return e
}

// ---------------------------------------------------------------- issue --

func (c *OoO) iqReady(e *iqEntry) bool {
	if e.ps1 >= 0 && !c.physIntReady[e.ps1] {
		return false
	}
	if e.ps2 >= 0 && !c.physIntReady[e.ps2] {
		return false
	}
	if e.fp1Use && !c.physFPReady[e.pf1] {
		return false
	}
	if e.fp2Use && !c.physFPReady[e.pf2] {
		return false
	}
	return true
}

// issue grants up to IssueWidth ready instructions, oldest first, in one
// in-order pass over the seq-sorted queue, compacting granted entries out
// in place. This selects exactly the same instructions as repeated
// oldest-ready-first scans: within a cycle operand readiness never changes
// (writebacks happen in completePending) and FU availability only
// decreases, so an entry skipped at its queue position would be skipped by
// every later scan of this cycle too.
func (c *OoO) issue(now int64) {
	if len(c.iq) == 0 || c.iqUnready {
		return
	}
	intALU, intMul, fpAdd, fpMul, memPorts := c.cfg.IntALUs, c.cfg.IntMuls, c.cfg.FPAdds, c.cfg.FPMuls, c.cfg.MemPorts
	budget := c.cfg.IssueWidth
	readySeen := false
	w := -1 // compaction write cursor; entries before the first grant stay put
	for k := 0; k < len(c.iq); k++ {
		e := &c.iq[k]
		if c.iqReady(e) {
			readySeen = true
			if c.fuAvailable(c.rob[e.robIdx].inst, now, intALU, intMul, fpAdd, fpMul, memPorts) {
				c.prog = true
				ev := *e
				c.consumeFU(c.rob[ev.robIdx].inst, now, &intALU, &intMul, &fpAdd, &fpMul, &memPorts)
				c.execute(&ev, now)
				if w < 0 {
					w = k
				}
				if budget--; budget == 0 {
					w += copy(c.iq[w:], c.iq[k+1:])
					break
				}
				continue
			}
		}
		if w >= 0 {
			c.iq[w] = *e
			w++
		}
	}
	if w >= 0 {
		c.iq = c.iq[:w]
	}
	if budget == c.cfg.IssueWidth && !readySeen {
		// Every entry was scanned (the budget never ran out) and none had
		// ready operands: skip issue scans until a writeback, a dispatch, a
		// recovery, or a restart can change that.
		c.iqUnready = true
	}
}

func (c *OoO) fuAvailable(in isa.Inst, now int64, intALU, intMul, fpAdd, fpMul, memPorts int) bool {
	switch {
	case in.IsMem():
		return memPorts > 0
	case in.Op == isa.OpMUL:
		return intMul > 0
	case in.Op == isa.OpDIV || in.Op == isa.OpREM:
		return intMul > 0 && now >= c.divBusy
	case in.Op == isa.OpFMUL:
		return fpMul > 0
	case in.Op == isa.OpFDIV || in.Op == isa.OpFSQRT:
		return fpMul > 0 && now >= c.fpDivBusy
	case isFPUnit(in):
		return fpAdd > 0
	default:
		return intALU > 0
	}
}

func (c *OoO) consumeFU(in isa.Inst, now int64, intALU, intMul, fpAdd, fpMul, memPorts *int) {
	switch {
	case in.IsMem():
		*memPorts--
	case in.Op == isa.OpMUL:
		*intMul--
	case in.Op == isa.OpDIV || in.Op == isa.OpREM:
		*intMul--
		c.divBusy = now + c.cfg.DivLat // unpipelined divider
	case in.Op == isa.OpFMUL:
		*fpMul--
	case in.Op == isa.OpFDIV || in.Op == isa.OpFSQRT:
		*fpMul--
		c.fpDivBusy = now + c.cfg.FPSqrtLat
	case isFPUnit(in):
		*fpAdd--
	default:
		*intALU--
	}
}

func isFPUnit(in isa.Inst) bool {
	if in.FPDst() >= 0 {
		return true
	}
	switch in.Op {
	case isa.OpFEQ, isa.OpFLT, isa.OpFLE, isa.OpFCVTWD, isa.OpFMVXD:
		return true
	}
	return false
}

// execute reads operand values just before execution (paper §2.2) from the
// dispatch-time physical registers and schedules the result.
func (c *OoO) execute(e *iqEntry, now int64) {
	rb := &c.rob[e.robIdx]
	in := rb.inst

	a, b := c.physOrZero(e.ps1), c.physOrZero(e.ps2)
	var fa, fb float64
	if e.fp1Use {
		fa = c.physFPVal[e.pf1]
	}
	if e.fp2Use {
		fb = c.physFPVal[e.pf2]
	}

	if in.IsMem() {
		c.executeMem(e, rb, a, b, fb, now)
		return
	}

	res := execALU(in, rb.pc, a, b, fa, fb)
	lat := execLatency(&c.cfg, in)
	op := pendingOp{at: now + lat, seq: e.seq, robIdx: e.robIdx, lqIdx: -1, valInt: res.intVal, valFP: res.fpVal}
	if res.isCTI {
		op.kind = pCTI
		op.actualNext = res.next
		op.taken = res.taken
	} else {
		op.kind = pWriteback
	}
	c.pending = append(c.pending, op)
}

func (c *OoO) physOrZero(p int16) int64 {
	if p < 0 {
		return 0
	}
	return c.physIntVal[p]
}

func (c *OoO) executeMem(e *iqEntry, rb *robEntry, base, ival int64, fval float64, now int64) {
	in := rb.inst
	addr := uint64(base + int64(in.Imm))
	if in.IsLoad() {
		c.lq[rb.lqIdx].addr = addr
		c.pending = append(c.pending, pendingOp{
			at: now + c.cfg.AGULat, kind: pLoadIssue, seq: rb.seq, robIdx: e.robIdx, lqIdx: rb.lqIdx,
		})
		return
	}
	sqe := &c.sq[rb.sqIdx]
	sqe.addr = addr
	if in.Op == isa.OpFSD {
		sqe.value = math.Float64bits(fval)
	} else {
		sqe.value = uint64(ival)
	}
	c.pending = append(c.pending, pendingOp{
		at: now + c.cfg.AGULat, kind: pStoreReady, seq: rb.seq, robIdx: e.robIdx, lqIdx: -1,
	})
}

// ----------------------------------------------------------- completion --

func (c *OoO) completePending(now int64) {
	// Swap buffers: handlers (and load retries) append to the fresh
	// c.pending while we walk the old list.
	cur := c.pending
	c.pending = c.pendingSpare[:0]
	for i := range cur {
		op := cur[i]
		if op.at > now {
			c.pending = append(c.pending, op)
			continue
		}
		c.prog = true
		switch op.kind {
		case pWriteback:
			c.stats.OpsWB++
			if rb := &c.rob[op.robIdx]; rb.valid && rb.seq == op.seq {
				c.writeback(op.robIdx, op.valInt, op.valFP)
				rb.done = true
			}
		case pCTI:
			c.resolveCTI(op, now)
		case pStoreReady:
			if rb := &c.rob[op.robIdx]; rb.valid && rb.seq == op.seq {
				c.sq[rb.sqIdx].ready = true
				rb.done = true
				c.kickParkedLoads(now)
			}
		case pLoadIssue:
			c.stats.OpsLoadIssue++
			c.loadStep(op, now)
		case pLoadDone:
			c.stats.OpsLoadDone++
			c.finishLoad(op, now)
		}
	}
	c.pendingSpare = cur[:0]
}

func (c *OoO) writeback(robIdx int16, vi int64, vf float64) {
	rb := &c.rob[robIdx]
	if rb.physDst < 0 {
		return
	}
	if rb.dstFP {
		c.physFPVal[rb.physDst] = vf
		c.physFPReady[rb.physDst] = true
	} else {
		c.physIntVal[rb.physDst] = vi
		c.physIntReady[rb.physDst] = true
	}
	c.iqUnready = false
}

func (c *OoO) resolveCTI(op pendingOp, now int64) {
	rb := &c.rob[op.robIdx]
	if !rb.valid || rb.seq != op.seq {
		return
	}
	c.writeback(op.robIdx, op.valInt, op.valFP) // link register, if any
	rb.done = true
	c.pred.update(rb.inst, rb.pc, op.taken, op.actualNext)
	if rb.ckpt >= 0 {
		c.ckptFree = append(c.ckptFree, rb.ckpt)
		ck := rb.ckpt
		rb.ckpt = -1
		if op.actualNext != rb.npc {
			c.recover(op.robIdx, ck, op.actualNext, now)
		}
	} else if op.actualNext != rb.npc {
		// JAL with an exact target cannot mispredict; defensive only.
		panic(fmt.Sprintf("cpu: unpredicted mispredict at pc %#x", rb.pc))
	}
}

// fmt is used by panics in this file.
var _ = fmt.Sprintf

// recover squashes everything younger than the mispredicted instruction at
// rob index brIdx, restores the rename maps from its checkpoint, and
// redirects fetch.
func (c *OoO) recover(brIdx int16, ckpt int8, target uint64, now int64) {
	c.stats.Mispred++
	br := &c.rob[brIdx]
	brSeq := br.seq

	// Restore rename state.
	ck := &c.ckpts[ckpt]
	c.mapInt = ck.mapInt
	c.mapFP = ck.mapFP
	c.pred.restoreRAS(ck.rasTop)

	// Walk the ROB tail-to-branch, undoing younger entries.
	for c.robCount > 0 {
		tailIdx := (c.robHead + c.robCount - 1) % c.cfg.ROBSize
		e := &c.rob[tailIdx]
		if e.seq <= brSeq {
			break
		}
		if e.physDst >= 0 {
			if e.dstFP {
				c.freeFP = append(c.freeFP, e.physDst)
			} else {
				c.freeInt = append(c.freeInt, e.physDst)
			}
		}
		if e.ckpt >= 0 {
			c.ckptFree = append(c.ckptFree, e.ckpt)
		}
		if e.lqIdx >= 0 {
			c.lq[e.lqIdx].valid = false
			c.lqTail = int(e.lqIdx)
			c.lqCount--
		}
		if e.sqIdx >= 0 {
			c.sq[e.sqIdx].valid = false
			c.sqTail = int(e.sqIdx)
			c.sqCount--
		}
		if e.isSys || e.isAMO {
			// A squashed serialising instruction releases the stall.
			c.serializeSeq = -1
			c.sysRetryAt = -1
			c.amoDoneAt = -1
			c.sysHoldFetch = false
		}
		e.valid = false
		c.robCount--
		c.stats.Squashed++
	}

	// Purge younger IQ entries (a seq-ordered suffix) and scheduled
	// completions.
	for len(c.iq) > 0 && c.iq[len(c.iq)-1].seq > brSeq {
		c.iq = c.iq[:len(c.iq)-1]
	}
	c.iqUnready = false
	kept := c.pending[:0]
	for _, op := range c.pending {
		if op.seq <= brSeq {
			kept = append(kept, op)
		}
	}
	c.pending = kept

	// Drop squashed loads from MSHR waiter lists (fills still complete and
	// install the line; nobody consumes the data).
	for i := range c.mshrs {
		m := &c.mshrs[i]
		if !m.valid {
			continue
		}
		keptLoads := m.loads[:0]
		for _, lqi := range m.loads {
			if c.lq[lqi].valid && c.lq[lqi].seq <= brSeq {
				keptLoads = append(keptLoads, lqi)
			}
		}
		m.loads = keptLoads
	}

	// Redirect the front end.
	c.fetchQ = c.fetchQ[:0]
	c.fetchHead = 0
	c.fetchPC = target
	c.fetchBlocked = now + 1
	c.fetchMiss = false
}

// ----------------------------------------------------------------- load --

// loadStep runs after address generation: disambiguate against older
// stores, then forward or access the L1.
func (c *OoO) loadStep(op pendingOp, now int64) {
	lq := &c.lq[op.lqIdx]
	if !lq.valid || lq.seq != op.seq {
		return // squashed
	}
	st, conflict, unknown := c.olderStore(lq)
	if unknown {
		// An older store address is still unresolved; the store's AGU
		// completion kicks us.
		lq.parked = true
		return
	}
	if conflict {
		if st == nil {
			// Overlapping but non-forwardable store: wait for it to drain.
			lq.parked = true
			return
		}
		// Store-to-load forwarding.
		done := op
		done.kind = pLoadDone
		done.at = now + 1
		done.valInt = int64(st.value)
		done.taken = true // flag: value forwarded, skip the memory read
		c.reschedule(done)
		return
	}

	// Access the L1 data cache.
	switch c.l1d.Probe(lq.addr, false) {
	case cache.Hit:
		done := op
		done.kind = pLoadDone
		done.at = now + c.env.CacheCfg.L1HitLat
		c.reschedule(done)
	case cache.Blocked:
		line := c.env.CacheCfg.LineAddr(lq.addr)
		if m := c.findMSHR(line); m != nil {
			m.loads = append(m.loads, op.lqIdx)
			return
		}
		// Line pending with no MSHR (fill already applied this cycle);
		// retry next cycle.
		op.at = now + 1
		c.reschedule(op)
	default: // miss
		line := c.env.CacheCfg.LineAddr(lq.addr)
		if m := c.findMSHR(line); m != nil {
			m.loads = append(m.loads, op.lqIdx)
			return
		}
		m := c.allocMSHR(line)
		if m == nil {
			lq.parked = true // all MSHRs busy; a fill delivery kicks us
			return
		}
		m.loads = append(m.loads, op.lqIdx)
		victimAddr, victimDirty, victimValid := c.l1d.Reserve(line)
		c.send(event.Event{Kind: event.KReadShared, Time: now, Addr: line}, victimAddr, victimDirty, victimValid)
		c.maybePrefetch(line, now)
	}
}

// maybePrefetch issues a next-line prefetch after a demand miss when the
// prefetcher is enabled, the line is absent, and an MSHR is free.
func (c *OoO) maybePrefetch(demand uint64, now int64) {
	if !c.cfg.Prefetch {
		return
	}
	next := demand + uint64(c.env.CacheCfg.LineSize)
	if c.l1d.StateOf(next) != cache.Invalid || c.findMSHR(next) != nil {
		return
	}
	m := c.allocMSHR(next)
	if m == nil {
		return
	}
	c.stats.Prefetches++
	victimAddr, victimDirty, victimValid := c.l1d.Reserve(next)
	c.send(event.Event{Kind: event.KReadShared, Time: now, Addr: next}, victimAddr, victimDirty, victimValid)
}

// olderStore scans the store queue for stores older than the load at the
// same word. Returns (forwardableStore, conflict, unknownAddr).
func (c *OoO) olderStore(lq *lqEntry) (st *sqEntry, conflict, unknown bool) {
	wordAddr := lq.addr &^ 7
	var best *sqEntry
	var bestSeq int64 = -1
	for i := range c.sq {
		e := &c.sq[i]
		if !e.valid || e.seq >= lq.seq {
			continue
		}
		if !e.ready {
			return nil, false, true
		}
		if e.addr&^7 != wordAddr {
			continue
		}
		if e.seq > bestSeq {
			best, bestSeq = e, e.seq
		}
	}
	if best == nil {
		return nil, false, false
	}
	if best.addr == lq.addr && best.width == lq.width {
		return best, true, false
	}
	return nil, true, false // overlap, not forwardable: wait for drain
}

// finishLoad delivers the load's data: a forwarded value, or a functional
// read of shared memory performed now — the simulated instant the data
// arrives, so cross-thread value races resolve in simulation-time order.
func (c *OoO) finishLoad(op pendingOp, now int64) {
	lq := &c.lq[op.lqIdx]
	if !lq.valid || lq.seq != op.seq {
		return // squashed
	}
	var raw uint64
	if op.taken {
		raw = uint64(op.valInt) // forwarded
	} else {
		raw = c.readMem(lq.op, lq.addr)
	}
	rb := &c.rob[lq.robIdx]
	if lq.op == isa.OpFLD {
		c.writeback(lq.robIdx, 0, math.Float64frombits(raw))
	} else {
		c.writeback(lq.robIdx, extend(lq.op, raw), 0)
	}
	lq.done = true
	rb.done = true
}

func (c *OoO) readMem(op isa.Op, addr uint64) uint64 {
	switch op {
	case isa.OpLD, isa.OpFLD:
		v, _ := c.env.Mem.LoadWord(addr)
		return v
	case isa.OpLW, isa.OpLWU:
		v, _ := c.env.Mem.Load32(addr)
		return uint64(v)
	case isa.OpLB, isa.OpLBU:
		v, _ := c.env.Mem.Load8(addr)
		return uint64(v)
	}
	return 0
}

// extend applies the load's sign/zero extension to raw bits.
func extend(op isa.Op, raw uint64) int64 {
	switch op {
	case isa.OpLW:
		return int64(int32(uint32(raw)))
	case isa.OpLWU:
		return int64(uint32(raw))
	case isa.OpLB:
		return int64(int8(uint8(raw)))
	case isa.OpLBU:
		return int64(uint8(raw))
	}
	return int64(raw)
}

// reschedule re-enqueues op on the (fresh) pending list.
func (c *OoO) reschedule(op pendingOp) {
	c.pending = append(c.pending, op)
}

// kickParkedLoads requeues every parked load for another loadStep pass.
func (c *OoO) kickParkedLoads(now int64) {
	for i := range c.lq {
		lq := &c.lq[i]
		if !lq.valid || !lq.parked {
			continue
		}
		lq.parked = false
		c.stats.Kicks++
		c.pending = append(c.pending, pendingOp{
			at: now, kind: pLoadIssue, seq: lq.seq, robIdx: lq.robIdx, lqIdx: int16(i),
		})
	}
}
