package cpu

import (
	"math"

	"slacksim/internal/isa"
)

// Pre is a predecoded instruction: the raw decode plus everything the
// pipeline front ends would otherwise re-derive per fetch — classification
// flags, the functional-unit class, the result latency, destination
// register roles, and a direct pointer to the opcode's execute function.
// Cores copy Pre records by value out of the predecode table (or build one
// on the stack for text outside the table), so a concurrent line
// invalidation can never mutate an in-flight instruction.
type Pre struct {
	Exec   execFn // functional execute for non-memory, non-syscall ops
	Imm    int32
	Lat    int32 // result latency (execLatency folded in at predecode)
	Flags  preFlags
	Op     isa.Op
	Rd     uint8
	Rs1    uint8
	Rs2    uint8
	Class  fuClass
	IntDst int8  // architectural integer destination, -1 none
	FPDst  int8  // architectural FP destination, -1 none
	MemW   uint8 // memory access width in bytes (loads/stores)
}

// Inst reconstructs the raw decoded instruction (diagnostics only).
func (p *Pre) Inst() isa.Inst {
	return isa.Inst{Op: p.Op, Rd: p.Rd, Rs1: p.Rs1, Rs2: p.Rs2, Imm: p.Imm}
}

// preFlags are the predecode-time classification bits. The operand-capture
// bits encode the Format-driven rename plan (which operand roles read the
// integer vs FP register file), so dispatch never consults the format table.
type preFlags uint16

const (
	pfLoad preFlags = 1 << iota
	pfStore
	pfAMO
	pfBranch // conditional branch
	pfJump   // jal/jalr
	pfSyscall
	pfNeedsIQ  // passes through the issue queue
	pfNeedCkpt // takes a rename-map checkpoint (branches, jalr)
	pfReadInt1 // rs1 reads the integer file
	pfReadInt2 // rs2 reads the integer file
	pfReadFP1  // fs1 reads the FP file
	pfReadFP2  // fs2 reads the FP file

	pfMemData = pfLoad | pfStore // data-side memory access (excludes AMO)
	pfCTI     = pfBranch | pfJump
)

// fuClass names the functional unit an instruction issues to; resolved at
// predecode so the issue scan never switches on the opcode.
type fuClass uint8

const (
	fuIntALU fuClass = iota
	fuIntMul
	fuIntDiv // unpipelined integer divider
	fuFPAdd
	fuFPMul
	fuFPDiv // unpipelined FP divide/sqrt
	fuMem
)

// execFn functionally executes a predecoded instruction at pc with integer
// operands a (rs1) and b (rs2) and FP operands fa (fs1) and fb (fs2).
type execFn func(p *Pre, pc uint64, a, b int64, fa, fb float64) aluResult

// makePre folds decode, classification, latency, and the execute-function
// pointer into one record. The execALU/execLatency switches in exec.go
// remain the semantic reference (and the dispatch-overhead benchmark
// baseline); TestExecTableMatchesSwitch pins the table to them.
func makePre(cfg *Config, in isa.Inst) Pre {
	p := Pre{
		Exec:   execTab[in.Op],
		Imm:    in.Imm,
		Lat:    int32(execLatency(cfg, in)),
		Op:     in.Op,
		Rd:     in.Rd,
		Rs1:    in.Rs1,
		Rs2:    in.Rs2,
		Class:  classOf(in),
		IntDst: int8(in.IntDst()),
		FPDst:  int8(in.FPDst()),
		MemW:   uint8(in.MemBytes()),
	}
	var fl preFlags
	if in.IsLoad() {
		fl |= pfLoad
	}
	if in.IsStore() {
		fl |= pfStore
	}
	if in.IsAMO() {
		fl |= pfAMO
	}
	if in.IsBranch() {
		fl |= pfBranch
	}
	if in.IsJump() {
		fl |= pfJump
	}
	if in.IsSyscall() {
		fl |= pfSyscall
	}
	if in.IsBranch() || in.Op == isa.OpJALR {
		fl |= pfNeedCkpt
	}
	if !(in.IsSyscall() || in.IsAMO() || in.Op == isa.OpNOP || in.Op == isa.OpInvalid) {
		fl |= pfNeedsIQ
	}
	// Operand-capture plan, one case per instruction format (the dispatch
	// rename previously switched on in.Op.Format()).
	switch in.Op.Format() {
	case isa.FmtR, isa.FmtB, isa.FmtStore:
		fl |= pfReadInt1 | pfReadInt2
	case isa.FmtI, isa.FmtJR, isa.FmtLoad, isa.FmtFLoad, isa.FmtFCvtIF:
		fl |= pfReadInt1
	case isa.FmtFStore:
		fl |= pfReadInt1 | pfReadFP2
	case isa.FmtFR, isa.FmtFCmp:
		fl |= pfReadFP1 | pfReadFP2
	case isa.FmtF2, isa.FmtFCvtFI:
		fl |= pfReadFP1
	}
	p.Flags = fl
	return p
}

// classOf mirrors the old fuAvailable/consumeFU opcode switch.
func classOf(in isa.Inst) fuClass {
	switch {
	case in.IsMem():
		return fuMem
	case in.Op == isa.OpMUL:
		return fuIntMul
	case in.Op == isa.OpDIV || in.Op == isa.OpREM:
		return fuIntDiv
	case in.Op == isa.OpFMUL:
		return fuFPMul
	case in.Op == isa.OpFDIV || in.Op == isa.OpFSQRT:
		return fuFPDiv
	case isFPUnit(in):
		return fuFPAdd
	default:
		return fuIntALU
	}
}

// Result constructors shared by the opcode table. Every non-CTI entry falls
// through to pc+InstBytes.

func xInt(pc uint64, v int64) aluResult {
	return aluResult{intVal: v, writesInt: true, next: pc + isa.InstBytes}
}

func xFP(pc uint64, v float64) aluResult {
	return aluResult{fpVal: v, writesFP: true, next: pc + isa.InstBytes}
}

func xBr(p *Pre, pc uint64, taken bool) aluResult {
	r := aluResult{isCTI: true, taken: taken, next: pc + isa.InstBytes}
	if taken {
		r.next = pc + uint64(int64(p.Imm))
	}
	return r
}

// execTab is the per-opcode function table: threaded dispatch replaces the
// execALU switch with one indirect call through the predecoded record.
// Entries for memory ops, AMOs, syscalls, and NOPs are a harmless no-effect
// function — those opcodes never reach Exec (memory ops take executeMem,
// AMOs and syscalls execute at the commit point) — so the table is total
// and dispatch needs no nil check.
var execTab = buildExecTab()

func buildExecTab() []execFn {
	t := make([]execFn, isa.NumOps())

	t[isa.OpADD] = func(_ *Pre, pc uint64, a, b int64, _, _ float64) aluResult { return xInt(pc, a+b) }
	t[isa.OpSUB] = func(_ *Pre, pc uint64, a, b int64, _, _ float64) aluResult { return xInt(pc, a-b) }
	t[isa.OpMUL] = func(_ *Pre, pc uint64, a, b int64, _, _ float64) aluResult { return xInt(pc, a*b) }
	t[isa.OpDIV] = func(_ *Pre, pc uint64, a, b int64, _, _ float64) aluResult {
		switch {
		case b == 0:
			return xInt(pc, -1)
		case a == math.MinInt64 && b == -1:
			return xInt(pc, math.MinInt64)
		}
		return xInt(pc, a/b)
	}
	t[isa.OpREM] = func(_ *Pre, pc uint64, a, b int64, _, _ float64) aluResult {
		switch {
		case b == 0:
			return xInt(pc, a)
		case a == math.MinInt64 && b == -1:
			return xInt(pc, 0)
		}
		return xInt(pc, a%b)
	}
	t[isa.OpAND] = func(_ *Pre, pc uint64, a, b int64, _, _ float64) aluResult { return xInt(pc, a&b) }
	t[isa.OpOR] = func(_ *Pre, pc uint64, a, b int64, _, _ float64) aluResult { return xInt(pc, a|b) }
	t[isa.OpXOR] = func(_ *Pre, pc uint64, a, b int64, _, _ float64) aluResult { return xInt(pc, a^b) }
	t[isa.OpSLL] = func(_ *Pre, pc uint64, a, b int64, _, _ float64) aluResult { return xInt(pc, a<<(uint64(b)&63)) }
	t[isa.OpSRL] = func(_ *Pre, pc uint64, a, b int64, _, _ float64) aluResult {
		return xInt(pc, int64(uint64(a)>>(uint64(b)&63)))
	}
	t[isa.OpSRA] = func(_ *Pre, pc uint64, a, b int64, _, _ float64) aluResult { return xInt(pc, a>>(uint64(b)&63)) }
	t[isa.OpSLT] = func(_ *Pre, pc uint64, a, b int64, _, _ float64) aluResult { return xInt(pc, boolToInt(a < b)) }
	t[isa.OpSLTU] = func(_ *Pre, pc uint64, a, b int64, _, _ float64) aluResult {
		return xInt(pc, boolToInt(uint64(a) < uint64(b)))
	}

	t[isa.OpADDI] = func(p *Pre, pc uint64, a, _ int64, _, _ float64) aluResult { return xInt(pc, a+int64(p.Imm)) }
	t[isa.OpANDI] = func(p *Pre, pc uint64, a, _ int64, _, _ float64) aluResult { return xInt(pc, a&int64(p.Imm)) }
	t[isa.OpORI] = func(p *Pre, pc uint64, a, _ int64, _, _ float64) aluResult { return xInt(pc, a|int64(p.Imm)) }
	t[isa.OpXORI] = func(p *Pre, pc uint64, a, _ int64, _, _ float64) aluResult { return xInt(pc, a^int64(p.Imm)) }
	t[isa.OpSLLI] = func(p *Pre, pc uint64, a, _ int64, _, _ float64) aluResult {
		return xInt(pc, a<<(uint64(p.Imm)&63))
	}
	t[isa.OpSRLI] = func(p *Pre, pc uint64, a, _ int64, _, _ float64) aluResult {
		return xInt(pc, int64(uint64(a)>>(uint64(p.Imm)&63)))
	}
	t[isa.OpSRAI] = func(p *Pre, pc uint64, a, _ int64, _, _ float64) aluResult {
		return xInt(pc, a>>(uint64(p.Imm)&63))
	}
	t[isa.OpSLTI] = func(p *Pre, pc uint64, a, _ int64, _, _ float64) aluResult {
		return xInt(pc, boolToInt(a < int64(p.Imm)))
	}
	t[isa.OpLI] = func(p *Pre, pc uint64, _, _ int64, _, _ float64) aluResult { return xInt(pc, int64(p.Imm)) }

	t[isa.OpBEQ] = func(p *Pre, pc uint64, a, b int64, _, _ float64) aluResult { return xBr(p, pc, a == b) }
	t[isa.OpBNE] = func(p *Pre, pc uint64, a, b int64, _, _ float64) aluResult { return xBr(p, pc, a != b) }
	t[isa.OpBLT] = func(p *Pre, pc uint64, a, b int64, _, _ float64) aluResult { return xBr(p, pc, a < b) }
	t[isa.OpBGE] = func(p *Pre, pc uint64, a, b int64, _, _ float64) aluResult { return xBr(p, pc, a >= b) }
	t[isa.OpBLTU] = func(p *Pre, pc uint64, a, b int64, _, _ float64) aluResult {
		return xBr(p, pc, uint64(a) < uint64(b))
	}
	t[isa.OpBGEU] = func(p *Pre, pc uint64, a, b int64, _, _ float64) aluResult {
		return xBr(p, pc, uint64(a) >= uint64(b))
	}
	t[isa.OpJAL] = func(p *Pre, pc uint64, _, _ int64, _, _ float64) aluResult {
		return aluResult{
			intVal: int64(pc + isa.InstBytes), writesInt: true,
			isCTI: true, taken: true, next: pc + uint64(int64(p.Imm)),
		}
	}
	t[isa.OpJALR] = func(p *Pre, pc uint64, a, _ int64, _, _ float64) aluResult {
		return aluResult{
			intVal: int64(pc + isa.InstBytes), writesInt: true,
			isCTI: true, taken: true, next: uint64(a + int64(p.Imm)),
		}
	}

	t[isa.OpFADD] = func(_ *Pre, pc uint64, _, _ int64, fa, fb float64) aluResult { return xFP(pc, fa+fb) }
	t[isa.OpFSUB] = func(_ *Pre, pc uint64, _, _ int64, fa, fb float64) aluResult { return xFP(pc, fa-fb) }
	t[isa.OpFMUL] = func(_ *Pre, pc uint64, _, _ int64, fa, fb float64) aluResult { return xFP(pc, fa*fb) }
	t[isa.OpFDIV] = func(_ *Pre, pc uint64, _, _ int64, fa, fb float64) aluResult {
		return xFP(pc, fa/fb) // IEEE: Inf/NaN, never a host fault
	}
	t[isa.OpFMIN] = func(_ *Pre, pc uint64, _, _ int64, fa, fb float64) aluResult { return xFP(pc, math.Min(fa, fb)) }
	t[isa.OpFMAX] = func(_ *Pre, pc uint64, _, _ int64, fa, fb float64) aluResult { return xFP(pc, math.Max(fa, fb)) }
	t[isa.OpFSQRT] = func(_ *Pre, pc uint64, _, _ int64, fa, _ float64) aluResult { return xFP(pc, math.Sqrt(fa)) }
	t[isa.OpFABS] = func(_ *Pre, pc uint64, _, _ int64, fa, _ float64) aluResult { return xFP(pc, math.Abs(fa)) }
	t[isa.OpFNEG] = func(_ *Pre, pc uint64, _, _ int64, fa, _ float64) aluResult { return xFP(pc, -fa) }
	t[isa.OpFMOV] = func(_ *Pre, pc uint64, _, _ int64, fa, _ float64) aluResult { return xFP(pc, fa) }
	t[isa.OpFCVTDW] = func(_ *Pre, pc uint64, a, _ int64, _, _ float64) aluResult { return xFP(pc, float64(a)) }
	t[isa.OpFCVTWD] = func(_ *Pre, pc uint64, _, _ int64, fa, _ float64) aluResult {
		return xInt(pc, saturatingInt(fa))
	}
	t[isa.OpFMVXD] = func(_ *Pre, pc uint64, _, _ int64, fa, _ float64) aluResult {
		return xInt(pc, int64(math.Float64bits(fa)))
	}
	t[isa.OpFMVDX] = func(_ *Pre, pc uint64, a, _ int64, _, _ float64) aluResult {
		return xFP(pc, math.Float64frombits(uint64(a)))
	}
	t[isa.OpFEQ] = func(_ *Pre, pc uint64, _, _ int64, fa, fb float64) aluResult {
		return xInt(pc, boolToInt(fa == fb))
	}
	t[isa.OpFLT] = func(_ *Pre, pc uint64, _, _ int64, fa, fb float64) aluResult {
		return xInt(pc, boolToInt(fa < fb))
	}
	t[isa.OpFLE] = func(_ *Pre, pc uint64, _, _ int64, fa, fb float64) aluResult {
		return xInt(pc, boolToInt(fa <= fb))
	}

	noEffect := func(_ *Pre, pc uint64, _, _ int64, _, _ float64) aluResult {
		return aluResult{next: pc + isa.InstBytes}
	}
	for i := range t {
		if t[i] == nil {
			t[i] = noEffect
		}
	}
	return t
}
