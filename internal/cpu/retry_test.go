package cpu

import (
	"testing"

	"slacksim/internal/cache"
	"slacksim/internal/event"
	"slacksim/internal/isa"
	"slacksim/internal/mem"
)

// TestSyscallRetryProtocol covers the legacy retry reply (Flag=true): the
// core must re-issue the call and complete on the eventual grant. The
// kernel no longer sends retries (blocking calls sleep on wait queues),
// but the protocol remains supported for alternative kernels.
func TestSyscallRetryProtocol(t *testing.T) {
	for _, inorder := range []bool{false, true} {
		var sent []event.Event
		env := Env{
			ID:       0,
			Mem:      mem.New(1 << 20),
			CacheCfg: cache.DefaultConfig(1),
			Send:     func(ev event.Event) { sent = append(sent, ev) },
		}
		// Program: one syscall then spin forever.
		prog := []isa.Inst{
			{Op: isa.OpSYSCALL, Rd: isa.RegRV, Imm: 5},
			{Op: isa.OpJAL, Rd: isa.RegZero, Imm: 0}, // self-loop
		}
		for i, in := range prog {
			env.Mem.StoreWord(0x1000+uint64(i)*8, in.Encode())
		}
		c := mustCore(inorder, env)
		c.Start(0x1000, 1<<19, 0)

		now := int64(0)
		step := func() {
			c.Tick(now)
			now++
		}
		// Run until the syscall event appears, answering fetch misses.
		syscalls := 0
		for i := 0; i < 2000 && syscalls == 0; i++ {
			step()
			for _, ev := range sent {
				switch ev.Kind {
				case event.KFetch:
					c.Deliver(event.Event{Kind: event.KFill, Time: now, Addr: ev.Addr, Aux: int64(cache.Exclusive)}, now)
				case event.KSyscall:
					syscalls++
				}
			}
			sent = sent[:0]
		}
		if syscalls != 1 {
			t.Fatalf("inorder=%v: syscall not issued", inorder)
		}
		// Reply: retry.
		c.Deliver(event.Event{Kind: event.KSyscallDone, Time: now, Flag: true}, now)
		reissued := false
		for i := 0; i < 2000 && !reissued; i++ {
			step()
			for _, ev := range sent {
				if ev.Kind == event.KSyscall {
					reissued = true
				}
			}
			sent = sent[:0]
		}
		if !reissued {
			t.Fatalf("inorder=%v: retry did not re-issue the syscall", inorder)
		}
		if c.Stats().Retries != 1 {
			t.Fatalf("inorder=%v: retries = %d", inorder, c.Stats().Retries)
		}
		// Grant completes it; the core proceeds (commits the syscall).
		before := c.Stats().Committed
		c.Deliver(event.Event{Kind: event.KSyscallDone, Time: now, Aux: 1}, now)
		for i := 0; i < 100; i++ {
			step()
		}
		if c.Stats().Committed <= before {
			t.Fatalf("inorder=%v: syscall never committed after grant", inorder)
		}
	}
}
