package cpu

import (
	"encoding/binary"
	"testing"

	"slacksim/internal/asm"
	"slacksim/internal/isa"
)

// allocProg exercises every hot-loop path that could plausibly allocate:
// ALU chains, loads and stores (cache hits after warm-up), a data-dependent
// branch, and an unconditional loop-back jump. It never exits, so the
// steady state is pure pipeline work.
const allocProg = `
main:
    la   r8, buf
    li   r9, 0
loop:
    ld   r10, 0(r8)
    addi r10, r10, 1
    sd   r10, 0(r8)
    andi r11, r9, 7
    beqz r11, skip
    xor  r12, r10, r9
skip:
    addi r9, r9, 1
    j    loop
.data
.align 8
buf: .dword 0
`

// TestStepZeroAlloc is the zero-allocation regression gate for the core
// models: after warm-up (caches filled, predecode table built, ring and
// pending buffers at steady-state capacity), one simulated cycle must
// perform zero host heap allocations — for both the out-of-order and the
// in-order pipeline. Any allocation that sneaks back into fetch, dispatch,
// issue, execute, or commit fails this test deterministically, not just as
// a noisy benchmark delta.
func TestStepZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name    string
		inorder bool
	}{
		{"OoO", false},
		{"InOrder", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := newBenchTB(t, allocProg, tc.inorder)
			for i := 0; i < 20000; i++ {
				b.step()
			}
			if avg := testing.AllocsPerRun(2000, b.step); avg != 0 {
				t.Errorf("steady-state allocations per step = %v, want 0", avg)
			}
		})
	}
}

// dispatchMix assembles a representative instruction mix and returns both
// the decoded instructions (for the legacy switch path) and their
// predecoded records (for the threaded-dispatch path), so the two
// benchmarks below measure the same work.
func dispatchMix(tb testing.TB) ([]isa.Inst, []Pre) {
	tb.Helper()
	prog, err := asm.Assemble(`
main:
    addi r8, r8, 1
    add  r9, r8, r8
    xor  r10, r9, r8
    slli r11, r10, 3
    srai r12, r11, 1
    and  r13, r12, r9
    or   r14, r13, r8
    sltu r15, r8, r9
    mul  r16, r9, r10
    sub  r17, r16, r8
`, asm.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	cfg := DefaultConfig()
	text := prog.TextBytes()
	var insts []isa.Inst
	var pres []Pre
	for o := 0; o+isa.InstBytes <= len(text); o += isa.InstBytes {
		in := isa.Decode(binary.LittleEndian.Uint64(text[o:]))
		if in.Op == isa.OpInvalid {
			break
		}
		insts = append(insts, in)
		pres = append(pres, makePre(&cfg, in))
	}
	if len(insts) == 0 {
		tb.Fatal("empty dispatch mix")
	}
	return insts, pres
}

var dispatchSink int64

// BenchmarkDispatchSwitch measures the legacy per-execute opcode switch
// (execALU) over a representative ALU mix — the baseline the threaded
// dispatch table replaced.
func BenchmarkDispatchSwitch(b *testing.B) {
	insts, _ := dispatchMix(b)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		in := insts[i%len(insts)]
		r := execALU(in, 0x1000, int64(i), 3, 1.5, 2.5)
		sink += r.intVal
	}
	dispatchSink = sink
}

// BenchmarkDispatchTable measures the threaded-dispatch path: one indirect
// call through the predecoded record's function pointer, operands and
// latency already resolved at predecode time.
func BenchmarkDispatchTable(b *testing.B) {
	_, pres := dispatchMix(b)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		p := &pres[i%len(pres)]
		r := p.Exec(p, 0x1000, int64(i), 3, 1.5, 2.5)
		sink += r.intVal
	}
	dispatchSink = sink
}

// BenchmarkStepNoAlloc is the allocation-visible variant of the Tick
// benchmarks: a full simulated cycle of the OoO core on a loop with live
// memory traffic and branches. The allocs/op column must read 0 in a
// healthy build (TestStepZeroAlloc enforces the same property as a test).
func BenchmarkStepNoAlloc(b *testing.B) {
	bench := newBenchB(b, allocProg)
	for i := 0; i < 20000; i++ {
		bench.step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.step()
	}
}
