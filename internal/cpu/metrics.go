package cpu

import (
	"fmt"

	"slacksim/internal/metrics"
)

// PublishStats registers core id's retire and stall counters in r under
// cpu.c<id>.* and aggregates across cores under cpu.total.*. The engine
// calls it when a run finishes with metrics enabled; on a nil registry it
// is a no-op (the disabled fast path).
func PublishStats(r *metrics.Registry, id int, st *Stats) {
	if r == nil || st == nil {
		return
	}
	p := fmt.Sprintf("cpu.c%d.", id)
	set := func(name string, v int64) {
		r.Gauge(p + name).Set(v)
		r.Counter("cpu.total." + name).Add(v)
	}
	set("cycles", st.Cycles)
	set("idle_cycles", st.IdleCycles)
	set("skipped_cycles", st.Skipped)
	set("committed", st.Committed)
	set("fetched", st.Fetched)
	set("squashed", st.Squashed)
	set("loads", st.Loads)
	set("stores", st.Stores)
	set("branches", st.Branches)
	set("branch_mispredicts", st.Mispred)
	set("syscalls", st.Syscalls)
	set("stall.fetch", st.FetchStall)
	set("stall.rob", st.ROBStall)
	set("stall.lsq", st.LSQStall)
	set("stall.head", st.HeadStall)
	set("stall.serialize", st.SerializeOn)
	set("l1d.hits", st.L1D.Hits)
	set("l1d.misses", st.L1D.Misses)
	set("l1d.evictions", st.L1D.Evictions)
	set("l1d.writebacks", st.L1D.Writebacks)
	set("l1d.invs_applied", st.L1D.InvsApplied)
	set("l1d.downgrades", st.L1D.Downgrades)
	set("l1i.hits", st.L1I.Hits)
	set("l1i.misses", st.L1I.Misses)
}
