package cpu

import (
	"math"

	"slacksim/internal/isa"
)

// aluResult is the outcome of functionally executing a non-memory,
// non-syscall instruction.
type aluResult struct {
	intVal    int64
	fpVal     float64
	writesInt bool
	writesFP  bool
	isCTI     bool
	taken     bool
	next      uint64 // architectural next pc
}

// execALU functionally executes in at pc with integer operands a (rs1) and
// b (rs2) and floating-point operands fa (fs1) and fb (fs2). Division by
// zero follows the RISC-V convention (quotient all-ones, remainder equals
// the dividend) so wrong-path garbage can never fault the host.
func execALU(in isa.Inst, pc uint64, a, b int64, fa, fb float64) aluResult {
	r := aluResult{next: pc + isa.InstBytes}
	setInt := func(v int64) { r.intVal, r.writesInt = v, true }
	setFP := func(v float64) { r.fpVal, r.writesFP = v, true }
	branch := func(taken bool) {
		r.isCTI = true
		r.taken = taken
		if taken {
			r.next = pc + uint64(int64(in.Imm))
		}
	}

	switch in.Op {
	case isa.OpADD:
		setInt(a + b)
	case isa.OpSUB:
		setInt(a - b)
	case isa.OpMUL:
		setInt(a * b)
	case isa.OpDIV:
		if b == 0 {
			setInt(-1)
		} else if a == math.MinInt64 && b == -1 {
			setInt(math.MinInt64)
		} else {
			setInt(a / b)
		}
	case isa.OpREM:
		if b == 0 {
			setInt(a)
		} else if a == math.MinInt64 && b == -1 {
			setInt(0)
		} else {
			setInt(a % b)
		}
	case isa.OpAND:
		setInt(a & b)
	case isa.OpOR:
		setInt(a | b)
	case isa.OpXOR:
		setInt(a ^ b)
	case isa.OpSLL:
		setInt(a << (uint64(b) & 63))
	case isa.OpSRL:
		setInt(int64(uint64(a) >> (uint64(b) & 63)))
	case isa.OpSRA:
		setInt(a >> (uint64(b) & 63))
	case isa.OpSLT:
		setInt(boolToInt(a < b))
	case isa.OpSLTU:
		setInt(boolToInt(uint64(a) < uint64(b)))

	case isa.OpADDI:
		setInt(a + int64(in.Imm))
	case isa.OpANDI:
		setInt(a & int64(in.Imm))
	case isa.OpORI:
		setInt(a | int64(in.Imm))
	case isa.OpXORI:
		setInt(a ^ int64(in.Imm))
	case isa.OpSLLI:
		setInt(a << (uint64(in.Imm) & 63))
	case isa.OpSRLI:
		setInt(int64(uint64(a) >> (uint64(in.Imm) & 63)))
	case isa.OpSRAI:
		setInt(a >> (uint64(in.Imm) & 63))
	case isa.OpSLTI:
		setInt(boolToInt(a < int64(in.Imm)))
	case isa.OpLI:
		setInt(int64(in.Imm))

	case isa.OpBEQ:
		branch(a == b)
	case isa.OpBNE:
		branch(a != b)
	case isa.OpBLT:
		branch(a < b)
	case isa.OpBGE:
		branch(a >= b)
	case isa.OpBLTU:
		branch(uint64(a) < uint64(b))
	case isa.OpBGEU:
		branch(uint64(a) >= uint64(b))
	case isa.OpJAL:
		r.isCTI, r.taken = true, true
		r.next = pc + uint64(int64(in.Imm))
		setInt(int64(pc + isa.InstBytes))
	case isa.OpJALR:
		r.isCTI, r.taken = true, true
		r.next = uint64(a + int64(in.Imm))
		setInt(int64(pc + isa.InstBytes))

	case isa.OpFADD:
		setFP(fa + fb)
	case isa.OpFSUB:
		setFP(fa - fb)
	case isa.OpFMUL:
		setFP(fa * fb)
	case isa.OpFDIV:
		setFP(fa / fb) // IEEE: Inf/NaN, never a host fault
	case isa.OpFMIN:
		setFP(math.Min(fa, fb))
	case isa.OpFMAX:
		setFP(math.Max(fa, fb))
	case isa.OpFSQRT:
		setFP(math.Sqrt(fa))
	case isa.OpFABS:
		setFP(math.Abs(fa))
	case isa.OpFNEG:
		setFP(-fa)
	case isa.OpFMOV:
		setFP(fa)
	case isa.OpFCVTDW:
		setFP(float64(a))
	case isa.OpFCVTWD:
		setInt(saturatingInt(fa))
	case isa.OpFMVXD:
		setInt(int64(math.Float64bits(fa)))
	case isa.OpFMVDX:
		setFP(math.Float64frombits(uint64(a)))
	case isa.OpFEQ:
		setInt(boolToInt(fa == fb))
	case isa.OpFLT:
		setInt(boolToInt(fa < fb))
	case isa.OpFLE:
		setInt(boolToInt(fa <= fb))

	case isa.OpNOP, isa.OpInvalid:
		// no effect
	}
	return r
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// saturatingInt converts a float64 to int64 without the undefined behaviour
// of out-of-range conversions.
func saturatingInt(f float64) int64 {
	switch {
	case math.IsNaN(f):
		return 0
	case f >= math.MaxInt64:
		return math.MaxInt64
	case f <= math.MinInt64:
		return math.MinInt64
	}
	return int64(f)
}

// execLatency returns the result latency class of in.
func execLatency(cfg *Config, in isa.Inst) int64 {
	switch in.Op {
	case isa.OpMUL:
		return cfg.MulLat
	case isa.OpDIV, isa.OpREM:
		return cfg.DivLat
	case isa.OpFADD, isa.OpFSUB, isa.OpFMIN, isa.OpFMAX, isa.OpFABS, isa.OpFNEG, isa.OpFMOV,
		isa.OpFCVTDW, isa.OpFCVTWD, isa.OpFMVXD, isa.OpFMVDX, isa.OpFEQ, isa.OpFLT, isa.OpFLE:
		return cfg.FPAddLat
	case isa.OpFMUL:
		return cfg.FPMulLat
	case isa.OpFDIV:
		return cfg.FPDivLat
	case isa.OpFSQRT:
		return cfg.FPSqrtLat
	}
	return cfg.IntALULat
}
