package cpu

import "slacksim/internal/isa"

// predictor is the front-end branch predictor: a bimodal table of 2-bit
// saturating counters for conditional direction, a BTB for indirect
// targets, and a return-address stack. Direct targets (branches, jal) are
// computed from the instruction word at fetch, so the BTB serves only jalr.
type predictor struct {
	bimodal []uint8
	btbTag  []uint64
	btbTgt  []uint64
	ras     []uint64
	rasTop  int
	bimMask uint64
	btbMask uint64
}

func newPredictor(cfg *Config) *predictor {
	return &predictor{
		bimodal: initCounters(cfg.BimodalSize),
		btbTag:  make([]uint64, cfg.BTBSize),
		btbTgt:  make([]uint64, cfg.BTBSize),
		ras:     make([]uint64, cfg.RASSize),
		bimMask: uint64(cfg.BimodalSize - 1),
		btbMask: uint64(cfg.BTBSize - 1),
	}
}

func initCounters(n int) []uint8 {
	c := make([]uint8, n)
	for i := range c {
		c[i] = 1 // weakly not-taken
	}
	return c
}

func (p *predictor) bimIndex(pc uint64) uint64 { return (pc >> 3) & p.bimMask }
func (p *predictor) btbIndex(pc uint64) uint64 { return (pc >> 3) & p.btbMask }

// predict returns the predicted next pc after the predecoded
// control-transfer instruction in at pc, and whether a conditional branch
// was predicted taken.
func (p *predictor) predict(in *Pre, pc uint64) (next uint64, taken bool) {
	switch {
	case in.Flags&pfBranch != 0:
		taken = p.bimodal[p.bimIndex(pc)] >= 2
		if taken {
			return pc + uint64(int64(in.Imm)), true
		}
		return pc + isa.InstBytes, false
	case in.Op == isa.OpJAL:
		if in.Rd == isa.RegRA {
			p.push(pc + isa.InstBytes)
		}
		return pc + uint64(int64(in.Imm)), true
	case in.Op == isa.OpJALR:
		if in.Rd == isa.RegZero && in.Rs1 == isa.RegRA {
			// Return: pop the RAS.
			return p.pop(pc), true
		}
		if in.Rd == isa.RegRA {
			p.push(pc + isa.InstBytes)
		}
		i := p.btbIndex(pc)
		if p.btbTag[i] == pc && p.btbTgt[i] != 0 {
			return p.btbTgt[i], true
		}
		return pc + isa.InstBytes, true // no prediction; will redirect at execute
	}
	return pc + isa.InstBytes, false
}

// update trains the predictor with the resolved outcome.
func (p *predictor) update(in *Pre, pc uint64, taken bool, target uint64) {
	if in.Flags&pfBranch != 0 {
		i := p.bimIndex(pc)
		c := p.bimodal[i]
		if taken {
			if c < 3 {
				p.bimodal[i] = c + 1
			}
		} else if c > 0 {
			p.bimodal[i] = c - 1
		}
		return
	}
	if in.Op == isa.OpJALR {
		i := p.btbIndex(pc)
		p.btbTag[i] = pc
		p.btbTgt[i] = target
	}
}

func (p *predictor) push(v uint64) {
	p.ras[p.rasTop%len(p.ras)] = v
	p.rasTop++
}

func (p *predictor) pop(fallback uint64) uint64 {
	if p.rasTop == 0 {
		return fallback + isa.InstBytes
	}
	p.rasTop--
	return p.ras[p.rasTop%len(p.ras)]
}

// snapshotRAS and restoreRAS checkpoint the stack pointer across
// speculation; entries themselves may be clobbered by deep wrong paths,
// which only costs accuracy of later predictions, never correctness.
func (p *predictor) snapshotRAS() int   { return p.rasTop }
func (p *predictor) restoreRAS(top int) { p.rasTop = top }
