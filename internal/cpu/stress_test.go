package cpu

import "testing"

// Dense data-dependent branches exhaust the rename-map checkpoints and
// force dispatch stalls; the result must still be exact.
const branchStormProg = `
main:
    li   r8, 0            # i
    li   r9, 512
    li   r10, 0           # acc
loop:
    andi r11, r8, 1
    beqz r11, even
    addi r10, r10, 3
    j    next
even:
    andi r12, r8, 2
    beqz r12, next
    addi r10, r10, 5
next:
    addi r8, r8, 1
    blt  r8, r9, loop
    la   r13, out
    sd   r10, 0(r13)
    li   a0, 0
    syscall 0
.data
.align 8
out: .dword 0
`

func TestBranchStorm(t *testing.T) {
	// Reference: odd i -> +3 (256 of them); even i with bit1 -> +5 (128).
	want := uint64(256*3 + 128*5)
	for _, inorder := range []bool{false, true} {
		b := newBench(t, branchStormProg, inorder)
		b.run(500000)
		if v := b.word(t, 0x2000); v != want {
			t.Errorf("inorder=%v: acc = %d, want %d", inorder, v, want)
		}
	}
}

// Deep call chains exercise the return-address stack, including overflow
// (depth 32 > RAS size 16) and recovery.
const callDepthProg = `
main:
    li   a0, 32
    call fib_like
    la   r8, out
    sd   rv, 0(r8)
    li   a0, 0
    syscall 0

# fib_like(n): returns n + fib_like(n-1), base 0 — a deep linear recursion.
fib_like:
    beqz a0, base
    addi sp, sp, -16
    sd   ra, 0(sp)
    sd   a0, 8(sp)
    addi a0, a0, -1
    call fib_like
    ld   a0, 8(sp)
    ld   ra, 0(sp)
    addi sp, sp, 16
    add  rv, rv, a0
    ret
base:
    li   rv, 0
    ret
.data
.align 8
out: .dword 0
`

func TestDeepRecursionRAS(t *testing.T) {
	for _, inorder := range []bool{false, true} {
		b := newBench(t, callDepthProg, inorder)
		b.run(500000)
		if v := b.word(t, 0x2000); v != 32*33/2 {
			t.Errorf("inorder=%v: sum = %d, want %d", inorder, v, 32*33/2)
		}
	}
}

// A burst of independent loads and stores pressures the LQ/SQ and MSHRs
// (64 distinct lines > 8 MSHRs) without any reuse.
const memBurstProg = `
main:
    la   r8, arr
    li   r9, 0
    li   r10, 64
w:
    slli r11, r9, 6       # stride 64: one line each
    add  r12, r8, r11
    sd   r9, 0(r12)
    addi r9, r9, 1
    blt  r9, r10, w
    li   r9, 0
    li   r13, 0
r:
    slli r11, r9, 6
    add  r12, r8, r11
    ld   r14, 0(r12)
    add  r13, r13, r14
    addi r9, r9, 1
    blt  r9, r10, r
    la   r15, out
    sd   r13, 0(r15)
    li   a0, 0
    syscall 0
.data
.align 64
arr: .space 64*64
out: .dword 0
`

func TestMemBurstMSHRPressure(t *testing.T) {
	b := newBench(t, memBurstProg, false)
	b.run(500000)
	if v := b.word(t, 0x2000+64*64); v != 64*63/2 {
		t.Fatalf("sum = %d, want %d", v, 64*63/2)
	}
	if b.fills < 64 {
		t.Fatalf("only %d fills for 64 distinct lines", b.fills)
	}
}

// Mixed-width accesses to one word: sub-word stores and sign/zero-extending
// loads must compose correctly through the store queue and memory.
const widthProg = `
main:
    la   r8, slot
    li   r9, -1
    sd   r9, 0(r8)
    li   r10, 0x7F
    sb   r10, 0(r8)          # low byte 0x7F
    lb   r11, 0(r8)          # 0x7F sign-extended = 127
    lbu  r12, 7(r8)          # 0xFF
    lw   r13, 0(r8)          # 0xFFFFFF7F sign-extended
    lwu  r14, 0(r8)          # 0xFFFFFF7F zero-extended
    la   r15, out
    sd   r11, 0(r15)
    sd   r12, 8(r15)
    sd   r13, 16(r15)
    sd   r14, 24(r15)
    li   a0, 0
    syscall 0
.data
.align 8
slot: .dword 0
out:  .dword 0, 0, 0, 0
`

func TestSubWordAccess(t *testing.T) {
	for _, inorder := range []bool{false, true} {
		b := newBench(t, widthProg, inorder)
		b.run(500000)
		if v := b.word(t, 0x2008); v != 127 {
			t.Errorf("inorder=%v: lb = %d", inorder, int64(v))
		}
		if v := b.word(t, 0x2010); v != 0xFF {
			t.Errorf("inorder=%v: lbu = %#x", inorder, v)
		}
		if v := b.word(t, 0x2018); int64(v) != int64(int32(-129)) { // 0xFFFFFF7F
			t.Errorf("inorder=%v: lw = %#x", inorder, v)
		}
		if v := b.word(t, 0x2020); v != 0xFFFFFF7F {
			t.Errorf("inorder=%v: lwu = %#x", inorder, v)
		}
	}
}

// TestDeterministicReplay: the bench harness itself is deterministic — two
// runs of the same program commit the same instruction count in the same
// number of cycles.
func TestDeterministicReplay(t *testing.T) {
	type outcome struct{ cycles, committed int64 }
	run := func() outcome {
		b := newBench(t, branchStormProg, false)
		b.run(500000)
		st := b.core.Stats()
		return outcome{b.now, st.Committed}
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("replay mismatch: %+v vs %+v", a, b)
	}
}
