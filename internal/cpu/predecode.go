package cpu

import (
	"slacksim/internal/isa"
	"slacksim/internal/mem"
)

// predecode caches fully predecoded instructions (Pre records: decode +
// classification + latency + execute-function pointer) for the program's
// static text section so the fetch stage does not pay Mem.LoadWord +
// isa.Decode + re-classification on every fetched instruction. Decoding
// happens lazily one cache line at a time — the same granularity at which
// the L1I fills and invalidates — so a KInv that hits the text range simply
// marks that line's entries stale and the next fetch re-predecodes them
// from memory. Each core owns its own table; no synchronisation is needed.
type predecode struct {
	base, end uint64
	lineShift uint
	pre       []Pre
	lineOK    []bool
	mem       *mem.Memory
	cfg       *Config
}

// newPredecode builds a (possibly disabled) table from the core's Env.
// A zero TextBase/TextEnd, a non-power-of-two line size, or a text base
// not aligned to the line size disables predecoding; lookup then always
// misses and fetch falls back to LoadWord + Decode + makePre.
func newPredecode(cfg *Config, env *Env) *predecode {
	p := &predecode{mem: env.Mem, cfg: cfg}
	ls := uint64(env.CacheCfg.LineSize)
	if env.TextEnd <= env.TextBase || ls == 0 || ls&(ls-1) != 0 || env.TextBase%ls != 0 {
		return p
	}
	shift := uint(0)
	for 1<<shift != ls {
		shift++
	}
	size := env.TextEnd - env.TextBase
	p.base = env.TextBase
	p.end = env.TextEnd
	p.lineShift = shift
	p.pre = make([]Pre, size/isa.InstBytes)
	p.lineOK = make([]bool, (size+ls-1)>>shift)
	return p
}

// lookup returns the predecoded instruction at pc, decoding pc's whole line
// on first touch. ok is false when pc is outside the predecoded text range
// (or the table is disabled); callers fall back to LoadWord + Decode. The
// returned pointer aliases the table — callers copy the record by value
// before a line invalidation could rewrite it.
func (p *predecode) lookup(pc uint64) (*Pre, bool) {
	if pc < p.base || pc >= p.end {
		return nil, false
	}
	off := pc - p.base
	if li := off >> p.lineShift; !p.lineOK[li] {
		p.fillLine(li)
	}
	return &p.pre[off/isa.InstBytes], true
}

func (p *predecode) fillLine(li uint64) {
	start := li << p.lineShift
	stop := start + 1<<p.lineShift
	if size := p.end - p.base; stop > size {
		stop = size
	}
	for o := start; o < stop; o += isa.InstBytes {
		word, ok := p.mem.LoadWord(p.base + o)
		if !ok {
			word = 0
		}
		p.pre[o/isa.InstBytes] = makePre(p.cfg, isa.Decode(word))
	}
	p.lineOK[li] = true
}

// invalidate marks the line containing lineAddr stale (no-op outside the
// text range). Called on KInv delivery so self-modifying stores that round
// trip through the directory are re-decoded, matching the L1I invalidation.
func (p *predecode) invalidate(lineAddr uint64) {
	if lineAddr < p.base || lineAddr >= p.end {
		return
	}
	p.lineOK[(lineAddr-p.base)>>p.lineShift] = false
}
