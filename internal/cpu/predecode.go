package cpu

import (
	"slacksim/internal/isa"
	"slacksim/internal/mem"
)

// predecode caches decoded instructions for the program's static text
// section so the fetch stage does not pay Mem.LoadWord + isa.Decode on
// every fetched instruction. Decoding happens lazily one cache line at a
// time — the same granularity at which the L1I fills and invalidates — so
// a KInv that hits the text range simply marks that line's entries stale
// and the next fetch re-decodes them from memory. Each core owns its own
// table; no synchronisation is needed.
type predecode struct {
	base, end uint64
	lineShift uint
	insts     []isa.Inst
	lineOK    []bool
	mem       *mem.Memory
}

// newPredecode builds a (possibly disabled) table from the core's Env.
// A zero TextBase/TextEnd, a non-power-of-two line size, or a text base
// not aligned to the line size disables predecoding; lookup then always
// misses and fetch falls back to LoadWord + Decode.
func newPredecode(env *Env) *predecode {
	p := &predecode{mem: env.Mem}
	ls := uint64(env.CacheCfg.LineSize)
	if env.TextEnd <= env.TextBase || ls == 0 || ls&(ls-1) != 0 || env.TextBase%ls != 0 {
		return p
	}
	shift := uint(0)
	for 1<<shift != ls {
		shift++
	}
	size := env.TextEnd - env.TextBase
	p.base = env.TextBase
	p.end = env.TextEnd
	p.lineShift = shift
	p.insts = make([]isa.Inst, size/isa.InstBytes)
	p.lineOK = make([]bool, (size+ls-1)>>shift)
	return p
}

// lookup returns the decoded instruction at pc, decoding pc's whole line on
// first touch. ok is false when pc is outside the predecoded text range
// (or the table is disabled); callers fall back to LoadWord + Decode.
func (p *predecode) lookup(pc uint64) (isa.Inst, bool) {
	if pc < p.base || pc >= p.end {
		return isa.Inst{}, false
	}
	off := pc - p.base
	if li := off >> p.lineShift; !p.lineOK[li] {
		p.fillLine(li)
	}
	return p.insts[off/isa.InstBytes], true
}

func (p *predecode) fillLine(li uint64) {
	start := li << p.lineShift
	stop := start + 1<<p.lineShift
	if size := p.end - p.base; stop > size {
		stop = size
	}
	for o := start; o < stop; o += isa.InstBytes {
		word, ok := p.mem.LoadWord(p.base + o)
		if !ok {
			word = 0
		}
		p.insts[o/isa.InstBytes] = isa.Decode(word)
	}
	p.lineOK[li] = true
}

// invalidate marks the line containing lineAddr stale (no-op outside the
// text range). Called on KInv delivery so self-modifying stores that round
// trip through the directory are re-decoded, matching the L1I invalidation.
func (p *predecode) invalidate(lineAddr uint64) {
	if lineAddr < p.base || lineAddr >= p.end {
		return
	}
	p.lineOK[(lineAddr-p.base)>>p.lineShift] = false
}
