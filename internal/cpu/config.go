package cpu

// Config sizes the out-of-order core. The defaults model the paper's
// target: a 4-way issue OoO core with 64 in-flight instructions (§4.1).
type Config struct {
	FetchWidth  int
	Width       int // dispatch/commit width
	IssueWidth  int
	ROBSize     int // in-flight instruction window
	IQSize      int
	LQSize      int
	SQSize      int
	PhysInt     int
	PhysFP      int
	FetchQSize  int
	MaxBranches int // rename-map checkpoints (max unresolved CTIs)
	MSHRs       int // outstanding L1D misses

	// Predictor geometry.
	BimodalSize int // entries in the 2-bit counter table (power of two)
	BTBSize     int // entries in the indirect-target buffer (power of two)
	RASSize     int

	// Prefetch enables a next-line L1D prefetcher: each demand miss also
	// requests the following line when an MSHR is free. An extension
	// beyond the paper's target (default off).
	Prefetch bool

	// Latencies (cycles).
	IntALULat int64
	MulLat    int64
	DivLat    int64
	FPAddLat  int64
	FPMulLat  int64
	FPDivLat  int64
	FPSqrtLat int64
	AGULat    int64
	AMOLat    int64 // commit-time atomic read-modify-write occupancy

	// Functional unit counts (per cycle).
	IntALUs  int
	IntMuls  int
	FPAdds   int
	FPMuls   int
	MemPorts int
}

// DefaultConfig returns the paper's target core.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  4,
		Width:       4,
		IssueWidth:  4,
		ROBSize:     64,
		IQSize:      32,
		LQSize:      24,
		SQSize:      24,
		PhysInt:     128,
		PhysFP:      128,
		FetchQSize:  16,
		MaxBranches: 8,
		MSHRs:       8,
		BimodalSize: 4096,
		BTBSize:     512,
		RASSize:     16,
		IntALULat:   1,
		MulLat:      3,
		DivLat:      20,
		FPAddLat:    2,
		FPMulLat:    4,
		FPDivLat:    12,
		FPSqrtLat:   16,
		AGULat:      1,
		AMOLat:      20,
		IntALUs:     4,
		IntMuls:     1,
		FPAdds:      2,
		FPMuls:      1,
		MemPorts:    2,
	}
}
