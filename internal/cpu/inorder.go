package cpu

import (
	"math"

	"slacksim/internal/cache"
	"slacksim/internal/event"
	"slacksim/internal/isa"
)

// InOrder is a simple single-issue, blocking in-order core: one instruction
// in flight, loads stall until their fill returns, no speculation. It
// plugs into the same engine and event protocol as the OoO core and serves
// as the validation reference and a fast-simulation ablation (the paper
// notes the per-core simulation can be "as simple as incrementing the local
// clock" for an in-order core that stalls on a miss, §2.2).
type InOrder struct {
	cfg Config
	env Env

	stats  Stats
	active bool

	l1d, l1i *cache.L1
	pd       *predecode

	regs  [isa.NumIntRegs]int64
	fregs [isa.NumFPRegs]float64
	pc    uint64

	state     ioState
	busyUntil int64
	cur       Pre
	retryAt   int64 // blocking-syscall re-issue time (-1 none)
	eventSeq  int64
}

type ioState uint8

const (
	ioFetch ioState = iota
	ioWaitIFill
	ioExec
	ioWaitDFill
	ioWaitSyscall
)

// NewInOrder builds an in-order core. A bad cache geometry is reported as
// an error so machine construction fails fast instead of panicking.
func NewInOrder(cfg Config, env Env) (*InOrder, error) {
	l1d, err := cache.NewL1(env.CacheCfg)
	if err != nil {
		return nil, err
	}
	l1i, err := cache.NewL1(env.CacheCfg)
	if err != nil {
		return nil, err
	}
	c := &InOrder{
		cfg:     cfg,
		env:     env,
		l1d:     l1d,
		l1i:     l1i,
		retryAt: -1,
	}
	c.pd = newPredecode(&c.cfg, &c.env)
	return c, nil
}

// ID implements Core.
func (c *InOrder) ID() int { return c.env.ID }

// Stats implements Core. The returned pointer is stable; the L1 cache
// counters are synchronised into it on each call.
func (c *InOrder) Stats() *Stats {
	c.stats.L1D = c.l1d.Stats
	c.stats.L1I = c.l1i.Stats
	return &c.stats
}

// Active implements Core.
func (c *InOrder) Active() bool { return c.active }

// MarkROI implements Core.
func (c *InOrder) MarkROI(now int64) {
	if !c.stats.ROIMarked {
		c.stats.ROIMarked = true
		c.stats.ROIStartCycles = c.stats.Cycles + c.stats.IdleCycles
		c.stats.ROIStartCommitted = c.stats.Committed
	}
}

// Start implements Core.
func (c *InOrder) Start(pc, sp uint64, arg int64) {
	c.regs = [isa.NumIntRegs]int64{}
	c.fregs = [isa.NumFPRegs]float64{}
	c.regs[isa.RegSP] = int64(sp)
	c.regs[isa.RegA0] = arg
	c.pc = pc
	c.state = ioFetch
	c.busyUntil = 0
	c.retryAt = -1
	c.active = true
}

// Stop implements Core.
func (c *InOrder) Stop() { c.active = false }

// Tick implements Core.
func (c *InOrder) Tick(now int64) bool {
	if !c.active {
		c.stats.IdleCycles++
		return false
	}
	c.stats.Cycles++
	if now < c.busyUntil {
		return false
	}
	switch c.state {
	case ioFetch:
		c.fetch(now)
		return true
	case ioExec:
		c.exec(now)
		return true
	case ioWaitSyscall:
		if c.retryAt >= 0 && now >= c.retryAt {
			c.retryAt = -1
			c.stats.Retries++
			c.issueSyscall(now)
			return true
		}
		return false
	default:
		// Waiting for a fill; Deliver advances the state.
		return false
	}
}

// NextWork implements Core. Work scheduled at exactly `now` is returned:
// the caller has not yet simulated cycle `now`.
func (c *InOrder) NextWork(now int64) int64 {
	next := int64(math.MaxInt64)
	if c.busyUntil >= now {
		next = c.busyUntil
	}
	if c.retryAt >= now && c.retryAt < next {
		next = c.retryAt
	}
	return next
}

// WaitingSyscall implements Core.
func (c *InOrder) WaitingSyscall() bool {
	return c.active && c.state == ioWaitSyscall && c.retryAt < 0
}

// Skip implements Core.
func (c *InOrder) Skip(n int64) {
	c.stats.Skipped += n
	if c.active {
		c.stats.Cycles += n
	} else {
		c.stats.IdleCycles += n
	}
}

func (c *InOrder) fetch(now int64) {
	switch c.l1i.Probe(c.pc, false) {
	case cache.Hit:
		pp, ok := c.pd.lookup(c.pc)
		if ok {
			c.cur = *pp
		} else {
			word, ok := c.env.Mem.LoadWord(c.pc)
			if !ok {
				return // unmapped pc: hang rather than crash the host
			}
			c.cur = makePre(&c.cfg, isa.Decode(word))
		}
		c.stats.Fetched++
		c.state = ioExec
		c.busyUntil = now + 1
	case cache.Blocked:
		// A previous wrong-line fill in flight; impossible with one
		// instruction in flight, but harmless to wait.
	default:
		line := c.env.CacheCfg.LineAddr(c.pc)
		victimAddr, victimDirty, victimValid := c.l1i.Reserve(line)
		c.send(event.Event{Kind: event.KFetch, Time: now, Addr: line}, victimAddr, victimDirty, victimValid)
		c.state = ioWaitIFill
		c.stats.FetchStall++
	}
}

func (c *InOrder) exec(now int64) {
	p := &c.cur
	switch {
	case p.Flags&pfMemData != 0:
		c.execMem(now)
	case p.Flags&pfAMO != 0:
		c.execAMO(now)
	case p.Flags&pfSyscall != 0:
		c.stats.Syscalls++
		c.issueSyscall(now)
	case p.Op == isa.OpInvalid:
		panic("cpu: in-order core executed invalid instruction")
	default:
		a, b := c.reg(p.Rs1), c.reg(p.Rs2)
		fa, fb := c.fregs[p.Rs1], c.fregs[p.Rs2]
		res := p.Exec(p, c.pc, a, b, fa, fb)
		c.applyALU(p, res)
		if res.isCTI {
			c.stats.Branches++
		}
		c.complete(now, int64(p.Lat), res.next)
	}
}

func (c *InOrder) applyALU(p *Pre, res aluResult) {
	if res.writesInt && p.IntDst >= 0 {
		c.regs[p.IntDst] = res.intVal
	}
	if res.writesFP && p.FPDst >= 0 {
		c.fregs[p.FPDst] = res.fpVal
	}
}

func (c *InOrder) execMem(now int64) {
	in := &c.cur
	addr := uint64(c.reg(in.Rs1) + int64(in.Imm))
	write := in.Flags&pfStore != 0
	switch c.l1d.Probe(addr, write) {
	case cache.Hit:
		if write {
			c.writeMem(in, addr)
			c.stats.Stores++
		} else {
			c.readMemInto(in, addr)
			c.stats.Loads++
		}
		c.complete(now, c.env.CacheCfg.L1HitLat, c.pc+isa.InstBytes)
	case cache.NeedUpgrade:
		line := c.env.CacheCfg.LineAddr(addr)
		c.send(event.Event{Kind: event.KUpgrade, Time: now, Addr: line}, 0, false, false)
		c.state = ioWaitDFill
	case cache.Blocked:
		// Single instruction in flight: can only happen if an upgrade
		// raced an invalidation; retry next cycle.
		c.busyUntil = now + 1
	default:
		kind := event.KReadShared
		if write {
			kind = event.KReadExcl
		}
		line := c.env.CacheCfg.LineAddr(addr)
		victimAddr, victimDirty, victimValid := c.l1d.Reserve(line)
		c.send(event.Event{Kind: kind, Time: now, Addr: line}, victimAddr, victimDirty, victimValid)
		c.state = ioWaitDFill
	}
}

func (c *InOrder) execAMO(now int64) {
	in := &c.cur
	addr := uint64(c.reg(in.Rs1))
	rs2 := uint64(c.reg(in.Rs2))
	var old uint64
	var ok bool
	switch in.Op {
	case isa.OpAMOADD:
		old, ok = c.env.Mem.AMOAdd(addr, rs2)
	case isa.OpAMOSWAP:
		old, ok = c.env.Mem.AMOSwap(addr, rs2)
	case isa.OpCAS:
		old, ok = c.env.Mem.CAS(addr, rs2, uint64(c.reg(in.Rd)))
	}
	if !ok {
		c.stats.MemFaults++
	}
	if in.IntDst >= 0 {
		c.regs[in.IntDst] = int64(old)
	}
	c.complete(now, c.cfg.AMOLat, c.pc+isa.InstBytes)
}

func (c *InOrder) issueSyscall(now int64) {
	c.send(event.Event{
		Kind: event.KSyscall,
		Time: now,
		Aux:  int64(c.cur.Imm),
		Args: [4]int64{c.regs[isa.RegA0], c.regs[isa.RegA1], c.regs[isa.RegA2], c.regs[isa.RegA3]},
	}, 0, false, false)
	c.state = ioWaitSyscall
}

func (c *InOrder) readMemInto(in *Pre, addr uint64) {
	switch in.Op {
	case isa.OpFLD:
		raw, _ := c.env.Mem.LoadWord(addr)
		c.fregs[in.Rd] = math.Float64frombits(raw)
	case isa.OpLD:
		raw, _ := c.env.Mem.LoadWord(addr)
		c.regs[in.Rd] = int64(raw)
	case isa.OpLW, isa.OpLWU:
		raw, _ := c.env.Mem.Load32(addr)
		c.regs[in.Rd] = extend(in.Op, uint64(raw))
	case isa.OpLB, isa.OpLBU:
		raw, _ := c.env.Mem.Load8(addr)
		c.regs[in.Rd] = extend(in.Op, uint64(raw))
	}
	if in.Op != isa.OpFLD {
		c.regs[isa.RegZero] = 0
	}
}

func (c *InOrder) writeMem(in *Pre, addr uint64) {
	var ok bool
	switch in.Op {
	case isa.OpSD:
		ok = c.env.Mem.StoreWord(addr, uint64(c.reg(in.Rs2)))
	case isa.OpFSD:
		ok = c.env.Mem.StoreWord(addr, math.Float64bits(c.fregs[in.Rs2]))
	case isa.OpSW:
		ok = c.env.Mem.Store32(addr, uint32(c.reg(in.Rs2)))
	case isa.OpSB:
		ok = c.env.Mem.Store8(addr, uint8(c.reg(in.Rs2)))
	}
	if !ok {
		c.stats.MemFaults++
	}
}

// complete retires the current instruction: charge lat cycles and continue
// fetching at next.
func (c *InOrder) complete(now, lat int64, next uint64) {
	c.regs[isa.RegZero] = 0
	c.busyUntil = now + lat
	c.pc = next
	c.state = ioFetch
	c.stats.Committed++
}

func (c *InOrder) reg(r uint8) int64 {
	if r == isa.RegZero {
		return 0
	}
	return c.regs[r]
}

// Deliver implements Core.
func (c *InOrder) Deliver(ev event.Event, now int64) {
	switch ev.Kind {
	case event.KFill:
		switch c.state {
		case ioWaitIFill:
			c.l1i.Fill(ev.Addr, cache.State(ev.Aux))
			c.state = ioFetch
		case ioWaitDFill:
			if ev.Aux == int64(cache.Modified) && c.l1d.StateOf(ev.Addr) == cache.Shared {
				c.l1d.UpgradeDone(ev.Addr)
			} else {
				c.l1d.Fill(ev.Addr, cache.State(ev.Aux))
			}
			c.state = ioExec // re-run the access; it should now hit
		default:
			// Stale fill (e.g. after Stop); still install to keep the
			// directory's view consistent.
			c.l1d.Fill(ev.Addr, cache.State(ev.Aux))
		}
	case event.KInv:
		c.l1d.Invalidate(ev.Addr)
		c.l1i.Invalidate(ev.Addr)
		c.pd.invalidate(ev.Addr)
	case event.KDowngrade:
		c.l1d.Downgrade(ev.Addr)
		c.l1i.Downgrade(ev.Addr)
	case event.KSyscallDone:
		if c.state != ioWaitSyscall {
			return
		}
		if ev.Flag {
			c.retryAt = now + 1
			return
		}
		if c.cur.IntDst >= 0 {
			c.regs[c.cur.IntDst] = ev.Aux
		}
		c.complete(now, 1, c.pc+isa.InstBytes)
	}
}

func (c *InOrder) send(ev event.Event, victimAddr uint64, victimDirty, victimValid bool) {
	ev.Core = int32(c.env.ID)
	c.eventSeq++
	ev.Seq = c.eventSeq
	if victimValid {
		ev.VictimAddr = victimAddr
		ev.VictimFlags = event.VictimValid
		if victimDirty {
			ev.VictimFlags |= event.VictimDirty
		}
	}
	c.env.Send(ev)
}
