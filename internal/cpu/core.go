// Package cpu implements the target core timing models: a NetBurst-like
// 4-wide out-of-order core (the paper's target, §2.2/§4.1 — operand values
// are read just before execution, not at dispatch) and a simple in-order
// core used for ablations and fast functional runs. A core owns its private
// L1 instruction and data caches; everything below the L1s is reached
// through timestamped events sent to the simulation manager.
package cpu

import (
	"slacksim/internal/cache"
	"slacksim/internal/event"
	"slacksim/internal/mem"
)

// Core is the engine-facing contract of a simulated core. All methods are
// invoked by the core's own simulation thread only.
type Core interface {
	// ID returns the target core index.
	ID() int
	// Tick simulates one target clock cycle at local time now. It must
	// never block on the host. It reports whether the cycle made any
	// progress (fetched, dispatched, issued, completed, committed, drained
	// a store, or acted on a syscall); a false return means every
	// subsequent cycle is also a no-op until either NextWork's time
	// arrives or an InQ event is delivered — which lets the engine skip
	// idle stall cycles deterministically instead of burning host time on
	// them (and keeps the optimistic schemes in the paper's regime, where
	// a stalled core observes its reply at the reply's timestamp rather
	// than host-schedule-dependent cycles later).
	Tick(now int64) bool
	// NextWork returns the earliest future local time at which the core
	// can make progress without any new InQ event (a scheduled completion,
	// a syscall retry, a redirect release), or math.MaxInt64 if only an
	// InQ event can unblock it. Meaningful right after a Tick that
	// returned false.
	NextWork(now int64) int64
	// Skip accounts n idle cycles that the engine fast-forwarded.
	Skip(n int64)
	// WaitingSyscall reports that the core has a system call in flight
	// whose reply has not arrived. Diagnostic; the engine decides how to
	// wait from the kernel's blocked-thread bookkeeping, not from this.
	WaitingSyscall() bool
	// Deliver applies an InQ event (fill, invalidation, syscall reply,
	// start/stop) at local time now.
	Deliver(ev event.Event, now int64)
	// Start activates the core: begin fetching at pc with the given stack
	// pointer and a0 argument.
	Start(pc, sp uint64, arg int64)
	// Stop halts the core; subsequent Ticks are idle.
	Stop()
	// Active reports whether the core is running a workload thread.
	Active() bool
	// Stats returns the core's counters (live; read by the harness after
	// the simulation ends).
	Stats() *Stats
	// MarkROI records the start of the measured region of interest.
	MarkROI(now int64)
}

// Env supplies a core's connections to the rest of the machine.
type Env struct {
	ID       int
	Mem      *mem.Memory
	CacheCfg cache.Config
	// Send pushes a request onto the core's OutQ. It must not block; ring
	// capacity bounds are sized above the maximum number of outstanding
	// requests.
	Send func(event.Event)
	// TextBase and TextEnd delimit the program's static text section. Cores
	// predecode fetched instructions in this range one cache line at a time
	// (see predecode.go) instead of calling Mem.LoadWord + isa.Decode per
	// fetch. Leave both zero to disable predecoding (unit tests that build
	// cores directly).
	TextBase, TextEnd uint64
}

// Stats aggregates one core's activity.
type Stats struct {
	Cycles     int64 // cycles ticked while active
	IdleCycles int64 // cycles ticked while inactive
	Skipped    int64 // stall cycles fast-forwarded by the engine
	Committed  int64
	Fetched    int64
	Squashed   int64

	Loads      int64
	Stores     int64
	Branches   int64
	Mispred    int64
	Syscalls   int64
	Retries    int64 // blocking-syscall retry round trips
	MemFaults  int64 // committed accesses to unmapped/misaligned addresses
	Prefetches int64 // next-line prefetches issued (when enabled)

	FetchStall  int64 // cycles fetch was blocked on an I-miss
	ROBStall    int64 // dispatch cycles lost to a full ROB
	LSQStall    int64 // dispatch cycles lost to full LQ/SQ
	HeadStall   int64 // cycles the ROB head was an incomplete instruction
	SerializeOn int64 // cycles dispatch was serialised (syscall/AMO drain)

	L1D cache.L1Stats
	L1I cache.L1Stats

	OpsLoadIssue int64 // loadStep executions (incl. re-kicks)
	OpsLoadDone  int64
	OpsWB        int64
	Kicks        int64 // kickParkedLoads requeues

	ROIStartCycles    int64
	ROIStartCommitted int64
	ROIMarked         bool
}

// ROICycles returns cycles elapsed since the region of interest started.
func (s *Stats) ROICycles() int64 { return s.Cycles + s.IdleCycles - s.ROIStartCycles }

// ROICommitted returns instructions committed since the region of interest
// started.
func (s *Stats) ROICommitted() int64 { return s.Committed - s.ROIStartCommitted }
