package cpu

import (
	"math"
	"testing"

	"slacksim/internal/asm"
	"slacksim/internal/cache"
	"slacksim/internal/event"
	"slacksim/internal/isa"
	"slacksim/internal/mem"
	"slacksim/internal/sysemu"
)

// bench drives a single core against a miniature manager that answers
// memory requests with fixed-latency fills and system calls through a real
// sysemu kernel — a one-core serial engine for unit-testing core models.
type bench struct {
	t      fataler
	core   Core
	mem    *mem.Memory
	kernel *sysemu.Kernel
	sent   []event.Event
	inbox  []event.Event
	now    int64
	fills  int
	sys    int
	done   bool
	code   int64
}

func newBench(t *testing.T, src string, inorder bool) *bench {
	t.Helper()
	return newBenchTB(t, src, inorder)
}

// newBenchB adapts the bench for benchmarks (OoO core).
func newBenchB(b *testing.B, src string) *bench { return newBenchTB(b, src, false) }

// newBenchBInorder adapts the bench for benchmarks (in-order core).
func newBenchBInorder(b *testing.B, src string) *bench { return newBenchTB(b, src, true) }

// fataler is the subset of testing.TB the bench needs.
type fataler interface {
	Helper()
	Fatal(args ...any)
	Fatalf(format string, args ...any)
}

func newBenchTB(t fataler, src string, inorder bool) *bench {
	t.Helper()
	prog, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := &bench{t: t}
	b.mem = mem.New(4 << 20)
	if err := b.mem.WriteBytes(prog.TextBase, prog.TextBytes()); err != nil {
		t.Fatal(err)
	}
	if err := b.mem.WriteBytes(prog.DataBase, prog.Data); err != nil {
		t.Fatal(err)
	}
	img := &sysemu.Image{
		HeapStart: 1 << 20, HeapLimit: 2 << 20,
		StackTop: func(int) uint64 { return 3 << 20 },
		LoadByte: b.mem.Load8,
	}
	b.kernel = sysemu.NewKernel(img, 1, 1)
	b.kernel.Notify = func(core int, t int64, ret int64) {
		b.inbox = append(b.inbox, event.Event{Kind: event.KSyscallDone, Time: t + 10, Aux: ret})
	}
	env := Env{
		ID:       0,
		Mem:      b.mem,
		CacheCfg: cache.DefaultConfig(1),
		Send:     func(ev event.Event) { b.sent = append(b.sent, ev) },
	}
	b.core = mustCore(inorder, env)
	b.core.Start(prog.Entry, 3<<20, 0)
	return b
}

// mustCore builds a core from the default config, panicking on the
// (impossible for DefaultConfig) geometry error.
func mustCore(inorder bool, env Env) Core {
	var c Core
	var err error
	if inorder {
		c, err = NewInOrder(DefaultConfig(), env)
	} else {
		c, err = NewOoO(DefaultConfig(), env)
	}
	if err != nil {
		panic(err)
	}
	return c
}

// manager answers pending requests.
func (b *bench) manage() {
	for _, ev := range b.sent {
		switch ev.Kind {
		case event.KFetch, event.KReadShared:
			b.fills++
			b.inbox = append(b.inbox, event.Event{Kind: event.KFill, Time: ev.Time + 10, Addr: ev.Addr, Aux: int64(cache.Exclusive)})
		case event.KReadExcl, event.KUpgrade:
			b.fills++
			b.inbox = append(b.inbox, event.Event{Kind: event.KFill, Time: ev.Time + 10, Addr: ev.Addr, Aux: int64(cache.Modified)})
		case event.KSyscall:
			b.sys++
			res := b.kernel.Syscall(0, ev.Time, ev.Aux, ev.Args)
			for _, eff := range res.Effects {
				if eff.Kind == sysemu.EffectEndSim {
					b.done = true
					b.code = eff.Code
					b.core.Stop() // as the engine would on KStop/end
				}
			}
			if !res.Block {
				b.inbox = append(b.inbox, event.Event{Kind: event.KSyscallDone, Time: ev.Time + 10, Aux: res.Ret, Flag: res.Retry})
			}
		}
	}
	b.sent = b.sent[:0]
}

func (b *bench) step() {
	kept := b.inbox[:0]
	for _, ev := range b.inbox {
		if ev.Time <= b.now {
			b.core.Deliver(ev, b.now)
		} else {
			kept = append(kept, ev)
		}
	}
	b.inbox = kept
	progressed := b.core.Tick(b.now)
	b.now++
	b.manage()
	if !progressed && len(b.inbox) == 0 {
		// Emulate the engine's fast-forward.
		if next := b.core.NextWork(b.now); next != math.MaxInt64 && next > b.now {
			b.core.Skip(next - b.now)
			b.now = next
		}
	} else if len(b.inbox) > 0 && !progressed {
		min := b.inbox[0].Time
		for _, ev := range b.inbox[1:] {
			if ev.Time < min {
				min = ev.Time
			}
		}
		if min > b.now {
			b.core.Skip(min - b.now)
			b.now = min
		}
	}
}

// run executes until the workload exits or the cycle limit trips.
func (b *bench) run(limit int64) {
	b.t.Helper()
	for !b.done && b.now < limit {
		b.step()
	}
	if !b.done {
		b.t.Fatalf("no exit after %d cycles", limit)
	}
}

func (b *bench) word(t *testing.T, addr uint64) uint64 {
	t.Helper()
	v, ok := b.mem.LoadWord(addr)
	if !ok {
		t.Fatalf("bad word address %#x", addr)
	}
	return v
}

const aluProg = `
main:
    li   r8, 6
    li   r9, 7
    mul  r10, r8, r9
    li   r11, 100
    div  r12, r11, r8      # 16
    rem  r13, r11, r8      # 4
    sub  r14, r10, r12     # 26
    xor  r15, r14, r13     # 30
    slli r16, r15, 2       # 120
    srai r17, r16, 1       # 60
    la   r18, out
    sd   r17, 0(r18)
    li   a0, 0
    syscall 0
.data
.align 8
out: .dword 0
`

func TestALUChainBothModels(t *testing.T) {
	for _, inorder := range []bool{false, true} {
		b := newBench(t, aluProg, inorder)
		b.run(100000)
		addr := uint64(0x2000)
		if v := b.word(t, addr); v != 60 {
			t.Errorf("inorder=%v: out = %d, want 60", inorder, v)
		}
	}
}

const fpProg = `
main:
    la   r8, vals
    fld  f1, 0(r8)
    fld  f2, 8(r8)
    fadd f3, f1, f2
    fmul f4, f3, f3
    fsqrt f5, f4          # |f1+f2| = 4
    fcvt.w.d r9, f5
    la   r10, out
    sd   r9, 0(r10)
    fle  r11, f1, f2
    sd   r11, 8(r10)
    li   a0, 0
    syscall 0
.data
.align 8
vals: .double 1.5, 2.5
out:  .dword 0, 0
`

func TestFPPipelineBothModels(t *testing.T) {
	for _, inorder := range []bool{false, true} {
		b := newBench(t, fpProg, inorder)
		b.run(100000)
		if v := b.word(t, 0x2010); v != 4 {
			t.Errorf("inorder=%v: sqrt result = %d, want 4", inorder, v)
		}
		if v := b.word(t, 0x2018); v != 1 {
			t.Errorf("inorder=%v: fle = %d, want 1", inorder, v)
		}
	}
}

const branchProg = `
# Sum odd numbers in 0..99 with a data-dependent branch.
main:
    li   r8, 0            # i
    li   r9, 100
    li   r10, 0           # sum
loop:
    andi r11, r8, 1
    beqz r11, skip
    add  r10, r10, r8
skip:
    addi r8, r8, 1
    blt  r8, r9, loop
    la   r12, out
    sd   r10, 0(r12)
    li   a0, 0
    syscall 0
.data
.align 8
out: .dword 0
`

func TestBranchRecovery(t *testing.T) {
	b := newBench(t, branchProg, false)
	b.run(200000)
	if v := b.word(t, 0x2000); v != 2500 {
		t.Fatalf("sum = %d, want 2500", v)
	}
	st := b.core.Stats()
	if st.Branches == 0 {
		t.Fatal("no branches counted")
	}
	if st.Mispred == 0 {
		t.Fatal("alternating branch never mispredicted (predictor suspiciously perfect)")
	}
	if st.Squashed == 0 {
		t.Fatal("mispredictions squashed nothing")
	}
}

const forwardProg = `
# Store then immediately load the same address: exercises store-to-load
# forwarding in the OoO core.
main:
    la   r8, slot
    li   r9, 1234
    sd   r9, 0(r8)
    ld   r10, 0(r8)
    addi r10, r10, 1
    sd   r10, 8(r8)
    li   a0, 0
    syscall 0
.data
.align 8
slot: .dword 0, 0
`

func TestStoreToLoadForwarding(t *testing.T) {
	b := newBench(t, forwardProg, false)
	b.run(100000)
	if v := b.word(t, 0x2008); v != 1235 {
		t.Fatalf("forwarded value = %d, want 1235", v)
	}
}

const amoProg = `
main:
    la   r8, ctr
    li   r9, 5
    amoadd r10, r8, r9    # old 100 -> 105
    li   r11, 300
    amoswap r12, r8, r11  # old 105 -> 300
    li   r13, 300
    li   r14, 77
    mv   r15, r14
    cas  r15, r8, r13     # swaps in 77, old 300
    la   r16, out
    sd   r10, 0(r16)
    sd   r12, 8(r16)
    sd   r15, 16(r16)
    li   a0, 0
    syscall 0
.data
.align 8
ctr: .dword 100
out: .dword 0, 0, 0
`

func TestAMOsBothModels(t *testing.T) {
	for _, inorder := range []bool{false, true} {
		b := newBench(t, amoProg, inorder)
		b.run(100000)
		if v := b.word(t, 0x2000); v != 77 {
			t.Errorf("inorder=%v: ctr = %d, want 77", inorder, v)
		}
		if v := b.word(t, 0x2008); v != 100 {
			t.Errorf("inorder=%v: amoadd old = %d", inorder, v)
		}
		if v := b.word(t, 0x2010); v != 105 {
			t.Errorf("inorder=%v: amoswap old = %d", inorder, v)
		}
		if v := b.word(t, 0x2018); v != 300 {
			t.Errorf("inorder=%v: cas old = %d", inorder, v)
		}
	}
}

func TestMissTrafficCounted(t *testing.T) {
	b := newBench(t, aluProg, false)
	b.run(100000)
	if b.fills == 0 {
		t.Fatal("no fills requested (cold caches must miss)")
	}
	st := b.core.Stats()
	if st.L1I.Misses == 0 {
		t.Fatal("no I-cache misses counted")
	}
	if st.Committed == 0 || st.Cycles == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}

func TestSyscallRoundTrips(t *testing.T) {
	b := newBench(t, aluProg, false)
	b.run(100000)
	if b.sys != 1 {
		t.Fatalf("syscall events = %d, want 1", b.sys)
	}
	if b.code != 0 {
		t.Fatalf("exit code = %d", b.code)
	}
}

func TestWaitingSyscall(t *testing.T) {
	// A lock that is never granted leaves the core in WaitingSyscall with
	// NextWork = infinity.
	b := newBench(t, `
main:
    li a0, 64
    syscall 5      # lock (kernel grants; then lock again below never returns)
    li a0, 64
    syscall 5
    li a0, 0
    syscall 0
`, false)
	// Pre-acquire the lock for a phantom second core so the second lock
	// call blocks forever.
	b.kernel.Syscall(0, 0, sysemu.SysLock, [4]int64{64})
	for i := 0; i < 20000 && !b.core.WaitingSyscall(); i++ {
		b.step()
	}
	if !b.core.WaitingSyscall() {
		t.Fatal("core never entered WaitingSyscall")
	}
	if next := b.core.NextWork(b.now); next != math.MaxInt64 {
		t.Fatalf("blocked core NextWork = %d, want infinity", next)
	}
}

func TestStopClearsState(t *testing.T) {
	b := newBench(t, `
main:
    addi r8, r8, 1
    j    main
`, false)
	for i := 0; i < 30; i++ {
		b.step()
	}
	b.core.Stop()
	if b.core.Active() {
		t.Fatal("active after Stop")
	}
	// Idle ticks must not panic and must report no progress.
	for i := 0; i < 10; i++ {
		if b.core.Tick(b.now) {
			t.Fatal("stopped core reported progress")
		}
		b.now++
	}
	// A stale fill after Stop must be ignored gracefully.
	b.core.Deliver(event.Event{Kind: event.KFill, Time: b.now, Addr: 0x1000, Aux: int64(cache.Shared)}, b.now)
}

func TestSkipAccounting(t *testing.T) {
	b := newBench(t, aluProg, false)
	st := b.core.Stats()
	b.core.Skip(25)
	if st.Skipped != 25 || st.Cycles < 25 {
		t.Fatalf("skip accounting: %+v", st)
	}
}

func TestROIMarking(t *testing.T) {
	b := newBench(t, branchProg, false)
	for i := 0; i < 50; i++ {
		b.step()
	}
	b.core.MarkROI(b.now)
	st := b.core.Stats()
	if !st.ROIMarked || st.ROIStartCycles == 0 {
		t.Fatalf("ROI not marked: %+v", st)
	}
	before := st.ROICommitted()
	b.run(100000)
	if st.ROICommitted() <= before {
		t.Fatal("ROI committed did not advance")
	}
	if st.ROICommitted() >= st.Committed {
		t.Fatal("ROI committed not smaller than total")
	}
}

// TestExecALUTable spot-checks functional semantics including the
// division-by-zero conventions that keep wrong paths host-safe.
func TestExecALUTable(t *testing.T) {
	cases := []struct {
		op   isa.Op
		a, b int64
		want int64
	}{
		{isa.OpADD, 2, 3, 5},
		{isa.OpSUB, 2, 3, -1},
		{isa.OpMUL, -4, 6, -24},
		{isa.OpDIV, 7, 2, 3},
		{isa.OpDIV, 7, 0, -1},
		{isa.OpDIV, math.MinInt64, -1, math.MinInt64},
		{isa.OpREM, 7, 0, 7},
		{isa.OpREM, math.MinInt64, -1, 0},
		{isa.OpSLL, 1, 70, 64}, // shift amounts mask to 6 bits
		{isa.OpSRL, -8, 1, int64(uint64(0xFFFFFFFFFFFFFFF8) >> 1)},
		{isa.OpSRA, -8, 1, -4},
		{isa.OpSLT, -1, 0, 1},
		{isa.OpSLTU, -1, 0, 0},
	}
	for _, c := range cases {
		res := execALU(isa.Inst{Op: c.op, Rd: 1, Rs1: 2, Rs2: 3}, 0, c.a, c.b, 0, 0)
		if !res.writesInt || res.intVal != c.want {
			t.Errorf("%v(%d,%d) = %d, want %d", c.op, c.a, c.b, res.intVal, c.want)
		}
	}
}

func TestExecBranches(t *testing.T) {
	pc := uint64(0x1000)
	res := execALU(isa.Inst{Op: isa.OpBEQ, Imm: 64}, pc, 5, 5, 0, 0)
	if !res.isCTI || !res.taken || res.next != pc+64 {
		t.Errorf("taken beq: %+v", res)
	}
	res = execALU(isa.Inst{Op: isa.OpBEQ, Imm: 64}, pc, 5, 6, 0, 0)
	if res.taken || res.next != pc+8 {
		t.Errorf("not-taken beq: %+v", res)
	}
	res = execALU(isa.Inst{Op: isa.OpJALR, Rd: 1, Imm: 4}, pc, 0x2000, 0, 0, 0)
	if res.next != 0x2004 || res.intVal != int64(pc+8) {
		t.Errorf("jalr: %+v", res)
	}
}

func TestSaturatingConvert(t *testing.T) {
	if v := saturatingInt(math.NaN()); v != 0 {
		t.Errorf("NaN -> %d", v)
	}
	if v := saturatingInt(1e300); v != math.MaxInt64 {
		t.Errorf("+huge -> %d", v)
	}
	if v := saturatingInt(-1e300); v != math.MinInt64 {
		t.Errorf("-huge -> %d", v)
	}
	if v := saturatingInt(-2.9); v != -2 {
		t.Errorf("truncate -> %d", v)
	}
}

func TestPredictorTraining(t *testing.T) {
	cfg := DefaultConfig()
	p := newPredictor(&cfg)
	pre := func(in isa.Inst) *Pre {
		q := makePre(&cfg, in)
		return &q
	}
	br := pre(isa.Inst{Op: isa.OpBNE, Imm: -64})
	pc := uint64(0x4000)
	// Initially weakly not-taken.
	if _, taken := p.predict(br, pc); taken {
		t.Fatal("cold predictor predicted taken")
	}
	for i := 0; i < 4; i++ {
		p.update(br, pc, true, pc-64)
	}
	if _, taken := p.predict(br, pc); !taken {
		t.Fatal("trained predictor still predicts not-taken")
	}
	// RAS: call pushes, return pops.
	call := pre(isa.Inst{Op: isa.OpJAL, Rd: isa.RegRA, Imm: 256})
	p.predict(call, 0x5000)
	ret := pre(isa.Inst{Op: isa.OpJALR, Rd: isa.RegZero, Rs1: isa.RegRA})
	next, _ := p.predict(ret, 0x6000)
	if next != 0x5008 {
		t.Fatalf("RAS predicted %#x, want 0x5008", next)
	}
	// BTB for indirect jumps.
	ind := pre(isa.Inst{Op: isa.OpJALR, Rd: isa.RegZero, Rs1: 8})
	p.update(ind, 0x7000, true, 0x9000)
	if next, _ := p.predict(ind, 0x7000); next != 0x9000 {
		t.Fatalf("BTB predicted %#x", next)
	}
}
