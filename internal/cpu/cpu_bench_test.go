package cpu

import "testing"

// BenchmarkOoOTick measures the cost of one simulated cycle of the
// out-of-order core on a tight ALU loop — the quantity that sets the
// simulator's KIPS.
func BenchmarkOoOTick(b *testing.B) {
	bench := newBenchB(b, `
main:
    li   r8, 0
loop:
    addi r8, r8, 1
    xor  r9, r8, r8
    slli r10, r8, 1
    and  r11, r10, r8
    j    loop
`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.step()
	}
}

// BenchmarkInOrderTick is the in-order model's per-cycle cost.
func BenchmarkInOrderTick(b *testing.B) {
	bench := newBenchBInorder(b, `
main:
    li   r8, 0
loop:
    addi r8, r8, 1
    j    loop
`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.step()
	}
}
