package mem

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestWordRoundTrip(t *testing.T) {
	m := New(4096)
	if !m.StoreWord(8, 0xDEADBEEFCAFEF00D) {
		t.Fatal("store failed")
	}
	v, ok := m.LoadWord(8)
	if !ok || v != 0xDEADBEEFCAFEF00D {
		t.Fatalf("load = %#x, %v", v, ok)
	}
}

func TestAlignmentAndBounds(t *testing.T) {
	m := New(64)
	if _, ok := m.LoadWord(4); ok {
		t.Error("misaligned 64-bit load accepted")
	}
	if _, ok := m.Load32(2); ok {
		t.Error("misaligned 32-bit load accepted")
	}
	if _, ok := m.LoadWord(64); ok {
		t.Error("out-of-range load accepted")
	}
	if m.StoreWord(60, 1) { // crosses the end
		t.Error("out-of-range store accepted")
	}
	if _, ok := m.Load8(63); !ok {
		t.Error("last byte rejected")
	}
	if _, ok := m.Load8(64); ok {
		t.Error("byte past end accepted")
	}
}

// TestSubWordInsertion checks 32-bit and 8-bit stores only modify their
// slice of the containing 64-bit word.
func TestSubWordInsertion(t *testing.T) {
	m := New(64)
	m.StoreWord(0, 0x1111111122222222)
	m.Store32(0, 0xAAAAAAAA)
	if v, _ := m.LoadWord(0); v != 0x11111111AAAAAAAA {
		t.Errorf("low half store: %#x", v)
	}
	m.Store32(4, 0xBBBBBBBB)
	if v, _ := m.LoadWord(0); v != 0xBBBBBBBBAAAAAAAA {
		t.Errorf("high half store: %#x", v)
	}
	m.Store8(1, 0xFF)
	if v, _ := m.LoadWord(0); v != 0xBBBBBBBBAAAAFFAA {
		t.Errorf("byte store: %#x", v)
	}
	if b, _ := m.Load8(1); b != 0xFF {
		t.Errorf("byte load: %#x", b)
	}
	if w, _ := m.Load32(4); w != 0xBBBBBBBB {
		t.Errorf("32-bit load: %#x", w)
	}
}

func TestSubWordQuick(t *testing.T) {
	m := New(1 << 16)
	f := func(addr uint16, v uint32, b uint8) bool {
		a := uint64(addr) &^ 3
		if !m.Store32(a, v) {
			return false
		}
		got, ok := m.Load32(a)
		if !ok || got != v {
			return false
		}
		ba := uint64(addr)
		if !m.Store8(ba, b) {
			return false
		}
		gb, ok := m.Load8(ba)
		return ok && gb == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestAtomics(t *testing.T) {
	m := New(64)
	m.StoreWord(0, 10)
	if old, ok := m.AMOAdd(0, 5); !ok || old != 10 {
		t.Errorf("amoadd old = %d, %v", old, ok)
	}
	if v, _ := m.LoadWord(0); v != 15 {
		t.Errorf("after amoadd: %d", v)
	}
	if old, _ := m.AMOSwap(0, 99); old != 15 {
		t.Errorf("amoswap old = %d", old)
	}
	if old, _ := m.CAS(0, 99, 1); old != 99 {
		t.Errorf("cas success old = %d", old)
	}
	if v, _ := m.LoadWord(0); v != 1 {
		t.Errorf("after cas: %d", v)
	}
	if old, _ := m.CAS(0, 42, 7); old != 1 {
		t.Errorf("cas failure old = %d", old)
	}
	if v, _ := m.LoadWord(0); v != 1 {
		t.Errorf("failed cas must not store: %d", v)
	}
}

// TestConcurrentAMO checks atomicity under contention: N goroutines each
// add 1 to the same word M times.
func TestConcurrentAMO(t *testing.T) {
	m := New(64)
	const goroutines, adds = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < adds; i++ {
				m.AMOAdd(0, 1)
			}
		}()
	}
	wg.Wait()
	if v, _ := m.LoadWord(0); v != goroutines*adds {
		t.Fatalf("lost updates: %d != %d", v, goroutines*adds)
	}
}

// TestConcurrentSubWord checks racing byte stores to different bytes of one
// word never clobber each other (the CAS loop in Store8).
func TestConcurrentSubWord(t *testing.T) {
	m := New(64)
	var wg sync.WaitGroup
	for b := 0; b < 8; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				m.Store8(uint64(b), uint8(b+1))
			}
		}(b)
	}
	wg.Wait()
	for b := 0; b < 8; b++ {
		if v, _ := m.Load8(uint64(b)); v != uint8(b+1) {
			t.Fatalf("byte %d = %d", b, v)
		}
	}
}

func TestFloat64(t *testing.T) {
	m := New(64)
	for _, f := range []float64{0, 1.5, -math.Pi, math.Inf(1), math.SmallestNonzeroFloat64} {
		m.StoreFloat64(16, f)
		got, ok := m.LoadFloat64(16)
		if !ok || got != f {
			t.Errorf("float round trip %v -> %v", f, got)
		}
	}
	m.StoreFloat64(16, math.NaN())
	if got, _ := m.LoadFloat64(16); !math.IsNaN(got) {
		t.Errorf("NaN round trip -> %v", got)
	}
}

func TestBulkBytes(t *testing.T) {
	m := New(256)
	src := make([]byte, 99)
	for i := range src {
		src[i] = byte(i * 7)
	}
	// Unaligned start exercises the head/body/tail paths.
	if err := m.WriteBytes(3, src); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadBytes(3, len(src))
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("byte %d: %d != %d", i, got[i], src[i])
		}
	}
	if err := m.WriteBytes(250, make([]byte, 10)); err == nil {
		t.Error("overflowing WriteBytes accepted")
	}
	if _, err := m.ReadBytes(250, 10); err == nil {
		t.Error("overflowing ReadBytes accepted")
	}
}

func TestSizeRounding(t *testing.T) {
	m := New(13)
	if m.Size() != 16 {
		t.Errorf("size = %d, want 16", m.Size())
	}
}
