// Package mem implements the functional memory image shared by all simulated
// cores. Memory is byte-addressed but backed by 64-bit words accessed with
// sync/atomic: slack simulation schemes intentionally allow simulated-time
// races between core threads (paper §3.2.3), and the atomics guarantee those
// races stay well-defined on the host. Sub-word stores use a CAS loop so a
// racing store to the neighbouring half-word can never be lost or torn.
package mem

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"
)

// Memory is a flat byte-addressed functional memory image.
//
// All Load*/Store*/atomic methods are safe for concurrent use by multiple
// goroutines. The bulk helpers (WriteBytes, ReadBytes) are intended for
// single-threaded setup and inspection.
type Memory struct {
	words []atomic.Uint64
	size  uint64 // in bytes
}

// New creates a memory of the given size in bytes (rounded up to a multiple
// of 8).
func New(size uint64) *Memory {
	size = (size + 7) &^ 7
	return &Memory{
		words: make([]atomic.Uint64, size/8),
		size:  size,
	}
}

// Size returns the memory size in bytes.
func (m *Memory) Size() uint64 { return m.size }

func (m *Memory) wordIndex(addr uint64, bytes uint64) (int, bool) {
	if addr%bytes != 0 || addr+bytes > m.size {
		return 0, false
	}
	return int(addr / 8), true
}

// LoadWord reads the 64-bit word at addr. ok is false on a misaligned or
// out-of-range access (the value is then 0).
func (m *Memory) LoadWord(addr uint64) (v uint64, ok bool) {
	i, ok := m.wordIndex(addr, 8)
	if !ok {
		return 0, false
	}
	return m.words[i].Load(), true
}

// StoreWord writes the 64-bit word at addr.
func (m *Memory) StoreWord(addr uint64, v uint64) bool {
	i, ok := m.wordIndex(addr, 8)
	if !ok {
		return false
	}
	m.words[i].Store(v)
	return true
}

// Load32 reads the 32-bit value at addr (must be 4-aligned).
func (m *Memory) Load32(addr uint64) (uint32, bool) {
	i, ok := m.wordIndex(addr, 4)
	if !ok {
		return 0, false
	}
	w := m.words[i].Load()
	if addr%8 != 0 {
		w >>= 32
	}
	return uint32(w), true
}

// Store32 writes the 32-bit value at addr (must be 4-aligned).
func (m *Memory) Store32(addr uint64, v uint32) bool {
	i, ok := m.wordIndex(addr, 4)
	if !ok {
		return false
	}
	shift := (addr % 8) * 8
	mask := uint64(0xFFFFFFFF) << shift
	nv := uint64(v) << shift
	for {
		old := m.words[i].Load()
		if m.words[i].CompareAndSwap(old, (old&^mask)|nv) {
			return true
		}
	}
}

// Load8 reads the byte at addr.
func (m *Memory) Load8(addr uint64) (uint8, bool) {
	if addr >= m.size {
		return 0, false
	}
	w := m.words[addr/8].Load()
	return uint8(w >> ((addr % 8) * 8)), true
}

// Store8 writes the byte at addr.
func (m *Memory) Store8(addr uint64, v uint8) bool {
	if addr >= m.size {
		return false
	}
	i := int(addr / 8)
	shift := (addr % 8) * 8
	mask := uint64(0xFF) << shift
	nv := uint64(v) << shift
	for {
		old := m.words[i].Load()
		if m.words[i].CompareAndSwap(old, (old&^mask)|nv) {
			return true
		}
	}
}

// AMOAdd atomically adds delta to the 64-bit word at addr, returning the old
// value.
func (m *Memory) AMOAdd(addr uint64, delta uint64) (old uint64, ok bool) {
	i, ok := m.wordIndex(addr, 8)
	if !ok {
		return 0, false
	}
	return m.words[i].Add(delta) - delta, true
}

// AMOSwap atomically replaces the 64-bit word at addr, returning the old
// value.
func (m *Memory) AMOSwap(addr uint64, v uint64) (old uint64, ok bool) {
	i, ok := m.wordIndex(addr, 8)
	if !ok {
		return 0, false
	}
	return m.words[i].Swap(v), true
}

// CAS atomically compares the word at addr with expect and, if equal, stores
// replace. It returns the previous value.
func (m *Memory) CAS(addr uint64, expect, replace uint64) (old uint64, ok bool) {
	i, ok := m.wordIndex(addr, 8)
	if !ok {
		return 0, false
	}
	for {
		cur := m.words[i].Load()
		if cur != expect {
			return cur, true
		}
		if m.words[i].CompareAndSwap(cur, replace) {
			return cur, true
		}
	}
}

// LoadFloat64 reads the float64 at addr.
func (m *Memory) LoadFloat64(addr uint64) (float64, bool) {
	v, ok := m.LoadWord(addr)
	return math.Float64frombits(v), ok
}

// StoreFloat64 writes the float64 at addr.
func (m *Memory) StoreFloat64(addr uint64, f float64) bool {
	return m.StoreWord(addr, math.Float64bits(f))
}

// WriteBytes copies b into memory starting at addr. Intended for program
// loading and input setup before the simulation starts.
func (m *Memory) WriteBytes(addr uint64, b []byte) error {
	if addr+uint64(len(b)) > m.size {
		return fmt.Errorf("mem: write of %d bytes at %#x exceeds size %#x", len(b), addr, m.size)
	}
	for len(b) > 0 && addr%8 != 0 {
		m.Store8(addr, b[0])
		addr, b = addr+1, b[1:]
	}
	for len(b) >= 8 {
		m.words[addr/8].Store(binary.LittleEndian.Uint64(b))
		addr, b = addr+8, b[8:]
	}
	for _, c := range b {
		m.Store8(addr, c)
		addr++
	}
	return nil
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr uint64, n int) ([]byte, error) {
	if addr+uint64(n) > m.size {
		return nil, fmt.Errorf("mem: read of %d bytes at %#x exceeds size %#x", n, addr, m.size)
	}
	out := make([]byte, n)
	for i := range out {
		b, _ := m.Load8(addr + uint64(i))
		out[i] = b
	}
	return out, nil
}
