// Package event defines the timestamped messages exchanged between core
// threads and the simulation manager thread (the paper's InQ/OutQ/GQ
// entries, §2.2), and a lock-free single-producer single-consumer ring used
// to implement the InQ and OutQ on the host CMP's shared memory.
package event

// Kind identifies an event type (the paper's "event type field").
type Kind uint8

const (
	KindInvalid Kind = iota

	// Core -> manager requests (OutQ entries).

	// KReadShared is an L1 data-load miss: a GetS request for Addr's line.
	KReadShared
	// KReadExcl is an L1 store miss: a GetM request for Addr's line.
	KReadExcl
	// KUpgrade asks to upgrade Addr's line from Shared to Modified.
	KUpgrade
	// KFetch is an L1 instruction miss (GetS on the I-side).
	KFetch
	// KSyscall carries a system call: Aux = number, Args = a0..a3.
	KSyscall

	// Manager -> core notifications (InQ entries).

	// KFill completes a miss: Addr's line may be installed with MESI state
	// Aux at time Time.
	KFill
	// KInv invalidates Addr's line in the destination core's L1 at Time.
	KInv
	// KDowngrade demotes Addr's line from Modified/Exclusive to Shared.
	KDowngrade
	// KSyscallDone completes a syscall: Aux = return value; Flag set means
	// the blocking call must be retried (the core keeps spinning).
	KSyscallDone
	// KStart activates a core: begin fetching at PC Addr with argument Aux.
	KStart
	// KStop halts the destination core.
	KStop
)

// String returns a short name for the kind.
func (k Kind) String() string {
	switch k {
	case KReadShared:
		return "GetS"
	case KReadExcl:
		return "GetM"
	case KUpgrade:
		return "Upg"
	case KFetch:
		return "IFetch"
	case KSyscall:
		return "Syscall"
	case KFill:
		return "Fill"
	case KInv:
		return "Inv"
	case KDowngrade:
		return "Downgrade"
	case KSyscallDone:
		return "SyscallDone"
	case KStart:
		return "Start"
	case KStop:
		return "Stop"
	}
	return "Invalid"
}

// Victim flag bits.
const (
	VictimValid uint8 = 1 << iota
	VictimDirty
)

// Event is one queue entry. Time is the simulated cycle at which the event
// initiates (requests) or takes effect (notifications). Seq breaks ties so
// the manager's global ordering (Time, Core, Seq) is total and
// deterministic.
type Event struct {
	Kind Kind
	Core int32 // requesting core (requests) or destination core (notifications)
	Time int64
	Seq  int64
	Addr uint64
	Aux  int64
	Flag bool
	Args [4]int64

	// Victim* piggyback an L1 eviction caused by the miss that generated
	// this request, so the directory can retire the victim's presence bit
	// (and account for the writeback if dirty).
	VictimAddr  uint64
	VictimFlags uint8

	// Latency-attribution stamps (0 unless the engine's metrics are
	// enabled — the stamping cost is behind the same nil-fast-path gate as
	// every other instrumentation site). ReqTime is the simulated
	// timestamp of the originating request and SendNS the host-clock
	// nanosecond at which the requesting core pushed it into its OutQ;
	// the manager copies both into the reply it emits, so the delivery
	// site can attribute the full request→reply latency in simulated
	// cycles and in host time without any matching table.
	ReqTime int64
	SendNS  int64
}

// Less orders events by (Time, Core, Seq); used by the manager's GQ.
func Less(a, b *Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Core != b.Core {
		return a.Core < b.Core
	}
	return a.Seq < b.Seq
}
