package event

import "testing"

func BenchmarkRingPushPop(b *testing.B) {
	r := NewRing(256)
	ev := Event{Kind: KFill, Time: 42, Addr: 0x1000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Push(ev)
		r.Pop()
	}
}

// BenchmarkRingPopBatch measures the batched drain against per-event Pop
// loops at the batch sizes the manager sees (a few events per round).
func BenchmarkRingPopBatch(b *testing.B) {
	const batch = 8
	r := NewRing(256)
	ev := Event{Kind: KFill, Time: 42, Addr: 0x1000}
	buf := make([]Event, 0, batch)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			r.Push(ev)
		}
		buf = r.PopBatch(buf[:0])
		if len(buf) != batch {
			b.Fatalf("drained %d events, want %d", len(buf), batch)
		}
	}
}
