package event

import "testing"

func BenchmarkRingPushPop(b *testing.B) {
	r := NewRing(256)
	ev := Event{Kind: KFill, Time: 42, Addr: 0x1000}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Push(ev)
		r.Pop()
	}
}
