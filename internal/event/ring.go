package event

import (
	"fmt"
	"sync/atomic"
)

// Ring is a bounded lock-free single-producer single-consumer queue of
// events. It implements the paper's per-core OutQ (core thread produces,
// manager consumes) and InQ (manager produces, core thread consumes) on top
// of the host CMP's coherent shared memory — the communication substrate
// SlackSim exploits in place of MPI message passing.
//
// Exactly one goroutine may call Push and exactly one may call Peek/Pop.
type Ring struct {
	slots []Event
	mask  int64
	head  atomic.Int64 // next slot to read  (consumer-owned)
	tail  atomic.Int64 // next slot to write (producer-owned)

	// depth, when non-nil, observes the queue depth after every Push —
	// the observability subsystem's queue-occupancy metric. Set it
	// before the simulation starts; the observer must be safe for calls
	// from the producer goroutine.
	depth DepthObserver
}

// DepthObserver receives post-Push queue depths (metrics.Histogram
// satisfies it without this package importing metrics).
type DepthObserver interface {
	Observe(depth int64)
}

// ObserveDepth installs obs as the ring's depth observer (nil to clear).
// Must not be called concurrently with Push.
func (r *Ring) ObserveDepth(obs DepthObserver) { r.depth = obs }

// NewRing creates a ring with capacity rounded up to a power of two.
func NewRing(capacity int) *Ring {
	if capacity < 2 {
		capacity = 2
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Ring{slots: make([]Event, n), mask: int64(n - 1)}
}

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Len returns the current number of queued events (approximate if called by
// neither endpoint).
func (r *Ring) Len() int { return int(r.tail.Load() - r.head.Load()) }

// Push enqueues ev. It returns false when the ring is full.
func (r *Ring) Push(ev Event) bool {
	t := r.tail.Load()
	if t-r.head.Load() >= int64(len(r.slots)) {
		return false
	}
	r.slots[t&r.mask] = ev
	r.tail.Store(t + 1) // release: slot write is visible before the new tail
	if r.depth != nil {
		r.depth.Observe(t + 1 - r.head.Load())
	}
	return true
}

// MustPush enqueues ev and panics if the ring is full. Ring capacities are
// sized above the architectural bound on outstanding requests (MSHRs +
// fetch + one syscall), so overflow indicates a simulator bug, not load.
func (r *Ring) MustPush(ev Event) {
	if !r.Push(ev) {
		panic(fmt.Sprintf("event ring overflow (cap %d): dropping %v event", len(r.slots), ev.Kind))
	}
}

// Peek returns a copy of the oldest event without consuming it.
func (r *Ring) Peek() (Event, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return Event{}, false
	}
	return r.slots[h&r.mask], true
}

// Pop consumes and returns the oldest event.
func (r *Ring) Pop() (Event, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return Event{}, false
	}
	ev := r.slots[h&r.mask]
	r.head.Store(h + 1)
	return ev, true
}

// PopBatch consumes every event queued at the time of the call, appending
// them in order to dst, and returns the extended slice. It publishes the new
// head once for the whole batch instead of once per event, so a consumer
// draining N events issues 2 atomic operations instead of 2N — the manager
// and shard workers drain their OutQs through this with a reusable buffer.
func (r *Ring) PopBatch(dst []Event) []Event {
	h := r.head.Load()
	t := r.tail.Load() // acquire: slots written before this tail are visible
	if h == t {
		return dst
	}
	for ; h < t; h++ {
		dst = append(dst, r.slots[h&r.mask])
	}
	r.head.Store(h)
	return dst
}
