package event

import (
	"fmt"
	"sync/atomic"
)

// Ring is a bounded lock-free single-producer single-consumer queue of
// events. It implements the paper's per-core OutQ (core thread produces,
// manager consumes) and InQ (manager produces, core thread consumes) on top
// of the host CMP's coherent shared memory — the communication substrate
// SlackSim exploits in place of MPI message passing.
//
// Exactly one goroutine may call Push and exactly one may call Peek/Pop.
type Ring struct {
	slots []Event
	mask  int64
	head  atomic.Int64 // next slot to read  (consumer-owned)
	tail  atomic.Int64 // next slot to write (producer-owned)

	// depth, when non-nil, observes the queue depth after every Push —
	// the observability subsystem's queue-occupancy metric. Set it
	// before the simulation starts; the observer must be safe for calls
	// from the producer goroutine.
	depth DepthObserver

	// name identifies the ring in overflow diagnostics ("outq.c3").
	name string
	// highWater and pushes are producer-owned occupancy accounting,
	// reported by OverflowError when MustPush fails.
	highWater int64
	pushes    int64

	// hw, when non-nil, observes each new high-water mark. Like depth it
	// is a pre-start installation: highWater itself stays a plain
	// producer-owned field (making it atomic would put a locked op on
	// every push), and the observer only fires on the rare rising edge.
	hw DepthObserver
}

// DepthObserver receives post-Push queue depths (metrics.Histogram
// satisfies it without this package importing metrics).
type DepthObserver interface {
	Observe(depth int64)
}

// ObserveDepth installs obs as the ring's depth observer (nil to clear).
// Must not be called concurrently with Push.
func (r *Ring) ObserveDepth(obs DepthObserver) { r.depth = obs }

// ObserveHighWater installs obs to receive each new high-water occupancy
// mark (nil to clear). Must not be called concurrently with Push. A
// metrics.Gauge-backed observer gives the introspection server a live,
// race-free view of the producer-owned highWater field.
func (r *Ring) ObserveHighWater(obs DepthObserver) { r.hw = obs }

// HighWater returns the maximum occupancy ever observed after a push.
// Producer-owned accounting: only meaningful from the producer goroutine
// or after the run has quiesced.
func (r *Ring) HighWater() int64 { return r.highWater }

// NewRing creates a ring with capacity rounded up to a power of two.
func NewRing(capacity int) *Ring {
	if capacity < 2 {
		capacity = 2
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Ring{slots: make([]Event, n), mask: int64(n - 1)}
}

// SetName labels the ring for overflow diagnostics. Must be set before
// the simulation starts.
func (r *Ring) SetName(name string) { r.name = name }

// Name returns the diagnostic label set with SetName.
func (r *Ring) Name() string { return r.name }

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Len returns the current number of queued events (approximate if called by
// neither endpoint).
func (r *Ring) Len() int { return int(r.tail.Load() - r.head.Load()) }

// Push enqueues ev. It returns false when the ring is full.
func (r *Ring) Push(ev Event) bool {
	t := r.tail.Load()
	h := r.head.Load()
	if t-h >= int64(len(r.slots)) {
		return false
	}
	r.slots[t&r.mask] = ev
	r.tail.Store(t + 1) // release: slot write is visible before the new tail
	r.pushes++
	if d := t + 1 - h; d > r.highWater {
		r.highWater = d
		if r.hw != nil {
			r.hw.Observe(d)
		}
	}
	if r.depth != nil {
		r.depth.Observe(t + 1 - r.head.Load())
	}
	return true
}

// OverflowError is the panic payload of a MustPush on a full ring. The
// engine's containment layer recovers it into a *core.SimError so the host
// process survives with the ring's identity and occupancy history intact.
type OverflowError struct {
	// Ring is the diagnostic name set with SetName ("outq.c3").
	Ring string `json:"ring"`
	// Cap is the ring capacity and HighWater the maximum occupancy ever
	// observed after a push (== Cap at overflow, by construction, but kept
	// separately in case the overflow path is raised by hand).
	Cap       int   `json:"cap"`
	HighWater int64 `json:"high_water"`
	// Pushes is the total number of successful pushes before the overflow.
	Pushes int64 `json:"pushes"`
	// Pending is the event that could not be enqueued.
	Pending Event `json:"pending"`
	// Oldest holds the head of the queue at overflow (up to 8 entries),
	// the events the consumer had not yet drained.
	Oldest []Event `json:"oldest,omitempty"`
}

func (e *OverflowError) Error() string {
	return fmt.Sprintf("event: ring %q overflow (cap %d, %d pushes, high-water %d): dropping %v event t=%d for core %d",
		e.Ring, e.Cap, e.Pushes, e.HighWater, e.Pending.Kind, e.Pending.Time, e.Pending.Core)
}

// MustPush enqueues ev and panics with an *OverflowError if the ring is
// full. Ring capacities are sized above the architectural bound on
// outstanding requests (MSHRs + fetch + one syscall), so overflow indicates
// a simulator bug, not load; the engine recovers the panic into a contained
// SimError instead of crashing the host.
func (r *Ring) MustPush(ev Event) {
	if !r.Push(ev) {
		panic(r.overflow(ev))
	}
}

// overflow builds the diagnostic payload for a failed push. Reading the
// queued slots from the producer is safe: only the producer writes slots,
// and the consumer at worst advances head past entries we copy (a stale
// but consistent snapshot).
func (r *Ring) overflow(ev Event) *OverflowError {
	name := r.name
	if name == "" {
		name = "ring"
	}
	oe := &OverflowError{
		Ring:      name,
		Cap:       len(r.slots),
		HighWater: r.highWater,
		Pushes:    r.pushes,
		Pending:   ev,
	}
	h, t := r.head.Load(), r.tail.Load()
	for ; h < t && len(oe.Oldest) < 8; h++ {
		oe.Oldest = append(oe.Oldest, r.slots[h&r.mask])
	}
	return oe
}

// Peek returns a copy of the oldest event without consuming it.
func (r *Ring) Peek() (Event, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return Event{}, false
	}
	return r.slots[h&r.mask], true
}

// Pop consumes and returns the oldest event.
func (r *Ring) Pop() (Event, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return Event{}, false
	}
	ev := r.slots[h&r.mask]
	r.head.Store(h + 1)
	return ev, true
}

// PopBatch consumes every event queued at the time of the call, appending
// them in order to dst, and returns the extended slice. It publishes the new
// head once for the whole batch instead of once per event, so a consumer
// draining N events issues 2 atomic operations instead of 2N — the manager
// and shard workers drain their OutQs through this with a reusable buffer.
func (r *Ring) PopBatch(dst []Event) []Event {
	h := r.head.Load()
	t := r.tail.Load() // acquire: slots written before this tail are visible
	if h == t {
		return dst
	}
	for ; h < t; h++ {
		dst = append(dst, r.slots[h&r.mask])
	}
	r.head.Store(h)
	return dst
}
