package event

// Heap is a binary min-heap of events ordered by (Time, Core, Seq) — the
// manager's GQ and each shard worker's local queue. It lives in the event
// package (rather than core) so the remote-shard worker loop, which runs
// in a separate process with no Machine, orders its event stream with
// exactly the same comparator as the in-process drivers.
type Heap struct {
	a []Event
}

// Len returns the number of queued events.
func (h *Heap) Len() int { return len(h.a) }

// Push inserts ev.
func (h *Heap) Push(ev Event) {
	// Fast path: cores emit their requests in nondecreasing timestamp order,
	// so most pushes are not below their parent slot and append without any
	// sift-up. (Not-below-parent is the exact heap condition; not-below-top
	// is necessary but not sufficient.)
	if n := len(h.a); n > 0 && !Less(&ev, &h.a[(n-1)/2]) {
		h.a = append(h.a, ev)
		return
	}
	h.a = append(h.a, ev)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !Less(&h.a[i], &h.a[p]) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

// Peek returns a pointer to the oldest event, or nil when empty.
func (h *Heap) Peek() *Event {
	if len(h.a) == 0 {
		return nil
	}
	return &h.a[0]
}

// Pop removes and returns the oldest event.
func (h *Heap) Pop() Event {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(h.a) && Less(&h.a[l], &h.a[s]) {
			s = l
		}
		if r < len(h.a) && Less(&h.a[r], &h.a[s]) {
			s = r
		}
		if s == i {
			break
		}
		h.a[i], h.a[s] = h.a[s], h.a[i]
		i = s
	}
	return top
}
