package event

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestRingFIFO(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 5; i++ {
		if !r.Push(Event{Seq: int64(i)}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.Len() != 5 {
		t.Fatalf("len = %d", r.Len())
	}
	for i := 0; i < 5; i++ {
		ev, ok := r.Peek()
		if !ok || ev.Seq != int64(i) {
			t.Fatalf("peek %d = %v, %v", i, ev.Seq, ok)
		}
		ev, ok = r.Pop()
		if !ok || ev.Seq != int64(i) {
			t.Fatalf("pop %d = %v, %v", i, ev.Seq, ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
}

func TestRingFullAndWrap(t *testing.T) {
	r := NewRing(4)
	if r.Cap() != 4 {
		t.Fatalf("cap = %d", r.Cap())
	}
	for i := 0; i < 4; i++ {
		if !r.Push(Event{Seq: int64(i)}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.Push(Event{}) {
		t.Fatal("push to full ring succeeded")
	}
	// Wrap several times.
	for i := 4; i < 40; i++ {
		ev, _ := r.Pop()
		if ev.Seq != int64(i-4) {
			t.Fatalf("wrap pop = %d, want %d", ev.Seq, i-4)
		}
		if !r.Push(Event{Seq: int64(i)}) {
			t.Fatalf("wrap push %d failed", i)
		}
	}
}

func TestRingCapacityRounding(t *testing.T) {
	if NewRing(5).Cap() != 8 {
		t.Error("capacity not rounded to power of two")
	}
	if NewRing(0).Cap() != 2 {
		t.Error("minimum capacity wrong")
	}
}

func TestMustPushPanicsWhenFull(t *testing.T) {
	r := NewRing(2)
	r.MustPush(Event{})
	r.MustPush(Event{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on overflow")
		}
	}()
	r.MustPush(Event{})
}

// TestRingSPSC hammers the ring with one producer and one consumer and
// checks every event arrives exactly once, in order, with intact payloads.
func TestRingSPSC(t *testing.T) {
	r := NewRing(64)
	const n = 50000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; {
			if r.Push(Event{Seq: int64(i), Addr: uint64(i) * 8, Aux: int64(i ^ 0x55)}) {
				i++
			} else {
				runtime.Gosched() // single-CPU hosts need explicit yields
			}
		}
	}()
	for i := 0; i < n; {
		ev, ok := r.Pop()
		if !ok {
			runtime.Gosched()
			continue
		}
		if ev.Seq != int64(i) || ev.Addr != uint64(i)*8 || ev.Aux != int64(i^0x55) {
			t.Fatalf("event %d corrupted: %+v", i, ev)
		}
		i++
	}
	wg.Wait()
	if _, ok := r.Pop(); ok {
		t.Fatal("ring not empty at end")
	}
}

func TestLessOrdering(t *testing.T) {
	a := &Event{Time: 1, Core: 2, Seq: 3}
	cases := []struct {
		b    Event
		less bool
	}{
		{Event{Time: 2, Core: 0, Seq: 0}, true},
		{Event{Time: 1, Core: 3, Seq: 0}, true},
		{Event{Time: 1, Core: 2, Seq: 4}, true},
		{Event{Time: 1, Core: 2, Seq: 3}, false},
		{Event{Time: 0, Core: 9, Seq: 9}, false},
	}
	for _, c := range cases {
		if got := Less(a, &c.b); got != c.less {
			t.Errorf("Less(%+v, %+v) = %v", a, c.b, got)
		}
	}
}

// TestLessTotalOrder property-checks antisymmetry and transitivity-ish
// behaviour of the GQ ordering on random events.
func TestLessTotalOrder(t *testing.T) {
	f := func(t1, t2 int64, c1, c2 int32, s1, s2 int64) bool {
		a := &Event{Time: t1, Core: c1, Seq: s1}
		b := &Event{Time: t2, Core: c2, Seq: s2}
		la, lb := Less(a, b), Less(b, a)
		if la && lb {
			return false // antisymmetry
		}
		if !la && !lb {
			// must be equal on all key fields
			return t1 == t2 && c1 == c2 && s1 == s2
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	for k := KindInvalid; k <= KStop; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
}
