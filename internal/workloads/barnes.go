package workloads

import (
	"fmt"
	"math"

	"slacksim/internal/loader"
)

// barnes is an n-body force computation with spatial aggregation: bodies
// are binned into a uniform grid of cells whose mass moments are built in
// parallel under per-cell locks, and each body's force sums exact terms
// for its own cell with monopole (centre-of-mass) approximations for all
// others. It substitutes for SPLASH-2 Barnes-Hut (octree construction is
// not tractable in hand-written assembly) while preserving the behaviours
// slack simulation cares about: irregular lock contention on shared tree/
// cell nodes, barrier-separated phases, and read-mostly sharing during the
// force phase. See DESIGN.md §3 (substitutions).

func barnesB(scale int) int { return 128 * scale }

const (
	barnesGrid  = 4
	barnesCells = barnesGrid * barnesGrid * barnesGrid
	barnesSteps = 2
)

func barnesSource(scale int) string {
	params := fmt.Sprintf(".equ B, %d\n.equ C, %d\n.equ GRID, %d\n.equ S, %d\n",
		barnesB(scale), barnesCells, barnesGrid, barnesSteps)
	body := `
bench_init:
    # one lock per cell
    li   r9, 0
bi_loop:
    li   r8, C
    bge  r9, r8, bi_done
    la   a0, celllocks
    slli r10, r9, 3
    add  a0, a0, r10
    syscall SYS_LOCK_INIT
    addi r9, r9, 1
    j    bi_loop
bi_done:
    ret

# cellof: a0 = body index -> rv = cell index. Clobbers r8, r10, r11, f0-f3.
cellof:
    slli r8, a0, 3
    la   rv, bx
    add  rv, rv, r8
    fld  f0, 0(rv)
    la   rv, by
    add  rv, rv, r8
    fld  f1, 0(rv)
    la   rv, bz
    add  rv, rv, r8
    fld  f2, 0(rv)
    la   rv, gridf
    fld  f3, 0(rv)
    fmul f0, f0, f3
    fcvt.w.d r8, f0
    fmul f1, f1, f3
    fcvt.w.d r10, f1
    fmul f2, f2, f3
    fcvt.w.d r11, f2
    # clamp to [0, GRID-1]
    bge  r8, zero, c1
    li   r8, 0
c1: li   rv, GRID-1
    ble  r8, rv, c2
    mv   r8, rv
c2: bge  r10, zero, c3
    li   r10, 0
c3: li   rv, GRID-1
    ble  r10, rv, c4
    mv   r10, rv
c4: bge  r11, zero, c5
    li   r11, 0
c5: li   rv, GRID-1
    ble  r11, rv, c6
    mv   r11, rv
c6: li   rv, GRID
    mul  r8, r8, rv
    add  r8, r8, r10
    mul  r8, r8, rv
    add  r8, r8, r11
    mv   rv, r8
    ret

# work(a0 = tid)
work:
    addi sp, sp, -16
    sd   ra, 0(sp)
    mv   r24, a0
` + chunkBounds("B", "r24", "r26", "r27", "r8", "r9", "bnb") + chunkBounds("C", "r24", "r28", "r31", "r8", "r9", "bnc") + `
    la   r8, one
    fld  f21, 0(r8)
    la   r8, epsv
    fld  f22, 0(r8)
    la   r8, dtv
    fld  f23, 0(r8)
    li   r20, 0                   # step
b_step:
    li   r8, S
    bge  r20, r8, b_done
    la   a0, _bar
    syscall SYS_BARRIER
    # ---- zero own cells [r28, r31)
    mv   r9, r28
b_zero:
    bge  r9, r31, b_zero_done
    slli r10, r9, 3
    fsub f0, f21, f21
    la   r11, cm
    add  r11, r11, r10
    fsd  f0, 0(r11)
    la   r11, cx
    add  r11, r11, r10
    fsd  f0, 0(r11)
    la   r11, cy
    add  r11, r11, r10
    fsd  f0, 0(r11)
    la   r11, cz
    add  r11, r11, r10
    fsd  f0, 0(r11)
    addi r9, r9, 1
    j    b_zero
b_zero_done:
    la   a0, _bar
    syscall SYS_BARRIER
    # ---- accumulate own bodies into cells, under per-cell locks
    mv   r9, r26
b_acc:
    bge  r9, r27, b_acc_done
    mv   a0, r9
    call cellof
    mv   r21, rv                  # cell
    la   a0, celllocks
    slli r10, r21, 3
    add  a0, a0, r10
    mv   r22, a0                  # lock address
    syscall SYS_LOCK
    slli r10, r9, 3
    la   r11, bm
    add  r11, r11, r10
    fld  f4, 0(r11)               # m
    slli r12, r21, 3
    la   r11, cm
    add  r11, r11, r12
    fld  f0, 0(r11)
    fadd f0, f0, f4
    fsd  f0, 0(r11)
    la   r11, bx
    add  r11, r11, r10
    fld  f5, 0(r11)
    fmul f5, f5, f4
    la   r11, cx
    add  r11, r11, r12
    fld  f0, 0(r11)
    fadd f0, f0, f5
    fsd  f0, 0(r11)
    la   r11, by
    add  r11, r11, r10
    fld  f5, 0(r11)
    fmul f5, f5, f4
    la   r11, cy
    add  r11, r11, r12
    fld  f0, 0(r11)
    fadd f0, f0, f5
    fsd  f0, 0(r11)
    la   r11, bz
    add  r11, r11, r10
    fld  f5, 0(r11)
    fmul f5, f5, f4
    la   r11, cz
    add  r11, r11, r12
    fld  f0, 0(r11)
    fadd f0, f0, f5
    fsd  f0, 0(r11)
    mv   a0, r22
    syscall SYS_UNLOCK
    addi r9, r9, 1
    j    b_acc
b_acc_done:
    la   a0, _bar
    syscall SYS_BARRIER
    # ---- force + integrate own bodies
    mv   r9, r26
b_force:
    bge  r9, r27, b_force_done
    mv   a0, r9
    call cellof
    mv   r21, rv                  # own cell
    slli r10, r9, 3
    la   r11, bx
    add  r11, r11, r10
    fld  f13, 0(r11)              # body position
    la   r11, by
    add  r11, r11, r10
    fld  f14, 0(r11)
    la   r11, bz
    add  r11, r11, r10
    fld  f15, 0(r11)
    la   r11, bm
    add  r11, r11, r10
    fld  f16, 0(r11)              # body mass
    fsub f10, f21, f21            # force accumulators
    fsub f11, f21, f21
    fsub f12, f21, f21
    li   r12, 0                   # cell c
b_cell:
    li   r8, C
    bge  r12, r8, b_cell_done
    slli r13, r12, 3
    la   r11, cm
    add  r11, r11, r13
    fld  f4, 0(r11)               # m'
    la   r11, cx
    add  r11, r11, r13
    fld  f5, 0(r11)               # X
    la   r11, cy
    add  r11, r11, r13
    fld  f6, 0(r11)
    la   r11, cz
    add  r11, r11, r13
    fld  f7, 0(r11)
    bne  r12, r21, b_cell_far
    # own cell: remove self-contribution
    fsub f4, f4, f16
    fmul f0, f13, f16
    fsub f5, f5, f0
    fmul f0, f14, f16
    fsub f6, f6, f0
    fmul f0, f15, f16
    fsub f7, f7, f0
b_cell_far:
    # skip (near-)empty cells
    la   r11, tiny
    fld  f0, 0(r11)
    fle  r14, f4, f0
    bnez r14, b_cell_next
    fdiv f5, f5, f4               # COM
    fdiv f6, f6, f4
    fdiv f7, f7, f4
    fsub f0, f5, f13              # d = com - p
    fsub f1, f6, f14
    fsub f2, f7, f15
    fmul f3, f0, f0
    fmul f8, f1, f1
    fadd f3, f3, f8
    fmul f8, f2, f2
    fadd f3, f3, f8
    fadd f3, f3, f22              # r2 + eps
    fsqrt f8, f3
    fdiv f8, f21, f8              # rinv
    fmul f9, f8, f8
    fmul f9, f9, f8               # rinv^3
    fmul f9, f9, f4               # m' * rinv^3
    fmul f8, f0, f9
    fadd f10, f10, f8
    fmul f8, f1, f9
    fadd f11, f11, f8
    fmul f8, f2, f9
    fadd f12, f12, f8
b_cell_next:
    addi r12, r12, 1
    j    b_cell
b_cell_done:
    # integrate: v += f*dt; p += v*dt
    slli r10, r9, 3
    la   r11, bvx
    add  r11, r11, r10
    fld  f0, 0(r11)
    fmul f1, f10, f23
    fadd f0, f0, f1
    fsd  f0, 0(r11)
    la   r11, bx
    add  r11, r11, r10
    fld  f2, 0(r11)
    fmul f1, f0, f23
    fadd f2, f2, f1
    fsd  f2, 0(r11)
    la   r11, bvy
    add  r11, r11, r10
    fld  f0, 0(r11)
    fmul f1, f11, f23
    fadd f0, f0, f1
    fsd  f0, 0(r11)
    la   r11, by
    add  r11, r11, r10
    fld  f2, 0(r11)
    fmul f1, f0, f23
    fadd f2, f2, f1
    fsd  f2, 0(r11)
    la   r11, bvz
    add  r11, r11, r10
    fld  f0, 0(r11)
    fmul f1, f12, f23
    fadd f0, f0, f1
    fsd  f0, 0(r11)
    la   r11, bz
    add  r11, r11, r10
    fld  f2, 0(r11)
    fmul f1, f0, f23
    fadd f2, f2, f1
    fsd  f2, 0(r11)
    addi r9, r9, 1
    j    b_force
b_force_done:
    addi r20, r20, 1
    j    b_step
b_done:
    ld   ra, 0(sp)
    addi sp, sp, 16
    ret

bench_fini:
    la   a0, done_msg
    syscall SYS_PRINT_STR
    ret

.data
.align 8
done_msg: .asciiz "barnes-ok"
.align 8
one:   .double 1.0
epsv:  .double 0.005
dtv:   .double 0.0002
tiny:  .double 0.000001
gridf: .double 4.0
bx:  .space B*8
by:  .space B*8
bz:  .space B*8
bvx: .space B*8
bvy: .space B*8
bvz: .space B*8
bm:  .space B*8
cm:  .space C*8
cx:  .space C*8
cy:  .space C*8
cz:  .space C*8
celllocks: .space C*8
`
	return wrapParallel(params, body)
}

type barnesState struct {
	x, y, z, vx, vy, vz, m []float64
}

func barnesInput(b int) *barnesState {
	s := &barnesState{
		x: make([]float64, b), y: make([]float64, b), z: make([]float64, b),
		vx: make([]float64, b), vy: make([]float64, b), vz: make([]float64, b),
		m: make([]float64, b),
	}
	for i := 0; i < b; i++ {
		s.x[i] = float64((i*53)%97) / 97
		s.y[i] = float64((i*71)%89) / 89
		s.z[i] = float64((i*31)%83) / 83
		s.m[i] = 1 + float64(i%4)/4
	}
	return s
}

func barnesCellOf(x, y, z float64) int {
	clamp := func(v float64) int {
		c := int(v * barnesGrid)
		if c < 0 {
			c = 0
		}
		if c > barnesGrid-1 {
			c = barnesGrid - 1
		}
		return c
	}
	return (clamp(x)*barnesGrid+clamp(y))*barnesGrid + clamp(z)
}

// barnesReference replicates the simulated algorithm; cell-moment sums use
// body order (lock-grant order differs in simulation), hence the loose
// verification tolerance.
func barnesReference(s *barnesState, b, steps int) {
	const eps, dt, tiny = 0.005, 0.0002, 0.000001
	cm := make([]float64, barnesCells)
	cx := make([]float64, barnesCells)
	cy := make([]float64, barnesCells)
	cz := make([]float64, barnesCells)
	for st := 0; st < steps; st++ {
		for c := range cm {
			cm[c], cx[c], cy[c], cz[c] = 0, 0, 0, 0
		}
		for i := 0; i < b; i++ {
			c := barnesCellOf(s.x[i], s.y[i], s.z[i])
			cm[c] += s.m[i]
			cx[c] += s.x[i] * s.m[i]
			cy[c] += s.y[i] * s.m[i]
			cz[c] += s.z[i] * s.m[i]
		}
		for i := 0; i < b; i++ {
			mine := barnesCellOf(s.x[i], s.y[i], s.z[i])
			var fx, fy, fz float64
			for c := 0; c < barnesCells; c++ {
				m, X, Y, Z := cm[c], cx[c], cy[c], cz[c]
				if c == mine {
					m -= s.m[i]
					X -= s.x[i] * s.m[i]
					Y -= s.y[i] * s.m[i]
					Z -= s.z[i] * s.m[i]
				}
				if m <= tiny {
					continue
				}
				dx := X/m - s.x[i]
				dy := Y/m - s.y[i]
				dz := Z/m - s.z[i]
				r2 := dx*dx + dy*dy + dz*dz + eps
				rinv := 1 / math.Sqrt(r2)
				g := m * rinv * rinv * rinv
				fx += dx * g
				fy += dy * g
				fz += dz * g
			}
			s.vx[i] += fx * dt
			s.x[i] += s.vx[i] * dt
			s.vy[i] += fy * dt
			s.y[i] += s.vy[i] * dt
			s.vz[i] += fz * dt
			s.z[i] += s.vz[i] * dt
		}
	}
}

func barnesInit(im *loader.Image, scale int) error {
	s := barnesInput(barnesB(scale))
	for _, p := range []struct {
		sym  string
		vals []float64
	}{{"bx", s.x}, {"by", s.y}, {"bz", s.z}, {"bm", s.m}} {
		if err := pokeFloats(im, p.sym, p.vals); err != nil {
			return err
		}
	}
	return nil
}

func barnesVerify(im *loader.Image, output string, scale int) error {
	if output != "barnes-ok" {
		return fmt.Errorf("barnes: output %q, want barnes-ok", output)
	}
	b := barnesB(scale)
	want := barnesInput(b)
	barnesReference(want, b, barnesSteps)
	for _, p := range []struct {
		sym  string
		vals []float64
	}{{"bx", want.x}, {"by", want.y}, {"bz", want.z}} {
		got, err := peekFloats(im, p.sym, b)
		if err != nil {
			return err
		}
		if err := compareFloats(p.sym, got, p.vals, 1e-6); err != nil {
			return err
		}
	}
	return nil
}

func init() {
	register(&Workload{
		Name:        "barnes",
		Description: "cell-aggregated n-body with per-cell lock contention and barrier phases (SPLASH-2 Barnes analogue; see DESIGN.md substitutions)",
		InputDesc: func(scale int) string {
			return fmt.Sprintf("%d bodies", barnesB(scale))
		},
		Source: barnesSource,
		Init:   barnesInit,
		Verify: barnesVerify,
	})
}
