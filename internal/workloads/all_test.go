package workloads

import (
	"testing"

	"slacksim/internal/core"
)

// TestAllWorkloadsSerial runs every registered workload on the serial
// reference engine with both core models and verifies its results.
func TestAllWorkloadsSerial(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name+"/ooo", func(t *testing.T) {
			res := runWorkload(t, w.Name, 4, core.ModelOoO, 1)
			t.Logf("%s: %d cycles, %d ROI instrs", w.Name, res.EndTime, res.Committed)
		})
		t.Run(w.Name+"/inorder", func(t *testing.T) {
			runWorkload(t, w.Name, 2, core.ModelInOrder, 1)
		})
	}
}

// TestWorkloadsSingleThread checks each workload degenerates correctly to
// one thread.
func TestWorkloadsSingleThread(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			runWorkload(t, w.Name, 1, core.ModelOoO, 1)
		})
	}
}
