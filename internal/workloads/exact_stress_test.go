package workloads

import (
	"strings"
	"testing"

	"slacksim/internal/core"
)

// TestExactnessStress hammers the conservative schemes on fft against the
// serial reference; on divergence it prints the first differing kernel
// trace lines.
func TestExactnessStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress")
	}
	w, _ := Get("fft")
	core.SetDebugLate(func(s string) { t.Logf("LATE %s", s) })
	defer core.SetDebugLate(nil)
	core.SetDebugLateProc(func(s string) { t.Logf("LATEPROC %s", s) })
	defer core.SetDebugLateProc(nil)
	trace := func(scheme core.Scheme, serial bool) (int64, []string) {
		m := machineFor(t, w, 4, 1)
		var sb strings.Builder
		m.Kernel().Trace = func(s string) { sb.WriteString(s); sb.WriteByte('\n') }
		var r *core.Result
		var err error
		if serial {
			r = runSerial(t, m)
		} else {
			r, err = m.RunParallel(scheme)
			if err != nil {
				t.Fatal(err)
			}
		}
		return r.EndTime, strings.Split(sb.String(), "\n")
	}
	refEnd, refTrace := trace(core.Scheme{}, true)
	for i := 0; i < 12; i++ {
		for _, s := range []core.Scheme{core.SchemeL10, core.SchemeS9x} {
			end, tr := trace(s, false)
			if end == refEnd {
				continue
			}
			t.Errorf("iter %d %v: end %d != %d", i, s, end, refEnd)
			for j := 0; j < len(tr) && j < len(refTrace); j++ {
				if tr[j] != refTrace[j] {
					for k := j - 2; k < j+4 && k < len(tr) && k < len(refTrace); k++ {
						if k < 0 {
							continue
						}
						mark := "  "
						if tr[k] != refTrace[k] {
							mark = "!!"
						}
						t.Logf("%s serial: %-42s par: %s", mark, refTrace[k], tr[k])
					}
					break
				}
			}
			return
		}
	}
}
