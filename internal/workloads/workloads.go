// Package workloads provides the parallel benchmarks the simulator runs:
// SSA-assembly analogues of the SPLASH-2 programs the paper evaluates
// (Barnes, FFT, LU, Water-Nsquared, §4.1) plus Radix and an Ocean-style
// grid solver to round out the six benchmarks mentioned in §4, and a
// dense Cholesky as a seventh, synchronisation-heavy extension. Every
// workload uses the paper's Table 1 synchronisation API (locks, barriers,
// semaphores as emulated system calls), generates its inputs from Go, and
// verifies its results against a Go reference after the simulation.
package workloads

import (
	"fmt"
	"sort"
	"strings"

	"slacksim/internal/loader"
)

// Workload is one runnable benchmark.
type Workload struct {
	Name        string
	Description string
	// InputDesc describes the input set at the given scale (the paper's
	// Table 2 "Input Set" column).
	InputDesc func(scale int) string
	// Source returns the benchmark's assembly at the given scale.
	Source func(scale int) string
	// Init pokes the benchmark's input data into the loaded image.
	Init func(im *loader.Image, scale int) error
	// Verify checks the benchmark's results (memory and printed output)
	// against a Go reference.
	Verify func(im *loader.Image, output string, scale int) error
}

var registry []*Workload

func register(w *Workload) { registry = append(registry, w) }

// All returns the registered workloads, sorted by name.
func All() []*Workload {
	out := append([]*Workload(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Paper returns the four benchmarks of the paper's Table 2, in table order.
func Paper() []*Workload {
	names := []string{"barnes", "fft", "lu", "water"}
	out := make([]*Workload, 0, len(names))
	for _, n := range names {
		w, err := Get(n)
		if err != nil {
			panic(err)
		}
		out = append(out, w)
	}
	return out
}

// Get returns the named workload.
func Get(name string) (*Workload, error) {
	for _, w := range registry {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown workload %q (have %s)", name, names())
}

func names() string {
	var ns []string
	for _, w := range All() {
		ns = append(ns, w.Name)
	}
	return strings.Join(ns, ", ")
}

// syscallEqus defines the system-call numbers for assembly sources.
const syscallEqus = `
.equ SYS_EXIT, 0
.equ SYS_TCREATE, 1
.equ SYS_TEXIT, 2
.equ SYS_TJOIN, 3
.equ SYS_LOCK_INIT, 4
.equ SYS_LOCK, 5
.equ SYS_UNLOCK, 6
.equ SYS_BARRIER_INIT, 7
.equ SYS_BARRIER, 8
.equ SYS_SEMA_INIT, 9
.equ SYS_SEMA_WAIT, 10
.equ SYS_SEMA_SIGNAL, 11
.equ SYS_PRINT_INT, 12
.equ SYS_PRINT_CHAR, 13
.equ SYS_PRINT_STR, 14
.equ SYS_PRINT_FLOAT, 15
.equ SYS_SBRK, 16
.equ SYS_CLOCK, 17
.equ SYS_STATS_RESET, 18
.equ SYS_CORE_ID, 19
.equ SYS_NUM_CORES, 20
.equ SYS_NUM_THREADS, 21
`

// wrapParallel builds the standard benchmark scaffold around a body that
// must define:
//
//	bench_init:  one-time setup run by the main thread (may be empty; ret)
//	work:        the per-thread function, a0 = thread id (0..T-1)
//	bench_fini:  run by main after all threads joined (prints results; ret)
//
// The scaffold: main reads the thread count, initialises the shared barrier
// `_bar`, runs bench_init, spawns T-1 workers, resets statistics (the
// paper's ROI starts right after all workload threads are created, §4.1),
// contributes as thread 0, joins the workers, runs bench_fini, and exits.
// The thread count is available to the body at `_nthreads`.
func wrapParallel(params string, body string) string {
	return syscallEqus + params + `
.text
main:
    syscall SYS_NUM_THREADS
    la   r8, _nthreads
    sd   rv, 0(r8)
    la   a0, _bar
    mv   a1, rv
    syscall SYS_BARRIER_INIT
    call bench_init
    li   r9, 1
_spawn:
    la   r8, _nthreads
    ld   r10, 0(r8)
    bge  r9, r10, _spawned
    la   a0, _work_entry
    mv   a1, r9
    syscall SYS_TCREATE
    addi r9, r9, 1
    j    _spawn
_spawned:
    syscall SYS_STATS_RESET
    li   a0, 0
    call work
    li   r9, 1
_join:
    la   r8, _nthreads
    ld   r10, 0(r8)
    bge  r9, r10, _joined
    mv   a0, r9
    syscall SYS_TJOIN
    addi r9, r9, 1
    j    _join
_joined:
    call bench_fini
    li   a0, 0
    syscall SYS_EXIT

_work_entry:
    call work
    syscall SYS_TEXIT
` + body + `
.data
.align 8
_nthreads: .dword 1
_bar:      .dword 0
`
}

// chunkBounds emits assembly computing a thread's block partition of
// [0, n): lo -> loReg, hi -> hiReg, given tid in tidReg. The last thread
// absorbs the remainder. Clobbers t1 and t2. uniq must be unique per
// expansion site (it names the internal label).
func chunkBounds(n string, tidReg, loReg, hiReg, t1, t2, uniq string) string {
	return fmt.Sprintf(`
    la   %[4]s, _nthreads
    ld   %[4]s, 0(%[4]s)          # T
    li   %[5]s, %[1]s             # n
    div  %[5]s, %[5]s, %[4]s      # chunk = n/T
    mul  %[2]s, %[6]s, %[5]s      # lo = tid*chunk
    add  %[3]s, %[2]s, %[5]s      # hi = lo+chunk
    addi %[4]s, %[4]s, -1
    bne  %[6]s, %[4]s, _cb_%[7]s
    li   %[3]s, %[1]s             # last thread: hi = n
_cb_%[7]s:
`, n, loReg, hiReg, t1, t2, tidReg, uniq)
}
