package workloads

import (
	"fmt"
	"math"

	"slacksim/internal/loader"
)

// water is an O(n^2) molecular-dynamics step loop in the style of SPLASH-2
// Water-Nsquared: every thread computes pairwise forces for its block of
// molecules against all others, accumulates a potential-energy term into a
// lock-protected global, and advances positions between barriers.

func waterM(scale int) int { return 64 * scale }

const waterSteps = 2

func waterSource(scale int) string {
	params := fmt.Sprintf(".equ M, %d\n.equ S, %d\n", waterM(scale), waterSteps)
	body := `
bench_init:
    la   a0, pelock
    syscall SYS_LOCK_INIT
    ret

# work(a0 = tid)
work:
    mv   r24, a0
` + chunkBounds("M", "r24", "r26", "r27", "r8", "r9", "water") + `
    la   r8, one
    fld  f21, 0(r8)               # 1.0
    la   r8, epsv
    fld  f22, 0(r8)               # softening
    la   r8, dtv
    fld  f23, 0(r8)               # dt
    li   r20, 0                   # step
w_step_loop:
    li   r8, S
    bge  r20, r8, w_done
    la   a0, _bar
    syscall SYS_BARRIER           # positions stable
    # ---- forces for own molecules
    fsub f20, f21, f21            # pe_local = 0
    mv   r9, r26                  # i
w_force_i:
    bge  r9, r27, w_force_done
    slli r10, r9, 3
    la   r11, px
    add  r11, r11, r10
    fld  f13, 0(r11)              # pxi
    la   r11, py
    add  r11, r11, r10
    fld  f14, 0(r11)
    la   r11, pz
    add  r11, r11, r10
    fld  f15, 0(r11)
    fsub f10, f21, f21            # fxi = 0
    fsub f11, f21, f21
    fsub f12, f21, f21
    li   r12, 0                   # j
w_force_j:
    li   r8, M
    bge  r12, r8, w_force_j_done
    beq  r12, r9, w_force_j_next
    slli r13, r12, 3
    la   r14, px
    add  r14, r14, r13
    fld  f0, 0(r14)
    la   r14, py
    add  r14, r14, r13
    fld  f1, 0(r14)
    la   r14, pz
    add  r14, r14, r13
    fld  f2, 0(r14)
    fsub f0, f0, f13              # dx = px[j]-pxi (attraction toward j)
    fsub f1, f1, f14
    fsub f2, f2, f15
    fmul f3, f0, f0
    fmul f4, f1, f1
    fadd f3, f3, f4
    fmul f4, f2, f2
    fadd f3, f3, f4
    fadd f3, f3, f22              # r2 + eps
    fsqrt f4, f3
    fdiv f4, f21, f4              # rinv
    fadd f20, f20, f4             # pe_local += rinv
    fmul f5, f4, f4
    fmul f5, f5, f4               # rinv^3
    fmul f6, f0, f5
    fadd f10, f10, f6
    fmul f6, f1, f5
    fadd f11, f11, f6
    fmul f6, f2, f5
    fadd f12, f12, f6
w_force_j_next:
    addi r12, r12, 1
    j    w_force_j
w_force_j_done:
    slli r10, r9, 3
    la   r11, fx
    add  r11, r11, r10
    fsd  f10, 0(r11)
    la   r11, fy
    add  r11, r11, r10
    fsd  f11, 0(r11)
    la   r11, fz
    add  r11, r11, r10
    fsd  f12, 0(r11)
    addi r9, r9, 1
    j    w_force_i
w_force_done:
    # ---- pe += pe_local under the lock (Table 1 lock/unlock)
    la   a0, pelock
    syscall SYS_LOCK
    la   r8, pe
    fld  f0, 0(r8)
    fadd f0, f0, f20
    fsd  f0, 0(r8)
    la   a0, pelock
    syscall SYS_UNLOCK
    la   a0, _bar
    syscall SYS_BARRIER           # all forces done
    # ---- integrate own molecules
    mv   r9, r26
w_upd_i:
    bge  r9, r27, w_upd_done
    slli r10, r9, 3
    la   r11, fx
    add  r11, r11, r10
    fld  f0, 0(r11)
    la   r11, vx
    add  r11, r11, r10
    fld  f1, 0(r11)
    fmul f0, f0, f23
    fadd f1, f1, f0
    fsd  f1, 0(r11)
    la   r12, px
    add  r12, r12, r10
    fld  f2, 0(r12)
    fmul f3, f1, f23
    fadd f2, f2, f3
    fsd  f2, 0(r12)
    la   r11, fy
    add  r11, r11, r10
    fld  f0, 0(r11)
    la   r11, vy
    add  r11, r11, r10
    fld  f1, 0(r11)
    fmul f0, f0, f23
    fadd f1, f1, f0
    fsd  f1, 0(r11)
    la   r12, py
    add  r12, r12, r10
    fld  f2, 0(r12)
    fmul f3, f1, f23
    fadd f2, f2, f3
    fsd  f2, 0(r12)
    la   r11, fz
    add  r11, r11, r10
    fld  f0, 0(r11)
    la   r11, vz
    add  r11, r11, r10
    fld  f1, 0(r11)
    fmul f0, f0, f23
    fadd f1, f1, f0
    fsd  f1, 0(r11)
    la   r12, pz
    add  r12, r12, r10
    fld  f2, 0(r12)
    fmul f3, f1, f23
    fadd f2, f2, f3
    fsd  f2, 0(r12)
    addi r9, r9, 1
    j    w_upd_i
w_upd_done:
    addi r20, r20, 1
    j    w_step_loop
w_done:
    ret

bench_fini:
    la   a0, done_msg
    syscall SYS_PRINT_STR
    ret

.data
.align 8
done_msg: .asciiz "water-ok"
.align 8
one:  .double 1.0
epsv: .double 0.01
dtv:  .double 0.0005
pe:   .double 0.0
pelock: .dword 0
px: .space M*8
py: .space M*8
pz: .space M*8
vx: .space M*8
vy: .space M*8
vz: .space M*8
fx: .space M*8
fy: .space M*8
fz: .space M*8
`
	return wrapParallel(params, body)
}

type waterState struct {
	px, py, pz []float64
	vx, vy, vz []float64
	pe         float64
}

func waterInput(m int) *waterState {
	s := &waterState{
		px: make([]float64, m), py: make([]float64, m), pz: make([]float64, m),
		vx: make([]float64, m), vy: make([]float64, m), vz: make([]float64, m),
	}
	for i := 0; i < m; i++ {
		s.px[i] = float64((i*37)%101) / 101
		s.py[i] = float64((i*61)%103) / 103
		s.pz[i] = float64((i*89)%107) / 107
	}
	return s
}

// waterReference replicates the simulated arithmetic exactly (same
// per-molecule operation order); only pe depends on thread interleaving.
func waterReference(s *waterState, m, steps int) {
	const eps, dt = 0.01, 0.0005
	fx := make([]float64, m)
	fy := make([]float64, m)
	fz := make([]float64, m)
	for st := 0; st < steps; st++ {
		for i := 0; i < m; i++ {
			var fxi, fyi, fzi float64
			for j := 0; j < m; j++ {
				if j == i {
					continue
				}
				dx := s.px[j] - s.px[i]
				dy := s.py[j] - s.py[i]
				dz := s.pz[j] - s.pz[i]
				r2 := dx*dx + dy*dy + dz*dz + eps
				rinv := 1 / math.Sqrt(r2)
				s.pe += rinv // reference order; verified with tolerance
				r3 := rinv * rinv * rinv
				fxi += dx * r3
				fyi += dy * r3
				fzi += dz * r3
			}
			fx[i], fy[i], fz[i] = fxi, fyi, fzi
		}
		for i := 0; i < m; i++ {
			s.vx[i] += fx[i] * dt
			s.px[i] += s.vx[i] * dt
			s.vy[i] += fy[i] * dt
			s.py[i] += s.vy[i] * dt
			s.vz[i] += fz[i] * dt
			s.pz[i] += s.vz[i] * dt
		}
	}
}

func waterInit(im *loader.Image, scale int) error {
	s := waterInput(waterM(scale))
	for _, p := range []struct {
		sym  string
		vals []float64
	}{{"px", s.px}, {"py", s.py}, {"pz", s.pz}, {"vx", s.vx}, {"vy", s.vy}, {"vz", s.vz}} {
		if err := pokeFloats(im, p.sym, p.vals); err != nil {
			return err
		}
	}
	return nil
}

func waterVerify(im *loader.Image, output string, scale int) error {
	if output != "water-ok" {
		return fmt.Errorf("water: output %q, want water-ok", output)
	}
	m := waterM(scale)
	want := waterInput(m)
	waterReference(want, m, waterSteps)
	for _, p := range []struct {
		sym  string
		vals []float64
	}{{"px", want.px}, {"py", want.py}, {"pz", want.pz}, {"vx", want.vx}, {"vy", want.vy}, {"vz", want.vz}} {
		got, err := peekFloats(im, p.sym, m)
		if err != nil {
			return err
		}
		if err := compareFloats(p.sym, got, p.vals, 1e-9); err != nil {
			return err
		}
	}
	// pe accumulates in lock-grant order: verify with a loose tolerance.
	pe, err := peekFloats(im, "pe", 1)
	if err != nil {
		return err
	}
	if !closeEnough(pe[0], want.pe, 1e-6) {
		return fmt.Errorf("water: pe = %v, want ~%v", pe[0], want.pe)
	}
	return nil
}

func init() {
	register(&Workload{
		Name:        "water",
		Description: "O(n^2) pairwise-force molecular dynamics with a lock-protected energy reduction (SPLASH-2 Water-Nsquared analogue)",
		InputDesc: func(scale int) string {
			return fmt.Sprintf("%d molecules", waterM(scale))
		},
		Source: waterSource,
		Init:   waterInit,
		Verify: waterVerify,
	})
}
