package workloads

import (
	"fmt"
	"math"

	"slacksim/internal/loader"
)

// pokeFloats writes vals as consecutive float64s at the named symbol.
func pokeFloats(im *loader.Image, sym string, vals []float64) error {
	addr, err := im.Symbol(sym)
	if err != nil {
		return err
	}
	for i, v := range vals {
		if !im.Mem.StoreFloat64(addr+uint64(i)*8, v) {
			return fmt.Errorf("workloads: poke %s[%d] at %#x failed", sym, i, addr)
		}
	}
	return nil
}

// pokeInts writes vals as consecutive int64s at the named symbol.
func pokeInts(im *loader.Image, sym string, vals []int64) error {
	addr, err := im.Symbol(sym)
	if err != nil {
		return err
	}
	for i, v := range vals {
		if !im.Mem.StoreWord(addr+uint64(i)*8, uint64(v)) {
			return fmt.Errorf("workloads: poke %s[%d] at %#x failed", sym, i, addr)
		}
	}
	return nil
}

// peekFloats reads n consecutive float64s at the named symbol.
func peekFloats(im *loader.Image, sym string, n int) ([]float64, error) {
	addr, err := im.Symbol(sym)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		v, ok := im.Mem.LoadFloat64(addr + uint64(i)*8)
		if !ok {
			return nil, fmt.Errorf("workloads: peek %s[%d] failed", sym, i)
		}
		out[i] = v
	}
	return out, nil
}

// peekInts reads n consecutive int64s at the named symbol.
func peekInts(im *loader.Image, sym string, n int) ([]int64, error) {
	addr, err := im.Symbol(sym)
	if err != nil {
		return nil, err
	}
	out := make([]int64, n)
	for i := range out {
		v, ok := im.Mem.LoadWord(addr + uint64(i)*8)
		if !ok {
			return nil, fmt.Errorf("workloads: peek %s[%d] failed", sym, i)
		}
		out[i] = int64(v)
	}
	return out, nil
}

// compareFloats checks got against want element-wise within a relative
// tolerance (absolute near zero).
func compareFloats(what string, got, want []float64, tol float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("workloads: %s length %d != %d", what, len(got), len(want))
	}
	for i := range got {
		if !closeEnough(got[i], want[i], tol) {
			return fmt.Errorf("workloads: %s[%d] = %v, want %v (tol %g)", what, i, got[i], want[i], tol)
		}
	}
	return nil
}

func closeEnough(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		return d <= tol
	}
	return d <= tol*scale
}
