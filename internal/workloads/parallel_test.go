package workloads

import (
	"testing"

	"slacksim/internal/asm"
	"slacksim/internal/cache"
	"slacksim/internal/core"
	"slacksim/internal/cpu"
)

func machineFor(t *testing.T, w *Workload, threads, scale int) *core.Machine {
	t.Helper()
	prog, err := asm.Assemble(w.Source(scale), asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMachine(prog, core.Config{
		NumCores:   threads,
		NumThreads: threads,
		CPU:        cpu.DefaultConfig(),
		Cache:      cache.DefaultConfig(threads),
		MemSize:    64 << 20,
		MaxCycles:  500_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Init(m.Image(), scale); err != nil {
		t.Fatal(err)
	}
	return m
}

// runSerial drives the serial reference, failing the test on a contained
// fault.
func runSerial(t testing.TB, m *core.Machine) *core.Result {
	t.Helper()
	res, err := m.RunSerial()
	if err != nil {
		t.Fatalf("RunSerial: %v", err)
	}
	return res
}

// TestConservativeExactAcrossWorkloads is the strongest correctness claim
// in the repository: for every benchmark, the parallel engine under the
// oldest-first bounded-slack scheme (window 9 < critical latency 10)
// produces exactly the serial cycle-by-cycle execution time, and the
// workload verifies.
func TestConservativeExactAcrossWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload sweep")
	}
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			ref := runSerial(t, machineFor(t, w, 4, 1))
			if ref.Aborted {
				t.Fatal("serial reference aborted")
			}
			m := machineFor(t, w, 4, 1)
			res, err := m.RunParallel(core.SchemeS9x)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Verify(m.Image(), res.Output, 1); err != nil {
				t.Fatal(err)
			}
			if res.EndTime != ref.EndTime {
				t.Fatalf("S9* end time %d != serial %d", res.EndTime, ref.EndTime)
			}
			if res.TimeWarps != 0 {
				t.Fatalf("conservative run warped %d ops", res.TimeWarps)
			}
		})
	}
}

// TestOptimisticCorrectAcrossWorkloads: under unbounded slack every
// workload must still execute correctly (the paper's §3.2.3 claim), with a
// bounded — if nonzero — execution-time distortion.
func TestOptimisticCorrectAcrossWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload sweep")
	}
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			ref := runSerial(t, machineFor(t, w, 4, 1))
			m := machineFor(t, w, 4, 1)
			res, err := m.RunParallel(core.SchemeSU)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Verify(m.Image(), res.Output, 1); err != nil {
				t.Fatalf("workload must execute correctly under SU: %v", err)
			}
			ratio := float64(res.EndTime) / float64(ref.EndTime)
			if ratio < 0.5 || ratio > 2.0 {
				t.Fatalf("SU execution time %d is %.2fx the reference %d", res.EndTime, ratio, ref.EndTime)
			}
		})
	}
}

// TestWorkloadScale2 runs one benchmark at double scale to exercise the
// scale plumbing (bigger inputs, same verification).
func TestWorkloadScale2(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled run")
	}
	w, err := Get("radix")
	if err != nil {
		t.Fatal(err)
	}
	m := machineFor(t, w, 4, 2)
	res := runSerial(t, m)
	if res.Aborted {
		t.Fatal("aborted")
	}
	if err := w.Verify(m.Image(), res.Output, 2); err != nil {
		t.Fatal(err)
	}
}

// TestWorkloadOddThreadCount checks the block partitioning's last-thread
// remainder handling (3 threads do not divide the problem sizes evenly).
func TestWorkloadOddThreadCount(t *testing.T) {
	if testing.Short() {
		t.Skip("extra sweep")
	}
	for _, name := range []string{"fft", "ocean", "radix", "water"} {
		w, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		m := machineFor(t, w, 3, 1)
		res := runSerial(t, m)
		if res.Aborted {
			t.Fatalf("%s aborted", name)
		}
		if err := w.Verify(m.Image(), res.Output, 1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 7 {
		t.Fatalf("registered %d workloads, want 7", len(all))
	}
	paper := Paper()
	if len(paper) != 4 {
		t.Fatalf("paper set = %d workloads", len(paper))
	}
	wantOrder := []string{"barnes", "fft", "lu", "water"}
	for i, w := range paper {
		if w.Name != wantOrder[i] {
			t.Errorf("paper[%d] = %s", i, w.Name)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown workload lookup succeeded")
	}
	for _, w := range all {
		if w.Description == "" || w.InputDesc(1) == "" {
			t.Errorf("%s missing metadata", w.Name)
		}
	}
}
