package workloads

import (
	"fmt"

	"slacksim/internal/loader"
)

// lu is dense LU factorisation without pivoting, row-cyclic across threads
// with one barrier per elimination step — the dependence pattern of
// SPLASH-2 LU (each step consumes the pivot row produced in the previous
// step, so slack-scheme timing errors surface as barrier-latency changes).

func luN(scale int) int { return 48 * scale }

func luSource(scale int) string {
	params := fmt.Sprintf(".equ N, %d\n", luN(scale))
	body := `
bench_init:
    ret

# work(a0 = tid): for k: rows i>k with i%T==tid eliminate; barrier per k.
work:
    mv   r24, a0                  # tid
    la   r25, _nthreads
    ld   r25, 0(r25)              # T
    li   r20, 0                   # k
lu_k_loop:
    li   r8, N-1
    bge  r20, r8, lu_done
    # pivot row pointer: rowk = mat + k*N*8
    li   r9, N*8
    mul  r10, r20, r9
    la   r11, mat
    add  r21, r11, r10            # rowk
    slli r22, r20, 3              # k*8
    addi r12, r20, 1              # i = k+1
lu_i_loop:
    li   r8, N
    bge  r12, r8, lu_i_done
    rem  r13, r12, r25
    bne  r13, r24, lu_i_next
    # rowi = mat + i*N*8
    li   r9, N*8
    mul  r10, r12, r9
    la   r11, mat
    add  r23, r11, r10            # rowi
    # l = A[i][k] / A[k][k]
    add  r14, r23, r22
    fld  f0, 0(r14)
    add  r15, r21, r22
    fld  f1, 0(r15)
    fdiv f2, f0, f1
    fsd  f2, 0(r14)
    # trailing update: j in k+1..N-1
    addi r16, r20, 1
lu_j_loop:
    li   r8, N
    bge  r16, r8, lu_i_next
    slli r17, r16, 3
    add  r18, r21, r17            # &A[k][j]
    fld  f3, 0(r18)
    add  r19, r23, r17            # &A[i][j]
    fld  f4, 0(r19)
    fmul f5, f2, f3
    fsub f4, f4, f5
    fsd  f4, 0(r19)
    addi r16, r16, 1
    j    lu_j_loop
lu_i_next:
    addi r12, r12, 1
    j    lu_i_loop
lu_i_done:
    la   a0, _bar
    syscall SYS_BARRIER
    addi r20, r20, 1
    j    lu_k_loop
lu_done:
    ret

bench_fini:
    la   a0, done_msg
    syscall SYS_PRINT_STR
    ret

.data
.align 8
done_msg: .asciiz "lu-ok"
.align 8
mat: .space N*N*8
`
	return wrapParallel(params, body)
}

func luInput(n int) []float64 {
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = 1 + float64((i*7+j*13)%19)/19
			if i == j {
				a[i*n+j] += float64(n)
			}
		}
	}
	return a
}

func luReference(a []float64, n int) {
	for k := 0; k < n-1; k++ {
		for i := k + 1; i < n; i++ {
			a[i*n+k] /= a[k*n+k]
			l := a[i*n+k]
			for j := k + 1; j < n; j++ {
				a[i*n+j] -= l * a[k*n+j]
			}
		}
	}
}

func luInit(im *loader.Image, scale int) error {
	return pokeFloats(im, "mat", luInput(luN(scale)))
}

func luVerify(im *loader.Image, output string, scale int) error {
	if output != "lu-ok" {
		return fmt.Errorf("lu: output %q, want lu-ok", output)
	}
	n := luN(scale)
	want := luInput(n)
	luReference(want, n)
	got, err := peekFloats(im, "mat", n*n)
	if err != nil {
		return err
	}
	return compareFloats("mat", got, want, 1e-9)
}

func init() {
	register(&Workload{
		Name:        "lu",
		Description: "dense LU factorisation, row-cyclic with a barrier per elimination step (SPLASH-2 LU analogue)",
		InputDesc: func(scale int) string {
			n := luN(scale)
			return fmt.Sprintf("%d x %d matrix", n, n)
		},
		Source: luSource,
		Init:   luInit,
		Verify: luVerify,
	})
}
