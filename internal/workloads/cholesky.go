package workloads

import (
	"fmt"
	"math"

	"slacksim/internal/loader"
)

// cholesky is a dense right-looking Cholesky factorisation (A = L·Lᵀ on a
// symmetric positive-definite matrix, lower triangle in place), row-cyclic
// across threads with three barriers per column — the most synchronisation-
// intensive benchmark in the suite (SPLASH-2 Cholesky's dense analogue; the
// original is sparse with supernodal task queues, see DESIGN.md).

func choleskyN(scale int) int { return 40 * scale }

func choleskySource(scale int) string {
	params := fmt.Sprintf(".equ N, %d\n", choleskyN(scale))
	body := `
bench_init:
    ret

# work(a0 = tid): for k: sqrt pivot / scale column k / trailing update.
work:
    mv   r24, a0                  # tid
    la   r25, _nthreads
    ld   r25, 0(r25)              # T
    li   r20, 0                   # k
ch_k_loop:
    li   r8, N
    bge  r20, r8, ch_done
    la   a0, _bar
    syscall SYS_BARRIER
    # ---- pivot: owner of row k takes sqrt(A[k][k])
    rem  r9, r20, r25
    bne  r9, r24, ch_pivot_done
    li   r10, N*8
    mul  r11, r20, r10
    la   r12, mat
    add  r12, r12, r11
    slli r13, r20, 3
    add  r12, r12, r13            # &A[k][k]
    fld  f0, 0(r12)
    fsqrt f0, f0
    fsd  f0, 0(r12)
ch_pivot_done:
    la   a0, _bar
    syscall SYS_BARRIER
    # ---- scale column k: my rows i > k: A[i][k] /= A[k][k]
    li   r10, N*8
    mul  r11, r20, r10
    la   r12, mat
    add  r21, r12, r11            # row k base
    slli r22, r20, 3              # k*8
    add  r9, r21, r22
    fld  f1, 0(r9)                # pivot
    addi r13, r20, 1              # i
ch_scale_i:
    li   r8, N
    bge  r13, r8, ch_scale_done
    rem  r14, r13, r25
    bne  r14, r24, ch_scale_next
    mul  r15, r13, r10
    add  r15, r12, r15
    add  r15, r15, r22            # &A[i][k]
    fld  f2, 0(r15)
    fdiv f2, f2, f1
    fsd  f2, 0(r15)
ch_scale_next:
    addi r13, r13, 1
    j    ch_scale_i
ch_scale_done:
    la   a0, _bar
    syscall SYS_BARRIER
    # ---- trailing update: my rows i > k: A[i][j] -= A[i][k]*A[j][k], j in (k, i]
    addi r13, r20, 1              # i
ch_upd_i:
    li   r8, N
    bge  r13, r8, ch_upd_done
    rem  r14, r13, r25
    bne  r14, r24, ch_upd_next
    mul  r15, r13, r10
    add  r23, r12, r15            # row i base
    add  r16, r23, r22
    fld  f3, 0(r16)               # A[i][k]
    addi r17, r20, 1              # j
ch_upd_j:
    bgt  r17, r13, ch_upd_next
    mul  r18, r17, r10
    add  r18, r12, r18
    add  r18, r18, r22
    fld  f4, 0(r18)               # A[j][k]
    slli r19, r17, 3
    add  r26, r23, r19            # &A[i][j]
    fld  f5, 0(r26)
    fmul f6, f3, f4
    fsub f5, f5, f6
    fsd  f5, 0(r26)
    addi r17, r17, 1
    j    ch_upd_j
ch_upd_next:
    addi r13, r13, 1
    j    ch_upd_i
ch_upd_done:
    addi r20, r20, 1
    j    ch_k_loop
ch_done:
    ret

bench_fini:
    la   a0, done_msg
    syscall SYS_PRINT_STR
    ret

.data
.align 8
done_msg: .asciiz "cholesky-ok"
.align 8
mat: .space N*N*8
`
	return wrapParallel(params, body)
}

func choleskyInput(n int) []float64 {
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = 1 / (1 + math.Abs(float64(i-j)))
			if i == j {
				a[i*n+j] += float64(n)
			}
		}
	}
	return a
}

// choleskyReference mirrors the simulated algorithm operation for
// operation (lower triangle only), so results compare bit-for-bit.
func choleskyReference(a []float64, n int) {
	for k := 0; k < n; k++ {
		a[k*n+k] = math.Sqrt(a[k*n+k])
		for i := k + 1; i < n; i++ {
			a[i*n+k] /= a[k*n+k]
		}
		for i := k + 1; i < n; i++ {
			l := a[i*n+k]
			for j := k + 1; j <= i; j++ {
				a[i*n+j] -= l * a[j*n+k]
			}
		}
	}
}

func choleskyInit(im *loader.Image, scale int) error {
	return pokeFloats(im, "mat", choleskyInput(choleskyN(scale)))
}

func choleskyVerify(im *loader.Image, output string, scale int) error {
	if output != "cholesky-ok" {
		return fmt.Errorf("cholesky: output %q, want cholesky-ok", output)
	}
	n := choleskyN(scale)
	want := choleskyInput(n)
	choleskyReference(want, n)
	got, err := peekFloats(im, "mat", n*n)
	if err != nil {
		return err
	}
	// Compare the lower triangle (the factor); the upper is untouched.
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if !closeEnough(got[i*n+j], want[i*n+j], 1e-9) {
				return fmt.Errorf("cholesky: L[%d][%d] = %v, want %v", i, j, got[i*n+j], want[i*n+j])
			}
		}
	}
	return nil
}

func init() {
	register(&Workload{
		Name:        "cholesky",
		Description: "dense Cholesky factorisation, row-cyclic with three barriers per column (dense analogue of SPLASH-2 Cholesky)",
		InputDesc: func(scale int) string {
			n := choleskyN(scale)
			return fmt.Sprintf("%d x %d SPD matrix", n, n)
		},
		Source: choleskySource,
		Init:   choleskyInit,
		Verify: choleskyVerify,
	})
}
