package workloads

import (
	"testing"

	"slacksim/internal/asm"
	"slacksim/internal/cache"
	"slacksim/internal/core"
	"slacksim/internal/cpu"
)

// runWorkload assembles, loads, initialises, simulates (serial reference
// engine), and verifies one workload.
func runWorkload(t *testing.T, name string, threads int, model core.CoreModel, scale int) *core.Result {
	t.Helper()
	w, err := Get(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.Assemble(w.Source(scale), asm.Options{})
	if err != nil {
		t.Fatalf("%s: assemble: %v", name, err)
	}
	cfg := core.Config{
		NumCores:   threads,
		NumThreads: threads,
		Model:      model,
		CPU:        cpu.DefaultConfig(),
		Cache:      cache.DefaultConfig(threads),
		MemSize:    64 << 20,
		MaxCycles:  500_000_000,
	}
	m, err := core.NewMachine(prog, cfg)
	if err != nil {
		t.Fatalf("%s: machine: %v", name, err)
	}
	if err := w.Init(m.Image(), scale); err != nil {
		t.Fatalf("%s: init: %v", name, err)
	}
	res := runSerial(t, m)
	if res.Aborted {
		t.Fatalf("%s: aborted at %d cycles (output %q)", name, res.EndTime, res.Output)
	}
	if err := w.Verify(m.Image(), res.Output, scale); err != nil {
		t.Fatalf("%s: verify: %v", name, err)
	}
	return res
}

func TestFFTSerial(t *testing.T) {
	res := runWorkload(t, "fft", 4, core.ModelOoO, 1)
	t.Logf("fft: %d cycles, %d instrs", res.EndTime, res.Committed)
}

func TestFFTSingleThread(t *testing.T) {
	runWorkload(t, "fft", 1, core.ModelInOrder, 1)
}
