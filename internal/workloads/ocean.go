package workloads

import (
	"fmt"

	"slacksim/internal/loader"
)

// ocean is a red-black Gauss-Seidel iteration on a 2-D grid with fixed
// boundaries — the nearest-neighbour communication pattern of SPLASH-2
// Ocean's solver. Threads own interior row bands; every half-sweep (one
// colour) ends at a barrier, so neighbouring bands exchange halo rows
// through the coherence protocol each half-iteration.

func oceanG(scale int) int { return 34 * scale }

const oceanIters = 12

func oceanSource(scale int) string {
	params := fmt.Sprintf(".equ G, %d\n.equ ITERS, %d\n", oceanG(scale), oceanIters)
	body := `
bench_init:
    ret

# work(a0 = tid): interior rows are 1..G-2; partition G-2 rows.
work:
    mv   r24, a0
` + chunkBounds("G-2", "r24", "r26", "r27", "r8", "r9", "ocean") + `
    addi r26, r26, 1              # first owned row
    addi r27, r27, 1              # one past last owned row
    la   r8, quarter
    fld  f21, 0(r8)
    li   r20, 0                   # iteration
oc_iter:
    li   r8, ITERS
    bge  r20, r8, oc_done
    li   r21, 0                   # colour
oc_colour:
    li   r8, 2
    bge  r21, r8, oc_colour_done
    mv   r9, r26                  # row i
oc_row:
    bge  r9, r27, oc_row_done
    # first column of this colour in row i: j with (i+j)%2 == colour
    add  r10, r9, r21
    andi r10, r10, 1
    li   r11, 1
    bnez r10, oc_first_ok
    li   r11, 2
oc_first_ok:
    # row pointer: grid + i*G*8
    li   r12, G*8
    mul  r13, r9, r12
    la   r14, grid
    add  r13, r14, r13            # row base
oc_col:
    li   r8, G-1
    bge  r11, r8, oc_col_done
    slli r15, r11, 3
    add  r16, r13, r15            # &g[i][j]
    # neighbours
    li   r12, G*8
    sub  r17, r16, r12
    fld  f0, 0(r17)               # up
    add  r17, r16, r12
    fld  f1, 0(r17)               # down
    fld  f2, -8(r16)              # left
    fld  f3, 8(r16)               # right
    fadd f0, f0, f1
    fadd f2, f2, f3
    fadd f0, f0, f2
    fmul f0, f0, f21
    fsd  f0, 0(r16)
    addi r11, r11, 2
    j    oc_col
oc_col_done:
    addi r9, r9, 1
    j    oc_row
oc_row_done:
    la   a0, _bar
    syscall SYS_BARRIER
    addi r21, r21, 1
    j    oc_colour
oc_colour_done:
    addi r20, r20, 1
    j    oc_iter
oc_done:
    ret

bench_fini:
    la   a0, done_msg
    syscall SYS_PRINT_STR
    ret

.data
.align 8
done_msg: .asciiz "ocean-ok"
.align 8
quarter: .double 0.25
grid: .space G*G*8
`
	return wrapParallel(params, body)
}

func oceanInput(g int) []float64 {
	grid := make([]float64, g*g)
	for j := 0; j < g; j++ {
		grid[j] = 1 + float64(j%7)/7         // top boundary
		grid[(g-1)*g+j] = 2 + float64(j%5)/5 // bottom boundary
	}
	for i := 0; i < g; i++ {
		grid[i*g] = 3 + float64(i%3)/3         // left boundary
		grid[i*g+g-1] = 0.5 + float64(i%11)/11 // right boundary
	}
	return grid
}

// oceanReference replicates the red-black sweeps exactly; each point's
// update has fixed inputs within a half-sweep, so results are bit-exact
// regardless of thread interleaving.
func oceanReference(grid []float64, g, iters int) {
	for it := 0; it < iters; it++ {
		for colour := 0; colour < 2; colour++ {
			for i := 1; i < g-1; i++ {
				for j := 1; j < g-1; j++ {
					if (i+j)%2 != colour {
						continue
					}
					grid[i*g+j] = 0.25 * ((grid[(i-1)*g+j] + grid[(i+1)*g+j]) + (grid[i*g+j-1] + grid[i*g+j+1]))
				}
			}
		}
	}
}

func oceanInit(im *loader.Image, scale int) error {
	return pokeFloats(im, "grid", oceanInput(oceanG(scale)))
}

func oceanVerify(im *loader.Image, output string, scale int) error {
	if output != "ocean-ok" {
		return fmt.Errorf("ocean: output %q, want ocean-ok", output)
	}
	g := oceanG(scale)
	want := oceanInput(g)
	oceanReference(want, g, oceanIters)
	got, err := peekFloats(im, "grid", g*g)
	if err != nil {
		return err
	}
	return compareFloats("grid", got, want, 1e-12)
}

func init() {
	register(&Workload{
		Name:        "ocean",
		Description: "red-black Gauss-Seidel grid relaxation with halo exchange through coherence (SPLASH-2 Ocean-style solver)",
		InputDesc: func(scale int) string {
			g := oceanG(scale)
			return fmt.Sprintf("%d x %d grid", g, g)
		},
		Source: oceanSource,
		Init:   oceanInit,
		Verify: oceanVerify,
	})
}
