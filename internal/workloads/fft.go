package workloads

import (
	"fmt"
	"math"

	"slacksim/internal/loader"
)

// fft is a barrier-phased radix-2 complex FFT, the communication analogue
// of SPLASH-2 FFT: a parallel bit-reversal permutation followed by log2(N)
// butterfly stages separated by barriers (the transposes of the six-step
// SPLASH-2 kernel appear here as the all-to-all element exchanges between
// stages). Twiddle factors and the bit-reversal table are inputs generated
// by the host, as SPLASH-2 precomputes its roots-of-unity table.

func fftN(scale int) int {
	n := 1024
	for ; scale > 1; scale-- {
		n *= 4
	}
	return n
}

func fftSource(scale int) string {
	n := fftN(scale)
	params := fmt.Sprintf(".equ N, %d\n.equ NH, %d\n", n, n/2)
	body := `
bench_init:
    ret

# work(a0 = tid)
work:
    mv   r24, a0                  # tid
` + chunkBounds("N", "r24", "r26", "r27", "r8", "r9", "fftrev") + `
    # ---- parallel bit-reversal: swap (i, brev[i]) for brev[i] > i
    mv   r9, r26
fft_rev_loop:
    bge  r9, r27, fft_rev_done
    la   r10, brev
    slli r11, r9, 3
    add  r10, r10, r11
    ld   r12, 0(r10)              # j = brev[i]
    ble  r12, r9, fft_rev_next
    la   r13, data_re
    slli r14, r9, 3
    slli r16, r12, 3
    add  r15, r13, r14
    add  r17, r13, r16
    fld  f0, 0(r15)
    fld  f1, 0(r17)
    fsd  f1, 0(r15)
    fsd  f0, 0(r17)
    la   r13, data_im
    add  r15, r13, r14
    add  r17, r13, r16
    fld  f0, 0(r15)
    fld  f1, 0(r17)
    fsd  f1, 0(r15)
    fsd  f0, 0(r17)
fft_rev_next:
    addi r9, r9, 1
    j    fft_rev_loop
fft_rev_done:
    la   a0, _bar
    syscall SYS_BARRIER

    # ---- butterfly stages: half-size h = 1, 2, 4, ... N/2
    li   r20, 1                   # h
` + chunkBounds("NH", "r24", "r11", "r12", "r8", "r9", "fftbf") + `
fft_stage_loop:
    li   r8, N
    bge  r20, r8, fft_stages_done
    mv   r13, r11                 # k = klo
fft_bfly_loop:
    bge  r13, r12, fft_bfly_done
    div  r14, r13, r20            # group
    rem  r15, r13, r20            # pos
    slli r16, r20, 1
    mul  r16, r14, r16
    add  r16, r16, r15            # idx1
    add  r17, r16, r20            # idx2
    li   r18, NH
    div  r18, r18, r20
    mul  r18, r15, r18            # twiddle index
    # twiddle
    slli r21, r18, 3
    la   r19, tw_re
    add  r19, r19, r21
    fld  f2, 0(r19)               # wr
    la   r19, tw_im
    add  r19, r19, r21
    fld  f3, 0(r19)               # wi
    # operands
    slli r22, r16, 3
    slli r23, r17, 3
    la   r19, data_re
    add  r28, r19, r22            # &re[idx1]
    add  r31, r19, r23            # &re[idx2]
    la   r19, data_im
    add  r25, r19, r22            # &im[idx1]
    add  r21, r19, r23            # &im[idx2]
    fld  f0, 0(r28)               # ar
    fld  f1, 0(r25)               # ai
    fld  f4, 0(r31)               # br
    fld  f5, 0(r21)               # bi
    # t = w*b
    fmul f6, f2, f4
    fmul f7, f3, f5
    fsub f6, f6, f7               # tr = wr*br - wi*bi
    fmul f7, f2, f5
    fmul f8, f3, f4
    fadd f7, f7, f8               # ti = wr*bi + wi*br
    # data[idx1] = a+t ; data[idx2] = a-t
    fadd f8, f0, f6
    fsd  f8, 0(r28)
    fadd f9, f1, f7
    fsd  f9, 0(r25)
    fsub f8, f0, f6
    fsd  f8, 0(r31)
    fsub f9, f1, f7
    fsd  f9, 0(r21)
    addi r13, r13, 1
    j    fft_bfly_loop
fft_bfly_done:
    la   a0, _bar
    syscall SYS_BARRIER
    slli r20, r20, 1
    j    fft_stage_loop
fft_stages_done:
    ret

bench_fini:
    la   a0, done_msg
    syscall SYS_PRINT_STR
    ret

.data
.align 8
done_msg: .asciiz "fft-ok"
.align 8
data_re: .space N*8
data_im: .space N*8
tw_re:   .space NH*8
tw_im:   .space NH*8
brev:    .space N*8
`
	return wrapParallel(params, body)
}

// fftInput generates the deterministic input signal.
func fftInput(n int) (re, im []float64) {
	re = make([]float64, n)
	im = make([]float64, n)
	for i := 0; i < n; i++ {
		re[i] = math.Sin(2*math.Pi*float64(i%64)/64) + 0.25*math.Cos(2*math.Pi*float64(i%16)/16)
		im[i] = 0.5 * math.Sin(2*math.Pi*float64(i%32)/32)
	}
	return re, im
}

func bitRev(i, bits int) int {
	r := 0
	for b := 0; b < bits; b++ {
		r = (r << 1) | (i & 1)
		i >>= 1
	}
	return r
}

// fftReference runs the exact same radix-2 algorithm in Go (same operation
// order per element, so results match the simulation bit-for-bit).
func fftReference(re, im []float64) {
	n := len(re)
	bits := 0
	for 1<<bits < n {
		bits++
	}
	for i := 0; i < n; i++ {
		j := bitRev(i, bits)
		if j > i {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	nh := n / 2
	twr := make([]float64, nh)
	twi := make([]float64, nh)
	for k := 0; k < nh; k++ {
		twr[k] = math.Cos(-2 * math.Pi * float64(k) / float64(n))
		twi[k] = math.Sin(-2 * math.Pi * float64(k) / float64(n))
	}
	for h := 1; h < n; h *= 2 {
		for k := 0; k < nh; k++ {
			group, pos := k/h, k%h
			i1 := group*2*h + pos
			i2 := i1 + h
			t := pos * (nh / h)
			wr, wi := twr[t], twi[t]
			tr := wr*re[i2] - wi*im[i2]
			ti := wr*im[i2] + wi*re[i2]
			re[i1], re[i2] = re[i1]+tr, re[i1]-tr
			im[i1], im[i2] = im[i1]+ti, im[i1]-ti
		}
	}
}

func fftInit(im *loader.Image, scale int) error {
	n := fftN(scale)
	re, ims := fftInput(n)
	if err := pokeFloats(im, "data_re", re); err != nil {
		return err
	}
	if err := pokeFloats(im, "data_im", ims); err != nil {
		return err
	}
	nh := n / 2
	twr := make([]float64, nh)
	twi := make([]float64, nh)
	for k := 0; k < nh; k++ {
		twr[k] = math.Cos(-2 * math.Pi * float64(k) / float64(n))
		twi[k] = math.Sin(-2 * math.Pi * float64(k) / float64(n))
	}
	if err := pokeFloats(im, "tw_re", twr); err != nil {
		return err
	}
	if err := pokeFloats(im, "tw_im", twi); err != nil {
		return err
	}
	bits := 0
	for 1<<bits < n {
		bits++
	}
	rev := make([]int64, n)
	for i := range rev {
		rev[i] = int64(bitRev(i, bits))
	}
	return pokeInts(im, "brev", rev)
}

func fftVerify(im *loader.Image, output string, scale int) error {
	if output != "fft-ok" {
		return fmt.Errorf("fft: output %q, want fft-ok", output)
	}
	n := fftN(scale)
	wantRe, wantIm := fftInput(n)
	fftReference(wantRe, wantIm)
	gotRe, err := peekFloats(im, "data_re", n)
	if err != nil {
		return err
	}
	gotIm, err := peekFloats(im, "data_im", n)
	if err != nil {
		return err
	}
	if err := compareFloats("re", gotRe, wantRe, 1e-9); err != nil {
		return err
	}
	return compareFloats("im", gotIm, wantIm, 1e-9)
}

func init() {
	register(&Workload{
		Name:        "fft",
		Description: "radix-2 complex FFT with barrier-separated butterfly stages (SPLASH-2 FFT analogue)",
		InputDesc: func(scale int) string {
			return fmt.Sprintf("%dK points", fftN(scale)/1024)
		},
		Source: fftSource,
		Init:   fftInit,
		Verify: fftVerify,
	})
}
